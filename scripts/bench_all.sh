#!/usr/bin/env bash
# Regenerate every checked-in BENCH_*.json baseline in one command.
#
#   ./scripts/bench_all.sh            # rebuild benches, rerun, refresh baselines
#
# Builds the bench harnesses in build/bench_build (tests/examples off so the
# turnaround stays short), runs every harness that persists a BENCH record,
# and copies the fresh record over each baseline that is checked in at the
# repo root. Records for benches without a checked-in baseline are left in
# build/bench_build for inspection; check one in by copying it to the repo
# root once, after which this script keeps it fresh.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build/bench_build
cmake -B "$BUILD" -S . \
    -DCCAP_BUILD_BENCH=ON \
    -DCCAP_BUILD_TESTS=OFF \
    -DCCAP_BUILD_EXAMPLES=OFF >/dev/null
BENCHES=(
    bench_e1_theorem1_upper
    bench_e3_theorem5_lower
    bench_e4_convergence
    bench_x10_lattice_kernel
    bench_x11_batch_lattice
    bench_x12_fault_injection
    bench_x13_contention
    bench_x14_adaptive_mc
    bench_x15_point_batch
    bench_x16_tracker
)
cmake --build "$BUILD" -j"$(nproc)" --target "${BENCHES[@]}"

# Each harness writes BENCH_<name>.json into its working directory. Every
# record is stamped with the SIMD kernel path the run dispatched to
# (bench_json.hpp); bench_compare.py refuses to diff records from different
# paths, so baselines refreshed here only ever gate runs on the same ISA.
# Honour an explicit override so a scalar/avx2 baseline can be produced on
# an avx512 box when needed.
echo "bench_all: SIMD path: ${CCAP_SIMD:-auto (widest available)}"
for bench in "${BENCHES[@]}"; do
    start=$SECONDS
    if ! (cd "$BUILD" && "./bench/$bench"); then
        echo "bench_all: FAIL: $bench exited non-zero after $((SECONDS - start))s" >&2
        exit 1
    fi
    echo "bench_all: $bench finished in $((SECONDS - start))s"
done

refreshed=0
for baseline in BENCH_*.json; do
    [[ -e "$baseline" ]] || continue
    if [[ -f "$BUILD/$baseline" ]]; then
        cp "$BUILD/$baseline" "$baseline"
        echo "bench_all: refreshed $baseline"
        refreshed=$((refreshed + 1))
    else
        echo "bench_all: warning: no fresh record for checked-in $baseline" >&2
    fi
done
echo "bench_all: $refreshed baseline(s) refreshed"
