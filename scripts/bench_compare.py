#!/usr/bin/env python3
"""Compare two BENCH_*.json records and fail on perf/quality regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.25]
                             [--lenient]

Each file holds one flat JSON object as written by bench/bench_json.hpp.
Metrics (numeric fields) present in BOTH files are compared; fields present
in only one side are reported but never fatal (benches grow fields over
time). A metric regresses when it worsens by more than --threshold
(default 25%) relative to the baseline. Direction is inferred from the
name: fields matching *_ns*, *ns_sym*, *seconds*, *error*, *slack* are
better-lower; fields matching *speedup*, *rate*, *identical*, *certified*
are better-higher; anything else is informational only.

--lenient downgrades regressions in *timing* metrics to warnings (shared
machines make wall-clocks noisy) while still failing on non-timing
regressions such as bit_identical flipping to 0, and treats a missing
baseline file as a warning (a new bench has no checked-in record yet).
scripts/tier1.sh uses this mode when a checked-in baseline exists.

A missing or unreadable input is reported as a one-line message, never a
traceback. Records whose identity fields differ ("name", "fault_profile",
"simd") were measured under different conditions and are refused outright:
a baseline taken under one fault-profile suite — or one SIMD kernel path —
never gates a run of another.

Exit status: 0 = no fatal regression, 1 = regression, 2 = usage/IO error
(including an identity mismatch).
"""

import argparse
import json
import os
import sys

LOWER_IS_BETTER = ("_ns", "ns_sym", "seconds", "error", "slack", "sem_ratio", "_mae")
HIGHER_IS_BETTER = ("speedup", "rate", "identical", "certified", "bits", "per_sec",
                    "saved", "converged", "invariant")
TIMING_MARKERS = ("_ns", "ns_sym", "seconds", "speedup", "per_sec")
# Provenance / configuration fields are never compared. The adaptive-MC
# spent-block counts (blocks_*_total, n_fixed) are configuration-dependent
# observations, not quality metrics: the gated metric is their ratio
# (blocks_saved), so raw spend deltas must not double-fail a run. The CRN
# sweep's raw per-mode spends and worst-point SEMs are likewise
# observations: the gated figures are sweep_speedup and adjacent_sem_ratio.
SKIP = {"name", "git_rev", "threads", "batch", "p_d", "p_i", "p_s", "band_eps",
        "fault_profile", "simd", "cpu", "flows", "ticks", "mc_block", "mc_blocks",
        "distinct_nodes", "target_sem", "points", "round", "max_blocks",
        "block_len", "blocks_fixed_total", "blocks_adaptive_total", "n_fixed",
        "blocks_indep_total", "blocks_crn_total", "worst_sem_indep",
        "worst_sem_crn",
        # Tracker bench configuration and deterministic stream observations:
        # the gated quality figures are tracker_mae / within_bound_rate, not
        # how many resyncs a given drift profile happens to trigger.
        "window_len", "smoothing", "pd_step", "stream_windows", "resyncs",
        "degraded_windows"}
# Identity fields: records measured under different identities (a different
# bench, a different fault-profile suite, a different SIMD kernel path, a
# different adaptive-precision target, or a different point-tiling mode) are
# incomparable — numbers from one fault mix, vector width, SEM target, or
# variate-coupling scheme must never gate numbers from another: halving
# target_sem quadruples the honest spend, and a CRN record diffed against an
# independent-streams record would always read as a spurious throughput
# regression (or a spurious variance win). Mismatch is a usage error
# (exit 2), not a regression. ("cpu" stays informational: the same path on
# different machines is still the noise bench_compare already tolerates.)
IDENTITY = ("name", "fault_profile", "simd", "target_sem", "point_tile", "crn",
            # Tracker records: error figures at one window framing or EWMA
            # coefficient never gate figures measured at another.
            "window_len", "smoothing")


def classify(key: str):
    """Return ('lower'|'higher'|None, is_timing) for a metric name."""
    k = key.lower()
    direction = None
    if any(m in k for m in LOWER_IS_BETTER):
        direction = "lower"
    if any(m in k for m in HIGHER_IS_BETTER):
        # Names matching both (e.g. "error_rate") are ambiguous: skip.
        direction = None if direction else "higher"
    return direction, any(m in k for m in TIMING_MARKERS)


def load(path: str, role: str) -> dict:
    """Read one BENCH record; exits with a one-line message (never a
    traceback) when the file is missing or malformed."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        print(f"bench_compare: {role} file not found: {path}", file=sys.stderr)
        sys.exit(2)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read {role} {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_compare: {role} {path} is not a flat JSON object", file=sys.stderr)
        sys.exit(2)
    return data


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="fractional worsening that counts as a regression (default 0.25)")
    ap.add_argument("--lenient", action="store_true",
                    help="timing regressions warn instead of fail")
    args = ap.parse_args()

    if args.lenient and not os.path.exists(args.baseline):
        # A brand-new bench has no checked-in baseline yet; in the lenient
        # (CI gate) mode that is advisory, not fatal.
        print(f"bench_compare: warning: no baseline at {args.baseline}; "
              "nothing to compare (run scripts/bench_all.sh to create one)")
        return 0
    base = load(args.baseline, "baseline")
    cand = load(args.candidate, "candidate")

    for key in IDENTITY:
        if key in base and key in cand and base[key] != cand[key]:
            print(f"bench_compare: {key} mismatch: baseline '{base[key]}' vs "
                  f"candidate '{cand[key]}' — records are not comparable",
                  file=sys.stderr)
            return 2

    shared = [k for k in base if k in cand and k not in SKIP]
    only_base = [k for k in base if k not in cand and k not in SKIP]
    only_cand = [k for k in cand if k not in base and k not in SKIP]
    for k in only_base:
        print(f"  note: metric '{k}' only in baseline")
    for k in only_cand:
        print(f"  note: metric '{k}' only in candidate")

    failures = 0
    for key in shared:
        b, c = base[key], cand[key]
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue
        direction, is_timing = classify(key)
        if direction is None:
            continue
        if direction == "lower":
            # Worsening = candidate larger. Guard b == 0 (can't form a ratio:
            # any nonzero candidate of a zero baseline is flagged).
            regressed = c > b * (1.0 + args.threshold) if b > 0 else c > 0
            delta = (c - b) / b if b > 0 else float("inf")
        else:
            regressed = c < b * (1.0 - args.threshold) if b > 0 else False
            delta = (b - c) / b if b > 0 else 0.0
        status = "ok"
        if regressed:
            if args.lenient and is_timing:
                status = "WARN (lenient)"
            else:
                status = "REGRESSION"
                failures += 1
        print(f"  {key}: baseline={b:g} candidate={c:g} ({delta:+.1%} worse-side) {status}")

    if failures:
        print(f"bench_compare: {failures} metric(s) regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: no fatal regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
