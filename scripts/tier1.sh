#!/usr/bin/env bash
# Tier-1 gate: full build + tests, then the concurrency suite under TSan.
#
#   ./scripts/tier1.sh            # both stages
#   CCAP_SKIP_TSAN=1 ./scripts/tier1.sh   # standard stage only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: standard build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "${CCAP_SKIP_TSAN:-0}" == "1" ]]; then
    echo "== tier1: TSan stage skipped (CCAP_SKIP_TSAN=1) =="
    exit 0
fi

echo "== tier1: thread-pool + parallel-MC tests under -fsanitize=thread =="
cmake -B build-tsan -S . \
    -DCCAP_SANITIZE=thread \
    -DCCAP_BUILD_BENCH=OFF \
    -DCCAP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"$(nproc)" --target ccap_util_tests ccap_info_tests
(cd build-tsan && ctest --output-on-failure -R 'ThreadPool|ParallelFor|ParallelReduce|ParallelMc')
echo "== tier1: OK =="
