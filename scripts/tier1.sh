#!/usr/bin/env bash
# Tier-1 gate: full build + tests, then the concurrency suite under TSan.
#
#   ./scripts/tier1.sh            # standard + TSan stages
#   CCAP_SKIP_TSAN=1 ./scripts/tier1.sh   # standard stage only
#   CCAP_RUN_ASAN=1 ./scripts/tier1.sh    # additionally run the info/util
#                                         # tests under -fsanitize=address
#                                         # (opt-in: ~3x slower, catches the
#                                         # arena over/under-reads the SoA
#                                         # lattice layouts are prone to)
#   CCAP_RUN_UBSAN=1 ./scripts/tier1.sh   # additionally run the core/info
#                                         # tests under -fsanitize=undefined
#                                         # (opt-in: cheap; catches the
#                                         # overflow/shift bugs the backoff
#                                         # and fault-schedule arithmetic
#                                         # could hide)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: standard build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

# SIMD cross-check: rerun the batch-lattice lane-identity suite with the
# kernel dispatch pinned to the scalar reference path. The default ctest
# pass above runs on the widest available ISA; this stage proves the same
# binary still matches the scalar LatticeEngine bit for bit when the
# vector kernels are disabled — i.e. any bit-identity green above came
# from correct vector code, not from both paths sharing a bug.
echo "== tier1: batch-lattice suite under CCAP_SIMD=scalar =="
(cd build && CCAP_SIMD=scalar ./tests/ccap_info_tests \
    --gtest_filter='BatchLattice*:SimdDispatch*' --gtest_brief=1)

# Bench-regression gate: when a checked-in BENCH_* baseline exists and the
# build produced a fresh record of the same name (smoke runs write
# build/BENCH_*.json), diff them. --lenient: wall-clock metrics only warn
# (shared machines are noisy); non-timing metrics (bit_identical,
# certified error bounds) still fail the gate.
for baseline in BENCH_*.json; do
    [[ -e "$baseline" ]] || continue
    for candidate in "build/bench_build/$baseline" "build/$baseline"; do
        if [[ -f "$candidate" ]]; then
            echo "== tier1: bench_compare $baseline vs $candidate =="
            python3 scripts/bench_compare.py "$baseline" "$candidate" --lenient
            break
        fi
    done
done

if [[ "${CCAP_RUN_ASAN:-0}" == "1" ]]; then
    echo "== tier1: info/util tests under -fsanitize=address (opt-in) =="
    cmake -B build-asan -S . \
        -DCCAP_SANITIZE=address \
        -DCCAP_BUILD_BENCH=OFF \
        -DCCAP_BUILD_EXAMPLES=OFF >/dev/null
    cmake --build build-asan -j"$(nproc)" --target ccap_util_tests ccap_info_tests
    (cd build-asan && ctest --output-on-failure -R 'ccap_util|ccap_info|Lattice|BatchLattice|ParallelMc|Drift')
fi

if [[ "${CCAP_RUN_UBSAN:-0}" == "1" ]]; then
    echo "== tier1: core/info tests under -fsanitize=undefined (opt-in) =="
    cmake -B build-ubsan -S . \
        -DCCAP_SANITIZE=undefined \
        -DCCAP_BUILD_BENCH=OFF \
        -DCCAP_BUILD_EXAMPLES=OFF >/dev/null
    cmake --build build-ubsan -j"$(nproc)" --target ccap_core_tests ccap_info_tests
    # Run the binaries directly: every test they hold runs under UBSan
    # (a ctest -R filter would only match a subset of the discovered names).
    (cd build-ubsan && ./tests/ccap_core_tests && ./tests/ccap_info_tests)
fi

if [[ "${CCAP_SKIP_TSAN:-0}" == "1" ]]; then
    echo "== tier1: TSan stage skipped (CCAP_SKIP_TSAN=1) =="
    exit 0
fi

echo "== tier1: thread-pool + parallel-MC tests under -fsanitize=thread =="
cmake -B build-tsan -S . \
    -DCCAP_SANITIZE=thread \
    -DCCAP_BUILD_BENCH=OFF \
    -DCCAP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"$(nproc)" --target ccap_util_tests ccap_info_tests ccap_core_tests ccap_sched_tests ccap_estimate_tests
(cd build-tsan && ctest --output-on-failure -R 'ThreadPool|ParallelFor|ParallelReduce|ParallelMc|FaultInjectionParallel|ContentionParallel|ShardCache|TrackerParallel')
echo "== tier1: OK =="
