// The paper's Section-3.1 motivating example, end to end.
//
// A covert sender and receiver share a uniprocessor. The scheduler decides
// the interleaving, which decides how many symbols are deleted (sender ran
// twice) or duplicated (receiver ran twice). We sweep scheduler policies,
// measure the induced (P_d, P_i) from the traces, and report the covert
// capacity each policy admits — "evaluating the effectiveness of candidate
// system implementations, e.g., the scheduler, in reducing covert channel
// capacities" (Section 3.2).
//
// Run:  ./scheduler_channel [message_len]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "ccap/estimate/analyzer.hpp"
#include "ccap/sched/covert_pair.hpp"

namespace {

struct Candidate {
    const char* label;
    std::unique_ptr<ccap::sched::Scheduler> (*make)();
};

std::unique_ptr<ccap::sched::Scheduler> fuzzy25() {
    return ccap::sched::make_fuzzy_round_robin(0.25);
}
std::unique_ptr<ccap::sched::Scheduler> fuzzy75() {
    return ccap::sched::make_fuzzy_round_robin(0.75);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ccap;

    const std::size_t message_len = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;

    const Candidate candidates[] = {
        {"round_robin (deterministic)", sched::make_round_robin},
        {"fuzzy_rr eps=0.25", fuzzy25},
        {"fuzzy_rr eps=0.75", fuzzy75},
        {"random (memoryless)", sched::make_random},
        {"lottery (1:1 tickets)", sched::make_lottery},
    };

    std::printf("scheduler policy sweep — naive covert pair, %zu symbols, 1 bit/symbol\n\n",
                message_len);
    std::printf("%-28s %8s %8s %10s %12s %10s\n", "policy", "P_d", "P_i", "trad b/use",
                "corrected", "severity");

    for (const Candidate& c : candidates) {
        sched::CovertPairConfig cfg;
        cfg.mode = sched::PairMode::naive;
        cfg.message_len = message_len;
        cfg.bits_per_symbol = 1;
        const auto run = sched::run_covert_pair(c.make(), cfg, /*seed=*/99);

        estimate::AnalyzerConfig acfg;
        acfg.bits_per_symbol = 1;
        acfg.uses_per_second = 1000.0;  // a 1 kHz scheduling quantum
        const auto report = estimate::analyze_traces(run.sent, run.received, acfg);

        std::printf("%-28s %8.4f %8.4f %10.3f %12.3f %10s\n", c.label,
                    report.params.p_d.value, report.params.p_i.value,
                    report.traditional_bits_per_use, report.degraded_bits_per_use,
                    estimate::severity_name(report.severity));
    }

    std::printf(
        "\nReading the table: deterministic round-robin keeps the channel\n"
        "synchronous (fast and dangerous); injecting scheduling randomness\n"
        "raises P_d/P_i and shrinks the corrected capacity — the scheduler is\n"
        "an effective covert-channel countermeasure, quantified.\n");
    return 0;
}
