// Quickstart: the Section-4.3 practitioner workflow in ~40 lines.
//
// You observed a covert channel: you know what the sender pushed and what
// the receiver sampled. This example (1) simulates such an observation,
// (2) estimates the deletion/insertion/substitution rates, (3) prints the
// traditional (synchronous-model) capacity, the paper's corrected capacity
// C*(1-P_d), the Theorem-5/Theorem-1 band, and a TCSEC-style severity.
//
// Run:  ./quickstart [p_d] [p_i] [p_s]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/estimate/analyzer.hpp"
#include "ccap/estimate/report.hpp"

int main(int argc, char** argv) {
    using namespace ccap;

    core::DiChannelParams truth;
    truth.p_d = argc > 1 ? std::atof(argv[1]) : 0.15;
    truth.p_i = argc > 2 ? std::atof(argv[2]) : 0.05;
    truth.p_s = argc > 3 ? std::atof(argv[3]) : 0.00;
    truth.bits_per_symbol = 2;
    truth.validate();

    // --- the part you'd replace with real measurements -------------------
    util::Rng rng(2025);
    std::vector<std::uint32_t> sent(8000);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(truth.alphabet()));
    core::DeletionInsertionChannel channel(truth, /*seed=*/7);
    const auto observation = channel.transduce(sent);
    // ----------------------------------------------------------------------

    estimate::AnalyzerConfig config;
    config.bits_per_symbol = truth.bits_per_symbol;
    config.uses_per_second = 100.0;  // sender opportunities per second

    const estimate::AnalysisReport report =
        estimate::analyze_traces(sent, observation.output, config);

    std::printf("ground truth: %s\n\n", truth.to_string().c_str());
    std::printf("%s\n", estimate::render_report(report, "quickstart storage channel").c_str());
    std::printf("Interpretation: a traditional synchronous analysis would report %.2f\n"
                "bits/use; accounting for non-synchronous behaviour (Wang & Lee 2005)\n"
                "the realistic figure is %.2f bits/use.\n",
                report.traditional_bits_per_use, report.degraded_bits_per_use);
    return 0;
}
