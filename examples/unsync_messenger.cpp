// Sending a real message across a non-synchronous covert channel, three ways.
//
// Section 4 of the paper asks: is reliable communication possible *without*
// synchronization, and what does synchronization buy you? This example
// moves an actual ASCII message across the same Definition-1 channel via:
//
//   1. blind transmission            — no coding, no feedback (garbled);
//   2. watermark code (Davey-MacKay) — no feedback, reliable, but paying a
//      heavy rate penalty (the Section-4.1 answer);
//   3. counter protocol (Appendix A) — perfect feedback, near the
//      N(1-P_d) erasure bound (the Theorem-5 answer).
//
// Run:  ./unsync_messenger [p_d] [p_i]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ccap/coding/watermark.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

std::string render(const ccap::coding::Bits& bits) {
    std::string out;
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        char c = 0;
        for (int b = 0; b < 8; ++b) c = static_cast<char>((c << 1) | bits[i + b]);
        out.push_back((c >= 32 && c < 127) ? c : '.');
    }
    return out;
}

ccap::coding::Bits to_bits(const std::string& text, std::size_t pad_to) {
    ccap::coding::Bits bits;
    for (char c : text)
        for (int b = 7; b >= 0; --b)
            bits.push_back(static_cast<std::uint8_t>((c >> b) & 1));
    bits.resize(pad_to, 0);
    return bits;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ccap;

    const double p_d = argc > 1 ? std::atof(argv[1]) : 0.01;
    const double p_i = argc > 2 ? std::atof(argv[2]) : 0.01;
    const core::DiChannelParams params{p_d, p_i, 0.0, 1};
    params.validate();
    const info::DriftParams drift{p_d, p_i, 0.0, 2, 48, 10};

    const std::string secret = "MEET AT DAWN";
    std::printf("channel: %s\nsecret : \"%s\"\n\n", params.to_string().c_str(), secret.c_str());

    // --- 1. blind transmission ------------------------------------------
    {
        util::Rng rng(1);
        coding::Bits tx = to_bits(secret, secret.size() * 8);
        const auto rx = info::simulate_drift_channel(tx, drift, rng);
        coding::Bits first(rx.begin(),
                           rx.begin() + static_cast<long>(std::min(rx.size(), tx.size())));
        first.resize(tx.size(), 0);
        std::printf("1. blind (no coding, no feedback) -> \"%s\"\n", render(first).c_str());
    }

    // --- 2. watermark code, still no feedback ----------------------------
    {
        coding::WatermarkParams wp;
        wp.bits_per_symbol = 4;
        wp.chunk_bits = 6;
        wp.num_symbols = 48;
        wp.num_checks = 16;
        const coding::WatermarkCode code(wp);
        util::Rng rng(2);
        const coding::Bits info_bits = to_bits(secret, code.info_bits());
        const coding::Bits tx = code.encode(info_bits);
        const auto rx = info::simulate_drift_channel(tx, drift, rng);
        const auto res = code.decode(rx, drift);
        std::printf("2. watermark code (no feedback)   -> \"%s\"  [rate %.3f bit/use%s]\n",
                    render(res.info).c_str(), code.rate(),
                    res.ldpc_converged ? "" : ", LDPC did not converge");
    }

    // --- 3. counter protocol with perfect feedback -----------------------
    {
        core::DeletionInsertionChannel channel(params, 3);
        const coding::Bits msg_bits = to_bits(secret, secret.size() * 8);
        std::vector<std::uint32_t> msg(msg_bits.begin(), msg_bits.end());
        const auto run = core::run_counter_protocol(channel, msg);
        coding::Bits as_bits;
        for (std::uint32_t s : run.received) as_bits.push_back(static_cast<std::uint8_t>(s & 1U));
        std::printf("3. counter protocol (feedback)    -> \"%s\"  [rate %.3f bit/use, "
                    "Thm1 bound %.3f]\n",
                    render(as_bits).c_str(), run.measured_info_rate(1),
                    core::theorem1_upper_bound(params));
    }

    std::printf(
        "\nThe shape the paper predicts: blind transmission fails outright;\n"
        "unsynchronized coding is reliable but far below the bound; feedback\n"
        "synchronization closes nearly the whole gap.\n");
    return 0;
}
