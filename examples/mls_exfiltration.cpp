// The Section-4.3 MLS remark, made executable.
//
// High wants to leak a secret to Low through a storage covert channel.
// Bell-LaPadula permits Low to write *up*, so a Low-writable object gives
// High a perfectly legal feedback path — and with feedback, Theorem 3 says
// the covert channel runs at the full erasure capacity. This example runs
// the exfiltration with and without the legal-flow exploit and shows the
// difference in both reliability and speed.
//
// Run:  ./mls_exfiltration [secret_len]

#include <cstdio>
#include <cstdlib>

#include "ccap/sched/mls_system.hpp"

int main(int argc, char** argv) {
    using namespace ccap::sched;

    const std::size_t secret_len = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;

    std::printf("MLS exfiltration, %zu secret symbols, memoryless scheduler\n\n", secret_len);
    std::printf("%-34s %10s %12s %8s\n", "configuration", "delivered", "goodput", "exact");

    for (const bool feedback : {false, true}) {
        MlsConfig cfg;
        cfg.message_len = secret_len;
        cfg.use_legal_feedback = feedback;
        const MlsResult res = run_mls_exfiltration(make_random(), cfg, /*seed=*/2025);
        std::printf("%-34s %10zu %12.4f %8s\n",
                    feedback ? "legal Low->High flow as feedback" : "no feedback (naive)",
                    res.exfiltrated.size(), res.goodput(), res.exact ? "yes" : "NO");
    }

    std::printf(
        "\nWithout feedback the secret arrives corrupted (deletions and stale\n"
        "reads desynchronize the stream almost immediately). With the legal\n"
        "upward flow exploited as an acknowledgement path, the alternating-bit\n"
        "protocol of Theorem 3 delivers the secret exactly, at the erasure-\n"
        "channel rate — covert channels in MLS systems \"tend to be fast\".\n");
    return 0;
}
