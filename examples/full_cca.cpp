// Full covert channel analysis, the TCSEC way — all four disciplines the
// paper's related-work section lists, in one run:
//
//   1. IDENTIFY   — Kemmerer's Shared Resource Matrix (the paper's ref [1])
//                   finds the covert medium in a toy OS interface;
//   2. MEASURE    — the identified channel is exercised on the uniprocessor
//                   simulator under a realistic scheduler;
//   3. ESTIMATE   — (P_d, P_i, P_s) from the traces, then the paper's
//                   non-synchronous capacity band and corrected capacity;
//   4. HANDLE     — TCSEC severity verdict, plus the countermeasure check:
//                   rerun under a fuzzier scheduler and re-classify.
//
// Run:  ./full_cca

#include <cstdio>

#include "ccap/estimate/analyzer.hpp"
#include "ccap/estimate/report.hpp"
#include "ccap/estimate/srm.hpp"
#include "ccap/sched/covert_pair.hpp"

int main() {
    using namespace ccap;

    // ---- 1. IDENTIFY ------------------------------------------------------
    std::printf("=== 1. identification (Shared Resource Matrix, Kemmerer) ===\n");
    estimate::SharedResourceMatrix srm;
    srm.add_operation("lock_file", {"file.lock"}, {"file.lock"});
    srm.add_operation("unlock_file", {"file.lock"}, {"file.lock"});
    srm.add_operation("try_lock", {"file.lock"}, {"caller.error_code"});
    srm.add_operation("read_error", {"caller.error_code"}, {});
    srm.add_operation("write_private", {}, {"proc.private"});

    const auto channels = srm.all_channels();
    for (const auto& c : channels)
        std::printf("  medium %-18s  sender %-12s receiver %-12s %s\n", c.attribute.c_str(),
                    c.sender_op.c_str(), c.receiver_op.c_str(),
                    c.indirect ? "(indirect)" : "(direct)");
    std::printf("  -> %zu candidate channel(s); analysing the file.lock medium.\n\n",
                channels.size());

    // ---- 2. MEASURE -------------------------------------------------------
    std::printf("=== 2. measurement (uniprocessor simulation, near-deterministic "
                "scheduler) ===\n");
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::naive;  // lock state = 1 bit per write
    cfg.bits_per_symbol = 1;
    cfg.message_len = 8000;
    const auto run = sched::run_covert_pair(sched::make_fuzzy_round_robin(0.05), cfg, 2026);
    std::printf("  sent %zu symbols, received %zu, over %llu quanta\n", run.sent.size(),
                run.received.size(), static_cast<unsigned long long>(run.total_quanta));
    std::printf("  ground truth events: %llu deletions, %llu insertions, %llu transmissions\n\n",
                static_cast<unsigned long long>(run.deletions),
                static_cast<unsigned long long>(run.insertions),
                static_cast<unsigned long long>(run.transmissions));

    // ---- 3. ESTIMATE ------------------------------------------------------
    std::printf("=== 3. estimation (Wang & Lee 2005) ===\n");
    estimate::AnalyzerConfig acfg;
    acfg.bits_per_symbol = 1;
    acfg.uses_per_second = 1000.0;  // 1 kHz quantum clock
    const auto report = estimate::analyze_traces(run.sent, run.received, acfg);
    std::fputs(estimate::render_report(report, "file.lock channel, fuzzy_rr(0.05)").c_str(),
               stdout);

    // ---- 4. HANDLE --------------------------------------------------------
    std::printf("\n=== 4. handling (countermeasure evaluation) ===\n");
    const auto mitigated = sched::run_covert_pair(sched::make_random(), cfg, 2026);
    const auto mitigated_report =
        estimate::analyze_traces(mitigated.sent, mitigated.received, acfg);
    std::printf("  randomized scheduler: %.3f -> %.3f corrected bits/use, "
                "severity %s -> %s\n",
                report.degraded_bits_per_use, mitigated_report.degraded_bits_per_use,
                estimate::severity_name(report.severity),
                estimate::severity_name(mitigated_report.severity));
    std::printf("\nThe complete TCSEC loop: the SRM finds the medium, the simulator\n"
                "measures it, the paper's method corrects the naive capacity for the\n"
                "non-synchronous scheduler effects, and the verdict quantifies whether\n"
                "a candidate mitigation is enough.\n");
    return 0;
}
