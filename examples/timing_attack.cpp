// A timing covert channel end to end — and the defences that kill it.
//
// The sender leaks a passphrase one bit at a time by how long it sleeps
// between CPU bursts; the receiver's only clock is its own scheduling
// quantum count (no shared timer — the paper's Section-3.1 point about
// time references). We then turn the two classic countermeasure knobs —
// clock coarsening and clock jitter — and watch the leak die.
//
// Run:  ./timing_attack [message]

#include <cstdio>
#include <string>

#include "ccap/sched/timing_channel.hpp"

namespace {

std::string render_bits(const std::vector<std::uint8_t>& bits) {
    std::string out;
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        char c = 0;
        for (int b = 0; b < 8; ++b) c = static_cast<char>((c << 1) | bits[i + b]);
        out.push_back((c >= 32 && c < 127) ? c : '.');
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ccap::sched;

    const std::string secret = argc > 1 ? argv[1] : "LAUNCH CODE 7-7-7";

    TimingChannelConfig cfg;
    cfg.short_gap = 2;
    cfg.long_gap = 6;
    cfg.message_len = secret.size() * 8;
    // Encode the passphrase as the message via the seed trick: we bypass the
    // random message and overwrite sent bits below by re-deriving them.
    std::printf("leaking \"%s\" through a %llu/%llu-quantum timing channel "
                "(ideal capacity %.3f bits/quantum)\n\n",
                secret.c_str(), static_cast<unsigned long long>(cfg.short_gap),
                static_cast<unsigned long long>(cfg.long_gap), ideal_timing_capacity(cfg));

    struct Defence {
        const char* label;
        SimTime granularity;
        SimTime jitter;
    };
    const Defence defences[] = {
        {"no defence (fine clock)", 1, 0},
        {"clock granularity 4", 4, 0},
        {"clock granularity 8", 8, 0},
        {"clock jitter +/-8", 1, 8},
        {"granularity 8 + jitter 8", 8, 8},
    };

    std::printf("%-28s %8s %14s  %s\n", "defence", "BER", "bits/quantum", "what Low reads");
    for (const Defence& d : defences) {
        TimingChannelConfig run_cfg = cfg;
        run_cfg.clock_granularity = d.granularity;
        run_cfg.clock_jitter = d.jitter;
        auto res = run_timing_channel(make_round_robin(), run_cfg, 2026);
        // Re-map the random simulation bits onto the passphrase: XOR the
        // decoded stream with (sent XOR secret_bits) so decoding errors show
        // up as corrupted characters of the actual secret.
        std::vector<std::uint8_t> secret_bits;
        for (char c : secret)
            for (int b = 7; b >= 0; --b)
                secret_bits.push_back(static_cast<std::uint8_t>((c >> b) & 1));
        std::vector<std::uint8_t> leaked(secret_bits.size(), 0);
        for (std::size_t i = 0; i < leaked.size() && i < res.decoded.size(); ++i)
            leaked[i] = static_cast<std::uint8_t>(res.decoded[i] ^ res.sent[i] ^ secret_bits[i]);
        std::printf("%-28s %8.3f %14.4f  \"%s\"\n", d.label, res.bit_error_rate,
                    res.info_rate_per_quantum(), render_bits(leaked).c_str());
    }

    std::printf("\nCoarsening the receiver's clock past the gap difference (or jittering\n"
                "it comparably) destroys the channel without touching the scheduler —\n"
                "the \"remove time references\" countermeasure the paper mentions,\n"
                "quantified per defence level.\n");
    return 0;
}
