// ccap — command-line front end for the covert-channel capacity toolkit.
//
// Subcommands:
//   bounds    print the capacity band for given channel parameters
//   analyze   estimate parameters from sent/received trace files and report
//   simulate  generate sent/received traces through a Definition-1 channel
//   sweep     CSV of the capacity band over a (P_d, P_i) grid
//   mi        Monte-Carlo achievable rate through the drift lattice
//   windows   windowed parameter estimates + changepoint scan
//   protocol  run a (hardened) feedback protocol under faults and report
//   contend   multi-tenant contention engine: capacity under offered load
//   track     long-lived online capacity tracker over a live faulty channel
//             or a trace pair, with checkpoint/resume and graceful shutdown
//
// Parallelism: `--threads N` caps the worker threads used by the
// Monte-Carlo estimators and the sweep grid (default: one per hardware
// thread; 1 forces serial execution). Results are bit-identical for every
// thread count — see docs/THEORY.md §10.
//
// Exit codes: 0 success, 1 runtime failure (bad traces, infeasible
// parameters), 2 usage error (unknown command/flag, malformed value).
//
// Examples:
//   ccap bounds --pd 0.15 --pi 0.05 --bits 2 --uses-per-sec 100
//   ccap simulate --pd 0.2 --len 5000 --sent sent.txt --received recv.txt
//   ccap analyze --sent sent.txt --received recv.txt --bits 1
//   ccap sweep --bits 4 > band.csv
//   ccap mi --pd 0.1 --pi 0.05 --block 128 --blocks 64 --threads 8
//   ccap protocol --proto saw --pd 0.2 --p-ack-loss 0.2 --ack-delay 2
//        --timeout 6 --len 20000

#include <cmath>
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/core/fault_injection.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"
#include "ccap/core/stream_source.hpp"
#include "ccap/estimate/analyzer.hpp"
#include "ccap/estimate/capacity_tracker.hpp"
#include "ccap/estimate/report.hpp"
#include "ccap/estimate/changepoint.hpp"
#include "ccap/estimate/trace_io.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/lattice_simd.hpp"
#include "ccap/sched/contention.hpp"
#include "ccap/util/checkpoint_io.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/signal_flag.hpp"
#include "ccap/util/thread_pool.hpp"

namespace {

using namespace ccap;

/// Bad command line (unknown flag, malformed value): exit code 2 and a
/// one-line usage hint, as opposed to runtime failures (exit code 1).
struct UsageError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct Args {
    std::map<std::string, std::string> values;

    /// Strict numeric parse: the whole token must be a finite number.
    /// std::stod alone would silently accept "0.2x" and "nan".
    [[nodiscard]] double number(const std::string& key, double fallback) const {
        const auto it = values.find(key);
        if (it == values.end()) return fallback;
        std::size_t pos = 0;
        double v = 0.0;
        try {
            v = std::stod(it->second, &pos);
        } catch (const std::exception&) {
            pos = 0;
        }
        if (pos != it->second.size() || !std::isfinite(v))
            throw UsageError("option --" + key + " expects a number, got '" + it->second +
                             "'");
        return v;
    }
    /// Non-negative integer option (counts, seeds, delays).
    [[nodiscard]] std::uint64_t count(const std::string& key, std::uint64_t fallback) const {
        const double v = number(key, static_cast<double>(fallback));
        if (v < 0.0 || v != std::floor(v))
            throw UsageError("option --" + key + " expects a non-negative integer, got '" +
                             values.at(key) + "'");
        return static_cast<std::uint64_t>(v);
    }
    [[nodiscard]] std::string text(const std::string& key, const std::string& fallback) const {
        const auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values.find(key);
        if (it == values.end()) throw UsageError("missing required option --" + key);
        return it->second;
    }
    /// Strict per-command flag set: a flag outside `allowed` is a usage
    /// error, not a silently ignored typo (--theads, --p_d, ...).
    void reject_unknown(std::initializer_list<const char*> allowed) const {
        for (const auto& [key, value] : values) {
            bool known = false;
            for (const char* a : allowed) known = known || key == a;
            if (!known) throw UsageError("unknown option --" + key);
        }
    }
};

Args parse_args(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag.rfind("--", 0) != 0)
            throw UsageError("expected --option, got '" + flag + "'");
        if (flag == "--verbose") {  // the one valueless flag
            args.values["verbose"] = "1";
            continue;
        }
        if (i + 1 >= argc) throw UsageError("option " + flag + " needs a value");
        args.values[flag.substr(2)] = argv[++i];
    }
    return args;
}

core::DiChannelParams params_from(const Args& args) {
    core::DiChannelParams p;
    p.p_d = args.number("pd", 0.0);
    p.p_i = args.number("pi", 0.0);
    p.p_s = args.number("ps", 0.0);
    p.bits_per_symbol = static_cast<unsigned>(args.count("bits", 1));
    p.validate();
    return p;
}

/// Worker-thread cap shared by the parallel subcommands: 0 (the default)
/// means one lane per hardware thread, 1 forces serial execution.
unsigned threads_from(const Args& args) {
    return static_cast<unsigned>(args.count("threads", 0));
}

/// `--simd scalar|neon|avx2|avx512`: pin the lattice kernel dispatch for
/// this process (same semantics as the CCAP_SIMD environment override —
/// requests above the best available path clamp down, never up). Call
/// before any estimator runs so the choice is visible everywhere.
void apply_simd_flag(const Args& args) {
    const auto it = args.values.find("simd");
    if (it == args.values.end()) return;
    util::SimdPath path{};
    if (!util::parse_simd_path(it->second, path))
        throw UsageError("option --simd expects scalar, neon, avx2 or avx512, got '" +
                         it->second + "'");
    util::force_simd_path(path);
}

/// `--mc-target-sem S --mc-max-blocks M`: adaptive Monte-Carlo precision
/// for the lattice subcommands. S > 0 turns the estimators adaptive (run
/// in rounds, stop once the standard error of the mean reaches S); M caps
/// the total blocks (0 keeps the library default of 64 rounds). S = 0
/// (the default) keeps the historical fixed-block behavior bit for bit.
void apply_adaptive_flags(const Args& args, info::McOptions& opts) {
    const double target = args.number("mc-target-sem", 0.0);
    if (target < 0.0) throw UsageError("option --mc-target-sem expects a value >= 0");
    opts.target_sem = target;
    opts.max_blocks = static_cast<std::size_t>(args.count("mc-max-blocks", 0));
}

/// `--mc-point-tile G|auto`: common-random-numbers point tiling for grid
/// sweeps. G grid points share every Monte-Carlo block's variate tape and
/// ride one per-lane-parameter lattice sweep; "auto" picks a vector-width
/// multiple. 0 (the default) keeps independent per-point substreams bit
/// for bit.
void apply_point_tile_flag(const Args& args, info::McOptions& opts) {
    const auto it = args.values.find("mc-point-tile");
    if (it == args.values.end()) return;
    if (it->second == "auto") {
        opts.point_tile = info::kMcPointTileAuto;
        return;
    }
    try {
        opts.point_tile = static_cast<std::size_t>(args.count("mc-point-tile", 0));
    } catch (const UsageError&) {
        throw UsageError("option --mc-point-tile expects a non-negative integer or "
                         "'auto', got '" +
                         it->second + "'");
    }
}

/// `--verbose` line for the lattice subcommands: the resolved SIMD kernel
/// path and the Monte-Carlo tile shape (lockstep lattice lanes x worker
/// threads) the estimator will actually run with.
void print_lattice_verbose(std::FILE* out, const info::McOptions& opts,
                           const info::DriftParams& params,
                           std::size_t sweep_points = 0) {
    const info::LaneKernels& k = info::active_lane_kernels();
    const unsigned workers =
        opts.threads != 0 ? opts.threads : std::thread::hardware_concurrency();
    const std::string batch_str =
        opts.batch == 0 ? "auto" : std::to_string(opts.batch);
    std::fprintf(out,
                 "# simd: %s (%zu doubles/vector, cpu: %s)\n"
                 "# mc tile: %zu lanes x %u threads (batch %s, tiling %s)\n",
                 k.name, k.vector_doubles, util::cpu_feature_string().c_str(),
                 info::resolved_mc_batch(opts, params), workers, batch_str.c_str(),
                 opts.tiling == info::McTiling::scalar ? "scalar" : "lanes-by-threads");
    if (opts.point_tile != 0) {
        // CRN point tiling: report the resolved tile width (clamped to the
        // grid when its size is known).
        const std::size_t n =
            sweep_points != 0 ? sweep_points : static_cast<std::size_t>(-1) / 2;
        const std::string tile_str = opts.point_tile == info::kMcPointTileAuto
                                         ? std::string("auto")
                                         : std::to_string(opts.point_tile);
        std::fprintf(out, "# mc point tile: %zu points/sweep (crn, requested %s)\n",
                     info::resolved_point_tile(opts, n), tile_str.c_str());
    }
}

int cmd_bounds(const Args& args) {
    args.reject_unknown({"pd", "pi", "ps", "bits", "uses-per-sec"});
    const auto p = params_from(args);
    const double ups = args.number("uses-per-sec", 100.0);
    const auto report = estimate::analyze_params(p, ups);
    std::fputs(estimate::render_report(report, p.to_string()).c_str(), stdout);
    return 0;
}

int cmd_analyze(const Args& args) {
    args.reject_unknown({"sent", "received", "bits", "uses-per-sec", "estimator"});
    const auto sent = estimate::read_trace_file(args.require("sent"));
    const auto received = estimate::read_trace_file(args.require("received"));
    estimate::AnalyzerConfig cfg;
    cfg.bits_per_symbol = static_cast<unsigned>(args.count("bits", 1));
    cfg.uses_per_second = args.number("uses-per-sec", 100.0);
    const std::string kind = args.text("estimator", "mle");
    if (kind == "mle")
        cfg.estimator_kind = estimate::EstimatorKind::mle;
    else if (kind == "em")
        cfg.estimator_kind = estimate::EstimatorKind::em;
    else if (kind == "align")
        cfg.estimator_kind = estimate::EstimatorKind::alignment;
    else
        throw UsageError("unknown --estimator (use mle, em or align)");
    const auto report = estimate::analyze_traces(sent, received, cfg);
    std::fputs(estimate::render_report(report, args.require("sent") + " vs " +
                                                   args.require("received"))
                   .c_str(),
               stdout);
    return 0;
}

int cmd_simulate(const Args& args) {
    args.reject_unknown({"sent", "received", "pd", "pi", "ps", "bits", "len", "seed"});
    const auto p = params_from(args);
    const auto len = static_cast<std::size_t>(args.count("len", 1000));
    const auto seed = args.count("seed", 1);
    util::Rng rng(seed);
    std::vector<std::uint32_t> sent(len);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
    core::DeletionInsertionChannel channel(p, seed ^ 0xC11);
    const auto t = channel.transduce(sent);
    estimate::write_trace_file(args.require("sent"), sent,
                               "sent trace, " + p.to_string());
    estimate::write_trace_file(args.require("received"), t.output,
                               "received trace, " + p.to_string());
    std::printf("wrote %zu sent / %zu received symbols (%llu channel uses)\n", sent.size(),
                t.output.size(), static_cast<unsigned long long>(t.channel_uses));
    return 0;
}

int cmd_windows(const Args& args) {
    args.reject_unknown({"sent", "received", "window"});
    const auto sent = estimate::read_trace_file(args.require("sent"));
    const auto received = estimate::read_trace_file(args.require("received"));
    const auto window = static_cast<std::size_t>(args.count("window", 1000));
    const auto rates = estimate::windowed_rates(sent, received, window);
    std::printf("window,p_d,p_i,p_s\n");
    for (std::size_t i = 0; i < rates.p_d.size(); ++i)
        std::printf("%zu,%.4f,%.4f,%.4f\n", i, rates.p_d[i], rates.p_i[i], rates.p_s[i]);
    const auto change = estimate::detect_rate_change(rates.p_d);
    if (change)
        std::printf("# P_d changepoint at window %zu: %.4f -> %.4f (z=%.1f)\n",
                    change->index, change->mean_before, change->mean_after, change->z_score);
    else
        std::printf("# no P_d changepoint detected\n");
    return 0;
}

int cmd_sweep(const Args& args) {
    args.reject_unknown({"bits", "threads", "mi-blocks", "mi-block-len", "band-eps",
                         "mc-batch", "mc-point-tile", "mc-target-sem", "mc-max-blocks",
                         "seed", "simd", "verbose"});
    apply_simd_flag(args);
    const auto bits = static_cast<unsigned>(args.count("bits", 1));
    const unsigned threads = threads_from(args);
    // Optional Monte-Carlo MI column: --mi-blocks K (> 0 enables), with
    // --band-eps forwarding to the adaptive-band lattice.
    const auto mi_blocks = static_cast<std::size_t>(args.count("mi-blocks", 0));
    const auto mi_block_len = static_cast<std::size_t>(args.count("mi-block-len", 64));
    const double band_eps = args.number("band-eps", 0.0);
    const auto mc_batch = static_cast<std::size_t>(args.count("mc-batch", 0));
    const auto seed = args.count("seed", 1);
    // Materialize the grid up front: the MI column evaluates it as one
    // point sweep, and the verbose tile report needs its size.
    std::vector<std::pair<double, double>> grid;
    for (double pd = 0.0; pd <= 0.501; pd += 0.05)
        for (double pi = 0.0; pi <= 0.301; pi += 0.05)
            if (pd + pi < 1.0) grid.emplace_back(pd, pi);
    info::McOptions mi_opts;
    mi_opts.block_len = mi_block_len;
    mi_opts.num_blocks = mi_blocks > 0 ? mi_blocks : 1;
    mi_opts.threads = threads;
    mi_opts.band_eps = band_eps;
    mi_opts.batch = mc_batch;
    apply_adaptive_flags(args, mi_opts);
    apply_point_tile_flag(args, mi_opts);
    if (args.values.count("verbose")) {
        // stderr: stdout is the CSV. Every grid point shares one MC shape,
        // so one report covers the sweep.
        info::DriftParams dp;
        dp.alphabet = 1U << bits;
        print_lattice_verbose(stderr, mi_opts, dp, grid.size());
    }
    // The MI column goes through the points API: without --mc-point-tile it
    // reproduces the historical independent per-point substreams bit for
    // bit; with it, tiles of grid points share each block's variate tape
    // (common random numbers) and ride one per-lane lattice sweep.
    std::vector<info::MiEstimate> mi;
    if (mi_blocks > 0) {
        std::vector<info::CapacityPoint> points;
        points.reserve(grid.size());
        for (std::size_t i = 0; i < grid.size(); ++i) {
            info::DriftParams dp;
            dp.p_d = grid[i].first;
            dp.p_i = grid[i].second;
            dp.alphabet = 1U << bits;
            points.push_back({dp, util::substream_seed(seed, i)});
        }
        mi = info::iid_mutual_information_rate_points(points, mi_opts);
    }
    std::vector<std::string> rows(grid.size());
    util::parallel_for(
        util::ThreadPool::shared(), grid.size(),
        [&](std::size_t i) {
            const auto [pd, pi] = grid[i];
            const core::DiChannelParams p{pd, pi, 0.0, bits};
            const auto band = core::capacity_band(p);
            char line[160];
            int len = std::snprintf(line, sizeof line, "%.2f,%.2f,%.4f,%.4f,%.4f,%.4f", pd,
                                    pi, band.lower, band.exact_protocol, band.upper,
                                    core::degraded_capacity(static_cast<double>(bits), p));
            if (mi_blocks > 0) {
                std::snprintf(line + len, sizeof line - static_cast<std::size_t>(len),
                              ",%.4f\n", mi[i].rate);
            } else {
                std::snprintf(line + len, sizeof line - static_cast<std::size_t>(len), "\n");
            }
            rows[i] = line;
        },
        threads);
    std::printf(mi_blocks > 0 ? "p_d,p_i,thm5_lower,exact,thm1_upper,degraded,mc_mi\n"
                              : "p_d,p_i,thm5_lower,exact,thm1_upper,degraded\n");
    for (const auto& row : rows) std::fputs(row.c_str(), stdout);
    return 0;
}

int cmd_mi(const Args& args) {
    args.reject_unknown({"pd", "pi", "ps", "bits", "block", "blocks", "seed", "threads",
                         "markov-stay", "band-eps", "mc-batch", "mc-target-sem",
                         "mc-max-blocks", "simd", "verbose"});
    apply_simd_flag(args);
    info::DriftParams p;
    p.p_d = args.number("pd", 0.0);
    p.p_i = args.number("pi", 0.0);
    p.p_s = args.number("ps", 0.0);
    p.alphabet = 1U << static_cast<unsigned>(args.count("bits", 1));
    info::McOptions opts;
    opts.block_len = static_cast<std::size_t>(args.count("block", 128));
    opts.num_blocks = static_cast<std::size_t>(args.count("blocks", 32));
    opts.threads = threads_from(args);
    // Adaptive-band lattice pruning; 0 (default) keeps the exact sweep.
    opts.band_eps = args.number("band-eps", 0.0);
    // Lockstep lattice lanes per Monte-Carlo tile; 0 (default) auto-tiles,
    // 1 forces the scalar path. Does not change the estimate.
    opts.batch = static_cast<std::size_t>(args.count("mc-batch", 0));
    apply_adaptive_flags(args, opts);
    if (args.values.count("verbose")) print_lattice_verbose(stdout, opts, p);
    util::Rng rng(args.count("seed", 1));

    const double stay = args.number("markov-stay", -1.0);
    info::MiEstimate est;
    if (stay >= 0.0) {
        est = info::markov_mutual_information_rate(
            p, info::MarkovSource::binary_repeat(stay), opts, rng);
    } else {
        est = info::iid_mutual_information_rate(p, opts, rng);
    }
    std::printf("achievable rate: %.4f bits/use (sem %.4f, 95%% CI +-%.4f)\n", est.rate,
                est.sem, 1.96 * est.sem);
    std::printf("blocks: %zu x %zu symbols, threads: %u\n", est.blocks, est.block_len,
                opts.threads);
    if (opts.target_sem > 0.0)
        std::printf("adaptive: target sem %.4g, spent %zu of %zu blocks, %s\n",
                    opts.target_sem, est.blocks, info::mc_block_cap(opts),
                    est.converged ? "converged" : "hit block cap");
    return 0;
}

/// `--profile NAME` + explicit knob overrides, shared by `protocol` and
/// `track`. The preset (core::named_fault_profile) supplies the defaults;
/// any explicit --storm-*/--drift-*/--stuck-* flag overrides its field.
core::FaultProfile fault_profile_from(const Args& args) {
    core::FaultProfile profile;
    const std::string name = args.text("profile", "none");
    if (!core::named_fault_profile(name, profile))
        throw UsageError("unknown --profile '" + name +
                         "' (presets: " + core::fault_profile_presets_help() + ")");
    const bool explicit_knobs =
        args.values.count("storm-period") || args.values.count("storm-len") ||
        args.values.count("drift-amp") || args.values.count("drift-period") ||
        args.values.count("stuck-period") || args.values.count("stuck-len") ||
        args.values.count("stuck-symbol");
    profile.storm_period = args.count("storm-period", profile.storm_period);
    profile.storm_len = args.count("storm-len", profile.storm_len);
    profile.drift_amplitude = args.number("drift-amp", profile.drift_amplitude);
    profile.drift_period = args.count("drift-period", profile.drift_period);
    profile.stuck_period = args.count("stuck-period", profile.stuck_period);
    profile.stuck_len = args.count("stuck-len", profile.stuck_len);
    profile.stuck_symbol =
        static_cast<std::uint32_t>(args.count("stuck-symbol", profile.stuck_symbol));
    if (explicit_knobs) profile.name = profile.is_null() ? "none" : "cli";
    profile.validate();
    return profile;
}

int cmd_protocol(const Args& args) {
    args.reject_unknown({"proto", "pd", "pi", "ps", "bits", "len", "seed", "p-ack-loss",
                         "p-ack-corrupt", "ack-delay", "ack-jitter", "timeout",
                         "backoff-mult", "backoff-cap", "use-cap", "profile",
                         "storm-period", "storm-len", "drift-amp", "drift-period",
                         "stuck-period", "stuck-len", "stuck-symbol"});
    const auto p = params_from(args);
    const std::string proto = args.text("proto", "saw");
    const auto len = static_cast<std::size_t>(args.count("len", 2000));
    const auto seed = args.count("seed", 1);

    core::FeedbackLinkParams lp;
    lp.p_loss = args.number("p-ack-loss", 0.0);
    lp.p_corrupt = args.number("p-ack-corrupt", 0.0);
    lp.delay = args.count("ack-delay", 0);
    lp.jitter = args.count("ack-jitter", 0);
    lp.validate();

    core::HardenedOptions opt;
    opt.timeout = args.count("timeout", 8);
    opt.backoff_mult = args.count("backoff-mult", 2);
    opt.backoff_cap = args.count("backoff-cap", 64);
    opt.channel_use_cap = args.count("use-cap", 0);
    opt.validate();

    const core::FaultProfile profile = fault_profile_from(args);

    util::Rng rng(seed);
    std::vector<std::uint32_t> message(len);
    for (auto& s : message) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));

    core::DeletionInsertionChannel inner(p, seed ^ 0xC11);
    core::FaultyChannel channel(inner, profile, seed ^ 0xFA17);
    core::FeedbackLink link(lp, seed ^ 0xACC);

    core::ProtocolRun run;
    if (proto == "saw")
        run = core::run_hardened_stop_and_wait(channel, message, link, opt);
    else if (proto == "counter")
        run = core::run_hardened_counter_protocol(channel, message, link, opt);
    else if (proto == "gbn")
        run = core::run_hardened_go_back_n(channel, message, link, opt);
    else
        throw UsageError("unknown --proto (use saw, counter or gbn)");

    std::printf("protocol %s over %s, link loss=%.2f corrupt=%.2f delay=%llu jitter=%llu\n",
                proto.c_str(), p.to_string().c_str(), lp.p_loss, lp.p_corrupt,
                static_cast<unsigned long long>(lp.delay),
                static_cast<unsigned long long>(lp.jitter));
    std::printf("reliable: %s, delivered %zu/%zu symbols in %llu uses\n",
                run.reliable ? "yes" : "no", run.received.size(), message.size(),
                static_cast<unsigned long long>(run.channel_uses));
    std::printf("measured rate: %.4f bits/use (%.4f symbols/use)\n",
                run.measured_info_rate(p.bits_per_symbol), run.symbols_per_use());
    std::printf("retransmissions: %llu, timeouts: %llu, resyncs: %llu\n",
                static_cast<unsigned long long>(run.retransmissions),
                static_cast<unsigned long long>(run.timeouts),
                static_cast<unsigned long long>(run.resync_events));
    std::printf("acks lost: %llu, acks corrupted: %llu, injected faults: %llu\n",
                static_cast<unsigned long long>(run.acks_lost),
                static_cast<unsigned long long>(run.acks_corrupted),
                static_cast<unsigned long long>(channel.stats().injected_faults()));
    // The closed form models the stationary stop-and-wait chain only; a
    // fault profile drives the realized parameters away from it.
    if (proto == "saw" && profile.is_null()) {
        const double predicted = core::hardened_stop_and_wait_rate(p, lp, opt);
        std::printf("predicted rate: %.4f bits/use (gap %.4f)\n", predicted,
                    run.rate_gap(predicted, p.bits_per_symbol));
    }
    return 0;
}

int cmd_contend(const Args& args) {
    args.reject_unknown({"flows", "load", "ticks", "slices", "domain", "queue-cap",
                         "deadline", "collision-rate", "pd", "pi", "ps", "grid-step",
                         "mi-block", "mi-blocks", "mc-point-tile", "mc-target-sem",
                         "mc-max-blocks", "seed", "threads", "simd", "cache", "interp",
                         "verbose"});
    apply_simd_flag(args);

    info::CapacityCache::Config cc;
    cc.base.p_d = args.number("pd", 0.0);
    cc.base.p_i = args.number("pi", 0.0);
    cc.base.p_s = args.number("ps", 0.0);
    const double grid_step = args.number("grid-step", 0.01);
    if (!(grid_step > 0.0)) throw UsageError("option --grid-step expects a value > 0");
    cc.grid.pd_step = grid_step;
    cc.grid.pi_step = grid_step;
    cc.mc.block_len = static_cast<std::size_t>(args.count("mi-block", 48));
    cc.mc.num_blocks = static_cast<std::size_t>(args.count("mi-blocks", 8));
    apply_adaptive_flags(args, cc.mc);
    // CRN point tiling flows through the cache config into every batched
    // ensure() sweep the contention engine triggers.
    apply_point_tile_flag(args, cc.mc);
    const std::string cache_flag = args.text("cache", "on");
    if (cache_flag == "on")
        cc.enabled = true;
    else if (cache_flag == "off")
        cc.enabled = false;
    else
        throw UsageError("option --cache expects on or off, got '" + cache_flag + "'");
    info::CapacityCache cache(cc);

    sched::ContentionConfig cfg;
    cfg.flows = static_cast<std::size_t>(args.count("flows", 4096));
    cfg.offered_load = args.number("load", 0.8);
    cfg.ticks = args.count("ticks", 1024);
    cfg.slices = static_cast<std::size_t>(args.count("slices", 64));
    cfg.domain_flows = static_cast<std::size_t>(args.count("domain", 16));
    cfg.queue_cap = static_cast<std::size_t>(args.count("queue-cap", 16));
    cfg.deadline = args.count("deadline", 0);
    cfg.collision_rate = args.number("collision-rate", 0.10);
    if (args.values.count("interp")) {
        const std::string v = args.text("interp", "off");
        if (v == "on")
            cfg.quantize_exact = false;
        else if (v == "off")
            cfg.quantize_exact = true;
        else
            throw UsageError("option --interp expects on or off, got '" + v + "'");
    }
    cfg.threads = threads_from(args);
    cfg.seed = args.count("seed", 1);
    sched::ContentionEngine engine(cfg, cache);

    if (args.values.count("verbose")) print_lattice_verbose(stdout, cc.mc, cc.base);

    const sched::ContentionReport report = engine.run();
    std::printf("contention: %zu flows, offered load %.2f, %llu ticks, "
                "%.1f symbols/tick service\n",
                cfg.flows, cfg.offered_load, static_cast<unsigned long long>(cfg.ticks),
                engine.service_per_tick());
    std::printf("traffic: offered %llu, served %llu, dropped %llu (%.1f%%)\n",
                static_cast<unsigned long long>(report.total_offered),
                static_cast<unsigned long long>(report.total_served),
                static_cast<unsigned long long>(report.total_dropped),
                report.total_offered > 0
                    ? 100.0 * static_cast<double>(report.total_dropped) /
                          static_cast<double>(report.total_offered)
                    : 0.0);
    std::printf("effective channel (served-flow mean): P_d %.4f, P_i %.4f\n",
                report.mean_pd_eff, report.mean_pi_eff);
    std::printf("capacity: %.4f bits/use mean, %.4f bits/tick aggregate",
                report.mean_capacity, report.aggregate_capacity_per_tick);
    if (!cfg.quantize_exact)
        std::printf(" (+- %.4f certified)", report.aggregate_err_bound_per_tick);
    std::printf("\n");
    std::printf("capacity nodes: %zu distinct for %zu flows; cache hits %llu, "
                "misses %llu, entries %llu\n",
                report.distinct_nodes, cfg.flows,
                static_cast<unsigned long long>(report.cache.hits),
                static_cast<unsigned long long>(report.cache.misses),
                static_cast<unsigned long long>(report.cache.entries));
    if (cc.mc.target_sem > 0.0)
        std::printf("adaptive mc: %llu blocks across nodes (target sem %.4g, %s)\n",
                    static_cast<unsigned long long>(report.mc_blocks_spent),
                    cc.mc.target_sem,
                    report.mc_converged ? "all converged" : "some nodes hit block cap");
    return 0;
}

/// One tracker status line; flushed immediately (the mode is long-lived and
/// often watched through a pipe).
void print_track_line(const estimate::TrackerUpdate& u) {
    std::printf("window %llu %-8s P_d %.4f P_i %.4f cap %.4f +-%.4f bits/use "
                "served %.4f slope %+.5f resyncs %llu",
                static_cast<unsigned long long>(u.window),
                estimate::tracker_status_name(u.status), u.p_d, u.p_i, u.capacity,
                u.bound, u.served_rate, u.trend_slope,
                static_cast<unsigned long long>(u.resyncs));
    if (u.stale_windows > 0)
        std::printf(" stale %llu", static_cast<unsigned long long>(u.stale_windows));
    std::printf("\n");
    std::fflush(stdout);
}

int cmd_track(const Args& args) {
    args.reject_unknown({"sent", "received", "pd", "pi", "ps", "bits", "profile",
                         "storm-period", "storm-len", "drift-amp", "drift-period",
                         "stuck-period", "stuck-len", "stuck-symbol", "window",
                         "windows", "seed", "smoothing", "trend-window", "drift-slope",
                         "drift-sustain", "resync-jump", "ps-tolerance", "warmup",
                         "aimd-increase",
                         "aimd-beta", "headroom", "prefetch", "grid-step", "mi-block",
                         "mi-blocks", "mc-target-sem", "mc-max-blocks", "mc-point-tile",
                         "threads", "simd", "checkpoint", "checkpoint-every", "resume",
                         "status-every", "verbose"});
    apply_simd_flag(args);

    estimate::TrackerConfig tc;
    tc.window_len = static_cast<std::size_t>(args.count("window", 2000));
    tc.smoothing = args.number("smoothing", 0.3);
    tc.trend_window = static_cast<std::size_t>(args.count("trend-window", 8));
    tc.drift_slope = args.number("drift-slope", 0.004);
    tc.drift_sustain = static_cast<std::size_t>(args.count("drift-sustain", 3));
    tc.resync_jump = args.number("resync-jump", 0.05);
    tc.ps_tolerance = args.number("ps-tolerance", 0.1);
    tc.warmup_windows = static_cast<std::size_t>(args.count("warmup", 2));
    tc.aimd_increase = args.number("aimd-increase", 0.02);
    tc.aimd_beta = args.number("aimd-beta", 0.85);
    tc.headroom = args.number("headroom", 0.95);
    tc.prefetch = static_cast<std::size_t>(args.count("prefetch", 0));
    tc.threads = threads_from(args);
    const auto bits = static_cast<unsigned>(args.count("bits", 1));
    tc.cache.base.p_s = args.number("ps", 0.0);
    tc.cache.base.alphabet = 1U << bits;
    const double grid_step = args.number("grid-step", 0.02);
    if (!(grid_step > 0.0)) throw UsageError("option --grid-step expects a value > 0");
    tc.cache.grid.pd_step = grid_step;
    tc.cache.grid.pi_step = grid_step;
    tc.cache.mc.block_len = static_cast<std::size_t>(args.count("mi-block", 48));
    tc.cache.mc.num_blocks = static_cast<std::size_t>(args.count("mi-blocks", 8));
    apply_adaptive_flags(args, tc.cache.mc);
    apply_point_tile_flag(args, tc.cache.mc);
    if (args.values.count("verbose")) print_lattice_verbose(stderr, tc.cache.mc, tc.cache.base);

    // --resume FILE restores state (typed CheckpointIoError -> exit 1 on a
    // corrupt/mismatched file); otherwise start fresh.
    const std::string resume_path = args.text("resume", "");
    estimate::CapacityTracker tracker =
        resume_path.empty()
            ? estimate::CapacityTracker(tc)
            : estimate::CapacityTracker::resume(tc, util::Checkpoint::read_file(resume_path));

    // Source: a trace pair when --sent/--received are given, otherwise a
    // live simulated channel under the fault profile.
    std::unique_ptr<core::ChunkSource> source;
    if (args.values.count("sent") || args.values.count("received")) {
        source = std::make_unique<estimate::TraceChunkSource>(
            estimate::read_trace_file(args.require("sent")),
            estimate::read_trace_file(args.require("received")), tc.window_len);
    } else {
        core::FaultStreamSource::Config sc;
        sc.params = params_from(args);
        sc.profile = fault_profile_from(args);
        sc.window_len = tc.window_len;
        sc.windows = args.count("windows", 0);
        sc.seed = args.count("seed", 1);
        source = std::make_unique<core::FaultStreamSource>(sc);
    }
    // A resumed tracker replays (and discards) the windows it has already
    // ingested, so the live channel/fault clocks line up with the
    // uninterrupted run and subsequent outputs are bit-identical.
    for (std::uint64_t i = 0; i < tracker.windows(); ++i)
        if (!source->next()) break;

    const std::string checkpoint_path = args.text("checkpoint", "");
    const std::uint64_t checkpoint_every = args.count("checkpoint-every", 16);
    const std::uint64_t status_every = args.count("status-every", 1);

    // SIGINT/SIGTERM set a flag; the loop finishes the in-flight window,
    // flushes a final checkpoint + report, and exits 0.
    util::install_shutdown_flag();
    bool interrupted = false;
    while (!(interrupted = util::shutdown_requested())) {
        const std::optional<core::StreamChunk> chunk = source->next();
        if (!chunk) break;
        const estimate::TrackerUpdate u = tracker.ingest(*chunk);
        if (status_every != 0 && u.window % status_every == 0) print_track_line(u);
        if (!checkpoint_path.empty() && checkpoint_every != 0 &&
            tracker.windows() % checkpoint_every == 0)
            tracker.checkpoint().write_file(checkpoint_path);
    }
    if (!checkpoint_path.empty() && tracker.windows() > 0)
        tracker.checkpoint().write_file(checkpoint_path);

    const estimate::TrackerUpdate& last = tracker.last();
    std::printf("track %s after %llu windows: capacity %.4f +-%.4f bits/use, "
                "served %.4f, resyncs %llu, status %s\n",
                interrupted ? "interrupted (state flushed)" : "finished",
                static_cast<unsigned long long>(tracker.windows()), last.capacity,
                last.bound, last.served_rate,
                static_cast<unsigned long long>(last.resyncs),
                estimate::tracker_status_name(last.status));
    std::fflush(stdout);
    return 0;
}

void usage() {
    std::fputs(
        "usage: ccap <command> [options]\n"
        "  bounds    --pd X [--pi Y --ps Z --bits N --uses-per-sec R]\n"
        "  analyze   --sent FILE --received FILE [--bits N --uses-per-sec R\n"
        "            --estimator mle|em|align]\n"
        "  simulate  --sent FILE --received FILE [--pd X --pi Y --ps Z --bits N\n"
        "            --len L --seed S]\n"
        "  sweep     [--bits N --threads T --mi-blocks K --mi-block-len L\n"
        "            --band-eps E --mc-batch B --mc-point-tile G|auto\n"
        "            --mc-target-sem S --mc-max-blocks M --seed S --simd P\n"
        "            --verbose]\n"
        "  mi        [--pd X --pi Y --ps Z --bits N --block L --blocks K\n"
        "            --seed S --threads T --markov-stay Q --band-eps E\n"
        "            --mc-batch B --mc-target-sem S --mc-max-blocks M --simd P\n"
        "            --verbose]\n"
        "  windows   --sent FILE --received FILE [--window W]\n"
        "  protocol  [--proto saw|counter|gbn --pd X --ps Z --bits N --len L\n"
        "            --seed S --p-ack-loss P --p-ack-corrupt Q --ack-delay D\n"
        "            --ack-jitter J --timeout T --backoff-mult M --backoff-cap C\n"
        "            --use-cap U --storm-period/--storm-len\n"
        "            --drift-amp/--drift-period\n"
        "            --stuck-period/--stuck-len/--stuck-symbol]\n"
        "  contend   [--flows F --load R --ticks T --slices S --domain D\n"
        "            --queue-cap Q --deadline A --collision-rate K --pd X --pi Y\n"
        "            --ps Z --grid-step G --mi-block L --mi-blocks K\n"
        "            --mc-point-tile G|auto --mc-target-sem S --mc-max-blocks M\n"
        "            --seed S --threads T --simd P --cache on|off\n"
        "            --interp on|off --verbose]\n"
        "  track     [--sent FILE --received FILE | --pd X --pi Y --ps Z\n"
        "            --profile NAME --windows N --seed S] [--bits N --window W\n"
        "            --smoothing A --trend-window K --drift-slope D\n"
        "            --drift-sustain C --resync-jump J --ps-tolerance Z --warmup U\n"
        "            --aimd-increase I --aimd-beta B --headroom H --prefetch P\n"
        "            --grid-step G --mi-block L --mi-blocks K --mc-target-sem S\n"
        "            --mc-max-blocks M --mc-point-tile G|auto --threads T\n"
        "            --simd P --checkpoint FILE --checkpoint-every N\n"
        "            --resume FILE --status-every N --verbose]\n"
        "--threads 0 (default) uses every hardware thread; 1 runs serially.\n"
        "Monte-Carlo results are bit-identical for every --threads value.\n"
        "--band-eps > 0 prunes the drift lattice adaptively (certified slack;\n"
        "results are a slightly looser lower bound); 0 is exact.\n"
        "--mc-batch B advances B Monte-Carlo blocks in lockstep through the\n"
        "batched lattice (0 = auto, 1 = scalar); the estimate is unchanged.\n"
        "--mc-point-tile G evaluates G grid points per lattice sweep from one\n"
        "shared variate tape (common random numbers: same per-point law,\n"
        "positively correlated neighbors; auto = a vector-width multiple).\n"
        "0 (default) keeps independent per-point streams bit for bit.\n"
        "--mc-target-sem S > 0 makes the Monte-Carlo estimators adaptive:\n"
        "blocks run in rounds until the standard error reaches S or\n"
        "--mc-max-blocks M is spent (0 = 64 rounds). Stopping reads only the\n"
        "deterministic fold, so results stay bit-identical across --threads\n"
        "and --mc-batch; S = 0 keeps the fixed block count exactly.\n"
        "--simd scalar|neon|avx2|avx512 pins the lattice kernel path (same as\n"
        "the CCAP_SIMD env var; requests clamp down to what the CPU has).\n"
        "All paths are bit-identical at --band-eps 0. --verbose prints the\n"
        "resolved kernel path and Monte-Carlo tile shape before estimating\n"
        "(sweep prints to stderr; stdout stays CSV).\n"
        "`track` runs until its stream ends, --windows N are ingested, or\n"
        "SIGINT/SIGTERM arrives — then flushes a final checkpoint + report\n"
        "and exits 0. --resume continues bit-identically from a checkpoint.\n",
        stderr);
    std::fprintf(stderr,
                 "--profile presets (protocol, track): %s.\n"
                 "Explicit --storm-*/--drift-*/--stuck-* flags override preset "
                 "fields.\n",
                 core::fault_profile_presets_help());
}

/// One line, for the exit-code-2 paths; the full block above is for `help`.
void usage_hint() {
    std::fputs(
        "usage: ccap {bounds|analyze|simulate|sweep|mi|windows|protocol|contend|track|"
        "help} [--option value ...]\n",
        stderr);
}

const char* trace_error_kind(estimate::TraceError kind) {
    switch (kind) {
        case estimate::TraceError::unreadable: return "unreadable";
        case estimate::TraceError::malformed: return "malformed";
        case estimate::TraceError::truncated: return "truncated";
    }
    return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
        usage();
        return 0;
    }
    try {
        const Args args = parse_args(argc, argv, 2);
        if (command == "bounds") return cmd_bounds(args);
        if (command == "analyze") return cmd_analyze(args);
        if (command == "simulate") return cmd_simulate(args);
        if (command == "sweep") return cmd_sweep(args);
        if (command == "mi") return cmd_mi(args);
        if (command == "windows") return cmd_windows(args);
        if (command == "protocol") return cmd_protocol(args);
        if (command == "contend") return cmd_contend(args);
        if (command == "track") return cmd_track(args);
        std::fprintf(stderr, "ccap: unknown command '%s'\n", command.c_str());
        usage_hint();
        return 2;
    } catch (const UsageError& e) {
        std::fprintf(stderr, "ccap %s: %s\n", command.c_str(), e.what());
        usage_hint();
        return 2;
    } catch (const estimate::TraceIoError& e) {
        std::fprintf(stderr, "ccap %s: trace %s: %s\n", command.c_str(),
                     trace_error_kind(e.kind()), e.what());
        return 1;
    } catch (const util::CheckpointIoError& e) {
        std::fprintf(stderr, "ccap %s: checkpoint %s: %s\n", command.c_str(),
                     util::checkpoint_error_name(e.kind()), e.what());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ccap %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}
