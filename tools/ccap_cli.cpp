// ccap — command-line front end for the covert-channel capacity toolkit.
//
// Subcommands:
//   bounds    print the capacity band for given channel parameters
//   analyze   estimate parameters from sent/received trace files and report
//   simulate  generate sent/received traces through a Definition-1 channel
//   sweep     CSV of the capacity band over a (P_d, P_i) grid
//   mi        Monte-Carlo achievable rate through the drift lattice
//
// Parallelism: `--threads N` caps the worker threads used by the
// Monte-Carlo estimators and the sweep grid (default: one per hardware
// thread; 1 forces serial execution). Results are bit-identical for every
// thread count — see docs/THEORY.md §10.
//
// Examples:
//   ccap bounds --pd 0.15 --pi 0.05 --bits 2 --uses-per-sec 100
//   ccap simulate --pd 0.2 --len 5000 --sent sent.txt --received recv.txt
//   ccap analyze --sent sent.txt --received recv.txt --bits 1
//   ccap sweep --bits 4 > band.csv
//   ccap mi --pd 0.1 --pi 0.05 --block 128 --blocks 64 --threads 8

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/estimate/analyzer.hpp"
#include "ccap/estimate/report.hpp"
#include "ccap/estimate/changepoint.hpp"
#include "ccap/estimate/trace_io.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/thread_pool.hpp"

namespace {

using namespace ccap;

struct Args {
    std::map<std::string, std::string> values;

    [[nodiscard]] double number(const std::string& key, double fallback) const {
        const auto it = values.find(key);
        return it == values.end() ? fallback : std::stod(it->second);
    }
    [[nodiscard]] std::string text(const std::string& key, const std::string& fallback) const {
        const auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values.find(key);
        if (it == values.end()) throw std::runtime_error("missing required option --" + key);
        return it->second;
    }
};

Args parse_args(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag.rfind("--", 0) != 0)
            throw std::runtime_error("expected --option, got '" + flag + "'");
        if (i + 1 >= argc) throw std::runtime_error("option " + flag + " needs a value");
        args.values[flag.substr(2)] = argv[++i];
    }
    return args;
}

core::DiChannelParams params_from(const Args& args) {
    core::DiChannelParams p;
    p.p_d = args.number("pd", 0.0);
    p.p_i = args.number("pi", 0.0);
    p.p_s = args.number("ps", 0.0);
    p.bits_per_symbol = static_cast<unsigned>(args.number("bits", 1));
    p.validate();
    return p;
}

/// Worker-thread cap shared by the parallel subcommands: 0 (the default)
/// means one lane per hardware thread, 1 forces serial execution.
unsigned threads_from(const Args& args) {
    const double t = args.number("threads", 0.0);
    if (t < 0.0) throw std::runtime_error("--threads must be >= 0");
    return static_cast<unsigned>(t);
}

int cmd_bounds(const Args& args) {
    const auto p = params_from(args);
    const double ups = args.number("uses-per-sec", 100.0);
    const auto report = estimate::analyze_params(p, ups);
    std::fputs(estimate::render_report(report, p.to_string()).c_str(), stdout);
    return 0;
}

int cmd_analyze(const Args& args) {
    const auto sent = estimate::read_trace_file(args.require("sent"));
    const auto received = estimate::read_trace_file(args.require("received"));
    estimate::AnalyzerConfig cfg;
    cfg.bits_per_symbol = static_cast<unsigned>(args.number("bits", 1));
    cfg.uses_per_second = args.number("uses-per-sec", 100.0);
    const std::string kind = args.text("estimator", "mle");
    if (kind == "mle")
        cfg.estimator_kind = estimate::EstimatorKind::mle;
    else if (kind == "em")
        cfg.estimator_kind = estimate::EstimatorKind::em;
    else if (kind == "align")
        cfg.estimator_kind = estimate::EstimatorKind::alignment;
    else
        throw std::runtime_error("unknown --estimator (use mle, em or align)");
    const auto report = estimate::analyze_traces(sent, received, cfg);
    std::fputs(estimate::render_report(report, args.require("sent") + " vs " +
                                                   args.require("received"))
                   .c_str(),
               stdout);
    return 0;
}

int cmd_simulate(const Args& args) {
    const auto p = params_from(args);
    const auto len = static_cast<std::size_t>(args.number("len", 1000));
    const auto seed = static_cast<std::uint64_t>(args.number("seed", 1));
    util::Rng rng(seed);
    std::vector<std::uint32_t> sent(len);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
    core::DeletionInsertionChannel channel(p, seed ^ 0xC11);
    const auto t = channel.transduce(sent);
    estimate::write_trace_file(args.require("sent"), sent,
                               "sent trace, " + p.to_string());
    estimate::write_trace_file(args.require("received"), t.output,
                               "received trace, " + p.to_string());
    std::printf("wrote %zu sent / %zu received symbols (%llu channel uses)\n", sent.size(),
                t.output.size(), static_cast<unsigned long long>(t.channel_uses));
    return 0;
}

int cmd_windows(const Args& args) {
    const auto sent = estimate::read_trace_file(args.require("sent"));
    const auto received = estimate::read_trace_file(args.require("received"));
    const auto window = static_cast<std::size_t>(args.number("window", 1000));
    const auto rates = estimate::windowed_rates(sent, received, window);
    std::printf("window,p_d,p_i,p_s\n");
    for (std::size_t i = 0; i < rates.p_d.size(); ++i)
        std::printf("%zu,%.4f,%.4f,%.4f\n", i, rates.p_d[i], rates.p_i[i], rates.p_s[i]);
    const auto change = estimate::detect_rate_change(rates.p_d);
    if (change)
        std::printf("# P_d changepoint at window %zu: %.4f -> %.4f (z=%.1f)\n",
                    change->index, change->mean_before, change->mean_after, change->z_score);
    else
        std::printf("# no P_d changepoint detected\n");
    return 0;
}

int cmd_sweep(const Args& args) {
    const auto bits = static_cast<unsigned>(args.number("bits", 1));
    const unsigned threads = threads_from(args);
    // Optional Monte-Carlo MI column: --mi-blocks K (> 0 enables), with
    // --band-eps forwarding to the adaptive-band lattice.
    const auto mi_blocks = static_cast<std::size_t>(args.number("mi-blocks", 0));
    const auto mi_block_len = static_cast<std::size_t>(args.number("mi-block-len", 64));
    const double band_eps = args.number("band-eps", 0.0);
    const auto mc_batch = static_cast<std::size_t>(args.number("mc-batch", 0));
    const auto seed = static_cast<std::uint64_t>(args.number("seed", 1));
    // Materialize the grid, evaluate the points in parallel, print in order.
    std::vector<std::pair<double, double>> grid;
    for (double pd = 0.0; pd <= 0.501; pd += 0.05)
        for (double pi = 0.0; pi <= 0.301; pi += 0.05)
            if (pd + pi < 1.0) grid.emplace_back(pd, pi);
    std::vector<std::string> rows(grid.size());
    util::parallel_for(
        util::ThreadPool::shared(), grid.size(),
        [&](std::size_t i) {
            const auto [pd, pi] = grid[i];
            const core::DiChannelParams p{pd, pi, 0.0, bits};
            const auto band = core::capacity_band(p);
            char line[160];
            int len = std::snprintf(line, sizeof line, "%.2f,%.2f,%.4f,%.4f,%.4f,%.4f", pd,
                                    pi, band.lower, band.exact_protocol, band.upper,
                                    core::degraded_capacity(static_cast<double>(bits), p));
            if (mi_blocks > 0) {
                info::DriftParams dp;
                dp.p_d = pd;
                dp.p_i = pi;
                dp.alphabet = 1U << bits;
                info::McOptions opts;
                opts.block_len = mi_block_len;
                opts.num_blocks = mi_blocks;
                opts.threads = 1;  // the grid is already parallel
                opts.band_eps = band_eps;
                opts.batch = mc_batch;
                // Independent substream per grid point: deterministic under
                // any thread count, like the estimators themselves.
                util::Rng rng(util::substream_seed(seed, i));
                const auto est = info::iid_mutual_information_rate(dp, opts, rng);
                std::snprintf(line + len, sizeof line - static_cast<std::size_t>(len),
                              ",%.4f\n", est.rate);
            } else {
                std::snprintf(line + len, sizeof line - static_cast<std::size_t>(len), "\n");
            }
            rows[i] = line;
        },
        threads);
    std::printf(mi_blocks > 0 ? "p_d,p_i,thm5_lower,exact,thm1_upper,degraded,mc_mi\n"
                              : "p_d,p_i,thm5_lower,exact,thm1_upper,degraded\n");
    for (const auto& row : rows) std::fputs(row.c_str(), stdout);
    return 0;
}

int cmd_mi(const Args& args) {
    info::DriftParams p;
    p.p_d = args.number("pd", 0.0);
    p.p_i = args.number("pi", 0.0);
    p.p_s = args.number("ps", 0.0);
    p.alphabet = 1U << static_cast<unsigned>(args.number("bits", 1));
    info::McOptions opts;
    opts.block_len = static_cast<std::size_t>(args.number("block", 128));
    opts.num_blocks = static_cast<std::size_t>(args.number("blocks", 32));
    opts.threads = threads_from(args);
    // Adaptive-band lattice pruning; 0 (default) keeps the exact sweep.
    opts.band_eps = args.number("band-eps", 0.0);
    // Lockstep lattice lanes per Monte-Carlo tile; 0 (default) auto-tiles,
    // 1 forces the scalar path. Does not change the estimate.
    opts.batch = static_cast<std::size_t>(args.number("mc-batch", 0));
    util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 1)));

    const double stay = args.number("markov-stay", -1.0);
    info::MiEstimate est;
    if (stay >= 0.0) {
        est = info::markov_mutual_information_rate(
            p, info::MarkovSource::binary_repeat(stay), opts, rng);
    } else {
        est = info::iid_mutual_information_rate(p, opts, rng);
    }
    std::printf("achievable rate: %.4f bits/use (sem %.4f, 95%% CI +-%.4f)\n", est.rate,
                est.sem, 1.96 * est.sem);
    std::printf("blocks: %zu x %zu symbols, threads: %u\n", est.blocks, est.block_len,
                opts.threads);
    return 0;
}

void usage() {
    std::fputs(
        "usage: ccap <command> [options]\n"
        "  bounds    --pd X [--pi Y --ps Z --bits N --uses-per-sec R]\n"
        "  analyze   --sent FILE --received FILE [--bits N --uses-per-sec R\n"
        "            --estimator mle|em|align]\n"
        "  simulate  --sent FILE --received FILE [--pd X --pi Y --ps Z --bits N\n"
        "            --len L --seed S]\n"
        "  sweep     [--bits N --threads T --mi-blocks K --mi-block-len L\n"
        "            --band-eps E --mc-batch B --seed S]\n"
        "  mi        [--pd X --pi Y --ps Z --bits N --block L --blocks K\n"
        "            --seed S --threads T --markov-stay Q --band-eps E\n"
        "            --mc-batch B]\n"
        "  windows   --sent FILE --received FILE [--window W]\n"
        "--threads 0 (default) uses every hardware thread; 1 runs serially.\n"
        "Monte-Carlo results are bit-identical for every --threads value.\n"
        "--band-eps > 0 prunes the drift lattice adaptively (certified slack;\n"
        "results are a slightly looser lower bound); 0 is exact.\n"
        "--mc-batch B advances B Monte-Carlo blocks in lockstep through the\n"
        "batched lattice (0 = auto, 1 = scalar); the estimate is unchanged.\n",
        stderr);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    try {
        const Args args = parse_args(argc, argv, 2);
        if (command == "bounds") return cmd_bounds(args);
        if (command == "analyze") return cmd_analyze(args);
        if (command == "simulate") return cmd_simulate(args);
        if (command == "sweep") return cmd_sweep(args);
        if (command == "mi") return cmd_mi(args);
        if (command == "windows") return cmd_windows(args);
        usage();
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ccap %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}
