// ccap — command-line front end for the covert-channel capacity toolkit.
//
// Subcommands:
//   bounds    print the capacity band for given channel parameters
//   analyze   estimate parameters from sent/received trace files and report
//   simulate  generate sent/received traces through a Definition-1 channel
//   sweep     CSV of the capacity band over a (P_d, P_i) grid
//
// Examples:
//   ccap bounds --pd 0.15 --pi 0.05 --bits 2 --uses-per-sec 100
//   ccap simulate --pd 0.2 --len 5000 --sent sent.txt --received recv.txt
//   ccap analyze --sent sent.txt --received recv.txt --bits 1
//   ccap sweep --bits 4 > band.csv

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/estimate/analyzer.hpp"
#include "ccap/estimate/report.hpp"
#include "ccap/estimate/changepoint.hpp"
#include "ccap/estimate/trace_io.hpp"

namespace {

using namespace ccap;

struct Args {
    std::map<std::string, std::string> values;

    [[nodiscard]] double number(const std::string& key, double fallback) const {
        const auto it = values.find(key);
        return it == values.end() ? fallback : std::stod(it->second);
    }
    [[nodiscard]] std::string text(const std::string& key, const std::string& fallback) const {
        const auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values.find(key);
        if (it == values.end()) throw std::runtime_error("missing required option --" + key);
        return it->second;
    }
};

Args parse_args(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag.rfind("--", 0) != 0)
            throw std::runtime_error("expected --option, got '" + flag + "'");
        if (i + 1 >= argc) throw std::runtime_error("option " + flag + " needs a value");
        args.values[flag.substr(2)] = argv[++i];
    }
    return args;
}

core::DiChannelParams params_from(const Args& args) {
    core::DiChannelParams p;
    p.p_d = args.number("pd", 0.0);
    p.p_i = args.number("pi", 0.0);
    p.p_s = args.number("ps", 0.0);
    p.bits_per_symbol = static_cast<unsigned>(args.number("bits", 1));
    p.validate();
    return p;
}

int cmd_bounds(const Args& args) {
    const auto p = params_from(args);
    const double ups = args.number("uses-per-sec", 100.0);
    const auto report = estimate::analyze_params(p, ups);
    std::fputs(estimate::render_report(report, p.to_string()).c_str(), stdout);
    return 0;
}

int cmd_analyze(const Args& args) {
    const auto sent = estimate::read_trace_file(args.require("sent"));
    const auto received = estimate::read_trace_file(args.require("received"));
    estimate::AnalyzerConfig cfg;
    cfg.bits_per_symbol = static_cast<unsigned>(args.number("bits", 1));
    cfg.uses_per_second = args.number("uses-per-sec", 100.0);
    const std::string kind = args.text("estimator", "mle");
    if (kind == "mle")
        cfg.estimator_kind = estimate::EstimatorKind::mle;
    else if (kind == "em")
        cfg.estimator_kind = estimate::EstimatorKind::em;
    else if (kind == "align")
        cfg.estimator_kind = estimate::EstimatorKind::alignment;
    else
        throw std::runtime_error("unknown --estimator (use mle, em or align)");
    const auto report = estimate::analyze_traces(sent, received, cfg);
    std::fputs(estimate::render_report(report, args.require("sent") + " vs " +
                                                   args.require("received"))
                   .c_str(),
               stdout);
    return 0;
}

int cmd_simulate(const Args& args) {
    const auto p = params_from(args);
    const auto len = static_cast<std::size_t>(args.number("len", 1000));
    const auto seed = static_cast<std::uint64_t>(args.number("seed", 1));
    util::Rng rng(seed);
    std::vector<std::uint32_t> sent(len);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
    core::DeletionInsertionChannel channel(p, seed ^ 0xC11);
    const auto t = channel.transduce(sent);
    estimate::write_trace_file(args.require("sent"), sent,
                               "sent trace, " + p.to_string());
    estimate::write_trace_file(args.require("received"), t.output,
                               "received trace, " + p.to_string());
    std::printf("wrote %zu sent / %zu received symbols (%llu channel uses)\n", sent.size(),
                t.output.size(), static_cast<unsigned long long>(t.channel_uses));
    return 0;
}

int cmd_windows(const Args& args) {
    const auto sent = estimate::read_trace_file(args.require("sent"));
    const auto received = estimate::read_trace_file(args.require("received"));
    const auto window = static_cast<std::size_t>(args.number("window", 1000));
    const auto rates = estimate::windowed_rates(sent, received, window);
    std::printf("window,p_d,p_i,p_s\n");
    for (std::size_t i = 0; i < rates.p_d.size(); ++i)
        std::printf("%zu,%.4f,%.4f,%.4f\n", i, rates.p_d[i], rates.p_i[i], rates.p_s[i]);
    const auto change = estimate::detect_rate_change(rates.p_d);
    if (change)
        std::printf("# P_d changepoint at window %zu: %.4f -> %.4f (z=%.1f)\n",
                    change->index, change->mean_before, change->mean_after, change->z_score);
    else
        std::printf("# no P_d changepoint detected\n");
    return 0;
}

int cmd_sweep(const Args& args) {
    const auto bits = static_cast<unsigned>(args.number("bits", 1));
    std::printf("p_d,p_i,thm5_lower,exact,thm1_upper,degraded\n");
    for (double pd = 0.0; pd <= 0.501; pd += 0.05) {
        for (double pi = 0.0; pi <= 0.301; pi += 0.05) {
            if (pd + pi >= 1.0) continue;
            const core::DiChannelParams p{pd, pi, 0.0, bits};
            const auto band = core::capacity_band(p);
            std::printf("%.2f,%.2f,%.4f,%.4f,%.4f,%.4f\n", pd, pi, band.lower,
                        band.exact_protocol, band.upper,
                        core::degraded_capacity(static_cast<double>(bits), p));
        }
    }
    return 0;
}

void usage() {
    std::fputs(
        "usage: ccap <command> [options]\n"
        "  bounds    --pd X [--pi Y --ps Z --bits N --uses-per-sec R]\n"
        "  analyze   --sent FILE --received FILE [--bits N --uses-per-sec R\n"
        "            --estimator mle|em|align]\n"
        "  simulate  --sent FILE --received FILE [--pd X --pi Y --ps Z --bits N\n"
        "            --len L --seed S]\n"
        "  sweep     [--bits N]\n"
        "  windows   --sent FILE --received FILE [--window W]\n",
        stderr);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    try {
        const Args args = parse_args(argc, argv, 2);
        if (command == "bounds") return cmd_bounds(args);
        if (command == "analyze") return cmd_analyze(args);
        if (command == "simulate") return cmd_simulate(args);
        if (command == "sweep") return cmd_sweep(args);
        if (command == "windows") return cmd_windows(args);
        usage();
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "ccap %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}
