# simulate -> analyze round trip through real files.
execute_process(
  COMMAND ${CCAP_BIN} simulate --pd 0.15 --pi 0.05 --bits 2 --len 4000 --seed 9
          --sent ${WORK_DIR}/cli_sent.txt --received ${WORK_DIR}/cli_recv.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed: ${rc}")
endif()
if(NOT DEFINED ESTIMATOR)
  set(ESTIMATOR mle)
endif()
execute_process(
  COMMAND ${CCAP_BIN} analyze --sent ${WORK_DIR}/cli_sent.txt
          --received ${WORK_DIR}/cli_recv.txt --bits 2 --estimator ${ESTIMATOR}
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed: ${rc}")
endif()
if(NOT out MATCHES "P_d = 0\\.1")
  message(FATAL_ERROR "analyze did not recover P_d ~ 0.15: ${out}")
endif()
