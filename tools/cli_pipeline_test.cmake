# simulate -> analyze round trip through real files, plus (in the default
# invocation only) the CLI's rejection paths: unknown flags, out-of-range
# values and corrupt trace fixtures must all exit non-zero.

# Negative coverage runs once — the EM/align re-invocations pass ESTIMATOR
# and only re-check the round trip.
if(NOT DEFINED ESTIMATOR)
  set(run_negative TRUE)
  set(ESTIMATOR mle)
else()
  set(run_negative FALSE)
endif()

execute_process(
  COMMAND ${CCAP_BIN} simulate --pd 0.15 --pi 0.05 --bits 2 --len 4000 --seed 9
          --sent ${WORK_DIR}/cli_sent.txt --received ${WORK_DIR}/cli_recv.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed: ${rc}")
endif()
execute_process(
  COMMAND ${CCAP_BIN} analyze --sent ${WORK_DIR}/cli_sent.txt
          --received ${WORK_DIR}/cli_recv.txt --bits 2 --estimator ${ESTIMATOR}
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed: ${rc}")
endif()
if(NOT out MATCHES "P_d = 0\\.1")
  message(FATAL_ERROR "analyze did not recover P_d ~ 0.15: ${out}")
endif()

if(NOT run_negative)
  return()
endif()

# Helper: the command must fail with the expected exit code and mention
# the expected text on stderr.
function(ccap_expect_failure expected_rc expected_match)
  execute_process(
    COMMAND ${CCAP_BIN} ${ARGN}
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR
      "'ccap ${ARGN}' exited ${rc}, expected ${expected_rc} (${err})")
  endif()
  if(NOT err MATCHES "${expected_match}")
    message(FATAL_ERROR
      "'ccap ${ARGN}' stderr did not match '${expected_match}': ${err}")
  endif()
endfunction()

# Unknown flag: usage error, exit 2, one-line usage hint.
ccap_expect_failure(2 "unknown option --theads.*usage: ccap"
  mi --theads 4)
# Malformed value: strict numeric parse rejects trailing garbage.
ccap_expect_failure(2 "expects a number"
  bounds --pd 0.2x)
# Out-of-range values: negative counts and infeasible probabilities.
ccap_expect_failure(2 "non-negative integer"
  mi --threads -2)
ccap_expect_failure(1 "exceeds 1"
  bounds --pd 0.8 --pi 0.6)
# CRN point tiling: malformed width is a usage error, and the flag only
# exists on the grid commands (sweep, contend).
ccap_expect_failure(2 "mc-point-tile expects a non-negative integer or 'auto'"
  sweep --mi-blocks 2 --mc-point-tile fast)
ccap_expect_failure(2 "unknown option --mc-point-tile"
  mi --mc-point-tile 4)
# Truncated trace fixture: the framed header promises more symbols than
# the file holds -> typed trace error, exit 1.
file(WRITE ${WORK_DIR}/cli_truncated.txt
  "# torn write fixture\n# ccap-trace v1 count=9\n1\n2\n3\n")
ccap_expect_failure(1 "trace truncated"
  analyze --sent ${WORK_DIR}/cli_truncated.txt
          --received ${WORK_DIR}/cli_recv.txt --bits 2)
ccap_expect_failure(1 "trace unreadable"
  analyze --sent ${WORK_DIR}/does_not_exist.txt
          --received ${WORK_DIR}/cli_recv.txt --bits 2)

# CRN sweep smoke: the verbose tile report lands on stderr, the CSV stays
# on stdout and carries the MI column.
execute_process(
  COMMAND ${CCAP_BIN} sweep --mi-blocks 2 --mi-block-len 16 --mc-point-tile auto
          --threads 2 --verbose
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep --mc-point-tile auto failed: ${rc} (${err})")
endif()
if(NOT err MATCHES "# mc point tile: [0-9]+ points/sweep \\(crn, requested auto\\)")
  message(FATAL_ERROR "sweep --verbose printed no point-tile report: ${err}")
endif()
if(NOT out MATCHES "p_d,p_i,thm5_lower,exact,thm1_upper,degraded,mc_mi")
  message(FATAL_ERROR "sweep CSV header missing mc_mi column: ${out}")
endif()

# Hardened-protocol smoke: lossy-link stop-and-wait must stay reliable and
# report a predicted rate from the closed form.
execute_process(
  COMMAND ${CCAP_BIN} protocol --proto saw --pd 0.2 --p-ack-loss 0.2
          --ack-delay 2 --timeout 6 --len 4000 --seed 5
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "protocol saw failed: ${rc}")
endif()
if(NOT out MATCHES "reliable: yes")
  message(FATAL_ERROR "hardened saw was not reliable: ${out}")
endif()
if(NOT out MATCHES "predicted rate:")
  message(FATAL_ERROR "protocol saw printed no prediction: ${out}")
endif()
# Infeasible hardened options (timeout below the link's worst-case
# latency) are a runtime failure, not a hang.
ccap_expect_failure(1 "timeout"
  protocol --proto saw --ack-delay 9 --timeout 4)

# ---------------------------------------------------------------------------
# track: online capacity tracker — checkpoint round trip through real files
# and its rejection paths.
# ---------------------------------------------------------------------------

# Unknown flag and unknown fault-profile preset are usage errors (exit 2);
# the help text must list every preset by name.
ccap_expect_failure(2 "unknown option --checkpont"
  track --pd 0.2 --windows 2 --checkpont ${WORK_DIR}/x.ckpt)
ccap_expect_failure(2 "unknown --profile 'hurricane'.*storms.*drift.*stuck"
  track --pd 0.2 --windows 2 --profile hurricane)
ccap_expect_failure(2 "unknown --profile"
  protocol --proto saw --profile hurricane)
execute_process(COMMAND ${CCAP_BIN} help ERROR_VARIABLE help_text)
if(NOT help_text MATCHES "--profile presets.*none.*storms.*drift.*stuck")
  message(FATAL_ERROR "help does not list the fault-profile presets: ${help_text}")
endif()

# Live run writing a checkpoint, then a bit-identical resume: the resumed
# run's final report must equal the uninterrupted run's.
set(track_flags --pd 0.2 --window 800 --grid-step 0.05 --mi-block 16
    --mi-blocks 4 --seed 3 --status-every 0)
execute_process(
  COMMAND ${CCAP_BIN} track ${track_flags} --windows 8
  OUTPUT_VARIABLE full_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "track full run failed: ${rc}")
endif()
execute_process(
  COMMAND ${CCAP_BIN} track ${track_flags} --windows 4
          --checkpoint ${WORK_DIR}/cli_track.ckpt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "track checkpoint run failed: ${rc}")
endif()
execute_process(
  COMMAND ${CCAP_BIN} track ${track_flags} --windows 8
          --resume ${WORK_DIR}/cli_track.ckpt
  OUTPUT_VARIABLE resumed_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "track resume run failed: ${rc}")
endif()
if(NOT full_out MATCHES "track finished after 8 windows: (capacity [^\n]+)")
  message(FATAL_ERROR "track full run printed no final report: ${full_out}")
endif()
set(full_report "${CMAKE_MATCH_1}")
if(NOT resumed_out MATCHES "track finished after 8 windows: (capacity [^\n]+)")
  message(FATAL_ERROR "track resume printed no final report: ${resumed_out}")
endif()
if(NOT full_report STREQUAL CMAKE_MATCH_1)
  message(FATAL_ERROR
    "resumed track diverged from the uninterrupted run:\n${full_out}\nvs\n${resumed_out}")
endif()

# Corrupt checkpoints: typed errors, exit 1, the kind named on stderr.
file(WRITE ${WORK_DIR}/cli_track_torn.ckpt
  "# ccap-track v1 fields=9\nfingerprint 1\n")
ccap_expect_failure(1 "checkpoint truncated"
  track --pd 0.2 --windows 2 --resume ${WORK_DIR}/cli_track_torn.ckpt)
file(WRITE ${WORK_DIR}/cli_track_v9.ckpt "# ccap-track v9 fields=0\n")
ccap_expect_failure(1 "checkpoint version mismatch"
  track --pd 0.2 --windows 2 --resume ${WORK_DIR}/cli_track_v9.ckpt)
ccap_expect_failure(1 "checkpoint unreadable"
  track --pd 0.2 --windows 2 --resume ${WORK_DIR}/cli_track_missing.ckpt)
# A checkpoint from another configuration: fingerprint mismatch, malformed.
ccap_expect_failure(1 "checkpoint malformed.*different tracker configuration"
  track ${track_flags} --windows 2 --window 999
        --resume ${WORK_DIR}/cli_track.ckpt)

# Trace mode: the tracker over simulated files ends cleanly.
execute_process(
  COMMAND ${CCAP_BIN} track --sent ${WORK_DIR}/cli_sent.txt
          --received ${WORK_DIR}/cli_recv.txt --bits 2 --window 800
          --grid-step 0.05 --mi-block 16 --mi-blocks 4 --status-every 2
  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "track trace mode failed: ${rc}")
endif()
if(NOT out MATCHES "track finished after 5 windows")
  message(FATAL_ERROR "track trace mode did not ingest 5 windows: ${out}")
endif()
