#include "ccap/coding/interleaver.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::coding;

TEST(Interleaver, IdentityByDefault) {
    Interleaver il(6);
    const Bits in = bits_from_string("101100");
    EXPECT_EQ(il.apply(in), in);
    EXPECT_EQ(il.invert(in), in);
}

TEST(Interleaver, ApplyInvertRoundTrip) {
    const Interleaver il = Interleaver::random(64, 3);
    const Bits in = random_bits(64, 4);
    EXPECT_EQ(il.invert(il.apply(in)), in);
    EXPECT_EQ(il.apply(il.invert(in)), in);
}

TEST(Interleaver, BlockLayout) {
    // 2x3 block: write rows [a b c / d e f], read columns -> a d b e c f.
    const Interleaver il = Interleaver::block(2, 3);
    const Bits in = {1, 0, 1, 0, 1, 0};  // a=1 b=0 c=1 d=0 e=1 f=0
    EXPECT_EQ(to_string(il.apply(in)), "100110");
}

TEST(Interleaver, BlockDimensionValidation) {
    EXPECT_THROW((void)Interleaver::block(0, 3), std::invalid_argument);
    EXPECT_THROW((void)Interleaver::block(3, 0), std::invalid_argument);
}

TEST(Interleaver, RandomIsDeterministicPerSeed) {
    const Interleaver a = Interleaver::random(32, 9);
    const Interleaver b = Interleaver::random(32, 9);
    const Interleaver c = Interleaver::random(32, 10);
    const Bits in = random_bits(32, 1);
    EXPECT_EQ(a.apply(in), b.apply(in));
    EXPECT_NE(a.apply(in), c.apply(in));
}

TEST(Interleaver, RandomActuallyPermutes) {
    const Interleaver il = Interleaver::random(100, 11);
    bool moved = false;
    for (std::size_t i = 0; i < 100; ++i)
        if (il.map(i) != i) moved = true;
    EXPECT_TRUE(moved);
}

TEST(Interleaver, SizeMismatchThrows) {
    const Interleaver il(8);
    const Bits wrong(7, 0);
    EXPECT_THROW((void)il.apply(wrong), std::invalid_argument);
    EXPECT_THROW((void)il.invert(wrong), std::invalid_argument);
}

TEST(Interleaver, MapBoundsChecked) {
    const Interleaver il(4);
    EXPECT_THROW((void)il.map(4), std::out_of_range);
}

TEST(Interleaver, SpreadsBursts) {
    // A burst of adjacent positions should land far apart after a random
    // interleave (statistically).
    const Interleaver il = Interleaver::random(256, 12);
    Bits in(256, 0);
    for (std::size_t i = 100; i < 108; ++i) in[i] = 1;
    const Bits out = il.invert(in);  // where the burst lands in the channel order
    std::size_t adjacent = 0;
    for (std::size_t i = 0; i + 1 < out.size(); ++i)
        if (out[i] == 1 && out[i + 1] == 1) ++adjacent;
    EXPECT_LE(adjacent, 2U);
}

}  // namespace
