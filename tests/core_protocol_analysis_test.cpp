#include "ccap/core/protocol_analysis.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::core;

TEST(HandshakeThroughput, PeaksAtEqualShares) {
    EXPECT_DOUBLE_EQ(handshake_expected_throughput(0.5), 0.25);
    EXPECT_GT(handshake_expected_throughput(0.5), handshake_expected_throughput(0.3));
    EXPECT_GT(handshake_expected_throughput(0.5), handshake_expected_throughput(0.7));
    EXPECT_DOUBLE_EQ(handshake_expected_throughput(0.3), handshake_expected_throughput(0.7));
}

TEST(HandshakeThroughput, ShareValidation) {
    EXPECT_THROW((void)handshake_expected_throughput(0.0), std::domain_error);
    EXPECT_THROW((void)handshake_expected_throughput(1.0), std::domain_error);
}

TEST(CommonEventThroughput, KnownValues) {
    // L=1, q=0.5: (0.5)(0.5)/2 = 0.125.
    EXPECT_DOUBLE_EQ(common_event_expected_throughput(0.5, 1), 0.125);
    // L=2, q=0.5: (0.75)(0.75)/4 = 0.140625.
    EXPECT_DOUBLE_EQ(common_event_expected_throughput(0.5, 2), 0.140625);
}

TEST(CommonEventThroughput, Validation) {
    EXPECT_THROW((void)common_event_expected_throughput(0.5, 0), std::invalid_argument);
    EXPECT_THROW((void)common_event_expected_throughput(0.0, 1), std::domain_error);
}

TEST(CommonEventOptimum, FindsInteriorMaximum) {
    const CommonEventOptimum best = common_event_best_throughput(0.5);
    EXPECT_GE(best.slot_len, 1U);
    // Neighbouring slot lengths cannot beat the optimum.
    if (best.slot_len > 1) {
        EXPECT_GE(best.throughput,
                  common_event_expected_throughput(0.5, best.slot_len - 1));
    }
    EXPECT_GE(best.throughput, common_event_expected_throughput(0.5, best.slot_len + 1));
}

TEST(CommonEventOptimum, Validation) {
    EXPECT_THROW((void)common_event_best_throughput(0.5, 0), std::invalid_argument);
}

TEST(FeedbackAdvantage, Section422ReductionHoldsEverywhere) {
    // The paper's Section 4.2.2 claim, checked over a dense share sweep:
    // common events never beat feedback.
    for (double q = 0.05; q < 1.0; q += 0.05)
        EXPECT_GE(feedback_advantage(q), 0.0) << "q=" << q;
}

TEST(FeedbackAdvantage, ShrinksButStaysPositive) {
    // The margin is largest at balanced shares and stays strictly positive.
    EXPECT_GT(feedback_advantage(0.5), feedback_advantage(0.05));
    EXPECT_GT(feedback_advantage(0.05), 0.0);
}

TEST(StopAndWaitUses, Analysis) {
    DiChannelParams p{0.2, 0.0, 0.0, 1};
    EXPECT_DOUBLE_EQ(stop_and_wait_expected_uses(p, 800), 1000.0);
    DiChannelParams degenerate{1.0, 0.0, 0.0, 1};
    EXPECT_THROW((void)stop_and_wait_expected_uses(degenerate, 10), std::domain_error);
}

TEST(GarbageFraction, Analysis) {
    DiChannelParams p{0.2, 0.1, 0.0, 1};
    EXPECT_DOUBLE_EQ(counter_protocol_garbage_fraction(p), 0.125);
    EXPECT_DOUBLE_EQ(counter_protocol_garbage_fraction({0.0, 0.0, 0.0, 1}), 0.0);
}

}  // namespace
