// Integration: the full practitioner pipeline of Section 4.3 —
// scheduler simulation -> covert traces -> parameter estimation ->
// capacity bounds -> severity — plus cross-checks between the sched-level
// and core-level models of the same mechanisms.
#include <gtest/gtest.h>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/protocol_analysis.hpp"
#include "ccap/estimate/analyzer.hpp"
#include "ccap/sched/covert_pair.hpp"
#include "ccap/sched/mls_system.hpp"

namespace {

using namespace ccap;

TEST(Pipeline, SchedulerTracesToCapacityVerdict) {
    // 1. Simulate the paper's Section 3.1 uniprocessor covert channel under
    //    a memoryless random scheduler.
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::naive;
    cfg.message_len = 8000;
    cfg.bits_per_symbol = 3;
    const auto run = sched::run_covert_pair(sched::make_random(), cfg, 21);

    // 2-4. Estimate parameters, compute the paper's bounds, classify.
    estimate::AnalyzerConfig acfg;
    acfg.bits_per_symbol = 3;
    acfg.uses_per_second = 100.0;
    const auto report = estimate::analyze_traces(run.sent, run.received, acfg);

    // A fair memoryless scheduler produces both deletions and insertions at
    // clearly nonzero rates.
    EXPECT_GT(report.params.p_d.value, 0.05);
    EXPECT_GT(report.params.p_i.value, 0.05);
    // The corrected capacity is strictly below the traditional estimate.
    EXPECT_LT(report.degraded_bits_per_use, report.traditional_bits_per_use);
    // Band ordering holds on real (estimated) parameters too.
    EXPECT_LE(report.band_bits_per_use.lower, report.band_bits_per_use.upper + 1e-9);
}

TEST(Pipeline, RoundRobinSchedulerIsNearlySynchronous) {
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::naive;
    cfg.message_len = 4000;
    const auto run = sched::run_covert_pair(sched::make_round_robin(), cfg, 22);
    const auto est = estimate::estimate_params(run.sent, run.received);
    // Perfect alternation: essentially no deletions/insertions.
    EXPECT_LT(est.p_d.value, 0.01);
    EXPECT_LT(est.p_i.value, 0.01);
}

TEST(Pipeline, FuzzierSchedulersAdmitLessCapacity) {
    // Section 3.2: "Our method can be used to evaluate the effectiveness of
    // candidate system implementations, e.g., the scheduler, in reducing
    // covert channel capacities." More scheduling randomness -> higher P_d
    // -> lower corrected capacity.
    double prev_capacity = 1e9;
    for (double eps : {0.0, 0.5, 1.0}) {
        sched::CovertPairConfig cfg;
        cfg.mode = sched::PairMode::naive;
        cfg.message_len = 6000;
        const auto run =
            sched::run_covert_pair(sched::make_fuzzy_round_robin(eps), cfg, 23);
        const auto est = estimate::estimate_params(run.sent, run.received);
        const double cap = core::degraded_capacity(1.0, est.params(1));
        EXPECT_LT(cap, prev_capacity + 0.02) << "eps=" << eps;
        prev_capacity = cap;
    }
}

TEST(Pipeline, HandshakeThroughputMatchesCoreAnalysis) {
    // The sched-level Fig-1 handshake and the core-level closed form are
    // independent implementations of the same mechanism.
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::handshake;
    cfg.message_len = 6000;
    const auto run = sched::run_covert_pair(sched::make_random(), cfg, 24);
    ASSERT_TRUE(run.reliable);
    EXPECT_NEAR(run.symbols_per_quantum(), core::handshake_expected_throughput(0.5), 0.02);
}

TEST(Pipeline, MlsFeedbackBeatsNoFeedbackInDeliveredSecrets) {
    sched::MlsConfig with;
    with.message_len = 3000;
    with.use_legal_feedback = true;
    sched::MlsConfig without = with;
    without.use_legal_feedback = false;

    const auto fb = sched::run_mls_exfiltration(sched::make_random(), with, 25);
    const auto raw = sched::run_mls_exfiltration(sched::make_random(), without, 25);
    EXPECT_TRUE(fb.exact);
    EXPECT_FALSE(raw.exact);
    // Correct-prefix goodput collapses almost immediately without feedback.
    EXPECT_GT(fb.goodput(), raw.goodput());
}

TEST(Pipeline, NaiveSchedulerChannelMatchesClosedForm) {
    // Cross-layer validation: the closed-form Definition-1 parameters of
    // the naive pair under a memoryless scheduler
    // (naive_scheduler_channel_params) should match what the MLE estimator
    // recovers from an actual scheduler simulation. 4-bit symbols keep the
    // alignment/likelihood nearly unambiguous.
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::naive;
    cfg.message_len = 8000;
    cfg.bits_per_symbol = 4;
    const auto run = sched::run_covert_pair(sched::make_random(), cfg, 27);
    // Ground-truth event rates from the simulation itself.
    const double uses =
        static_cast<double>(run.deletions + run.insertions + run.transmissions);
    const auto theory = core::naive_scheduler_channel_params(0.5, 4);
    EXPECT_NEAR(static_cast<double>(run.deletions) / uses, theory.p_d, 0.02);
    EXPECT_NEAR(static_cast<double>(run.insertions) / uses, theory.p_i, 0.02);
    EXPECT_NEAR(static_cast<double>(run.transmissions) / uses, theory.p_t(), 0.02);
    // The Definition-1 MLE sees the same events but through a misspecified
    // emission model (scheduler "insertions" are duplicates, not uniform
    // symbols), so it lands near — not on — the closed form. Documented
    // model-mismatch band:
    const auto est = estimate::estimate_params_mle(run.sent, run.received, 4);
    EXPECT_NEAR(est.p_d.value, theory.p_d, 0.10);
    EXPECT_NEAR(est.p_i.value, theory.p_i, 0.10);
}

TEST(Pipeline, NaiveSchedulerClosedFormProperties) {
    // Sanity of the mapping itself.
    const auto mid = core::naive_scheduler_channel_params(0.5, 1);
    EXPECT_NEAR(mid.p_d, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(mid.p_i, 1.0 / 3.0, 1e-12);
    // A starved receiver mostly deletes; a starved sender mostly inserts.
    const auto sender_heavy = core::naive_scheduler_channel_params(0.9, 1);
    EXPECT_GT(sender_heavy.p_d, 0.7);
    const auto receiver_heavy = core::naive_scheduler_channel_params(0.1, 1);
    EXPECT_GT(receiver_heavy.p_i, 0.7);
    // Symmetry: swapping shares swaps deletion and insertion rates.
    EXPECT_NEAR(sender_heavy.p_d, receiver_heavy.p_i, 1e-12);
}

TEST(Pipeline, MlfqSchedulerInPolicySweep) {
    // The MLFQ policy slots into the same covert-pair machinery.
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::naive;
    cfg.message_len = 3000;
    const auto run = sched::run_covert_pair(sched::make_mlfq(), cfg, 28);
    EXPECT_EQ(run.sent.size(), 3000U);
    const auto est = estimate::estimate_params(run.sent, run.received);
    // Two always-runnable processes under MLFQ degenerate to round-robin
    // (same level, RR within level): essentially synchronous.
    EXPECT_LT(est.p_d.value, 0.02);
    EXPECT_LT(est.p_i.value, 0.02);
}

TEST(Pipeline, NaiveChannelEstimateFeedsTheorem5Band) {
    // Estimated scheduler-channel parameters plugged into the Theorem-5 /
    // Theorem-1 band behave like the analytic ones.
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::naive;
    cfg.message_len = 8000;
    const auto run = sched::run_covert_pair(sched::make_random(), cfg, 26);
    const auto est = estimate::estimate_params(run.sent, run.received);
    const auto band = core::capacity_band(est.params(1));
    EXPECT_GT(band.upper, 0.0);
    EXPECT_LE(band.lower, band.upper + 1e-9);
    EXPECT_LE(band.exact_protocol, band.upper + 1e-9);
}

}  // namespace
