#include "ccap/coding/lt_code.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::coding;
using ccap::util::Rng;

LtParams params(std::size_t k, std::uint64_t seed = 1) {
    LtParams p;
    p.k = k;
    p.seed = seed;
    return p;
}

std::vector<std::uint32_t> random_source(std::size_t k, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint32_t> s(k);
    for (auto& v : s) v = static_cast<std::uint32_t>(rng.next());
    return s;
}

TEST(LtCode, ParamValidation) {
    EXPECT_THROW((void)LtCode(params(1)), std::invalid_argument);
    LtParams bad = params(10);
    bad.c = 0.0;
    EXPECT_THROW((void)LtCode(bad), std::domain_error);
    bad = params(10);
    bad.delta = 1.0;
    EXPECT_THROW((void)LtCode(bad), std::domain_error);
}

TEST(LtCode, DegreeDistributionIsADistribution) {
    const LtCode code(params(200));
    double sum = 0.0;
    for (double p : code.degree_distribution()) {
        EXPECT_GE(p, 0.0);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Degree-2 dominates the ideal soliton.
    EXPECT_GT(code.degree_distribution()[1], code.degree_distribution()[4]);
}

TEST(LtCode, NeighborsDeterministicAndValid) {
    const LtCode code(params(50, 7));
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto a = code.neighbors(i);
        const auto b = code.neighbors(i);
        EXPECT_EQ(a, b);
        EXPECT_GE(a.size(), 1U);
        std::set<std::size_t> uniq(a.begin(), a.end());
        EXPECT_EQ(uniq.size(), a.size());
        for (std::size_t s : a) EXPECT_LT(s, 50U);
    }
}

TEST(LtCode, DifferentSeedsDifferentNeighborhoods) {
    const LtCode a(params(50, 1)), b(params(50, 2));
    int same = 0;
    for (std::uint64_t i = 0; i < 50; ++i) same += a.neighbors(i) == b.neighbors(i);
    EXPECT_LT(same, 25);
}

TEST(LtCode, EncodeSymbolIsXorOfNeighbors) {
    const LtCode code(params(20, 3));
    const auto source = random_source(20, 4);
    for (std::uint64_t i = 0; i < 40; ++i) {
        std::uint32_t expect = 0;
        for (std::size_t s : code.neighbors(i)) expect ^= source[s];
        EXPECT_EQ(code.encode_symbol(i, source), expect);
    }
    const std::vector<std::uint32_t> wrong(19, 0);
    EXPECT_THROW((void)code.encode_symbol(0, wrong), std::invalid_argument);
}

TEST(LtDecoder, LosslessStreamDecodes) {
    const LtCode code(params(100, 5));
    const auto source = random_source(100, 6);
    LtDecoder dec(code);
    std::uint64_t i = 0;
    while (!dec.complete() && i < 400) {
        dec.add_symbol(i, code.encode_symbol(i, source));
        ++i;
    }
    ASSERT_TRUE(dec.complete());
    // Modest overhead: robust soliton needs ~k + O(sqrt(k) log^2) symbols.
    EXPECT_LT(dec.symbols_consumed(), 170U);
    for (std::size_t s = 0; s < 100; ++s) {
        ASSERT_TRUE(dec.source()[s].has_value());
        EXPECT_EQ(*dec.source()[s], source[s]);
    }
}

TEST(LtDecoder, SurvivesRandomErasures) {
    const LtCode code(params(80, 8));
    const auto source = random_source(80, 9);
    Rng rng(10);
    LtDecoder dec(code);
    std::uint64_t i = 0;
    while (!dec.complete() && i < 1000) {
        if (!rng.bernoulli(0.3))  // 30% of encoded symbols erased
            dec.add_symbol(i, code.encode_symbol(i, source));
        ++i;
    }
    ASSERT_TRUE(dec.complete());
    for (std::size_t s = 0; s < 80; ++s) EXPECT_EQ(*dec.source()[s], source[s]);
}

TEST(LtDecoder, DuplicateSymbolsIgnored) {
    const LtCode code(params(30, 11));
    const auto source = random_source(30, 12);
    LtDecoder dec(code);
    dec.add_symbol(0, code.encode_symbol(0, source));
    const std::size_t consumed = dec.symbols_consumed();
    dec.add_symbol(0, code.encode_symbol(0, source));
    EXPECT_EQ(dec.symbols_consumed(), consumed);
}

TEST(LtDecoder, OutOfOrderArrivalWorks) {
    const LtCode code(params(60, 13));
    const auto source = random_source(60, 14);
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 200; ++i) order.push_back(i);
    Rng rng(15);
    rng.shuffle(order);
    LtDecoder dec(code);
    for (std::uint64_t i : order) {
        if (dec.add_symbol(i, code.encode_symbol(i, source))) break;
    }
    ASSERT_TRUE(dec.complete());
    for (std::size_t s = 0; s < 60; ++s) EXPECT_EQ(*dec.source()[s], source[s]);
}

TEST(LtDecoder, OverheadShrinksWithK) {
    // Fountain efficiency: consumed/k approaches 1 as k grows.
    double overhead_small = 0.0, overhead_large = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        for (const std::size_t k : {40UL, 400UL}) {
            const LtCode code(params(k, 20 + static_cast<std::uint64_t>(trial)));
            const auto source = random_source(k, 30 + static_cast<std::uint64_t>(trial));
            LtDecoder dec(code);
            for (std::uint64_t i = 0; !dec.complete() && i < 4 * k; ++i)
                dec.add_symbol(i, code.encode_symbol(i, source));
            ASSERT_TRUE(dec.complete());
            const double oh = static_cast<double>(dec.symbols_consumed()) / static_cast<double>(k);
            (k == 40 ? overhead_small : overhead_large) += oh;
        }
    }
    EXPECT_LT(overhead_large, overhead_small);
}

}  // namespace
