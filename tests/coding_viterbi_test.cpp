#include "ccap/coding/viterbi.hpp"

#include <gtest/gtest.h>

#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::coding;
using ccap::util::Rng;

ConvolutionalCode k3() { return ConvolutionalCode({0b111, 0b101}, 3); }
ConvolutionalCode k7() { return ConvolutionalCode({0b1011011, 0b1111001}, 7); }

TEST(Viterbi, CleanDecodeRoundTrip) {
    const auto code = k3();
    const Bits info = random_bits(64, 1);
    const auto res = viterbi_decode_hard(code, code.encode(info));
    EXPECT_TRUE(res.terminated_ok);
    EXPECT_EQ(res.info, info);
    EXPECT_DOUBLE_EQ(res.path_metric, 0.0);
}

TEST(Viterbi, CorrectsSingleError) {
    const auto code = k3();
    const Bits info = random_bits(40, 2);
    Bits coded = code.encode(info);
    for (std::size_t pos : {0UL, 10UL, coded.size() - 1}) {
        Bits corrupted = coded;
        corrupted[pos] ^= 1;
        const auto res = viterbi_decode_hard(code, corrupted);
        EXPECT_EQ(res.info, info) << "flip at " << pos;
        EXPECT_DOUBLE_EQ(res.path_metric, 1.0);
    }
}

TEST(Viterbi, CorrectsTwoSeparatedErrors) {
    // Free distance of (7,5) is 5: two well-separated errors are correctable.
    const auto code = k3();
    const Bits info = random_bits(60, 3);
    Bits coded = code.encode(info);
    coded[4] ^= 1;
    coded[60] ^= 1;
    EXPECT_EQ(viterbi_decode_hard(code, coded).info, info);
}

TEST(Viterbi, LowBscErrorRateDecodes) {
    const auto code = k7();  // stronger code
    Rng rng(4);
    int failures = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const Bits info = random_bits(128, 100 + trial);
        Bits coded = code.encode(info);
        for (auto& b : coded)
            if (rng.bernoulli(0.02)) b ^= 1;
        if (viterbi_decode_hard(code, coded).info != info) ++failures;
    }
    EXPECT_LE(failures, 1);
}

TEST(Viterbi, BadLengthThrows) {
    const auto code = k3();
    const Bits odd(9, 0);
    EXPECT_THROW((void)viterbi_decode_hard(code, odd), std::invalid_argument);
    const Bits too_short(2, 0);
    EXPECT_THROW((void)viterbi_decode_hard(code, too_short), std::invalid_argument);
}

TEST(Viterbi, SoftMatchesHardOnCleanInput) {
    const auto code = k3();
    const Bits info = random_bits(32, 5);
    const Bits coded = code.encode(info);
    std::vector<double> llrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? -4.0 : 4.0;
    const auto res = viterbi_decode_soft(code, llrs);
    EXPECT_EQ(res.info, info);
}

TEST(Viterbi, SoftUsesConfidence) {
    // Two corrupted bits, but the corruption has low confidence while the
    // clean bits have high confidence: soft decoding should still win.
    const auto code = k3();
    const Bits info = random_bits(30, 6);
    const Bits coded = code.encode(info);
    std::vector<double> llrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? -5.0 : 5.0;
    llrs[8] = coded[8] ? 0.5 : -0.5;   // weakly wrong
    llrs[9] = coded[9] ? 0.4 : -0.4;   // weakly wrong
    const auto res = viterbi_decode_soft(code, llrs);
    EXPECT_EQ(res.info, info);
}

TEST(Viterbi, ErasedBitsViaZeroLlr) {
    const auto code = k3();
    const Bits info = random_bits(24, 7);
    const Bits coded = code.encode(info);
    std::vector<double> llrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) llrs[i] = coded[i] ? -3.0 : 3.0;
    // Erase a handful of bits entirely.
    llrs[0] = llrs[7] = llrs[20] = 0.0;
    EXPECT_EQ(viterbi_decode_soft(code, llrs).info, info);
}

TEST(Viterbi, EmptyInfoTerminatorOnly) {
    const auto code = k3();
    const Bits coded = code.encode(Bits{});
    const auto res = viterbi_decode_hard(code, coded);
    EXPECT_TRUE(res.info.empty());
    EXPECT_TRUE(res.terminated_ok);
}

}  // namespace
