#include "ccap/core/bursty_channel.hpp"

#include <gtest/gtest.h>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"

namespace {

using namespace ccap::core;

BurstyChannelParams mild_bursty() {
    BurstyChannelParams p;
    p.good = {0.02, 0.02, 0.0, 1};
    p.bad = {0.5, 0.2, 0.0, 1};
    p.p_good_to_bad = 0.05;
    p.p_bad_to_good = 0.2;
    return p;
}

std::vector<std::uint32_t> message(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    std::vector<std::uint32_t> m(n);
    for (auto& s : m) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return m;
}

TEST(BurstyChannel, Validation) {
    BurstyChannelParams p = mild_bursty();
    p.bad.bits_per_symbol = 2;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = mild_bursty();
    p.p_good_to_bad = 0.0;
    EXPECT_THROW(p.validate(), std::domain_error);
    p = mild_bursty();
    p.good.p_d = -0.1;
    EXPECT_THROW(p.validate(), std::domain_error);
}

TEST(BurstyChannel, StationaryMixture) {
    const BurstyChannelParams p = mild_bursty();
    EXPECT_NEAR(p.stationary_bad(), 0.05 / 0.25, 1e-12);
    const DiChannelParams avg = p.average();
    EXPECT_NEAR(avg.p_d, 0.8 * 0.02 + 0.2 * 0.5, 1e-12);
    EXPECT_NEAR(avg.p_i, 0.8 * 0.02 + 0.2 * 0.2, 1e-12);
}

TEST(BurstyChannel, MeasuredBadFractionMatchesStationary) {
    MarkovModulatedChannel ch(mild_bursty(), 1);
    for (int i = 0; i < 60000; ++i) (void)ch.use(0);
    EXPECT_NEAR(ch.measured_bad_fraction(), mild_bursty().stationary_bad(), 0.01);
}

TEST(BurstyChannel, EventRatesMatchAverageParams) {
    MarkovModulatedChannel ch(mild_bursty(), 2);
    const DiChannelParams avg = mild_bursty().average();
    std::size_t del = 0, ins = 0;
    constexpr int kUses = 80000;
    for (int i = 0; i < kUses; ++i) {
        const auto out = ch.use(1);
        del += out.kind == ChannelEvent::deletion;
        ins += out.kind == ChannelEvent::insertion;
    }
    EXPECT_NEAR(static_cast<double>(del) / kUses, avg.p_d, 0.01);
    EXPECT_NEAR(static_cast<double>(ins) / kUses, avg.p_i, 0.01);
}

TEST(BurstyChannel, DeletionsAreActuallyBursty) {
    // Conditional probability of a deletion following a deletion should
    // exceed the marginal deletion rate (that is the point of the model).
    MarkovModulatedChannel ch(mild_bursty(), 3);
    std::size_t del = 0, del_after_del = 0, uses = 100000;
    bool prev_del = false;
    for (std::size_t i = 0; i < uses; ++i) {
        const bool is_del = ch.use(0).kind == ChannelEvent::deletion;
        if (is_del) {
            ++del;
            if (prev_del) ++del_after_del;
        }
        prev_del = is_del;
    }
    const double marginal = static_cast<double>(del) / static_cast<double>(uses);
    const double conditional = static_cast<double>(del_after_del) / static_cast<double>(del);
    EXPECT_GT(conditional, marginal * 1.5);
}

TEST(BurstyChannel, CounterProtocolRateMatchesAverageParams) {
    // The feedback-protocol rate is a renewal average: burstiness must not
    // move it away from the iid prediction at the same average parameters.
    MarkovModulatedChannel bursty(mild_bursty(), 4);
    const auto msg = message(40000, 1, 4);
    const auto run = run_counter_protocol(bursty, msg);
    const DiChannelParams avg = mild_bursty().average();
    EXPECT_NEAR(run.measured_info_rate(1), counter_protocol_exact_rate(avg), 0.03);
}

TEST(BurstyChannel, StopAndWaitOnBurstyDeletionChannel) {
    BurstyChannelParams p = mild_bursty();
    p.good.p_i = 0.0;
    p.bad.p_i = 0.0;
    MarkovModulatedChannel ch(p, 5);
    const auto msg = message(20000, 1, 5);
    const auto run = run_stop_and_wait(ch, msg);
    EXPECT_TRUE(run.reliable);
    EXPECT_NEAR(run.measured_info_rate(1), theorem3_feedback_capacity(p.average()), 0.02);
}

TEST(BurstyChannel, RejectsOutOfAlphabetSymbols) {
    MarkovModulatedChannel ch(mild_bursty(), 6);
    EXPECT_THROW((void)ch.use(2), std::out_of_range);
}

TEST(BurstyChannel, DeterministicForSeed) {
    MarkovModulatedChannel a(mild_bursty(), 7), b(mild_bursty(), 7);
    for (int i = 0; i < 500; ++i) {
        const auto oa = a.use(1);
        const auto ob = b.use(1);
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.delivered, ob.delivered);
    }
}

}  // namespace
