#include "ccap/core/channel_params.hpp"

#include <gtest/gtest.h>

namespace {

using ccap::core::DiChannelParams;

TEST(DiChannelParams, DefaultsAreSynchronousNoiseless) {
    DiChannelParams p;
    EXPECT_NO_THROW(p.validate());
    EXPECT_DOUBLE_EQ(p.p_t(), 1.0);
    EXPECT_TRUE(ccap::core::is_synchronous(p));
}

TEST(DiChannelParams, TransmissionProbabilityDerived) {
    DiChannelParams p{0.2, 0.3, 0.0, 1};
    EXPECT_DOUBLE_EQ(p.p_t(), 0.5);
}

TEST(DiChannelParams, AlphabetSize) {
    EXPECT_EQ((DiChannelParams{0, 0, 0, 1}).alphabet(), 2U);
    EXPECT_EQ((DiChannelParams{0, 0, 0, 4}).alphabet(), 16U);
    EXPECT_EQ((DiChannelParams{0, 0, 0, 16}).alphabet(), 65536U);
}

TEST(DiChannelParams, ValidationRejections) {
    EXPECT_THROW((DiChannelParams{-0.1, 0, 0, 1}).validate(), std::domain_error);
    EXPECT_THROW((DiChannelParams{0, -0.1, 0, 1}).validate(), std::domain_error);
    EXPECT_THROW((DiChannelParams{0, 0, 1.5, 1}).validate(), std::domain_error);
    EXPECT_THROW((DiChannelParams{0.6, 0.6, 0, 1}).validate(), std::domain_error);
    EXPECT_THROW((DiChannelParams{0, 0, 0, 0}).validate(), std::domain_error);
    EXPECT_THROW((DiChannelParams{0, 0, 0, 17}).validate(), std::domain_error);
}

TEST(DiChannelParams, BoundaryValuesAccepted) {
    EXPECT_NO_THROW((DiChannelParams{1.0, 0.0, 0.0, 1}).validate());
    EXPECT_NO_THROW((DiChannelParams{0.0, 1.0, 1.0, 16}).validate());
    EXPECT_NO_THROW((DiChannelParams{0.5, 0.5, 0.0, 1}).validate());
}

TEST(DiChannelParams, ToStringFormat) {
    DiChannelParams p{0.1, 0.05, 0.0, 2};
    const std::string s = p.to_string();
    EXPECT_NE(s.find("p_d=0.1000"), std::string::npos);
    EXPECT_NE(s.find("N=2"), std::string::npos);
}

TEST(DiChannelParams, Equality) {
    DiChannelParams a{0.1, 0.2, 0.0, 1};
    DiChannelParams b{0.1, 0.2, 0.0, 1};
    DiChannelParams c{0.1, 0.2, 0.0, 2};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(DiChannelParams, SynchronousDetection) {
    EXPECT_TRUE(ccap::core::is_synchronous({0.0, 0.0, 0.3, 1}));
    EXPECT_FALSE(ccap::core::is_synchronous({0.1, 0.0, 0.0, 1}));
    EXPECT_FALSE(ccap::core::is_synchronous({0.0, 0.1, 0.0, 1}));
}

}  // namespace
