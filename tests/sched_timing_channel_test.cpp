#include "ccap/sched/timing_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace ccap::sched;

TimingChannelConfig config(SimTime granularity = 1, SimTime jitter = 0) {
    TimingChannelConfig c;
    c.short_gap = 2;
    c.long_gap = 6;
    c.message_len = 600;
    c.clock_granularity = granularity;
    c.clock_jitter = jitter;
    return c;
}

TEST(TimingChannel, ConfigValidation) {
    TimingChannelConfig c = config();
    c.short_gap = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = config();
    c.long_gap = c.short_gap;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = config();
    c.clock_granularity = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = config();
    c.message_len = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(TimingChannel, FineClockDecodesCleanly) {
    const auto res = run_timing_channel(make_round_robin(), config(), 1);
    EXPECT_EQ(res.decoded.size(), res.sent.size());
    EXPECT_LT(res.bit_error_rate, 0.02);
    EXPECT_GT(res.info_rate_per_quantum(), 0.05);
}

TEST(TimingChannel, WorksUnderRandomScheduler) {
    const auto res = run_timing_channel(make_random(), config(), 2);
    // Scheduler noise perturbs gap measurements, but short=2 vs long=6 is
    // wide enough to stay mostly decodable.
    EXPECT_LT(res.bit_error_rate, 0.25);
}

TEST(TimingChannel, CoarseClockDestroysTheChannel) {
    // Granularity beyond the gap difference makes 0s and 1s identical:
    // everything quantizes to the same reading.
    const auto fine = run_timing_channel(make_round_robin(), config(1), 3);
    const auto coarse = run_timing_channel(make_round_robin(), config(16), 3);
    EXPECT_LT(fine.bit_error_rate, 0.02);
    EXPECT_GT(coarse.bit_error_rate, 0.3);
    EXPECT_LT(coarse.info_rate_per_quantum(), fine.info_rate_per_quantum());
}

TEST(TimingChannel, JitterDegradesMonotonically) {
    double prev = -1.0;
    for (const SimTime jitter : {0ULL, 2ULL, 6ULL, 16ULL}) {
        const auto res = run_timing_channel(make_round_robin(), config(1, jitter), 4);
        if (prev >= 0.0) {
            EXPECT_GE(res.bit_error_rate + 0.02, prev) << "jitter " << jitter;
        }
        prev = res.bit_error_rate;
    }
    EXPECT_GT(prev, 0.1);  // heavy jitter leaves a noisy channel
}

TEST(TimingChannel, IdealCapacityMatchesCharacteristicEquation) {
    const TimingChannelConfig c = config();
    const double cap = ideal_timing_capacity(c);
    // Verify the root property: 2^{-c*s} + 2^{-c*l} = 1.
    const double t0 = static_cast<double>(c.short_gap);
    const double t1 = static_cast<double>(c.long_gap);
    EXPECT_NEAR(std::exp2(-cap * t0) + std::exp2(-cap * t1), 1.0, 1e-9);
    // Raw bit rate can't beat the ideal Shannon rate of the timing alphabet.
    const auto res = run_timing_channel(make_round_robin(), config(), 5);
    EXPECT_LT(res.info_rate_per_quantum(), cap);
}

TEST(TimingChannel, DeterministicForSeed) {
    const auto a = run_timing_channel(make_random(), config(), 7);
    const auto b = run_timing_channel(make_random(), config(), 7);
    EXPECT_EQ(a.decoded, b.decoded);
    EXPECT_EQ(a.total_quanta, b.total_quanta);
}

TEST(TimingChannel, InfoRateEdgeCases) {
    TimingChannelResult r;
    EXPECT_DOUBLE_EQ(r.info_rate_per_quantum(), 0.0);
    r.total_quanta = 100;
    r.decoded.assign(10, 0);
    r.bit_error_rate = 0.5;  // coin-flip channel carries nothing
    EXPECT_DOUBLE_EQ(r.info_rate_per_quantum(), 0.0);
}

}  // namespace
