#include "ccap/coding/vt_code.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace ccap::coding;

/// All codewords of VT_a(n) by exhaustive enumeration (test-only, n <= 16).
std::vector<Bits> enumerate_codewords(const VtCode& code) {
    std::vector<Bits> words;
    const unsigned n = code.block_length();
    for (std::uint32_t v = 0; v < (1U << n); ++v) {
        Bits w = bits_from_uint(v, n);
        if (code.is_codeword(w)) words.push_back(std::move(w));
    }
    return words;
}

TEST(VtCode, ConstructionValidation) {
    EXPECT_THROW(VtCode(1, 0), std::invalid_argument);
    EXPECT_THROW(VtCode(8, 9), std::invalid_argument);
    EXPECT_NO_THROW(VtCode(8, 0));
    EXPECT_NO_THROW(VtCode(8, 8));
}

TEST(VtCode, ChecksumDefinition) {
    const VtCode code(5, 0);
    // word 01001: positions with 1s are {2, 5}; sum = 7 mod 6 = 1.
    EXPECT_EQ(code.checksum(bits_from_string("01001")), 1U);
    EXPECT_EQ(code.checksum(bits_from_string("00000")), 0U);
}

TEST(VtCode, DataBitsCount) {
    EXPECT_EQ(VtCode(8, 0).data_bits(), 4U);   // parities at 1,2,4,8
    EXPECT_EQ(VtCode(15, 0).data_bits(), 11U); // parities at 1,2,4,8
    EXPECT_EQ(VtCode(16, 0).data_bits(), 11U); // parities at 1,2,4,8,16
}

TEST(VtCode, EncodeProducesCodewords) {
    const VtCode code(10, 0);
    for (std::uint32_t v = 0; v < (1U << code.data_bits()); ++v) {
        const Bits info = bits_from_uint(v, code.data_bits());
        const Bits word = code.encode(info);
        EXPECT_TRUE(code.is_codeword(word)) << "info " << v;
        EXPECT_EQ(code.extract_info(word), info);
    }
}

TEST(VtCode, EncodeIsInjective) {
    const VtCode code(9, 0);
    std::vector<Bits> seen;
    for (std::uint32_t v = 0; v < (1U << code.data_bits()); ++v) {
        const Bits word = code.encode(bits_from_uint(v, code.data_bits()));
        for (const Bits& other : seen) EXPECT_NE(word, other);
        seen.push_back(word);
    }
}

TEST(VtCode, EncodeWrongSizeThrows) {
    const VtCode code(8, 0);
    EXPECT_THROW((void)code.encode(Bits(3, 0)), std::invalid_argument);
}

class VtAllDeletions : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(VtAllDeletions, EveryCodewordEveryDeletionPosition) {
    const auto [n, a] = GetParam();
    const VtCode code(n, a);
    for (const Bits& word : enumerate_codewords(code)) {
        for (unsigned del = 0; del < n; ++del) {
            Bits received;
            for (unsigned i = 0; i < n; ++i)
                if (i != del) received.push_back(word[i]);
            const VtDecodeResult res = code.decode(received);
            ASSERT_EQ(res.status, VtStatus::ok)
                << "n=" << n << " a=" << a << " word=" << to_string(word) << " del=" << del;
            EXPECT_EQ(res.codeword, word);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VtAllDeletions,
                         ::testing::Values(std::tuple{6U, 0U}, std::tuple{6U, 3U},
                                           std::tuple{8U, 0U}, std::tuple{8U, 5U},
                                           std::tuple{10U, 0U}, std::tuple{11U, 7U}));

class VtAllInsertions : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(VtAllInsertions, EveryCodewordEveryInsertion) {
    const auto [n, a] = GetParam();
    const VtCode code(n, a);
    for (const Bits& word : enumerate_codewords(code)) {
        for (unsigned pos = 0; pos <= n; ++pos) {
            for (std::uint8_t bit = 0; bit <= 1; ++bit) {
                Bits received = word;
                received.insert(received.begin() + pos, bit);
                const VtDecodeResult res = code.decode(received);
                ASSERT_EQ(res.status, VtStatus::ok)
                    << "word=" << to_string(word) << " pos=" << pos << " bit=" << int(bit);
                EXPECT_EQ(res.codeword, word);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VtAllInsertions,
                         ::testing::Values(std::tuple{6U, 0U}, std::tuple{8U, 0U},
                                           std::tuple{8U, 4U}, std::tuple{9U, 2U}));

TEST(VtCode, CleanWordPassesThrough) {
    const VtCode code(10, 0);
    const Bits word = code.encode(bits_from_string("110100"));
    const VtDecodeResult res = code.decode(word);
    EXPECT_EQ(res.status, VtStatus::ok);
    EXPECT_EQ(res.codeword, word);
}

TEST(VtCode, SubstitutionIsDetected) {
    const VtCode code(10, 0);
    Bits word = code.encode(bits_from_string("101010"));
    // A substitution changes the checksum by the (nonzero) position value,
    // so a same-length word fails the checksum.
    word[4] ^= 1;
    EXPECT_EQ(code.decode(word).status, VtStatus::detected_failure);
}

TEST(VtCode, BadLengthRejected) {
    const VtCode code(10, 0);
    EXPECT_EQ(code.decode(Bits(7, 0)).status, VtStatus::bad_length);
    EXPECT_EQ(code.decode(Bits(13, 0)).status, VtStatus::bad_length);
}

TEST(VtCode, RateImprovesWithLength) {
    EXPECT_LT(VtCode(8, 0).rate(), VtCode(64, 0).rate());
}

TEST(VtCode, Vt0IsLargest) {
    // Classic fact: |VT_0(n)| >= |VT_a(n)| for all a.
    for (unsigned n : {6U, 8U, 10U}) {
        const std::size_t size0 = enumerate_codewords(VtCode(n, 0)).size();
        for (unsigned a = 1; a <= n; ++a)
            EXPECT_GE(size0, enumerate_codewords(VtCode(n, a)).size()) << "n=" << n << " a=" << a;
    }
}

TEST(VtCode, CodebookSizeMatchesLevenshteinBound) {
    // |VT_0(n)| ~ 2^n/(n+1); exact values: n=6 -> 10, n=8 -> 30.
    EXPECT_EQ(enumerate_codewords(VtCode(6, 0)).size(), 10U);
    EXPECT_EQ(enumerate_codewords(VtCode(8, 0)).size(), 30U);
}

}  // namespace
