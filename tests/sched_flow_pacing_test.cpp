#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ccap/sched/flow_queue.hpp"
#include "ccap/sched/pacing.hpp"

namespace {

using ccap::sched::FlowCounters;
using ccap::sched::PacingConfig;
using ccap::sched::PacingController;
using ccap::sched::RoundRobinFlowQueue;

TEST(PacingControllerTest, RejectsNonPositiveBudget) {
    EXPECT_THROW(PacingController({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(PacingController({-1.0, 0.0}), std::invalid_argument);
}

TEST(PacingControllerTest, BudgetAccruesPerTickAndSpends) {
    PacingController pacer({2.0, 0.0});
    EXPECT_FALSE(pacer.try_consume());  // no budget before the first tick
    pacer.on_tick();
    EXPECT_TRUE(pacer.try_consume());
    EXPECT_TRUE(pacer.try_consume());
    EXPECT_FALSE(pacer.try_consume());  // 2 tokens per tick, not 3
    EXPECT_EQ(pacer.stats().consumed, 2u);
    EXPECT_EQ(pacer.stats().throttled, 2u);
    EXPECT_EQ(pacer.stats().ticks, 1u);
}

TEST(PacingControllerTest, IdleBudgetClampsToBurstCap) {
    PacingController pacer({1.0, 3.0});
    for (int t = 0; t < 10; ++t) pacer.on_tick();  // idle ticks bank up to the cap
    EXPECT_DOUBLE_EQ(pacer.budget(), 3.0);
    EXPECT_TRUE(pacer.try_consume());
    EXPECT_TRUE(pacer.try_consume());
    EXPECT_TRUE(pacer.try_consume());
    EXPECT_FALSE(pacer.try_consume());
}

TEST(PacingControllerTest, DefaultBurstCapIsOneTick) {
    PacingController pacer({2.5, 0.0});
    for (int t = 0; t < 4; ++t) pacer.on_tick();
    EXPECT_DOUBLE_EQ(pacer.budget(), 2.5);  // burst_budget = 0 -> budget_per_tick
}

TEST(PacingControllerTest, FractionalCosts) {
    PacingController pacer({1.0, 0.0});
    pacer.on_tick();
    EXPECT_TRUE(pacer.try_consume(0.25));
    EXPECT_TRUE(pacer.try_consume(0.75));
    EXPECT_FALSE(pacer.try_consume(0.25));
}

TEST(RoundRobinFlowQueueTest, ServesOldestSymbolPerFlowRoundRobin) {
    RoundRobinFlowQueue q(3, 4);
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(0, 2));
    EXPECT_TRUE(q.push(2, 3));
    EXPECT_EQ(q.backlog(), 3u);

    auto a = q.pop(5);
    auto b = q.pop(5);
    auto c = q.pop(5);
    ASSERT_TRUE(a && b && c);
    // Round-robin: flow 0 gives its oldest, then flow 2, then flow 0 again.
    EXPECT_EQ(a->flow, 0u);
    EXPECT_EQ(a->enqueued_at, 1u);
    EXPECT_EQ(b->flow, 2u);
    EXPECT_EQ(c->flow, 0u);
    EXPECT_EQ(c->enqueued_at, 2u);
    EXPECT_FALSE(q.pop(5).has_value());
    EXPECT_EQ(q.backlog(), 0u);
}

TEST(RoundRobinFlowQueueTest, HeavyFlowCannotStarveNeighbours) {
    RoundRobinFlowQueue q(2, 8);
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(1, 1));
    std::vector<std::size_t> order;
    for (int i = 0; i < 3; ++i) order.push_back(q.pop(2)->flow);
    // Flow 1's single symbol is served on the second visit, not ninth.
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(RoundRobinFlowQueueTest, OverflowDropsAreCounted) {
    RoundRobinFlowQueue q(1, 2);
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_FALSE(q.push(0, 2));  // ring full
    EXPECT_EQ(q.flow(0).dropped_overflow, 1u);
    EXPECT_EQ(q.flow(0).enqueued, 2u);
    EXPECT_EQ(q.backlog(), 2u);
}

TEST(RoundRobinFlowQueueTest, ExpiredHeadsDropLazilyAtServeTime) {
    RoundRobinFlowQueue q(1, 4, /*deadline=*/2);
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(0, 9));
    // At t=10 the first symbol is 9 ticks old (> 2): dropped, second served.
    auto served = q.pop(10);
    ASSERT_TRUE(served.has_value());
    EXPECT_EQ(served->enqueued_at, 9u);
    EXPECT_EQ(q.flow(0).dropped_expired, 1u);
    EXPECT_EQ(q.flow(0).served, 1u);
}

TEST(RoundRobinFlowQueueTest, WholeBacklogCanExpire) {
    RoundRobinFlowQueue q(2, 4, /*deadline=*/1);
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(1, 1));
    EXPECT_FALSE(q.pop(100).has_value());  // everything stale, nothing served
    EXPECT_EQ(q.totals().dropped_expired, 2u);
    EXPECT_EQ(q.backlog(), 0u);
    // The queue keeps working after a total flush.
    EXPECT_TRUE(q.push(1, 101));
    EXPECT_EQ(q.pop(101)->flow, 1u);
}

TEST(RoundRobinFlowQueueTest, TotalsAggregateAcrossFlows) {
    RoundRobinFlowQueue q(3, 1);
    EXPECT_TRUE(q.push(0, 1));
    EXPECT_TRUE(q.push(1, 1));
    EXPECT_FALSE(q.push(1, 1));
    (void)q.pop(2);
    const FlowCounters t = q.totals();
    EXPECT_EQ(t.enqueued, 2u);
    EXPECT_EQ(t.served, 1u);
    EXPECT_EQ(t.dropped_overflow, 1u);
    EXPECT_EQ(t.dropped_expired, 0u);
}

TEST(RoundRobinFlowQueueTest, PacerAndQueueComposeIntoAServeLoop) {
    // The intended composition: one tick's budget drains round-robin.
    RoundRobinFlowQueue q(4, 4);
    PacingController pacer({2.0, 0.0});
    for (std::size_t f = 0; f < 4; ++f) EXPECT_TRUE(q.push(f, 1));
    std::vector<std::size_t> served;
    for (ccap::sched::SimTime t = 2; t <= 3; ++t) {
        pacer.on_tick();
        while (q.backlog() > 0 && pacer.try_consume()) served.push_back(q.pop(t)->flow);
    }
    EXPECT_EQ(served, (std::vector<std::size_t>{0, 1, 2, 3}));
}

}  // namespace
