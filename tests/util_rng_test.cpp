#include "ccap/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace {

using ccap::util::Rng;

TEST(Rng, DeterministicForSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Rng, ReseedRestartsStream) {
    Rng a(77);
    const std::uint64_t first = a.next();
    (void)a.next();
    a.reseed(77);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(6);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformBelowRespectsBound) {
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_below(bound), bound);
    }
}

TEST(Rng, UniformBelowOneAlwaysZero) {
    Rng rng(8);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0U);
}

TEST(Rng, UniformBelowCoversAllValues) {
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
    EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, UniformIntInclusiveRange) {
    Rng rng(10);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniform_int(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(12);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
    Rng rng(13);
    const std::array<double, 3> weights = {1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    constexpr int kN = 40000;
    for (int i = 0; i < kN; ++i) {
        const std::size_t k = rng.categorical(weights);
        ASSERT_LT(k, weights.size());
        ++counts[k];
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, CategoricalAllZeroFallsBackToUniform) {
    // Degenerate all-zero weights must still give an in-range, unbiased
    // index (the old out-of-range sentinel forced biased clamps on callers).
    Rng rng(14);
    const std::array<double, 4> weights = {0.0, 0.0, 0.0, 0.0};
    std::array<int, 4> counts{};
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const std::size_t k = rng.categorical(weights);
        ASSERT_LT(k, weights.size());
        ++counts[k];
    }
    for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / kN, 0.25, 0.02);
}

TEST(Rng, CategoricalEmpty) {
    Rng rng(15);
    EXPECT_EQ(rng.categorical({}), 0U);
}

TEST(Rng, GeometricMeanMatches) {
    Rng rng(16);
    const double p = 0.25;
    double sum = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.geometric(p));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, GeometricCertainSuccessIsZero) {
    Rng rng(17);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0U);
}

TEST(Rng, NormalMoments) {
    Rng rng(18);
    double sum = 0.0, sq = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / kN, 0.0, 0.02);
    EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(19);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyMoves) {
    Rng rng(20);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i) v[i] = i;
    const auto before = v;
    rng.shuffle(v);
    EXPECT_NE(v, before);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(21);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Rng, SplitMix64KnownValue) {
    // Reference value from the SplitMix64 definition with state 0.
    std::uint64_t state = 0;
    EXPECT_EQ(ccap::util::splitmix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
