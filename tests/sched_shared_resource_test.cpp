#include "ccap/sched/shared_resource.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::sched;

TEST(SharedResource, InitialValueAndPeek) {
    SharedResource r(42);
    EXPECT_EQ(r.peek(), 42U);
    EXPECT_TRUE(r.log().empty());  // peek leaves no audit record
}

TEST(SharedResource, ReadWriteSemantics) {
    SharedResource r(0);
    r.write(/*who=*/1, /*now=*/10, 7);
    EXPECT_EQ(r.read(/*who=*/2, /*now=*/11), 7U);
    EXPECT_EQ(r.peek(), 7U);
}

TEST(SharedResource, AuditTrailRecordsEverything) {
    SharedResource r(0);
    r.write(0, 1, 5);
    (void)r.read(1, 2);
    r.write(0, 3, 9);
    (void)r.read(1, 4);

    const auto& log = r.log();
    ASSERT_EQ(log.size(), 4U);
    EXPECT_EQ(log[0].kind, AccessKind::write);
    EXPECT_EQ(log[0].who, 0U);
    EXPECT_EQ(log[0].time, 1U);
    EXPECT_EQ(log[0].value, 5U);
    EXPECT_EQ(log[1].kind, AccessKind::read);
    EXPECT_EQ(log[1].value, 5U);  // reads record the observed value
    EXPECT_EQ(log[3].value, 9U);
}

TEST(SharedResource, AuditRevealsAlternationPattern) {
    // The covert-channel signature an auditor looks for: strict write/read
    // alternation between two subjects on one attribute.
    SharedResource r(0);
    for (SimTime t = 0; t < 20; t += 2) {
        r.write(0, t, t & 1U);
        (void)r.read(1, t + 1);
    }
    std::size_t alternations = 0;
    const auto& log = r.log();
    for (std::size_t i = 1; i < log.size(); ++i)
        if (log[i].who != log[i - 1].who) ++alternations;
    EXPECT_EQ(alternations, log.size() - 1);  // perfect ping-pong
}

TEST(SharedResource, ClearLog) {
    SharedResource r(0);
    r.write(0, 1, 2);
    r.clear_log();
    EXPECT_TRUE(r.log().empty());
    EXPECT_EQ(r.peek(), 2U);  // clearing the audit does not reset the value
}

}  // namespace
