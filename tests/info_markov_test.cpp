#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Rng;
using Bits = std::vector<std::uint8_t>;

TEST(MarkovSource, BuildersAndValidation) {
    const MarkovSource iid = MarkovSource::uniform(4);
    EXPECT_NO_THROW(iid.validate(4));
    EXPECT_THROW(iid.validate(2), std::invalid_argument);

    const MarkovSource rep = MarkovSource::binary_repeat(0.8);
    EXPECT_NO_THROW(rep.validate(2));
    EXPECT_DOUBLE_EQ(rep.transition(0, 0), 0.8);
    EXPECT_DOUBLE_EQ(rep.transition(1, 0), 0.2);

    EXPECT_THROW((void)MarkovSource::binary_repeat(1.5), std::domain_error);
    EXPECT_THROW((void)MarkovSource::uniform(1), std::invalid_argument);

    MarkovSource bad = rep;
    bad.initial = {0.7, 0.7};
    EXPECT_THROW(bad.validate(2), std::domain_error);
}

TEST(MarkovSource, SimulationStatistics) {
    Rng rng(1);
    const MarkovSource rep = MarkovSource::binary_repeat(0.9);
    const Bits seq = simulate_markov_source(rep, 2, 50000, rng);
    // Count repeats: should be ~0.9.
    std::size_t repeats = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) repeats += seq[i] == seq[i - 1];
    EXPECT_NEAR(static_cast<double>(repeats) / (seq.size() - 1), 0.9, 0.01);
}

TEST(MarkovSource, SimulationEmptyAndDeterministic) {
    Rng a(2), b(2);
    const MarkovSource src = MarkovSource::binary_repeat(0.7);
    EXPECT_TRUE(simulate_markov_source(src, 2, 0, a).empty());
    EXPECT_EQ(simulate_markov_source(src, 2, 100, a), simulate_markov_source(src, 2, 100, b));
}

/// Brute-force P(rx) = sum over all tx of P_markov(tx) * P(rx | tx) using
/// the exact recursive channel likelihood.
double brute_marginal(const MarkovSource& src, std::size_t n, const Bits& rx,
                      const DriftParams& p) {
    const double inv_m = 1.0 / p.alphabet;
    const std::function<double(const Bits&, std::size_t, std::size_t)> chan =
        [&](const Bits& tx, std::size_t i, std::size_t j) -> double {
        double v = 0.0;
        if (i == tx.size())
            return std::pow(p.p_i * inv_m, static_cast<double>(rx.size() - j)) * (1.0 - p.p_i);
        if (j < rx.size()) {
            v += p.p_i * inv_m * chan(tx, i, j + 1);
            const double emit =
                rx[j] == tx[i] ? 1.0 - p.p_s : p.p_s / (p.alphabet - 1.0);
            v += p.p_t() * emit * chan(tx, i + 1, j + 1);
        }
        v += p.p_d * chan(tx, i + 1, j);
        return v;
    };
    double total = 0.0;
    for (std::uint32_t v = 0; v < (1U << n); ++v) {
        Bits tx(n);
        double prior = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            tx[i] = (v >> (n - 1 - i)) & 1U;
            prior *= i == 0 ? src.initial[tx[0]] : src.transition(tx[i - 1], tx[i]);
        }
        total += prior * chan(tx, 0, 0);
    }
    return total;
}

TEST(MarkovMarginal, MatchesBruteForce) {
    const DriftParams p{0.15, 0.1, 0.05, 2, 12, 8};
    const DriftHmm hmm(p);
    const MarkovSource src = MarkovSource::binary_repeat(0.75);
    const std::vector<Bits> rxs = {{}, {1}, {0, 1}, {1, 1, 0}, {0, 0, 1, 1, 0}};
    for (const Bits& rx : rxs) {
        for (std::size_t n : {1UL, 2UL, 4UL, 5UL}) {
            const double brute = brute_marginal(src, n, rx, p);
            ASSERT_GT(brute, 0.0);
            EXPECT_NEAR(hmm.log2_markov_marginal(src, n, rx), std::log2(brute), 1e-6)
                << "n=" << n << " rx.size=" << rx.size();
        }
    }
}

TEST(MarkovMarginal, UniformSourceMatchesIidEvidence) {
    // With a uniform iid "Markov" source the marginal must equal the
    // evidence computed by the independent-priors posteriors() pass.
    const DriftParams p{0.1, 0.1, 0.0, 2, 16, 8};
    const DriftHmm hmm(p);
    const MarkovSource src = MarkovSource::uniform(2);
    const Bits rx = {1, 0, 0, 1, 1, 0};
    ccap::util::Matrix priors(6, 2, 0.5);
    double evidence = 0.0;
    (void)hmm.posteriors(priors, rx, &evidence);
    EXPECT_NEAR(hmm.log2_markov_marginal(src, 6, rx), evidence, 1e-9);
}

TEST(MarkovMarginal, CleanChannelMarkovProbability) {
    // Clean channel: P(rx) = P_markov(rx) exactly.
    const DriftParams p{0.0, 0.0, 0.0, 2, 8, 4};
    const DriftHmm hmm(p);
    const MarkovSource src = MarkovSource::binary_repeat(0.8);
    const Bits rx = {1, 1, 0, 0, 0};
    // P = 0.5 * 0.8 * 0.2 * 0.8 * 0.8
    EXPECT_NEAR(hmm.log2_markov_marginal(src, 5, rx),
                std::log2(0.5 * 0.8 * 0.2 * 0.8 * 0.8), 1e-9);
}

TEST(MarkovMarginal, ZeroLengthTx) {
    const DriftParams p{0.0, 0.2, 0.0, 2, 8, 4};
    const DriftHmm hmm(p);
    const MarkovSource src = MarkovSource::uniform(2);
    // rx of length 1 must be one trailing insertion: p_i*(1/2)*(1-p_i).
    const Bits rx = {1};
    EXPECT_NEAR(hmm.log2_markov_marginal(src, 0, rx), std::log2(0.2 * 0.5 * 0.8), 1e-9);
}

TEST(MarkovMiRate, UniformMatchesIid) {
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng r1(3), r2(3);
    const auto iid = iid_mutual_information_rate(p, 64, 12, r1);
    const auto mkv =
        markov_mutual_information_rate(p, MarkovSource::uniform(2), 64, 12, r2);
    // Estimators of the same quantity (different sampling paths): agree
    // within combined Monte-Carlo noise.
    EXPECT_NEAR(iid.rate, mkv.rate, 3.0 * (iid.sem + mkv.sem) + 0.01);
}

TEST(MarkovMiRate, RunBiasedInputsBeatIidOnDeletionChannel) {
    // The Davey-MacKay / Diggavi-Grossglauser effect: repetition-biased
    // inputs raise the achievable rate when deletions are frequent.
    const DriftParams p{0.4, 0.0, 0.0, 2, 32, 8};
    Rng r1(4), r2(4);
    const auto iid = iid_mutual_information_rate(p, 64, 16, r1);
    const auto mkv = markov_mutual_information_rate(
        p, MarkovSource::binary_repeat(0.85), 64, 16, r2);
    EXPECT_GT(mkv.rate, iid.rate + 0.01)
        << "markov " << mkv.rate << " vs iid " << iid.rate;
}

TEST(MarkovMiRate, Validation) {
    const DriftParams p{0.1, 0.0, 0.0, 2, 16, 8};
    Rng rng(5);
    EXPECT_THROW(
        (void)markov_mutual_information_rate(p, MarkovSource::uniform(2), 0, 4, rng),
        std::invalid_argument);
    EXPECT_THROW(
        (void)markov_mutual_information_rate(p, MarkovSource::uniform(4), 16, 4, rng),
        std::invalid_argument);
}

}  // namespace
