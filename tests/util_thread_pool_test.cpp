#include "ccap/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using ccap::util::parallel_for;
using ccap::util::parallel_reduce;
using ccap::util::ThreadPool;

TEST(ThreadPool, StartupAndShutdownIdle) {
    // Pools of several sizes come up and join cleanly without any work.
    for (unsigned n : {1U, 2U, 4U, 8U}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
}

TEST(ThreadPool, DefaultSizeIsHardwareConcurrency) {
    ThreadPool pool;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    EXPECT_EQ(pool.size(), hw);
}

TEST(ThreadPool, SubmittedTasksAllRunBeforeJoin) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        // Destructor drains the queue: every submitted task must have run.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
    ThreadPool pool(1);
    std::atomic<int> count{0};
    // Park the single worker so tasks stay queued for the caller.
    std::atomic<bool> release{false};
    pool.submit([&release] {
        while (!release.load()) std::this_thread::yield();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    for (int i = 0; i < 5; ++i) pool.submit([&count] { ++count; });
    while (pool.try_run_one()) {
    }
    EXPECT_EQ(count.load(), 5);
    release.store(true);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeAndSerialPath) {
    ThreadPool pool(2);
    int calls = 0;
    parallel_for(pool, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // max_threads = 1 must run inline on the caller (no data race on
    // `calls` without synchronization proves it under TSan).
    parallel_for(pool, 10, [&](std::size_t) { ++calls; }, 1);
    EXPECT_EQ(calls, 10);
}

TEST(ParallelFor, PropagatesLowestIndexException) {
    ThreadPool pool(4);
    // Multiple bodies throw; the rethrown one must deterministically be
    // the lowest index regardless of scheduling.
    try {
        parallel_for(pool, 100, [](std::size_t i) {
            if (i >= 17 && i % 2 == 1) throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "17");
    }
}

TEST(ParallelFor, NestedForkJoinDoesNotDeadlock) {
    ThreadPool pool(2);  // fewer workers than nested waiters
    std::atomic<int> total{0};
    parallel_for(pool, 8, [&](std::size_t) {
        // Inner fork-join issued from inside pool tasks: the waiting
        // outer bodies must help drain the queue instead of deadlocking.
        parallel_for(pool, 16, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelFor, NestedSubmitFromTask) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        parallel_for(pool, 4, [&](std::size_t) {
            pool.submit([&count] { count.fetch_add(1); });
        });
        while (pool.try_run_one()) {
        }
        // A worker may still be mid-grandchild; pool teardown joins it.
    }
    EXPECT_EQ(count.load(), 4);
}

TEST(ParallelReduce, SumMatchesSerialForAnyThreadCount) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 500;
    const auto map = [](std::size_t i) { return static_cast<long>(i); };
    const auto combine = [](long a, long b) { return a + b; };
    const long expected = static_cast<long>(kN * (kN - 1) / 2);
    for (unsigned threads : {0U, 1U, 2U, 8U})
        EXPECT_EQ(parallel_reduce(pool, kN, 0L, map, combine, threads), expected);
}

TEST(ParallelReduce, CombinesInIndexOrder) {
    ThreadPool pool(4);
    // Order-sensitive combine: concatenation. Any out-of-order merge or
    // thread-count dependence would scramble the string.
    const auto result = parallel_reduce(
        pool, 26, std::string{},
        [](std::size_t i) { return std::string(1, static_cast<char>('a' + i)); },
        [](std::string acc, std::string x) { return acc + x; });
    EXPECT_EQ(result, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ThreadPool, SharedPoolIsSingleton) {
    EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
    EXPECT_GE(ThreadPool::shared().size(), 1U);
}

}  // namespace
