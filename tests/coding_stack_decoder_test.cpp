#include "ccap/coding/stack_decoder.hpp"

#include <gtest/gtest.h>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::coding;
using ccap::info::DriftParams;
using ccap::info::simulate_drift_channel;
using ccap::util::Rng;

ConvolutionalCode k3() { return ConvolutionalCode({0b111, 0b101}, 3); }
ConvolutionalCode k5() { return ConvolutionalCode({0b10111, 0b11001}, 5); }

StackDecoderParams channel(double pd, double pi) {
    StackDecoderParams p;
    p.p_d = pd;
    p.p_i = pi;
    return p;
}

TEST(StackDecoder, ParamsValidation) {
    StackDecoderParams p = channel(0.6, 0.5);
    EXPECT_THROW(p.validate(), std::domain_error);
    p = channel(-0.1, 0.0);
    EXPECT_THROW(p.validate(), std::domain_error);
    p = channel(0.1, 0.1);
    p.max_expansions = 0;
    EXPECT_THROW(p.validate(), std::domain_error);
}

TEST(StackDecoder, CleanChannelRoundTrip) {
    const auto code = k3();
    const Bits info = random_bits(48, 1);
    const Bits coded = code.encode(info);
    const auto res = stack_decode(code, coded, info.size(), channel(0.01, 0.01));
    EXPECT_TRUE(res.success);
    EXPECT_EQ(res.info, info);
}

TEST(StackDecoder, ZeroIndelChannelParamsWork) {
    // p_d = p_i = 0 exercises the -inf trailing-metric guard.
    const auto code = k3();
    const Bits info = random_bits(32, 2);
    const auto res = stack_decode(code, code.encode(info), info.size(), channel(0.0, 0.0));
    EXPECT_TRUE(res.success);
    EXPECT_EQ(res.info, info);
}

TEST(StackDecoder, CorrectsSingleDeletion) {
    const auto code = k3();
    const Bits info = random_bits(40, 3);
    Bits coded = code.encode(info);
    for (std::size_t pos : {3UL, 20UL, coded.size() - 2}) {
        Bits rx = coded;
        rx.erase(rx.begin() + static_cast<long>(pos));
        const auto res = stack_decode(code, rx, info.size(), channel(0.02, 0.02));
        EXPECT_TRUE(res.success) << "pos " << pos;
        EXPECT_EQ(res.info, info) << "pos " << pos;
    }
}

TEST(StackDecoder, CorrectsSingleInsertion) {
    const auto code = k3();
    const Bits info = random_bits(40, 4);
    Bits coded = code.encode(info);
    for (std::size_t pos : {0UL, 17UL, coded.size()}) {
        Bits rx = coded;
        rx.insert(rx.begin() + static_cast<long>(pos), 1);
        const auto res = stack_decode(code, rx, info.size(), channel(0.02, 0.02));
        EXPECT_TRUE(res.success) << "pos " << pos;
        EXPECT_EQ(res.info, info) << "pos " << pos;
    }
}

TEST(StackDecoder, SurvivesRandomIndelChannel) {
    // Zigangirov's setting: convolutional code + sequential decoding over a
    // channel with drop-outs and insertions.
    const auto code = k5();
    const DriftParams drift{0.01, 0.01, 0.0, 2, 32, 8};
    Rng rng(5);
    int exact = 0;
    constexpr int kTrials = 15;
    for (int t = 0; t < kTrials; ++t) {
        const Bits info = random_bits(96, 100 + t);
        const auto rx = simulate_drift_channel(code.encode(info), drift, rng);
        const auto res = stack_decode(code, rx, info.size(), channel(0.01, 0.01));
        if (res.success && res.info == info) ++exact;
    }
    EXPECT_GE(exact, 12);
}

TEST(StackDecoder, HandlesSubstitutionsToo) {
    const auto code = k5();
    const DriftParams drift{0.01, 0.01, 0.02, 2, 32, 8};
    StackDecoderParams p = channel(0.01, 0.01);
    p.p_s = 0.02;
    Rng rng(6);
    int exact = 0;
    constexpr int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
        const Bits info = random_bits(64, 200 + t);
        const auto rx = simulate_drift_channel(code.encode(info), drift, rng);
        const auto res = stack_decode(code, rx, info.size(), p);
        if (res.success && res.info == info) ++exact;
    }
    EXPECT_GE(exact, 7);
}

TEST(StackDecoder, BudgetExhaustionFailsGracefully) {
    const auto code = k3();
    const Bits info = random_bits(64, 7);
    Bits coded = code.encode(info);
    // Heavy corruption + tiny budget.
    Rng rng(8);
    for (auto& b : coded)
        if (rng.bernoulli(0.3)) b ^= 1;
    StackDecoderParams p = channel(0.05, 0.05);
    p.max_expansions = 50;
    const auto res = stack_decode(code, coded, info.size(), p);
    EXPECT_FALSE(res.success);
    EXPECT_TRUE(res.info.empty());
    EXPECT_LE(res.expansions, 50U);
}

TEST(StackDecoder, EmptyInfo) {
    const auto code = k3();
    const Bits coded = code.encode(Bits{});
    const auto res = stack_decode(code, coded, 0, channel(0.01, 0.01));
    EXPECT_TRUE(res.success);
    EXPECT_TRUE(res.info.empty());
}

TEST(StackDecoder, ExpansionCountReported) {
    const auto code = k3();
    const Bits info = random_bits(32, 9);
    const auto res = stack_decode(code, code.encode(info), info.size(), channel(0.01, 0.01));
    EXPECT_GT(res.expansions, info.size());  // at least one pop per step
    EXPECT_LT(res.expansions, 10000U);       // near-noiseless: almost straight-line
}

}  // namespace
