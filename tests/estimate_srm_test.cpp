#include "ccap/estimate/srm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using ccap::estimate::SharedResourceMatrix;

bool has_channel(const std::vector<SharedResourceMatrix::Channel>& channels,
                 const std::string& attribute, const std::string& sender,
                 const std::string& receiver, bool indirect = false) {
    return std::any_of(channels.begin(), channels.end(), [&](const auto& c) {
        return c.attribute == attribute && c.sender_op == sender &&
               c.receiver_op == receiver && c.indirect == indirect;
    });
}

/// The classic file-lock covert channel from Kemmerer's paper: the sender
/// locks/unlocks a file; the receiver senses the lock via the error code of
/// its own lock attempt.
SharedResourceMatrix file_lock_system() {
    SharedResourceMatrix srm;
    srm.add_operation("lock_file", {"file.lock"}, {"file.lock"});
    srm.add_operation("unlock_file", {"file.lock"}, {"file.lock"});
    srm.add_operation("try_lock", {"file.lock"}, {"caller.error_code"});
    srm.add_operation("read_error", {"caller.error_code"}, {});
    return srm;
}

TEST(Srm, AttributeRegistration) {
    SharedResourceMatrix srm;
    const std::size_t a = srm.add_attribute("disk.arm");
    EXPECT_EQ(srm.add_attribute("disk.arm"), a);  // idempotent
    EXPECT_EQ(srm.num_attributes(), 1U);
    EXPECT_THROW((void)srm.add_attribute(""), std::invalid_argument);
}

TEST(Srm, OperationRegistrationAndLookup) {
    SharedResourceMatrix srm = file_lock_system();
    EXPECT_EQ(srm.num_operations(), 4U);
    EXPECT_TRUE(srm.modifies("lock_file", "file.lock"));
    EXPECT_TRUE(srm.reads("try_lock", "file.lock"));
    EXPECT_FALSE(srm.modifies("read_error", "file.lock"));
    EXPECT_THROW((void)srm.reads("bogus", "file.lock"), std::out_of_range);
    EXPECT_THROW((void)srm.reads("try_lock", "bogus"), std::out_of_range);
    EXPECT_THROW(srm.add_operation("try_lock", {}, {}), std::invalid_argument);
}

TEST(Srm, DirectChannelsFound) {
    const auto channels = file_lock_system().direct_channels();
    // lock_file modifies file.lock; try_lock reads it -> the classic channel.
    EXPECT_TRUE(has_channel(channels, "file.lock", "lock_file", "try_lock"));
    EXPECT_TRUE(has_channel(channels, "file.lock", "unlock_file", "try_lock"));
    // No channel through caller.error_code back to lock_file (it never reads it).
    EXPECT_FALSE(has_channel(channels, "caller.error_code", "try_lock", "lock_file"));
}

TEST(Srm, IndirectFlowThroughDerivedAttribute) {
    // lock state flows into caller.error_code via try_lock; read_error then
    // senses file.lock *indirectly*.
    const auto channels = file_lock_system().all_channels();
    EXPECT_TRUE(has_channel(channels, "file.lock", "lock_file", "read_error",
                            /*indirect=*/true));
    // The direct candidates are still reported as direct.
    EXPECT_TRUE(has_channel(channels, "file.lock", "lock_file", "try_lock", false));
}

TEST(Srm, FlowClosureIsTransitive) {
    SharedResourceMatrix srm;
    srm.add_operation("op1", {"a"}, {"b"});
    srm.add_operation("op2", {"b"}, {"c"});
    srm.add_operation("op3", {"c"}, {"d"});
    const auto flow = srm.flow_closure();
    const auto& attrs = srm.attributes();
    const auto idx = [&](const std::string& n) {
        return static_cast<std::size_t>(
            std::find(attrs.begin(), attrs.end(), n) - attrs.begin());
    };
    EXPECT_TRUE(flow[idx("a")][idx("d")]);   // a -> b -> c -> d
    EXPECT_FALSE(flow[idx("d")][idx("a")]);  // no reverse flow
    EXPECT_TRUE(flow[idx("a")][idx("a")]);   // reflexive
}

TEST(Srm, NoChannelsWithoutSharedState) {
    SharedResourceMatrix srm;
    srm.add_operation("sender_compute", {}, {"sender.private"});
    srm.add_operation("receiver_compute", {"receiver.private"}, {});
    EXPECT_TRUE(srm.direct_channels().empty());
    EXPECT_TRUE(srm.all_channels().empty());
}

TEST(Srm, SelfChannelsExcluded) {
    SharedResourceMatrix srm;
    srm.add_operation("touch", {"x"}, {"x"});
    // The only reader of x is the modifier itself: no channel.
    EXPECT_TRUE(srm.direct_channels().empty());
}

TEST(Srm, DiskArmChannelScenario) {
    // The disk-arm-position channel: request ordering reveals the arm
    // position the previous request left behind.
    SharedResourceMatrix srm;
    srm.add_operation("seek_inner", {}, {"disk.arm"});
    srm.add_operation("seek_outer", {}, {"disk.arm"});
    srm.add_operation("timed_read", {"disk.arm"}, {"caller.latency"});
    srm.add_operation("observe_latency", {"caller.latency"}, {});
    const auto channels = srm.all_channels();
    EXPECT_TRUE(has_channel(channels, "disk.arm", "seek_inner", "timed_read"));
    EXPECT_TRUE(has_channel(channels, "disk.arm", "seek_outer", "observe_latency", true));
}

}  // namespace
