#include "ccap/util/shard_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace {

using ccap::util::ShardedMemoCache;

TEST(ShardCacheTest, FindMissThenInsertThenHit) {
    ShardedMemoCache<int, std::string> cache(4, 8);
    EXPECT_FALSE(cache.find(7).has_value());
    cache.insert(7, "seven");
    const auto hit = cache.find(7);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "seven");
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(ShardCacheTest, InsertOverwritesInPlace) {
    ShardedMemoCache<int, int> cache(2, 4);
    cache.insert(1, 10);
    cache.insert(1, 11);
    EXPECT_EQ(cache.find(1).value(), 11);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardCacheTest, EvictsFifoPerShardAtCapacity) {
    // One shard so eviction order is fully observable.
    ShardedMemoCache<int, int> cache(1, 3);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.insert(3, 3);
    EXPECT_EQ(cache.stats().evictions, 0u);
    cache.insert(4, 4);  // evicts key 1, the oldest
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.find(1).has_value());
    EXPECT_TRUE(cache.find(2).has_value());
    EXPECT_TRUE(cache.find(4).has_value());
    EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ShardCacheTest, OverwriteDoesNotRefreshEvictionPosition) {
    ShardedMemoCache<int, int> cache(1, 2);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.insert(1, 100);  // overwrite: key 1 keeps its FIFO slot
    cache.insert(3, 3);    // evicts key 1 (still the oldest insert)
    EXPECT_FALSE(cache.find(1).has_value());
    EXPECT_TRUE(cache.find(2).has_value());
    EXPECT_TRUE(cache.find(3).has_value());
}

TEST(ShardCacheTest, GetOrComputeComputesOnceThenHits) {
    ShardedMemoCache<int, int> cache(4, 8);
    int computes = 0;
    const auto square = [&computes](const int& k) {
        ++computes;
        return k * k;
    };
    EXPECT_EQ(cache.get_or_compute(5, square), 25);
    EXPECT_EQ(cache.get_or_compute(5, square), 25);
    EXPECT_EQ(computes, 1);
}

TEST(ShardCacheTest, ClearDropsEntriesKeepsCounters) {
    ShardedMemoCache<int, int> cache(4, 8);
    cache.insert(1, 1);
    cache.insert(2, 2);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(cache.find(1).has_value());
}

TEST(ShardCacheTest, ConcurrentGetOrComputeIsConsistent) {
    // Key-deterministic compute: racing duplicate computes must agree, so
    // every reader sees the same value regardless of interleaving.
    ShardedMemoCache<std::uint64_t, std::uint64_t> cache(8, 64);
    constexpr int kThreads = 4;
    constexpr std::uint64_t kKeys = 64;
    std::vector<std::vector<std::uint64_t>> seen(kThreads,
                                                 std::vector<std::uint64_t>(kKeys));
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::uint64_t k = 0; k < kKeys; ++k)
                seen[t][k] = cache.get_or_compute(
                    k, [](const std::uint64_t& key) { return key * 2654435761ULL; });
        });
    }
    for (auto& w : workers) w.join();
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
    EXPECT_EQ(cache.stats().entries, kKeys);
}

}  // namespace
