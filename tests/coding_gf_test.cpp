#include "ccap/coding/gf.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using ccap::coding::GaloisField;

TEST(GaloisField, ConstructionValidation) {
    EXPECT_THROW(GaloisField(0), std::invalid_argument);
    EXPECT_THROW(GaloisField(13), std::invalid_argument);
    EXPECT_NO_THROW(GaloisField(1));
    EXPECT_NO_THROW(GaloisField(12));
}

TEST(GaloisField, SizeIsPowerOfTwo) {
    EXPECT_EQ(GaloisField(4).size(), 16U);
    EXPECT_EQ(GaloisField(8).size(), 256U);
}

TEST(GaloisField, AdditionIsXor) {
    const GaloisField gf(4);
    EXPECT_EQ(gf.add(0b1010, 0b0110), 0b1100);
    EXPECT_EQ(gf.add(7, 7), 0);  // characteristic 2
    EXPECT_EQ(gf.sub(5, 3), gf.add(5, 3));
}

TEST(GaloisField, MultiplicativeIdentityAndZero) {
    const GaloisField gf(4);
    for (std::uint16_t a = 0; a < gf.size(); ++a) {
        EXPECT_EQ(gf.mul(a, 1), a);
        EXPECT_EQ(gf.mul(a, 0), 0);
        EXPECT_EQ(gf.mul(0, a), 0);
    }
}

TEST(GaloisField, MultiplicationCommutativeAssociative) {
    const GaloisField gf(4);
    for (std::uint16_t a = 1; a < 16; ++a)
        for (std::uint16_t b = 1; b < 16; ++b) {
            EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
            for (std::uint16_t c = 1; c < 16; c += 5)
                EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        }
}

TEST(GaloisField, Distributivity) {
    const GaloisField gf(3);
    for (std::uint16_t a = 0; a < 8; ++a)
        for (std::uint16_t b = 0; b < 8; ++b)
            for (std::uint16_t c = 0; c < 8; ++c)
                EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
}

TEST(GaloisField, InverseProperty) {
    const GaloisField gf(6);
    for (std::uint16_t a = 1; a < gf.size(); ++a)
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1) << "a=" << a;
    EXPECT_THROW((void)gf.inv(0), std::domain_error);
}

TEST(GaloisField, DivisionMatchesInverse) {
    const GaloisField gf(4);
    for (std::uint16_t a = 0; a < 16; ++a)
        for (std::uint16_t b = 1; b < 16; ++b)
            EXPECT_EQ(gf.div(a, b), gf.mul(a, gf.inv(b)));
    EXPECT_THROW((void)gf.div(3, 0), std::domain_error);
}

TEST(GaloisField, PrimitiveElementGeneratesField) {
    const GaloisField gf(5);
    std::set<std::uint16_t> seen;
    for (unsigned i = 0; i < gf.size() - 1; ++i) seen.insert(gf.alpha_pow(i));
    EXPECT_EQ(seen.size(), gf.size() - 1U);  // every nonzero element
    EXPECT_EQ(gf.alpha_pow(gf.size() - 1), gf.alpha_pow(0));  // cyclic
}

TEST(GaloisField, PowProperties) {
    const GaloisField gf(4);
    EXPECT_EQ(gf.pow(0, 0), 1);  // 0^0 convention
    EXPECT_EQ(gf.pow(0, 5), 0);
    for (std::uint16_t a = 1; a < 16; ++a) {
        EXPECT_EQ(gf.pow(a, 0), 1);
        EXPECT_EQ(gf.pow(a, 1), a);
        EXPECT_EQ(gf.pow(a, 2), gf.mul(a, a));
        // Fermat: a^(q-1) = 1.
        EXPECT_EQ(gf.pow(a, 15), 1);
    }
}

TEST(GaloisField, OutOfFieldThrows) {
    const GaloisField gf(3);
    EXPECT_THROW((void)gf.mul(8, 1), std::out_of_range);
    EXPECT_THROW((void)gf.inv(8), std::out_of_range);
}

TEST(GaloisField, Gf16KnownProducts) {
    // GF(16) with x^4 + x + 1: alpha = 2; alpha^4 = alpha + 1 = 3.
    const GaloisField gf(4);
    EXPECT_EQ(gf.mul(2, 2), 4);
    EXPECT_EQ(gf.mul(4, 4), 3);      // alpha^4 = 0b0011
    EXPECT_EQ(gf.mul(8, 2), 3);      // alpha^3 * alpha = alpha^4
    EXPECT_EQ(gf.alpha_pow(4), 3);
}

}  // namespace
