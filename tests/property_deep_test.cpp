// Deep property tests: the probabilistic decoders checked against
// brute-force enumeration on instances small enough to enumerate, plus
// threshold-shape properties that only show up across parameter sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>

#include "ccap/coding/bcjr.hpp"
#include "ccap/coding/ldpc_gf.hpp"
#include "ccap/coding/viterbi.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap;
using coding::Bits;
using coding::ConvolutionalCode;

// ---------------------------------------------------------------------------
// BCJR vs exhaustive MAP.
// ---------------------------------------------------------------------------

double bsc_likelihood(const Bits& codeword, const Bits& received, double p) {
    double like = 1.0;
    for (std::size_t i = 0; i < codeword.size(); ++i)
        like *= codeword[i] == received[i] ? 1.0 - p : p;
    return like;
}

TEST(DeepBcjr, PosteriorsMatchExhaustiveEnumeration) {
    const ConvolutionalCode code({0b111, 0b101}, 3);
    const std::size_t info_len = 8;
    util::Rng rng(1);
    const double p = 0.12;

    for (int trial = 0; trial < 4; ++trial) {
        const Bits info = coding::random_bits(info_len, 10 + trial);
        Bits received = code.encode(info);
        for (auto& b : received)
            if (rng.bernoulli(p)) b ^= 1;

        // Exhaustive posterior: sum over all 2^8 information words.
        std::vector<double> post_one(info_len, 0.0);
        double total = 0.0;
        for (std::uint32_t v = 0; v < (1U << info_len); ++v) {
            const Bits candidate = coding::bits_from_uint(v, info_len);
            const double like = bsc_likelihood(code.encode(candidate), received, p);
            total += like;
            for (std::size_t i = 0; i < info_len; ++i)
                if (candidate[i]) post_one[i] += like;
        }
        for (double& x : post_one) x /= total;

        const auto bcjr = coding::bcjr_decode_bsc(code, received, p);
        for (std::size_t i = 0; i < info_len; ++i)
            EXPECT_NEAR(bcjr.posterior_one[i], post_one[i], 1e-9)
                << "trial " << trial << " bit " << i;
    }
}

TEST(DeepViterbi, HardDecodeIsMaximumLikelihood) {
    const ConvolutionalCode code({0b111, 0b101}, 3);
    const std::size_t info_len = 7;
    util::Rng rng(2);

    for (int trial = 0; trial < 6; ++trial) {
        const Bits info = coding::random_bits(info_len, 20 + trial);
        Bits received = code.encode(info);
        for (auto& b : received)
            if (rng.bernoulli(0.2)) b ^= 1;

        // Brute-force minimum-Hamming-distance codeword.
        std::size_t best_dist = received.size() + 1;
        for (std::uint32_t v = 0; v < (1U << info_len); ++v) {
            const Bits candidate = coding::bits_from_uint(v, info_len);
            best_dist =
                std::min(best_dist, coding::hamming_distance(code.encode(candidate), received));
        }
        const auto res = coding::viterbi_decode_hard(code, received);
        EXPECT_EQ(coding::hamming_distance(code.encode(res.info), received), best_dist)
            << "trial " << trial;
        EXPECT_DOUBLE_EQ(res.path_metric, static_cast<double>(best_dist));
    }
}

// ---------------------------------------------------------------------------
// Drift-HMM posteriors vs exhaustive enumeration.
// ---------------------------------------------------------------------------

double channel_likelihood(const Bits& tx, const Bits& rx, const info::DriftParams& p) {
    const double inv_m = 1.0 / p.alphabet;
    std::map<std::pair<std::size_t, std::size_t>, double> memo;
    const std::function<double(std::size_t, std::size_t)> f = [&](std::size_t i,
                                                                  std::size_t j) -> double {
        const auto key = std::make_pair(i, j);
        if (const auto it = memo.find(key); it != memo.end()) return it->second;
        double v = 0.0;
        if (i == tx.size()) {
            v = std::pow(p.p_i * inv_m, static_cast<double>(rx.size() - j)) * (1.0 - p.p_i);
        } else {
            if (j < rx.size()) {
                v += p.p_i * inv_m * f(i, j + 1);
                const double emit = rx[j] == tx[i] ? 1.0 - p.p_s : p.p_s / (p.alphabet - 1.0);
                v += p.p_t() * emit * f(i + 1, j + 1);
            }
            v += p.p_d * f(i + 1, j);
        }
        memo[key] = v;
        return v;
    };
    return f(0, 0);
}

TEST(DeepDriftHmm, PosteriorsMatchExhaustiveEnumeration) {
    const info::DriftParams p{0.15, 0.1, 0.05, 2, 12, 10};
    const info::DriftHmm hmm(p);
    const std::size_t n = 6;
    // Non-uniform independent priors make the check stronger.
    util::Matrix priors(n, 2);
    for (std::size_t j = 0; j < n; ++j) {
        priors(j, 1) = 0.2 + 0.1 * static_cast<double>(j);
        priors(j, 0) = 1.0 - priors(j, 1);
    }
    const std::vector<Bits> rxs = {{1, 0, 1}, {0, 1, 1, 0, 1, 0}, {1, 1, 1, 1, 1, 1, 1}};
    for (const Bits& rx : rxs) {
        // Exhaustive: sum prior(tx) * P(rx | tx) over all 2^6 tx words.
        util::Matrix exact(n, 2, 0.0);
        for (std::uint32_t v = 0; v < (1U << n); ++v) {
            const Bits tx = coding::bits_from_uint(v, n);
            double prior = 1.0;
            for (std::size_t j = 0; j < n; ++j) prior *= priors(j, tx[j]);
            const double w = prior * channel_likelihood(tx, rx, p);
            for (std::size_t j = 0; j < n; ++j) exact(j, tx[j]) += w;
        }
        for (std::size_t j = 0; j < n; ++j) {
            const double norm = exact(j, 0) + exact(j, 1);
            exact(j, 0) /= norm;
            exact(j, 1) /= norm;
        }

        const util::Matrix post = hmm.posteriors(priors, rx);
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(post(j, 1), exact(j, 1), 1e-8) << "rx len " << rx.size() << " pos " << j;
    }
}

TEST(DeepDriftHmm, SegmentLikelihoodsMatchExhaustiveEnumeration) {
    // With segments covering the WHOLE sequence (one segment), the
    // Davey-MacKay approximation is exact: compare against enumeration.
    const info::DriftParams p{0.1, 0.1, 0.0, 2, 10, 8};
    const info::DriftHmm hmm(p);
    const std::size_t n = 4;
    util::Matrix priors(n, 2, 0.5);
    const Bits rx = {1, 0, 1};
    std::vector<Bits> candidates;
    for (std::uint32_t v = 0; v < (1U << n); ++v)
        candidates.push_back(coding::bits_from_uint(v, n));

    const util::Matrix like = hmm.segment_likelihoods(priors, rx, n, candidates);
    double total = 0.0;
    std::vector<double> exact(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        exact[c] = channel_likelihood(candidates[c], rx, p);
        total += exact[c];
    }
    for (std::size_t c = 0; c < candidates.size(); ++c)
        EXPECT_NEAR(like(0, c), exact[c] / total, 1e-9) << "candidate " << c;
}

// ---------------------------------------------------------------------------
// NB-LDPC threshold shape.
// ---------------------------------------------------------------------------

TEST(DeepNbLdpc, SuccessRateDegradesMonotonically) {
    coding::NbLdpcParams lp;
    lp.field_m = 4;
    lp.n = 48;
    lp.num_checks = 16;
    lp.seed = 3;
    const coding::NbLdpcCode code(lp);
    util::Rng rng(4);

    double prev_rate = 1.1;
    for (const double p_err : {0.02, 0.10, 0.25}) {
        int ok = 0;
        constexpr int kTrials = 12;
        for (int t = 0; t < kTrials; ++t) {
            std::vector<std::uint16_t> info(code.k());
            for (auto& s : info) s = static_cast<std::uint16_t>(rng.uniform_below(16));
            auto word = code.encode(info);
            auto observed = word;
            for (auto& s : observed)
                if (rng.bernoulli(p_err)) s = static_cast<std::uint16_t>(rng.uniform_below(16));
            util::Matrix like(code.n(), 16, p_err / 15.0);
            for (std::size_t v = 0; v < code.n(); ++v) like(v, observed[v]) = 1.0 - p_err;
            const auto res = code.decode(like);
            ok += res.converged && res.symbols == word;
        }
        const double rate = static_cast<double>(ok) / kTrials;
        EXPECT_LE(rate, prev_rate + 0.10) << "p_err " << p_err;
        prev_rate = rate;
    }
    // The last operating point (25% symbol errors at rate 2/3) should be
    // mostly undecodable; the first should be near-perfect.
    EXPECT_LT(prev_rate, 0.5);
}

}  // namespace
