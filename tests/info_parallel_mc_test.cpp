// Determinism contract of the parallel Monte-Carlo estimators: the same
// root seed must produce bit-identical MiEstimate values for every thread
// count (per-block substream seeding + in-order folding, McOptions docs).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Rng;

void expect_bit_identical(const MiEstimate& a, const MiEstimate& b) {
    EXPECT_EQ(a.rate, b.rate);  // exact, not NEAR: bit-identical by contract
    EXPECT_EQ(a.sem, b.sem);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.block_len, b.block_len);
}

TEST(ParallelMcDeterminism, IidRateInvariantInThreadCount) {
    const DriftParams p{0.15, 0.05, 0.02, 2, 32, 8};
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 12;

    opts.threads = 1;
    Rng serial_rng(0xC0FFEE);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        Rng rng(0xC0FFEE);
        expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
    }
}

TEST(ParallelMcDeterminism, MarkovRateInvariantInThreadCount) {
    const DriftParams p{0.2, 0.0, 0.0, 2, 32, 8};
    const MarkovSource src = MarkovSource::binary_repeat(0.8);
    McOptions opts;
    opts.block_len = 40;
    opts.num_blocks = 10;

    opts.threads = 1;
    Rng serial_rng(0xBEEF);
    const MiEstimate serial = markov_mutual_information_rate(p, src, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        Rng rng(0xBEEF);
        expect_bit_identical(serial, markov_mutual_information_rate(p, src, opts, rng));
    }
}

TEST(ParallelMcDeterminism, ConvenienceOverloadMatchesOptionsForm) {
    // The legacy (block_len, num_blocks) signature is defined as
    // McOptions{block_len, num_blocks, 0} — same bits, any hardware.
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng a(42), b(42);
    const MiEstimate via_legacy = iid_mutual_information_rate(p, 32, 8, a);
    const MiEstimate via_opts = iid_mutual_information_rate(p, {32, 8, 1}, b);
    expect_bit_identical(via_legacy, via_opts);
}

TEST(ParallelMcDeterminism, ConsumesExactlyOneDrawFromCallerRng) {
    // The root-seed split is part of the API contract: downstream draws
    // from the caller's generator must not depend on num_blocks/threads.
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng a(7), b(7);
    (void)iid_mutual_information_rate(p, {16, 2, 1}, a);
    (void)iid_mutual_information_rate(p, {64, 9, 4}, b);
    EXPECT_EQ(a.next(), b.next());
}

TEST(ParallelMcDeterminism, RepeatedCallsWithSameRngDiffer) {
    // Successive calls advance the caller's generator, so estimates are
    // independent samples, not copies.
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng rng(11);
    const MiEstimate first = iid_mutual_information_rate(p, {32, 6, 2}, rng);
    const MiEstimate second = iid_mutual_information_rate(p, {32, 6, 2}, rng);
    EXPECT_NE(first.rate, second.rate);
}

TEST(ParallelMcDeterminism, IidRateInvariantInBatch) {
    // Batched tiles (McOptions::batch) are a layout transform, not a
    // numerics change: per-block seeding is untouched and lockstep lanes
    // are bit-identical to scalar sweeps at band_eps = 0, so the estimate
    // must not depend on the tile size — including batch = 1 (the scalar
    // path), ragged final tiles, and the auto-picked default.
    const DriftParams p{0.15, 0.05, 0.02, 2, 32, 8};
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 11;
    opts.threads = 2;

    opts.batch = 1;
    Rng scalar_rng(0xC0FFEE);
    const MiEstimate scalar = iid_mutual_information_rate(p, opts, scalar_rng);
    EXPECT_GT(scalar.rate, 0.0);

    for (std::size_t batch : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                              std::size_t{64}}) {
        opts.batch = batch;
        Rng rng(0xC0FFEE);
        expect_bit_identical(scalar, iid_mutual_information_rate(p, opts, rng));
    }
}

TEST(ParallelMcDeterminism, MarkovRateInvariantInBatch) {
    const DriftParams p{0.2, 0.0, 0.0, 2, 32, 8};
    const MarkovSource src = MarkovSource::binary_repeat(0.8);
    McOptions opts;
    opts.block_len = 40;
    opts.num_blocks = 10;
    opts.threads = 2;

    opts.batch = 1;
    Rng scalar_rng(0xBEEF);
    const MiEstimate scalar = markov_mutual_information_rate(p, src, opts, scalar_rng);
    EXPECT_GT(scalar.rate, 0.0);

    for (std::size_t batch : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
        opts.batch = batch;
        Rng rng(0xBEEF);
        expect_bit_identical(scalar, markov_mutual_information_rate(p, src, opts, rng));
    }
}

TEST(ParallelMcDeterminism, BatchedBandedRateInvariantInThreadCount) {
    // The batched banded path (shared union band) must still be
    // deterministic and thread-invariant, and must stay a certified lower
    // bound relative to the exact batched estimate.
    DriftParams p{0.1, 0.03, 0.01, 2, 32, 8};
    McOptions opts;
    opts.block_len = 64;
    opts.num_blocks = 8;
    opts.band_eps = 1e-8;
    opts.batch = 8;

    opts.threads = 1;
    Rng serial_rng(0xABCD);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);

    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        Rng rng(0xABCD);
        expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
    }
}

// ---------------------------------------------------------------------------
// Parameterized threads x batch tile matrix (ROADMAP item 1 follow-up: the
// thread axis of the MC tile, crossed with every interesting batch size).
// Runs under the tier-1 TSan stage via the ParallelMc name filter.
// ---------------------------------------------------------------------------

struct TileCase {
    unsigned threads;
    std::size_t batch;
};

std::vector<TileCase> tile_cases() {
    const std::size_t W =
        ccap::util::simd_vector_doubles(ccap::util::active_simd_path());
    std::vector<std::size_t> batches{1};
    for (std::size_t b : {W - 1, W, 4 * W})
        if (b >= 1 && std::find(batches.begin(), batches.end(), b) == batches.end())
            batches.push_back(b);
    std::vector<TileCase> cases;
    for (unsigned t : {1U, 2U, 4U, 8U})
        for (std::size_t b : batches) cases.push_back({t, b});
    return cases;
}

class ParallelMcTileInvariance : public ::testing::TestWithParam<TileCase> {
protected:
    // Baseline: serial scalar sweep (threads = 1, one lane per tile).
    // num_blocks = 4W + 3 leaves a ragged final tile at every batch > 1.
    static McOptions base_options() {
        McOptions opts;
        opts.block_len = 32;
        opts.num_blocks =
            4 * ccap::util::simd_vector_doubles(ccap::util::active_simd_path()) + 3;
        return opts;
    }
};

TEST_P(ParallelMcTileInvariance, IidBitIdenticalToSerialScalar) {
    const DriftParams p{0.12, 0.04, 0.02, 2, 24, 6};
    McOptions opts = base_options();

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0xFEED5EED);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    Rng rng(0xFEED5EED);
    expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
}

TEST_P(ParallelMcTileInvariance, ScalarTilingPolicyOverridesBatchAxis) {
    // McTiling::scalar must pin the tile to one lane for ANY (threads,
    // batch) request — resolved_mc_batch is a pure policy function — and the
    // estimate must stay bit-identical to the serial scalar baseline.
    const DriftParams p{0.12, 0.04, 0.02, 2, 24, 6};
    McOptions opts = base_options();

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0x5CA1AB1E);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    opts.tiling = McTiling::scalar;
    EXPECT_EQ(resolved_mc_batch(opts, p), 1u);
    Rng rng(0x5CA1AB1E);
    expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
}

TEST_P(ParallelMcTileInvariance, MarkovBitIdenticalToSerialScalar) {
    const DriftParams p{0.15, 0.02, 0.01, 2, 24, 6};
    const MarkovSource src = MarkovSource::binary_repeat(0.75);
    McOptions opts = base_options();

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0xD15EA5E);
    const MiEstimate serial = markov_mutual_information_rate(p, src, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    Rng rng(0xD15EA5E);
    expect_bit_identical(serial, markov_mutual_information_rate(p, src, opts, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Tile, ParallelMcTileInvariance, ::testing::ValuesIn(tile_cases()),
    [](const ::testing::TestParamInfo<TileCase>& info) {
        return "t" + std::to_string(info.param.threads) + "_b" +
               std::to_string(info.param.batch);
    });

}  // namespace
