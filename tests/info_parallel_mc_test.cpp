// Determinism contract of the parallel Monte-Carlo estimators: the same
// root seed must produce bit-identical MiEstimate values for every thread
// count (per-block substream seeding + in-order folding, McOptions docs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Rng;

void expect_bit_identical(const MiEstimate& a, const MiEstimate& b) {
    EXPECT_EQ(a.rate, b.rate);  // exact, not NEAR: bit-identical by contract
    EXPECT_EQ(a.sem, b.sem);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.block_len, b.block_len);
    EXPECT_EQ(a.converged, b.converged);
}

TEST(ParallelMcDeterminism, IidRateInvariantInThreadCount) {
    const DriftParams p{0.15, 0.05, 0.02, 2, 32, 8};
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 12;

    opts.threads = 1;
    Rng serial_rng(0xC0FFEE);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        Rng rng(0xC0FFEE);
        expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
    }
}

TEST(ParallelMcDeterminism, MarkovRateInvariantInThreadCount) {
    const DriftParams p{0.2, 0.0, 0.0, 2, 32, 8};
    const MarkovSource src = MarkovSource::binary_repeat(0.8);
    McOptions opts;
    opts.block_len = 40;
    opts.num_blocks = 10;

    opts.threads = 1;
    Rng serial_rng(0xBEEF);
    const MiEstimate serial = markov_mutual_information_rate(p, src, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        Rng rng(0xBEEF);
        expect_bit_identical(serial, markov_mutual_information_rate(p, src, opts, rng));
    }
}

TEST(ParallelMcDeterminism, ConvenienceOverloadMatchesOptionsForm) {
    // The legacy (block_len, num_blocks) signature is defined as
    // McOptions{block_len, num_blocks, 0} — same bits, any hardware.
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng a(42), b(42);
    const MiEstimate via_legacy = iid_mutual_information_rate(p, 32, 8, a);
    const MiEstimate via_opts = iid_mutual_information_rate(p, {32, 8, 1}, b);
    expect_bit_identical(via_legacy, via_opts);
}

TEST(ParallelMcDeterminism, ConsumesExactlyOneDrawFromCallerRng) {
    // The root-seed split is part of the API contract: downstream draws
    // from the caller's generator must not depend on num_blocks/threads.
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng a(7), b(7);
    (void)iid_mutual_information_rate(p, {16, 2, 1}, a);
    (void)iid_mutual_information_rate(p, {64, 9, 4}, b);
    EXPECT_EQ(a.next(), b.next());
}

TEST(ParallelMcDeterminism, RepeatedCallsWithSameRngDiffer) {
    // Successive calls advance the caller's generator, so estimates are
    // independent samples, not copies.
    const DriftParams p{0.1, 0.0, 0.0, 2, 24, 8};
    Rng rng(11);
    const MiEstimate first = iid_mutual_information_rate(p, {32, 6, 2}, rng);
    const MiEstimate second = iid_mutual_information_rate(p, {32, 6, 2}, rng);
    EXPECT_NE(first.rate, second.rate);
}

TEST(ParallelMcDeterminism, IidRateInvariantInBatch) {
    // Batched tiles (McOptions::batch) are a layout transform, not a
    // numerics change: per-block seeding is untouched and lockstep lanes
    // are bit-identical to scalar sweeps at band_eps = 0, so the estimate
    // must not depend on the tile size — including batch = 1 (the scalar
    // path), ragged final tiles, and the auto-picked default.
    const DriftParams p{0.15, 0.05, 0.02, 2, 32, 8};
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 11;
    opts.threads = 2;

    opts.batch = 1;
    Rng scalar_rng(0xC0FFEE);
    const MiEstimate scalar = iid_mutual_information_rate(p, opts, scalar_rng);
    EXPECT_GT(scalar.rate, 0.0);

    for (std::size_t batch : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                              std::size_t{64}}) {
        opts.batch = batch;
        Rng rng(0xC0FFEE);
        expect_bit_identical(scalar, iid_mutual_information_rate(p, opts, rng));
    }
}

TEST(ParallelMcDeterminism, MarkovRateInvariantInBatch) {
    const DriftParams p{0.2, 0.0, 0.0, 2, 32, 8};
    const MarkovSource src = MarkovSource::binary_repeat(0.8);
    McOptions opts;
    opts.block_len = 40;
    opts.num_blocks = 10;
    opts.threads = 2;

    opts.batch = 1;
    Rng scalar_rng(0xBEEF);
    const MiEstimate scalar = markov_mutual_information_rate(p, src, opts, scalar_rng);
    EXPECT_GT(scalar.rate, 0.0);

    for (std::size_t batch : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
        opts.batch = batch;
        Rng rng(0xBEEF);
        expect_bit_identical(scalar, markov_mutual_information_rate(p, src, opts, rng));
    }
}

TEST(ParallelMcDeterminism, BatchedBandedRateInvariantInThreadCount) {
    // The batched banded path (shared union band) must still be
    // deterministic and thread-invariant, and must stay a certified lower
    // bound relative to the exact batched estimate.
    DriftParams p{0.1, 0.03, 0.01, 2, 32, 8};
    McOptions opts;
    opts.block_len = 64;
    opts.num_blocks = 8;
    opts.band_eps = 1e-8;
    opts.batch = 8;

    opts.threads = 1;
    Rng serial_rng(0xABCD);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);

    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        Rng rng(0xABCD);
        expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
    }
}

// ---------------------------------------------------------------------------
// Parameterized threads x batch tile matrix (ROADMAP item 1 follow-up: the
// thread axis of the MC tile, crossed with every interesting batch size).
// Runs under the tier-1 TSan stage via the ParallelMc name filter.
// ---------------------------------------------------------------------------

struct TileCase {
    unsigned threads;
    std::size_t batch;
};

std::vector<TileCase> tile_cases() {
    const std::size_t W =
        ccap::util::simd_vector_doubles(ccap::util::active_simd_path());
    std::vector<std::size_t> batches{1};
    for (std::size_t b : {W - 1, W, 4 * W})
        if (b >= 1 && std::find(batches.begin(), batches.end(), b) == batches.end())
            batches.push_back(b);
    std::vector<TileCase> cases;
    for (unsigned t : {1U, 2U, 4U, 8U})
        for (std::size_t b : batches) cases.push_back({t, b});
    return cases;
}

class ParallelMcTileInvariance : public ::testing::TestWithParam<TileCase> {
protected:
    // Baseline: serial scalar sweep (threads = 1, one lane per tile).
    // num_blocks = 4W + 3 leaves a ragged final tile at every batch > 1.
    static McOptions base_options() {
        McOptions opts;
        opts.block_len = 32;
        opts.num_blocks =
            4 * ccap::util::simd_vector_doubles(ccap::util::active_simd_path()) + 3;
        return opts;
    }
};

TEST_P(ParallelMcTileInvariance, IidBitIdenticalToSerialScalar) {
    const DriftParams p{0.12, 0.04, 0.02, 2, 24, 6};
    McOptions opts = base_options();

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0xFEED5EED);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    Rng rng(0xFEED5EED);
    expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
}

TEST_P(ParallelMcTileInvariance, ScalarTilingPolicyOverridesBatchAxis) {
    // McTiling::scalar must pin the tile to one lane for ANY (threads,
    // batch) request — resolved_mc_batch is a pure policy function — and the
    // estimate must stay bit-identical to the serial scalar baseline.
    const DriftParams p{0.12, 0.04, 0.02, 2, 24, 6};
    McOptions opts = base_options();

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0x5CA1AB1E);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    opts.tiling = McTiling::scalar;
    EXPECT_EQ(resolved_mc_batch(opts, p), 1u);
    Rng rng(0x5CA1AB1E);
    expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
}

TEST_P(ParallelMcTileInvariance, MarkovBitIdenticalToSerialScalar) {
    const DriftParams p{0.15, 0.02, 0.01, 2, 24, 6};
    const MarkovSource src = MarkovSource::binary_repeat(0.75);
    McOptions opts = base_options();

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0xD15EA5E);
    const MiEstimate serial = markov_mutual_information_rate(p, src, opts, serial_rng);
    EXPECT_GT(serial.rate, 0.0);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    Rng rng(0xD15EA5E);
    expect_bit_identical(serial, markov_mutual_information_rate(p, src, opts, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Tile, ParallelMcTileInvariance, ::testing::ValuesIn(tile_cases()),
    [](const ::testing::TestParamInfo<TileCase>& info) {
        return "t" + std::to_string(info.param.threads) + "_b" +
               std::to_string(info.param.batch);
    });

// ---------------------------------------------------------------------------
// Adaptive early stopping (McOptions::target_sem). The data-dependent
// stopping time must itself be a pure function of the root seed — the same
// blocks spent, and the same bits out, at every thread count and batch
// size. Suite names start with ParallelMc so the tier-1 TSan stage covers
// the concurrent round loop.
// ---------------------------------------------------------------------------

TEST(ParallelMcAdaptive, TargetZeroIsFixedModeExactly) {
    // target_sem = 0 must reproduce the historical fixed-block behavior bit
    // for bit; max_blocks and point_budget are documented as ignored there.
    const DriftParams p{0.15, 0.05, 0.02, 2, 32, 8};
    McOptions fixed;
    fixed.block_len = 48;
    fixed.num_blocks = 12;
    fixed.threads = 2;
    Rng a(0xC0FFEE);
    const MiEstimate baseline = iid_mutual_information_rate(p, fixed, a);
    EXPECT_TRUE(baseline.converged);
    EXPECT_EQ(baseline.blocks, fixed.num_blocks);

    McOptions opts = fixed;
    opts.target_sem = 0.0;
    opts.max_blocks = 7;      // ignored in fixed mode
    opts.point_budget = 3;    // ignored by the single-point estimators
    Rng b(0xC0FFEE);
    expect_bit_identical(baseline, iid_mutual_information_rate(p, opts, b));
}

TEST(ParallelMcAdaptive, ConvergedMeetsTargetAndSpendsWholeRounds) {
    const DriftParams p{0.1, 0.02, 0.0, 2, 24, 6};
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 8;  // round size in adaptive mode
    opts.target_sem = 0.02;
    opts.threads = 2;
    Rng rng(123);
    const MiEstimate est = iid_mutual_information_rate(p, opts, rng);
    ASSERT_TRUE(est.converged);
    EXPECT_LE(est.sem, opts.target_sem);
    EXPECT_GE(est.blocks, mc_round_blocks(opts));
    EXPECT_LE(est.blocks, mc_block_cap(opts));
    EXPECT_EQ(est.blocks % mc_round_blocks(opts), 0u);
}

TEST(ParallelMcAdaptive, ZeroVarianceChannelStopsAfterPilotRound) {
    // A noiseless channel scores every block exactly 1 bit/use: the SEM is
    // identically 0 after the pilot round, so the driver must stop there.
    const DriftParams p{0.0, 0.0, 0.0, 2, 24, 6};
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 1e-6;
    Rng rng(5);
    const MiEstimate est = iid_mutual_information_rate(p, opts, rng);
    EXPECT_TRUE(est.converged);
    EXPECT_EQ(est.blocks, mc_round_blocks(opts));
    EXPECT_NEAR(est.rate, 1.0, 1e-9);
    EXPECT_LE(est.sem, opts.target_sem);
}

TEST(ParallelMcAdaptive, BlockCapBoundsSpendAndClearsConverged) {
    // An unreachable target must stop at mc_block_cap with converged=false,
    // never loop.
    const DriftParams p{0.2, 0.05, 0.02, 2, 24, 6};
    McOptions opts;
    opts.block_len = 24;
    opts.num_blocks = 4;
    opts.target_sem = 1e-12;
    opts.max_blocks = 20;
    Rng rng(9);
    const MiEstimate est = iid_mutual_information_rate(p, opts, rng);
    EXPECT_FALSE(est.converged);
    EXPECT_EQ(est.blocks, mc_block_cap(opts));
    EXPECT_EQ(est.blocks, 20u);
}

struct AdaptiveCase {
    unsigned threads;
    std::size_t batch;
};

class ParallelMcAdaptiveInvariance : public ::testing::TestWithParam<AdaptiveCase> {};

TEST_P(ParallelMcAdaptiveInvariance, IidStoppingTimeBitIdenticalToSerialScalar) {
    // Heterogeneous enough that the stop happens after several rounds; the
    // spent count (not just the value) must match the serial scalar run.
    const DriftParams p{0.18, 0.04, 0.02, 2, 24, 6};
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 0.015;
    opts.max_blocks = 96;

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0xADA97);
    const MiEstimate serial = iid_mutual_information_rate(p, opts, serial_rng);
    EXPECT_GT(serial.blocks, mc_round_blocks(opts));  // took > 1 round

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    Rng rng(0xADA97);
    expect_bit_identical(serial, iid_mutual_information_rate(p, opts, rng));
}

TEST_P(ParallelMcAdaptiveInvariance, MarkovStoppingTimeBitIdenticalToSerialScalar) {
    const DriftParams p{0.2, 0.0, 0.01, 2, 24, 6};
    const MarkovSource src = MarkovSource::binary_repeat(0.7);
    McOptions opts;
    opts.block_len = 28;
    opts.num_blocks = 5;
    opts.target_sem = 0.02;
    opts.max_blocks = 80;

    opts.threads = 1;
    opts.batch = 1;
    Rng serial_rng(0xADA98);
    const MiEstimate serial = markov_mutual_information_rate(p, src, opts, serial_rng);

    opts.threads = GetParam().threads;
    opts.batch = GetParam().batch;
    Rng rng(0xADA98);
    expect_bit_identical(serial, markov_mutual_information_rate(p, src, opts, rng));
}

INSTANTIATE_TEST_SUITE_P(
    Adaptive, ParallelMcAdaptiveInvariance,
    ::testing::Values(AdaptiveCase{1, 1}, AdaptiveCase{1, 0}, AdaptiveCase{8, 1},
                      AdaptiveCase{8, 0}),
    [](const ::testing::TestParamInfo<AdaptiveCase>& info) {
        return "t" + std::to_string(info.param.threads) + "_b" +
               std::to_string(info.param.batch);
    });

// ---------------------------------------------------------------------------
// Cross-point budget allocation (iid_mutual_information_rate_points in
// adaptive mode).
// ---------------------------------------------------------------------------

std::vector<CapacityPoint> heterogeneous_points() {
    // Low-noise points converge almost immediately; the noisy ones need
    // many more blocks — the spread the Neyman allocator exists for.
    std::vector<CapacityPoint> pts;
    std::uint64_t seed = 1000;
    for (double pd : {0.02, 0.1, 0.25, 0.4})
        pts.push_back({DriftParams{pd, 0.02, 0.0, 2, 24, 6}, seed++});
    return pts;
}

TEST(ParallelMcAdaptivePoints, EachPointMatchesStandaloneFixedRun) {
    // The tentpole identity: out[i] must be bit-identical to a standalone
    // fixed-mode evaluation of the same point over the same spent count.
    const std::vector<CapacityPoint> pts = heterogeneous_points();
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 0.02;
    opts.max_blocks = 120;
    const std::vector<MiEstimate> out = iid_mutual_information_rate_points(pts, opts);
    ASSERT_EQ(out.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        McOptions fixed = opts;
        fixed.target_sem = 0.0;
        fixed.num_blocks = out[i].blocks;
        fixed.threads = 1;
        Rng rng(pts[i].seed);
        const MiEstimate standalone =
            iid_mutual_information_rate(pts[i].params, fixed, rng);
        EXPECT_EQ(out[i].rate, standalone.rate) << "point " << i;
        EXPECT_EQ(out[i].sem, standalone.sem) << "point " << i;
        EXPECT_EQ(out[i].blocks, standalone.blocks) << "point " << i;
    }
}

TEST(ParallelMcAdaptivePoints, SpendFollowsVariance) {
    // The budget-allocation claim: blocks go where the per-block variance
    // is. The stopping rule spends ~ (sd / target)^2 per point, so the
    // realized per-block sd (sem * sqrt(blocks)) of the biggest spender
    // must dominate the smallest spender's — and a heterogeneous grid must
    // actually produce differentiated spends.
    const std::vector<CapacityPoint> pts = heterogeneous_points();
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 0.015;
    opts.max_blocks = 240;
    const std::vector<MiEstimate> out = iid_mutual_information_rate_points(pts, opts);
    const auto sd = [](const MiEstimate& e) {
        return e.sem * std::sqrt(static_cast<double>(e.blocks));
    };
    const auto [lo, hi] = std::minmax_element(
        out.begin(), out.end(),
        [](const MiEstimate& a, const MiEstimate& b) { return a.blocks < b.blocks; });
    EXPECT_GT(hi->blocks, lo->blocks);
    EXPECT_GE(sd(*hi), sd(*lo));
    for (const MiEstimate& e : out) {
        if (e.converged) {
            EXPECT_LE(e.sem, opts.target_sem);
        }
    }
}

TEST(ParallelMcAdaptivePoints, ThreadCountDoesNotChangeSpentCountsOrBits) {
    const std::vector<CapacityPoint> pts = heterogeneous_points();
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 0.02;
    opts.max_blocks = 120;
    opts.point_budget = 160;  // binding: the scheduler must scale grants

    opts.threads = 1;
    const std::vector<MiEstimate> serial = iid_mutual_information_rate_points(pts, opts);
    for (unsigned threads : {2U, 8U}) {
        opts.threads = threads;
        const std::vector<MiEstimate> par = iid_mutual_information_rate_points(pts, opts);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expect_bit_identical(serial[i], par[i]);
    }
}

TEST(ParallelMcAdaptivePoints, SharedBudgetCapsTotalSpend) {
    const std::vector<CapacityPoint> pts = heterogeneous_points();
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 1e-9;  // unreachable: only the budget stops the run
    opts.max_blocks = 4096;
    opts.point_budget = 100;
    const std::vector<MiEstimate> out = iid_mutual_information_rate_points(pts, opts);
    std::size_t total = 0;
    for (const MiEstimate& e : out) total += e.blocks;
    // The pilot always runs; past it, grants must never exceed the budget.
    const std::size_t pilot = mc_round_blocks(opts) * pts.size();
    EXPECT_LE(total, std::max<std::size_t>(opts.point_budget, pilot));
    for (const MiEstimate& e : out) EXPECT_FALSE(e.converged);
}

TEST(ParallelMcAdaptivePoints, FixedModeUnchangedByNewFields) {
    // target_sem = 0 keeps the per-point standalone semantics bit for bit,
    // whatever the adaptive knobs say.
    const std::vector<CapacityPoint> pts = heterogeneous_points();
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    const std::vector<MiEstimate> plain = iid_mutual_information_rate_points(pts, opts);
    McOptions decorated = opts;
    decorated.max_blocks = 17;
    decorated.point_budget = 5;
    const std::vector<MiEstimate> with = iid_mutual_information_rate_points(pts, decorated);
    ASSERT_EQ(plain.size(), with.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        expect_bit_identical(plain[i], with[i]);
    for (std::size_t i = 0; i < plain.size(); ++i) {
        Rng rng(pts[i].seed);
        McOptions inner = opts;
        inner.threads = 1;
        expect_bit_identical(plain[i],
                             iid_mutual_information_rate(pts[i].params, inner, rng));
    }
}

// ---------------------------------------------------------------------------
// Common-random-numbers point tiling (McOptions::point_tile): whole grid
// tiles ride one per-lane-parameter sweep off a shared per-block variate
// tape. Suite names start with ParallelMc so the tier-1 TSan stage covers
// the tiled sweep loop.
// ---------------------------------------------------------------------------

std::vector<CapacityPoint> crn_strip(std::size_t n) {
    // A pd-ascending strip with shared lattice structure. Only the first
    // point's seed matters in CRN mode (it roots the tape); distinct seeds
    // keep the independent baseline honest.
    std::vector<CapacityPoint> pts;
    for (std::size_t i = 0; i < n; ++i)
        pts.push_back({DriftParams{0.03 + 0.05 * static_cast<double>(i), 0.02, 0.0, 2,
                                   24, 6},
                       2000 + i});
    return pts;
}

TEST(ParallelMcCrnPoints, ResolvedPointTilePolicy) {
    McOptions opts;
    EXPECT_EQ(resolved_point_tile(opts, 16), 0u);  // default: independent mode
    opts.point_tile = 6;
    EXPECT_EQ(resolved_point_tile(opts, 16), 6u);
    EXPECT_EQ(resolved_point_tile(opts, 4), 4u);  // clamped to the grid
    EXPECT_EQ(resolved_point_tile(opts, 0), 0u);
    opts.point_tile = kMcPointTileAuto;
    const std::size_t W =
        ccap::util::simd_vector_doubles(ccap::util::active_simd_path());
    const std::size_t g = resolved_point_tile(opts, 1000);
    EXPECT_GE(g, std::max<std::size_t>(W, 8));
    EXPECT_EQ(g % W, 0u);
    EXPECT_EQ(resolved_point_tile(opts, 3), 3u);  // tiny grid: masked tail
}

TEST(ParallelMcCrnPoints, FixedModeBitIdenticalAcrossThreadsBatchAndTile) {
    // The per-(block, point) sample is a pure function of the tape root and
    // the point's parameters, so the estimates must not depend on how the
    // grid is grouped into tiles, how blocks are chunked, or who runs them.
    const std::vector<CapacityPoint> pts = crn_strip(7);
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 9;
    opts.point_tile = 4;
    opts.threads = 1;
    opts.batch = 1;
    const std::vector<MiEstimate> base = iid_mutual_information_rate_points(pts, opts);
    ASSERT_EQ(base.size(), pts.size());
    for (const MiEstimate& e : base) {
        EXPECT_GT(e.rate, 0.0);
        EXPECT_TRUE(e.converged);
        EXPECT_EQ(e.blocks, opts.num_blocks);
    }
    for (unsigned threads : {2U, 8U})
        for (std::size_t batch : {std::size_t{0}, std::size_t{3}, std::size_t{64}})
            for (std::size_t tile :
                 {std::size_t{1}, std::size_t{3}, std::size_t{7}, kMcPointTileAuto}) {
                McOptions alt = opts;
                alt.threads = threads;
                alt.batch = batch;
                alt.point_tile = tile;
                const std::vector<MiEstimate> out =
                    iid_mutual_information_rate_points(pts, alt);
                ASSERT_EQ(out.size(), base.size());
                for (std::size_t i = 0; i < base.size(); ++i)
                    expect_bit_identical(base[i], out[i]);
            }
}

TEST(ParallelMcCrnPoints, AdaptiveStoppingBitIdenticalAcrossThreadsAndTile) {
    // Round-synchronous stopping reads each point's own fold, so the spent
    // counts — not just the values — are thread- and tile-invariant.
    const std::vector<CapacityPoint> pts = crn_strip(5);
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;  // round size in adaptive mode
    opts.target_sem = 0.015;
    opts.max_blocks = 96;
    opts.point_tile = 5;
    opts.threads = 1;
    opts.batch = 1;
    const std::vector<MiEstimate> base = iid_mutual_information_rate_points(pts, opts);
    bool multi_round = false;
    for (const MiEstimate& e : base) {
        EXPECT_EQ(e.blocks % mc_round_blocks(opts), 0u);
        if (e.blocks > mc_round_blocks(opts)) multi_round = true;
        if (e.converged) {
            EXPECT_LE(e.sem, opts.target_sem);
        }
    }
    EXPECT_TRUE(multi_round);  // the strip is heterogeneous enough
    for (unsigned threads : {4U, 8U})
        for (std::size_t tile : {std::size_t{2}, std::size_t{5}}) {
            McOptions alt = opts;
            alt.threads = threads;
            alt.point_tile = tile;
            const std::vector<MiEstimate> out =
                iid_mutual_information_rate_points(pts, alt);
            ASSERT_EQ(out.size(), base.size());
            for (std::size_t i = 0; i < base.size(); ++i)
                expect_bit_identical(base[i], out[i]);
        }
}

TEST(ParallelMcCrnPoints, MeansMatchIndependentEstimates) {
    // Marginal-law preservation: the CRN estimate and the independent
    // estimate sample the same quantity, so they must agree within joint
    // error bars (5 sigma keeps the flake rate negligible).
    const std::vector<CapacityPoint> pts = crn_strip(6);
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 48;
    opts.threads = 4;
    const std::vector<MiEstimate> indep = iid_mutual_information_rate_points(pts, opts);
    McOptions crn = opts;
    crn.point_tile = kMcPointTileAuto;
    const std::vector<MiEstimate> tiled = iid_mutual_information_rate_points(pts, crn);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const double joint =
            std::sqrt(indep[i].sem * indep[i].sem + tiled[i].sem * tiled[i].sem);
        EXPECT_NEAR(tiled[i].rate, indep[i].rate, 5.0 * joint + 1e-12) << "point " << i;
    }
}

TEST(ParallelMcCrnPoints, CrnShrinksAdjacentDifferenceSem) {
    // The coupling's whole point: adjacent points interpret most shared
    // variates identically, so their per-block samples are positively
    // correlated and differences lose variance relative to independent
    // sampling (whose report entries are the root-sum-square fallback).
    const std::vector<CapacityPoint> pts = crn_strip(6);
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 48;
    opts.threads = 4;
    PointSweepReport indep;
    (void)iid_mutual_information_rate_points(pts, opts, &indep);
    EXPECT_EQ(indep.point_tile, 0u);
    ASSERT_EQ(indep.adjacent_diff_sem.size(), pts.size() - 1);

    McOptions crn_opts = opts;
    crn_opts.point_tile = pts.size();
    PointSweepReport crn;
    (void)iid_mutual_information_rate_points(pts, crn_opts, &crn);
    EXPECT_EQ(crn.point_tile, pts.size());
    ASSERT_EQ(crn.adjacent_diff_sem.size(), pts.size() - 1);

    double crn_sum = 0.0, indep_sum = 0.0;
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        crn_sum += crn.adjacent_diff_sem[i];
        indep_sum += indep.adjacent_diff_sem[i];
    }
    EXPECT_LT(crn_sum, indep_sum);
}

TEST(ParallelMcCrnPoints, TinyGridStaysUnpaddedAndExact) {
    // points x blocks below one vector width: the sweep rides the masked
    // tail (sub-width batches are unpadded) and must be bit-identical to a
    // one-lane evaluation of the same tape.
    const std::vector<CapacityPoint> pts = crn_strip(2);
    McOptions opts;
    opts.block_len = 24;
    opts.num_blocks = 1;
    opts.point_tile = kMcPointTileAuto;  // resolves to 2: clamped to the grid
    EXPECT_EQ(resolved_point_tile(opts, pts.size()), 2u);
    opts.threads = 1;
    const std::vector<MiEstimate> both = iid_mutual_information_rate_points(pts, opts);
    McOptions one = opts;
    one.point_tile = 1;  // one point per sweep: single-lane scalar path
    const std::vector<MiEstimate> single = iid_mutual_information_rate_points(pts, one);
    ASSERT_EQ(both.size(), single.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        expect_bit_identical(both[i], single[i]);
}

TEST(ParallelMcCrnPoints, RejectsStructurallyHeterogeneousGrids) {
    // The tape and the per-lane sweep both assume one lattice shape; mixing
    // shapes must fail loudly, not silently decouple.
    std::vector<CapacityPoint> pts = crn_strip(3);
    pts[2].params.max_drift = 32;
    McOptions opts;
    opts.block_len = 16;
    opts.num_blocks = 2;
    opts.point_tile = 2;
    EXPECT_THROW((void)iid_mutual_information_rate_points(pts, opts),
                 std::invalid_argument);
}

TEST(ParallelMcCrnPoints, SharedBudgetCapsSpendBeyondPilots) {
    const std::vector<CapacityPoint> pts = crn_strip(4);
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 6;
    opts.target_sem = 1e-9;  // unreachable: only the budget stops the run
    opts.max_blocks = 4096;
    opts.point_budget = 40;
    opts.point_tile = 2;
    const std::vector<MiEstimate> out = iid_mutual_information_rate_points(pts, opts);
    std::size_t total = 0;
    for (const MiEstimate& e : out) {
        EXPECT_GE(e.blocks, mc_round_blocks(opts));  // every tile pilots
        EXPECT_FALSE(e.converged);
        total += e.blocks;
    }
    // Pilot rounds always run; past them, grants never exceed the budget.
    EXPECT_LE(total, opts.point_budget + mc_round_blocks(opts) * pts.size());
}

}  // namespace
