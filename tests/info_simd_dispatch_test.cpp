// Runtime SIMD dispatch (util/cpu_features.hpp, info/lattice_simd.hpp) and
// the per-path bit-identity matrix: every available kernel path — forced
// via force_simd_path(), the same hook the CCAP_SIMD env override uses —
// must reproduce the scalar LatticeEngine bit for bit at band_eps = 0 and
// keep each lane's certified slack containment in banded mode.
//
// tests/CMakeLists.txt additionally registers this binary's BatchLattice*
// and SimdDispatch* suites once per ISA under CCAP_SIMD=<path>, so CI
// exercises the env-variable resolution end to end (unavailable paths
// clamp down gracefully).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ccap/info/batch_lattice.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/info/lattice_simd.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Rng;
using ccap::util::SimdPath;

using SymbolSpan = DriftHmm::SymbolSpan;

/// Restore the active path on scope exit so test order cannot leak a
/// forced path into unrelated tests.
struct PathGuard {
    SimdPath saved = ccap::util::active_simd_path();
    ~PathGuard() { ccap::util::force_simd_path(saved); }
};

std::vector<SimdPath> available_paths() {
    std::vector<SimdPath> out;
    for (SimdPath p : {SimdPath::scalar, SimdPath::neon, SimdPath::avx2, SimdPath::avx512})
        if (ccap::util::simd_path_available(p)) out.push_back(p);
    return out;
}

TEST(SimdDispatch, NamesAndWidthsRoundTrip) {
    for (SimdPath p : {SimdPath::scalar, SimdPath::neon, SimdPath::avx2, SimdPath::avx512}) {
        SimdPath parsed{};
        ASSERT_TRUE(ccap::util::parse_simd_path(ccap::util::simd_path_name(p), parsed));
        EXPECT_EQ(parsed, p);
    }
    SimdPath dummy = SimdPath::avx512;
    EXPECT_FALSE(ccap::util::parse_simd_path("sse9", dummy));
    EXPECT_EQ(dummy, SimdPath::avx512);  // untouched on failure
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::scalar), 1u);
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::neon), 2u);
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::avx2), 4u);
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::avx512), 8u);
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndBestIsOrdered) {
    EXPECT_TRUE(ccap::util::cpu_supports(SimdPath::scalar));
    EXPECT_TRUE(ccap::util::simd_path_available(SimdPath::scalar));
    const SimdPath best = ccap::util::best_simd_path();
    EXPECT_TRUE(ccap::util::simd_path_available(best));
    // Nothing above best may be available (best is the maximum).
    for (int p = static_cast<int>(best) + 1; p <= static_cast<int>(SimdPath::avx512); ++p)
        EXPECT_FALSE(ccap::util::simd_path_available(static_cast<SimdPath>(p)));
    EXPECT_FALSE(ccap::util::cpu_feature_string().empty());
}

TEST(SimdDispatch, ForceClampsDownNeverUp) {
    PathGuard guard;
    // Forcing the widest request lands on the best available path.
    EXPECT_EQ(ccap::util::force_simd_path(SimdPath::avx512), ccap::util::best_simd_path());
    // Forcing scalar always honours the request exactly.
    EXPECT_EQ(ccap::util::force_simd_path(SimdPath::scalar), SimdPath::scalar);
    EXPECT_EQ(ccap::util::active_simd_path(), SimdPath::scalar);
    // A forced path is what the kernel registry then serves.
    EXPECT_EQ(active_lane_kernels().path, SimdPath::scalar);
}

TEST(SimdDispatch, KernelTableMatchesPathMetadata) {
    for (SimdPath p : available_paths()) {
        const LaneKernels& k = lane_kernels_for(p);
        EXPECT_EQ(k.path, p);
        EXPECT_EQ(k.vector_doubles, ccap::util::simd_vector_doubles(p));
        EXPECT_STREQ(k.name, ccap::util::simd_path_name(p));
    }
    // Unavailable paths fall back to the best available at-or-below table,
    // never nullptr.
    const LaneKernels& k = lane_kernels_for(SimdPath::avx512);
    EXPECT_TRUE(ccap::util::simd_path_available(k.path));
}

// ---------------------------------------------------------------------------
// Dispatch matrix: batched entry points vs the scalar engine, per path.
// ---------------------------------------------------------------------------

struct MatrixLanes {
    std::vector<std::vector<std::uint8_t>> tx, rx;
};

MatrixLanes make_lanes(const DriftParams& params, std::size_t n, std::size_t batch,
                       std::uint64_t seed) {
    MatrixLanes lanes;
    Rng rng(seed);
    for (std::size_t b = 0; b < batch; ++b) {
        std::vector<std::uint8_t> tx(n);
        for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(params.alphabet));
        std::vector<std::uint8_t> rx = simulate_drift_channel(tx, params, rng);
        if (batch >= 3 && b == 1) rx.clear();  // dead-lane bookkeeping
        lanes.tx.push_back(std::move(tx));
        lanes.rx.push_back(std::move(rx));
    }
    return lanes;
}

std::vector<SymbolSpan> spans(const std::vector<std::vector<std::uint8_t>>& v) {
    std::vector<SymbolSpan> out;
    out.reserve(v.size());
    for (const auto& s : v) out.emplace_back(s);
    return out;
}

TEST(SimdDispatch, EveryPathBitIdenticalToScalarEngine) {
    PathGuard guard;
    const DriftParams params{0.12, 0.06, 0.03, 2, 10, 6};
    constexpr std::size_t kN = 48;
    // Batch sizes straddling every vector width, including ragged tails.
    for (const std::size_t batch : {1u, 3u, 5u, 9u, 16u}) {
        const MatrixLanes lanes = make_lanes(params, kN, batch, 7000 + batch);
        const auto tx = spans(lanes.tx);
        const auto rx = spans(lanes.rx);
        const DriftHmm hmm(params);

        // Scalar-engine reference evidences, computed once.
        std::vector<double> want(batch);
        {
            ScopedWorkspace ws;
            for (std::size_t l = 0; l < batch; ++l)
                want[l] = hmm.log2_likelihood(lanes.tx[l], lanes.rx[l], ws);
        }

        for (SimdPath p : available_paths()) {
            ASSERT_EQ(ccap::util::force_simd_path(p), p);
            ScopedWorkspace ws;
            const auto got = hmm.log2_likelihood_batch(tx, rx, ws);
            ASSERT_EQ(got.size(), batch);
            for (std::size_t l = 0; l < batch; ++l) {
                EXPECT_EQ(got[l].log2_evidence, want[l])
                    << "path=" << ccap::util::simd_path_name(p) << " batch=" << batch
                    << " lane=" << l;
                EXPECT_EQ(got[l].log2_slack, 0.0);
            }
        }
    }
}

TEST(SimdDispatch, EveryPathPerLaneParamsBitIdenticalToScalarEngine) {
    // The per-lane-parameter batch (parameter planes + *_pl kernels) on
    // every available path, against each lane's own scalar engine.
    PathGuard guard;
    constexpr std::size_t kN = 40;
    std::vector<DriftParams> ps;
    for (std::size_t b = 0; b < 9; ++b)
        ps.push_back(DriftParams{0.03 + 0.04 * static_cast<double>(b),
                                 0.01 + 0.01 * static_cast<double>(b % 3),
                                 (b % 2) ? 0.02 : 0.0, 2, 10, 6});
    MatrixLanes lanes;
    Rng rng(31337);
    for (const DriftParams& p : ps) {
        std::vector<std::uint8_t> tx(kN);
        for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(p.alphabet));
        lanes.rx.push_back(simulate_drift_channel(tx, p, rng));
        lanes.tx.push_back(std::move(tx));
    }
    const auto tx = spans(lanes.tx);
    const auto rx = spans(lanes.rx);

    std::vector<double> want(ps.size());
    {
        ScopedWorkspace ws;
        for (std::size_t l = 0; l < ps.size(); ++l)
            want[l] = DriftHmm(ps[l]).log2_likelihood(lanes.tx[l], lanes.rx[l], ws);
    }
    for (SimdPath p : available_paths()) {
        ASSERT_EQ(ccap::util::force_simd_path(p), p);
        ScopedWorkspace ws;
        const auto got = log2_likelihood_batch_per_lane(ps, tx, rx, ws);
        ASSERT_EQ(got.size(), ps.size());
        for (std::size_t l = 0; l < ps.size(); ++l) {
            EXPECT_EQ(got[l].log2_evidence, want[l])
                << "path=" << ccap::util::simd_path_name(p) << " lane=" << l;
            EXPECT_EQ(got[l].log2_slack, 0.0);
        }
    }
}

TEST(SimdDispatch, EveryPathKeepsCertifiedSlackInBandedMode) {
    PathGuard guard;
    DriftParams exact{0.10, 0.05, 0.02, 2, 12, 6};
    DriftParams banded = exact;
    banded.band_eps = 1e-6;
    constexpr std::size_t kN = 64;
    constexpr std::size_t kBatch = 9;
    const MatrixLanes lanes = make_lanes(exact, kN, kBatch, 9001);
    const auto tx = spans(lanes.tx);
    const auto rx = spans(lanes.rx);
    const DriftHmm hmm_exact(exact);
    const DriftHmm hmm_banded(banded);

    std::vector<double> exact_ev(kBatch);
    {
        ScopedWorkspace ws;
        for (std::size_t l = 0; l < kBatch; ++l)
            exact_ev[l] = hmm_exact.log2_likelihood(lanes.tx[l], lanes.rx[l], ws);
    }

    for (SimdPath p : available_paths()) {
        ASSERT_EQ(ccap::util::force_simd_path(p), p);
        ScopedWorkspace ws;
        const auto got = hmm_banded.log2_likelihood_batch(tx, rx, ws);
        for (std::size_t l = 0; l < kBatch; ++l) {
            if (!std::isfinite(exact_ev[l])) continue;  // lane dead in exact mode too
            ASSERT_TRUE(std::isfinite(got[l].log2_evidence) ||
                        got[l].log2_slack ==
                            std::numeric_limits<double>::infinity());
            if (!std::isfinite(got[l].log2_evidence)) continue;
            // banded <= exact <= banded + slack, per lane, on every path.
            EXPECT_LE(got[l].log2_evidence, exact_ev[l])
                << "path=" << ccap::util::simd_path_name(p) << " lane=" << l;
            EXPECT_GE(got[l].log2_evidence + got[l].log2_slack, exact_ev[l])
                << "path=" << ccap::util::simd_path_name(p) << " lane=" << l;
        }
    }
}

// ---------------------------------------------------------------------------
// Ragged masked tails: every kernel, every path, exact-size buffers.
// ---------------------------------------------------------------------------

// Exercises every LaneKernels entry on lane counts that are NOT multiples of
// any vector width, with buffers allocated to exactly the touched size — a
// tail that read or wrote one lane past L would trip ASan/UBSan in the
// sanitizer tier-1 stages and, for stores, corrupt the guard value checked
// below. Results must be bitwise those of the scalar reference kernels.
TEST(SimdDispatch, RaggedTailKernelsBitIdenticalToScalar) {
    const LaneKernels& ref = *lane_kernels_scalar();
    Rng rng(424242);
    constexpr std::size_t kRuns = 3;
    auto fill = [&rng](std::size_t n) {
        std::vector<double> v(n);
        for (auto& x : v) x = 0.25 + rng.uniform();  // positive: safe divisor
        return v;
    };
    for (SimdPath p : available_paths()) {
        const LaneKernels& k = lane_kernels_for(p);
        for (const std::size_t L : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 11u, 13u}) {
            SCOPED_TRACE(std::string("path=") + k.name + " L=" + std::to_string(L));
            const std::vector<double> src = fill(kRuns * L);
            const std::vector<double> e = fill(kRuns * L);
            const std::vector<double> norm = fill(L);
            std::vector<std::uint8_t> sel(L);
            for (auto& s : sel) s = rng.bernoulli(0.5) ? 1 : 0;
            std::vector<double> dw = fill(kRuns), tw = fill(kRuns);

            auto a = fill(kRuns * L);
            auto b = a;
            k.axpy(a.data(), src.data(), 1.75, L);
            ref.axpy(b.data(), src.data(), 1.75, L);
            EXPECT_EQ(a, b);

            k.fma_weighted(a.data(), src.data(), dw[0], tw[0], e.data(), L);
            ref.fma_weighted(b.data(), src.data(), dw[0], tw[0], e.data(), L);
            EXPECT_EQ(a, b);

            k.accumulate(a.data(), src.data(), L);
            ref.accumulate(b.data(), src.data(), L);
            EXPECT_EQ(a, b);

            k.maximum(a.data(), src.data(), L);
            ref.maximum(b.data(), src.data(), L);
            EXPECT_EQ(a, b);

            k.divide(a.data(), norm.data(), L);
            ref.divide(b.data(), norm.data(), L);
            EXPECT_EQ(a, b);

            k.select_const(a.data(), sel.data(), 0.125, 0.875, L);
            ref.select_const(b.data(), sel.data(), 0.125, 0.875, L);
            EXPECT_EQ(a, b);

            k.select_lanes(a.data(), sel.data(), e.data(), src.data(), L);
            ref.select_lanes(b.data(), sel.data(), e.data(), src.data(), L);
            EXPECT_EQ(a, b);

            k.fma_run(a.data(), src.data(), dw.data(), tw.data(), e.data(), kRuns, L);
            ref.fma_run(b.data(), src.data(), dw.data(), tw.data(), e.data(), kRuns, L);
            EXPECT_EQ(a, b);

            k.fma_acc_run(a.data(), src.data(), dw.data(), tw.data(), e.data(), kRuns, L);
            ref.fma_acc_run(b.data(), src.data(), dw.data(), tw.data(), e.data(), kRuns, L);
            EXPECT_EQ(a, b);

            // fma_dest_run walks the weight arrays backward from the given
            // origin: pass the last element so indices [-cnt+1, 0] stay in
            // bounds. Cover cnt = 0 (pure-deletion only) through kRuns, with
            // and without the src_del term.
            for (std::size_t cnt : {std::size_t{0}, std::size_t{1}, kRuns}) {
                for (const double* del : {static_cast<const double*>(nullptr), norm.data()}) {
                    if (cnt == 0 && !del) continue;  // all-zero output either way
                    std::vector<double> da(L), db(L);
                    k.fma_dest_run(da.data(), src.data(), dw.data() + (kRuns - 1),
                                   tw.data() + (kRuns - 1), e.data(), del, 0.375, cnt, L);
                    ref.fma_dest_run(db.data(), src.data(), dw.data() + (kRuns - 1),
                                     tw.data() + (kRuns - 1), e.data(), del, 0.375, cnt, L);
                    EXPECT_EQ(da, db) << "cnt=" << cnt << " del=" << (del != nullptr);
                }
            }

            // Per-lane-weight variants (the parameter-plane engine mode):
            // dw/tw are [run][lane] planes instead of per-run scalars.
            const std::vector<double> dwp = fill(kRuns * L), twp = fill(kRuns * L);

            k.axpy_lanes(a.data(), src.data(), norm.data(), L);
            ref.axpy_lanes(b.data(), src.data(), norm.data(), L);
            EXPECT_EQ(a, b);

            k.fma_acc_run_pl(a.data(), src.data(), dwp.data(), twp.data(), e.data(),
                             kRuns, L);
            ref.fma_acc_run_pl(b.data(), src.data(), dwp.data(), twp.data(), e.data(),
                               kRuns, L);
            EXPECT_EQ(a, b);

            // fma_dest_run_pl walks the weight planes backward by whole
            // planes from the given origin: pass the last plane so offsets
            // [-(cnt-1)*L, 0] stay in bounds.
            for (std::size_t cnt : {std::size_t{0}, std::size_t{1}, kRuns}) {
                for (const double* del : {static_cast<const double*>(nullptr), norm.data()}) {
                    if (cnt == 0 && !del) continue;  // all-zero output either way
                    std::vector<double> da(L), db(L);
                    k.fma_dest_run_pl(da.data(), src.data(),
                                      dwp.data() + (kRuns - 1) * L,
                                      twp.data() + (kRuns - 1) * L, e.data(), del,
                                      twp.data(), cnt, L);
                    ref.fma_dest_run_pl(db.data(), src.data(),
                                        dwp.data() + (kRuns - 1) * L,
                                        twp.data() + (kRuns - 1) * L, e.data(), del,
                                        twp.data(), cnt, L);
                    EXPECT_EQ(da, db) << "pl cnt=" << cnt << " del=" << (del != nullptr);
                }
            }
        }
    }
}

// Sub-width batches must run unpadded (lane_stride == lanes): the masked
// tails make the dead padding lanes unnecessary, and the engine output must
// still match the scalar engine bit for bit.
TEST(SimdDispatch, TinyBatchesRunUnpaddedAndBitIdentical) {
    PathGuard guard;
    const DriftParams params{0.10, 0.05, 0.02, 2, 8, 5};
    const DriftHmm hmm(params);
    constexpr std::size_t kN = 40;
    for (SimdPath p : available_paths()) {
        ASSERT_EQ(ccap::util::force_simd_path(p), p);
        const std::size_t W = ccap::util::simd_vector_doubles(p);
        for (std::size_t batch = 2; batch < W; ++batch) {
            const MatrixLanes lanes = make_lanes(params, kN, batch, 5100 + batch);
            const auto rx = spans(lanes.rx);
            ScopedWorkspace ws;
            BatchLatticeEngine eng(params, hmm.tables(), rx, kN, ws.get());
            // The whole point of the masked tails: no dead padding lanes.
            EXPECT_EQ(eng.lane_stride(), batch)
                << "path=" << ccap::util::simd_path_name(p);
            const auto got = hmm.log2_likelihood_batch(spans(lanes.tx), rx, ws);
            for (std::size_t l = 0; l < batch; ++l) {
                ScopedWorkspace ref_ws;
                EXPECT_EQ(got[l].log2_evidence,
                          hmm.log2_likelihood(lanes.tx[l], lanes.rx[l], ref_ws))
                    << "path=" << ccap::util::simd_path_name(p) << " batch=" << batch
                    << " lane=" << l;
            }
        }
    }
}

TEST(SimdDispatch, ResolvedMcBatchRespectsTilingPolicyAndVectorWidth) {
    PathGuard guard;
    const DriftParams params{0.05, 0.03, 0.01, 2, 16, 8};
    McOptions opts;
    opts.num_blocks = 64;

    opts.tiling = McTiling::scalar;
    EXPECT_EQ(resolved_mc_batch(opts, params), 1u);
    opts.batch = 12;
    EXPECT_EQ(resolved_mc_batch(opts, params), 1u);  // policy wins over batch

    opts.tiling = McTiling::lanes_by_threads;
    EXPECT_EQ(resolved_mc_batch(opts, params), 12u);  // explicit batch honoured
    opts.batch = 0;
    for (SimdPath p : available_paths()) {
        ASSERT_EQ(ccap::util::force_simd_path(p), p);
        const std::size_t b = resolved_mc_batch(opts, params);
        const std::size_t W = ccap::util::simd_vector_doubles(p);
        EXPECT_GE(b, 1u);
        EXPECT_EQ(b % W, 0u) << "auto tile not a multiple of the vector width, path="
                             << ccap::util::simd_path_name(p);
        EXPECT_LE(b, opts.num_blocks);
    }
}

}  // namespace
