// Runtime SIMD dispatch (util/cpu_features.hpp, info/lattice_simd.hpp) and
// the per-path bit-identity matrix: every available kernel path — forced
// via force_simd_path(), the same hook the CCAP_SIMD env override uses —
// must reproduce the scalar LatticeEngine bit for bit at band_eps = 0 and
// keep each lane's certified slack containment in banded mode.
//
// tests/CMakeLists.txt additionally registers this binary's BatchLattice*
// and SimdDispatch* suites once per ISA under CCAP_SIMD=<path>, so CI
// exercises the env-variable resolution end to end (unavailable paths
// clamp down gracefully).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ccap/info/batch_lattice.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/info/lattice_simd.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Rng;
using ccap::util::SimdPath;

using SymbolSpan = DriftHmm::SymbolSpan;

/// Restore the active path on scope exit so test order cannot leak a
/// forced path into unrelated tests.
struct PathGuard {
    SimdPath saved = ccap::util::active_simd_path();
    ~PathGuard() { ccap::util::force_simd_path(saved); }
};

std::vector<SimdPath> available_paths() {
    std::vector<SimdPath> out;
    for (SimdPath p : {SimdPath::scalar, SimdPath::neon, SimdPath::avx2, SimdPath::avx512})
        if (ccap::util::simd_path_available(p)) out.push_back(p);
    return out;
}

TEST(SimdDispatch, NamesAndWidthsRoundTrip) {
    for (SimdPath p : {SimdPath::scalar, SimdPath::neon, SimdPath::avx2, SimdPath::avx512}) {
        SimdPath parsed{};
        ASSERT_TRUE(ccap::util::parse_simd_path(ccap::util::simd_path_name(p), parsed));
        EXPECT_EQ(parsed, p);
    }
    SimdPath dummy = SimdPath::avx512;
    EXPECT_FALSE(ccap::util::parse_simd_path("sse9", dummy));
    EXPECT_EQ(dummy, SimdPath::avx512);  // untouched on failure
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::scalar), 1u);
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::neon), 2u);
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::avx2), 4u);
    EXPECT_EQ(ccap::util::simd_vector_doubles(SimdPath::avx512), 8u);
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndBestIsOrdered) {
    EXPECT_TRUE(ccap::util::cpu_supports(SimdPath::scalar));
    EXPECT_TRUE(ccap::util::simd_path_available(SimdPath::scalar));
    const SimdPath best = ccap::util::best_simd_path();
    EXPECT_TRUE(ccap::util::simd_path_available(best));
    // Nothing above best may be available (best is the maximum).
    for (int p = static_cast<int>(best) + 1; p <= static_cast<int>(SimdPath::avx512); ++p)
        EXPECT_FALSE(ccap::util::simd_path_available(static_cast<SimdPath>(p)));
    EXPECT_FALSE(ccap::util::cpu_feature_string().empty());
}

TEST(SimdDispatch, ForceClampsDownNeverUp) {
    PathGuard guard;
    // Forcing the widest request lands on the best available path.
    EXPECT_EQ(ccap::util::force_simd_path(SimdPath::avx512), ccap::util::best_simd_path());
    // Forcing scalar always honours the request exactly.
    EXPECT_EQ(ccap::util::force_simd_path(SimdPath::scalar), SimdPath::scalar);
    EXPECT_EQ(ccap::util::active_simd_path(), SimdPath::scalar);
    // A forced path is what the kernel registry then serves.
    EXPECT_EQ(active_lane_kernels().path, SimdPath::scalar);
}

TEST(SimdDispatch, KernelTableMatchesPathMetadata) {
    for (SimdPath p : available_paths()) {
        const LaneKernels& k = lane_kernels_for(p);
        EXPECT_EQ(k.path, p);
        EXPECT_EQ(k.vector_doubles, ccap::util::simd_vector_doubles(p));
        EXPECT_STREQ(k.name, ccap::util::simd_path_name(p));
    }
    // Unavailable paths fall back to the best available at-or-below table,
    // never nullptr.
    const LaneKernels& k = lane_kernels_for(SimdPath::avx512);
    EXPECT_TRUE(ccap::util::simd_path_available(k.path));
}

// ---------------------------------------------------------------------------
// Dispatch matrix: batched entry points vs the scalar engine, per path.
// ---------------------------------------------------------------------------

struct MatrixLanes {
    std::vector<std::vector<std::uint8_t>> tx, rx;
};

MatrixLanes make_lanes(const DriftParams& params, std::size_t n, std::size_t batch,
                       std::uint64_t seed) {
    MatrixLanes lanes;
    Rng rng(seed);
    for (std::size_t b = 0; b < batch; ++b) {
        std::vector<std::uint8_t> tx(n);
        for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(params.alphabet));
        std::vector<std::uint8_t> rx = simulate_drift_channel(tx, params, rng);
        if (batch >= 3 && b == 1) rx.clear();  // dead-lane bookkeeping
        lanes.tx.push_back(std::move(tx));
        lanes.rx.push_back(std::move(rx));
    }
    return lanes;
}

std::vector<SymbolSpan> spans(const std::vector<std::vector<std::uint8_t>>& v) {
    std::vector<SymbolSpan> out;
    out.reserve(v.size());
    for (const auto& s : v) out.emplace_back(s);
    return out;
}

TEST(SimdDispatch, EveryPathBitIdenticalToScalarEngine) {
    PathGuard guard;
    const DriftParams params{0.12, 0.06, 0.03, 2, 10, 6};
    constexpr std::size_t kN = 48;
    // Batch sizes straddling every vector width, including ragged tails.
    for (const std::size_t batch : {1u, 3u, 5u, 9u, 16u}) {
        const MatrixLanes lanes = make_lanes(params, kN, batch, 7000 + batch);
        const auto tx = spans(lanes.tx);
        const auto rx = spans(lanes.rx);
        const DriftHmm hmm(params);

        // Scalar-engine reference evidences, computed once.
        std::vector<double> want(batch);
        {
            ScopedWorkspace ws;
            for (std::size_t l = 0; l < batch; ++l)
                want[l] = hmm.log2_likelihood(lanes.tx[l], lanes.rx[l], ws);
        }

        for (SimdPath p : available_paths()) {
            ASSERT_EQ(ccap::util::force_simd_path(p), p);
            ScopedWorkspace ws;
            const auto got = hmm.log2_likelihood_batch(tx, rx, ws);
            ASSERT_EQ(got.size(), batch);
            for (std::size_t l = 0; l < batch; ++l) {
                EXPECT_EQ(got[l].log2_evidence, want[l])
                    << "path=" << ccap::util::simd_path_name(p) << " batch=" << batch
                    << " lane=" << l;
                EXPECT_EQ(got[l].log2_slack, 0.0);
            }
        }
    }
}

TEST(SimdDispatch, EveryPathKeepsCertifiedSlackInBandedMode) {
    PathGuard guard;
    DriftParams exact{0.10, 0.05, 0.02, 2, 12, 6};
    DriftParams banded = exact;
    banded.band_eps = 1e-6;
    constexpr std::size_t kN = 64;
    constexpr std::size_t kBatch = 9;
    const MatrixLanes lanes = make_lanes(exact, kN, kBatch, 9001);
    const auto tx = spans(lanes.tx);
    const auto rx = spans(lanes.rx);
    const DriftHmm hmm_exact(exact);
    const DriftHmm hmm_banded(banded);

    std::vector<double> exact_ev(kBatch);
    {
        ScopedWorkspace ws;
        for (std::size_t l = 0; l < kBatch; ++l)
            exact_ev[l] = hmm_exact.log2_likelihood(lanes.tx[l], lanes.rx[l], ws);
    }

    for (SimdPath p : available_paths()) {
        ASSERT_EQ(ccap::util::force_simd_path(p), p);
        ScopedWorkspace ws;
        const auto got = hmm_banded.log2_likelihood_batch(tx, rx, ws);
        for (std::size_t l = 0; l < kBatch; ++l) {
            if (!std::isfinite(exact_ev[l])) continue;  // lane dead in exact mode too
            ASSERT_TRUE(std::isfinite(got[l].log2_evidence) ||
                        got[l].log2_slack ==
                            std::numeric_limits<double>::infinity());
            if (!std::isfinite(got[l].log2_evidence)) continue;
            // banded <= exact <= banded + slack, per lane, on every path.
            EXPECT_LE(got[l].log2_evidence, exact_ev[l])
                << "path=" << ccap::util::simd_path_name(p) << " lane=" << l;
            EXPECT_GE(got[l].log2_evidence + got[l].log2_slack, exact_ev[l])
                << "path=" << ccap::util::simd_path_name(p) << " lane=" << l;
        }
    }
}

TEST(SimdDispatch, ResolvedMcBatchRespectsTilingPolicyAndVectorWidth) {
    PathGuard guard;
    const DriftParams params{0.05, 0.03, 0.01, 2, 16, 8};
    McOptions opts;
    opts.num_blocks = 64;

    opts.tiling = McTiling::scalar;
    EXPECT_EQ(resolved_mc_batch(opts, params), 1u);
    opts.batch = 12;
    EXPECT_EQ(resolved_mc_batch(opts, params), 1u);  // policy wins over batch

    opts.tiling = McTiling::lanes_by_threads;
    EXPECT_EQ(resolved_mc_batch(opts, params), 12u);  // explicit batch honoured
    opts.batch = 0;
    for (SimdPath p : available_paths()) {
        ASSERT_EQ(ccap::util::force_simd_path(p), p);
        const std::size_t b = resolved_mc_batch(opts, params);
        const std::size_t W = ccap::util::simd_vector_doubles(p);
        EXPECT_GE(b, 1u);
        EXPECT_EQ(b % W, 0u) << "auto tile not a multiple of the vector width, path="
                             << ccap::util::simd_path_name(p);
        EXPECT_LE(b, opts.num_blocks);
    }
}

}  // namespace
