#include "ccap/sched/covert_pair.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::sched;

CovertPairConfig naive_config(std::size_t len = 500) {
    CovertPairConfig c;
    c.mode = PairMode::naive;
    c.message_len = len;
    return c;
}

CovertPairConfig handshake_config(std::size_t len = 500) {
    CovertPairConfig c;
    c.mode = PairMode::handshake;
    c.message_len = len;
    return c;
}

TEST(CovertPair, ConfigValidation) {
    CovertPairConfig c = naive_config();
    c.bits_per_symbol = 0;
    EXPECT_THROW((void)run_covert_pair(make_round_robin(), c, 1), std::invalid_argument);
    c = naive_config();
    c.op_success_prob = 0.0;
    EXPECT_THROW((void)run_covert_pair(make_round_robin(), c, 1), std::invalid_argument);
}

TEST(CovertPair, RoundRobinNaiveIsLossless) {
    // Perfect alternation: every written symbol is read exactly once
    // (after the first sender quantum), so received tracks sent.
    const auto res = run_covert_pair(make_round_robin(), naive_config(300), 1);
    EXPECT_EQ(res.sent.size(), 300U);
    // Round-robin: sender first, receiver immediately after -> no deletions,
    // insertions only possible at the margins.
    ASSERT_GE(res.received.size(), res.sent.size() - 1);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < std::min(res.sent.size(), res.received.size()); ++i)
        mismatches += res.sent[i] != res.received[i];
    EXPECT_LE(mismatches, 2U);
}

TEST(CovertPair, RandomSchedulerCreatesDeletionsAndInsertions) {
    const auto res = run_covert_pair(make_random(), naive_config(2000), 2);
    EXPECT_EQ(res.sent.size(), 2000U);
    // With a memoryless fair scheduler, runs of sender quanta (deletions)
    // and receiver quanta (insertions) are abundant; the received stream
    // can't equal the sent stream.
    EXPECT_NE(res.received, res.sent);
    EXPECT_GT(res.total_quanta, 0U);
}

TEST(CovertPair, HandshakeIsReliableUnderAnyScheduler) {
    for (int seed = 1; seed <= 3; ++seed) {
        const auto rr = run_covert_pair(make_round_robin(), handshake_config(200), seed);
        EXPECT_TRUE(rr.reliable) << "round_robin seed " << seed;
        const auto rnd = run_covert_pair(make_random(), handshake_config(200), seed);
        EXPECT_TRUE(rnd.reliable) << "random seed " << seed;
        const auto lot = run_covert_pair(make_lottery(), handshake_config(200), seed);
        EXPECT_TRUE(lot.reliable) << "lottery seed " << seed;
    }
}

TEST(CovertPair, HandshakeWastesQuantaWaiting) {
    const auto res = run_covert_pair(make_random(), handshake_config(1000), 4);
    EXPECT_TRUE(res.reliable);
    EXPECT_GT(res.sender_waits + res.receiver_waits, 0U);
    // Throughput must be below the 0.5 symbols/quantum ideal of round-robin.
    EXPECT_LT(res.symbols_per_quantum(), 0.5);
}

TEST(CovertPair, HandshakeRoundRobinApproachesHalfSymbolPerQuantum) {
    const auto res = run_covert_pair(make_round_robin(), handshake_config(2000), 5);
    EXPECT_TRUE(res.reliable);
    EXPECT_NEAR(res.symbols_per_quantum(), 0.5, 0.02);
}

TEST(CovertPair, RandomHandshakeThroughputMatchesTheory) {
    // Bernoulli(1/2) scheduling: expected q(1-q) = 0.25 symbols/quantum.
    const auto res = run_covert_pair(make_random(), handshake_config(4000), 6);
    EXPECT_TRUE(res.reliable);
    EXPECT_NEAR(res.symbols_per_quantum(), 0.25, 0.02);
}

TEST(CovertPair, MultiBitSymbols) {
    CovertPairConfig c = handshake_config(300);
    c.bits_per_symbol = 4;
    const auto res = run_covert_pair(make_round_robin(), c, 7);
    EXPECT_TRUE(res.reliable);
    for (std::uint32_t s : res.received) EXPECT_LT(s, 16U);
}

TEST(CovertPair, BackgroundProcessesSlowTheChannel) {
    CovertPairConfig with_bg = handshake_config(500);
    with_bg.background_processes = 2;
    const auto noisy = run_covert_pair(make_random(), with_bg, 8);
    const auto quiet = run_covert_pair(make_random(), handshake_config(500), 8);
    EXPECT_TRUE(noisy.reliable);
    EXPECT_LT(noisy.symbols_per_quantum(), quiet.symbols_per_quantum());
}

TEST(CovertPair, OpFailureSlowsNaiveSender) {
    CovertPairConfig flaky = naive_config(500);
    flaky.op_success_prob = 0.5;
    const auto res = run_covert_pair(make_round_robin(), flaky, 9);
    EXPECT_EQ(res.sent.size(), 500U);
    // Sender needed about twice the quanta to push the message out.
    EXPECT_GT(res.sender_quanta, 800U);
}

TEST(CovertPair, DeterministicForSeed) {
    const auto a = run_covert_pair(make_random(), naive_config(400), 42);
    const auto b = run_covert_pair(make_random(), naive_config(400), 42);
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.total_quanta, b.total_quanta);
}

}  // namespace
