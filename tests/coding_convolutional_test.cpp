#include "ccap/coding/convolutional.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::coding;

ConvolutionalCode k3_rate_half() { return ConvolutionalCode({0b111, 0b101}, 3); }

TEST(Convolutional, ConstructionValidation) {
    EXPECT_THROW(ConvolutionalCode({}, 3), std::invalid_argument);
    EXPECT_THROW(ConvolutionalCode({0b111}, 1), std::invalid_argument);
    EXPECT_THROW(ConvolutionalCode({0b1111}, 3), std::invalid_argument);  // too wide
    EXPECT_THROW(ConvolutionalCode({0}, 3), std::invalid_argument);
    EXPECT_NO_THROW(k3_rate_half());
}

TEST(Convolutional, Dimensions) {
    const auto code = k3_rate_half();
    EXPECT_EQ(code.constraint_length(), 3U);
    EXPECT_EQ(code.rate_denominator(), 2U);
    EXPECT_EQ(code.num_states(), 4U);
}

TEST(Convolutional, EncodeLength) {
    const auto code = k3_rate_half();
    const Bits info = bits_from_string("1011");
    const Bits out = code.encode(info);
    EXPECT_EQ(out.size(), (info.size() + 2) * 2);
}

TEST(Convolutional, KnownCodewordK3) {
    // Classic (7,5) code, input 1 0 1 1 + termination 0 0:
    // step-by-step outputs: 11 10 00 01 01 11.
    const auto code = k3_rate_half();
    const Bits out = code.encode(bits_from_string("1011"));
    EXPECT_EQ(to_string(out), "111000010111");
}

TEST(Convolutional, AllZeroInputGivesAllZero) {
    const auto code = k3_rate_half();
    const Bits out = code.encode(Bits(10, 0));
    for (std::uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(Convolutional, Linearity) {
    // Feed-forward convolutional codes are linear: enc(a^b) = enc(a)^enc(b).
    const auto code = k3_rate_half();
    const Bits a = random_bits(20, 1);
    const Bits b = random_bits(20, 2);
    const Bits ab = xor_bits(a, b);
    EXPECT_EQ(code.encode(ab), xor_bits(code.encode(a), code.encode(b)));
}

TEST(Convolutional, StepTransitions) {
    const auto code = k3_rate_half();
    // From state 0 with input 1: window 001, outputs g1=111 -> 1, g2=101 -> 1.
    const auto s = code.step(0, 1);
    EXPECT_EQ(s.output, 0b11U);
    EXPECT_EQ(s.next_state, 1U);
    // From state 1 (last bit 1) input 0: window 010, g1 -> 1, g2 -> 0.
    const auto s2 = code.step(1, 0);
    EXPECT_EQ(s2.output, 0b10U);
    EXPECT_EQ(s2.next_state, 2U);
}

TEST(Convolutional, TerminationReturnsToZeroState) {
    const auto code = k3_rate_half();
    const Bits info = random_bits(50, 3);
    const Bits coded = code.encode(info);
    // Re-run the trellis: final state must be zero.
    std::uint32_t state = 0;
    for (std::size_t t = 0; t < coded.size() / 2; ++t) {
        // Find which input bit matches the emitted pair.
        bool matched = false;
        const unsigned max_bit = t < info.size() ? 1 : 0;
        for (std::uint8_t bit = 0; bit <= max_bit; ++bit) {
            const auto s = code.step(state, bit);
            if (((s.output >> 1) & 1U) == coded[2 * t] && (s.output & 1U) == coded[2 * t + 1]) {
                state = s.next_state;
                matched = true;
                break;
            }
        }
        ASSERT_TRUE(matched);
    }
    EXPECT_EQ(state, 0U);
}

TEST(Convolutional, RateThirdCode) {
    const ConvolutionalCode code({0b111, 0b111, 0b101}, 3);
    EXPECT_EQ(code.rate_denominator(), 3U);
    const Bits out = code.encode(bits_from_string("1"));
    EXPECT_EQ(out.size(), 9U);
}

TEST(Convolutional, RejectsNonBitInput) {
    const auto code = k3_rate_half();
    const Bits bad = {0, 2};
    EXPECT_THROW((void)code.encode(bad), std::domain_error);
}

}  // namespace
