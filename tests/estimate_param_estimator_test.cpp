#include "ccap/estimate/param_estimator.hpp"

#include <gtest/gtest.h>

#include "ccap/core/deletion_insertion_channel.hpp"

namespace {

using namespace ccap::estimate;
using ccap::core::DeletionInsertionChannel;
using ccap::core::DiChannelParams;
using Trace = std::vector<std::uint32_t>;

Trace random_trace(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    Trace t(n);
    for (auto& s : t) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return t;
}

TEST(ParamEstimator, CleanTraceGivesZeroRates) {
    const Trace t = random_trace(3000, 2, 1);
    const ParamEstimate est = estimate_params(t, t);
    EXPECT_DOUBLE_EQ(est.p_d.value, 0.0);
    EXPECT_DOUBLE_EQ(est.p_i.value, 0.0);
    EXPECT_DOUBLE_EQ(est.p_s.value, 0.0);
    EXPECT_EQ(est.channel_uses, t.size());
}

TEST(ParamEstimator, EmptyTraces) {
    const ParamEstimate est = estimate_params({}, {});
    EXPECT_DOUBLE_EQ(est.p_d.value, 0.0);
    EXPECT_EQ(est.channel_uses, 0U);
}

TEST(ParamEstimator, AllDeleted) {
    const Trace sent = random_trace(500, 1, 2);
    const ParamEstimate est = estimate_params(sent, {});
    EXPECT_DOUBLE_EQ(est.p_d.value, 1.0);
}

TEST(ParamEstimator, PureTrailingInsertions) {
    const Trace received = random_trace(100, 1, 3);
    const ParamEstimate est = estimate_params({}, received);
    EXPECT_DOUBLE_EQ(est.p_i.value, 1.0);
}

class EstimatorRecovery
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EstimatorRecovery, MleRecoversChannelParameters) {
    const auto [pd, pi, ps] = GetParam();
    const DiChannelParams truth{pd, pi, ps, 3};
    DeletionInsertionChannel ch(truth, 42);
    const Trace sent = random_trace(6000, 3, 4);
    const auto transduction = ch.transduce(sent);
    const ParamEstimate est = estimate_params_mle(sent, transduction.output, 3);
    EXPECT_NEAR(est.p_d.value, pd, 0.025) << "pd";
    EXPECT_NEAR(est.p_i.value, pi, 0.025) << "pi";
    EXPECT_NEAR(est.p_s.value, ps, 0.025) << "ps";
}

INSTANTIATE_TEST_SUITE_P(Grid, EstimatorRecovery,
                         ::testing::Values(std::tuple{0.0, 0.0, 0.0},
                                           std::tuple{0.1, 0.0, 0.0},
                                           std::tuple{0.0, 0.1, 0.0},
                                           std::tuple{0.0, 0.0, 0.1},
                                           std::tuple{0.1, 0.05, 0.02},
                                           std::tuple{0.2, 0.1, 0.0},
                                           std::tuple{0.05, 0.2, 0.05}));

TEST(ParamEstimator, AlignmentEstimatorBiasIsBoundedAndDirectional) {
    // Documented limitation: minimum-edit alignment merges nearby
    // deletion+insertion pairs into substitutions, so it *under*-estimates
    // P_d/P_i and *over*-estimates P_s when both indel types are present.
    const DiChannelParams truth{0.15, 0.1, 0.0, 3};
    DeletionInsertionChannel ch(truth, 50);
    const Trace sent = random_trace(20000, 3, 51);
    const auto t = ch.transduce(sent);
    const ParamEstimate est = estimate_params(sent, t.output);
    EXPECT_LE(est.p_d.value, truth.p_d + 0.01);  // biased downward
    EXPECT_LE(est.p_i.value, truth.p_i + 0.01);
    EXPECT_GE(est.p_s.value, truth.p_s);  // spillover into substitutions
    // Still in the right ballpark (within ~half the true rate).
    EXPECT_GT(est.p_d.value, truth.p_d * 0.5);
    EXPECT_GT(est.p_i.value, truth.p_i * 0.25);
}

TEST(ParamEstimator, MleValidation) {
    const Trace t = random_trace(100, 2, 52);
    EXPECT_THROW((void)estimate_params_mle(t, t, 0), std::invalid_argument);
    EXPECT_THROW((void)estimate_params_mle(t, t, 9), std::invalid_argument);
    const Trace bad = {1, 4};  // 4 out of 2-bit alphabet
    EXPECT_THROW((void)estimate_params_mle(bad, t, 1), std::out_of_range);
}

TEST(ParamEstimator, MleCleanTraceIsNearZero) {
    const Trace t = random_trace(2000, 2, 53);
    const ParamEstimate est = estimate_params_mle(t, t, 2);
    EXPECT_LT(est.p_d.value, 0.01);
    EXPECT_LT(est.p_i.value, 0.01);
    EXPECT_LT(est.p_s.value, 0.01);
}

TEST(ParamEstimator, BootstrapCiCoversPointEstimate) {
    const DiChannelParams truth{0.15, 0.1, 0.0, 2};
    DeletionInsertionChannel ch(truth, 7);
    const Trace sent = random_trace(8000, 2, 5);
    const auto t = ch.transduce(sent);
    const ParamEstimate est = estimate_params(sent, t.output);
    EXPECT_LE(est.p_d.ci_low, est.p_d.value);
    EXPECT_GE(est.p_d.ci_high, est.p_d.value);
    EXPECT_LT(est.p_d.ci_high - est.p_d.ci_low, 0.1);  // reasonably tight
    EXPECT_LE(est.p_i.ci_low, est.p_i.value);
    EXPECT_GE(est.p_i.ci_high, est.p_i.value);
}

TEST(ParamEstimator, ParamsConversion) {
    ParamEstimate est;
    est.p_d.value = 0.1;
    est.p_i.value = 0.05;
    est.p_s.value = 0.01;
    const auto p = est.params(4);
    EXPECT_DOUBLE_EQ(p.p_d, 0.1);
    EXPECT_EQ(p.bits_per_symbol, 4U);
    EXPECT_NO_THROW(p.validate());
}

TEST(ParamEstimator, ZeroBlockLenThrows) {
    EstimatorOptions opt;
    opt.block_len = 0;
    const Trace t = random_trace(10, 1, 6);
    EXPECT_THROW((void)estimate_params(t, t, opt), std::invalid_argument);
}

TEST(ParamEstimator, RatesFromSingleAlignment) {
    const Trace sent = {1, 2, 3, 4};
    const Trace received = {1, 9, 3};  // one substitution, one deletion
    const ParamEstimate est = rates_from_alignment(align(sent, received));
    EXPECT_DOUBLE_EQ(est.p_d.value, 0.25);  // 1 deletion / 4 uses
    EXPECT_DOUBLE_EQ(est.p_i.value, 0.0);
    EXPECT_NEAR(est.p_s.value, 1.0 / 3.0, 1e-12);
}

TEST(ParamEstimator, DeterministicBootstrap) {
    const DiChannelParams truth{0.1, 0.1, 0.0, 2};
    DeletionInsertionChannel ch(truth, 9);
    const Trace sent = random_trace(4000, 2, 8);
    const auto t = ch.transduce(sent);
    const ParamEstimate a = estimate_params(sent, t.output);
    const ParamEstimate b = estimate_params(sent, t.output);
    EXPECT_DOUBLE_EQ(a.p_d.ci_low, b.p_d.ci_low);
    EXPECT_DOUBLE_EQ(a.p_i.ci_high, b.p_i.ci_high);
}

}  // namespace
