#include "ccap/info/deletion_bounds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ccap/info/entropy.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Rng;
using Bits = std::vector<std::uint8_t>;

TEST(ErasureUpperBound, Values) {
    EXPECT_DOUBLE_EQ(erasure_upper_bound(0.0), 1.0);
    EXPECT_DOUBLE_EQ(erasure_upper_bound(0.25), 0.75);
    EXPECT_DOUBLE_EQ(erasure_upper_bound(0.25, 4), 3.0);
    EXPECT_THROW((void)erasure_upper_bound(1.5), std::domain_error);
    EXPECT_THROW((void)erasure_upper_bound(0.5, 0), std::invalid_argument);
}

TEST(GallagerBound, Values) {
    EXPECT_DOUBLE_EQ(gallager_deletion_lower_bound(0.0), 1.0);
    EXPECT_DOUBLE_EQ(gallager_deletion_lower_bound(0.5), 0.0);
    EXPECT_NEAR(gallager_deletion_lower_bound(0.1), 1.0 - binary_entropy(0.1), 1e-12);
}

TEST(GallagerBound, BelowErasureBound) {
    for (double p = 0.0; p <= 1.0; p += 0.05)
        EXPECT_LE(gallager_deletion_lower_bound(p), erasure_upper_bound(p) + 1e-12);
}

TEST(SmallPExpansion, Endpoints) {
    EXPECT_DOUBLE_EQ(small_p_deletion_expansion(0.0), 1.0);
    // Monotone decreasing in the small-p regime.
    EXPECT_GT(small_p_deletion_expansion(0.01), small_p_deletion_expansion(0.05));
    EXPECT_GE(small_p_deletion_expansion(0.9), 0.0);  // clamped
}

TEST(SmallPExpansion, TighterThanGallagerForSmallP) {
    // For small p the true capacity ~ 1 + p log p >> 1 - H(p); the expansion
    // should sit above the Gallager iid bound.
    for (double p : {0.001, 0.005, 0.01, 0.02}) {
        EXPECT_GT(small_p_deletion_expansion(p), gallager_deletion_lower_bound(p));
        EXPECT_LT(small_p_deletion_expansion(p), erasure_upper_bound(p));
    }
}

TEST(SimulateDriftChannel, CleanChannelIsIdentity) {
    Rng rng(1);
    DriftParams p{0.0, 0.0, 0.0, 2, 16, 8};
    const Bits tx = {0, 1, 1, 0, 1, 0};
    EXPECT_EQ(simulate_drift_channel(tx, p, rng), tx);
}

TEST(SimulateDriftChannel, DeletionOnlyYieldsSubsequence) {
    Rng rng(2);
    DriftParams p{0.3, 0.0, 0.0, 2, 16, 8};
    const Bits tx = {0, 1, 0, 1, 0, 1, 0, 1, 1, 1};
    const Bits rx = simulate_drift_channel(tx, p, rng);
    EXPECT_LE(rx.size(), tx.size());
    // Verify subsequence property.
    std::size_t i = 0;
    for (std::uint8_t b : rx) {
        while (i < tx.size() && tx[i] != b) ++i;
        ASSERT_LT(i, tx.size());
        ++i;
    }
}

TEST(SimulateDriftChannel, DeletionRateStatistics) {
    Rng rng(3);
    DriftParams p{0.2, 0.0, 0.0, 2, 16, 8};
    const Bits tx(4000, 1);
    const Bits rx = simulate_drift_channel(tx, p, rng);
    EXPECT_NEAR(static_cast<double>(rx.size()) / tx.size(), 0.8, 0.02);
}

TEST(SimulateDriftChannel, InsertionRateStatistics) {
    Rng rng(4);
    DriftParams p{0.0, 0.2, 0.0, 2, 16, 8};
    const Bits tx(4000, 1);
    const Bits rx = simulate_drift_channel(tx, p, rng);
    // Insertions per transmitted symbol: p_i/(1-p_i) = 0.25.
    EXPECT_NEAR(static_cast<double>(rx.size()) / tx.size(), 1.25, 0.03);
}

TEST(SimulateDriftChannel, SubstitutionStatistics) {
    Rng rng(5);
    DriftParams p{0.0, 0.0, 0.15, 2, 16, 8};
    const Bits tx(4000, 0);
    const Bits rx = simulate_drift_channel(tx, p, rng);
    ASSERT_EQ(rx.size(), tx.size());
    double flips = 0;
    for (std::uint8_t b : rx) flips += b;
    EXPECT_NEAR(flips / static_cast<double>(tx.size()), 0.15, 0.02);
}

TEST(SimulateDriftChannel, Deterministic) {
    DriftParams p{0.1, 0.1, 0.05, 2, 16, 8};
    const Bits tx = {0, 1, 1, 0, 1, 0, 0, 1};
    Rng a(9), b(9);
    EXPECT_EQ(simulate_drift_channel(tx, p, a), simulate_drift_channel(tx, p, b));
}

TEST(SimulateDriftChannel, RejectsBadSymbols) {
    Rng rng(6);
    DriftParams p{0.1, 0.0, 0.0, 2, 16, 8};
    const Bits bad = {0, 3};
    EXPECT_THROW((void)simulate_drift_channel(bad, p, rng), std::out_of_range);
}

TEST(IidMiRate, CleanChannelIsOneBit) {
    Rng rng(7);
    DriftParams p{0.0, 0.0, 0.0, 2, 24, 8};
    const MiEstimate est = iid_mutual_information_rate(p, 64, 8, rng);
    EXPECT_NEAR(est.rate, 1.0, 1e-9);
}

TEST(IidMiRate, BoundedByErasureBound) {
    Rng rng(8);
    DriftParams p{0.15, 0.0, 0.0, 2, 32, 8};
    const MiEstimate est = iid_mutual_information_rate(p, 96, 24, rng);
    EXPECT_LT(est.rate, erasure_upper_bound(p.p_d) + 0.03);
    EXPECT_GT(est.rate, 0.3);
}

TEST(IidMiRate, AboveGallagerApproximately) {
    // The Monte-Carlo rate should (statistically) dominate the iid
    // analytic lower bound at moderate deletion rates.
    Rng rng(9);
    DriftParams p{0.1, 0.0, 0.0, 2, 32, 8};
    const MiEstimate est = iid_mutual_information_rate(p, 96, 24, rng);
    EXPECT_GT(est.rate + 3 * est.sem + 0.05, gallager_deletion_lower_bound(0.1));
}

TEST(IidMiRate, DegradesWithDeletionRate) {
    Rng rng(10);
    DriftParams lo{0.05, 0.0, 0.0, 2, 32, 8};
    DriftParams hi{0.30, 0.0, 0.0, 2, 32, 8};
    const double r_lo = iid_mutual_information_rate(lo, 64, 16, rng).rate;
    const double r_hi = iid_mutual_information_rate(hi, 64, 16, rng).rate;
    EXPECT_GT(r_lo, r_hi);
}

TEST(IidMiRate, ValidatesArguments) {
    Rng rng(11);
    DriftParams p{0.1, 0.0, 0.0, 2, 16, 8};
    EXPECT_THROW((void)iid_mutual_information_rate(p, 0, 4, rng), std::invalid_argument);
    EXPECT_THROW((void)iid_mutual_information_rate(p, 16, 0, rng), std::invalid_argument);
}

}  // namespace
