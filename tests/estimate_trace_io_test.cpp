#include "ccap/estimate/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

namespace {

using namespace ccap::estimate;
using Trace = std::vector<std::uint32_t>;

TEST(TraceIo, RoundTripThroughStream) {
    const Trace t = {0, 1, 5, 4294967295U, 2};
    std::stringstream ss;
    write_trace(ss, t, "unit test");
    EXPECT_EQ(read_trace(ss), t);
}

TEST(TraceIo, CommentsAndBlanksIgnored) {
    std::stringstream ss("# header\n\n1\n  # indented comment\n 2 \n\n3\n");
    EXPECT_EQ(read_trace(ss), (Trace{1, 2, 3}));
}

TEST(TraceIo, EmptyStreamGivesEmptyTrace) {
    std::stringstream ss;
    EXPECT_TRUE(read_trace(ss).empty());
}

TEST(TraceIo, MalformedLineReportsLineNumber) {
    std::stringstream ss("1\n2\nbanana\n");
    try {
        (void)read_trace(ss);
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
    }
}

TEST(TraceIo, RejectsNegativeAndTrailingGarbage) {
    std::stringstream neg("-4\n");
    EXPECT_THROW((void)read_trace(neg), std::runtime_error);
    std::stringstream trailing("12x\n");
    EXPECT_THROW((void)read_trace(trailing), std::runtime_error);
    std::stringstream fraction("1.5\n");
    EXPECT_THROW((void)read_trace(fraction), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
    const auto path =
        (std::filesystem::temp_directory_path() / "ccap_trace_io_test.txt").string();
    const Trace t = {7, 7, 0, 3};
    write_trace_file(path, t, "file round trip");
    EXPECT_EQ(read_trace_file(path), t);
    // Header comment present in the raw file.
    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first, "# file round trip");
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
    EXPECT_THROW((void)read_trace_file("/nonexistent/dir/trace.txt"), std::runtime_error);
    const Trace t = {1};
    EXPECT_THROW(write_trace_file("/nonexistent/dir/trace.txt", t), std::runtime_error);
}

TEST(TraceIo, CrLfTolerated) {
    std::stringstream ss("1\r\n2\r\n");
    EXPECT_EQ(read_trace(ss), (Trace{1, 2}));
}

// ---------------------------------------------------------------------------
// Typed errors + count framing (corrupt-fixture regressions).
// ---------------------------------------------------------------------------

TEST(TraceIo, WriterEmitsFramingHeaderAfterComment) {
    std::stringstream ss;
    write_trace(ss, Trace{4, 5, 6}, "my comment");
    std::string line;
    std::getline(ss, line);
    EXPECT_EQ(line, "# my comment");
    std::getline(ss, line);
    EXPECT_EQ(line, "# ccap-trace v1 count=3");
}

TEST(TraceIo, TruncatedFramedTraceThrowsTyped) {
    // A killed run / partial copy: header promises 5 symbols, file has 3.
    std::stringstream ss("# ccap-trace v1 count=5\n1\n2\n3\n");
    try {
        (void)read_trace(ss);
        FAIL() << "expected truncation error";
    } catch (const TraceIoError& e) {
        EXPECT_EQ(e.kind(), TraceError::truncated);
        EXPECT_NE(std::string(e.what()).find("declares 5"), std::string::npos);
    }
}

TEST(TraceIo, PaddedFramedTraceAlsoThrows) {
    // Extra symbols (concatenated files) are just as wrong as missing ones.
    std::stringstream ss("# ccap-trace v1 count=1\n1\n2\n");
    try {
        (void)read_trace(ss);
        FAIL() << "expected truncation error";
    } catch (const TraceIoError& e) {
        EXPECT_EQ(e.kind(), TraceError::truncated);
    }
}

TEST(TraceIo, UnparsableFramingHeaderIsMalformed) {
    std::stringstream ss("# ccap-trace v1 count=banana\n1\n");
    try {
        (void)read_trace(ss);
        FAIL() << "expected malformed error";
    } catch (const TraceIoError& e) {
        EXPECT_EQ(e.kind(), TraceError::malformed);
    }
}

TEST(TraceIo, LegacyUnframedFilesStillLoad) {
    std::stringstream ss("# just a comment\n1\n2\n");
    EXPECT_EQ(read_trace(ss), (Trace{1, 2}));
}

TEST(TraceIo, ErrorKindsAreDistinct) {
    try {
        (void)read_trace_file("/nonexistent/dir/trace.txt");
        FAIL() << "expected unreadable error";
    } catch (const TraceIoError& e) {
        EXPECT_EQ(e.kind(), TraceError::unreadable);
    }
    std::stringstream bad("zzz\n");
    try {
        (void)read_trace(bad);
        FAIL() << "expected malformed error";
    } catch (const TraceIoError& e) {
        EXPECT_EQ(e.kind(), TraceError::malformed);
    }
}

TEST(TraceIo, FramedFileRoundTripDetectsCorruption) {
    const auto path =
        (std::filesystem::temp_directory_path() / "ccap_trace_io_corrupt.txt").string();
    write_trace_file(path, Trace{1, 2, 3, 4}, "fixture");
    EXPECT_EQ(read_trace_file(path), (Trace{1, 2, 3, 4}));
    // Chop the last line off — a classic torn write.
    {
        std::ifstream in(path);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        const auto cut = all.rfind("4\n");
        std::ofstream out(path, std::ios::trunc);
        out << all.substr(0, cut);
    }
    try {
        (void)read_trace_file(path);
        FAIL() << "expected truncation error";
    } catch (const TraceIoError& e) {
        EXPECT_EQ(e.kind(), TraceError::truncated);
    }
    std::remove(path.c_str());
}

}  // namespace
