#include "ccap/coding/watermark.hpp"

#include <gtest/gtest.h>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::coding;
using ccap::info::DriftParams;
using ccap::info::simulate_drift_channel;
using ccap::util::Rng;

WatermarkParams small_params() {
    WatermarkParams p;
    p.bits_per_symbol = 4;   // GF(16)
    p.chunk_bits = 6;
    p.num_symbols = 48;
    p.num_checks = 16;
    p.watermark_seed = 0xACE1;
    p.ldpc_seed = 0xBEEF;
    return p;
}

TEST(SparseCodebook, LowestWeightFirst) {
    const auto book = sparse_codebook(16, 6);
    ASSERT_EQ(book.size(), 16U);
    // First entry is all-zero; all 6 weight-1 entries precede any weight-2.
    EXPECT_EQ(to_string(book[0]), "000000");
    for (int i = 1; i <= 6; ++i) {
        int weight = 0;
        for (auto b : book[i]) weight += b;
        EXPECT_EQ(weight, 1) << "entry " << i;
    }
    for (std::size_t i = 7; i < 16; ++i) {
        int weight = 0;
        for (auto b : book[i]) weight += b;
        EXPECT_EQ(weight, 2) << "entry " << i;
    }
}

TEST(SparseCodebook, Validation) {
    EXPECT_THROW((void)sparse_codebook(0, 6), std::invalid_argument);
    EXPECT_THROW((void)sparse_codebook(128, 6), std::invalid_argument);
    EXPECT_THROW((void)sparse_codebook(4, 0), std::invalid_argument);
}

TEST(Watermark, ConstructionAndRate) {
    const WatermarkCode code(small_params());
    EXPECT_EQ(code.info_bits(), (48U - 16U) * 4U);  // k = n - checks symbols, 4 bits each
    EXPECT_EQ(code.channel_bits(), 48U * 6U);
    EXPECT_NEAR(code.rate(), 128.0 / 288.0, 1e-12);
    EXPECT_GT(code.sparse_density(), 0.0);
    EXPECT_LT(code.sparse_density(), 0.5);
}

TEST(Watermark, ChunkBitsMustFitSymbols) {
    WatermarkParams p = small_params();
    p.chunk_bits = 3;
    EXPECT_THROW(WatermarkCode{p}, std::invalid_argument);
}

TEST(Watermark, EncodeDeterministicAndSized) {
    const WatermarkCode code(small_params());
    const Bits info = random_bits(code.info_bits(), 1);
    const Bits tx1 = code.encode(info);
    const Bits tx2 = code.encode(info);
    EXPECT_EQ(tx1, tx2);
    EXPECT_EQ(tx1.size(), code.channel_bits());
}

TEST(Watermark, EncodeWrongSizeThrows) {
    const WatermarkCode code(small_params());
    EXPECT_THROW((void)code.encode(Bits(3, 0)), std::invalid_argument);
}

TEST(Watermark, StreamResemblesWatermark) {
    // The transmitted stream should differ from the watermark only at the
    // sparse density (this is what makes drift tracking possible).
    const WatermarkCode code(small_params());
    const Bits info = random_bits(code.info_bits(), 2);
    const Bits tx = code.encode(info);
    const Bits wm = random_bits(code.channel_bits(), small_params().watermark_seed);
    const std::size_t diff = hamming_distance(tx, wm);
    const double density = static_cast<double>(diff) / tx.size();
    EXPECT_LT(density, 0.35);
}

TEST(Watermark, CleanChannelRoundTrip) {
    const WatermarkCode code(small_params());
    const Bits info = random_bits(code.info_bits(), 3);
    const Bits tx = code.encode(info);
    const DriftParams clean{0.0, 0.0, 0.0, 2, 32, 8};
    const auto res = code.decode(tx, clean);
    EXPECT_TRUE(res.ldpc_converged);
    EXPECT_EQ(res.info, info);
}

TEST(Watermark, SurvivesDeletionsAndInsertions) {
    const WatermarkCode code(small_params());
    const DriftParams channel{0.01, 0.01, 0.0, 2, 32, 8};
    Rng rng(9);
    int exact = 0;
    constexpr int kTrials = 6;
    for (int trial = 0; trial < kTrials; ++trial) {
        const Bits info = random_bits(code.info_bits(), 400 + trial);
        const Bits tx = code.encode(info);
        const Bits rx = simulate_drift_channel(tx, channel, rng);
        const auto res = code.decode(rx, channel);
        if (res.ldpc_converged && res.info == info) ++exact;
    }
    EXPECT_GE(exact, 4) << "watermark code should survive 1% indel rates";
}

TEST(Watermark, HeavyNoiseFailsGracefully) {
    const WatermarkCode code(small_params());
    const DriftParams channel{0.25, 0.25, 0.1, 2, 48, 10};
    Rng rng(10);
    const Bits info = random_bits(code.info_bits(), 5);
    const Bits tx = code.encode(info);
    const Bits rx = simulate_drift_channel(tx, channel, rng);
    const auto res = code.decode(rx, channel);
    // Must not crash; decoded info has the right size either way.
    EXPECT_EQ(res.info.size(), code.info_bits());
}

}  // namespace
