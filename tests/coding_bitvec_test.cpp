#include "ccap/coding/bitvec.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::coding;

TEST(Bitvec, CheckBitsRejectsNonBits) {
    const Bits bad = {0, 1, 2};
    EXPECT_THROW(check_bits(bad), std::domain_error);
    const Bits good = {0, 1, 1, 0};
    EXPECT_NO_THROW(check_bits(good));
}

TEST(Bitvec, PackUnpackRoundTrip) {
    const Bits bits = bits_from_string("1011001110001");
    const auto bytes = pack_bytes(bits);
    EXPECT_EQ(bytes.size(), 2U);
    EXPECT_EQ(unpack_bytes(bytes, bits.size()), bits);
}

TEST(Bitvec, PackMsbFirst) {
    const Bits bits = bits_from_string("10000001");
    const auto bytes = pack_bytes(bits);
    ASSERT_EQ(bytes.size(), 1U);
    EXPECT_EQ(bytes[0], 0x81);
}

TEST(Bitvec, UnpackTooManyThrows) {
    const std::vector<std::uint8_t> bytes = {0xFF};
    EXPECT_THROW((void)unpack_bytes(bytes, 9), std::invalid_argument);
}

TEST(Bitvec, BitsFromUintRoundTrip) {
    for (std::uint64_t v : {0ULL, 1ULL, 5ULL, 255ULL, 0xDEADBEEFULL}) {
        const Bits b = bits_from_uint(v, 32);
        EXPECT_EQ(uint_from_bits(b), v);
    }
}

TEST(Bitvec, BitsFromUintWidth) {
    const Bits b = bits_from_uint(0b101, 3);
    EXPECT_EQ(to_string(b), "101");
    EXPECT_THROW((void)bits_from_uint(1, 65), std::invalid_argument);
}

TEST(Bitvec, UintFromBitsValidation) {
    const Bits too_long(65, 0);
    EXPECT_THROW((void)uint_from_bits(too_long), std::invalid_argument);
}

TEST(Bitvec, StringRoundTrip) {
    const std::string s = "011010";
    EXPECT_EQ(to_string(bits_from_string(s)), s);
    EXPECT_THROW((void)bits_from_string("01x"), std::invalid_argument);
}

TEST(Bitvec, HammingDistance) {
    const Bits a = bits_from_string("1010");
    const Bits b = bits_from_string("1001");
    EXPECT_EQ(hamming_distance(a, b), 2U);
    EXPECT_EQ(hamming_distance(a, a), 0U);
    const Bits c = bits_from_string("101");
    EXPECT_THROW((void)hamming_distance(a, c), std::invalid_argument);
}

TEST(Bitvec, XorBits) {
    const Bits a = bits_from_string("1100");
    const Bits b = bits_from_string("1010");
    EXPECT_EQ(to_string(xor_bits(a, b)), "0110");
    // Self-inverse.
    EXPECT_EQ(xor_bits(xor_bits(a, b), b), a);
}

TEST(Bitvec, RandomBitsDeterministicAndBalanced) {
    const Bits a = random_bits(10000, 77);
    const Bits b = random_bits(10000, 77);
    EXPECT_EQ(a, b);
    std::size_t ones = 0;
    for (auto bit : a) ones += bit;
    EXPECT_NEAR(static_cast<double>(ones) / a.size(), 0.5, 0.03);
    const Bits c = random_bits(10000, 78);
    EXPECT_NE(a, c);
}

TEST(Bitvec, EmptyInputs) {
    EXPECT_TRUE(pack_bytes({}).empty());
    EXPECT_TRUE(to_string({}).empty());
    EXPECT_EQ(uint_from_bits({}), 0ULL);
}

}  // namespace
