#include "ccap/info/dmc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "ccap/info/entropy.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Matrix;
using ccap::util::Rng;

TEST(Dmc, RejectsNonStochastic) {
    Matrix bad{{0.5, 0.4}, {0.5, 0.5}};
    EXPECT_THROW((void)Dmc(bad), std::invalid_argument);
}

TEST(Dmc, RejectsEmpty) { EXPECT_THROW((void)Dmc(Matrix{}), std::invalid_argument); }

TEST(Dmc, Dimensions) {
    const Dmc bec = make_bec(0.3);
    EXPECT_EQ(bec.num_inputs(), 2U);
    EXPECT_EQ(bec.num_outputs(), 3U);
    EXPECT_EQ(bec.name(), "bec");
}

TEST(Dmc, OutputDistribution) {
    const Dmc bsc = make_bsc(0.1);
    const std::vector<double> input = {1.0, 0.0};
    const auto out = bsc.output_distribution(input);
    EXPECT_NEAR(out[0], 0.9, 1e-12);
    EXPECT_NEAR(out[1], 0.1, 1e-12);
}

TEST(Dmc, SampleRespectsDistribution) {
    const Dmc bsc = make_bsc(0.25);
    Rng rng(3);
    int flips = 0;
    constexpr int kN = 40000;
    for (int i = 0; i < kN; ++i) flips += bsc.sample(0, rng) == 1;
    EXPECT_NEAR(static_cast<double>(flips) / kN, 0.25, 0.01);
}

TEST(Dmc, SampleOutOfRangeThrows) {
    const Dmc bsc = make_bsc(0.25);
    Rng rng(4);
    EXPECT_THROW((void)bsc.sample(2, rng), std::out_of_range);
}

TEST(Dmc, TransduceLengthPreserved) {
    const Dmc noiseless = make_noiseless(4);
    Rng rng(5);
    const std::vector<std::size_t> in = {0, 1, 2, 3, 3, 2, 1, 0};
    const auto out = noiseless.transduce(in, rng);
    EXPECT_EQ(out, in);  // identity channel
}

TEST(Builders, BscMatrix) {
    const Dmc c = make_bsc(0.2);
    EXPECT_NEAR(c.transition(0, 0), 0.8, 1e-12);
    EXPECT_NEAR(c.transition(1, 0), 0.2, 1e-12);
}

TEST(Builders, ZChannelStructure) {
    const Dmc z = make_z_channel(0.3);
    EXPECT_DOUBLE_EQ(z.transition(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(z.transition(0, 1), 0.0);
    EXPECT_NEAR(z.transition(1, 0), 0.3, 1e-12);
}

TEST(Builders, MaryErasureStructure) {
    const Dmc e = make_mary_erasure(4, 0.25);
    EXPECT_EQ(e.num_outputs(), 5U);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_NEAR(e.transition(i, i), 0.75, 1e-12);
        EXPECT_NEAR(e.transition(i, 4), 0.25, 1e-12);
    }
}

TEST(Builders, MarySymmetricRows) {
    const Dmc m = make_mary_symmetric(8, 0.21);
    EXPECT_TRUE(m.matrix().is_row_stochastic());
    EXPECT_NEAR(m.transition(3, 3), 0.79, 1e-12);
    EXPECT_NEAR(m.transition(3, 4), 0.03, 1e-12);
}

TEST(Builders, InvalidProbabilityThrows) {
    EXPECT_THROW((void)make_bsc(1.5), std::domain_error);
    EXPECT_THROW((void)make_bec(-0.1), std::domain_error);
    EXPECT_THROW((void)make_mary_symmetric(1, 0.1), std::invalid_argument);
}

TEST(ClosedForms, BscCapacity) {
    EXPECT_DOUBLE_EQ(bsc_capacity(0.0), 1.0);
    EXPECT_DOUBLE_EQ(bsc_capacity(0.5), 0.0);
    EXPECT_NEAR(bsc_capacity(0.11), 1.0 - binary_entropy(0.11), 1e-12);
}

TEST(ClosedForms, BecCapacity) {
    EXPECT_DOUBLE_EQ(bec_capacity(0.0), 1.0);
    EXPECT_DOUBLE_EQ(bec_capacity(1.0), 0.0);
    EXPECT_DOUBLE_EQ(bec_capacity(0.3), 0.7);
}

TEST(ClosedForms, ZChannelCapacity) {
    EXPECT_DOUBLE_EQ(z_channel_capacity(0.0), 1.0);
    EXPECT_DOUBLE_EQ(z_channel_capacity(1.0), 0.0);
    // Known value: C(0.5) = log2(5/4) = log2(1.25).
    EXPECT_NEAR(z_channel_capacity(0.5), std::log2(1.25), 1e-12);
}

TEST(ClosedForms, MaryErasureCapacity) {
    EXPECT_DOUBLE_EQ(mary_erasure_capacity(4, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(mary_erasure_capacity(8, 0.0), 3.0);
}

}  // namespace
