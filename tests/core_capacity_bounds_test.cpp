#include "ccap/core/capacity_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ccap/info/entropy.hpp"

namespace {

using namespace ccap::core;

DiChannelParams params(double pd, double pi, unsigned n = 1) { return {pd, pi, 0.0, n}; }

TEST(Theorem1, ErasureBoundValues) {
    EXPECT_DOUBLE_EQ(theorem1_upper_bound(params(0.0, 0.0)), 1.0);
    EXPECT_DOUBLE_EQ(theorem1_upper_bound(params(0.25, 0.0)), 0.75);
    EXPECT_DOUBLE_EQ(theorem1_upper_bound(params(0.25, 0.0, 8)), 6.0);
    // Insertions do not appear in the Theorem-1 bound.
    EXPECT_DOUBLE_EQ(theorem1_upper_bound(params(0.25, 0.3)),
                     theorem1_upper_bound(params(0.25, 0.0)));
}

TEST(Theorem3, EqualsErasureCapacityForDeletionChannels) {
    EXPECT_DOUBLE_EQ(theorem3_feedback_capacity(params(0.4, 0.0, 2)), 1.2);
}

TEST(Theorem3, RejectsInsertionChannels) {
    EXPECT_THROW((void)theorem3_feedback_capacity(params(0.1, 0.1)), std::domain_error);
}

TEST(Theorem4, SameBoundAsTheorem1) {
    const auto p = params(0.15, 0.25, 3);
    EXPECT_DOUBLE_EQ(theorem4_upper_bound(p), theorem1_upper_bound(p));
}

TEST(Alpha, ReconstructionProperties) {
    // alpha = 1 at P_i = P_d (required by eq (6)).
    EXPECT_DOUBLE_EQ(theorem5_alpha(params(0.2, 0.2)), 1.0);
    // alpha = 1 - P_d at P_i = 0 (so alpha*P_i = 0, Theorem 3 consistency).
    EXPECT_DOUBLE_EQ(theorem5_alpha(params(0.3, 0.0)), 0.7);
    EXPECT_DOUBLE_EQ(theorem5_alpha(params(0.0, 0.0)), 1.0);
}

TEST(ConvertedChannel, NoInsertionsMeansFullRate) {
    // eq (3) with alpha*P_i = 0: C_conv = N.
    EXPECT_DOUBLE_EQ(converted_channel_capacity(params(0.3, 0.0, 4)), 4.0);
}

TEST(ConvertedChannel, MatchesMsCFormula) {
    const auto p = params(0.1, 0.1, 2);
    const double e = theorem5_alpha(p) * p.p_i;
    EXPECT_NEAR(converted_channel_capacity(p),
                ccap::info::mary_symmetric_capacity(e, 4), 1e-12);
}

TEST(Theorem5, ReducesToTheorem3AtZeroInsertions) {
    for (double pd : {0.0, 0.1, 0.3, 0.6}) {
        EXPECT_NEAR(theorem5_lower_bound(params(pd, 0.0)),
                    theorem1_upper_bound(params(pd, 0.0)), 1e-12)
            << "pd=" << pd;
    }
}

TEST(Theorem5, LowerBelowUpper) {
    for (double pd : {0.05, 0.1, 0.2, 0.3})
        for (double pi : {0.0, 0.05, 0.1, 0.2}) {
            const auto p = params(pd, pi, 2);
            EXPECT_LE(theorem5_lower_bound(p), theorem1_upper_bound(p) + 1e-12)
                << "pd=" << pd << " pi=" << pi;
        }
}

TEST(Theorem5, InsertionsOnlyHurt) {
    EXPECT_GT(theorem5_lower_bound(params(0.1, 0.0)), theorem5_lower_bound(params(0.1, 0.1)));
    EXPECT_GT(theorem5_lower_bound(params(0.1, 0.1)), theorem5_lower_bound(params(0.1, 0.2)));
}

TEST(ExactRate, AgreesAtZeroInsertions) {
    for (double pd : {0.0, 0.2, 0.5})
        EXPECT_NEAR(counter_protocol_exact_rate(params(pd, 0.0, 3)),
                    theorem1_upper_bound(params(pd, 0.0, 3)), 1e-12);
}

TEST(ExactRate, WithinBand) {
    for (double pd : {0.05, 0.15, 0.3})
        for (double pi : {0.02, 0.08, 0.15}) {
            const auto p = params(pd, pi, 2);
            const double exact = counter_protocol_exact_rate(p);
            EXPECT_LE(exact, theorem1_upper_bound(p) + 1e-12);
            EXPECT_GT(exact, 0.0);
        }
}

TEST(ExactRate, HandlesTotalDeletion) {
    EXPECT_DOUBLE_EQ(counter_protocol_exact_rate(params(1.0, 0.0)), 0.0);
}

TEST(ExactRate, SubstitutionNoiseComposes) {
    DiChannelParams noisy{0.1, 0.1, 0.2, 2};
    DiChannelParams clean{0.1, 0.1, 0.0, 2};
    EXPECT_LT(counter_protocol_exact_rate(noisy), counter_protocol_exact_rate(clean));
}

TEST(Convergence, RatioIncreasesWithN) {
    // eq (7): at P_i = P_d the ratio tends to 1 as N grows.
    double prev = 0.0;
    for (unsigned n : {1U, 2U, 4U, 8U, 12U, 16U}) {
        const double r = theorem5_convergence_ratio(0.1, n);
        EXPECT_GE(r, prev - 1e-12) << "n=" << n;
        EXPECT_LE(r, 1.0 + 1e-12);
        prev = r;
    }
    EXPECT_GT(theorem5_convergence_ratio(0.1, 16), 0.95);
}

TEST(Convergence, DegenerateCases) {
    EXPECT_DOUBLE_EQ(theorem5_convergence_ratio(1.0, 4), 0.0);  // upper bound 0
    EXPECT_NEAR(theorem5_convergence_ratio(0.0, 4), 1.0, 1e-12);
}

TEST(DegradedCapacity, Recipe) {
    EXPECT_DOUBLE_EQ(degraded_capacity(10.0, params(0.2, 0.0)), 8.0);
    EXPECT_DOUBLE_EQ(degraded_capacity(0.0, params(0.2, 0.0)), 0.0);
    EXPECT_THROW((void)degraded_capacity(-1.0, params(0.2, 0.0)), std::domain_error);
}

TEST(CapacityBand, Ordered) {
    for (double pd : {0.05, 0.2})
        for (double pi : {0.02, 0.1}) {
            const CapacityBand band = capacity_band(params(pd, pi, 4));
            EXPECT_LE(band.lower, band.upper + 1e-12);
            EXPECT_LE(band.exact_protocol, band.upper + 1e-12);
            EXPECT_GE(band.lower, 0.0);
        }
}

TEST(CapacityBand, PaperVsExactRelationship) {
    // Documented reproduction finding (EXPERIMENTS.md E3): the paper's
    // Theorem-5 expression agrees with the exact analysis of its own
    // protocol at P_i = 0 and stays inside [0, Thm1], but is *optimistic*
    // for P_i > 0 — it under-counts the insertion-garbage fraction
    // (alpha*P_i instead of P_i/(1-P_d)) and over-credits time
    // ((1-P_d)/(1-P_i) instead of (1-P_d)). The gap vanishes as P_i -> 0.
    EXPECT_NEAR(theorem5_lower_bound(params(0.2, 0.0, 8)),
                counter_protocol_exact_rate(params(0.2, 0.0, 8)), 1e-12);
    double prev_gap = 1e9;
    for (double pi : {0.2, 0.1, 0.05, 0.01, 0.001}) {
        const auto p = params(0.1, pi, 8);
        const double gap = theorem5_lower_bound(p) - counter_protocol_exact_rate(p);
        EXPECT_GE(gap, -1e-9) << "pi=" << pi;          // paper never below exact
        EXPECT_LE(gap, prev_gap + 1e-12) << "pi=" << pi;  // gap shrinks with pi
        EXPECT_LE(theorem5_lower_bound(p), theorem1_upper_bound(p) + 1e-12);
        prev_gap = gap;
    }
}

class ParamSweep : public ::testing::TestWithParam<std::tuple<double, double, unsigned>> {};

TEST_P(ParamSweep, AllBoundsSane) {
    const auto [pd, pi, n] = GetParam();
    if (pd + pi > 1.0) GTEST_SKIP() << "not a channel";
    const auto p = params(pd, pi, n);
    const CapacityBand band = capacity_band(p);
    EXPECT_GE(band.lower, 0.0);
    EXPECT_GE(band.exact_protocol, 0.0);
    EXPECT_LE(band.upper, static_cast<double>(n));
    EXPECT_LE(band.lower, band.upper + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9),
                       ::testing::Values(0.0, 0.05, 0.2, 0.4),
                       ::testing::Values(1U, 2U, 8U)));

}  // namespace
