#include <gtest/gtest.h>

#include <cmath>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/estimate/param_estimator.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"

namespace {

using namespace ccap::estimate;
using ccap::core::DeletionInsertionChannel;
using ccap::core::DiChannelParams;
using Trace = std::vector<std::uint32_t>;

Trace random_trace(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    Trace t(n);
    for (auto& s : t) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return t;
}

TEST(ExpectedEvents, CleanChannelCountsExactly) {
    ccap::info::DriftParams p{0.0, 0.0, 0.0, 2, 16, 8};
    const ccap::info::DriftHmm hmm(p);
    const std::vector<std::uint8_t> tx = {0, 1, 1, 0, 1};
    const auto ev = hmm.expected_events(tx, tx);
    EXPECT_NEAR(ev.transmissions, 5.0, 1e-9);
    EXPECT_NEAR(ev.deletions, 0.0, 1e-9);
    EXPECT_NEAR(ev.insertions, 0.0, 1e-9);
    EXPECT_NEAR(ev.substitutions, 0.0, 1e-9);
    EXPECT_NEAR(ev.log2_likelihood, 0.0, 1e-9);
}

TEST(ExpectedEvents, UnambiguousDeletionCounted) {
    ccap::info::DriftParams p{0.2, 0.0, 0.0, 2, 16, 8};
    const ccap::info::DriftHmm hmm(p);
    // tx = [0,1], rx = [0]: the only explanation is transmit then delete.
    const std::vector<std::uint8_t> tx = {0, 1};
    const std::vector<std::uint8_t> rx = {0};
    const auto ev = hmm.expected_events(tx, rx);
    EXPECT_NEAR(ev.deletions, 1.0, 1e-9);
    EXPECT_NEAR(ev.transmissions, 1.0, 1e-9);
    EXPECT_NEAR(ev.insertions, 0.0, 1e-9);
}

TEST(ExpectedEvents, TrailingInsertionsCounted) {
    ccap::info::DriftParams p{0.0, 0.3, 0.0, 2, 16, 8};
    const ccap::info::DriftHmm hmm(p);
    // tx empty, rx of length 3: exactly 3 trailing insertions.
    const std::vector<std::uint8_t> tx;
    const std::vector<std::uint8_t> rx = {1, 0, 1};
    const auto ev = hmm.expected_events(tx, rx);
    EXPECT_NEAR(ev.insertions, 3.0, 1e-9);
    EXPECT_NEAR(ev.transmissions, 0.0, 1e-9);
}

TEST(ExpectedEvents, CountsAverageToChannelRates) {
    // E[event counts] / uses over simulated data approaches the channel
    // parameters (consistency of the E-step).
    ccap::info::DriftParams p{0.15, 0.1, 0.05, 4, 48, 10};
    const ccap::info::DriftHmm hmm(p);
    ccap::util::Rng rng(5);
    double del = 0, ins = 0, tx_count = 0, sub = 0;
    for (int block = 0; block < 20; ++block) {
        std::vector<std::uint8_t> tx(200);
        for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(4));
        const auto rx = ccap::info::simulate_drift_channel(tx, p, rng);
        const auto ev = hmm.expected_events(tx, rx);
        ASSERT_TRUE(std::isfinite(ev.log2_likelihood));
        del += ev.deletions;
        ins += ev.insertions;
        tx_count += ev.transmissions;
        sub += ev.substitutions;
    }
    const double uses = del + ins + tx_count;
    EXPECT_NEAR(del / uses, 0.15, 0.02);
    EXPECT_NEAR(ins / uses, 0.10, 0.02);
    EXPECT_NEAR(sub / tx_count, 0.05, 0.02);
}

TEST(ExpectedEvents, SubstitutionForcedByMismatch) {
    ccap::info::DriftParams p{0.0, 0.0, 0.2, 2, 8, 4};
    const ccap::info::DriftHmm hmm(p);
    const std::vector<std::uint8_t> tx = {0, 1, 0};
    const std::vector<std::uint8_t> rx = {0, 0, 0};  // middle symbol flipped
    const auto ev = hmm.expected_events(tx, rx);
    EXPECT_NEAR(ev.substitutions, 1.0, 1e-9);
    EXPECT_NEAR(ev.transmissions, 3.0, 1e-9);
}

class EmRecovery : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EmRecovery, RecoversChannelParameters) {
    const auto [pd, pi, ps] = GetParam();
    const DiChannelParams truth{pd, pi, ps, 3};
    DeletionInsertionChannel ch(truth, 77);
    const Trace sent = random_trace(8000, 3, 78);
    const auto t = ch.transduce(sent);
    const ParamEstimate est = estimate_params_em(sent, t.output, 3);
    EXPECT_NEAR(est.p_d.value, pd, 0.02) << "pd";
    EXPECT_NEAR(est.p_i.value, pi, 0.02) << "pi";
    // Substitutions blur into deletion+insertion pairs at heavy noise, so
    // P_s carries a little more identifiability noise.
    EXPECT_NEAR(est.p_s.value, ps, 0.03) << "ps";
}

INSTANTIATE_TEST_SUITE_P(Grid, EmRecovery,
                         ::testing::Values(std::tuple{0.0, 0.0, 0.0},
                                           std::tuple{0.15, 0.0, 0.0},
                                           std::tuple{0.0, 0.15, 0.0},
                                           std::tuple{0.1, 0.05, 0.02},
                                           std::tuple{0.2, 0.1, 0.0},
                                           std::tuple{0.05, 0.2, 0.05},
                                           std::tuple{0.3, 0.15, 0.1}));

TEST(EmEstimator, AgreesWithCoordinateDescentMle) {
    const DiChannelParams truth{0.12, 0.08, 0.03, 2};
    DeletionInsertionChannel ch(truth, 79);
    const Trace sent = random_trace(6000, 2, 80);
    const auto t = ch.transduce(sent);
    const ParamEstimate em = estimate_params_em(sent, t.output, 2);
    const ParamEstimate mle = estimate_params_mle(sent, t.output, 2);
    EXPECT_NEAR(em.p_d.value, mle.p_d.value, 0.02);
    EXPECT_NEAR(em.p_i.value, mle.p_i.value, 0.02);
    EXPECT_NEAR(em.p_s.value, mle.p_s.value, 0.02);
}

TEST(EmEstimator, Validation) {
    const Trace t = random_trace(50, 2, 81);
    EXPECT_THROW((void)estimate_params_em(t, t, 0), std::invalid_argument);
    EXPECT_THROW((void)estimate_params_em(t, t, 9), std::invalid_argument);
    const Trace bad = {9};
    EXPECT_THROW((void)estimate_params_em(bad, t, 2), std::out_of_range);
}

TEST(EmEstimator, EmptyTraces) {
    const ParamEstimate est = estimate_params_em({}, {}, 2);
    EXPECT_DOUBLE_EQ(est.p_d.value, 0.0);
}

}  // namespace
