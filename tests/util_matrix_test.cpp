#include "ccap/util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

using ccap::util::Matrix;

TEST(Matrix, DefaultIsEmpty) {
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0U);
    EXPECT_EQ(m.cols(), 0U);
}

TEST(Matrix, FillConstructor) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2U);
    EXPECT_EQ(m.cols(), 3U);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerList) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, MixedZeroDimensionsThrow) {
    EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
    EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
    Matrix m(2, 2);
    EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
    EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
    EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowSpanWritesThrough) {
    Matrix m(2, 3);
    auto row = m.row(1);
    row[2] = 9.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, MatVec) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    const std::vector<double> x = {1.0, 1.0};
    const auto y = m.mat_vec(x);
    ASSERT_EQ(y.size(), 2U);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecSizeMismatchThrows) {
    Matrix m(2, 3);
    const std::vector<double> x = {1.0, 1.0};
    EXPECT_THROW((void)m.mat_vec(x), std::invalid_argument);
}

TEST(Matrix, TransposeVec) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    const std::vector<double> x = {1.0, 1.0};
    const auto y = m.transpose_vec(x);
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, TransposeRoundTrip) {
    Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(Matrix, Multiply) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix i{{1.0, 0.0}, {0.0, 1.0}};
    EXPECT_EQ(a.multiply(i), a);
    Matrix b{{0.0, 1.0}, {1.0, 0.0}};
    Matrix ab = a.multiply(b);
    EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
}

TEST(Matrix, MultiplyDimMismatchThrows) {
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW((void)a.multiply(b), std::invalid_argument);
}

TEST(Matrix, RowStochasticDetection) {
    Matrix good{{0.5, 0.5}, {0.1, 0.9}};
    EXPECT_TRUE(good.is_row_stochastic());
    Matrix bad_sum{{0.5, 0.6}, {0.1, 0.9}};
    EXPECT_FALSE(bad_sum.is_row_stochastic());
    Matrix negative{{1.5, -0.5}, {0.1, 0.9}};
    EXPECT_FALSE(negative.is_row_stochastic());
    Matrix empty;
    EXPECT_FALSE(empty.is_row_stochastic());
}

TEST(Matrix, NormalizeRows) {
    Matrix m{{2.0, 2.0}, {1.0, 3.0}};
    m.normalize_rows();
    EXPECT_TRUE(m.is_row_stochastic());
    EXPECT_DOUBLE_EQ(m(1, 1), 0.75);
}

TEST(Matrix, NormalizeRowsZeroRowThrows) {
    Matrix m{{0.0, 0.0}, {1.0, 1.0}};
    EXPECT_THROW(m.normalize_rows(), std::domain_error);
}

TEST(Matrix, SpectralRadiusDiagonal) {
    Matrix m{{3.0, 0.0}, {0.0, 2.0}};
    EXPECT_NEAR(m.spectral_radius(), 3.0, 1e-9);
}

TEST(Matrix, SpectralRadiusFibonacci) {
    // [[1,1],[1,0]] has spectral radius phi = (1+sqrt 5)/2.
    Matrix m{{1.0, 1.0}, {1.0, 0.0}};
    EXPECT_NEAR(m.spectral_radius(), (1.0 + std::sqrt(5.0)) / 2.0, 1e-9);
}

TEST(Matrix, SpectralRadiusNonSquareThrows) {
    Matrix m(2, 3);
    EXPECT_THROW((void)m.spectral_radius(), std::invalid_argument);
}

TEST(Matrix, SpectralRadiusZeroMatrix) {
    Matrix m(3, 3, 0.0);
    EXPECT_DOUBLE_EQ(m.spectral_radius(), 0.0);
}

TEST(Matrix, ToStringContainsValues) {
    Matrix m{{1.25, 0.0}};
    const std::string s = m.to_string(2);
    EXPECT_NE(s.find("1.25"), std::string::npos);
}

}  // namespace
