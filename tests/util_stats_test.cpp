#include "ccap/util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using ccap::util::Histogram;
using ccap::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
    RunningStats s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
    RunningStats all, a, b;
    const std::vector<double> xs = {1.0, 2.5, -3.0, 4.0, 0.5, 6.25, 7.0};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        all.add(xs[i]);
        (i < 3 ? a : b).add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, CiHalfwidthShrinks) {
    RunningStats small, large;
    for (int i = 0; i < 10; ++i) small.add(i % 2);
    for (int i = 0; i < 1000; ++i) large.add(i % 2);
    EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(Histogram, BinsAndEdges) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5U);
    EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, CountsAndOverflow) {
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.6);
    h.add(0.7);
    h.add(-1.0);
    h.add(2.0);
    h.add(1.0);  // hi edge counts as overflow (half-open range)
    EXPECT_EQ(h.bin_count(0), 1U);
    EXPECT_EQ(h.bin_count(1), 2U);
    EXPECT_EQ(h.underflow(), 1U);
    EXPECT_EQ(h.overflow(), 2U);
    EXPECT_EQ(h.total(), 6U);
}

TEST(Histogram, BadConstructionThrows) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinCountBoundsChecked) {
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW((void)h.bin_count(2), std::out_of_range);
    EXPECT_THROW((void)h.bin_low(2), std::out_of_range);
}

TEST(FreeFunctions, MeanOf) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(ccap::util::mean_of(xs), 2.0);
    EXPECT_DOUBLE_EQ(ccap::util::mean_of({}), 0.0);
}

TEST(FreeFunctions, Percentile) {
    const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of(xs, 50.0), 2.5);
    EXPECT_THROW((void)ccap::util::percentile_of(xs, 101.0), std::invalid_argument);
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of({}, 50.0), 0.0);
}

}  // namespace
