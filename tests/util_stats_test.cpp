#include "ccap/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ccap/util/rng.hpp"

namespace {

using ccap::util::Histogram;
using ccap::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
    RunningStats s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
    RunningStats all, a, b;
    const std::vector<double> xs = {1.0, 2.5, -3.0, 4.0, 0.5, 6.25, 7.0};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        all.add(xs[i]);
        (i < 3 ? a : b).add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, CiHalfwidthShrinks) {
    RunningStats small, large;
    for (int i = 0; i < 10; ++i) small.add(i % 2);
    for (int i = 0; i < 1000; ++i) large.add(i % 2);
    EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

using ccap::util::CompensatedStats;

TEST(CompensatedStats, EmptyAndSingleSample) {
    CompensatedStats s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(CompensatedStats, MatchesWelfordOnBenignData) {
    CompensatedStats c;
    RunningStats w;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        c.add(x);
        w.add(x);
    }
    EXPECT_DOUBLE_EQ(c.mean(), 5.0);
    EXPECT_NEAR(c.variance(), w.variance(), 1e-14);
    EXPECT_NEAR(c.sem(), w.sem(), 1e-14);
}

// The adversarial regime the accumulator exists for: a tiny spread riding
// on a huge mean. Power-of-two constants keep {M - d, M, M + d} exactly
// representable (M = 2^30 needs 31 mantissa bits, the offset reaches down
// to 2^-20 — 51 bits total, inside a double's 53), so the exact sample
// variance is d^2 on the nose. A naive sum-of-squares fold loses it
// entirely: M^2 = 2^60 swallows d^2 = 2^-40 by a factor of 2^100. The
// shifted compensated fold must recover it exactly.
TEST(CompensatedStats, AdversarialMagnitudesKeepVariance) {
    const double M = 1073741824.0;            // 2^30
    const double d = 9.5367431640625e-07;     // 2^-20
    CompensatedStats s;
    for (double x : {M - d, M, M + d}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), M);
    EXPECT_DOUBLE_EQ(s.variance(), d * d);
    EXPECT_DOUBLE_EQ(s.sem(), d / std::sqrt(3.0));
}

// Larger adversarial stream with an analytic answer: half the samples at
// M, half at M + d (both exactly representable at M = 2^42, d = 2^-9), so
// the unbiased variance is d^2 * n / (4 * (n - 1)) and the mean M + d/2 —
// both exact in the shifted fold's power-of-two arithmetic.
TEST(CompensatedStats, LargeShiftedAlternatingStream) {
    const double M = 4398046511104.0;  // 2^42
    const double d = 0.001953125;      // 2^-9
    const int n = 4096;
    CompensatedStats s;
    for (int i = 0; i < n; ++i) s.add(M + (i % 2 ? d : 0.0));
    const double expected_var = d * d * n / (4.0 * (n - 1));
    EXPECT_DOUBLE_EQ(s.mean(), M + d / 2.0);
    EXPECT_NEAR(s.variance(), expected_var, 1e-12 * expected_var);
}

// The adaptive MC driver's determinism rests on the fold being a pure
// function of the sample sequence: two accumulators fed the same order
// must agree bit for bit, while a different order may differ (FP addition
// is not associative) — which is exactly why the estimators pin the fold
// to block order.
TEST(CompensatedStats, FoldIsDeterministicGivenOrder) {
    std::vector<double> xs;
    ccap::util::Rng rng(99);
    for (int i = 0; i < 257; ++i) xs.push_back(1e6 + rng.uniform() * 1e-4);
    CompensatedStats a, b;
    for (double x : xs) a.add(x);
    for (double x : xs) b.add(x);
    EXPECT_EQ(a.count(), b.count());
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.sem(), b.sem());
}

TEST(CompensatedStats, VarianceNeverNegative) {
    CompensatedStats s;
    // Identical huge samples: any cancellation residue must clamp to 0.
    for (int i = 0; i < 64; ++i) s.add(3.141592653589793e15);
    EXPECT_GE(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(Histogram, BinsAndEdges) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5U);
    EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
}

TEST(Histogram, CountsAndOverflow) {
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.6);
    h.add(0.7);
    h.add(-1.0);
    h.add(2.0);
    h.add(1.0);  // hi edge counts as overflow (half-open range)
    EXPECT_EQ(h.bin_count(0), 1U);
    EXPECT_EQ(h.bin_count(1), 2U);
    EXPECT_EQ(h.underflow(), 1U);
    EXPECT_EQ(h.overflow(), 2U);
    EXPECT_EQ(h.total(), 6U);
}

TEST(Histogram, BadConstructionThrows) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinCountBoundsChecked) {
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW((void)h.bin_count(2), std::out_of_range);
    EXPECT_THROW((void)h.bin_low(2), std::out_of_range);
}

TEST(FreeFunctions, MeanOf) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(ccap::util::mean_of(xs), 2.0);
    EXPECT_DOUBLE_EQ(ccap::util::mean_of({}), 0.0);
}

TEST(FreeFunctions, Percentile) {
    const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of(xs, 50.0), 2.5);
    EXPECT_THROW((void)ccap::util::percentile_of(xs, 101.0), std::invalid_argument);
    EXPECT_DOUBLE_EQ(ccap::util::percentile_of({}, 50.0), 0.0);
}

}  // namespace
