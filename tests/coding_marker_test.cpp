#include "ccap/coding/marker_code.hpp"

#include <gtest/gtest.h>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::coding;
using ccap::info::DriftParams;
using ccap::info::simulate_drift_channel;
using ccap::util::Rng;

MarkerParams default_params() {
    MarkerParams p;
    p.marker = {0, 0, 1};
    p.period = 5;
    return p;
}

TEST(MarkerCode, ConstructionValidation) {
    MarkerParams p = default_params();
    p.marker.clear();
    EXPECT_THROW(MarkerCode{p}, std::invalid_argument);
    p = default_params();
    p.period = 0;
    EXPECT_THROW(MarkerCode{p}, std::invalid_argument);
    p = default_params();
    p.data_prior_one = 0.0;
    EXPECT_THROW(MarkerCode{p}, std::invalid_argument);
}

TEST(MarkerCode, EncodeLayout) {
    const MarkerCode code(default_params());
    const Bits data = bits_from_string("1111100000");
    // 5 data + marker + 5 data + marker.
    EXPECT_EQ(to_string(code.encode(data)), "11111" "001" "00000" "001");
    EXPECT_EQ(code.encoded_length(10), 16U);
}

TEST(MarkerCode, PartialLastGroupStillGetsMarker) {
    const MarkerCode code(default_params());
    EXPECT_EQ(code.encoded_length(7), 7 + 2 * 3U);
    const Bits data = bits_from_string("1010101");
    EXPECT_EQ(to_string(code.encode(data)), "10101" "001" "01" "001");
}

TEST(MarkerCode, RateAccounting) {
    const MarkerCode code(default_params());
    EXPECT_NEAR(code.rate(10), 10.0 / 16.0, 1e-12);
    EXPECT_DOUBLE_EQ(code.rate(0), 0.0);
}

TEST(MarkerCode, CleanChannelDecodesExactly) {
    const MarkerCode code(default_params());
    const Bits data = random_bits(40, 2);
    const Bits tx = code.encode(data);
    const DriftParams clean{0.0, 0.0, 0.0, 2, 24, 8};
    const auto soft = code.decode_soft(tx, data.size(), clean);
    EXPECT_EQ(soft.hard, data);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(soft.posterior_one[i], data[i], 1e-9);
}

TEST(MarkerCode, TracksSingleDeletion) {
    const MarkerCode code(default_params());
    const Bits data = random_bits(30, 3);
    Bits tx = code.encode(data);
    tx.erase(tx.begin() + 12);  // delete one channel bit
    const DriftParams channel{0.05, 0.0, 0.0, 2, 24, 8};
    const auto soft = code.decode_soft(tx, data.size(), channel);
    // Most data bits should still be decided correctly.
    std::size_t errs = 0;
    for (std::size_t i = 0; i < data.size(); ++i) errs += soft.hard[i] != data[i];
    EXPECT_LE(errs, 3U);
}

TEST(MarkerCode, OuterCodePipelineRecoversUnderIndels) {
    MarkerParams mp;
    mp.marker = {0, 1, 1};
    mp.period = 4;
    const MarkerCode code(mp);
    const ConvolutionalCode outer({0b111, 0b101}, 3);
    const DriftParams channel{0.02, 0.02, 0.0, 2, 32, 8};
    Rng rng(5);

    int exact = 0;
    constexpr int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
        const Bits info = random_bits(48, 300 + trial);
        const Bits tx = code.encode_with_outer(outer, info);
        const Bits rx = simulate_drift_channel(tx, channel, rng);
        const Bits decoded = code.decode_with_outer(outer, rx, info.size(), channel);
        if (decoded == info) ++exact;
    }
    EXPECT_GE(exact, 7) << "marker+viterbi should survive 2% indel rates";
}

TEST(MarkerCode, PosteriorsAreProbabilities) {
    const MarkerCode code(default_params());
    const Bits data = random_bits(25, 6);
    const Bits tx = code.encode(data);
    const DriftParams channel{0.1, 0.1, 0.05, 2, 24, 8};
    Rng rng(7);
    const Bits rx = simulate_drift_channel(tx, channel, rng);
    const auto soft = code.decode_soft(rx, data.size(), channel);
    ASSERT_EQ(soft.posterior_one.size(), data.size());
    for (double p : soft.posterior_one) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(MarkerCode, EmptyData) {
    const MarkerCode code(default_params());
    const Bits tx = code.encode({});
    EXPECT_EQ(tx.size(), code.params().marker.size());
    const DriftParams clean{0.0, 0.0, 0.0, 2, 24, 8};
    const auto soft = code.decode_soft(tx, 0, clean);
    EXPECT_TRUE(soft.hard.empty());
}

}  // namespace
