#include "ccap/sched/mls_system.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::sched;

MlsConfig config(bool feedback, std::size_t len = 400) {
    MlsConfig c;
    c.message_len = len;
    c.use_legal_feedback = feedback;
    return c;
}

TEST(Mls, ConfigValidation) {
    MlsConfig c = config(true);
    c.bits_per_symbol = 0;
    EXPECT_THROW((void)run_mls_exfiltration(make_round_robin(), c, 1), std::invalid_argument);
}

TEST(Mls, FeedbackExfiltrationIsExact) {
    for (int seed = 1; seed <= 3; ++seed) {
        const auto rr = run_mls_exfiltration(make_round_robin(), config(true), seed);
        EXPECT_TRUE(rr.exact) << "round_robin seed " << seed;
        const auto rnd = run_mls_exfiltration(make_random(), config(true), seed);
        EXPECT_TRUE(rnd.exact) << "random seed " << seed;
    }
}

TEST(Mls, WithoutFeedbackRandomSchedulerCorrupts) {
    const auto res = run_mls_exfiltration(make_random(), config(false, 2000), 2);
    EXPECT_FALSE(res.exact);
}

TEST(Mls, FeedbackThroughputNearTheorem3) {
    // Under Bernoulli(1/2) scheduling the alternating-bit protocol needs a
    // High quantum then a Low quantum per symbol: ~0.25 symbols/quantum
    // (q(1-q) of the Fig-1 analysis).
    const auto res = run_mls_exfiltration(make_random(), config(true, 4000), 3);
    EXPECT_TRUE(res.exact);
    EXPECT_NEAR(res.goodput(), 0.25, 0.02);
}

TEST(Mls, RoundRobinFeedbackGoodputIsHalf) {
    const auto res = run_mls_exfiltration(make_round_robin(), config(true, 2000), 4);
    EXPECT_TRUE(res.exact);
    EXPECT_NEAR(res.goodput(), 0.5, 0.02);
}

TEST(Mls, MultiBitSymbolsSurviveFeedbackProtocol) {
    MlsConfig c = config(true, 300);
    c.bits_per_symbol = 8;
    const auto res = run_mls_exfiltration(make_random(), c, 5);
    EXPECT_TRUE(res.exact);
    for (std::uint32_t s : res.exfiltrated) EXPECT_LT(s, 256U);
}

TEST(Mls, GoodputCountsPrefixOnly) {
    MlsResult r;
    r.secret = {1, 0, 1, 1};
    r.exfiltrated = {1, 0, 0, 1};
    r.total_quanta = 8;
    EXPECT_DOUBLE_EQ(r.goodput(), 2.0 / 8.0);
    r.total_quanta = 0;
    EXPECT_DOUBLE_EQ(r.goodput(), 0.0);
}

TEST(MlsPump, StillExactJustSlower) {
    MlsConfig pumped = config(true, 600);
    pumped.pump_min_delay = 4;
    pumped.pump_max_delay = 12;
    const auto res = run_mls_exfiltration(make_random(), pumped, 8);
    EXPECT_TRUE(res.exact);  // the pump delays, it does not corrupt
    const auto plain = run_mls_exfiltration(make_random(), config(true, 600), 8);
    EXPECT_LT(res.goodput(), plain.goodput());
}

TEST(MlsPump, GoodputFallsMonotonicallyWithDelay) {
    double prev = 1.0;
    for (const SimTime delay : {0ULL, 8ULL, 32ULL, 96ULL}) {
        MlsConfig cfg = config(true, 400);
        cfg.pump_min_delay = delay / 2;
        cfg.pump_max_delay = delay;
        const auto res = run_mls_exfiltration(make_random(), cfg, 9);
        EXPECT_TRUE(res.exact) << "delay " << delay;
        EXPECT_LT(res.goodput(), prev + 1e-9) << "delay " << delay;
        prev = res.goodput();
    }
    // A pump with ~1/64 quantum rate throttles the channel hard.
    EXPECT_LT(prev, 0.05);
}

TEST(MlsPump, ApproachesDelayLimitedRate) {
    // With mean delay D >> 1 the protocol needs ~D quanta per symbol.
    MlsConfig cfg = config(true, 300);
    cfg.pump_min_delay = 40;
    cfg.pump_max_delay = 40;
    const auto res = run_mls_exfiltration(make_random(), cfg, 10);
    EXPECT_TRUE(res.exact);
    EXPECT_NEAR(res.goodput(), 1.0 / (40.0 + 4.0), 0.01);
}

TEST(MlsPump, Validation) {
    MlsConfig cfg = config(true, 10);
    cfg.pump_min_delay = 5;
    cfg.pump_max_delay = 2;
    EXPECT_THROW((void)run_mls_exfiltration(make_random(), cfg, 1), std::invalid_argument);
}

TEST(Mls, DeterministicForSeed) {
    const auto a = run_mls_exfiltration(make_random(), config(false, 500), 7);
    const auto b = run_mls_exfiltration(make_random(), config(false, 500), 7);
    EXPECT_EQ(a.exfiltrated, b.exfiltrated);
    EXPECT_EQ(a.total_quanta, b.total_quanta);
}

}  // namespace
