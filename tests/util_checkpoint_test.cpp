// Versioned checkpoint framing (util/checkpoint_io.hpp): bit-exact value
// round trips, typed errors for every corruption mode, atomic file writes —
// and the cooperative shutdown flag (util/signal_flag.hpp) the tracker's
// long-lived CLI mode hangs off.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include "ccap/util/checkpoint_io.hpp"
#include "ccap/util/signal_flag.hpp"

namespace {

using ccap::util::Checkpoint;
using ccap::util::CheckpointError;
using ccap::util::CheckpointIoError;

[[nodiscard]] std::uint64_t bits_of(double v) {
    return std::bit_cast<std::uint64_t>(v);
}

TEST(CheckpointIo, RoundTripIsBitExact) {
    Checkpoint cp;
    cp.set_text("label", "drift run 3, window 2000");
    cp.set_u64("windows", 0xFFFFFFFFFFFFFFFFULL);
    cp.set_double("plain", 0.30000000000000004);
    cp.set_double("neg_zero", -0.0);
    cp.set_double("subnormal", 0x1p-1074);
    cp.set_double("huge", std::numeric_limits<double>::max());
    cp.set_double("inf", std::numeric_limits<double>::infinity());
    cp.set_double("neg_inf", -std::numeric_limits<double>::infinity());

    std::stringstream ss;
    cp.write(ss);
    const Checkpoint back = Checkpoint::read(ss);

    EXPECT_EQ(back.text("label"), "drift run 3, window 2000");
    EXPECT_EQ(back.u64("windows"), 0xFFFFFFFFFFFFFFFFULL);
    EXPECT_EQ(bits_of(back.number("plain")), bits_of(0.30000000000000004));
    EXPECT_EQ(bits_of(back.number("neg_zero")), bits_of(-0.0));
    EXPECT_EQ(bits_of(back.number("subnormal")), bits_of(0x1p-1074));
    EXPECT_EQ(bits_of(back.number("huge")),
              bits_of(std::numeric_limits<double>::max()));
    EXPECT_EQ(back.number("inf"), std::numeric_limits<double>::infinity());
    EXPECT_EQ(back.number("neg_inf"), -std::numeric_limits<double>::infinity());
    EXPECT_EQ(back.size(), cp.size());
}

TEST(CheckpointIo, NanAndDuplicateKeysRejected) {
    Checkpoint cp;
    EXPECT_THROW(cp.set_double("bad", std::nan("")), std::invalid_argument);
    cp.set_u64("k", 1);
    EXPECT_THROW(cp.set_u64("k", 2), std::invalid_argument);
    EXPECT_THROW(cp.set_text("spaced key", "v"), std::invalid_argument);
}

TEST(CheckpointIo, TypedGettersThrowMalformed) {
    Checkpoint cp;
    cp.set_text("word", "not-a-number");
    std::stringstream ss;
    cp.write(ss);
    const Checkpoint back = Checkpoint::read(ss);
    try {
        (void)back.u64("missing");
        FAIL() << "missing key did not throw";
    } catch (const CheckpointIoError& e) {
        EXPECT_EQ(e.kind(), CheckpointError::malformed);
    }
    EXPECT_THROW((void)back.u64("word"), CheckpointIoError);
    EXPECT_THROW((void)back.number("word"), CheckpointIoError);
}

void expect_read_error(const std::string& content, CheckpointError kind) {
    std::istringstream in(content);
    try {
        (void)Checkpoint::read(in);
        FAIL() << "checkpoint parsed: " << content;
    } catch (const CheckpointIoError& e) {
        EXPECT_EQ(e.kind(), kind) << content;
    }
}

TEST(CheckpointIo, CorruptionModesAreTyped) {
    // Fewer field lines than the header declares: a torn write.
    expect_read_error("# ccap-track v1 fields=3\na 1\nb 2\n",
                      CheckpointError::truncated);
    // Another format version.
    expect_read_error("# ccap-track v2 fields=0\n", CheckpointError::version_mismatch);
    // Wrong magic, missing header, bad field lines, duplicate keys.
    expect_read_error("# ccap-trace v1 fields=0\n", CheckpointError::malformed);
    expect_read_error("windows 12\n", CheckpointError::malformed);
    expect_read_error("# ccap-track v1 fields=1\nno_value\n",
                      CheckpointError::malformed);
    expect_read_error("# ccap-track v1 fields=2\nk 1\nk 2\n",
                      CheckpointError::malformed);
}

TEST(CheckpointIo, TrailingLinesTolerated) {
    // Forward compatibility: a newer writer may append fields past the
    // declared count; readers must ignore them.
    std::istringstream in("# ccap-track v1 fields=1\nk 1\nfuture_field 9\n");
    const Checkpoint cp = Checkpoint::read(in);
    EXPECT_EQ(cp.u64("k"), 1U);
    EXPECT_FALSE(cp.has("future_field"));
}

TEST(CheckpointIo, FileRoundTripAndUnreadable) {
    const std::string path =
        testing::TempDir() + "/ccap_checkpoint_test_roundtrip.txt";
    Checkpoint cp;
    cp.set_double("served", 0x1.23456789abcdep-3);
    cp.set_u64("windows", 42);
    cp.write_file(path);
    const Checkpoint back = Checkpoint::read_file(path);
    EXPECT_EQ(bits_of(back.number("served")), bits_of(0x1.23456789abcdep-3));
    EXPECT_EQ(back.u64("windows"), 42U);
    std::remove(path.c_str());
    try {
        (void)Checkpoint::read_file(path);
        FAIL() << "missing file did not throw";
    } catch (const CheckpointIoError& e) {
        EXPECT_EQ(e.kind(), CheckpointError::unreadable);
    }
}

TEST(CheckpointIo, RewriteReplacesAtomically) {
    // write_file goes through a temp + rename; the second write must fully
    // replace the first (no stale trailing fields).
    const std::string path = testing::TempDir() + "/ccap_checkpoint_test_rewrite.txt";
    Checkpoint first;
    first.set_u64("a", 1);
    first.set_u64("b", 2);
    first.write_file(path);
    Checkpoint second;
    second.set_u64("a", 3);
    second.write_file(path);
    const Checkpoint back = Checkpoint::read_file(path);
    EXPECT_EQ(back.size(), 1U);
    EXPECT_EQ(back.u64("a"), 3U);
    std::remove(path.c_str());
}

TEST(SignalFlag, RequestAndResetAndRealSignal) {
    ccap::util::reset_shutdown_flag();
    EXPECT_FALSE(ccap::util::shutdown_requested());
    ccap::util::request_shutdown();
    EXPECT_TRUE(ccap::util::shutdown_requested());
    ccap::util::reset_shutdown_flag();
    EXPECT_FALSE(ccap::util::shutdown_requested());

    // A real SIGTERM through the installed handler sets the flag instead of
    // killing the process — the tracker's graceful-shutdown path.
    ccap::util::install_shutdown_flag();
    std::raise(SIGTERM);
    EXPECT_TRUE(ccap::util::shutdown_requested());
    ccap::util::reset_shutdown_flag();
}

}  // namespace
