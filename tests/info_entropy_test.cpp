#include "ccap/info/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace {

using namespace ccap::info;
using ccap::util::Matrix;

TEST(BinaryEntropy, KnownValues) {
    EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
    EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
    EXPECT_NEAR(binary_entropy(0.11), 0.4999, 5e-4);  // H(0.11) ~ 0.5
}

TEST(BinaryEntropy, Symmetry) {
    for (double p : {0.1, 0.25, 0.4}) EXPECT_DOUBLE_EQ(binary_entropy(p), binary_entropy(1 - p));
}

TEST(BinaryEntropy, OutOfRangeThrows) {
    EXPECT_THROW((void)binary_entropy(-0.01), std::domain_error);
    EXPECT_THROW((void)binary_entropy(1.01), std::domain_error);
}

class BinaryEntropyInverse : public ::testing::TestWithParam<double> {};

TEST_P(BinaryEntropyInverse, RoundTrips) {
    const double p = GetParam();
    EXPECT_NEAR(binary_entropy_inverse(binary_entropy(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BinaryEntropyInverse,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.45, 0.5));

TEST(Entropy, UniformIsLogM) {
    const std::vector<double> p4(4, 0.25);
    EXPECT_NEAR(entropy(p4), 2.0, 1e-12);
    const std::vector<double> p8(8, 0.125);
    EXPECT_NEAR(entropy(p8), 3.0, 1e-12);
}

TEST(Entropy, PointMassIsZero) {
    const std::vector<double> p = {0.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(entropy(p), 0.0);
}

TEST(Entropy, InvalidDistributionThrows) {
    const std::vector<double> not_normalized = {0.5, 0.2};
    EXPECT_THROW((void)entropy(not_normalized), std::domain_error);
    const std::vector<double> negative = {1.5, -0.5};
    EXPECT_THROW((void)entropy(negative), std::domain_error);
}

TEST(KlDivergence, ZeroForIdentical) {
    const std::vector<double> p = {0.3, 0.7};
    EXPECT_DOUBLE_EQ(kl_divergence(p, p), 0.0);
}

TEST(KlDivergence, KnownValue) {
    const std::vector<double> p = {0.5, 0.5};
    const std::vector<double> q = {0.25, 0.75};
    // D = 0.5 log2(2) + 0.5 log2(2/3)
    EXPECT_NEAR(kl_divergence(p, q), 0.5 + 0.5 * std::log2(2.0 / 3.0), 1e-12);
}

TEST(KlDivergence, InfiniteOnSupportMismatch) {
    const std::vector<double> p = {0.5, 0.5};
    const std::vector<double> q = {1.0, 0.0};
    EXPECT_TRUE(std::isinf(kl_divergence(p, q)));
}

TEST(KlDivergence, NonNegative) {
    const std::vector<double> p = {0.2, 0.3, 0.5};
    const std::vector<double> q = {0.4, 0.4, 0.2};
    EXPECT_GE(kl_divergence(p, q), 0.0);
}

TEST(KlDivergence, SizeMismatchThrows) {
    const std::vector<double> p = {1.0};
    const std::vector<double> q = {0.5, 0.5};
    EXPECT_THROW((void)kl_divergence(p, q), std::invalid_argument);
}

TEST(MutualInformation, IndependentIsZero) {
    Matrix joint{{0.25, 0.25}, {0.25, 0.25}};
    EXPECT_NEAR(mutual_information(joint), 0.0, 1e-12);
}

TEST(MutualInformation, PerfectlyCorrelatedIsEntropy) {
    Matrix joint{{0.5, 0.0}, {0.0, 0.5}};
    EXPECT_NEAR(mutual_information(joint), 1.0, 1e-12);
}

TEST(MutualInformation, UnnormalizedJointThrows) {
    Matrix joint{{0.5, 0.5}, {0.5, 0.5}};
    EXPECT_THROW((void)mutual_information(joint), std::domain_error);
}

TEST(MutualInformation, InputChannelForm) {
    // BSC(0.0) with uniform input: I = 1 bit.
    Matrix channel{{1.0, 0.0}, {0.0, 1.0}};
    const std::vector<double> input = {0.5, 0.5};
    EXPECT_NEAR(mutual_information(input, channel), 1.0, 1e-12);
}

TEST(MutualInformation, InputChannelMatchesJointForm) {
    Matrix channel{{0.9, 0.1}, {0.2, 0.8}};
    const std::vector<double> input = {0.3, 0.7};
    Matrix joint(2, 2);
    for (int x = 0; x < 2; ++x)
        for (int y = 0; y < 2; ++y) joint(x, y) = input[x] * channel(x, y);
    EXPECT_NEAR(mutual_information(input, channel), mutual_information(joint), 1e-12);
}

TEST(MutualInformation, NonStochasticChannelThrows) {
    Matrix channel{{0.9, 0.2}, {0.2, 0.8}};
    const std::vector<double> input = {0.5, 0.5};
    EXPECT_THROW((void)mutual_information(input, channel), std::domain_error);
}

TEST(MarySymmetric, PenaltyAndCapacity) {
    // Binary case (m=2) reduces to BSC.
    EXPECT_NEAR(mary_symmetric_capacity(0.11, 2), 1.0 - binary_entropy(0.11), 1e-12);
    // Zero error: capacity = log2 m.
    EXPECT_NEAR(mary_symmetric_capacity(0.0, 16), 4.0, 1e-12);
    // Fully scrambled m-ary channel has zero capacity at p = (m-1)/m.
    EXPECT_NEAR(mary_symmetric_capacity(0.75, 4), 0.0, 1e-12);
}

TEST(MarySymmetric, InvalidM) {
    EXPECT_THROW((void)mary_symmetric_entropy_penalty(0.1, 1), std::invalid_argument);
}

TEST(Xlog2x, Conventions) {
    EXPECT_DOUBLE_EQ(xlog2x(0.0), 0.0);
    EXPECT_DOUBLE_EQ(xlog2x(1.0), 0.0);
    EXPECT_DOUBLE_EQ(xlog2x(2.0), 2.0);
}

}  // namespace
