#include "ccap/estimate/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/estimate/report.hpp"

namespace {

using namespace ccap::estimate;
using ccap::core::DeletionInsertionChannel;
using ccap::core::DiChannelParams;
using Trace = std::vector<std::uint32_t>;

TEST(Severity, Thresholds) {
    EXPECT_EQ(classify_bandwidth(0.0), Severity::negligible);
    EXPECT_EQ(classify_bandwidth(0.09), Severity::negligible);
    EXPECT_EQ(classify_bandwidth(0.1), Severity::marginal);
    EXPECT_EQ(classify_bandwidth(0.99), Severity::marginal);
    EXPECT_EQ(classify_bandwidth(1.0), Severity::significant);
    EXPECT_EQ(classify_bandwidth(99.0), Severity::significant);
    EXPECT_EQ(classify_bandwidth(100.0), Severity::severe);
}

TEST(Severity, Names) {
    EXPECT_STREQ(severity_name(Severity::negligible), "negligible");
    EXPECT_STREQ(severity_name(Severity::severe), "severe");
}

TEST(AnalyzeParams, NoiselessSynchronousChannel) {
    const DiChannelParams p{0.0, 0.0, 0.0, 1};
    const AnalysisReport r = analyze_params(p, 10.0);
    EXPECT_DOUBLE_EQ(r.traditional_bits_per_use, 1.0);
    EXPECT_DOUBLE_EQ(r.degraded_bits_per_use, 1.0);
    EXPECT_DOUBLE_EQ(r.degraded_bits_per_second, 10.0);
    EXPECT_EQ(r.severity, Severity::significant);
}

TEST(AnalyzeParams, DeletionDegradesCapacity) {
    const DiChannelParams p{0.3, 0.0, 0.0, 2};
    const AnalysisReport r = analyze_params(p, 100.0);
    EXPECT_DOUBLE_EQ(r.traditional_bits_per_use, 2.0);
    EXPECT_DOUBLE_EQ(r.degraded_bits_per_use, 1.4);  // 2 * (1 - 0.3)
    EXPECT_DOUBLE_EQ(r.band_bits_per_use.upper, 1.4);
    EXPECT_EQ(r.severity, Severity::severe);  // 140 b/s
}

TEST(AnalyzeParams, SubstitutionLowersTraditionalCapacity) {
    const DiChannelParams p{0.0, 0.0, 0.2, 1};
    const AnalysisReport r = analyze_params(p, 1.0);
    EXPECT_LT(r.traditional_bits_per_use, 1.0);
    EXPECT_GT(r.traditional_bits_per_use, 0.0);
}

TEST(AnalyzeParams, Validation) {
    const DiChannelParams p{0.1, 0.0, 0.0, 1};
    EXPECT_THROW((void)analyze_params(p, 0.0), std::domain_error);
}

TEST(AnalyzeTraces, EndToEndOnSimulatedChannel) {
    const DiChannelParams truth{0.2, 0.05, 0.0, 3};
    DeletionInsertionChannel ch(truth, 11);
    ccap::util::Rng rng(12);
    Trace sent(12000);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(8));
    const auto transduction = ch.transduce(sent);

    AnalyzerConfig cfg;
    cfg.bits_per_symbol = 3;
    cfg.uses_per_second = 50.0;
    const AnalysisReport r = analyze_traces(sent, transduction.output, cfg);

    EXPECT_NEAR(r.params.p_d.value, 0.2, 0.02);
    EXPECT_NEAR(r.params.p_i.value, 0.05, 0.02);
    // Degraded capacity ~ 3 * 0.8 = 2.4 bits/use = 120 b/s -> severe.
    EXPECT_NEAR(r.degraded_bits_per_use, 2.4, 0.1);
    EXPECT_EQ(r.severity, Severity::severe);
    // Band ordering.
    EXPECT_LE(r.band_bits_per_use.lower, r.band_bits_per_use.upper + 1e-12);
}

TEST(AnalyzeTraces, SlowChannelIsNegligible) {
    const Trace sent = {1, 0, 1, 1};
    AnalyzerConfig cfg;
    cfg.uses_per_second = 0.01;  // one use per 100 s
    const AnalysisReport r = analyze_traces(sent, sent, cfg);
    EXPECT_EQ(r.severity, Severity::negligible);
}

TEST(InformalMethod, TsaiGligorFormula) {
    InformalTimings t;
    t.bits_per_transfer = 1.0;
    t.sender_op_seconds = 0.001;
    t.receiver_op_seconds = 0.001;
    t.context_switch_seconds = 0.004;
    // 1 / (0.001 + 0.001 + 2*0.004) = 100 b/s.
    EXPECT_NEAR(informal_bandwidth(t), 100.0, 1e-9);
    // Multi-bit transfers scale linearly.
    t.bits_per_transfer = 8.0;
    EXPECT_NEAR(informal_bandwidth(t), 800.0, 1e-9);
}

TEST(InformalMethod, CorrectionAppliesOnTop) {
    InformalTimings t;
    t.bits_per_transfer = 1.0;
    t.sender_op_seconds = 0.005;
    t.receiver_op_seconds = 0.005;
    const DiChannelParams p{0.25, 0.0, 0.0, 1};
    EXPECT_NEAR(corrected_informal_bandwidth(t, p), informal_bandwidth(t) * 0.75, 1e-9);
}

TEST(InformalMethod, Validation) {
    InformalTimings t;
    t.bits_per_transfer = 0.0;
    t.sender_op_seconds = 0.001;
    EXPECT_THROW((void)informal_bandwidth(t), std::domain_error);
    t.bits_per_transfer = 1.0;
    t.sender_op_seconds = -0.1;
    EXPECT_THROW((void)informal_bandwidth(t), std::domain_error);
    t.sender_op_seconds = 0.0;
    t.receiver_op_seconds = 0.0;
    t.context_switch_seconds = 0.0;
    EXPECT_THROW((void)informal_bandwidth(t), std::domain_error);
}

TEST(InformalMethod, AgreesWithSeverityPipeline) {
    // A channel the informal method rates at ~160 b/s lands in the same
    // severity band the information-theoretic path assigns.
    InformalTimings t;
    t.bits_per_transfer = 2.0;
    t.sender_op_seconds = 0.005;
    t.receiver_op_seconds = 0.0075;
    const DiChannelParams p{0.0, 0.0, 0.0, 2};
    const double informal = corrected_informal_bandwidth(t, p);
    const AnalysisReport report = analyze_params(p, 1.0 / 0.0125);
    EXPECT_NEAR(informal, report.degraded_bits_per_second, 1e-6);
    EXPECT_EQ(classify_bandwidth(informal), report.severity);
}

TEST(Report, RenderContainsKeyNumbers) {
    const DiChannelParams p{0.25, 0.0, 0.0, 1};
    const AnalysisReport r = analyze_params(p, 100.0);
    const std::string text = render_report(r, "unit-test channel");
    EXPECT_NE(text.find("unit-test channel"), std::string::npos);
    EXPECT_NE(text.find("0.2500"), std::string::npos);  // P_d
    EXPECT_NE(text.find("severity"), std::string::npos);
}

TEST(Report, RowFormat) {
    const DiChannelParams p{0.1, 0.05, 0.0, 1};
    const AnalysisReport r = analyze_params(p, 10.0);
    const std::string row = render_row(r);
    // Same number of commas as the header.
    const auto commas = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(row), commas(render_row_header()));
}

}  // namespace
