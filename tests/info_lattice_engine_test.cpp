// Tests for the zero-allocation banded lattice engine (lattice_engine.hpp).
//
// The contract under test has three layers:
//   1. band_eps = 0 is *bit-identical* to the seed DriftHmm implementation
//      (asserted with EXPECT_EQ against a faithful re-implementation of the
//      seed's vector<vector<double>> lattice embedded below);
//   2. band_eps > 0 only lowers the evidence, and the exact-minus-banded
//      error is always within the certified slack (docs/THEORY.md §11);
//   3. reusing one LatticeWorkspace across heterogeneous calls changes
//      nothing — results are bit-identical to fresh-workspace runs, and the
//      Monte-Carlo estimators stay thread-count invariant with per-worker
//      workspaces (the ParallelMc test also runs under TSan in tier1).
#include "ccap/info/lattice_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"

namespace {

using ccap::info::BandedEvidence;
using ccap::info::DriftHmm;
using ccap::info::DriftParams;
using ccap::info::LatticeWorkspace;
using ccap::info::MarkovSource;
using ccap::info::McOptions;
using ccap::util::Matrix;
using ccap::util::Rng;

using Bits = std::vector<std::uint8_t>;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Faithful re-implementation of the pre-engine (seed) lattice: full-band
// vector<vector<double>> rows, identical loop structure and floating-point
// operation order. This is the bit-identity reference.
// ---------------------------------------------------------------------------

struct LegacySlices {
    std::vector<std::vector<double>> rows;
    std::vector<double> log2_scale;
};

struct LegacyLattice {
    const DriftParams& p;
    std::span<const std::uint8_t> rx;
    std::size_t n, m;
    int d_max;
    std::size_t width;
    double inv_m_alpha;
    std::vector<double> ins_pow, emit_tab, trail_pow;

    LegacyLattice(const DriftParams& params, std::span<const std::uint8_t> received,
                  std::size_t tx_len)
        : p(params),
          rx(received),
          n(tx_len),
          m(received.size()),
          d_max(params.max_drift),
          width(static_cast<std::size_t>(2 * params.max_drift + 1)),
          inv_m_alpha(1.0 / static_cast<double>(params.alphabet)) {
        ins_pow.resize(static_cast<std::size_t>(p.max_insert_run) + 1);
        ins_pow[0] = 1.0;
        for (std::size_t g = 1; g < ins_pow.size(); ++g)
            ins_pow[g] = ins_pow[g - 1] * p.p_i * inv_m_alpha;
        const auto m_alpha = static_cast<std::size_t>(p.alphabet);
        const double p_sub = p.p_s / (static_cast<double>(p.alphabet) - 1.0);
        emit_tab.assign(m_alpha * m_alpha, p_sub);
        for (std::size_t s = 0; s < m_alpha; ++s) emit_tab[s * m_alpha + s] = 1.0 - p.p_s;
        trail_pow.resize(m + 1);
        trail_pow[0] = 1.0;
        for (std::size_t k = 1; k <= m; ++k)
            trail_pow[k] = trail_pow[k - 1] * p.p_i * inv_m_alpha;
    }

    [[nodiscard]] std::size_t idx(int d) const { return static_cast<std::size_t>(d + d_max); }
    [[nodiscard]] bool drift_ok(std::size_t j, int d) const {
        if (d < -d_max || d > d_max) return false;
        const long long r = static_cast<long long>(j) + d;
        return r >= 0 && r <= static_cast<long long>(m);
    }
    [[nodiscard]] double emit(std::uint8_t r, std::uint8_t s) const {
        return emit_tab[static_cast<std::size_t>(r) * p.alphabet + s];
    }
    [[nodiscard]] double emit_prior(std::uint8_t r, std::span<const double> q) const {
        const double* row = emit_tab.data() + static_cast<std::size_t>(r) * p.alphabet;
        double e = 0.0;
        for (std::size_t s = 0; s < q.size(); ++s) e += q[s] * row[s];
        return e;
    }
    [[nodiscard]] double trailing(int d) const {
        const long long k = static_cast<long long>(m) - (static_cast<long long>(n) + d);
        if (k < 0) return 0.0;
        return trail_pow[static_cast<std::size_t>(k)] * (1.0 - p.p_i);
    }

    template <typename PriorFn>
    LegacySlices forward(PriorFn&& prior_row) const {
        LegacySlices a;
        a.rows.assign(n + 1, std::vector<double>(width, 0.0));
        a.log2_scale.assign(n + 1, 0.0);
        a.rows[0][idx(0)] = 1.0;
        for (std::size_t j = 1; j <= n; ++j) {
            const auto q = prior_row(j - 1);
            auto& cur = a.rows[j];
            const auto& prev = a.rows[j - 1];
            for (int dp = -d_max; dp <= d_max; ++dp) {
                if (!drift_ok(j - 1, dp)) continue;
                const double ap = prev[idx(dp)];
                if (ap == 0.0) continue;
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                for (int g = 0; g <= p.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!drift_ok(j, d)) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                    if (r1 > m) break;
                    double w = 0.0;
                    w += ins_pow[static_cast<std::size_t>(g)] * p.p_d;
                    if (g >= 1)
                        w += ins_pow[static_cast<std::size_t>(g - 1)] * p.p_t() *
                             emit_prior(rx[r1 - 1], q);
                    cur[idx(d)] += ap * w;
                }
            }
            double norm = 0.0;
            for (double v : cur) norm += v;
            if (norm <= 0.0) {
                a.log2_scale[j] = kNegInf;
                continue;
            }
            for (double& v : cur) v /= norm;
            a.log2_scale[j] = a.log2_scale[j - 1] + std::log2(norm);
        }
        return a;
    }

    template <typename PriorFn>
    LegacySlices backward(PriorFn&& prior_row) const {
        LegacySlices b;
        b.rows.assign(n + 1, std::vector<double>(width, 0.0));
        b.log2_scale.assign(n + 1, 0.0);
        {
            auto& last = b.rows[n];
            double norm = 0.0;
            for (int d = -d_max; d <= d_max; ++d) {
                if (!drift_ok(n, d)) continue;
                last[idx(d)] = trailing(d);
                norm += last[idx(d)];
            }
            if (norm > 0.0) {
                for (double& v : last) v /= norm;
                b.log2_scale[n] = std::log2(norm);
            } else {
                b.log2_scale[n] = kNegInf;
            }
        }
        for (std::size_t j = n; j-- > 0;) {
            const auto q = prior_row(j);
            auto& cur = b.rows[j];
            const auto& next = b.rows[j + 1];
            for (int dp = -d_max; dp <= d_max; ++dp) {
                if (!drift_ok(j, dp)) continue;
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j) + dp);
                double acc = 0.0;
                for (int g = 0; g <= p.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!drift_ok(j + 1, d)) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                    if (r1 > m) break;
                    double w = ins_pow[static_cast<std::size_t>(g)] * p.p_d;
                    if (g >= 1)
                        w += ins_pow[static_cast<std::size_t>(g - 1)] * p.p_t() *
                             emit_prior(rx[r1 - 1], q);
                    acc += w * next[idx(d)];
                }
                cur[idx(dp)] = acc;
            }
            double norm = 0.0;
            for (double v : cur) norm += v;
            if (norm <= 0.0) {
                b.log2_scale[j] = kNegInf;
                continue;
            }
            for (double& v : cur) v /= norm;
            b.log2_scale[j] = b.log2_scale[j + 1] + std::log2(norm);
        }
        return b;
    }
};

double legacy_log2_likelihood(const DriftParams& params, const Bits& tx, const Bits& rx) {
    LegacyLattice lat(params, rx, tx.size());
    std::vector<double> point(params.alphabet, 0.0);
    const auto prior = [&](std::size_t j) -> std::span<const double> {
        std::fill(point.begin(), point.end(), 0.0);
        point[tx[j]] = 1.0;
        return point;
    };
    const LegacySlices a = lat.forward(prior);
    if (a.log2_scale.back() == kNegInf) return kNegInf;
    double tail = 0.0;
    for (int d = -params.max_drift; d <= params.max_drift; ++d)
        if (lat.drift_ok(tx.size(), d)) tail += a.rows.back()[lat.idx(d)] * lat.trailing(d);
    if (tail <= 0.0) return kNegInf;
    return a.log2_scale.back() + std::log2(tail);
}

Matrix legacy_posteriors(const DriftParams& params, const Matrix& priors, const Bits& rx,
                         double* log2_evidence) {
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params.alphabet;
    LegacyLattice lat(params, rx, n);
    const auto prior = [&](std::size_t j) { return priors.row(j); };
    const LegacySlices a = lat.forward(prior);
    const LegacySlices b = lat.backward(prior);

    if (log2_evidence != nullptr) {
        double tail = 0.0;
        for (int d = -params.max_drift; d <= params.max_drift; ++d)
            if (lat.drift_ok(n, d)) tail += a.rows.back()[lat.idx(d)] * lat.trailing(d);
        *log2_evidence = (tail > 0.0 && a.log2_scale.back() != kNegInf)
                             ? a.log2_scale.back() + std::log2(tail)
                             : kNegInf;
    }

    Matrix post(n, m_alpha);
    std::vector<double> w(m_alpha, 0.0);
    for (std::size_t j = 1; j <= n; ++j) {
        std::fill(w.begin(), w.end(), 0.0);
        double w_del = 0.0;
        for (int dp = -params.max_drift; dp <= params.max_drift; ++dp) {
            if (!lat.drift_ok(j - 1, dp)) continue;
            const double ap = a.rows[j - 1][lat.idx(dp)];
            if (ap == 0.0) continue;
            const std::size_t r0 =
                static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            for (int g = 0; g <= params.max_insert_run; ++g) {
                const int d = dp + g - 1;
                if (!lat.drift_ok(j, d)) continue;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                if (r1 > lat.m) break;
                const double beta = b.rows[j][lat.idx(d)];
                if (beta == 0.0) continue;
                w_del += ap * lat.ins_pow[static_cast<std::size_t>(g)] * params.p_d * beta;
                if (g >= 1) {
                    const double base = ap * lat.ins_pow[static_cast<std::size_t>(g - 1)] *
                                        params.p_t() * beta;
                    const std::uint8_t r = rx[r1 - 1];
                    for (unsigned s = 0; s < m_alpha; ++s)
                        w[s] += base * lat.emit(r, static_cast<std::uint8_t>(s));
                }
            }
        }
        double norm = 0.0;
        for (unsigned s = 0; s < m_alpha; ++s) {
            const double v = priors(j - 1, s) * (w[s] + w_del);
            post(j - 1, s) = v;
            norm += v;
        }
        if (norm > 0.0) {
            for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) /= norm;
        } else {
            for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) = priors(j - 1, s);
        }
    }
    return post;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

Bits random_symbols(std::size_t len, unsigned alphabet, Rng& rng) {
    Bits out(len);
    for (auto& s : out) s = static_cast<std::uint8_t>(rng.uniform_below(alphabet));
    return out;
}

Matrix random_priors(std::size_t rows, unsigned alphabet, Rng& rng) {
    Matrix m(rows, alphabet);
    for (std::size_t j = 0; j < rows; ++j) {
        double sum = 0.0;
        for (unsigned s = 0; s < alphabet; ++s) {
            m(j, s) = 0.05 + rng.uniform();
            sum += m(j, s);
        }
        for (unsigned s = 0; s < alphabet; ++s) m(j, s) /= sum;
    }
    return m;
}

// ---------------------------------------------------------------------------
// band_eps parameter validation
// ---------------------------------------------------------------------------

TEST(LatticeEngine, BandEpsValidation) {
    DriftParams p{0.05, 0.05, 0.01, 2, 16, 8};
    EXPECT_NO_THROW(p.validate());
    p.band_eps = 0.5;
    EXPECT_NO_THROW(p.validate());
    p.band_eps = -1e-9;
    EXPECT_THROW(p.validate(), std::domain_error);
    p.band_eps = 1.0;
    EXPECT_THROW(p.validate(), std::domain_error);
    p.band_eps = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(p.validate(), std::domain_error);
}

// ---------------------------------------------------------------------------
// Exact-mode (band_eps = 0) bit-identity against the seed implementation
// ---------------------------------------------------------------------------

TEST(LatticeEngine, ExactModeBitIdenticalToLegacyLikelihood) {
    Rng rng(20250805);
    for (const double pd : {0.0, 0.02, 0.1}) {
        for (const double pi : {0.0, 0.03, 0.08}) {
            DriftParams p{pd, pi, 0.02, 2, 12, 6};
            const DriftHmm hmm(p);
            for (int rep = 0; rep < 4; ++rep) {
                const Bits tx = random_symbols(48, p.alphabet, rng);
                const Bits rx = ccap::info::simulate_drift_channel(tx, p, rng);
                const double legacy = legacy_log2_likelihood(p, tx, rx);
                const double fresh = hmm.log2_likelihood(tx, rx);
                // EXPECT_EQ on doubles is exact binary equality — that is
                // the contract, not an approximation.
                EXPECT_EQ(legacy, fresh)
                    << "pd=" << pd << " pi=" << pi << " rep=" << rep;
            }
        }
    }
}

TEST(LatticeEngine, ExactModeBitIdenticalToLegacyPosteriors) {
    Rng rng(424242);
    DriftParams p{0.06, 0.04, 0.03, 4, 10, 6};
    const DriftHmm hmm(p);
    for (int rep = 0; rep < 3; ++rep) {
        const Bits tx = random_symbols(32, p.alphabet, rng);
        const Bits rx = ccap::info::simulate_drift_channel(tx, p, rng);
        const Matrix priors = random_priors(tx.size(), p.alphabet, rng);

        double legacy_ev = 0.0, fresh_ev = 0.0;
        const Matrix legacy = legacy_posteriors(p, priors, rx, &legacy_ev);
        const Matrix fresh = hmm.posteriors(priors, rx, &fresh_ev);

        EXPECT_EQ(legacy_ev, fresh_ev);
        ASSERT_EQ(legacy.rows(), fresh.rows());
        ASSERT_EQ(legacy.cols(), fresh.cols());
        for (std::size_t j = 0; j < legacy.rows(); ++j)
            for (std::size_t s = 0; s < legacy.cols(); ++s)
                EXPECT_EQ(legacy(j, s), fresh(j, s)) << "j=" << j << " s=" << s;
    }
}

TEST(LatticeEngine, DeadLatticeStaysDeadAndBitIdentical) {
    // Clean channel + mismatched received: unreachable within truncations.
    DriftParams p{0.0, 0.0, 0.0, 2, 8, 4};
    const DriftHmm hmm(p);
    const Bits tx = {0, 1, 1, 0};
    const Bits rx = {0, 0, 1, 0};
    EXPECT_EQ(legacy_log2_likelihood(p, tx, rx), hmm.log2_likelihood(tx, rx));
    EXPECT_TRUE(std::isinf(hmm.log2_likelihood(tx, rx)));

    // Posteriors on a dead lattice fall back to the priors, as in the seed.
    Rng rng(7);
    const Matrix priors = random_priors(tx.size(), p.alphabet, rng);
    double legacy_ev = 0.0, fresh_ev = 0.0;
    const Matrix legacy = legacy_posteriors(p, priors, rx, &legacy_ev);
    const Matrix fresh = hmm.posteriors(priors, rx, &fresh_ev);
    EXPECT_EQ(legacy_ev, fresh_ev);
    for (std::size_t j = 0; j < legacy.rows(); ++j)
        for (std::size_t s = 0; s < legacy.cols(); ++s)
            EXPECT_EQ(legacy(j, s), fresh(j, s));
}

// ---------------------------------------------------------------------------
// Banded mode: evidence only drops, and the drop is within certified slack
// ---------------------------------------------------------------------------

TEST(LatticeEngine, BandedErrorWithinCertifiedSlack) {
    Rng rng(99173);
    // Headroom for the slack comparison itself: the bound is proved for
    // exact arithmetic; accumulated rounding in the comparison needs a few
    // ulps of grace, far below any meaningful violation.
    constexpr double kFpSlop = 1e-6;
    for (const double pd : {0.01, 0.05, 0.15}) {
        for (const double pi : {0.01, 0.05, 0.15}) {
            DriftParams exact_p{pd, pi, 0.02, 2, 16, 8};
            const DriftHmm exact_hmm(exact_p);
            const Bits tx = random_symbols(96, exact_p.alphabet, rng);
            const Bits rx = ccap::info::simulate_drift_channel(tx, exact_p, rng);
            const double exact = exact_hmm.log2_likelihood(tx, rx);
            ASSERT_TRUE(std::isfinite(exact));

            for (const double eps : {1e-12, 1e-8, 1e-4}) {
                DriftParams banded_p = exact_p;
                banded_p.band_eps = eps;
                const DriftHmm banded_hmm(banded_p);
                ccap::info::ScopedWorkspace ws;
                const BandedEvidence ev = banded_hmm.log2_likelihood_banded(tx, rx, ws);
                ASSERT_TRUE(std::isfinite(ev.log2_evidence))
                    << "pd=" << pd << " pi=" << pi << " eps=" << eps;
                // Pruning only removes probability mass: banded <= exact.
                EXPECT_LE(ev.log2_evidence, exact + kFpSlop);
                // ... and the loss is certified.
                EXPECT_GE(ev.log2_slack, 0.0);
                EXPECT_LE(exact - ev.log2_evidence, ev.log2_slack + kFpSlop)
                    << "pd=" << pd << " pi=" << pi << " eps=" << eps;
            }
        }
    }
}

TEST(LatticeEngine, ZeroEpsBandedEvidenceHasZeroSlack) {
    Rng rng(31337);
    DriftParams p{0.05, 0.05, 0.01, 2, 16, 8};
    const DriftHmm hmm(p);
    const Bits tx = random_symbols(64, p.alphabet, rng);
    const Bits rx = ccap::info::simulate_drift_channel(tx, p, rng);
    ccap::info::ScopedWorkspace ws;
    const BandedEvidence ev = hmm.log2_likelihood_banded(tx, rx, ws);
    EXPECT_EQ(ev.log2_slack, 0.0);
    EXPECT_EQ(ev.log2_evidence, hmm.log2_likelihood(tx, rx));
}

TEST(LatticeEngine, BandedMarkovMarginalWithinSlack) {
    Rng rng(5150);
    DriftParams exact_p{0.05, 0.03, 0.01, 2, 16, 8};
    const MarkovSource source = MarkovSource::binary_repeat(0.8);
    const DriftHmm exact_hmm(exact_p);
    const Bits tx = random_symbols(64, exact_p.alphabet, rng);
    const Bits rx = ccap::info::simulate_drift_channel(tx, exact_p, rng);
    const double exact = exact_hmm.log2_markov_marginal(source, tx.size(), rx);
    ASSERT_TRUE(std::isfinite(exact));

    for (const double eps : {1e-12, 1e-6}) {
        DriftParams banded_p = exact_p;
        banded_p.band_eps = eps;
        const DriftHmm banded_hmm(banded_p);
        ccap::info::ScopedWorkspace ws;
        const BandedEvidence ev =
            banded_hmm.log2_markov_marginal_banded(source, tx.size(), rx, ws);
        ASSERT_TRUE(std::isfinite(ev.log2_evidence));
        EXPECT_LE(ev.log2_evidence, exact + 1e-6);
        EXPECT_LE(exact - ev.log2_evidence, ev.log2_slack + 1e-6) << "eps=" << eps;
    }
}

// ---------------------------------------------------------------------------
// Workspace reuse: one arena across heterogeneous calls, bit-identical
// ---------------------------------------------------------------------------

TEST(LatticeEngine, WorkspaceReuseIsBitIdentical) {
    Rng rng(8086);
    DriftParams p{0.05, 0.04, 0.02, 2, 12, 6};
    const DriftHmm hmm(p);
    const MarkovSource source = MarkovSource::binary_repeat(0.7);

    // Two different problem sizes so the shared workspace is exercised both
    // growing and shrinking between calls (stale high-water cells must never
    // leak into a smaller problem).
    const Bits tx_a = random_symbols(40, p.alphabet, rng);
    const Bits rx_a = ccap::info::simulate_drift_channel(tx_a, p, rng);
    const Bits tx_b = random_symbols(24, p.alphabet, rng);
    const Bits rx_b = ccap::info::simulate_drift_channel(tx_b, p, rng);
    const Matrix priors_a = random_priors(tx_a.size(), p.alphabet, rng);
    const Matrix priors_b = random_priors(tx_b.size(), p.alphabet, rng);
    const std::vector<Bits> candidates = {{0, 0, 0, 0}, {0, 1, 0, 1}, {1, 1, 1, 1}};
    const DriftHmm::CandidateFn cand_fn = [&](std::size_t) {
        return std::span<const Bits>(candidates);
    };

    // Reference: every call on its own fresh workspace.
    const auto fresh = [&] {
        struct Out {
            double lik_a, lik_b, markov_b;
            Matrix post_a{0, 0}, seg_b{0, 0};
            DriftHmm::EventExpectations ev_a;
        } out{};
        {
            LatticeWorkspace ws;
            out.lik_a = hmm.log2_likelihood(tx_a, rx_a, ws);
        }
        {
            LatticeWorkspace ws;
            out.post_a = hmm.posteriors(priors_a, rx_a, ws);
        }
        {
            LatticeWorkspace ws;
            out.ev_a = hmm.expected_events(tx_a, rx_a, ws);
        }
        {
            LatticeWorkspace ws;
            out.lik_b = hmm.log2_likelihood(tx_b, rx_b, ws);
        }
        {
            LatticeWorkspace ws;
            out.seg_b = hmm.segment_likelihoods(priors_b, rx_b, 4, candidates.size(),
                                                cand_fn, ws);
        }
        {
            LatticeWorkspace ws;
            out.markov_b = hmm.log2_markov_marginal(source, tx_b.size(), rx_b, ws);
        }
        return out;
    }();

    // Same sequence of calls through ONE shared workspace, twice over.
    LatticeWorkspace shared;
    for (int round = 0; round < 2; ++round) {
        EXPECT_EQ(fresh.lik_a, hmm.log2_likelihood(tx_a, rx_a, shared)) << round;
        const Matrix post_a = hmm.posteriors(priors_a, rx_a, shared);
        for (std::size_t j = 0; j < post_a.rows(); ++j)
            for (std::size_t s = 0; s < post_a.cols(); ++s)
                EXPECT_EQ(fresh.post_a(j, s), post_a(j, s));
        const auto ev_a = hmm.expected_events(tx_a, rx_a, shared);
        EXPECT_EQ(fresh.ev_a.deletions, ev_a.deletions);
        EXPECT_EQ(fresh.ev_a.insertions, ev_a.insertions);
        EXPECT_EQ(fresh.ev_a.transmissions, ev_a.transmissions);
        EXPECT_EQ(fresh.ev_a.substitutions, ev_a.substitutions);
        EXPECT_EQ(fresh.ev_a.log2_likelihood, ev_a.log2_likelihood);
        EXPECT_EQ(fresh.lik_b, hmm.log2_likelihood(tx_b, rx_b, shared)) << round;
        const Matrix seg_b =
            hmm.segment_likelihoods(priors_b, rx_b, 4, candidates.size(), cand_fn, shared);
        for (std::size_t t = 0; t < seg_b.rows(); ++t)
            for (std::size_t c = 0; c < seg_b.cols(); ++c)
                EXPECT_EQ(fresh.seg_b(t, c), seg_b(t, c));
        EXPECT_EQ(fresh.markov_b, hmm.log2_markov_marginal(source, tx_b.size(), rx_b, shared))
            << round;
    }
}

// ---------------------------------------------------------------------------
// Per-worker workspaces in the Monte-Carlo estimators: thread-count
// invariance with banding on. Named ParallelMc* so tier1's TSan stage
// (ctest -R 'ThreadPool|ParallelFor|ParallelReduce|ParallelMc') runs it.
// ---------------------------------------------------------------------------

TEST(ParallelMcWorkspace, BandedIidEstimateInvariantInThreadCount) {
    DriftParams p{0.05, 0.03, 0.01, 2, 16, 8};
    McOptions opts;
    opts.block_len = 48;
    opts.num_blocks = 12;
    opts.band_eps = 1e-8;

    opts.threads = 1;
    Rng rng_serial(2026);
    const auto serial = ccap::info::iid_mutual_information_rate(p, opts, rng_serial);

    opts.threads = 8;
    Rng rng_parallel(2026);
    const auto parallel = ccap::info::iid_mutual_information_rate(p, opts, rng_parallel);

    EXPECT_EQ(serial.rate, parallel.rate);
    EXPECT_EQ(serial.sem, parallel.sem);
    EXPECT_EQ(serial.blocks, parallel.blocks);
}

TEST(ParallelMcWorkspace, BandedMarkovEstimateInvariantInThreadCount) {
    DriftParams p{0.04, 0.02, 0.0, 2, 16, 8};
    const MarkovSource source = MarkovSource::binary_repeat(0.8);
    McOptions opts;
    opts.block_len = 32;
    opts.num_blocks = 8;
    opts.band_eps = 1e-10;

    opts.threads = 1;
    Rng rng_serial(11);
    const auto serial = ccap::info::markov_mutual_information_rate(p, source, opts, rng_serial);

    opts.threads = 8;
    Rng rng_parallel(11);
    const auto parallel =
        ccap::info::markov_mutual_information_rate(p, source, opts, rng_parallel);

    EXPECT_EQ(serial.rate, parallel.rate);
    EXPECT_EQ(serial.sem, parallel.sem);
}

}  // namespace
