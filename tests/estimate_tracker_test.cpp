// Online capacity tracker (estimate/capacity_tracker.hpp): null-profile
// streams reproduce the offline batch estimate bit for bit, outputs are
// invariant in the prefetch thread count (the TSan-gated TrackerParallel
// suite), checkpoints resume bit-identically, drift triggers resync, AIMD
// backs the served rate off, and pathological inputs degrade explicitly
// without ever leaking a NaN.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "ccap/core/stream_source.hpp"
#include "ccap/estimate/capacity_tracker.hpp"
#include "ccap/estimate/param_estimator.hpp"
#include "ccap/util/checkpoint_io.hpp"

namespace {

using ccap::core::FaultProfile;
using ccap::core::FaultStreamSource;
using ccap::core::StreamChunk;
using ccap::estimate::CapacityTracker;
using ccap::estimate::TraceChunkSource;
using ccap::estimate::TrackerConfig;
using ccap::estimate::TrackerStatus;
using ccap::estimate::TrackerUpdate;

/// Small-MC tracker config shared by the suite: coarse grid, cheap nodes.
TrackerConfig small_config() {
    TrackerConfig tc;
    tc.window_len = 1500;
    tc.cache.grid.pd_step = 0.05;
    tc.cache.grid.pi_step = 0.05;
    tc.cache.base.alphabet = 2;
    tc.cache.mc.block_len = 32;
    tc.cache.mc.num_blocks = 6;
    return tc;
}

FaultStreamSource::Config source_config(double pd, FaultProfile profile,
                                        std::size_t window_len,
                                        std::uint64_t windows, std::uint64_t seed) {
    FaultStreamSource::Config sc;
    sc.params.p_d = pd;
    sc.params.bits_per_symbol = 1;
    sc.profile = std::move(profile);
    sc.window_len = window_len;
    sc.windows = windows;
    sc.seed = seed;
    return sc;
}

/// The no-NaN contract: every double field of every update is finite.
void expect_all_finite(const TrackerUpdate& u) {
    EXPECT_TRUE(std::isfinite(u.p_d)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.p_i)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.p_s)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.window_capacity)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.window_sem)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.capacity)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.sem)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.bound)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.trend_slope)) << "window " << u.window;
    EXPECT_TRUE(std::isfinite(u.served_rate)) << "window " << u.window;
}

TEST(TrackerConfigTest, ValidationRejectsBadKnobs) {
    TrackerConfig tc = small_config();
    tc.smoothing = 0.0;
    EXPECT_THROW(tc.validate(), std::domain_error);
    tc = small_config();
    tc.smoothing = std::nan("");
    EXPECT_THROW(tc.validate(), std::domain_error);
    tc = small_config();
    tc.trend_window = 2;
    EXPECT_THROW(tc.validate(), std::invalid_argument);
    tc = small_config();
    tc.aimd_beta = 1.0;
    EXPECT_THROW(tc.validate(), std::domain_error);
    tc = small_config();
    tc.window_len = 0;
    EXPECT_THROW(tc.validate(), std::invalid_argument);
    EXPECT_NO_THROW(small_config().validate());
}

TEST(TrackerConfigTest, FingerprintSeparatesOutputAffectingKnobs) {
    const TrackerConfig base = small_config();
    TrackerConfig other = small_config();
    other.smoothing = 0.5;
    EXPECT_NE(base.fingerprint(), other.fingerprint());
    other = small_config();
    other.cache.grid.pd_step = 0.01;
    EXPECT_NE(base.fingerprint(), other.fingerprint());
    // Perf knobs must NOT change the fingerprint: a checkpoint taken at one
    // thread count resumes at another.
    other = small_config();
    other.threads = 8;
    other.prefetch = 4;
    other.cache.shards = 64;
    other.cache.enabled = false;
    EXPECT_EQ(base.fingerprint(), other.fingerprint());
}

TEST(TrackerStatusTest, Names) {
    EXPECT_STREQ(ccap::estimate::tracker_status_name(TrackerStatus::warmup), "warmup");
    EXPECT_STREQ(ccap::estimate::tracker_status_name(TrackerStatus::tracking),
                 "tracking");
    EXPECT_STREQ(ccap::estimate::tracker_status_name(TrackerStatus::drifting),
                 "drifting");
    EXPECT_STREQ(ccap::estimate::tracker_status_name(TrackerStatus::resync), "resync");
    EXPECT_STREQ(ccap::estimate::tracker_status_name(TrackerStatus::degraded),
                 "degraded");
}

// The acceptance anchor: a stationary (null-profile) stream must reproduce
// the offline batch estimate *bit for bit* — same parameter node, same
// Monte-Carlo machinery, and an EWMA pinned to a constant.
TEST(TrackerTest, NullProfileReproducesBatchEstimate) {
    const TrackerConfig tc = small_config();
    FaultStreamSource src(source_config(0.2, FaultProfile{}, tc.window_len, 6, 7));

    std::vector<StreamChunk> chunks;
    std::vector<std::uint32_t> all_sent, all_received;
    while (auto c = src.next()) {
        all_sent.insert(all_sent.end(), c->sent.begin(), c->sent.end());
        all_received.insert(all_received.end(), c->received.begin(),
                            c->received.end());
        chunks.push_back(std::move(*c));
    }
    ASSERT_EQ(chunks.size(), 6U);

    CapacityTracker tracker(tc);
    std::vector<TrackerUpdate> updates;
    for (const auto& c : chunks) updates.push_back(tracker.ingest(c));

    // Offline batch estimate over the concatenated trace, evaluated through
    // the same cache (node purity makes this the bit-exact comparison).
    const ccap::estimate::ParamEstimate batch =
        ccap::estimate::estimate_params(all_sent, all_received);
    const auto key = tracker.cache().quantize(batch.p_d.value, batch.p_i.value);
    const auto mi = tracker.cache().at(key);

    for (const TrackerUpdate& u : updates) {
        expect_all_finite(u);
        EXPECT_NE(u.status, TrackerStatus::degraded);
        // Every window lands on the batch node, so the windowed capacity IS
        // the batch capacity and the EWMA holds it exactly.
        EXPECT_EQ(u.window_capacity, mi.rate) << "window " << u.window;
        EXPECT_EQ(u.capacity, mi.rate) << "window " << u.window;
        EXPECT_EQ(u.resyncs, 0U);
    }
    EXPECT_EQ(tracker.last().capacity, mi.rate);
}

// TSan-gated (tier1.sh runs this suite under ThreadSanitizer): concurrent
// prefetch warm-up at 8 threads must race-free reproduce the 1-thread
// output stream bit for bit.
TEST(TrackerParallel, ThreadInvariantUnderPrefetch) {
    auto run = [](unsigned threads) {
        TrackerConfig tc = small_config();
        tc.window_len = 1000;
        tc.cache.grid.pd_step = 0.02;
        tc.cache.grid.pi_step = 0.02;
        tc.cache.mc.block_len = 24;
        tc.cache.mc.num_blocks = 4;
        tc.prefetch = 4;
        tc.threads = threads;
        CapacityTracker tracker(tc);
        FaultStreamSource src(
            source_config(0.1, FaultProfile::drifting(0.4, 4000), 1000, 10, 21));
        std::vector<TrackerUpdate> updates;
        while (auto c = src.next()) updates.push_back(tracker.ingest(*c));
        return updates;
    };
    const std::vector<TrackerUpdate> serial = run(1);
    const std::vector<TrackerUpdate> parallel = run(8);
    ASSERT_EQ(serial.size(), 10U);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i] == parallel[i]) << "window " << i;
}

// Checkpoint at window 6 of 12, rebuild a tracker from the serialized text,
// replay the source cursor — the resumed half must be bit-identical.
TEST(TrackerTest, CheckpointResumeIsBitIdentical) {
    TrackerConfig tc = small_config();
    tc.window_len = 1000;
    const auto sc = source_config(0.15, FaultProfile::drifting(0.3, 6000), 1000, 12, 33);

    CapacityTracker full(tc);
    FaultStreamSource full_src(sc);
    std::vector<TrackerUpdate> full_updates;
    ccap::util::Checkpoint mid;
    while (auto c = full_src.next()) {
        full_updates.push_back(full.ingest(*c));
        if (full.windows() == 6) mid = full.checkpoint();
    }
    ASSERT_EQ(full_updates.size(), 12U);

    // Serialize through text — the same bytes a --checkpoint file holds.
    std::stringstream ss;
    mid.write(ss);
    const ccap::util::Checkpoint loaded = ccap::util::Checkpoint::read(ss);

    CapacityTracker resumed = CapacityTracker::resume(tc, loaded);
    EXPECT_EQ(resumed.windows(), 6U);
    FaultStreamSource resumed_src(sc);
    resumed_src.skip(6);
    std::vector<TrackerUpdate> tail;
    while (auto c = resumed_src.next()) tail.push_back(resumed.ingest(*c));
    ASSERT_EQ(tail.size(), 6U);
    for (std::size_t i = 0; i < tail.size(); ++i)
        EXPECT_TRUE(tail[i] == full_updates[6 + i]) << "window " << (6 + i);
}

TEST(TrackerTest, ResumeRejectsMismatchedConfig) {
    const CapacityTracker tracker(small_config());
    const ccap::util::Checkpoint cp = tracker.checkpoint();
    TrackerConfig other = small_config();
    other.window_len = 999;
    try {
        (void)CapacityTracker::resume(other, cp);
        FAIL() << "fingerprint mismatch did not throw";
    } catch (const ccap::util::CheckpointIoError& e) {
        EXPECT_EQ(e.kind(), ccap::util::CheckpointError::malformed);
    }
    // Same config resumes fine.
    EXPECT_NO_THROW((void)CapacityTracker::resume(small_config(), cp));
}

TEST(TrackerTest, ResumeRejectsMissingStateField) {
    ccap::util::Checkpoint cp;
    cp.set_u64("fingerprint", small_config().fingerprint());
    EXPECT_THROW((void)CapacityTracker::resume(small_config(), cp),
                 ccap::util::CheckpointIoError);
}

// A fast hard swing in P_d must trigger drift detection and at least one
// change-point resync; the resync window re-pins the smoothed estimate to
// the window node exactly.
TEST(TrackerTest, DriftTriggersResyncAndRepins) {
    TrackerConfig tc = small_config();
    tc.window_len = 1000;
    tc.trend_window = 4;
    tc.drift_slope = 0.01;
    tc.drift_sustain = 2;
    CapacityTracker tracker(tc);
    FaultStreamSource src(
        source_config(0.1, FaultProfile::drifting(0.5, 8000), 1000, 16, 5));
    bool saw_drift_or_resync = false;
    std::uint64_t resyncs = 0;
    while (auto c = src.next()) {
        const TrackerUpdate u = tracker.ingest(*c);
        expect_all_finite(u);
        if (u.status == TrackerStatus::drifting || u.status == TrackerStatus::resync)
            saw_drift_or_resync = true;
        if (u.status == TrackerStatus::resync) {
            // The reset discards the stale EWMA: smoothed == window node.
            EXPECT_EQ(u.capacity, u.window_capacity);
        }
        resyncs = u.resyncs;
    }
    EXPECT_TRUE(saw_drift_or_resync);
    EXPECT_GT(resyncs, 0U);
}

TEST(TrackerTest, AimdRampsUpAndBacksOffMultiplicatively) {
    TrackerConfig tc = small_config();
    CapacityTracker tracker(tc);
    FaultStreamSource src(source_config(0.2, FaultProfile{}, tc.window_len, 8, 11));
    double prev_served = 0.0;
    TrackerUpdate u;
    while (auto c = src.next()) {
        u = tracker.ingest(*c);
        // Stationary stream: additive ramp toward headroom * capacity,
        // never past it.
        EXPECT_GE(u.served_rate, prev_served);
        EXPECT_LE(u.served_rate, tc.headroom * u.capacity + 1e-12);
        prev_served = u.served_rate;
    }
    // A blind window backs off by exactly beta.
    const double before = u.served_rate;
    const TrackerUpdate degraded = tracker.ingest(StreamChunk{});
    EXPECT_EQ(degraded.status, TrackerStatus::degraded);
    EXPECT_DOUBLE_EQ(degraded.served_rate, before * tc.aimd_beta);
}

TEST(TrackerPathological, EmptyWindowDegradesExplicitly) {
    CapacityTracker tracker(small_config());
    StreamChunk empty;
    const TrackerUpdate u = tracker.ingest(empty);
    EXPECT_EQ(u.status, TrackerStatus::degraded);
    EXPECT_EQ(u.stale_windows, 1U);
    EXPECT_FALSE(u.converged);
    expect_all_finite(u);
    // Repeats accumulate the stale count — the staleness is visible, not
    // silently absorbed.
    const TrackerUpdate v = tracker.ingest(empty);
    EXPECT_EQ(v.stale_windows, 2U);
}

TEST(TrackerPathological, AllDeletedWindowDegrades) {
    CapacityTracker tracker(small_config());
    StreamChunk chunk;
    chunk.sent.assign(1000, 1U);
    // Receiver saw nothing: P_d estimates to 1, far outside the tracked
    // grid — must degrade, not clamp to the edge node.
    const TrackerUpdate u = tracker.ingest(chunk);
    EXPECT_EQ(u.status, TrackerStatus::degraded);
    EXPECT_NEAR(u.p_d, 1.0, 1e-12);
    expect_all_finite(u);
}

TEST(TrackerPathological, InsertionFloodDegrades) {
    CapacityTracker tracker(small_config());
    StreamChunk chunk;
    chunk.sent.assign(200, 0U);
    // Received is a flood of unmatched symbols: P_i lands far beyond the
    // grid's pi_max.
    chunk.received.assign(4000, 1U);
    const TrackerUpdate u = tracker.ingest(chunk);
    EXPECT_EQ(u.status, TrackerStatus::degraded);
    expect_all_finite(u);
}

TEST(TrackerPathological, DegradedHoldsLastGoodEstimateThenRecovers) {
    const TrackerConfig tc = small_config();
    CapacityTracker tracker(tc);
    FaultStreamSource src(source_config(0.2, FaultProfile{}, tc.window_len, 4, 17));
    TrackerUpdate good;
    std::vector<StreamChunk> replay;
    while (auto c = src.next()) {
        replay.push_back(*c);
        good = tracker.ingest(*c);
    }
    const TrackerUpdate stale = tracker.ingest(StreamChunk{});
    EXPECT_EQ(stale.status, TrackerStatus::degraded);
    // The smoothed capacity is held, flagged stale — not zeroed, not NaN.
    EXPECT_EQ(stale.capacity, good.capacity);
    EXPECT_EQ(stale.stale_windows, 1U);
    // A good window clears the staleness.
    const TrackerUpdate back = tracker.ingest(replay.front());
    EXPECT_NE(back.status, TrackerStatus::degraded);
    EXPECT_EQ(back.stale_windows, 0U);
    expect_all_finite(back);
}

TEST(TrackerPathological, ZeroLengthStreamEndsImmediately) {
    TraceChunkSource source({}, {}, 500);
    EXPECT_FALSE(source.next().has_value());
    EXPECT_THROW(TraceChunkSource({}, {}, 0), std::invalid_argument);
}

// The trace source must carve without losing symbols: chunk sent/received
// concatenations reproduce the full trace (the last window absorbs the
// tail of the received stream).
TEST(TraceChunkSourceTest, CarvingIsLossless) {
    FaultStreamSource src(source_config(0.15, FaultProfile{}, 1700, 3, 13));
    std::vector<std::uint32_t> all_sent, all_received;
    while (auto c = src.next()) {
        all_sent.insert(all_sent.end(), c->sent.begin(), c->sent.end());
        all_received.insert(all_received.end(), c->received.begin(),
                            c->received.end());
    }
    TraceChunkSource trace(all_sent, all_received, 600);
    std::vector<std::uint32_t> got_sent, got_received;
    std::uint64_t index = 0;
    while (auto c = trace.next()) {
        EXPECT_EQ(c->index, index++);
        EXPECT_LE(c->sent.size(), 600U);
        got_sent.insert(got_sent.end(), c->sent.begin(), c->sent.end());
        got_received.insert(got_received.end(), c->received.begin(),
                            c->received.end());
    }
    EXPECT_EQ(got_sent, all_sent);
    EXPECT_EQ(got_received, all_received);
}

}  // namespace
