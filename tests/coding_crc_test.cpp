#include "ccap/coding/crc.hpp"

#include <gtest/gtest.h>

namespace {

using namespace ccap::coding;

TEST(Crc16, DeterministicAndSensitive) {
    const Bits msg = bits_from_string("110100111010110");
    const std::uint16_t c = crc16(msg);
    EXPECT_EQ(crc16(msg), c);
    Bits flipped = msg;
    flipped[3] ^= 1;
    EXPECT_NE(crc16(flipped), c);
}

TEST(Crc16, DetectsEveryOneBitError) {
    const Bits msg = random_bits(128, 5);
    const std::uint16_t c = crc16(msg);
    for (std::size_t i = 0; i < msg.size(); ++i) {
        Bits corrupted = msg;
        corrupted[i] ^= 1;
        EXPECT_NE(crc16(corrupted), c) << "undetected flip at " << i;
    }
}

TEST(Crc16, DetectsAllTwoBitErrorsInWindow) {
    const Bits msg = random_bits(64, 6);
    const std::uint16_t c = crc16(msg);
    for (std::size_t i = 0; i < msg.size(); ++i)
        for (std::size_t j = i + 1; j < msg.size(); ++j) {
            Bits corrupted = msg;
            corrupted[i] ^= 1;
            corrupted[j] ^= 1;
            EXPECT_NE(crc16(corrupted), c);
        }
}

TEST(Crc16, AppendVerifyRoundTrip) {
    const Bits msg = random_bits(100, 7);
    const Bits framed = append_crc16(msg);
    EXPECT_EQ(framed.size(), msg.size() + 16);
    EXPECT_TRUE(verify_crc16(framed));
}

TEST(Crc16, VerifyRejectsCorruption) {
    const Bits framed = append_crc16(random_bits(50, 8));
    for (std::size_t i = 0; i < framed.size(); ++i) {
        Bits corrupted = framed;
        corrupted[i] ^= 1;
        EXPECT_FALSE(verify_crc16(corrupted)) << "at " << i;
    }
}

TEST(Crc16, VerifyRejectsShortInput) {
    const Bits short_input(15, 0);
    EXPECT_FALSE(verify_crc16(short_input));
}

TEST(Crc16, EmptyMessage) {
    const Bits empty;
    EXPECT_EQ(crc16(empty), 0xFFFF);  // init value untouched
    EXPECT_TRUE(verify_crc16(append_crc16(empty)));
}

TEST(Crc32, DeterministicAndSensitive) {
    const Bits msg = random_bits(200, 9);
    const std::uint32_t c = crc32(msg);
    EXPECT_EQ(crc32(msg), c);
    Bits corrupted = msg;
    corrupted[100] ^= 1;
    EXPECT_NE(crc32(corrupted), c);
}

TEST(Crc32, DetectsBurstErrors) {
    const Bits msg = random_bits(256, 10);
    const std::uint32_t c = crc32(msg);
    for (std::size_t start = 0; start + 32 <= msg.size(); start += 16) {
        Bits corrupted = msg;
        for (std::size_t i = start; i < start + 31; ++i) corrupted[i] ^= 1;
        EXPECT_NE(crc32(corrupted), c);
    }
}

TEST(Crc, RejectsNonBits) {
    const Bits bad = {0, 1, 7};
    EXPECT_THROW((void)crc16(bad), std::domain_error);
    EXPECT_THROW((void)crc32(bad), std::domain_error);
}

}  // namespace
