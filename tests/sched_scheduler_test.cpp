#include "ccap/sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

namespace {

using namespace ccap::sched;

/// Counts its own quanta; optionally blocks periodically.
class CountingProcess final : public Process {
public:
    CountingProcess(ProcessId id, int priority = 0, std::uint64_t tickets = 1,
                    SimTime block_every = 0, SimTime block_len = 0)
        : Process(id, "p" + std::to_string(id), priority, tickets),
          block_every_(block_every),
          block_len_(block_len) {}

    void on_quantum(SimTime) override {
        ++count;
        if (block_every_ != 0 && count % block_every_ == 0) block_for(block_len_);
    }

    std::uint64_t count = 0;

private:
    SimTime block_every_;
    SimTime block_len_;
};

TEST(UniprocessorSim, RequiresProcesses) {
    UniprocessorSim sim(make_round_robin(), 1);
    EXPECT_THROW(sim.run(10), std::logic_error);
}

TEST(UniprocessorSim, ProcessIdsMustMatchIndices) {
    UniprocessorSim sim(make_round_robin(), 1);
    EXPECT_THROW(sim.add_process(std::make_unique<CountingProcess>(5)), std::invalid_argument);
}

TEST(UniprocessorSim, NullArgumentsThrow) {
    EXPECT_THROW(UniprocessorSim(nullptr, 1), std::invalid_argument);
    UniprocessorSim sim(make_round_robin(), 1);
    EXPECT_THROW(sim.add_process(nullptr), std::invalid_argument);
}

TEST(RoundRobin, PerfectAlternation) {
    UniprocessorSim sim(make_round_robin(), 1);
    auto* a = new CountingProcess(0);
    auto* b = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(100);
    EXPECT_EQ(a->count, 50U);
    EXPECT_EQ(b->count, 50U);
    // Trace strictly alternates.
    const auto& trace = sim.activation_trace();
    for (std::size_t i = 1; i < trace.size(); ++i) EXPECT_NE(trace[i], trace[i - 1]);
}

TEST(RoundRobin, ConservesQuanta) {
    UniprocessorSim sim(make_round_robin(), 2);
    auto* a = new CountingProcess(0);
    auto* b = new CountingProcess(1);
    auto* c = new CountingProcess(2);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.add_process(std::unique_ptr<Process>(c));
    sim.run(99);
    EXPECT_EQ(a->count + b->count + c->count, 99U);
    EXPECT_EQ(sim.stats().total_quanta, 99U);
}

TEST(RandomScheduler, RoughlyFair) {
    UniprocessorSim sim(make_random(), 3);
    auto* a = new CountingProcess(0);
    auto* b = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(20000);
    EXPECT_NEAR(static_cast<double>(a->count) / 20000.0, 0.5, 0.02);
}

TEST(PriorityScheduler, HighPriorityMonopolizes) {
    UniprocessorSim sim(make_priority(), 4);
    auto* lo = new CountingProcess(0, /*priority=*/1);
    auto* hi = new CountingProcess(1, /*priority=*/5);
    sim.add_process(std::unique_ptr<Process>(lo));
    sim.add_process(std::unique_ptr<Process>(hi));
    sim.run(50);
    EXPECT_EQ(hi->count, 50U);
    EXPECT_EQ(lo->count, 0U);
}

TEST(PriorityScheduler, TiesRoundRobin) {
    UniprocessorSim sim(make_priority(), 5);
    auto* a = new CountingProcess(0, 3);
    auto* b = new CountingProcess(1, 3);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(60);
    EXPECT_EQ(a->count, 30U);
    EXPECT_EQ(b->count, 30U);
}

TEST(LotteryScheduler, ProportionalToTickets) {
    UniprocessorSim sim(make_lottery(), 6);
    auto* a = new CountingProcess(0, 0, /*tickets=*/1);
    auto* b = new CountingProcess(1, 0, /*tickets=*/3);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(40000);
    EXPECT_NEAR(static_cast<double>(b->count) / 40000.0, 0.75, 0.02);
}

TEST(FuzzyRoundRobin, EpsilonZeroIsRoundRobin) {
    UniprocessorSim sim(make_fuzzy_round_robin(0.0), 7);
    auto* a = new CountingProcess(0);
    auto* b = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(100);
    EXPECT_EQ(a->count, 50U);
}

TEST(FuzzyRoundRobin, EpsilonValidation) {
    EXPECT_THROW((void)make_fuzzy_round_robin(-0.1), std::domain_error);
    EXPECT_THROW((void)make_fuzzy_round_robin(1.1), std::domain_error);
}

TEST(Mlfq, ConstructionValidation) {
    EXPECT_THROW((void)make_mlfq(0, 10), std::invalid_argument);
    EXPECT_THROW((void)make_mlfq(3, 0), std::invalid_argument);
}

TEST(Mlfq, CpuHogsShareFairlyViaBoost) {
    UniprocessorSim sim(make_mlfq(3, 32), 20);
    auto* a = new CountingProcess(0);
    auto* b = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(1000);
    // Two identical CPU hogs end up sharing roughly evenly.
    EXPECT_NEAR(static_cast<double>(a->count) / 1000.0, 0.5, 0.1);
}

TEST(Mlfq, InteractiveProcessGetsPriority) {
    UniprocessorSim sim(make_mlfq(3, 256), 21);
    // a blocks after every quantum (interactive); b hogs the CPU.
    auto* interactive = new CountingProcess(0, 0, 1, /*block_every=*/1, /*block_len=*/2);
    auto* hog = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(interactive));
    sim.add_process(std::unique_ptr<Process>(hog));
    sim.run(600);
    // The interactive process gets a quantum nearly every time it wakes
    // (about once per 3 quanta given its 2-tick sleep).
    EXPECT_GT(interactive->count, 150U);
}

TEST(Blocking, BlockedProcessSkipsQuantaThenWakes) {
    UniprocessorSim sim(make_round_robin(), 8);
    // a blocks for 5 ticks after every quantum; b never blocks.
    auto* a = new CountingProcess(0, 0, 1, /*block_every=*/1, /*block_len=*/5);
    auto* b = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(a));
    sim.add_process(std::unique_ptr<Process>(b));
    sim.run(120);
    EXPECT_GT(b->count, a->count * 3);
    EXPECT_GT(a->count, 10U);  // still woken regularly
}

TEST(Blocking, FinishedProcessNeverRunsAgain) {
    class OneShot final : public Process {
    public:
        explicit OneShot(ProcessId id) : Process(id, "oneshot") {}
        void on_quantum(SimTime) override {
            ++runs;
            finish();
        }
        int runs = 0;
    };
    UniprocessorSim sim(make_round_robin(), 9);
    auto* p = new OneShot(0);
    auto* q = new CountingProcess(1);
    sim.add_process(std::unique_ptr<Process>(p));
    sim.add_process(std::unique_ptr<Process>(q));
    sim.run(50);
    EXPECT_EQ(p->runs, 1);
    EXPECT_EQ(q->count, 49U);
}

TEST(Sim, AllFinishedStopsEarly) {
    class OneShot final : public Process {
    public:
        explicit OneShot(ProcessId id) : Process(id, "oneshot") {}
        void on_quantum(SimTime) override { finish(); }
    };
    UniprocessorSim sim(make_round_robin(), 10);
    sim.add_process(std::make_unique<OneShot>(0));
    sim.run(1000);
    EXPECT_LE(sim.stats().total_quanta, 2U);
}

TEST(Sim, StateNames) {
    EXPECT_STREQ(state_name(ProcessState::runnable), "runnable");
    EXPECT_STREQ(state_name(ProcessState::blocked), "blocked");
    EXPECT_STREQ(state_name(ProcessState::finished), "finished");
}

}  // namespace
