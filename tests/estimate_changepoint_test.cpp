#include "ccap/estimate/changepoint.hpp"

#include <gtest/gtest.h>

#include "ccap/core/deletion_insertion_channel.hpp"

namespace {

using namespace ccap::estimate;
using ccap::core::DeletionInsertionChannel;
using ccap::core::DiChannelParams;
using Trace = std::vector<std::uint32_t>;

Trace random_trace(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    Trace t(n);
    for (auto& s : t) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return t;
}

TEST(WindowedRates, StationaryChannelGivesFlatSeries) {
    const DiChannelParams p{0.15, 0.05, 0.0, 3};
    DeletionInsertionChannel ch(p, 1);
    const Trace sent = random_trace(12000, 3, 1);
    const auto t = ch.transduce(sent);
    const WindowedRates rates = windowed_rates(sent, t.output, 1000);
    ASSERT_EQ(rates.p_d.size(), 12U);
    for (double pd : rates.p_d) EXPECT_NEAR(pd, 0.15, 0.06);
    EXPECT_FALSE(detect_rate_change(rates.p_d).has_value());
}

TEST(WindowedRates, Validation) {
    const Trace t = random_trace(10, 1, 2);
    EXPECT_THROW((void)windowed_rates(t, t, 0), std::invalid_argument);
    const WindowedRates empty = windowed_rates({}, {}, 100);
    EXPECT_TRUE(empty.p_d.empty());
}

TEST(ChangePoint, DetectsRegimeSwitchInChannel) {
    // First half of the trace goes through a quiet channel, the second half
    // through a heavily-deleting one (e.g. the defender enabled a fuzzy
    // scheduler mid-measurement).
    const Trace sent = random_trace(16000, 3, 3);
    const std::size_t half = sent.size() / 2;
    DeletionInsertionChannel quiet({0.02, 0.02, 0.0, 3}, 4);
    DeletionInsertionChannel noisy({0.30, 0.02, 0.0, 3}, 5);
    auto first = quiet.transduce(Trace(sent.begin(), sent.begin() + half), false);
    auto second = noisy.transduce(Trace(sent.begin() + half, sent.end()), false);
    Trace received = first.output;
    received.insert(received.end(), second.output.begin(), second.output.end());

    const WindowedRates rates = windowed_rates(sent, received, 1000);
    const auto change = detect_rate_change(rates.p_d);
    ASSERT_TRUE(change.has_value());
    // The switch happened at window 8 of 16.
    EXPECT_NEAR(static_cast<double>(change->index), 8.0, 1.0);
    EXPECT_LT(change->mean_before, 0.1);
    EXPECT_GT(change->mean_after, 0.2);
}

TEST(ChangePoint, SeriesTooShort) {
    const std::vector<double> s = {0.1, 0.9, 0.1};
    EXPECT_FALSE(detect_rate_change(s).has_value());
}

TEST(ChangePoint, CleanStepFunction) {
    std::vector<double> s(20, 0.1);
    for (std::size_t i = 12; i < 20; ++i) s[i] = 0.4;
    const auto change = detect_rate_change(s);
    ASSERT_TRUE(change.has_value());
    EXPECT_EQ(change->index, 12U);
    EXPECT_NEAR(change->mean_before, 0.1, 1e-9);
    EXPECT_NEAR(change->mean_after, 0.4, 1e-9);
    EXPECT_GT(change->z_score, 100.0);  // noiseless step
}

TEST(ChangePoint, ConstantSeriesNoDetection) {
    const std::vector<double> s(30, 0.25);
    EXPECT_FALSE(detect_rate_change(s).has_value());
}

TEST(ChangePoint, NoisyButStationaryNoDetection) {
    ccap::util::Rng rng(6);
    std::vector<double> s(40);
    for (double& v : s) v = 0.2 + 0.02 * rng.normal();
    EXPECT_FALSE(detect_rate_change(s, 6.0).has_value());
}

TEST(ChangePoint, ThresholdControlsSensitivity) {
    std::vector<double> s(16, 0.1);
    for (std::size_t i = 8; i < 16; ++i) s[i] = 0.13;  // small jump
    ccap::util::Rng rng(7);
    for (double& v : s) v += 0.01 * rng.normal();
    const auto strict = detect_rate_change(s, 50.0);
    const auto loose = detect_rate_change(s, 2.0);
    EXPECT_FALSE(strict.has_value());
    EXPECT_TRUE(loose.has_value());
}

}  // namespace
