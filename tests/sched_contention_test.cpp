#include "ccap/sched/contention.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace {

using ccap::info::CapacityCache;
using ccap::sched::ContentionConfig;
using ccap::sched::ContentionEngine;
using ccap::sched::ContentionReport;
using ccap::sched::FlowLoad;
using ccap::sched::FlowOutcome;

CapacityCache::Config cache_config(bool enabled = true) {
    CapacityCache::Config cfg;
    cfg.grid = {0.02, 0.02, 0.40, 0.20};
    cfg.base.max_drift = 8;
    cfg.base.max_insert_run = 4;
    cfg.mc.block_len = 16;
    cfg.mc.num_blocks = 2;
    cfg.mc.threads = 1;
    cfg.enabled = enabled;
    return cfg;
}

ContentionConfig engine_config() {
    ContentionConfig cfg;
    cfg.flows = 192;
    cfg.offered_load = 0.9;
    cfg.ticks = 256;
    cfg.slices = 8;
    cfg.domain_flows = 12;
    cfg.queue_cap = 4;
    cfg.deadline = 32;
    cfg.seed = 77;
    return cfg;
}

void expect_reports_identical(const ContentionReport& a, const ContentionReport& b) {
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t f = 0; f < a.flows.size(); ++f) {
        EXPECT_EQ(a.flows[f].load.offered, b.flows[f].load.offered) << "flow " << f;
        EXPECT_EQ(a.flows[f].load.served, b.flows[f].load.served) << "flow " << f;
        EXPECT_EQ(a.flows[f].p_d_eff, b.flows[f].p_d_eff) << "flow " << f;
        EXPECT_EQ(a.flows[f].p_i_eff, b.flows[f].p_i_eff) << "flow " << f;
        EXPECT_EQ(a.flows[f].capacity, b.flows[f].capacity) << "flow " << f;
    }
    EXPECT_EQ(a.total_offered, b.total_offered);
    EXPECT_EQ(a.total_served, b.total_served);
    EXPECT_EQ(a.total_dropped, b.total_dropped);
    EXPECT_EQ(a.aggregate_capacity_per_tick, b.aggregate_capacity_per_tick);
    EXPECT_EQ(a.mean_capacity, b.mean_capacity);
    EXPECT_EQ(a.distinct_nodes, b.distinct_nodes);
}

TEST(ContentionEngineTest, RejectsDegenerateConfigs) {
    CapacityCache cache(cache_config());
    ContentionConfig cfg = engine_config();
    cfg.flows = 0;
    EXPECT_THROW(ContentionEngine(cfg, cache), std::invalid_argument);
    cfg = engine_config();
    cfg.ticks = 0;
    EXPECT_THROW(ContentionEngine(cfg, cache), std::invalid_argument);
    cfg = engine_config();
    cfg.queue_cap = 0;
    EXPECT_THROW(ContentionEngine(cfg, cache), std::invalid_argument);
    cfg = engine_config();
    cfg.domain_flows = 0;
    EXPECT_THROW(ContentionEngine(cfg, cache), std::invalid_argument);
}

TEST(ContentionEngineTest, SimulationConservesSymbols) {
    CapacityCache cache(cache_config());
    ContentionEngine engine(engine_config(), cache);
    const std::vector<FlowLoad> loads = engine.simulate();
    ASSERT_EQ(loads.size(), engine.config().flows);
    std::uint64_t offered = 0, accounted = 0;
    for (const FlowLoad& l : loads) {
        offered += l.offered;
        // Served + dropped never exceeds offered (the rest is backlog at
        // the horizon).
        EXPECT_LE(l.served + l.dropped_overflow + l.dropped_expired, l.offered);
        accounted += l.served + l.dropped_overflow + l.dropped_expired;
    }
    EXPECT_GT(offered, 0u);
    EXPECT_LE(accounted, offered);
}

TEST(ContentionEngineTest, FractionalSliceBudgetsStillServe) {
    // Many slices over few flows gives each slice a fractional token budget
    // per tick (here 25 * ~6/400 ~= 0.39). The pacer must bank budget across
    // ticks up to one symbol's cost, not starve behind a sub-cost burst cap.
    CapacityCache cache(cache_config());
    ContentionConfig cfg = engine_config();
    cfg.flows = 400;
    cfg.slices = 64;
    cfg.offered_load = 0.9;
    const ContentionReport report = ContentionEngine(cfg, cache).run();
    EXPECT_GT(report.total_offered, 0u);
    EXPECT_GT(report.total_served, 0u);
    // A 0.9-loaded system with banked fractional budgets should serve a
    // substantial share of what is offered, not a token trickle.
    EXPECT_GT(report.total_served, report.total_offered / 4);
}

TEST(ContentionEngineTest, MapEffectiveHardensDropsIntoDeletions) {
    CapacityCache cache(cache_config());
    ContentionEngine engine(engine_config(), cache);

    FlowLoad clean{100, 100, 0, 0};
    const FlowOutcome base = engine.map_effective(clean, 0);
    EXPECT_DOUBLE_EQ(base.p_d_eff, cache.config().base.p_d);
    EXPECT_DOUBLE_EQ(base.p_i_eff, cache.config().base.p_i);

    FlowLoad lossy{100, 75, 20, 5};
    const FlowOutcome hit = engine.map_effective(lossy, 0);
    EXPECT_GT(hit.p_d_eff, base.p_d_eff);
    EXPECT_DOUBLE_EQ(hit.p_d_eff, 0.25);  // 25 drops out of 100 offered, base p_d = 0

    const FlowOutcome noisy = engine.map_effective(clean, /*foreign=*/512);
    EXPECT_GT(noisy.p_i_eff, base.p_i_eff);
    // Both axes clamp to the capacity grid.
    FlowLoad dead{100, 0, 100, 0};
    EXPECT_LE(engine.map_effective(dead, 1u << 20).p_d_eff, cache.config().grid.pd_max);
    EXPECT_LE(engine.map_effective(dead, 1u << 20).p_i_eff, cache.config().grid.pi_max);
}

TEST(ContentionParallelTest, SimulationBitIdenticalAcrossThreadCounts) {
    CapacityCache cache(cache_config());
    ContentionConfig cfg = engine_config();
    cfg.threads = 1;
    const std::vector<FlowLoad> serial = ContentionEngine(cfg, cache).simulate();
    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        const std::vector<FlowLoad> parallel = ContentionEngine(cfg, cache).simulate();
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t f = 0; f < serial.size(); ++f) {
            EXPECT_EQ(parallel[f].offered, serial[f].offered) << "flow " << f;
            EXPECT_EQ(parallel[f].served, serial[f].served) << "flow " << f;
            EXPECT_EQ(parallel[f].dropped_overflow, serial[f].dropped_overflow);
            EXPECT_EQ(parallel[f].dropped_expired, serial[f].dropped_expired);
        }
    }
}

TEST(ContentionParallelTest, FullRunBitIdenticalAcrossThreadCounts) {
    ContentionConfig cfg = engine_config();
    cfg.threads = 1;
    CapacityCache cache1(cache_config());
    const ContentionReport serial = ContentionEngine(cfg, cache1).run();

    cfg.threads = 8;
    CapacityCache cache8(cache_config());
    const ContentionReport parallel = ContentionEngine(cfg, cache8).run();
    expect_reports_identical(serial, parallel);
}

TEST(ContentionEngineTest, CacheOnAndOffAreBitIdenticalInExactMode) {
    const ContentionConfig cfg = engine_config();
    CapacityCache cached(cache_config(true));
    CapacityCache uncached(cache_config(false));
    const ContentionReport with_cache = ContentionEngine(cfg, cached).run();
    const ContentionReport without_cache = ContentionEngine(cfg, uncached).run();
    expect_reports_identical(with_cache, without_cache);
    EXPECT_GT(with_cache.cache.hits, 0u);
    EXPECT_EQ(without_cache.cache.hits, 0u);
}

TEST(ContentionEngineTest, DedupAndNaivePathsAreBitIdentical) {
    ContentionConfig cfg = engine_config();
    cfg.flows = 96;  // keep the naive per-flow pass quick
    CapacityCache fast_cache(cache_config());
    cfg.dedup_nodes = true;
    const ContentionReport fast = ContentionEngine(cfg, fast_cache).run();

    CapacityCache naive_cache(cache_config(false));
    cfg.dedup_nodes = false;
    const ContentionReport naive = ContentionEngine(cfg, naive_cache).run();
    expect_reports_identical(fast, naive);
    EXPECT_LT(fast.distinct_nodes, cfg.flows);  // the dedup actually collapsed work
}

TEST(ContentionEngineTest, RepeatedRunsOnASharedCacheAreIdentical) {
    // Second run hits a warm cache everywhere; values must not move.
    CapacityCache cache(cache_config());
    const ContentionConfig cfg = engine_config();
    const ContentionReport first = ContentionEngine(cfg, cache).run();
    const ContentionReport second = ContentionEngine(cfg, cache).run();
    expect_reports_identical(first, second);
    EXPECT_EQ(second.cache.misses, 0u);
}

TEST(ContentionEngineTest, OverloadRaisesEffectiveDeletionsAndCutsCapacity) {
    CapacityCache cache(cache_config());
    ContentionConfig cfg = engine_config();
    cfg.offered_load = 0.2;
    const ContentionReport light = ContentionEngine(cfg, cache).run();
    cfg.offered_load = 2.0;
    const ContentionReport heavy = ContentionEngine(cfg, cache).run();

    EXPECT_GT(heavy.total_offered, light.total_offered);
    EXPECT_GT(heavy.total_dropped, light.total_dropped);
    EXPECT_GT(heavy.mean_pd_eff, light.mean_pd_eff);
    EXPECT_LT(heavy.mean_capacity, light.mean_capacity);
}

TEST(ContentionEngineTest, InterpolatedModeCarriesCertifiedBounds) {
    ContentionConfig cfg = engine_config();
    cfg.quantize_exact = false;
    CapacityCache cache(cache_config());
    const ContentionReport report = ContentionEngine(cfg, cache).run();
    EXPECT_GE(report.aggregate_err_bound_per_tick, 0.0);
    for (const FlowOutcome& o : report.flows) {
        EXPECT_GE(o.err_bound, 0.0);
        EXPECT_GE(o.capacity, 0.0);
    }
    // Interpolation stays within the certified distance of the quantized
    // answer (the node estimate is inside the same bracket).
    cfg.quantize_exact = true;
    const ContentionReport exact = ContentionEngine(cfg, cache).run();
    const double diff = report.aggregate_capacity_per_tick - exact.aggregate_capacity_per_tick;
    EXPECT_LE(std::abs(diff), report.aggregate_err_bound_per_tick + 1e-12);
}

}  // namespace
