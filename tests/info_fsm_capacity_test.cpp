#include "ccap/info/fsm_capacity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ccap::info::FsmChannel;

TEST(FsmChannel, ConstructionValidation) {
    EXPECT_THROW(FsmChannel(0), std::invalid_argument);
    FsmChannel fsm(2);
    EXPECT_THROW(fsm.add_edge(2, 0), std::out_of_range);
    EXPECT_THROW(fsm.add_edge(0, 2), std::out_of_range);
    EXPECT_THROW(fsm.add_edge(0, 0, 0.0), std::domain_error);
}

TEST(FsmChannel, NoEdgesZeroCapacity) {
    FsmChannel fsm(3);
    EXPECT_DOUBLE_EQ(fsm.capacity(), 0.0);
}

TEST(FsmChannel, NoCycleZeroCapacity) {
    // A single one-way edge cannot sustain transmission.
    FsmChannel fsm(2);
    fsm.add_edge(0, 1);
    EXPECT_DOUBLE_EQ(fsm.capacity(), 0.0);
}

TEST(FsmChannel, BinaryFreeChannelIsOneBit) {
    // One state, two unit-time operations: 1 bit per tick.
    FsmChannel fsm(1);
    fsm.add_edge(0, 0);
    fsm.add_edge(0, 0);
    EXPECT_NEAR(fsm.capacity(), 1.0, 1e-9);
}

TEST(FsmChannel, KarySelfLoops) {
    FsmChannel fsm(1);
    for (int i = 0; i < 8; ++i) fsm.add_edge(0, 0);
    EXPECT_NEAR(fsm.capacity(), 3.0, 1e-9);
}

TEST(FsmChannel, GoldenRatioMachine) {
    // Millen's classic example shape: state 0 can emit a short op (stay) or
    // start a long op via state 1 — counts follow Fibonacci, capacity
    // log2(phi).
    FsmChannel fsm(2);
    fsm.add_edge(0, 0);  // "0"
    fsm.add_edge(0, 1);  // "1" part 1
    fsm.add_edge(1, 0);  // "1" part 2 (forced)
    const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
    EXPECT_NEAR(fsm.capacity(), std::log2(phi), 1e-9);
}

TEST(FsmChannel, GoldenRatioViaDurations) {
    // Same machine expressed as one state with durations {1, 2}.
    FsmChannel fsm(1);
    fsm.add_edge(0, 0, 1.0);
    fsm.add_edge(0, 0, 2.0);
    const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
    EXPECT_NEAR(fsm.capacity(), std::log2(phi), 1e-9);
}

TEST(FsmChannel, CapacityMatchesSequenceGrowth) {
    // capacity (unit durations) == lim log2(#sequences of length n)/n.
    FsmChannel fsm(2);
    fsm.add_edge(0, 0);
    fsm.add_edge(0, 1);
    fsm.add_edge(1, 0);
    const double c = fsm.capacity();
    const double n40 = fsm.count_sequences(0, 40);
    const double n41 = fsm.count_sequences(0, 41);
    EXPECT_NEAR(std::log2(n41 / n40), c, 1e-3);
}

TEST(FsmChannel, CountSequencesSmall) {
    FsmChannel fsm(2);
    fsm.add_edge(0, 0);
    fsm.add_edge(0, 1);
    fsm.add_edge(1, 0);
    EXPECT_DOUBLE_EQ(fsm.count_sequences(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(fsm.count_sequences(0, 1), 2.0);   // {0, 1-start}
    EXPECT_DOUBLE_EQ(fsm.count_sequences(0, 2), 3.0);   // 00, 01s, 1s0
    EXPECT_DOUBLE_EQ(fsm.count_sequences(0, 3), 5.0);   // Fibonacci growth
}

TEST(FsmChannel, CountSequencesBadStateThrows) {
    FsmChannel fsm(1);
    fsm.add_edge(0, 0);
    EXPECT_THROW((void)fsm.count_sequences(1, 3), std::out_of_range);
}

TEST(FsmChannel, SlowerEdgesLowerCapacity) {
    FsmChannel fast(1), slow(1);
    for (int i = 0; i < 2; ++i) {
        fast.add_edge(0, 0, 1.0);
        slow.add_edge(0, 0, 2.0);
    }
    EXPECT_NEAR(slow.capacity(), fast.capacity() / 2.0, 1e-9);
}

TEST(FsmChannel, DisconnectedComponentTakesBest) {
    // Component A: 2 self-loops at state 0 (1 bit). Component B: 1 self-loop
    // at state 1 (0 bits). Spectral radius picks the best component.
    FsmChannel fsm(2);
    fsm.add_edge(0, 0);
    fsm.add_edge(0, 0);
    fsm.add_edge(1, 1);
    EXPECT_NEAR(fsm.capacity(), 1.0, 1e-9);
}

}  // namespace
