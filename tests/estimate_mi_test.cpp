#include "ccap/estimate/mi_estimator.hpp"

#include <gtest/gtest.h>

#include "ccap/info/entropy.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::estimate;
using ccap::util::Rng;
using Trace = std::vector<std::uint32_t>;

TEST(MiEstimator, PerfectlyCorrelatedIsEntropy) {
    Rng rng(1);
    Trace x(20000);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_below(4));
    const MiResult mi = estimate_mutual_information(x, x);
    EXPECT_NEAR(mi.plug_in, 2.0, 0.01);
}

TEST(MiEstimator, IndependentIsNearZero) {
    Rng rng(2);
    Trace x(50000), y(50000);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_below(2));
    for (auto& v : y) v = static_cast<std::uint32_t>(rng.uniform_below(2));
    const MiResult mi = estimate_mutual_information(x, y);
    EXPECT_LT(mi.plug_in, 0.001);
    // Miller-Madow correction pushes the (upward-biased) plug-in down.
    EXPECT_LE(mi.miller_madow, mi.plug_in + 1e-12);
}

TEST(MiEstimator, BscMatchesTheory) {
    Rng rng(3);
    const double p = 0.11;
    Trace x(80000), y(80000);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<std::uint32_t>(rng.uniform_below(2));
        y[i] = rng.bernoulli(p) ? 1 - x[i] : x[i];
    }
    const MiResult mi = estimate_mutual_information(x, y);
    EXPECT_NEAR(mi.plug_in, 1.0 - ccap::info::binary_entropy(p), 0.01);
}

TEST(MiEstimator, ValidationErrors) {
    const Trace a = {1, 2};
    const Trace b = {1};
    EXPECT_THROW((void)estimate_mutual_information(a, b), std::invalid_argument);
    EXPECT_THROW((void)estimate_mutual_information({}, {}), std::invalid_argument);
}

TEST(MiEstimator, DeterministicFunctionOfXIsHX) {
    Rng rng(4);
    Trace x(30000), y(30000);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<std::uint32_t>(rng.uniform_below(8));
        y[i] = x[i] % 2;  // deterministic function
    }
    const MiResult mi = estimate_mutual_information(x, y);
    EXPECT_NEAR(mi.plug_in, 1.0, 0.01);  // I(X;f(X)) = H(f(X)) = 1 bit
}

TEST(EntropyEstimator, UniformAndPointMass) {
    Rng rng(5);
    Trace uniform(40000);
    for (auto& v : uniform) v = static_cast<std::uint32_t>(rng.uniform_below(16));
    EXPECT_NEAR(estimate_entropy(uniform).plug_in, 4.0, 0.01);
    const Trace constant(100, 7);
    EXPECT_DOUBLE_EQ(estimate_entropy(constant).plug_in, 0.0);
    EXPECT_THROW((void)estimate_entropy({}), std::invalid_argument);
}

TEST(EntropyEstimator, MillerMadowAboveplugIn) {
    Rng rng(6);
    Trace x(500);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_below(32));
    const MiResult h = estimate_entropy(x);
    EXPECT_GT(h.miller_madow, h.plug_in);  // correction adds (m-1)/2n ln2
}

TEST(MiEstimator, SmallSampleBiasVisible) {
    // With few samples the plug-in MI of independent variables is clearly
    // positive (bias); Miller-Madow reduces it.
    Rng rng(7);
    Trace x(200), y(200);
    for (auto& v : x) v = static_cast<std::uint32_t>(rng.uniform_below(8));
    for (auto& v : y) v = static_cast<std::uint32_t>(rng.uniform_below(8));
    const MiResult mi = estimate_mutual_information(x, y);
    EXPECT_GT(mi.plug_in, 0.05);
    EXPECT_LT(mi.miller_madow, mi.plug_in);
}

}  // namespace
