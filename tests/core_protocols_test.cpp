#include "ccap/core/feedback_protocols.hpp"

#include <gtest/gtest.h>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/protocol_analysis.hpp"

namespace {

using namespace ccap::core;

std::vector<std::uint32_t> message(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    std::vector<std::uint32_t> m(n);
    for (auto& s : m) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return m;
}

TEST(StopAndWait, DeliversEverythingReliably) {
    DeletionInsertionChannel ch({0.3, 0.0, 0.0, 1}, 1);
    const auto msg = message(2000, 1, 1);
    const ProtocolRun run = run_stop_and_wait(ch, msg);
    EXPECT_TRUE(run.reliable);
    EXPECT_EQ(run.message_len, msg.size());
    EXPECT_EQ(run.symbol_errors, 0U);
}

TEST(StopAndWait, RateApproachesTheorem3) {
    // Theorem 3: achieved information rate = N(1-P_d) bits/use.
    for (double pd : {0.1, 0.25, 0.5}) {
        DeletionInsertionChannel ch({pd, 0.0, 0.0, 2}, 2);
        const auto msg = message(20000, 2, 2);
        const ProtocolRun run = run_stop_and_wait(ch, msg);
        const double measured = run.measured_info_rate(2);
        const double theory = theorem3_feedback_capacity({pd, 0.0, 0.0, 2});
        EXPECT_NEAR(measured, theory, 0.05) << "pd=" << pd;
    }
}

TEST(StopAndWait, ExpectedUsesMatchAnalysis) {
    DiChannelParams p{0.4, 0.0, 0.0, 1};
    DeletionInsertionChannel ch(p, 3);
    const auto msg = message(30000, 1, 3);
    const ProtocolRun run = run_stop_and_wait(ch, msg);
    const double expected = stop_and_wait_expected_uses(p, msg.size());
    EXPECT_NEAR(static_cast<double>(run.channel_uses) / expected, 1.0, 0.03);
}

TEST(StopAndWait, RejectsInsertionChannels) {
    DeletionInsertionChannel ch({0.1, 0.1, 0.0, 1}, 4);
    const auto msg = message(10, 1, 4);
    EXPECT_THROW((void)run_stop_and_wait(ch, msg), std::domain_error);
}

TEST(StopAndWait, CleanChannelIsOneUsePerSymbol) {
    DeletionInsertionChannel ch({0.0, 0.0, 0.0, 1}, 5);
    const auto msg = message(500, 1, 5);
    const ProtocolRun run = run_stop_and_wait(ch, msg);
    EXPECT_EQ(run.channel_uses, msg.size());
    EXPECT_DOUBLE_EQ(run.symbols_per_use(), 1.0);
}

TEST(CounterProtocol, DeliversFullLengthStream) {
    DeletionInsertionChannel ch({0.15, 0.1, 0.0, 2}, 6);
    const auto msg = message(5000, 2, 6);
    const ProtocolRun run = run_counter_protocol(ch, msg);
    EXPECT_EQ(run.message_len, msg.size());
    // Garbage positions are exactly the symbol errors modulo lucky matches.
    EXPECT_GE(run.garbage_positions, run.symbol_errors);
}

TEST(CounterProtocol, GarbageFractionMatchesAnalysis) {
    DiChannelParams p{0.2, 0.15, 0.0, 4};
    DeletionInsertionChannel ch(p, 7);
    const auto msg = message(30000, 4, 7);
    const ProtocolRun run = run_counter_protocol(ch, msg);
    const double frac =
        static_cast<double>(run.garbage_positions) / static_cast<double>(run.message_len);
    EXPECT_NEAR(frac, counter_protocol_garbage_fraction(p), 0.01);
}

TEST(CounterProtocol, SymbolsPerUseIsOneMinusPd) {
    DiChannelParams p{0.25, 0.1, 0.0, 1};
    DeletionInsertionChannel ch(p, 8);
    const auto msg = message(30000, 1, 8);
    const ProtocolRun run = run_counter_protocol(ch, msg);
    EXPECT_NEAR(run.symbols_per_use(), 1.0 - p.p_d, 0.01);
}

TEST(CounterProtocol, MeasuredRateMatchesExactAnalysis) {
    // The Monte-Carlo information rate of the Appendix-A protocol should
    // track counter_protocol_exact_rate (our derivation), not the paper's
    // optimistic Theorem-5 expression — this is the E3 cross-check.
    DiChannelParams p{0.1, 0.1, 0.0, 4};
    DeletionInsertionChannel ch(p, 9);
    const auto msg = message(60000, 4, 9);
    const ProtocolRun run = run_counter_protocol(ch, msg);
    const double measured = run.measured_info_rate(4);
    EXPECT_NEAR(measured, counter_protocol_exact_rate(p), 0.06);
}

TEST(CounterProtocol, ReducesToStopAndWaitWithoutInsertions) {
    DiChannelParams p{0.3, 0.0, 0.0, 1};
    DeletionInsertionChannel ch(p, 10);
    const auto msg = message(5000, 1, 10);
    const ProtocolRun run = run_counter_protocol(ch, msg);
    EXPECT_TRUE(run.reliable);
    EXPECT_EQ(run.garbage_positions, 0U);
}

TEST(CounterProtocol, EmptyMessage) {
    DeletionInsertionChannel ch({0.1, 0.1, 0.0, 1}, 11);
    const ProtocolRun run = run_counter_protocol(ch, {});
    EXPECT_EQ(run.channel_uses, 0U);
    EXPECT_TRUE(run.reliable);
}

TEST(ProtocolRun, MeasuredInfoRateEdgeCases) {
    ProtocolRun run;
    EXPECT_DOUBLE_EQ(run.measured_info_rate(1), 0.0);
    run.message_len = 100;
    run.channel_uses = 200;
    run.symbol_errors = 100;  // everything wrong
    EXPECT_DOUBLE_EQ(run.measured_info_rate(1), 0.0);
    run.symbol_errors = 0;
    EXPECT_DOUBLE_EQ(run.measured_info_rate(1), 0.5);
}

TEST(DelayedStopAndWait, ZeroDelayEqualsStopAndWait) {
    DiChannelParams p{0.2, 0.0, 0.0, 1};
    const auto msg = message(5000, 1, 20);
    DeletionInsertionChannel a(p, 20), b(p, 20);
    const auto plain = run_stop_and_wait(a, msg);
    const auto delayed = run_delayed_stop_and_wait(b, msg, 0);
    EXPECT_EQ(plain.channel_uses, delayed.channel_uses);
    EXPECT_TRUE(delayed.reliable);
}

TEST(DelayedStopAndWait, RateMatchesClosedForm) {
    DiChannelParams p{0.2, 0.0, 0.0, 2};
    for (const std::uint64_t d : {1ULL, 4ULL, 16ULL}) {
        DeletionInsertionChannel ch(p, 21);
        const auto msg = message(20000, 2, 21);
        const auto run = run_delayed_stop_and_wait(ch, msg, d);
        EXPECT_TRUE(run.reliable);
        EXPECT_NEAR(run.measured_info_rate(2), delayed_stop_and_wait_rate(p, d), 0.02)
            << "delay " << d;
    }
}

TEST(DelayedStopAndWait, RejectsInsertionChannels) {
    DeletionInsertionChannel ch({0.1, 0.1, 0.0, 1}, 22);
    const auto msg = message(10, 1, 22);
    EXPECT_THROW((void)run_delayed_stop_and_wait(ch, msg, 2), std::domain_error);
}

TEST(GoBackN, ReliableAndMatchesClosedForm) {
    DiChannelParams p{0.1, 0.0, 0.0, 1};
    for (const std::uint64_t d : {0ULL, 2ULL, 8ULL, 32ULL}) {
        DeletionInsertionChannel ch(p, 23);
        const auto msg = message(30000, 1, 23);
        const auto run = run_go_back_n(ch, msg, d);
        EXPECT_TRUE(run.reliable) << "delay " << d;
        EXPECT_NEAR(run.measured_info_rate(1), go_back_n_rate(p, d), 0.03) << "delay " << d;
    }
}

TEST(GoBackN, BeatsStopAndWaitUnderDelay) {
    DiChannelParams p{0.1, 0.0, 0.0, 1};
    const auto msg = message(20000, 1, 24);
    DeletionInsertionChannel a(p, 24), b(p, 24);
    const auto saw = run_delayed_stop_and_wait(a, msg, 16);
    const auto gbn = run_go_back_n(b, msg, 16);
    EXPECT_GT(gbn.measured_info_rate(1), 3.0 * saw.measured_info_rate(1));
}

TEST(GoBackN, HeavyDeletionStillReliable) {
    DiChannelParams p{0.5, 0.0, 0.0, 1};
    DeletionInsertionChannel ch(p, 25);
    const auto msg = message(2000, 1, 25);
    const auto run = run_go_back_n(ch, msg, 8);
    EXPECT_TRUE(run.reliable);
}

TEST(GoBackN, EmptyMessage) {
    DeletionInsertionChannel ch({0.1, 0.0, 0.0, 1}, 26);
    const auto run = run_go_back_n(ch, {}, 4);
    EXPECT_EQ(run.channel_uses, 0U);
    EXPECT_TRUE(run.reliable);
}

TEST(DelayedFeedbackAnalysis, ClosedFormShapes) {
    const DiChannelParams p{0.2, 0.0, 0.0, 4};
    // Zero delay: both collapse to Theorem 3.
    EXPECT_DOUBLE_EQ(delayed_stop_and_wait_rate(p, 0), 3.2);
    EXPECT_DOUBLE_EQ(go_back_n_rate(p, 0), 3.2);
    // Pipelining dominates idling at every positive delay.
    for (const std::uint64_t d : {1ULL, 10ULL, 100ULL})
        EXPECT_GT(go_back_n_rate(p, d), delayed_stop_and_wait_rate(p, d));
    // A perfect channel doesn't care about go-back-N delay at all.
    EXPECT_DOUBLE_EQ(go_back_n_rate({0.0, 0.0, 0.0, 1}, 50), 1.0);
}

TEST(TwoVariableHandshake, ReliableAndMatchesTheory) {
    SyncSimConfig cfg;
    cfg.message_len = 20000;
    cfg.sender_share = 0.5;
    cfg.seed = 12;
    const SyncSimResult res = simulate_two_variable_handshake(cfg);
    EXPECT_TRUE(res.reliable);
    EXPECT_NEAR(res.symbols_per_quantum(), handshake_expected_throughput(0.5), 0.01);
}

TEST(TwoVariableHandshake, AsymmetricShares) {
    SyncSimConfig cfg;
    cfg.message_len = 20000;
    cfg.sender_share = 0.2;
    cfg.seed = 13;
    const SyncSimResult res = simulate_two_variable_handshake(cfg);
    EXPECT_TRUE(res.reliable);
    EXPECT_NEAR(res.symbols_per_quantum(), handshake_expected_throughput(0.2), 0.01);
}

TEST(TwoVariableHandshake, ShareValidation) {
    SyncSimConfig cfg;
    cfg.sender_share = 0.0;
    EXPECT_THROW((void)simulate_two_variable_handshake(cfg), std::domain_error);
}

TEST(CommonEventSync, ThroughputMatchesClosedForm) {
    SyncSimConfig cfg;
    cfg.message_len = 20000;
    cfg.sender_share = 0.5;
    cfg.seed = 14;
    for (unsigned slot : {1U, 2U, 4U}) {
        const SyncSimResult res = simulate_common_event_sync(cfg, slot);
        const double delivered_rate =
            static_cast<double>(res.delivered) / static_cast<double>(res.quanta);
        EXPECT_NEAR(delivered_rate, common_event_expected_throughput(0.5, slot), 0.01)
            << "slot=" << slot;
    }
}

TEST(CommonEventSync, IsUnreliableWithoutFeedback) {
    SyncSimConfig cfg;
    cfg.message_len = 5000;
    cfg.seed = 15;
    const SyncSimResult res = simulate_common_event_sync(cfg, 2);
    EXPECT_FALSE(res.reliable);  // stale reads / missed reads occur
}

TEST(CommonEventSync, Validation) {
    SyncSimConfig cfg;
    EXPECT_THROW((void)simulate_common_event_sync(cfg, 0), std::invalid_argument);
}

}  // namespace
