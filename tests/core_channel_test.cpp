#include "ccap/core/deletion_insertion_channel.hpp"

#include <gtest/gtest.h>

#include "ccap/core/erasure_channel.hpp"

namespace {

using namespace ccap::core;

std::vector<std::uint32_t> message(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    std::vector<std::uint32_t> m(n);
    for (auto& s : m) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return m;
}

TEST(DiChannel, CleanChannelIsIdentity) {
    DeletionInsertionChannel ch({0.0, 0.0, 0.0, 1}, 1);
    const auto msg = message(100, 1, 1);
    const auto t = ch.transduce(msg);
    EXPECT_EQ(t.output, msg);
    EXPECT_EQ(t.channel_uses, 100U);
    EXPECT_EQ(t.events.size(), 100U);
}

TEST(DiChannel, UseOutcomesAreConsistent) {
    DeletionInsertionChannel ch({0.3, 0.3, 0.1, 2}, 2);
    for (int i = 0; i < 2000; ++i) {
        const auto out = ch.use(2);
        switch (out.kind) {
            case ChannelEvent::deletion:
                EXPECT_FALSE(out.delivered.has_value());
                EXPECT_TRUE(out.consumed);
                break;
            case ChannelEvent::insertion:
                EXPECT_TRUE(out.delivered.has_value());
                EXPECT_FALSE(out.consumed);
                EXPECT_LT(*out.delivered, 4U);
                break;
            case ChannelEvent::transmission:
                EXPECT_TRUE(out.delivered.has_value());
                EXPECT_TRUE(out.consumed);
                break;
        }
    }
    EXPECT_EQ(ch.uses(), 2000U);
}

TEST(DiChannel, UseRejectsOutOfAlphabetSymbol) {
    DeletionInsertionChannel ch({0.1, 0.1, 0.0, 1}, 3);
    EXPECT_THROW((void)ch.use(2), std::out_of_range);
}

TEST(DiChannel, EventRatesMatchParameters) {
    DeletionInsertionChannel ch({0.2, 0.1, 0.0, 1}, 4);
    const auto msg = message(20000, 1, 2);
    const auto t = ch.transduce(msg, /*trailing_insertions=*/false);
    std::size_t del = 0, ins = 0, trans = 0;
    for (const auto& e : t.events) {
        del += e.kind == ChannelEvent::deletion;
        ins += e.kind == ChannelEvent::insertion;
        trans += e.kind == ChannelEvent::transmission;
    }
    const double uses = static_cast<double>(t.channel_uses);
    EXPECT_NEAR(del / uses, 0.2, 0.01);
    EXPECT_NEAR(ins / uses, 0.1, 0.01);
    EXPECT_NEAR(trans / uses, 0.7, 0.01);
    EXPECT_EQ(del + trans, msg.size());  // each message symbol consumed once
}

TEST(DiChannel, SubstitutionRateMatches) {
    DeletionInsertionChannel ch({0.0, 0.0, 0.25, 3}, 5);
    const auto msg = message(8000, 3, 3);
    const auto t = ch.transduce(msg);
    std::size_t subst = 0;
    for (const auto& e : t.events) subst += e.substituted;
    EXPECT_NEAR(static_cast<double>(subst) / msg.size(), 0.25, 0.02);
}

TEST(DiChannel, DeterministicForSeed) {
    const auto msg = message(500, 2, 6);
    DeletionInsertionChannel a({0.1, 0.1, 0.05, 2}, 7);
    DeletionInsertionChannel b({0.1, 0.1, 0.05, 2}, 7);
    EXPECT_EQ(a.transduce(msg).output, b.transduce(msg).output);
}

TEST(DiChannel, DeletionOnlyOutputIsSubsequence) {
    DeletionInsertionChannel ch({0.3, 0.0, 0.0, 1}, 8);
    const auto msg = message(200, 1, 9);
    const auto t = ch.transduce(msg);
    std::size_t i = 0;
    for (std::uint32_t s : t.output) {
        while (i < msg.size() && msg[i] != s) ++i;
        ASSERT_LT(i, msg.size());
        ++i;
    }
}

TEST(DiChannel, InvalidParamsThrowAtConstruction) {
    EXPECT_THROW(DeletionInsertionChannel({0.7, 0.7, 0.0, 1}, 1), std::domain_error);
}

TEST(ErasureView, MatchesGroundTruth) {
    DeletionInsertionChannel ch({0.25, 0.15, 0.0, 1}, 10);
    const auto msg = message(5000, 1, 11);
    const auto t = ch.transduce(msg);
    const ErasureView view = erasure_view(t);
    // One slot per message symbol (deletions become flagged erasures).
    EXPECT_EQ(view.symbols.size(), msg.size());
    // Inserted symbols are discarded, not mixed into message positions.
    std::size_t inserted = 0;
    for (const auto& e : t.events) inserted += e.kind == ChannelEvent::insertion;
    EXPECT_EQ(view.insertions_discarded, inserted);
    // Non-erased slots carry the original symbols (noiseless channel).
    for (std::size_t i = 0; i < msg.size(); ++i)
        if (view.symbols[i]) {
            EXPECT_EQ(*view.symbols[i], msg[i]);
        }
}

TEST(ErasureView, ErasureRateTracksPd) {
    DeletionInsertionChannel ch({0.2, 0.0, 0.0, 1}, 12);
    const auto msg = message(20000, 1, 13);
    const ErasureView view = erasure_view(ch.transduce(msg));
    EXPECT_NEAR(static_cast<double>(view.erasures()) / msg.size(), 0.2, 0.01);
}

TEST(ErasureView, InformationBits) {
    DeletionInsertionChannel ch({0.5, 0.0, 0.0, 4}, 14);
    const auto msg = message(1000, 4, 15);
    const ErasureView view = erasure_view(ch.transduce(msg));
    const double bits = erasure_view_information_bits(view, 4);
    // About half the symbols survive, each carrying 4 bits.
    EXPECT_NEAR(bits / (1000.0 * 4.0), 0.5, 0.05);
    EXPECT_THROW((void)erasure_view_information_bits(view, 0), std::invalid_argument);
}

TEST(ErasureView, CleanChannelNoErasures) {
    DeletionInsertionChannel ch({0.0, 0.0, 0.0, 1}, 16);
    const auto msg = message(50, 1, 17);
    const ErasureView view = erasure_view(ch.transduce(msg));
    EXPECT_EQ(view.erasures(), 0U);
    EXPECT_EQ(view.insertions_discarded, 0U);
}

}  // namespace
