#include "ccap/info/timing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace ccap::info;

TEST(TimingCapacity, EqualDurationsAreLogMOverT) {
    const std::vector<double> t2 = {1.0, 1.0};
    EXPECT_NEAR(timing_capacity(t2), 1.0, 1e-9);
    const std::vector<double> t4 = {2.0, 2.0, 2.0, 2.0};
    EXPECT_NEAR(timing_capacity(t4), 1.0, 1e-9);  // log2(4)/2
}

TEST(TimingCapacity, GoldenRatioCase) {
    // Durations {1,2}: root of x^-1 + x^-2 = 1 is the golden ratio.
    const std::vector<double> t = {1.0, 2.0};
    EXPECT_NEAR(timing_capacity(t), std::log2((1.0 + std::sqrt(5.0)) / 2.0), 1e-9);
}

TEST(TimingCapacity, MorseLikeAlphabet) {
    // Shannon's classic telegraphy flavour: more/longer symbols still give
    // a consistent characteristic-equation solution.
    const std::vector<double> t = {2.0, 4.0, 5.0, 7.0};
    const double c = timing_capacity(t);
    // Verify the root property directly: sum 2^{-c t_i} = 1.
    double s = 0.0;
    for (double ti : t) s += std::exp2(-c * ti);
    EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(TimingCapacity, DegenerateCases) {
    EXPECT_DOUBLE_EQ(timing_capacity({}), 0.0);
    const std::vector<double> one = {3.0};
    EXPECT_DOUBLE_EQ(timing_capacity(one), 0.0);
}

TEST(TimingCapacity, InvalidDurationThrows) {
    const std::vector<double> t = {1.0, 0.0};
    EXPECT_THROW((void)timing_capacity(t), std::domain_error);
}

TEST(TimingCapacity, ScalingLaw) {
    // Doubling all durations halves the capacity.
    const std::vector<double> t = {1.0, 3.0};
    const std::vector<double> t2 = {2.0, 6.0};
    EXPECT_NEAR(timing_capacity(t), 2.0 * timing_capacity(t2), 1e-9);
}

TEST(TimingCapacity, MoreSymbolsMoreCapacity) {
    const std::vector<double> t2 = {1.0, 1.0};
    const std::vector<double> t3 = {1.0, 1.0, 1.0};
    EXPECT_GT(timing_capacity(t3), timing_capacity(t2));
}

TEST(Stc, IsAliasForTimingCapacity) {
    const std::vector<double> t = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stc_capacity(t), timing_capacity(t));
}

TEST(TimedZ, NoiselessEqualTimeIsOneBit) {
    const auto r = timed_z_capacity(0.0, 1.0, 1.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.capacity_per_time, 1.0, 1e-6);
    EXPECT_NEAR(r.optimal_p1, 0.5, 1e-4);
}

TEST(TimedZ, ReducesToZChannelPerTime) {
    // Equal durations: capacity/time = C_Z(p)/t.
    const auto r = timed_z_capacity(0.5, 2.0, 2.0);
    EXPECT_NEAR(r.capacity_per_time, std::log2(1.25) / 2.0, 1e-6);
}

TEST(TimedZ, CompletelyNoisyIsZero) {
    const auto r = timed_z_capacity(1.0, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(r.capacity_per_time, 0.0);
}

TEST(TimedZ, LongerOneSymbolLowersCapacity) {
    const auto fast = timed_z_capacity(0.1, 1.0, 1.0);
    const auto slow = timed_z_capacity(0.1, 1.0, 4.0);
    EXPECT_GT(fast.capacity_per_time, slow.capacity_per_time);
}

TEST(TimedZ, NoiseLowersCapacity) {
    const auto clean = timed_z_capacity(0.0, 1.0, 2.0);
    const auto noisy = timed_z_capacity(0.3, 1.0, 2.0);
    EXPECT_GT(clean.capacity_per_time, noisy.capacity_per_time);
}

TEST(TimedZ, InvalidArgumentsThrow) {
    EXPECT_THROW((void)timed_z_capacity(0.1, 0.0, 1.0), std::domain_error);
    EXPECT_THROW((void)timed_z_capacity(-0.1, 1.0, 1.0), std::domain_error);
    EXPECT_THROW((void)timed_z_capacity(1.1, 1.0, 1.0), std::domain_error);
}

TEST(DmcPerTime, MatchesTimingForNoiseless) {
    const std::vector<double> t = {1.0, 2.0};
    const double via_dmc = dmc_capacity_per_time(make_noiseless(2), t);
    EXPECT_NEAR(via_dmc, timing_capacity(t), 1e-6);
}

}  // namespace
