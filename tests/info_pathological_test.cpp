// Pathological-input suite: the robustness contract is that NaN never
// escapes the drift HMM or the Monte-Carlo estimators. Inputs that cannot
// be processed are rejected up front with typed exceptions (validate); for
// inputs that pass validation but have zero or vanishing probability, the
// lattice must return a clean -inf (or a finite value), never NaN.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"

namespace {

using namespace ccap::info;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool clean(double x) { return std::isfinite(x) || x == -kInf; }

DriftParams base_params() {
    DriftParams p;
    p.p_d = 0.1;
    p.p_i = 0.1;
    p.p_s = 0.05;
    return p;
}

TEST(PathologicalInputs, DriftParamsValidateRejectsNaNAndInf) {
    for (auto poison : {kNan, kInf, -kNan}) {
        DriftParams p = base_params();
        p.p_d = poison;
        EXPECT_THROW(p.validate(), std::domain_error);
        p = base_params();
        p.p_i = poison;
        EXPECT_THROW(p.validate(), std::domain_error);
        p = base_params();
        p.p_s = poison;
        EXPECT_THROW(p.validate(), std::domain_error);
    }
    DriftParams p = base_params();
    p.band_eps = kNan;
    EXPECT_THROW(p.validate(), std::domain_error);
}

TEST(PathologicalInputs, NaNParamsNeverReachTheLattice) {
    DriftParams p = base_params();
    p.p_d = kNan;
    EXPECT_THROW((void)DriftHmm(p), std::domain_error);
}

TEST(PathologicalInputs, MarkovSourceValidateRejectsNaN) {
    MarkovSource s = MarkovSource::binary_repeat(0.7);
    s.initial[0] = kNan;
    s.initial[1] = 1.0;  // sum is NaN: must still be rejected
    EXPECT_THROW(s.validate(2), std::domain_error);
    s = MarkovSource::binary_repeat(0.7);
    s.transition(0, 0) = kNan;
    EXPECT_THROW(s.validate(2), std::domain_error);
}

TEST(PathologicalInputs, ImpossibleObservationIsCleanNegInfinity) {
    // p_i = 0 and p_s = 0: a received string longer than the transmitted
    // one, or with a flipped symbol, has probability exactly 0.
    DriftParams p;
    p.p_d = 0.2;
    DriftHmm hmm(p);
    const std::vector<std::uint8_t> tx{0, 0, 0, 0};
    const std::vector<std::uint8_t> longer{0, 0, 0, 0, 0, 0};
    const std::vector<std::uint8_t> flipped{1, 1, 1, 1};
    EXPECT_EQ(hmm.log2_likelihood(tx, longer), -kInf);
    EXPECT_EQ(hmm.log2_likelihood(tx, flipped), -kInf);
    const auto ev = hmm.expected_events(tx, flipped);
    EXPECT_EQ(ev.log2_likelihood, -kInf);
    EXPECT_FALSE(std::isnan(ev.deletions));
    EXPECT_FALSE(std::isnan(ev.insertions));
    EXPECT_FALSE(std::isnan(ev.transmissions));
    EXPECT_FALSE(std::isnan(ev.substitutions));
}

TEST(PathologicalInputs, ExtremeProbabilitiesStayClean) {
    // Near-degenerate but valid parameters: the per-row normalization must
    // keep every evidence finite or -inf over a long sequence.
    for (auto [pd, pi, ps] : {std::tuple{1e-300, 1e-300, 1e-300},
                              std::tuple{0.498, 0.498, 0.999},
                              std::tuple{1e-12, 0.9, 0.0},
                              std::tuple{0.9, 1e-12, 1.0}}) {
        DriftParams p;
        p.p_d = pd;
        p.p_i = pi;
        p.p_s = ps;
        p.validate();
        DriftHmm hmm(p);
        std::vector<std::uint8_t> tx(200), rx(200);
        for (std::size_t i = 0; i < tx.size(); ++i) {
            tx[i] = static_cast<std::uint8_t>(i % 2);
            rx[i] = static_cast<std::uint8_t>((i / 3) % 2);
        }
        const double ll = hmm.log2_likelihood(tx, rx);
        EXPECT_TRUE(clean(ll)) << "pd=" << pd << " pi=" << pi << " ps=" << ps
                               << " ll=" << ll;
        const auto ev = hmm.expected_events(tx, rx);
        EXPECT_TRUE(clean(ev.log2_likelihood));
        EXPECT_FALSE(std::isnan(ev.deletions + ev.insertions + ev.transmissions +
                                ev.substitutions));
    }
}

TEST(PathologicalInputs, PosteriorsOnZeroLikelihoodRowsAreFiniteDistributions) {
    // When every path dies the posterior falls back to the prior instead of
    // dividing by zero.
    DriftParams p;
    p.p_d = 0.2;
    DriftHmm hmm(p);
    ccap::util::Matrix priors(4, 2);
    for (std::size_t i = 0; i < 4; ++i) {
        priors(i, 0) = 1.0;  // prior says all-zeros...
        priors(i, 1) = 0.0;
    }
    const std::vector<std::uint8_t> rx{1, 1, 1, 1};  // ...observation says all-ones
    const ccap::util::Matrix post = hmm.posteriors(priors, rx);
    for (std::size_t i = 0; i < post.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t s = 0; s < post.cols(); ++s) {
            EXPECT_FALSE(std::isnan(post(i, s))) << i << "," << s;
            EXPECT_GE(post(i, s), 0.0);
            sum += post(i, s);
        }
        EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << i;
    }
}

TEST(PathologicalInputs, McEstimatorNeverEmitsNaN) {
    // Degenerate corners of the parameter space: the MC fold must produce
    // finite rate and SEM (per-block -inf evidences are clamped to a zero
    // information contribution, never propagated as NaN).
    for (auto [pd, pi, ps] : {std::tuple{0.49, 0.49, 0.5},
                              std::tuple{1e-9, 1e-9, 0.999},
                              std::tuple{0.9, 0.05, 0.0}}) {
        DriftParams p;
        p.p_d = pd;
        p.p_i = pi;
        p.p_s = ps;
        p.validate();
        ccap::util::Rng rng(7);
        McOptions opts;
        opts.block_len = 24;
        opts.num_blocks = 8;
        opts.threads = 1;
        const MiEstimate est = iid_mutual_information_rate(p, opts, rng);
        EXPECT_TRUE(std::isfinite(est.rate))
            << "pd=" << pd << " pi=" << pi << " ps=" << ps;
        EXPECT_TRUE(std::isfinite(est.sem));
        EXPECT_EQ(est.blocks, opts.num_blocks);
    }
}

TEST(PathologicalInputs, MarkovMcEstimatorNeverEmitsNaN) {
    DriftParams p;
    p.p_d = 0.45;
    p.p_i = 0.45;
    p.p_s = 0.3;
    p.validate();
    ccap::util::Rng rng(11);
    McOptions opts;
    opts.block_len = 20;
    opts.num_blocks = 6;
    opts.threads = 1;
    const MiEstimate est =
        markov_mutual_information_rate(p, MarkovSource::binary_repeat(0.95), opts, rng);
    EXPECT_TRUE(std::isfinite(est.rate));
    EXPECT_TRUE(std::isfinite(est.sem));
}

TEST(PathologicalInputs, BandedEvidenceStaysCleanUnderAggressivePruning) {
    DriftParams p = base_params();
    p.band_eps = 0.5;  // prune almost everything
    DriftHmm hmm(p);
    std::vector<std::uint8_t> tx(64), rx(60);
    for (std::size_t i = 0; i < tx.size(); ++i) tx[i] = static_cast<std::uint8_t>(i % 2);
    for (std::size_t i = 0; i < rx.size(); ++i) rx[i] = static_cast<std::uint8_t>(i % 2);
    ScopedWorkspace ws;
    const BandedEvidence be = hmm.log2_likelihood_banded(tx, rx, ws.get());
    EXPECT_TRUE(clean(be.log2_evidence));
    EXPECT_FALSE(std::isnan(be.log2_slack));
    EXPECT_GE(be.log2_slack, 0.0);
}

}  // namespace
