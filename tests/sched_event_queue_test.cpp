#include "ccap/sched/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

namespace {

using ccap::sched::EventQueue;
using ccap::sched::SimTime;

TEST(EventQueue, StartsEmptyAtTimeZero) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0U);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(30, [&](SimTime) { order.push_back(3); });
    q.schedule_at(10, [&](SimTime) { order.push_back(1); });
    q.schedule_at(20, [&](SimTime) { order.push_back(2); });
    while (q.step()) {}
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30U);
}

TEST(EventQueue, TiesAreFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule_at(7, [&order, i](SimTime) { order.push_back(i); });
    while (q.step()) {}
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Regression for heap-implementation-dependent tie order: interleave pops
// with pushes at the same timestamp so the heap is repeatedly restructured
// mid-tie-group, and mix tie groups at several timestamps scheduled out of
// order. With a (when, seq) total order the dequeue sequence is forced to be
// FIFO within every timestamp regardless of how the heap rebalances.
TEST(EventQueue, TiesAreFifoUnderInterleavedScheduling) {
    EventQueue q;
    std::vector<std::pair<SimTime, int>> order;
    int next_id = 0;
    auto record = [&order](SimTime t, int id) { order.emplace_back(t, id); };
    // Scrambled schedule order across three tie groups.
    const SimTime times[] = {20, 10, 30, 10, 20, 30, 10, 20, 30, 10};
    std::vector<std::vector<int>> expect_by_time(4);
    for (SimTime t : times) {
        const int id = next_id++;
        expect_by_time[t / 10].push_back(id);
        q.schedule_at(t, [&record, id](SimTime at) { record(at, id); });
    }
    // First event of the t=10 group appends more t=10 events from inside its
    // callback; they must still fire after every already-queued t=10 event.
    const int late_a = next_id++;
    const int late_b = next_id++;
    q.schedule_at(10, [&](SimTime) {
        q.schedule_at(10, [&record, late_a](SimTime at) { record(at, late_a); });
        q.schedule_at(10, [&record, late_b](SimTime at) { record(at, late_b); });
    });
    while (q.step()) {}
    std::vector<std::pair<SimTime, int>> expect;
    for (int id : expect_by_time[1]) expect.emplace_back(10, id);
    expect.emplace_back(10, late_a);
    expect.emplace_back(10, late_b);
    for (int id : expect_by_time[2]) expect.emplace_back(20, id);
    for (int id : expect_by_time[3]) expect.emplace_back(30, id);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, LargeTieGroupStaysFifo) {
    EventQueue q;
    std::vector<int> order;
    // Two waves into the same timestamp with pops in between, large enough
    // to force many sift-up/sift-down rounds in any binary-heap layout.
    for (int i = 0; i < 64; ++i)
        q.schedule_at(5, [&order, i](SimTime) { order.push_back(i); });
    q.schedule_at(1, [&](SimTime) {
        for (int i = 64; i < 128; ++i)
            q.schedule_at(5, [&order, i](SimTime) { order.push_back(i); });
    });
    while (q.step()) {}
    std::vector<int> expect(128);
    for (int i = 0; i < 128; ++i) expect[static_cast<std::size_t>(i)] = i;
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, ScheduleInIsRelative) {
    EventQueue q;
    SimTime fired_at = 0;
    q.schedule_at(5, [&](SimTime) {});
    q.step();
    q.schedule_in(10, [&](SimTime t) { fired_at = t; });
    q.step();
    EXPECT_EQ(fired_at, 15U);
}

TEST(EventQueue, PastSchedulingThrows) {
    EventQueue q;
    q.schedule_at(10, [](SimTime) {});
    q.step();
    EXPECT_THROW(q.schedule_at(5, [](SimTime) {}), std::invalid_argument);
}

TEST(EventQueue, EmptyCallbackThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_at(1, {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
    EventQueue q;
    int fired = 0;
    q.schedule_at(5, [&](SimTime) { ++fired; });
    q.schedule_at(15, [&](SimTime) { ++fired; });
    q.run_until(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10U);
    EXPECT_EQ(q.pending(), 1U);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
    EventQueue q;
    q.run_until(42);
    EXPECT_EQ(q.now(), 42U);
}

TEST(EventQueue, EventsCanScheduleEvents) {
    EventQueue q;
    std::vector<SimTime> fire_times;
    q.schedule_at(1, [&](SimTime t) {
        fire_times.push_back(t);
        q.schedule_in(2, [&](SimTime t2) { fire_times.push_back(t2); });
    });
    q.run_until(10);
    EXPECT_EQ(fire_times, (std::vector<SimTime>{1, 3}));
}

}  // namespace
