#include "ccap/sched/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using ccap::sched::EventQueue;
using ccap::sched::SimTime;

TEST(EventQueue, StartsEmptyAtTimeZero) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0U);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(30, [&](SimTime) { order.push_back(3); });
    q.schedule_at(10, [&](SimTime) { order.push_back(1); });
    q.schedule_at(20, [&](SimTime) { order.push_back(2); });
    while (q.step()) {}
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30U);
}

TEST(EventQueue, TiesAreFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule_at(7, [&order, i](SimTime) { order.push_back(i); });
    while (q.step()) {}
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
    EventQueue q;
    SimTime fired_at = 0;
    q.schedule_at(5, [&](SimTime) {});
    q.step();
    q.schedule_in(10, [&](SimTime t) { fired_at = t; });
    q.step();
    EXPECT_EQ(fired_at, 15U);
}

TEST(EventQueue, PastSchedulingThrows) {
    EventQueue q;
    q.schedule_at(10, [](SimTime) {});
    q.step();
    EXPECT_THROW(q.schedule_at(5, [](SimTime) {}), std::invalid_argument);
}

TEST(EventQueue, EmptyCallbackThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_at(1, {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
    EventQueue q;
    int fired = 0;
    q.schedule_at(5, [&](SimTime) { ++fired; });
    q.schedule_at(15, [&](SimTime) { ++fired; });
    q.run_until(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10U);
    EXPECT_EQ(q.pending(), 1U);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
    EventQueue q;
    q.run_until(42);
    EXPECT_EQ(q.now(), 42U);
}

TEST(EventQueue, EventsCanScheduleEvents) {
    EventQueue q;
    std::vector<SimTime> fire_times;
    q.schedule_at(1, [&](SimTime t) {
        fire_times.push_back(t);
        q.schedule_in(2, [&](SimTime t2) { fire_times.push_back(t2); });
    });
    q.run_until(10);
    EXPECT_EQ(fire_times, (std::vector<SimTime>{1, 3}));
}

}  // namespace
