#include "ccap/sched/smp.hpp"

#include <gtest/gtest.h>

#include "ccap/core/protocol_analysis.hpp"

namespace {

using namespace ccap::sched;

SmpCovertConfig config(unsigned cores, std::size_t background = 0) {
    SmpCovertConfig c;
    c.cores = cores;
    c.message_len = 4000;
    c.background_processes = background;
    return c;
}

TEST(Smp, Validation) {
    EXPECT_THROW(MultiprocessorSim(nullptr, 2, 1), std::invalid_argument);
    EXPECT_THROW(MultiprocessorSim(make_random(), 0, 1), std::invalid_argument);
    SmpCovertConfig c = config(0);
    EXPECT_THROW((void)run_smp_covert_pair(make_random(), c, 1), std::invalid_argument);
}

TEST(Smp, SingleCoreMatchesUniprocessorStatistics) {
    // K=1 must reproduce the uniprocessor naive-channel rates: under the
    // memoryless scheduler, P_d = P_i = 1/3 per channel use.
    const auto res = run_smp_covert_pair(make_random(), config(1), 2);
    const auto theory = ccap::core::naive_scheduler_channel_params(0.5, 1);
    EXPECT_NEAR(res.deletion_rate(), theory.p_d, 0.03);
    EXPECT_NEAR(res.insertion_rate(), theory.p_i, 0.03);
}

TEST(Smp, TwoCoresIdleIsNearlySynchronous) {
    // Both processes get a core every quantum; only the intra-quantum race
    // ordering perturbs the stream (read-before-write looks like an
    // insertion followed by a deletion opportunity).
    const auto res = run_smp_covert_pair(make_random(), config(2), 3);
    EXPECT_EQ(res.sent.size(), 4000U);
    // Race ordering is fair: roughly half the quanta deliver in order.
    EXPECT_LT(res.deletion_rate(), 0.45);
    // The channel is far faster than the uniprocessor one: sender finishes
    // in ~message_len quanta instead of ~2x.
    EXPECT_LT(res.total_quanta, 4200U);
}

TEST(Smp, ContentionRestoresNonSynchrony) {
    // Background hogs take cores away from the pair: deletions/insertions
    // climb back toward the uniprocessor picture.
    const auto idle = run_smp_covert_pair(make_random(), config(2, 0), 4);
    const auto l4 = run_smp_covert_pair(make_random(), config(2, 4), 4);
    const auto l8 = run_smp_covert_pair(make_random(), config(2, 8), 4);
    EXPECT_GT(l4.deletion_rate() + l4.insertion_rate(),
              idle.deletion_rate() + idle.insertion_rate());
    EXPECT_GT(l8.deletion_rate(), l4.deletion_rate() - 0.02);
    EXPECT_GT(l8.total_quanta, idle.total_quanta);
}

TEST(Smp, MoreCoresAbsorbLoad) {
    // At fixed background load, adding cores gives the pair its slots back.
    const auto two = run_smp_covert_pair(make_random(), config(2, 6), 5);
    const auto eight = run_smp_covert_pair(make_random(), config(8, 6), 5);
    EXPECT_LT(eight.deletion_rate(), two.deletion_rate());
    EXPECT_LT(eight.total_quanta, two.total_quanta);
}

TEST(Smp, RoundRobinTwoCoresRunsBothEveryQuantum) {
    const auto res = run_smp_covert_pair(make_round_robin(), config(2), 6);
    // Sender gets every quantum: message length quanta (plus drain).
    EXPECT_LE(res.total_quanta, 4010U);
    // One drain read at the end may duplicate the final symbol.
    EXPECT_NEAR(static_cast<double>(res.received.size()),
                static_cast<double>(res.sent.size()), 2.0);
}

TEST(Smp, DeterministicForSeed) {
    const auto a = run_smp_covert_pair(make_random(), config(2, 2), 7);
    const auto b = run_smp_covert_pair(make_random(), config(2, 2), 7);
    EXPECT_EQ(a.received, b.received);
    EXPECT_EQ(a.deletions, b.deletions);
}

}  // namespace
