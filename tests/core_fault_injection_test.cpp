#include "ccap/core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <tuple>

#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"
#include "ccap/util/thread_pool.hpp"

namespace {

using namespace ccap::core;

std::vector<std::uint32_t> message(std::size_t n, unsigned bits, std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    std::vector<std::uint32_t> m(n);
    for (auto& s : m) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return m;
}

FeedbackLink perfect_link(std::uint64_t seed = 99) { return {FeedbackLinkParams{}, seed}; }

FeedbackLink delayed_link(std::uint64_t delay, std::uint64_t seed = 99) {
    FeedbackLinkParams p;
    p.delay = delay;
    return {p, seed};
}

// ---------------------------------------------------------------------------
// Zero-fault passthrough: decorating with a null profile must not change a
// single bit of any protocol run, for any seed.
// ---------------------------------------------------------------------------

TEST(FaultyChannel, NullProfileIsBitIdenticalAcrossSeeds) {
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 12345ULL}) {
        const auto msg = message(3000, 2, seed);
        DeletionInsertionChannel plain({0.25, 0.1, 0.05, 2}, seed);
        DeletionInsertionChannel inner({0.25, 0.1, 0.05, 2}, seed);
        FaultyChannel faulty(inner, FaultProfile{}, seed ^ 0xF0F0);

        const ProtocolRun a = run_counter_protocol(plain, msg);
        const ProtocolRun b = run_counter_protocol(faulty, msg);
        EXPECT_EQ(a, b) << "seed=" << seed;
        EXPECT_EQ(faulty.stats().injected_faults(), 0U);
        EXPECT_TRUE(faulty.fault_log().empty());
    }
}

TEST(FaultyChannel, NullProfileEventStreamMatchesUndecorated) {
    // Compare the per-use outcome stream itself, not just protocol totals.
    for (std::uint64_t seed : {3ULL, 11ULL, 2026ULL}) {
        DeletionInsertionChannel plain({0.2, 0.15, 0.1, 3}, seed);
        DeletionInsertionChannel inner({0.2, 0.15, 0.1, 3}, seed);
        FaultyChannel faulty(inner, FaultProfile{}, seed);
        for (std::uint32_t q = 0; q < 2000; ++q) {
            const auto a = plain.use(q & 7U);
            const auto b = faulty.use(q & 7U);
            ASSERT_EQ(a.kind, b.kind) << "seed=" << seed << " use=" << q;
            ASSERT_EQ(a.delivered, b.delivered);
            ASSERT_EQ(a.consumed, b.consumed);
        }
    }
}

TEST(HardenedProtocols, ZeroFaultBitIdenticalToPlain) {
    const HardenedOptions opts;
    for (std::uint64_t seed : {1ULL, 5ULL, 99ULL, 4242ULL}) {
        const auto msg = message(2000, 1, seed);
        {
            DeletionInsertionChannel a({0.3, 0.0, 0.0, 1}, seed);
            DeletionInsertionChannel b({0.3, 0.0, 0.0, 1}, seed);
            auto link = perfect_link(seed);
            EXPECT_EQ(run_stop_and_wait(a, msg),
                      run_hardened_stop_and_wait(b, msg, link, opts))
                << "stop-and-wait seed=" << seed;
        }
        {
            DeletionInsertionChannel a({0.2, 0.1, 0.05, 1}, seed);
            DeletionInsertionChannel b({0.2, 0.1, 0.05, 1}, seed);
            auto link = perfect_link(seed);
            EXPECT_EQ(run_counter_protocol(a, msg),
                      run_hardened_counter_protocol(b, msg, link, opts))
                << "counter seed=" << seed;
        }
    }
}

TEST(HardenedProtocols, ZeroFaultBitIdenticalToDelayedVariants) {
    HardenedOptions opts;
    opts.timeout = 16;  // must cover the link delay
    for (std::uint64_t delay : {1ULL, 4ULL, 9ULL}) {
        for (std::uint64_t seed : {2ULL, 17ULL, 301ULL}) {
            const auto msg = message(1500, 1, seed);
            {
                DeletionInsertionChannel a({0.25, 0.0, 0.0, 1}, seed);
                DeletionInsertionChannel b({0.25, 0.0, 0.0, 1}, seed);
                auto link = delayed_link(delay, seed);
                EXPECT_EQ(run_delayed_stop_and_wait(a, msg, delay),
                          run_hardened_stop_and_wait(b, msg, link, opts))
                    << "delayed SAW delay=" << delay << " seed=" << seed;
            }
            {
                DeletionInsertionChannel a({0.25, 0.0, 0.0, 1}, seed);
                DeletionInsertionChannel b({0.25, 0.0, 0.0, 1}, seed);
                auto link = delayed_link(delay, seed);
                EXPECT_EQ(run_go_back_n(a, msg, delay),
                          run_hardened_go_back_n(b, msg, link, opts))
                    << "go-back-N delay=" << delay << " seed=" << seed;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault schedules: deterministic replay and per-component behavior.
// ---------------------------------------------------------------------------

TEST(FaultyChannel, ReplayedScheduleIsDeterministic) {
    const auto profile = [] {
        FaultProfile p = FaultProfile::storms(50, 5);
        p.drift_amplitude = 0.3;
        p.drift_period = 200;
        p.stuck_period = 97;
        p.stuck_len = 3;
        return p;
    }();
    const auto msg = message(4000, 2, 8);

    auto run_once = [&] {
        DeletionInsertionChannel inner({0.1, 0.05, 0.0, 2}, 8);
        FaultyChannel faulty(inner, profile, 77);
        const ProtocolRun run = run_counter_protocol(faulty, msg);
        return std::tuple{run, faulty.stats().storm_drops, faulty.stats().drift_drops,
                          faulty.stats().stuck_overrides, faulty.fault_log().size()};
    };
    const auto first = run_once();
    const auto second = run_once();
    EXPECT_EQ(std::get<0>(first), std::get<0>(second));
    EXPECT_EQ(std::get<1>(first), std::get<1>(second));
    EXPECT_EQ(std::get<2>(first), std::get<2>(second));
    EXPECT_EQ(std::get<3>(first), std::get<3>(second));
    EXPECT_EQ(std::get<4>(first), std::get<4>(second));
    EXPECT_GT(std::get<1>(first) + std::get<2>(first) + std::get<3>(first), 0U);
}

TEST(FaultyChannel, StormWindowsBlackOutDeliveries) {
    // A clean inner channel delivers every use; storms must blank exactly
    // the scheduled windows.
    DeletionInsertionChannel inner({0.0, 0.0, 0.0, 1}, 1);
    FaultyChannel faulty(inner, FaultProfile::storms(10, 3), 1);
    for (std::uint64_t t = 0; t < 100; ++t) {
        const auto out = faulty.use(1);
        const bool in_storm = (t % 10) < 3;
        EXPECT_EQ(out.delivered.has_value(), !in_storm) << "t=" << t;
        EXPECT_TRUE(out.consumed);  // sender-side semantics untouched
    }
    EXPECT_EQ(faulty.stats().storm_drops, 30U);
    for (const auto& f : faulty.fault_log()) {
        EXPECT_EQ(f.kind, InjectedFault::Kind::storm_drop);
        EXPECT_LT(f.use % 10, 3U);
    }
}

TEST(FaultyChannel, StuckWindowsForceTheStuckSymbol) {
    DeletionInsertionChannel inner({0.0, 0.0, 0.0, 2}, 2);
    FaultyChannel faulty(inner, FaultProfile::stuck_at(8, 4, 3), 2);
    for (std::uint64_t t = 0; t < 64; ++t) {
        const auto out = faulty.use(static_cast<std::uint32_t>(t % 4));
        ASSERT_TRUE(out.delivered.has_value());
        if ((t % 8) < 4)
            EXPECT_EQ(*out.delivered, 3U) << "t=" << t;
        else
            EXPECT_EQ(*out.delivered, static_cast<std::uint32_t>(t % 4)) << "t=" << t;
    }
    // 32 uses in stuck windows, a quarter of which already queued symbol 3.
    EXPECT_EQ(faulty.stats().stuck_overrides, 24U);
}

TEST(FaultyChannel, DriftAddsDeletionsMidPeriod) {
    DeletionInsertionChannel inner({0.0, 0.0, 0.0, 1}, 3);
    FaultyChannel faulty(inner, FaultProfile::drifting(0.5, 1000), 3);
    std::uint64_t delivered = 0;
    for (std::uint64_t t = 0; t < 10000; ++t)
        if (faulty.use(1).delivered) ++delivered;
    // Mean extra deletion probability over a full period is amplitude/2.
    EXPECT_GT(faulty.stats().drift_drops, 1500U);
    EXPECT_LT(faulty.stats().drift_drops, 3500U);
    EXPECT_EQ(delivered + faulty.stats().drift_drops, 10000U);
}

TEST(FaultProfile, ValidateRejectsMalformedSchedules) {
    FaultProfile bad;
    bad.drift_amplitude = 1.5;
    EXPECT_THROW(bad.validate(), std::domain_error);
    bad.drift_amplitude = std::nan("");
    EXPECT_THROW(bad.validate(), std::domain_error);
    bad = FaultProfile{};
    bad.storm_len = 5;  // active storms need a period
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = FaultProfile{};
    bad.storm_period = 4;
    bad.storm_len = 5;  // window longer than period
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    DeletionInsertionChannel inner({0.0, 0.0, 0.0, 1}, 1);
    EXPECT_THROW((void)FaultyChannel(inner, bad, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hardened behavior under real faults.
// ---------------------------------------------------------------------------

TEST(HardenedStopAndWait, AcceptanceRateMatchesTheoryUnderAckLoss) {
    // ISSUE acceptance: ack loss 0.2, finite timeout, ~1e5-use seeded run:
    // still reliable, measured rate within 5% of the closed form.
    const DiChannelParams p{0.2, 0.0, 0.0, 1};
    FeedbackLinkParams lp;
    lp.p_loss = 0.2;
    lp.delay = 2;
    HardenedOptions opts;
    opts.timeout = 6;
    const double predicted = hardened_stop_and_wait_rate(p, lp, opts);

    DeletionInsertionChannel ch(p, 2026);
    FeedbackLink link(lp, 515);
    const auto msg = message(20000, 1, 2026);  // ~1e5 uses at this loss/delay
    const ProtocolRun run = run_hardened_stop_and_wait(ch, msg, link, opts);
    ASSERT_TRUE(run.reliable);
    EXPECT_GT(run.channel_uses, 90000U);
    EXPECT_GT(run.timeouts, 0U);
    EXPECT_GT(run.resync_events, 0U);
    const double measured =
        static_cast<double>(msg.size()) / static_cast<double>(run.channel_uses);
    EXPECT_NEAR(measured / predicted, 1.0, 0.05);
    EXPECT_NEAR(run.rate_gap(predicted, 1), 0.0, 0.05 * predicted);
}

TEST(HardenedStopAndWait, TheoryCollapsesToDelayedFormAsLossVanishes) {
    const DiChannelParams p{0.3, 0.0, 0.0, 2};
    for (std::uint64_t delay : {0ULL, 3ULL}) {
        FeedbackLinkParams lp;
        lp.p_loss = 1e-9;
        lp.delay = delay;
        HardenedOptions opts;
        opts.timeout = delay + 4;
        EXPECT_NEAR(hardened_stop_and_wait_rate(p, lp, opts),
                    delayed_stop_and_wait_rate(p, delay), 1e-6)
            << "delay=" << delay;
    }
}

TEST(HardenedStopAndWait, SurvivesCorruptedAcks) {
    // Corrupted ACK frames are CRC-detected and never misread as ACKs, so
    // the run stays reliable; every corruption shows up in the counters.
    const DiChannelParams p{0.1, 0.0, 0.0, 1};
    DeletionInsertionChannel ch(p, 7);
    FeedbackLinkParams lp;
    lp.p_corrupt = 0.3;
    FeedbackLink link(lp, 8);
    const auto msg = message(4000, 1, 7);
    const ProtocolRun run = run_hardened_stop_and_wait(ch, msg, link, HardenedOptions{});
    EXPECT_TRUE(run.reliable);
    EXPECT_GT(run.acks_corrupted, 0U);
    EXPECT_EQ(run.acks_lost, 0U);
    EXPECT_GT(run.retransmissions, run.acks_corrupted / 2);
}

TEST(HardenedStopAndWait, BackoffEscalatesTimeoutCost) {
    // Same loss pattern, bigger backoff multiplier => strictly more idle
    // uses spent waiting.
    const DiChannelParams p{0.1, 0.0, 0.0, 1};
    FeedbackLinkParams lp;
    lp.p_loss = 0.4;
    const auto msg = message(3000, 1, 9);
    HardenedOptions flat;
    flat.timeout = 4;
    flat.backoff_mult = 1;
    flat.backoff_cap = 4;
    HardenedOptions doubling;
    doubling.timeout = 4;
    doubling.backoff_mult = 2;
    doubling.backoff_cap = 64;
    DeletionInsertionChannel c1(p, 9);
    FeedbackLink l1(lp, 10);
    DeletionInsertionChannel c2(p, 9);
    FeedbackLink l2(lp, 10);
    const ProtocolRun a = run_hardened_stop_and_wait(c1, msg, l1, flat);
    const ProtocolRun b = run_hardened_stop_and_wait(c2, msg, l2, doubling);
    EXPECT_TRUE(a.reliable);
    EXPECT_TRUE(b.reliable);
    EXPECT_EQ(a.timeouts, b.timeouts);  // identical loss pattern (same seeds)
    EXPECT_GT(b.channel_uses, a.channel_uses);
    EXPECT_GT(hardened_stop_and_wait_rate(p, lp, flat),
              hardened_stop_and_wait_rate(p, lp, doubling));
}

TEST(HardenedCounter, ResyncsAfterLostAndCorruptedCounts) {
    const DiChannelParams p{0.15, 0.1, 0.0, 2};
    DeletionInsertionChannel ch(p, 21);
    FeedbackLinkParams lp;
    lp.p_loss = 0.2;
    lp.p_corrupt = 0.1;
    FeedbackLink link(lp, 22);
    const auto msg = message(5000, 2, 21);
    const ProtocolRun run = run_hardened_counter_protocol(ch, msg, link, HardenedOptions{});
    EXPECT_EQ(run.received.size(), msg.size());
    EXPECT_GT(run.resync_events, 0U);
    EXPECT_GT(run.acks_lost, 0U);
    EXPECT_GT(run.acks_corrupted, 0U);
    // Stale counts cost extra garbage/errors but the run still terminates
    // with a full-length stream — degradation, not collapse.
    EXPECT_LT(run.symbol_errors, msg.size() / 2);
}

TEST(HardenedGoBackN, DeliversReliablyDespiteLostReports) {
    const DiChannelParams p{0.2, 0.0, 0.0, 1};
    for (std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
        DeletionInsertionChannel ch(p, seed);
        FeedbackLinkParams lp;
        lp.p_loss = 0.25;
        lp.delay = 3;
        FeedbackLink link(lp, seed ^ 0xAB);
        const auto msg = message(3000, 1, seed);
        const ProtocolRun run = run_hardened_go_back_n(ch, msg, link, HardenedOptions{});
        EXPECT_TRUE(run.reliable) << "seed=" << seed;
        EXPECT_GT(run.acks_lost, 0U);
    }
}

TEST(HardenedProtocols, ChannelUseCapStopsPathologicalRuns) {
    // A link that loses everything can never complete; the cap turns an
    // infinite loop into a clean unreliable result.
    const DiChannelParams p{0.1, 0.0, 0.0, 1};
    DeletionInsertionChannel ch(p, 41);
    FeedbackLinkParams lp;
    lp.p_loss = 1.0;
    FeedbackLink link(lp, 42);
    HardenedOptions opts;
    opts.channel_use_cap = 5000;
    const auto msg = message(100, 1, 41);
    const ProtocolRun run = run_hardened_stop_and_wait(ch, msg, link, opts);
    EXPECT_FALSE(run.reliable);
    EXPECT_GE(run.symbol_errors, msg.size() - run.received.size());

    // Go-back-N survives even total report loss: its deadlock breaker
    // restarts the window from the last known count, so in-order deliveries
    // still accumulate — it completes reliably instead of hitting the cap.
    DeletionInsertionChannel ch2(p, 41);
    FeedbackLink link2(lp, 42);
    const ProtocolRun gbn = run_hardened_go_back_n(ch2, msg, link2, opts);
    EXPECT_TRUE(gbn.reliable);
    EXPECT_LE(gbn.channel_uses, opts.channel_use_cap);
}

TEST(HardenedProtocols, StormsDegradeRateNotReliability) {
    const DiChannelParams p{0.1, 0.0, 0.0, 1};
    DeletionInsertionChannel inner({0.1, 0.0, 0.0, 1}, 51);
    FaultyChannel faulty(inner, FaultProfile::storms(40, 10), 52);
    auto link = perfect_link(53);
    const auto msg = message(4000, 1, 51);
    const ProtocolRun run = run_hardened_stop_and_wait(faulty, msg, link, HardenedOptions{});
    EXPECT_TRUE(run.reliable);
    EXPECT_GT(faulty.stats().storm_drops, 0U);
    // Rate sits below the fault-free closed form by roughly the storm duty
    // cycle; it must still be positive and the gap must be visible.
    const double clean = delayed_stop_and_wait_rate(p, 0);
    EXPECT_GT(run.measured_info_rate(1), 0.0);
    EXPECT_GT(run.rate_gap(clean, 1), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency: independent fault-injected runs on a shared pool must be
// bit-identical to their serial counterparts (exercised under TSan in
// tier-1; see scripts/tier1.sh).
// ---------------------------------------------------------------------------

TEST(FaultInjectionParallel, IndependentRunsMatchSerialResults) {
    constexpr std::size_t kRuns = 8;
    std::vector<ProtocolRun> serial(kRuns);
    auto run_one = [](std::size_t i) {
        const std::uint64_t seed = 1000 + i;
        DeletionInsertionChannel inner({0.2, 0.0, 0.0, 1}, seed);
        FaultyChannel faulty(inner, FaultProfile::storms(30, 5), seed ^ 0x11);
        FeedbackLinkParams lp;
        lp.p_loss = 0.1;
        FeedbackLink link(lp, seed ^ 0x22);
        const auto msg = message(1000, 1, seed);
        return run_hardened_stop_and_wait(faulty, msg, link, HardenedOptions{});
    };
    for (std::size_t i = 0; i < kRuns; ++i) serial[i] = run_one(i);

    ccap::util::ThreadPool pool(4);
    std::vector<ProtocolRun> parallel(kRuns);
    std::atomic<int> mismatches{0};
    ccap::util::parallel_for(pool, kRuns, [&](std::size_t i) {
        parallel[i] = run_one(i);
        if (!(parallel[i] == serial[i])) mismatches.fetch_add(1);
    });
    EXPECT_EQ(mismatches.load(), 0);
    for (std::size_t i = 0; i < kRuns; ++i) EXPECT_EQ(parallel[i], serial[i]) << i;
}

}  // namespace
