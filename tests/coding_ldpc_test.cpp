#include "ccap/coding/ldpc_gf.hpp"

#include <gtest/gtest.h>

#include "ccap/util/rng.hpp"

namespace {

using ccap::coding::NbLdpcCode;
using ccap::coding::NbLdpcParams;
using ccap::util::Matrix;
using ccap::util::Rng;

NbLdpcParams small_params() {
    NbLdpcParams p;
    p.field_m = 4;       // GF(16)
    p.n = 48;
    p.num_checks = 16;
    p.var_degree = 3;
    p.seed = 7;
    return p;
}

std::vector<std::uint16_t> random_info(const NbLdpcCode& code, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint16_t> info(code.k());
    for (auto& s : info) s = static_cast<std::uint16_t>(rng.uniform_below(code.field().size()));
    return info;
}

/// Channel likelihoods for a word observed through a q-ary symmetric
/// channel with error probability p (each wrong symbol equally likely).
Matrix qsc_likelihoods(const NbLdpcCode& code, std::span<const std::uint16_t> observed,
                       double p) {
    const unsigned q = code.field().size();
    Matrix like(code.n(), q, p / (q - 1));
    for (std::size_t v = 0; v < code.n(); ++v) like(v, observed[v]) = 1.0 - p;
    return like;
}

TEST(NbLdpc, ConstructionValidation) {
    NbLdpcParams p = small_params();
    p.num_checks = 0;
    EXPECT_THROW(NbLdpcCode{p}, std::invalid_argument);
    p = small_params();
    p.num_checks = p.n;
    EXPECT_THROW(NbLdpcCode{p}, std::invalid_argument);
    p = small_params();
    p.var_degree = 1;
    EXPECT_THROW(NbLdpcCode{p}, std::invalid_argument);
}

TEST(NbLdpc, FullRankGivesDesignRate) {
    const NbLdpcCode code(small_params());
    EXPECT_EQ(code.k(), code.n() - small_params().num_checks);
    EXPECT_NEAR(code.rate(), 2.0 / 3.0, 1e-12);
}

TEST(NbLdpc, EncodeSatisfiesChecks) {
    const NbLdpcCode code(small_params());
    for (int trial = 0; trial < 10; ++trial) {
        const auto info = random_info(code, 100 + trial);
        const auto word = code.encode(info);
        EXPECT_EQ(word.size(), code.n());
        EXPECT_TRUE(code.check(word));
        EXPECT_EQ(code.extract_info(word), info);
    }
}

TEST(NbLdpc, EncodeValidation) {
    const NbLdpcCode code(small_params());
    std::vector<std::uint16_t> wrong_size(code.k() + 1, 0);
    EXPECT_THROW((void)code.encode(wrong_size), std::invalid_argument);
    std::vector<std::uint16_t> out_of_field(code.k(), 16);
    EXPECT_THROW((void)code.encode(out_of_field), std::out_of_range);
}

TEST(NbLdpc, CheckRejectsNonCodewords) {
    const NbLdpcCode code(small_params());
    auto word = code.encode(random_info(code, 5));
    word[3] = static_cast<std::uint16_t>(word[3] ^ 1U);
    EXPECT_FALSE(code.check(word));
    std::vector<std::uint16_t> wrong_len(code.n() - 1, 0);
    EXPECT_FALSE(code.check(wrong_len));
}

TEST(NbLdpc, DecodeCleanObservation) {
    const NbLdpcCode code(small_params());
    const auto info = random_info(code, 9);
    const auto word = code.encode(info);
    const auto res = code.decode(qsc_likelihoods(code, word, 0.01));
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.symbols, word);
}

TEST(NbLdpc, DecodeCorrectsSymbolErrors) {
    const NbLdpcCode code(small_params());
    Rng rng(11);
    int successes = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto info = random_info(code, 200 + trial);
        const auto word = code.encode(info);
        auto observed = word;
        // Corrupt 3 of 48 symbols (~6%).
        for (int e = 0; e < 3; ++e) {
            const std::size_t pos = rng.uniform_below(code.n());
            observed[pos] = static_cast<std::uint16_t>(rng.uniform_below(16));
        }
        const auto res = code.decode(qsc_likelihoods(code, observed, 0.07));
        if (res.converged && res.symbols == word) ++successes;
    }
    EXPECT_GE(successes, 8);
}

TEST(NbLdpc, DecodeReportsNonConvergenceOnGarbage) {
    const NbLdpcCode code(small_params());
    Rng rng(12);
    Matrix garbage(code.n(), 16);
    for (std::size_t v = 0; v < code.n(); ++v)
        for (unsigned s = 0; s < 16; ++s) garbage(v, s) = rng.uniform() + 0.01;
    const auto res = code.decode(garbage, 10);
    // Overwhelmingly likely that random likelihoods don't decode to a
    // codeword within 10 iterations.
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 10);
}

TEST(NbLdpc, DecodeValidatesLikelihoodShape) {
    const NbLdpcCode code(small_params());
    Matrix wrong(code.n(), 8, 1.0 / 8);
    EXPECT_THROW((void)code.decode(wrong), std::invalid_argument);
}

TEST(NbLdpc, DifferentSeedsDifferentCodes) {
    NbLdpcParams a = small_params();
    NbLdpcParams b = small_params();
    b.seed = 8;
    const NbLdpcCode ca(a), cb(b);
    const auto info = random_info(ca, 3);
    EXPECT_NE(ca.encode(info), cb.encode(info));
}

TEST(NbLdpc, BinaryFieldWorksToo) {
    NbLdpcParams p = small_params();
    p.field_m = 1;  // GF(2)
    p.n = 60;
    p.num_checks = 20;
    const NbLdpcCode code(p);
    const auto info = random_info(code, 77);
    const auto word = code.encode(info);
    EXPECT_TRUE(code.check(word));
    const auto res = code.decode(qsc_likelihoods(code, word, 0.02));
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.symbols, word);
}

}  // namespace
