#include "ccap/info/blahut_arimoto.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ccap/info/entropy.hpp"

namespace {

using namespace ccap::info;

TEST(BlahutArimoto, BscMatchesClosedForm) {
    for (double p : {0.0, 0.05, 0.11, 0.25, 0.4}) {
        const auto r = blahut_arimoto(make_bsc(p));
        EXPECT_TRUE(r.converged);
        EXPECT_NEAR(r.capacity, bsc_capacity(p), 1e-7) << "p=" << p;
    }
}

TEST(BlahutArimoto, BecMatchesClosedForm) {
    for (double e : {0.0, 0.1, 0.5, 0.9}) {
        const auto r = blahut_arimoto(make_bec(e));
        EXPECT_NEAR(r.capacity, bec_capacity(e), 1e-7) << "e=" << e;
    }
}

TEST(BlahutArimoto, ZChannelMatchesClosedForm) {
    for (double p : {0.1, 0.3, 0.5, 0.7}) {
        const auto r = blahut_arimoto(make_z_channel(p));
        EXPECT_NEAR(r.capacity, z_channel_capacity(p), 1e-7) << "p=" << p;
    }
}

TEST(BlahutArimoto, ZChannelOptimalInputIsAsymmetric) {
    const auto r = blahut_arimoto(make_z_channel(0.5));
    ASSERT_EQ(r.optimal_input.size(), 2U);
    // The Z-channel favours input 0 (the reliable symbol).
    EXPECT_GT(r.optimal_input[0], r.optimal_input[1]);
}

TEST(BlahutArimoto, MaryChannels) {
    const auto r16 = blahut_arimoto(make_mary_symmetric(16, 0.1));
    EXPECT_NEAR(r16.capacity, mary_symmetric_capacity(0.1, 16), 1e-7);
    const auto er = blahut_arimoto(make_mary_erasure(8, 0.25));
    EXPECT_NEAR(er.capacity, mary_erasure_capacity(8, 0.25), 1e-7);
}

TEST(BlahutArimoto, NoiselessCapacityIsLogM) {
    const auto r = blahut_arimoto(make_noiseless(8));
    EXPECT_NEAR(r.capacity, 3.0, 1e-8);
}

TEST(BlahutArimoto, UselessChannelZeroCapacity) {
    // All rows identical: output independent of input.
    ccap::util::Matrix w{{0.3, 0.7}, {0.3, 0.7}};
    const auto r = blahut_arimoto(Dmc(w));
    EXPECT_NEAR(r.capacity, 0.0, 1e-9);
}

TEST(BlahutArimoto, SandwichIsValid) {
    const auto r = blahut_arimoto(make_bsc(0.17));
    EXPECT_LE(r.lower_bound, r.capacity + 1e-12);
    EXPECT_GE(r.upper_bound + 1e-12, r.capacity);
    EXPECT_LE(r.upper_bound - r.lower_bound, 1e-9);
}

TEST(BlahutArimoto, OptimalInputIsDistribution) {
    const auto r = blahut_arimoto(make_mary_symmetric(5, 0.2));
    double sum = 0.0;
    for (double p : r.optimal_input) {
        EXPECT_GE(p, 0.0);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BlahutArimoto, SymmetricChannelUniformInput) {
    const auto r = blahut_arimoto(make_mary_symmetric(4, 0.15));
    for (double p : r.optimal_input) EXPECT_NEAR(p, 0.25, 1e-5);
}

class BaBscSweep : public ::testing::TestWithParam<double> {};

TEST_P(BaBscSweep, CapacityWithinSandwich) {
    const double p = GetParam();
    const auto r = blahut_arimoto(make_bsc(p));
    const double truth = bsc_capacity(p);
    EXPECT_GE(truth, r.lower_bound - 1e-9);
    EXPECT_LE(truth, r.upper_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaBscSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3, 0.45, 0.49));

TEST(CapacityPerUnitCost, EqualCostsReduceToPlainCapacity) {
    const std::vector<double> costs = {2.0, 2.0};
    const auto r = capacity_per_unit_cost(make_bsc(0.1), costs);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.capacity_per_cost, bsc_capacity(0.1) / 2.0, 1e-6);
}

TEST(CapacityPerUnitCost, NoiselessMatchesShannonTiming) {
    // Noiseless binary channel, durations {1, 2}: Shannon's C = log2(x0)
    // with x^-1 + x^-2 = 1  =>  x0 = golden ratio.
    const std::vector<double> costs = {1.0, 2.0};
    const auto r = capacity_per_unit_cost(make_noiseless(2), costs);
    const double phi = (1.0 + std::sqrt(5.0)) / 2.0;
    EXPECT_NEAR(r.capacity_per_cost, std::log2(phi), 1e-6);
}

TEST(CapacityPerUnitCost, CheaperSymbolGetsMoreMass) {
    const std::vector<double> costs = {1.0, 10.0};
    const auto r = capacity_per_unit_cost(make_noiseless(2), costs);
    ASSERT_EQ(r.optimal_input.size(), 2U);
    EXPECT_GT(r.optimal_input[0], r.optimal_input[1]);
}

TEST(CapacityPerUnitCost, BadCostsThrow) {
    const std::vector<double> wrong_size = {1.0};
    EXPECT_THROW((void)capacity_per_unit_cost(make_bsc(0.1), wrong_size),
                 std::invalid_argument);
    const std::vector<double> nonpositive = {1.0, 0.0};
    EXPECT_THROW((void)capacity_per_unit_cost(make_bsc(0.1), nonpositive), std::domain_error);
}

}  // namespace
