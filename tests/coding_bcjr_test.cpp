#include "ccap/coding/bcjr.hpp"

#include <gtest/gtest.h>

#include "ccap/coding/viterbi.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::coding;
using ccap::util::Rng;

ConvolutionalCode k3() { return ConvolutionalCode({0b111, 0b101}, 3); }

TEST(Bcjr, CleanDecodeIsConfident) {
    const auto code = k3();
    const Bits info = random_bits(32, 1);
    const Bits coded = code.encode(info);
    const auto res = bcjr_decode_bsc(code, coded, 0.05);
    ASSERT_EQ(res.info.size(), info.size());
    EXPECT_EQ(res.info, info);
    for (std::size_t i = 0; i < info.size(); ++i) {
        const double p1 = res.posterior_one[i];
        if (info[i])
            EXPECT_GT(p1, 0.9);
        else
            EXPECT_LT(p1, 0.1);
    }
}

TEST(Bcjr, PosteriorsAreProbabilities) {
    const auto code = k3();
    const Bits info = random_bits(40, 2);
    Bits coded = code.encode(info);
    coded[5] ^= 1;
    const auto res = bcjr_decode_bsc(code, coded, 0.1);
    for (double p : res.posterior_one) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Bcjr, CorrectsSingleError) {
    const auto code = k3();
    const Bits info = random_bits(48, 3);
    Bits coded = code.encode(info);
    coded[17] ^= 1;
    EXPECT_EQ(bcjr_decode_bsc(code, coded, 0.05).info, info);
}

TEST(Bcjr, AgreesWithViterbiAtLowNoise) {
    const auto code = k3();
    Rng rng(4);
    for (int trial = 0; trial < 10; ++trial) {
        const Bits info = random_bits(64, 50 + trial);
        Bits coded = code.encode(info);
        for (auto& b : coded)
            if (rng.bernoulli(0.01)) b ^= 1;
        const auto map = bcjr_decode_bsc(code, coded, 0.01);
        const auto ml = viterbi_decode_hard(code, coded);
        EXPECT_EQ(map.info, ml.info) << "trial " << trial;
    }
}

TEST(Bcjr, ErasureChannelInput) {
    // p_one = 0.5 marks an erased code bit; BCJR should still recover.
    const auto code = k3();
    const Bits info = random_bits(30, 5);
    const Bits coded = code.encode(info);
    std::vector<double> p_one(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) p_one[i] = coded[i] ? 0.95 : 0.05;
    p_one[2] = p_one[11] = p_one[30] = 0.5;
    EXPECT_EQ(bcjr_decode(code, p_one).info, info);
}

TEST(Bcjr, ValidationErrors) {
    const auto code = k3();
    const std::vector<double> odd(9, 0.5);
    EXPECT_THROW((void)bcjr_decode(code, odd), std::invalid_argument);
    const std::vector<double> out_of_range = {0.5, 1.5};
    EXPECT_THROW((void)bcjr_decode(code, out_of_range), std::domain_error);
    const Bits ok(12, 0);
    EXPECT_THROW((void)bcjr_decode_bsc(code, ok, -0.1), std::domain_error);
}

TEST(Bcjr, UncertainChannelGivesUncertainPosteriors) {
    // At p = 0.5 every code bit is noise: posteriors collapse toward 0.5.
    const auto code = k3();
    const Bits info = random_bits(20, 6);
    const Bits coded = code.encode(info);
    const auto res = bcjr_decode_bsc(code, coded, 0.5);
    for (double p : res.posterior_one) EXPECT_NEAR(p, 0.5, 1e-6);
}

}  // namespace
