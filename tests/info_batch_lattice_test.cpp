// Lockstep-vs-scalar contract of the batched structure-of-arrays lattice
// engine (batch_lattice.hpp): at band_eps = 0 every lane of every batched
// operation is bit-identical (EXPECT_EQ, not NEAR) to the scalar
// LatticeEngine run on that lane alone, across ragged batch sizes, dead
// lanes and workspace reuse; in banded mode each lane keeps its own
// certified slack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "ccap/info/batch_lattice.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::info;
using ccap::util::Matrix;
using ccap::util::Rng;

using SymbolSpan = DriftHmm::SymbolSpan;

struct Lanes {
    std::vector<std::vector<std::uint8_t>> tx;
    std::vector<std::vector<std::uint8_t>> rx;

    [[nodiscard]] std::vector<SymbolSpan> tx_spans() const { return spans(tx); }
    [[nodiscard]] std::vector<SymbolSpan> rx_spans() const { return spans(rx); }

private:
    static std::vector<SymbolSpan> spans(const std::vector<std::vector<std::uint8_t>>& v) {
        std::vector<SymbolSpan> out;
        out.reserve(v.size());
        for (const auto& s : v) out.emplace_back(s);
        return out;
    }
};

/// Ragged batch: lane lengths come from real channel draws, plus (for
/// batches of 3+) one empty-received lane and one lane whose received
/// sequence is truncated far below n - max_drift, so its lattice dies
/// mid-pass and the dead-lane bookkeeping is exercised.
Lanes make_lanes(const DriftParams& params, std::size_t n, std::size_t batch,
                 std::uint64_t seed) {
    Lanes lanes;
    Rng rng(seed);
    for (std::size_t b = 0; b < batch; ++b) {
        std::vector<std::uint8_t> tx(n);
        for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(params.alphabet));
        std::vector<std::uint8_t> rx = simulate_drift_channel(tx, params, rng);
        if (batch >= 3 && b == 1) rx.clear();
        if (batch >= 3 && b == 2) {
            rx.resize(std::min<std::size_t>(rx.size(), 1));  // << n - max_drift: lattice dies
        }
        lanes.tx.push_back(std::move(tx));
        lanes.rx.push_back(std::move(rx));
    }
    return lanes;
}

Matrix random_priors(std::size_t n, unsigned alphabet, Rng& rng) {
    Matrix priors(n, alphabet);
    for (std::size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (unsigned s = 0; s < alphabet; ++s) {
            priors(j, s) = 0.05 + rng.uniform();
            sum += priors(j, s);
        }
        for (unsigned s = 0; s < alphabet; ++s) priors(j, s) /= sum;
    }
    return priors;
}

const DriftParams kParams{0.12, 0.06, 0.03, 2, 10, 6};
constexpr std::size_t kBatchSizes[] = {1, 3, 8, 13};  // incl. non-power-of-two

TEST(BatchLattice, LikelihoodBitIdenticalToScalarPerLane) {
    const DriftHmm hmm(kParams);
    const std::size_t n = 40;
    for (std::size_t batch : kBatchSizes) {
        const Lanes lanes = make_lanes(kParams, n, batch, 0x1234 + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<BandedEvidence> got =
            hmm.log2_likelihood_batch(lanes.tx_spans(), lanes.rx_spans(), batch_ws);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const BandedEvidence want =
                hmm.log2_likelihood_banded(lanes.tx[b], lanes.rx[b], scalar_ws);
            EXPECT_EQ(got[b].log2_evidence, want.log2_evidence) << "lane " << b << " B=" << batch;
            EXPECT_EQ(got[b].log2_slack, 0.0) << "lane " << b;
        }
    }
}

// Alphabets wider than binary take the generic emission-gather path of
// TxEmitPlane / PriorEmitPlane (batch_lattice.cpp) instead of the
// branchless binary selects; pin its identity separately.
TEST(BatchLattice, QuaternaryAlphabetBitIdenticalToScalarPerLane) {
    DriftParams params = kParams;
    params.alphabet = 4;
    const DriftHmm hmm(params);
    const std::size_t n = 32;
    Rng prior_rng(11);
    const Matrix priors = random_priors(n, params.alphabet, prior_rng);
    for (std::size_t batch : {std::size_t{3}, std::size_t{8}}) {
        const Lanes lanes = make_lanes(params, n, batch, 0x4444 + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<BandedEvidence> got =
            hmm.log2_likelihood_batch(lanes.tx_spans(), lanes.rx_spans(), batch_ws);
        const std::vector<BandedEvidence> marg =
            hmm.log2_prior_marginal_batch(priors, lanes.rx_spans(), batch_ws);
        for (std::size_t b = 0; b < batch; ++b) {
            const BandedEvidence want =
                hmm.log2_likelihood_banded(lanes.tx[b], lanes.rx[b], scalar_ws);
            EXPECT_EQ(got[b].log2_evidence, want.log2_evidence) << "lane " << b;
            const BandedEvidence want_m =
                hmm.log2_prior_marginal_banded(priors, lanes.rx[b], scalar_ws);
            EXPECT_EQ(marg[b].log2_evidence, want_m.log2_evidence) << "lane " << b;
        }
    }
}

TEST(BatchLattice, PriorMarginalBitIdenticalToScalarPerLane) {
    const DriftHmm hmm(kParams);
    const std::size_t n = 36;
    Rng prior_rng(77);
    const Matrix priors = random_priors(n, kParams.alphabet, prior_rng);
    for (std::size_t batch : kBatchSizes) {
        const Lanes lanes = make_lanes(kParams, n, batch, 0x9876 + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<BandedEvidence> got =
            hmm.log2_prior_marginal_batch(priors, lanes.rx_spans(), batch_ws);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            // The forward-only scalar marginal is itself defined as
            // bit-identical to the evidence posteriors() reports; check the
            // batch lane against both.
            const BandedEvidence want =
                hmm.log2_prior_marginal_banded(priors, lanes.rx[b], scalar_ws);
            EXPECT_EQ(got[b].log2_evidence, want.log2_evidence) << "lane " << b << " B=" << batch;
            double via_posteriors = 0.0;
            (void)hmm.posteriors(priors, lanes.rx[b], scalar_ws, &via_posteriors);
            EXPECT_EQ(got[b].log2_evidence, via_posteriors) << "lane " << b;
        }
    }
}

TEST(BatchLattice, PosteriorsBitIdenticalToScalarPerLane) {
    const DriftHmm hmm(kParams);
    const std::size_t n = 32;
    Rng prior_rng(31);
    const Matrix priors = random_priors(n, kParams.alphabet, prior_rng);
    for (std::size_t batch : kBatchSizes) {
        const Lanes lanes = make_lanes(kParams, n, batch, 0x4444 + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        std::vector<double> got_ev;
        const std::vector<Matrix> got =
            hmm.posteriors_batch(priors, lanes.rx_spans(), batch_ws, &got_ev);
        ASSERT_EQ(got.size(), batch);
        ASSERT_EQ(got_ev.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            double want_ev = 0.0;
            const Matrix want = hmm.posteriors(priors, lanes.rx[b], scalar_ws, &want_ev);
            EXPECT_EQ(got_ev[b], want_ev) << "lane " << b << " B=" << batch;
            ASSERT_EQ(got[b].rows(), want.rows());
            ASSERT_EQ(got[b].cols(), want.cols());
            for (std::size_t j = 0; j < want.rows(); ++j)
                for (std::size_t s = 0; s < want.cols(); ++s)
                    EXPECT_EQ(got[b](j, s), want(j, s))
                        << "lane " << b << " pos " << j << " sym " << s;
        }
    }
}

TEST(BatchLattice, ExpectedEventsBitIdenticalToScalarPerLane) {
    const DriftHmm hmm(kParams);
    const std::size_t n = 28;
    for (std::size_t batch : kBatchSizes) {
        const Lanes lanes = make_lanes(kParams, n, batch, 0x7777 + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<DriftHmm::EventExpectations> got =
            hmm.expected_events_batch(lanes.tx_spans(), lanes.rx_spans(), batch_ws);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const DriftHmm::EventExpectations want =
                hmm.expected_events(lanes.tx[b], lanes.rx[b], scalar_ws);
            EXPECT_EQ(got[b].deletions, want.deletions) << "lane " << b << " B=" << batch;
            EXPECT_EQ(got[b].insertions, want.insertions) << "lane " << b;
            EXPECT_EQ(got[b].transmissions, want.transmissions) << "lane " << b;
            EXPECT_EQ(got[b].substitutions, want.substitutions) << "lane " << b;
            EXPECT_EQ(got[b].log2_likelihood, want.log2_likelihood) << "lane " << b;
        }
    }
}

/// The pre-batching per-candidate inner loop of segment_likelihoods,
/// kept verbatim as the bit-identity reference for the candidate-batched
/// production path (drift_hmm.cpp).
Matrix reference_segment_likelihoods(const DriftHmm& hmm, const Matrix& priors,
                                     std::span<const std::uint8_t> received, std::size_t seg_len,
                                     const std::vector<std::vector<std::uint8_t>>& candidates,
                                     LatticeWorkspace& ws) {
    const DriftParams& params = hmm.params();
    const DriftTables& tables = hmm.tables();
    const std::size_t n = priors.rows();
    LatticeEngine eng(params, tables, received, n, ws);
    const auto emit_p = [&](std::size_t j, std::uint8_t r) {
        return eng.emit_prior(r, priors.row(j));
    };
    eng.forward(emit_p, params.band_eps);
    eng.backward(emit_p);

    const std::size_t num_segments = n / seg_len;
    Matrix out(num_segments, candidates.size());
    const std::size_t width = eng.width();
    const auto& ins_pow = tables.ins_pow;
    const int run = params.max_insert_run;

    std::span<double> cur = ws.scratch(width);
    std::span<double> next = ws.scratch2(width);
    for (std::size_t t = 0; t < num_segments; ++t) {
        const std::size_t j0 = t * seg_len;
        double row_norm = 0.0;
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            std::fill(cur.begin(), cur.end(), 0.0);
            int wlo = eng.band_lo(j0), whi = eng.band_hi(j0);
            const double* arow = eng.alpha_row(j0);
            for (int d = wlo; d <= whi; ++d) cur[eng.idx(d)] = arow[eng.idx(d)];
            for (std::size_t l = 0; l < seg_len && wlo <= whi; ++l) {
                const std::size_t j = j0 + l + 1;
                const std::uint8_t sym = candidates[ci][l];
                int clo = 0, chi = -1;
                if (!eng.valid_window(j, clo, chi)) {
                    wlo = 1;
                    whi = 0;
                    break;
                }
                clo = std::max(clo, wlo - 1);
                chi = std::min(chi, whi + run - 1);
                if (clo > chi) {
                    wlo = 1;
                    whi = 0;
                    break;
                }
                for (int d = clo; d <= chi; ++d) next[eng.idx(d)] = 0.0;
                for (int dp = wlo; dp <= whi; ++dp) {
                    const double ap = cur[eng.idx(dp)];
                    if (ap == 0.0) continue;
                    const std::size_t r0 =
                        static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                    const int glo = std::max(0, clo - dp + 1);
                    const int ghi = std::min(run, chi - dp + 1);
                    for (int g = glo; g <= ghi; ++g) {
                        const int d = dp + g - 1;
                        const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                        double w = ins_pow[static_cast<std::size_t>(g)] * params.p_d;
                        if (g >= 1)
                            w += ins_pow[static_cast<std::size_t>(g - 1)] * params.p_t() *
                                 eng.emit(received[r1 - 1], sym);
                        next[eng.idx(d)] += ap * w;
                    }
                }
                std::swap(cur, next);
                wlo = clo;
                whi = chi;
            }
            double like = 0.0;
            int blo = 0, bhi = -1;
            if (eng.beta_window(j0 + seg_len, blo, bhi)) {
                const double* brow = eng.beta_row(j0 + seg_len);
                const int lo2 = std::max(wlo, blo), hi2 = std::min(whi, bhi);
                for (int d = lo2; d <= hi2; ++d) like += cur[eng.idx(d)] * brow[eng.idx(d)];
            }
            out(t, ci) = like;
            row_norm += like;
        }
        if (row_norm > 0.0) {
            for (std::size_t ci = 0; ci < candidates.size(); ++ci) out(t, ci) /= row_norm;
        } else {
            for (std::size_t ci = 0; ci < candidates.size(); ++ci)
                out(t, ci) = 1.0 / static_cast<double>(candidates.size());
        }
    }
    return out;
}

TEST(BatchLattice, SegmentLikelihoodsBitIdenticalToPerCandidateReference) {
    const DriftHmm hmm(kParams);
    const std::size_t seg_len = 4;
    const std::size_t n = 32;
    // All 2^4 binary candidates — the watermark inner decoder's shape.
    std::vector<std::vector<std::uint8_t>> candidates;
    for (unsigned v = 0; v < 16; ++v) {
        std::vector<std::uint8_t> c(seg_len);
        for (std::size_t l = 0; l < seg_len; ++l) c[l] = (v >> l) & 1U;
        candidates.push_back(std::move(c));
    }
    Rng rng(2025);
    const Matrix priors = random_priors(n, kParams.alphabet, rng);
    std::vector<std::uint8_t> tx(n);
    for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(kParams.alphabet));
    for (std::size_t m_case = 0; m_case < 3; ++m_case) {
        std::vector<std::uint8_t> rx = simulate_drift_channel(tx, kParams, rng);
        if (m_case == 1) rx.clear();           // all-deleted: uniform fallback rows
        if (m_case == 2) rx.resize(1);         // dead lattice
        LatticeWorkspace got_ws, want_ws;
        const Matrix got = hmm.segment_likelihoods(priors, rx, seg_len, candidates.size(),
                                                   [&](std::size_t) {
                                                       return std::span<const std::vector<
                                                           std::uint8_t>>(candidates);
                                                   },
                                                   got_ws);
        const Matrix want =
            reference_segment_likelihoods(hmm, priors, rx, seg_len, candidates, want_ws);
        ASSERT_EQ(got.rows(), want.rows());
        ASSERT_EQ(got.cols(), want.cols());
        for (std::size_t t = 0; t < want.rows(); ++t)
            for (std::size_t ci = 0; ci < want.cols(); ++ci)
                EXPECT_EQ(got(t, ci), want(t, ci))
                    << "case " << m_case << " seg " << t << " cand " << ci;
    }
}

TEST(BatchLattice, WorkspaceReuseIsBitIdentical) {
    // The arenas never shrink and never zero, so a workspace warmed on a
    // larger/other-shaped batch must not leak state into later calls.
    const DriftHmm hmm(kParams);
    const Lanes small = make_lanes(kParams, 24, 3, 0xAAAA);
    const Lanes large = make_lanes(kParams, 48, 13, 0xBBBB);

    LatticeWorkspace fresh;
    const std::vector<BandedEvidence> want =
        hmm.log2_likelihood_batch(small.tx_spans(), small.rx_spans(), fresh);

    LatticeWorkspace reused;
    Rng prior_rng(5);
    (void)hmm.log2_likelihood_batch(large.tx_spans(), large.rx_spans(), reused);
    (void)hmm.posteriors_batch(random_priors(48, kParams.alphabet, prior_rng),
                               large.rx_spans(), reused);
    const std::vector<BandedEvidence> got =
        hmm.log2_likelihood_batch(small.tx_spans(), small.rx_spans(), reused);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t b = 0; b < want.size(); ++b) {
        EXPECT_EQ(got[b].log2_evidence, want[b].log2_evidence) << "lane " << b;
        EXPECT_EQ(got[b].log2_slack, want[b].log2_slack) << "lane " << b;
    }
}

TEST(BatchLattice, BandedBatchKeepsPerLaneCertifiedSlack) {
    // In banded mode the engine trims the shared union band only where
    // every live lane is below its own threshold, so per lane:
    //   banded <= exact <= banded + slack  (up to fp slop), and the union
    // band never prunes more than the lane's own scalar band would.
    DriftParams banded = kParams;
    banded.band_eps = 1e-4;
    const DriftHmm exact_hmm(kParams);
    const DriftHmm banded_hmm(banded);
    constexpr double kSlop = 1e-6;
    const std::size_t n = 48;
    for (std::size_t batch : {std::size_t{3}, std::size_t{8}}) {
        const Lanes lanes = make_lanes(kParams, n, batch, 0xD00D + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<BandedEvidence> got =
            banded_hmm.log2_likelihood_batch(lanes.tx_spans(), lanes.rx_spans(), batch_ws);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const double exact =
                exact_hmm.log2_likelihood(lanes.tx[b], lanes.rx[b], scalar_ws);
            if (!std::isfinite(exact)) continue;  // dead lanes certify via +inf slack
            ASSERT_TRUE(std::isfinite(got[b].log2_evidence)) << "lane " << b;
            EXPECT_GE(got[b].log2_slack, 0.0) << "lane " << b;
            EXPECT_LE(got[b].log2_evidence, exact + kSlop) << "lane " << b;
            EXPECT_LE(exact, got[b].log2_evidence + got[b].log2_slack + kSlop) << "lane " << b;
            // Union banding is no tighter than the lane's own scalar band.
            const BandedEvidence scalar =
                banded_hmm.log2_likelihood_banded(lanes.tx[b], lanes.rx[b], scalar_ws);
            EXPECT_GE(got[b].log2_evidence, scalar.log2_evidence - kSlop) << "lane " << b;
        }
    }
}

// ---------------------------------------------------------------------------
// Per-lane-parameter mode (log2_*_batch_per_lane): lanes carry their own
// transition-weight and emission planes; everything else — the union band,
// the dead-lane bookkeeping, the bit-identity contract — is unchanged.
// ---------------------------------------------------------------------------

std::vector<DriftParams> heterogeneous_lane_params(std::size_t batch) {
    // Varying (p_d, p_i, p_s) over a shared lattice shape — the grid-tile
    // workload of the CRN sweep engine.
    std::vector<DriftParams> ps;
    for (std::size_t b = 0; b < batch; ++b) {
        DriftParams p = kParams;
        p.p_d = 0.02 + 0.05 * static_cast<double>(b % 5);
        p.p_i = 0.01 + 0.02 * static_cast<double>(b % 3);
        p.p_s = (b % 2) ? 0.03 : 0.0;
        ps.push_back(p);
    }
    return ps;
}

Lanes make_hetero_lanes(std::span<const DriftParams> ps, std::size_t n,
                        std::uint64_t seed) {
    Lanes lanes;
    Rng rng(seed);
    for (const DriftParams& p : ps) {
        std::vector<std::uint8_t> tx(n);
        for (auto& s : tx) s = static_cast<std::uint8_t>(rng.uniform_below(p.alphabet));
        lanes.rx.push_back(simulate_drift_channel(tx, p, rng));
        lanes.tx.push_back(std::move(tx));
    }
    return lanes;
}

TEST(BatchLattice, PerLaneParamsBitIdenticalToScalarPerLane) {
    const std::size_t n = 36;
    for (std::size_t batch : kBatchSizes) {
        const std::vector<DriftParams> ps = heterogeneous_lane_params(batch);
        Lanes lanes = make_hetero_lanes(ps, n, 0xE1E1 + batch);
        if (batch >= 3) {
            lanes.rx[1].clear();      // all-deleted lane
            lanes.rx[2].resize(1);    // dead lattice mid-pass
        }
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<BandedEvidence> got = log2_likelihood_batch_per_lane(
            ps, lanes.tx_spans(), lanes.rx_spans(), batch_ws);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const DriftHmm hmm(ps[b]);
            const BandedEvidence want =
                hmm.log2_likelihood_banded(lanes.tx[b], lanes.rx[b], scalar_ws);
            EXPECT_EQ(got[b].log2_evidence, want.log2_evidence)
                << "lane " << b << " B=" << batch;
            EXPECT_EQ(got[b].log2_slack, 0.0) << "lane " << b;
        }
    }
}

TEST(BatchLattice, PerLanePriorMarginalBitIdenticalToScalarPerLane) {
    const std::size_t n = 32;
    Rng prior_rng(91);
    const Matrix priors = random_priors(n, kParams.alphabet, prior_rng);
    for (std::size_t batch : kBatchSizes) {
        const std::vector<DriftParams> ps = heterogeneous_lane_params(batch);
        const Lanes lanes = make_hetero_lanes(ps, n, 0xF2F2 + batch);
        LatticeWorkspace batch_ws, scalar_ws;
        const std::vector<BandedEvidence> got = log2_prior_marginal_batch_per_lane(
            ps, priors, lanes.rx_spans(), batch_ws);
        ASSERT_EQ(got.size(), batch);
        for (std::size_t b = 0; b < batch; ++b) {
            const DriftHmm hmm(ps[b]);
            const BandedEvidence want =
                hmm.log2_prior_marginal_banded(priors, lanes.rx[b], scalar_ws);
            EXPECT_EQ(got[b].log2_evidence, want.log2_evidence)
                << "lane " << b << " B=" << batch;
        }
    }
}

TEST(BatchLattice, PerLaneQuaternaryAlphabetBitIdenticalToScalarPerLane) {
    // The generic (non-binary) emission-gather path of the per-lane plane
    // providers, pinned separately like the shared-table batch.
    DriftParams base = kParams;
    base.alphabet = 4;
    const std::size_t n = 28;
    Rng prior_rng(17);
    const Matrix priors = random_priors(n, base.alphabet, prior_rng);
    std::vector<DriftParams> ps;
    for (std::size_t b = 0; b < 5; ++b) {
        DriftParams p = base;
        p.p_d = 0.05 + 0.06 * static_cast<double>(b);
        ps.push_back(p);
    }
    const Lanes lanes = make_hetero_lanes(ps, n, 0xABCD);
    LatticeWorkspace batch_ws, scalar_ws;
    const std::vector<BandedEvidence> like = log2_likelihood_batch_per_lane(
        ps, lanes.tx_spans(), lanes.rx_spans(), batch_ws);
    const std::vector<BandedEvidence> marg = log2_prior_marginal_batch_per_lane(
        ps, priors, lanes.rx_spans(), batch_ws);
    for (std::size_t b = 0; b < ps.size(); ++b) {
        const DriftHmm hmm(ps[b]);
        EXPECT_EQ(like[b].log2_evidence,
                  hmm.log2_likelihood_banded(lanes.tx[b], lanes.rx[b], scalar_ws)
                      .log2_evidence)
            << "lane " << b;
        EXPECT_EQ(marg[b].log2_evidence,
                  hmm.log2_prior_marginal_banded(priors, lanes.rx[b], scalar_ws)
                      .log2_evidence)
            << "lane " << b;
    }
}

TEST(BatchLattice, PerLaneUniformParamsMatchSharedTableBatch) {
    // Degenerate case: every lane carries the same parameters. The per-lane
    // planes then hold the shared DriftTables values bit for bit, so the
    // two batch paths must agree exactly.
    const DriftHmm hmm(kParams);
    const std::size_t n = 40;
    for (std::size_t batch : {std::size_t{3}, std::size_t{8}}) {
        const Lanes lanes = make_lanes(kParams, n, batch, 0x5151 + batch);
        const std::vector<DriftParams> ps(batch, kParams);
        LatticeWorkspace pl_ws, sh_ws;
        const std::vector<BandedEvidence> got = log2_likelihood_batch_per_lane(
            ps, lanes.tx_spans(), lanes.rx_spans(), pl_ws);
        const std::vector<BandedEvidence> want =
            hmm.log2_likelihood_batch(lanes.tx_spans(), lanes.rx_spans(), sh_ws);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t b = 0; b < batch; ++b) {
            EXPECT_EQ(got[b].log2_evidence, want[b].log2_evidence) << "lane " << b;
            EXPECT_EQ(got[b].log2_slack, want[b].log2_slack) << "lane " << b;
        }
    }
}

TEST(BatchLattice, PerLaneHeterogeneousUnionBandKeepsPerLaneSlack) {
    // Stress the union band with extreme heterogeneity: a near-
    // deterministic lane rides beside a high-deletion lane (whose mass
    // drives the shared band), plus a dead lane. Each live lane must keep
    // its own certified bracket, and the dead lane must be trimmed without
    // polluting its neighbors.
    const std::size_t n = 48;
    DriftParams quiet = kParams;
    quiet.p_d = 0.002;
    quiet.p_i = 0.001;
    quiet.p_s = 0.0;
    DriftParams noisy = kParams;
    noisy.p_d = 0.4;
    noisy.p_i = 0.05;
    noisy.p_s = 0.05;
    const std::vector<DriftParams> ps{quiet, noisy, quiet, noisy, quiet};
    Lanes lanes = make_hetero_lanes(ps, n, 0xBADBA2D);
    lanes.rx[2].resize(1);  // dead mid-pass: << n - max_drift
    constexpr double kEps = 1e-4;
    constexpr double kSlop = 1e-6;
    LatticeWorkspace batch_ws, scalar_ws;
    const std::vector<BandedEvidence> got = log2_likelihood_batch_per_lane(
        ps, lanes.tx_spans(), lanes.rx_spans(), batch_ws, kEps);
    ASSERT_EQ(got.size(), ps.size());
    for (std::size_t b = 0; b < ps.size(); ++b) {
        const DriftHmm exact_hmm(ps[b]);
        const double exact =
            exact_hmm.log2_likelihood(lanes.tx[b], lanes.rx[b], scalar_ws);
        if (!std::isfinite(exact)) {
            // Dead lanes certify trivially and are trimmed from the sweep.
            EXPECT_TRUE(!std::isfinite(got[b].log2_evidence) ||
                        std::isinf(got[b].log2_slack))
                << "lane " << b;
            continue;
        }
        ASSERT_TRUE(std::isfinite(got[b].log2_evidence)) << "lane " << b;
        EXPECT_GE(got[b].log2_slack, 0.0) << "lane " << b;
        EXPECT_LE(got[b].log2_evidence, exact + kSlop) << "lane " << b;
        EXPECT_LE(exact, got[b].log2_evidence + got[b].log2_slack + kSlop)
            << "lane " << b;
        // The union band never prunes more than the lane's own band.
        DriftParams banded = ps[b];
        banded.band_eps = kEps;
        const DriftHmm banded_hmm(banded);
        const BandedEvidence scalar =
            banded_hmm.log2_likelihood_banded(lanes.tx[b], lanes.rx[b], scalar_ws);
        EXPECT_GE(got[b].log2_evidence, scalar.log2_evidence - kSlop) << "lane " << b;
    }
}

TEST(BatchLattice, PerLaneRejectsMismatchedStructureAndCounts) {
    const std::size_t n = 16;
    std::vector<DriftParams> ps = heterogeneous_lane_params(3);
    const Lanes lanes = make_hetero_lanes(ps, n, 0x1DEA);
    LatticeWorkspace ws;
    {
        std::vector<DriftParams> bad = ps;
        bad[1].max_drift = kParams.max_drift + 2;
        EXPECT_THROW((void)log2_likelihood_batch_per_lane(bad, lanes.tx_spans(),
                                                          lanes.rx_spans(), ws),
                     std::invalid_argument);
    }
    {
        const std::vector<DriftParams> two(ps.begin(), ps.begin() + 2);
        EXPECT_THROW((void)log2_likelihood_batch_per_lane(two, lanes.tx_spans(),
                                                          lanes.rx_spans(), ws),
                     std::invalid_argument);
    }
}

TEST(BatchLattice, LockstepRequiresEqualTransmittedLengths) {
    const DriftHmm hmm(kParams);
    const std::vector<std::uint8_t> a(8, 0), b(9, 1), rx(8, 0);
    const std::vector<SymbolSpan> tx{SymbolSpan(a), SymbolSpan(b)};
    const std::vector<SymbolSpan> rxs{SymbolSpan(rx), SymbolSpan(rx)};
    LatticeWorkspace ws;
    EXPECT_THROW((void)hmm.log2_likelihood_batch(tx, rxs, ws), std::invalid_argument);
}

}  // namespace
