// Integration: coded transmission over the Definition-1 channel — the
// test-suite mirror of bench E5's "unsynchronized communication is possible
// but slow" claim, plus cross-layer consistency between the core channel
// and the info-layer drift model.
#include <gtest/gtest.h>

#include "ccap/coding/lt_code.hpp"
#include "ccap/coding/marker_code.hpp"
#include "ccap/coding/stack_decoder.hpp"
#include "ccap/coding/vt_code.hpp"
#include "ccap/coding/watermark.hpp"
#include "ccap/core/erasure_channel.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

using namespace ccap;
using coding::Bits;

/// Adapter: run bit streams through the core channel (which matches the
/// drift model used by the decoders).
Bits through_core_channel(const Bits& tx, const core::DiChannelParams& p, std::uint64_t seed) {
    core::DeletionInsertionChannel ch(p, seed);
    std::vector<std::uint32_t> syms(tx.begin(), tx.end());
    const auto t = ch.transduce(syms);
    Bits rx;
    rx.reserve(t.output.size());
    for (std::uint32_t s : t.output) rx.push_back(static_cast<std::uint8_t>(s));
    return rx;
}

TEST(CrossLayer, CoreChannelMatchesDriftModelStatistics) {
    // The core DI channel and the info-layer drift simulator implement the
    // same Definition-1 model: compare output-length statistics.
    const core::DiChannelParams p{0.1, 0.1, 0.0, 1};
    info::DriftParams dp{0.1, 0.1, 0.0, 2, 48, 10};
    util::Rng rng(41);
    const Bits tx = coding::random_bits(4000, 41);

    const Bits via_core = through_core_channel(tx, p, 42);
    const std::vector<std::uint8_t> via_drift = info::simulate_drift_channel(tx, dp, rng);
    // Expected length ratio: (1 - p_d) / (1 - p_i) of transmitted length.
    const double expect = (1.0 - p.p_d) / (1.0 - p.p_i);
    EXPECT_NEAR(static_cast<double>(via_core.size()) / tx.size(), expect, 0.05);
    EXPECT_NEAR(static_cast<double>(via_drift.size()) / tx.size(), expect, 0.05);
}

TEST(UnsyncCoding, VtBlocksSurviveSparseDeletions) {
    // Frame-by-frame VT(16) transmission where at most one deletion hits
    // most frames at a low deletion rate.
    const coding::VtCode vt(16, 0);
    util::Rng rng(43);
    std::size_t decoded_frames = 0, total_frames = 60;
    for (std::size_t f = 0; f < total_frames; ++f) {
        const Bits info = coding::random_bits(vt.data_bits(), 100 + f);
        Bits word = vt.encode(info);
        // Channel: delete exactly one bit in half the frames.
        if (f % 2 == 0) word.erase(word.begin() + static_cast<long>(rng.uniform_below(word.size())));
        const auto res = vt.decode(word);
        if (res.status == coding::VtStatus::ok && res.info == info) ++decoded_frames;
    }
    EXPECT_EQ(decoded_frames, total_frames);
}

TEST(UnsyncCoding, WatermarkOverCoreChannel) {
    coding::WatermarkParams wp;
    wp.bits_per_symbol = 4;
    wp.chunk_bits = 6;
    wp.num_symbols = 48;
    wp.num_checks = 16;
    const coding::WatermarkCode code(wp);

    const core::DiChannelParams p{0.005, 0.005, 0.0, 1};
    const info::DriftParams dp{0.005, 0.005, 0.0, 2, 48, 10};
    int exact = 0;
    constexpr int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
        const Bits info = coding::random_bits(code.info_bits(), 500 + trial);
        const Bits tx = code.encode(info);
        const Bits rx = through_core_channel(tx, p, 600 + trial);
        const auto res = code.decode(rx, dp);
        if (res.ldpc_converged && res.info == info) ++exact;
    }
    EXPECT_GE(exact, 4);
}

TEST(UnsyncCoding, AchievedRateFarBelowFeedbackBand) {
    // Section 4.1's punchline: reliable unsynchronized rates sit far below
    // what the feedback protocols achieve at the same channel parameters.
    coding::WatermarkParams wp;
    wp.bits_per_symbol = 4;
    wp.chunk_bits = 6;
    wp.num_symbols = 48;
    wp.num_checks = 16;
    const coding::WatermarkCode code(wp);
    const core::DiChannelParams p{0.01, 0.01, 0.0, 1};

    const double unsync_rate = code.rate();  // bits per channel bit, when it decodes
    const double feedback_rate = core::theorem5_lower_bound(p);
    EXPECT_LT(unsync_rate, feedback_rate);
    EXPECT_LT(unsync_rate, 0.6 * core::theorem1_upper_bound(p));
}

TEST(UnsyncCoding, MarkerPipelineOverCoreChannel) {
    coding::MarkerParams mp;
    mp.marker = {0, 1, 1};
    mp.period = 4;
    const coding::MarkerCode marker(mp);
    const coding::ConvolutionalCode outer({0b111, 0b101}, 3);
    const core::DiChannelParams p{0.015, 0.015, 0.0, 1};
    const info::DriftParams dp{0.015, 0.015, 0.0, 2, 32, 8};

    int exact = 0;
    constexpr int kTrials = 8;
    for (int trial = 0; trial < kTrials; ++trial) {
        const Bits info = coding::random_bits(40, 700 + trial);
        const Bits tx = marker.encode_with_outer(outer, info);
        const Bits rx = through_core_channel(tx, p, 800 + trial);
        if (marker.decode_with_outer(outer, rx, info.size(), dp) == info) ++exact;
    }
    EXPECT_GE(exact, 6);
}

TEST(UnsyncCoding, FountainOverErasureViewApproachesTheorem1) {
    // The constructive counterpart of Theorem 1: with the matched erasure
    // channel's location side information, an LT fountain code delivers the
    // source at a rate within its own overhead of N * P_t — no feedback.
    const core::DiChannelParams p{0.2, 0.0, 0.0, 2};
    core::DeletionInsertionChannel channel(p, 51);
    coding::LtParams lp;
    lp.k = 600;
    lp.seed = 52;
    const coding::LtCode code(lp);
    util::Rng rng(53);
    std::vector<std::uint32_t> source(lp.k);
    for (auto& v : source) v = static_cast<std::uint32_t>(rng.uniform_below(4));

    coding::LtDecoder decoder(code);
    std::uint64_t uses = 0, index = 0;
    while (!decoder.complete() && index < 8 * lp.k) {
        std::vector<std::uint32_t> batch(32);
        for (std::size_t j = 0; j < batch.size(); ++j)
            batch[j] = code.encode_symbol(index + j, source);
        const auto t = channel.transduce(batch, false);
        const auto view = core::erasure_view(t);
        uses += t.channel_uses;
        for (std::size_t j = 0; j < batch.size(); ++j)
            if (view.symbols[j]) (void)decoder.add_symbol(index + j, *view.symbols[j]);
        index += batch.size();
    }
    ASSERT_TRUE(decoder.complete());
    for (std::size_t i = 0; i < source.size(); ++i) EXPECT_EQ(*decoder.source()[i], source[i]);
    const double rate = 2.0 * static_cast<double>(lp.k) / static_cast<double>(uses);
    const double bound = core::theorem1_upper_bound(p);
    EXPECT_LT(rate, bound);        // never above the bound
    EXPECT_GT(rate, 0.7 * bound);  // within the fountain overhead of it
}

TEST(UnsyncCoding, StackDecoderComparableToMarkerPipeline) {
    // Two very different unsynchronized schemes (1969 sequential decoding
    // vs marker+Viterbi) should both survive mild indel rates end to end.
    const coding::ConvolutionalCode k5({0b10111, 0b11001}, 5);
    const info::DriftParams dp{0.01, 0.01, 0.0, 2, 32, 8};
    coding::StackDecoderParams sp;
    sp.p_d = 0.01;
    sp.p_i = 0.01;
    util::Rng rng(54);
    int exact = 0;
    constexpr int kTrials = 8;
    for (int t = 0; t < kTrials; ++t) {
        const Bits info = coding::random_bits(64, 900 + t);
        const auto rx = info::simulate_drift_channel(k5.encode(info), dp, rng);
        const auto res = coding::stack_decode(k5, rx, info.size(), sp);
        if (res.success && res.info == info) ++exact;
    }
    EXPECT_GE(exact, 6);
}

TEST(UnsyncCoding, NoFeedbackMiRateBracketsCodeRates) {
    // The achievable-rate estimate for the raw channel should exceed the
    // rate of the practical codes (codes are suboptimal), while remaining
    // below the Theorem-1 bound.
    util::Rng rng(44);
    info::DriftParams dp{0.02, 0.02, 0.0, 2, 48, 10};
    const auto est = info::iid_mutual_information_rate(dp, 128, 12, rng);
    coding::WatermarkParams wp;
    wp.bits_per_symbol = 4;
    wp.chunk_bits = 6;
    wp.num_symbols = 48;
    wp.num_checks = 16;
    const coding::WatermarkCode code(wp);
    EXPECT_GT(est.rate + 2 * est.sem, code.rate());
    EXPECT_LT(est.rate, info::erasure_upper_bound(dp.p_d) + 0.02);
}

}  // namespace
