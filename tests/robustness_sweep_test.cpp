// Seed-sweep robustness: the end-to-end pipelines re-run under many RNG
// seeds so single-seed flukes can't hide behaviour regressions. Each case
// is cheap; the sweep breadth is the point.
#include <gtest/gtest.h>

#include "ccap/coding/stack_decoder.hpp"
#include "ccap/coding/vt_code.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/estimate/param_estimator.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/sched/covert_pair.hpp"
#include "ccap/sched/mls_system.hpp"

namespace {

using namespace ccap;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, StopAndWaitAlwaysReliable) {
    const std::uint64_t seed = GetParam();
    core::DeletionInsertionChannel ch({0.35, 0.0, 0.0, 2}, seed);
    util::Rng rng(seed ^ 1);
    std::vector<std::uint32_t> msg(3000);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(4));
    const auto run = core::run_stop_and_wait(ch, msg);
    EXPECT_TRUE(run.reliable);
    EXPECT_NEAR(run.measured_info_rate(2), 1.3, 0.08);  // 2*(1-0.35)
}

TEST_P(SeedSweep, CounterProtocolRateStable) {
    const std::uint64_t seed = GetParam();
    const core::DiChannelParams p{0.1, 0.1, 0.0, 2};
    core::DeletionInsertionChannel ch(p, seed);
    util::Rng rng(seed ^ 2);
    std::vector<std::uint32_t> msg(8000);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(4));
    const auto run = core::run_counter_protocol(ch, msg);
    EXPECT_NEAR(run.measured_info_rate(2), core::counter_protocol_exact_rate(p), 0.07);
}

TEST_P(SeedSweep, HandshakeCovertPairAlwaysExact) {
    const std::uint64_t seed = GetParam();
    sched::CovertPairConfig cfg;
    cfg.mode = sched::PairMode::handshake;
    cfg.message_len = 400;
    const auto run = sched::run_covert_pair(sched::make_random(), cfg, seed);
    EXPECT_TRUE(run.reliable) << "seed " << seed;
}

TEST_P(SeedSweep, MlsFeedbackAlwaysExact) {
    const std::uint64_t seed = GetParam();
    sched::MlsConfig cfg;
    cfg.message_len = 300;
    cfg.use_legal_feedback = true;
    const auto res = sched::run_mls_exfiltration(sched::make_lottery(), cfg, seed);
    EXPECT_TRUE(res.exact) << "seed " << seed;
}

TEST_P(SeedSweep, VtRoundTripUnderSingleIndel) {
    const std::uint64_t seed = GetParam();
    const coding::VtCode vt(14, 0);
    util::Rng rng(seed ^ 3);
    for (int trial = 0; trial < 10; ++trial) {
        const coding::Bits info = coding::random_bits(vt.data_bits(), seed * 31 + trial);
        coding::Bits word = vt.encode(info);
        // Randomly delete or insert one bit.
        if (rng.bernoulli(0.5)) {
            word.erase(word.begin() + static_cast<long>(rng.uniform_below(word.size())));
        } else {
            word.insert(word.begin() + static_cast<long>(rng.uniform_below(word.size() + 1)),
                        static_cast<std::uint8_t>(rng.next() & 1));
        }
        const auto res = vt.decode(word);
        ASSERT_EQ(res.status, coding::VtStatus::ok) << "seed " << seed;
        EXPECT_EQ(res.info, info);
    }
}

TEST_P(SeedSweep, EstimatorWithinTolerance) {
    const std::uint64_t seed = GetParam();
    const core::DiChannelParams truth{0.12, 0.06, 0.0, 3};
    core::DeletionInsertionChannel ch(truth, seed);
    util::Rng rng(seed ^ 4);
    std::vector<std::uint32_t> sent(4000);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(8));
    const auto t = ch.transduce(sent);
    const auto est = estimate::estimate_params_em(sent, t.output, 3);
    EXPECT_NEAR(est.p_d.value, truth.p_d, 0.03) << "seed " << seed;
    EXPECT_NEAR(est.p_i.value, truth.p_i, 0.03) << "seed " << seed;
}

TEST_P(SeedSweep, StackDecoderCleanAlwaysDecodes) {
    const std::uint64_t seed = GetParam();
    const coding::ConvolutionalCode code({0b111, 0b101}, 3);
    const coding::Bits info = coding::random_bits(64, seed);
    coding::StackDecoderParams sp;
    sp.p_d = 0.01;
    sp.p_i = 0.01;
    const auto res = coding::stack_decode(code, code.encode(info), info.size(), sp);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.info, info);
}

TEST_P(SeedSweep, MiRateWithinBounds) {
    const std::uint64_t seed = GetParam();
    info::DriftParams dp;
    dp.p_d = 0.2;
    util::Rng rng(seed ^ 5);
    const auto est = info::iid_mutual_information_rate(dp, 64, 6, rng);
    EXPECT_GT(est.rate, 0.15) << "seed " << seed;
    EXPECT_LT(est.rate, info::erasure_upper_bound(0.2) + 0.05) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1337ULL, 99991ULL,
                                           0xDEADBEEFULL, 0xFEEDFACEULL, 2026ULL));

}  // namespace
