#include "ccap/info/capacity_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ccap/util/rng.hpp"

namespace {

using ccap::info::CapacityCache;
using ccap::info::CapacityGridSpec;
using ccap::info::CapacityKey;
using ccap::info::MiEstimate;

CapacityCache::Config small_config(bool enabled = true) {
    CapacityCache::Config cfg;
    cfg.grid = {0.05, 0.05, 0.30, 0.15};
    cfg.base.max_drift = 8;
    cfg.base.max_insert_run = 4;
    cfg.mc.block_len = 24;
    cfg.mc.num_blocks = 4;
    cfg.mc.threads = 1;
    cfg.enabled = enabled;
    return cfg;
}

TEST(CapacityCacheTest, RejectsDegenerateGrids) {
    CapacityCache::Config cfg = small_config();
    cfg.grid.pd_step = 0.0;
    EXPECT_THROW(CapacityCache{cfg}, std::invalid_argument);
    cfg = small_config();
    cfg.grid.pd_max = 0.7;
    cfg.grid.pi_max = 0.3;  // pd + pi reaches 1 at the extreme node
    EXPECT_THROW(CapacityCache{cfg}, std::invalid_argument);
}

TEST(CapacityCacheTest, QuantizeSnapsToNearestNodeAndClamps) {
    CapacityCache cache(small_config());
    EXPECT_EQ(cache.quantize(0.0, 0.0), (CapacityKey{0, 0}));
    EXPECT_EQ(cache.quantize(0.049, 0.051), (CapacityKey{1, 1}));
    EXPECT_EQ(cache.quantize(0.074, 0.026), (CapacityKey{1, 1}));
    EXPECT_EQ(cache.quantize(0.076, 0.0), (CapacityKey{2, 0}));
    // Out-of-grid values clamp to the extreme node.
    EXPECT_EQ(cache.quantize(0.9, 0.9), (CapacityKey{6, 3}));
    EXPECT_EQ(cache.quantize(-0.1, -0.1), (CapacityKey{0, 0}));
}

TEST(CapacityCacheTest, NodeParamsInheritBaseAndGrid) {
    CapacityCache::Config cfg = small_config();
    cfg.base.p_s = 0.01;
    CapacityCache cache(cfg);
    const auto p = cache.node_params({2, 1});
    EXPECT_DOUBLE_EQ(p.p_d, 0.10);
    EXPECT_DOUBLE_EQ(p.p_i, 0.05);
    EXPECT_DOUBLE_EQ(p.p_s, 0.01);
    EXPECT_EQ(p.max_drift, cfg.base.max_drift);
}

TEST(CapacityCacheTest, NodeSeedIsPureFunctionOfKey) {
    CapacityCache a(small_config());
    CapacityCache b(small_config());
    EXPECT_EQ(a.node_seed({3, 2}), b.node_seed({3, 2}));
    EXPECT_NE(a.node_seed({3, 2}), a.node_seed({2, 3}));

    CapacityCache::Config other = small_config();
    other.seed = 42;
    CapacityCache c(other);
    EXPECT_NE(a.node_seed({3, 2}), c.node_seed({3, 2}));
}

TEST(CapacityCacheTest, CachedAndUncachedValuesAreBitIdentical) {
    CapacityCache cached(small_config(true));
    CapacityCache uncached(small_config(false));
    for (const CapacityKey key : {CapacityKey{0, 0}, CapacityKey{2, 1}, CapacityKey{6, 3}}) {
        const MiEstimate c = cached.at(key);
        const MiEstimate u = uncached.at(key);
        EXPECT_EQ(c.rate, u.rate);
        EXPECT_EQ(c.sem, u.sem);
        EXPECT_EQ(c.blocks, u.blocks);
        // Second cached read returns the memoized value exactly.
        const MiEstimate again = cached.at(key);
        EXPECT_EQ(c.rate, again.rate);
    }
    EXPECT_GT(cached.stats().hits, 0u);
    EXPECT_EQ(uncached.stats().hits, 0u);
    EXPECT_EQ(uncached.stats().entries, 0u);
}

TEST(CapacityCacheTest, EnsureWarmsAllKeysForExactHits) {
    CapacityCache cache(small_config());
    const std::vector<CapacityKey> keys = {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {1, 1}, {0, 0}};
    cache.ensure(keys, 2);
    EXPECT_EQ(cache.stats().entries, 4u);
    const auto misses_after_warm = cache.stats().misses;
    (void)cache.at({1, 1});
    (void)cache.at({0, 1});
    EXPECT_EQ(cache.stats().misses, misses_after_warm);  // pure hits
}

TEST(CapacityCacheTest, EnsureMatchesSerialAt) {
    CapacityCache warm(small_config());
    const std::vector<CapacityKey> keys = {{0, 0}, {2, 1}, {4, 2}};
    warm.ensure(keys, 4);

    CapacityCache serial(small_config());
    for (const CapacityKey& k : keys) {
        EXPECT_EQ(warm.at(k).rate, serial.at(k).rate);
        EXPECT_EQ(warm.at(k).sem, serial.at(k).sem);
    }
}

TEST(CapacityCacheTest, CrnNodeValuesIndependentOfWarmBatchComposition) {
    // In CRN mode node_mc_options() pins the shared-tape root to the
    // config seed, so a node's value is a pure function of (config, key):
    // warming it alone, warming it in a bulk batch, and a cache-off
    // recompute must all agree bit for bit.
    CapacityCache::Config cfg = small_config();
    cfg.mc.point_tile = ccap::info::kMcPointTileAuto;
    const std::vector<CapacityKey> keys = {{0, 0}, {2, 1}, {4, 2}, {6, 3}};

    CapacityCache bulk(cfg);
    bulk.ensure(keys, 2);
    CapacityCache solo(cfg);
    for (const CapacityKey& k : keys) {
        const MiEstimate a = bulk.at(k);
        const MiEstimate b = solo.at(k);
        EXPECT_EQ(a.rate, b.rate);
        EXPECT_EQ(a.sem, b.sem);
        EXPECT_EQ(a.blocks, b.blocks);
    }

    // A differently-composed warm batch (subset, different lead key) must
    // not shift the shared values either.
    CapacityCache subset(cfg);
    const std::vector<CapacityKey> tail = {keys[2], keys[3]};
    subset.ensure(tail, 1);
    for (const CapacityKey& k : tail) EXPECT_EQ(subset.at(k).rate, bulk.at(k).rate);

    CapacityCache::Config disabled = cfg;
    disabled.enabled = false;
    CapacityCache recompute(disabled);
    for (const CapacityKey& k : keys) EXPECT_EQ(recompute.at(k).rate, bulk.at(k).rate);
}

TEST(CapacityCacheTest, InterpolateExactHitReturnsNodeValue) {
    CapacityCache cache(small_config());
    const auto v = cache.interpolate(0.10, 0.05);
    EXPECT_TRUE(v.exact);
    EXPECT_EQ(v.rate, cache.at({2, 1}).rate);
    EXPECT_GE(v.err_bound, 0.0);
}

TEST(CapacityCacheTest, InterpolateBracketsInteriorPoints) {
    CapacityCache cache(small_config());
    const auto v = cache.interpolate(0.125, 0.06);  // strictly between nodes
    EXPECT_FALSE(v.exact);
    const double c00 = cache.at({2, 1}).rate;
    const double c10 = cache.at({3, 1}).rate;
    const double c01 = cache.at({2, 2}).rate;
    const double c11 = cache.at({3, 2}).rate;
    const double lo = std::min({c00, c10, c01, c11});
    const double hi = std::max({c00, c10, c01, c11});
    EXPECT_GE(v.rate, lo);
    EXPECT_LE(v.rate, hi);
    // The certified bound covers the corner spread.
    EXPECT_GE(v.err_bound, hi - lo);
}

TEST(CapacityCacheTest, AdaptiveConfigTranslatesTargetErrToNodeSemTarget) {
    CapacityCache::Config cfg = small_config();
    cfg.target_interp_err = 0.0392;  // 1.96 * 0.02
    CapacityCache cache(cfg);
    EXPECT_NEAR(cache.config().mc.target_sem, 0.02, 1e-12);

    // An explicitly tighter mc.target_sem wins over the derived one.
    CapacityCache::Config tighter = small_config();
    tighter.target_interp_err = 0.0392;
    tighter.mc.target_sem = 0.001;
    EXPECT_NEAR(CapacityCache(tighter).config().mc.target_sem, 0.001, 1e-12);

    CapacityCache::Config bad = small_config();
    bad.target_interp_err = -0.1;
    EXPECT_THROW(CapacityCache{bad}, std::invalid_argument);
}

TEST(CapacityCacheTest, AdaptiveNodesStayBitIdenticalAcrossCacheAndEnsure) {
    // The determinism contract must survive adaptive precision: the node
    // value (including the data-dependent blocks spent) is still a pure
    // function of (config, key), however it was computed.
    CapacityCache::Config cfg = small_config();
    cfg.target_interp_err = 0.08;
    CapacityCache cached(cfg);
    CapacityCache::Config off = cfg;
    off.enabled = false;
    CapacityCache uncached(off);
    CapacityCache warmed(cfg);
    const std::vector<CapacityKey> keys = {{0, 0}, {2, 1}, {6, 3}};
    warmed.ensure(keys, 4);
    for (const CapacityKey& k : keys) {
        const MiEstimate c = cached.at(k);
        const MiEstimate u = uncached.at(k);
        const MiEstimate w = warmed.at(k);
        EXPECT_EQ(c.rate, u.rate);
        EXPECT_EQ(c.sem, u.sem);
        EXPECT_EQ(c.blocks, u.blocks);
        EXPECT_EQ(c.converged, u.converged);
        EXPECT_EQ(c.rate, w.rate);
        EXPECT_EQ(c.blocks, w.blocks);
    }
}

TEST(CapacityCacheTest, InterpolateReportsBlocksActuallySpent) {
    // Satellite regression: err_bound and the new blocks/converged fields
    // must reflect the adaptive nodes' realized spend, not the nominal
    // num_blocks.
    CapacityCache::Config cfg = small_config();
    cfg.target_interp_err = 0.08;
    CapacityCache cache(cfg);

    const auto exact = cache.interpolate(0.10, 0.05);
    ASSERT_TRUE(exact.exact);
    const MiEstimate node = cache.at({2, 1});
    EXPECT_EQ(exact.blocks, node.blocks);
    EXPECT_EQ(exact.converged, node.converged);
    EXPECT_EQ(exact.err_bound, 1.96 * node.sem);
    if (node.converged) {
        EXPECT_LE(exact.err_bound, cfg.target_interp_err + 1e-12);
    }

    const auto interior = cache.interpolate(0.125, 0.06);
    ASSERT_FALSE(interior.exact);
    const std::size_t corner_sum = cache.at({2, 1}).blocks + cache.at({3, 1}).blocks +
                                   cache.at({2, 2}).blocks + cache.at({3, 2}).blocks;
    EXPECT_EQ(interior.blocks, corner_sum);
    EXPECT_GE(interior.blocks, 4 * ccap::info::mc_round_blocks(cache.config().mc));
}

TEST(CapacityCacheTest, FixedModeInterpolateKeepsNominalBlocks) {
    // With no adaptive target every node spends exactly num_blocks and the
    // new fields degrade to the nominal accounting.
    CapacityCache cache(small_config());
    const auto exact = cache.interpolate(0.10, 0.05);
    ASSERT_TRUE(exact.exact);
    EXPECT_TRUE(exact.converged);
    EXPECT_EQ(exact.blocks, cache.config().mc.num_blocks);
    const auto interior = cache.interpolate(0.125, 0.06);
    EXPECT_TRUE(interior.converged);
    EXPECT_EQ(interior.blocks, 4 * cache.config().mc.num_blocks);
}

TEST(CapacityCacheTest, CapacityDecreasesAlongTheDeletionAxis) {
    // Sanity for the monotonicity the interpolation bound leans on: more
    // contention-induced deletions cannot raise the achievable rate (within
    // a generous MC tolerance at these tiny sample sizes).
    CapacityCache::Config cfg = small_config();
    cfg.mc.block_len = 32;
    cfg.mc.num_blocks = 8;
    CapacityCache cache(cfg);
    const double c0 = cache.at({0, 0}).rate;
    const double c6 = cache.at({6, 0}).rate;
    EXPECT_GT(c0, c6 - 0.05);
}

}  // namespace
