#include "ccap/estimate/alignment.hpp"

#include <gtest/gtest.h>

#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::estimate;
using Trace = std::vector<std::uint32_t>;

TEST(Alignment, IdenticalTracesAllMatch) {
    const Trace t = {1, 0, 1, 1, 0};
    const Alignment a = align(t, t);
    EXPECT_EQ(a.distance, 0U);
    EXPECT_EQ(a.count(EditOp::match), t.size());
    EXPECT_EQ(a.to_string(), "MMMMM");
}

TEST(Alignment, EmptyTraces) {
    EXPECT_EQ(align({}, {}).distance, 0U);
    const Trace t = {1, 2, 3};
    const Alignment del = align(t, {});
    EXPECT_EQ(del.distance, 3U);
    EXPECT_EQ(del.count(EditOp::deletion), 3U);
    const Alignment ins = align({}, t);
    EXPECT_EQ(ins.count(EditOp::insertion), 3U);
}

TEST(Alignment, SingleDeletion) {
    const Trace sent = {1, 0, 1, 1};
    const Trace received = {1, 0, 1};
    const Alignment a = align(sent, received);
    EXPECT_EQ(a.distance, 1U);
    EXPECT_EQ(a.count(EditOp::deletion), 1U);
    EXPECT_EQ(a.count(EditOp::match), 3U);
}

TEST(Alignment, SingleInsertion) {
    const Trace sent = {1, 0, 1};
    const Trace received = {1, 0, 0, 1};
    const Alignment a = align(sent, received);
    EXPECT_EQ(a.distance, 1U);
    EXPECT_EQ(a.count(EditOp::insertion), 1U);
}

TEST(Alignment, SingleSubstitution) {
    const Trace sent = {5, 6, 7};
    const Trace received = {5, 9, 7};
    const Alignment a = align(sent, received);
    EXPECT_EQ(a.distance, 1U);
    EXPECT_EQ(a.count(EditOp::substitution), 1U);
    EXPECT_EQ(a.steps[1].sent_index, 1U);
    EXPECT_EQ(a.steps[1].received_index, 1U);
}

TEST(Alignment, PrefersMatchesOnTies) {
    // "ab" vs "ba" can be (sub, sub) or (ins, match, del); distance 2 either
    // way — the traceback preference keeps substitutions.
    const Trace sent = {1, 2};
    const Trace received = {2, 1};
    const Alignment a = align(sent, received);
    EXPECT_EQ(a.distance, 2U);
    EXPECT_EQ(a.to_string(), "SS");
}

TEST(Alignment, StepsReconstructReceived) {
    ccap::util::Rng rng(1);
    Trace sent(200);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(4));
    // Corrupt: delete ~10%, insert ~10%, substitute ~5%.
    Trace received;
    for (std::uint32_t s : sent) {
        if (rng.bernoulli(0.1)) continue;  // delete
        if (rng.bernoulli(0.1)) received.push_back(static_cast<std::uint32_t>(rng.uniform_below(4)));
        received.push_back(rng.bernoulli(0.05) ? static_cast<std::uint32_t>(rng.uniform_below(4))
                                               : s);
    }
    const Alignment a = align(sent, received);
    // Replaying the steps over `sent` must reproduce `received`.
    Trace rebuilt;
    for (const EditStep& step : a.steps) {
        switch (step.op) {
            case EditOp::match:
                rebuilt.push_back(sent[step.sent_index]);
                break;
            case EditOp::substitution:
            case EditOp::insertion:
                rebuilt.push_back(received[step.received_index]);
                break;
            case EditOp::deletion:
                break;
        }
    }
    EXPECT_EQ(rebuilt, received);
}

TEST(Alignment, DistanceMatchesLinearMemoryVersion) {
    ccap::util::Rng rng(2);
    for (int trial = 0; trial < 5; ++trial) {
        Trace a(60), b(70);
        for (auto& s : a) s = static_cast<std::uint32_t>(rng.uniform_below(3));
        for (auto& s : b) s = static_cast<std::uint32_t>(rng.uniform_below(3));
        EXPECT_EQ(align(a, b).distance, edit_distance(a, b));
    }
}

TEST(Alignment, TriangleInequality) {
    ccap::util::Rng rng(3);
    Trace a(40), b(40), c(40);
    for (auto& s : a) s = static_cast<std::uint32_t>(rng.uniform_below(2));
    for (auto& s : b) s = static_cast<std::uint32_t>(rng.uniform_below(2));
    for (auto& s : c) s = static_cast<std::uint32_t>(rng.uniform_below(2));
    EXPECT_LE(edit_distance(a, c), edit_distance(a, b) + edit_distance(b, c));
}

TEST(Alignment, Symmetry) {
    const Trace a = {1, 2, 3, 4, 2};
    const Trace b = {1, 3, 4, 4};
    EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
}

TEST(Alignment, CountsSumToSteps) {
    const Trace sent = {1, 2, 3, 4, 5, 6};
    const Trace received = {1, 9, 3, 5, 6, 6};
    const Alignment a = align(sent, received);
    EXPECT_EQ(a.count(EditOp::match) + a.count(EditOp::substitution) +
                  a.count(EditOp::deletion) + a.count(EditOp::insertion),
              a.steps.size());
}

}  // namespace
