#include "ccap/info/drift_hmm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace {

using ccap::info::DriftHmm;
using ccap::info::DriftParams;
using ccap::util::Matrix;

using Bits = std::vector<std::uint8_t>;

/// Exact reference P(rx | tx) by memoized recursion over the untruncated
/// generative model (geometric insertion runs, trailing insertions).
double reference_likelihood(const Bits& tx, const Bits& rx, const DriftParams& p) {
    const double inv_m = 1.0 / p.alphabet;
    std::map<std::pair<std::size_t, std::size_t>, double> memo;
    const std::function<double(std::size_t, std::size_t)> f = [&](std::size_t i,
                                                                  std::size_t j) -> double {
        const auto key = std::make_pair(i, j);
        if (auto it = memo.find(key); it != memo.end()) return it->second;
        double v = 0.0;
        if (i == tx.size()) {
            v = std::pow(p.p_i * inv_m, static_cast<double>(rx.size() - j)) * (1.0 - p.p_i);
        } else {
            if (j < rx.size()) {
                v += p.p_i * inv_m * f(i, j + 1);
                const double emit = rx[j] == tx[i]
                                        ? 1.0 - p.p_s
                                        : p.p_s / (p.alphabet - 1.0);
                v += p.p_t() * emit * f(i + 1, j + 1);
            }
            v += p.p_d * f(i + 1, j);
        }
        memo[key] = v;
        return v;
    };
    return f(0, 0);
}

DriftParams clean() { return {0.0, 0.0, 0.0, 2, 16, 8}; }

TEST(DriftParams, Validation) {
    EXPECT_NO_THROW(clean().validate());
    DriftParams bad = clean();
    bad.p_d = 0.6;
    bad.p_i = 0.5;
    EXPECT_THROW(bad.validate(), std::domain_error);
    bad = clean();
    bad.p_d = -0.1;
    EXPECT_THROW(bad.validate(), std::domain_error);
    bad = clean();
    bad.alphabet = 1;
    EXPECT_THROW(bad.validate(), std::domain_error);
    bad = clean();
    bad.max_drift = 0;
    EXPECT_THROW(bad.validate(), std::domain_error);
}

TEST(DriftHmm, CleanChannelIdentityHasUnitProbability) {
    const DriftHmm hmm(clean());
    const Bits tx = {0, 1, 1, 0, 1};
    EXPECT_NEAR(hmm.log2_likelihood(tx, tx), 0.0, 1e-12);
}

TEST(DriftHmm, CleanChannelMismatchImpossible) {
    const DriftHmm hmm(clean());
    const Bits tx = {0, 1, 1};
    const Bits rx = {0, 0, 1};
    EXPECT_TRUE(std::isinf(hmm.log2_likelihood(tx, rx)));
    const Bits shorter = {0, 1};
    EXPECT_TRUE(std::isinf(hmm.log2_likelihood(tx, shorter)));
}

TEST(DriftHmm, PureDeletionTwoSymbolCase) {
    DriftParams p = clean();
    p.p_d = 0.2;
    const DriftHmm hmm(p);
    // tx = [0,1], rx = [0]: only path is transmit(0), delete(1):
    // P = p_t * p_d = 0.8 * 0.2.
    const Bits tx = {0, 1};
    const Bits rx = {0};
    EXPECT_NEAR(hmm.log2_likelihood(tx, rx), std::log2(0.8 * 0.2), 1e-10);
}

TEST(DriftHmm, MatchesBruteForceReference) {
    DriftParams p{0.1, 0.15, 0.05, 2, 16, 10};
    const DriftHmm hmm(p);
    const std::vector<std::pair<Bits, Bits>> cases = {
        {{0, 1, 1, 0}, {0, 1, 1, 0}}, {{0, 1, 1, 0}, {0, 1, 0}},
        {{0, 1}, {0, 0, 1, 1}},       {{1, 1, 1}, {}},
        {{}, {1, 0}},                 {{0, 1, 0, 1, 1}, {1, 0, 1}},
        {{0}, {0, 0, 0}},
    };
    for (const auto& [tx, rx] : cases) {
        const double ref = reference_likelihood(tx, rx, p);
        const double got = hmm.log2_likelihood(tx, rx);
        ASSERT_GT(ref, 0.0);
        EXPECT_NEAR(got, std::log2(ref), 1e-6)
            << "tx size " << tx.size() << " rx size " << rx.size();
    }
}

TEST(DriftHmm, TernaryAlphabetMatchesReference) {
    DriftParams p{0.12, 0.08, 0.1, 3, 12, 8};
    const DriftHmm hmm(p);
    const Bits tx = {0, 2, 1, 2};
    const Bits rx = {0, 2, 2};
    EXPECT_NEAR(hmm.log2_likelihood(tx, rx),
                std::log2(reference_likelihood(tx, rx, p)), 1e-6);
}

TEST(DriftHmm, SymbolOutOfAlphabetThrows) {
    const DriftHmm hmm(clean());
    const Bits bad = {0, 2};
    const Bits ok = {0, 1};
    EXPECT_THROW((void)hmm.log2_likelihood(bad, ok), std::out_of_range);
    EXPECT_THROW((void)hmm.log2_likelihood(ok, bad), std::out_of_range);
}

TEST(DriftHmm, PosteriorsRowsNormalized) {
    DriftParams p{0.1, 0.1, 0.02, 2, 16, 8};
    const DriftHmm hmm(p);
    Matrix priors(6, 2, 0.5);
    const Bits rx = {1, 0, 1, 1, 0};
    const Matrix post = hmm.posteriors(priors, rx);
    ASSERT_EQ(post.rows(), 6U);
    for (std::size_t j = 0; j < post.rows(); ++j) {
        EXPECT_NEAR(post(j, 0) + post(j, 1), 1.0, 1e-9);
        EXPECT_GE(post(j, 0), 0.0);
        EXPECT_GE(post(j, 1), 0.0);
    }
}

TEST(DriftHmm, CleanChannelPosteriorsAreExact) {
    const DriftHmm hmm(clean());
    Matrix priors(4, 2, 0.5);
    const Bits rx = {1, 0, 0, 1};
    const Matrix post = hmm.posteriors(priors, rx);
    for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(post(j, rx[j]), 1.0, 1e-9);
}

TEST(DriftHmm, EvidenceMatchesUniformInputs) {
    // Clean channel, uniform priors: P(rx) = 2^-n for any rx of length n.
    const DriftHmm hmm(clean());
    Matrix priors(5, 2, 0.5);
    const Bits rx = {1, 1, 0, 1, 0};
    double evidence = 0.0;
    (void)hmm.posteriors(priors, rx, &evidence);
    EXPECT_NEAR(evidence, -5.0, 1e-9);
}

TEST(DriftHmm, NoisyPosteriorLeansTowardReceived) {
    DriftParams p{0.05, 0.05, 0.1, 2, 16, 8};
    const DriftHmm hmm(p);
    Matrix priors(8, 2, 0.5);
    const Bits rx = {1, 1, 1, 1, 1, 1, 1, 1};
    const Matrix post = hmm.posteriors(priors, rx);
    for (std::size_t j = 0; j < 8; ++j) EXPECT_GT(post(j, 1), 0.5);
}

TEST(DriftHmm, PosteriorPriorMismatchThrows) {
    const DriftHmm hmm(clean());
    Matrix bad_cols(4, 3, 1.0 / 3.0);
    const Bits rx = {0, 1};
    EXPECT_THROW((void)hmm.posteriors(bad_cols, rx), std::invalid_argument);
    Matrix not_stochastic(4, 2, 0.4);
    EXPECT_THROW((void)hmm.posteriors(not_stochastic, rx), std::invalid_argument);
}

TEST(DriftHmm, SegmentLikelihoodsCleanChannelPicksTruth) {
    const DriftHmm hmm(clean());
    Matrix priors(4, 2, 0.5);
    const Bits rx = {1, 0, 0, 1};
    const std::vector<Bits> candidates = {{1, 0}, {0, 0}, {0, 1}, {1, 1}};
    const Matrix like = hmm.segment_likelihoods(priors, rx, 2, candidates);
    ASSERT_EQ(like.rows(), 2U);
    ASSERT_EQ(like.cols(), 4U);
    EXPECT_NEAR(like(0, 0), 1.0, 1e-9);  // segment "10"
    EXPECT_NEAR(like(1, 2), 1.0, 1e-9);  // segment "01"
}

TEST(DriftHmm, SegmentLikelihoodsRowsNormalized) {
    DriftParams p{0.08, 0.08, 0.02, 2, 16, 8};
    const DriftHmm hmm(p);
    Matrix priors(6, 2, 0.5);
    const Bits rx = {1, 0, 0, 1, 1};
    const std::vector<Bits> candidates = {{0, 0, 0}, {1, 0, 0}, {0, 1, 1}, {1, 1, 1}};
    const Matrix like = hmm.segment_likelihoods(priors, rx, 3, candidates);
    for (std::size_t t = 0; t < like.rows(); ++t) {
        double sum = 0.0;
        for (std::size_t c = 0; c < like.cols(); ++c) sum += like(t, c);
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(DriftHmm, SegmentLikelihoodsValidation) {
    const DriftHmm hmm(clean());
    Matrix priors(4, 2, 0.5);
    const Bits rx = {0, 1, 0, 1};
    const std::vector<Bits> bad_len = {{0, 1, 0}};
    EXPECT_THROW((void)hmm.segment_likelihoods(priors, rx, 2, bad_len),
                 std::invalid_argument);
    const std::vector<Bits> empty;
    EXPECT_THROW((void)hmm.segment_likelihoods(priors, rx, 2, empty), std::invalid_argument);
    const std::vector<Bits> ok = {{0, 1}};
    EXPECT_THROW((void)hmm.segment_likelihoods(priors, rx, 3, ok), std::invalid_argument);
}

}  // namespace
