// Integration: Monte-Carlo validation of the paper's theorems against the
// executable channel and protocols — the test-suite mirror of benches E1-E4.
#include <gtest/gtest.h>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/erasure_channel.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/info/blahut_arimoto.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

using namespace ccap;

std::vector<std::uint32_t> message(std::size_t n, unsigned bits, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<std::uint32_t> m(n);
    for (auto& s : m) s = static_cast<std::uint32_t>(rng.uniform_below(1ULL << bits));
    return m;
}

TEST(Theorem1, ErasureViewInformationHitsTheBound) {
    // The matched erasure channel (Definition 2) delivers exactly
    // N(1 - P_d) bits per use in expectation — the Theorem-1 bound is the
    // *capacity* of that side-information channel.
    for (double pd : {0.1, 0.3, 0.5}) {
        const core::DiChannelParams p{pd, 0.0, 0.0, 4};
        core::DeletionInsertionChannel ch(p, 31);
        const auto msg = message(20000, 4, 31);
        const auto t = ch.transduce(msg);
        const auto view = core::erasure_view(t);
        const double bits_per_use =
            core::erasure_view_information_bits(view, 4) / static_cast<double>(t.channel_uses);
        EXPECT_NEAR(bits_per_use, core::theorem1_upper_bound(p), 0.05) << "pd=" << pd;
    }
}

TEST(Theorem1, BlahutArimotoAgreesOnErasureCapacity) {
    // N(1-P_d) is exactly the BA capacity of the M-ary erasure DMC.
    for (double pd : {0.05, 0.2, 0.4}) {
        const core::DiChannelParams p{pd, 0.0, 0.0, 3};
        const auto ba = info::blahut_arimoto(info::make_mary_erasure(8, pd));
        EXPECT_NEAR(ba.capacity, core::theorem1_upper_bound(p), 1e-6);
    }
}

TEST(Theorem1, NoFeedbackMiRateStaysBelowBound) {
    // The no-feedback achievable rate (drift-lattice Monte Carlo) must sit
    // below the erasure upper bound — the side information is worth
    // something.
    util::Rng rng(32);
    for (double pd : {0.1, 0.2}) {
        info::DriftParams dp;
        dp.p_d = pd;
        const auto est = info::iid_mutual_information_rate(dp, 96, 16, rng);
        EXPECT_LT(est.rate, info::erasure_upper_bound(pd) + 0.02) << "pd=" << pd;
    }
}

TEST(Theorem3, StopAndWaitAchievesErasureCapacity) {
    for (double pd : {0.1, 0.3, 0.6}) {
        const core::DiChannelParams p{pd, 0.0, 0.0, 1};
        core::DeletionInsertionChannel ch(p, 33);
        const auto msg = message(30000, 1, 33);
        const auto run = core::run_stop_and_wait(ch, msg);
        ASSERT_TRUE(run.reliable);
        EXPECT_NEAR(run.measured_info_rate(1), core::theorem3_feedback_capacity(p), 0.02)
            << "pd=" << pd;
    }
}

TEST(Theorem5, MeasuredCounterProtocolInsideTheBand) {
    // The protocol's measured rate lies between 0 and the Theorem-1/4 upper
    // bound, and tracks our exact analysis.
    for (double rate : {0.05, 0.1, 0.15}) {
        const core::DiChannelParams p{rate, rate, 0.0, 4};
        core::DeletionInsertionChannel ch(p, 34);
        const auto msg = message(40000, 4, 34);
        const auto run = core::run_counter_protocol(ch, msg);
        const double measured = run.measured_info_rate(4);
        EXPECT_LE(measured, core::theorem4_upper_bound(p) + 0.05) << "rate=" << rate;
        EXPECT_NEAR(measured, core::counter_protocol_exact_rate(p), 0.08) << "rate=" << rate;
    }
}

TEST(Theorem5, ConvergenceRatioApproachesOne) {
    // eq (7) empirically: measured protocol efficiency (relative to the
    // erasure bound) grows with N.
    const double rate = 0.05;
    double prev = 0.0;
    for (unsigned n : {1U, 4U, 8U}) {
        const core::DiChannelParams p{rate, rate, 0.0, n};
        core::DeletionInsertionChannel ch(p, 35);
        const auto msg = message(30000, n, 35);
        const auto run = core::run_counter_protocol(ch, msg);
        const double ratio = run.measured_info_rate(n) / core::theorem1_upper_bound(p);
        EXPECT_GT(ratio, prev - 0.02) << "n=" << n;
        prev = ratio;
    }
    EXPECT_GT(prev, 0.85);
}

TEST(Erasure, SideInformationHasPositiveValue) {
    // Same realization, with vs without location knowledge: the erasure
    // view always recovers at least as many exact symbols as blind
    // consumption of the raw output stream.
    const core::DiChannelParams p{0.2, 0.2, 0.0, 2};
    core::DeletionInsertionChannel ch(p, 36);
    const auto msg = message(10000, 2, 36);
    const auto t = ch.transduce(msg);
    const auto view = core::erasure_view(t);

    std::size_t erasure_correct = 0;
    for (std::size_t i = 0; i < msg.size(); ++i)
        if (view.symbols[i] && *view.symbols[i] == msg[i]) ++erasure_correct;
    std::size_t blind_correct = 0;
    for (std::size_t i = 0; i < std::min(msg.size(), t.output.size()); ++i)
        if (t.output[i] == msg[i]) ++blind_correct;
    EXPECT_GT(erasure_correct, blind_correct);
}

TEST(DegradationRecipe, ProportionalToPd) {
    // Section 4.3: degradation is proportional to P_d; doubling P_d doubles
    // the capacity loss.
    const double c = 5.0;
    const double loss1 = c - core::degraded_capacity(c, {0.1, 0.0, 0.0, 4});
    const double loss2 = c - core::degraded_capacity(c, {0.2, 0.0, 0.0, 4});
    EXPECT_NEAR(loss2, 2.0 * loss1, 1e-12);
}

}  // namespace
