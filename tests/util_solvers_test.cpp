#include "ccap/util/solvers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using ccap::util::bisect;
using ccap::util::golden_max;

TEST(Bisect, FindsSqrtTwo) {
    const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, DecreasingFunction) {
    const auto r = bisect([](double x) { return 1.0 - x; }, 0.0, 5.0);
    EXPECT_NEAR(r.x, 1.0, 1e-10);
}

TEST(Bisect, EndpointRoot) {
    const auto lo = bisect([](double x) { return x; }, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(lo.x, 0.0);
    const auto hi = bisect([](double x) { return x - 1.0; }, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(hi.x, 1.0);
}

TEST(Bisect, SameSignThrows) {
    EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
                 std::invalid_argument);
}

TEST(Bisect, TranscendentalRoot) {
    // x = cos(x) has root ~0.739085.
    const auto r = bisect([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
    EXPECT_NEAR(r.x, 0.7390851332151607, 1e-9);
}

TEST(GoldenMax, Parabola) {
    const auto r = golden_max([](double x) { return -(x - 2.0) * (x - 2.0); }, 0.0, 5.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 2.0, 1e-7);
    EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST(GoldenMax, BinaryEntropyPeaksAtHalf) {
    const auto h = [](double p) {
        const auto xlx = [](double v) { return v > 0 ? v * std::log2(v) : 0.0; };
        return -xlx(p) - xlx(1 - p);
    };
    const auto r = golden_max(h, 0.0, 1.0);
    EXPECT_NEAR(r.x, 0.5, 1e-6);
    EXPECT_NEAR(r.value, 1.0, 1e-10);
}

TEST(GoldenMax, MaxAtBoundary) {
    const auto r = golden_max([](double x) { return x; }, 0.0, 3.0);
    EXPECT_NEAR(r.x, 3.0, 1e-6);
}

TEST(GoldenMax, ReversedIntervalThrows) {
    EXPECT_THROW((void)golden_max([](double x) { return x; }, 1.0, 0.0), std::invalid_argument);
}

TEST(GoldenMax, DegenerateInterval) {
    const auto r = golden_max([](double x) { return -x * x; }, 2.0, 2.0);
    EXPECT_DOUBLE_EQ(r.x, 2.0);
}

}  // namespace
