// Multiprocessor extension of the Section-3.1 example.
//
// The paper's non-synchronous behaviour is a *uniprocessor* consequence:
// "As there is only one CPU in the system, at any time only one of the two
// processes can be active." This module removes that assumption: a K-core
// simulator grants up to K distinct runnable processes each quantum. A
// co-scheduled covert pair then acts nearly synchronously — the sender and
// receiver alternate within every quantum (with an ordering race) — and
// deletions/insertions reappear only when background load contends for the
// cores. Bench X9 sweeps cores x load and shows the covert capacity
// snapping back to the synchronous ceiling on an idle SMP: multicore
// hardware makes covert channels *faster*, which is why the paper's
// correction matters most on saturated systems.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccap/sched/scheduler.hpp"

namespace ccap::sched {

/// K-core simulator: each quantum, the policy picks up to `cores` distinct
/// runnable processes; they execute in a uniformly random order within the
/// quantum (the memory race between same-quantum peers).
class MultiprocessorSim {
public:
    MultiprocessorSim(std::unique_ptr<Scheduler> scheduler, unsigned cores,
                      std::uint64_t seed);

    ProcessId add_process(std::unique_ptr<Process> process);
    [[nodiscard]] Process& process(ProcessId id);
    [[nodiscard]] unsigned cores() const noexcept { return cores_; }
    [[nodiscard]] std::uint64_t total_quanta() const noexcept { return total_quanta_; }

    /// Run `quanta` scheduling quanta (or until every process finished).
    void run(std::uint64_t quanta);

private:
    std::unique_ptr<Scheduler> scheduler_;
    unsigned cores_;
    util::Rng rng_;
    EventQueue queue_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::uint64_t total_quanta_ = 0;
};

struct SmpCovertConfig {
    unsigned cores = 2;
    unsigned bits_per_symbol = 1;
    std::size_t message_len = 4000;
    std::uint64_t message_seed = 11;
    std::size_t background_processes = 0;  ///< CPU hogs contending for cores
};

struct SmpCovertResult {
    std::vector<std::uint32_t> sent;
    std::vector<std::uint32_t> received;
    std::uint64_t total_quanta = 0;
    /// Ground-truth Definition-1 event counts (same semantics as
    /// CovertPairResult).
    std::uint64_t deletions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t transmissions = 0;

    [[nodiscard]] double deletion_rate() const noexcept;
    [[nodiscard]] double insertion_rate() const noexcept;
};

/// Naive covert pair (sender writes every quantum it gets, receiver samples
/// every quantum it gets) on the K-core simulator.
[[nodiscard]] SmpCovertResult run_smp_covert_pair(std::unique_ptr<Scheduler> scheduler,
                                                  const SmpCovertConfig& config,
                                                  std::uint64_t sim_seed);

}  // namespace ccap::sched
