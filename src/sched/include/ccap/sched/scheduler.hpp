// Scheduling policies and the uniprocessor simulator.
//
// The paper's central observation (Section 3.1): on a uniprocessor, the
// *scheduler* decides the interleaving of the covert sender and receiver,
// and that interleaving is what creates symbol deletions (sender runs twice
// in a row) and insertions (receiver runs twice in a row). Each policy here
// induces different (P_d, P_i) statistics, which bench E6 measures and
// converts to capacity — "evaluating the effectiveness of candidate system
// implementations, e.g. the scheduler, in reducing covert channel
// capacities" (Section 3.2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ccap/sched/process.hpp"
#include "ccap/util/rng.hpp"

namespace ccap::sched {

/// Pure policy: pick the next process among the runnable ones.
class Scheduler {
public:
    virtual ~Scheduler() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    /// `runnable` holds indices into the process table, in ascending order;
    /// returns one of them.
    [[nodiscard]] virtual std::size_t pick(std::span<const std::size_t> runnable,
                                           std::span<const std::unique_ptr<Process>> processes,
                                           util::Rng& rng) = 0;
};

/// Cycles through processes in id order (fair, deterministic).
[[nodiscard]] std::unique_ptr<Scheduler> make_round_robin();
/// Uniformly random among runnable processes.
[[nodiscard]] std::unique_ptr<Scheduler> make_random();
/// Highest priority wins; ties broken round-robin.
[[nodiscard]] std::unique_ptr<Scheduler> make_priority();
/// Lottery scheduling: probability proportional to tickets.
[[nodiscard]] std::unique_ptr<Scheduler> make_lottery();
/// Round-robin, but with probability epsilon the quantum goes to a random
/// runnable process instead (models scheduler jitter / fuzzy time).
[[nodiscard]] std::unique_ptr<Scheduler> make_fuzzy_round_robin(double epsilon);
/// Multi-level feedback queue: `levels` priority levels, round-robin within
/// a level; a process that burns its whole quantum is demoted, one that
/// blocks (yields) is promoted; every `boost_period` quanta everyone is
/// boosted back to the top level (starvation guard). The classic Unix-style
/// interactive scheduler, for realistic rows in the E6 policy sweep.
[[nodiscard]] std::unique_ptr<Scheduler> make_mlfq(unsigned levels = 3,
                                                   std::uint64_t boost_period = 64);

struct SimStats {
    std::uint64_t total_quanta = 0;
    std::uint64_t idle_quanta = 0;  ///< quanta with no runnable process
};

/// Uniprocessor: one process per quantum, chosen by the policy; blocked
/// processes are woken by the event queue.
class UniprocessorSim {
public:
    UniprocessorSim(std::unique_ptr<Scheduler> scheduler, std::uint64_t seed);

    /// Add a process; returns its id. Must be called before run().
    ProcessId add_process(std::unique_ptr<Process> process);

    [[nodiscard]] Process& process(ProcessId id);
    [[nodiscard]] const Process& process(ProcessId id) const;
    [[nodiscard]] std::size_t num_processes() const noexcept { return processes_.size(); }
    [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
    [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
    /// Sequence of process ids granted quanta, in order.
    [[nodiscard]] const std::vector<ProcessId>& activation_trace() const noexcept {
        return trace_;
    }

    /// Run `quanta` scheduling quanta (or until every process finished).
    void run(std::uint64_t quanta);

private:
    std::unique_ptr<Scheduler> scheduler_;
    util::Rng rng_;
    EventQueue queue_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<ProcessId> trace_;
    SimStats stats_;
};

}  // namespace ccap::sched
