// A two-level multi-level-security (MLS) system model, built to make the
// paper's Section 4.3 remark executable:
//
//   "Since the legal information flow (from low to high) can serve as a
//    perfect feedback path, one may always exploit it to achieve the channel
//    capacity. In other words, covert channels in MLS systems are
//    relatively easy to exploit in general and tend to be fast."
//
// The High subject leaks secrets to the Low subject through a shared
// resource (the covert channel). Bell-LaPadula allows Low to *write up*, so
// a Low-level object writable by Low and readable by High is a perfectly
// legal feedback path. With feedback enabled, the High sender runs the
// alternating-bit stop-and-wait protocol of Theorem 3 — no deletions, no
// insertions; without it, the channel degrades to the naive
// deletion-insertion behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccap/sched/scheduler.hpp"
#include "ccap/sched/shared_resource.hpp"

namespace ccap::sched {

struct MlsConfig {
    unsigned bits_per_symbol = 1;
    std::size_t message_len = 1000;
    std::uint64_t message_seed = 7;
    bool use_legal_feedback = true;  ///< exploit the Low->High flow as ACK path

    /// NRL-Pump-style mitigation of the legal feedback path (Kang &
    /// Moskowitz): an acknowledgement written by Low becomes visible to
    /// High only after a uniformly random delay in
    /// [pump_min_delay, pump_max_delay] quanta, breaking the tight timing
    /// coupling the covert exploit relies on. 0/0 disables the pump.
    SimTime pump_min_delay = 0;
    SimTime pump_max_delay = 0;
};

struct MlsResult {
    std::vector<std::uint32_t> secret;     ///< what High tried to leak
    std::vector<std::uint32_t> exfiltrated;  ///< what Low recorded
    std::uint64_t total_quanta = 0;
    bool exact = false;  ///< exfiltrated == secret

    /// Correct secret symbols delivered per quantum (prefix-match goodput
    /// for the non-feedback case, full-match for the feedback case).
    [[nodiscard]] double goodput() const noexcept;
};

/// Run the MLS covert-exfiltration experiment under the given scheduler.
[[nodiscard]] MlsResult run_mls_exfiltration(std::unique_ptr<Scheduler> scheduler,
                                             const MlsConfig& config, std::uint64_t sim_seed);

}  // namespace ccap::sched
