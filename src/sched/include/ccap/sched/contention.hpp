// Sharded multi-tenant contention engine: capacity under load.
//
// The paper models one covert sender/receiver pair; production means
// thousands-to-millions of covert flows sharing one host resource, where
// contention itself sets the effective channel parameters (ROADMAP item 3).
// This engine closes that loop in three deterministic stages:
//
//   1. SIMULATE.  Flows are partitioned into contiguous *slices* of one
//      shared resource, each simulated independently on its own EventQueue:
//      a PacingController deposits the slice's service budget per tick and a
//      RoundRobinFlowQueue drains one symbol per backlogged flow per visit.
//      Per-flow arrivals are Bernoulli-per-tick processes sampled as
//      geometric inter-arrival gaps from a per-flow SplitMix64 substream of
//      the root seed (the PR 1 seeding discipline), so the slice traffic —
//      and every counter below — is a pure function of (config, seed).
//      Slices run across the shared ThreadPool; they touch disjoint flow
//      ranges, so results are bit-identical at any thread count.
//
//   2. MAP.  Per-flow counters become effective channel parameters
//      (THEORY §13): queue drops harden into deletions,
//          P_d_eff = P_d + (1 - P_d) * dropped / offered,
//      and foreign traffic in the flow's collision domain injects spurious
//      symbols at the receiver,
//          P_i_eff = P_i + kappa * foreign_serves / ticks,
//      both clamped to the capacity grid; P_s_eff = P_s (contention delays
//      and drops symbols, it does not rewrite their content).
//
//   3. EVALUATE.  Flows collapse onto a small set of quantized (P_d, P_i)
//      grid nodes; each distinct node is one Monte-Carlo lattice evaluation
//      routed through the SIMD BatchLatticeEngine and memoized in the
//      CapacityCache (node seeds derive from node keys, so cached, uncached
//      and per-flow-naive evaluation are bit-identical). Per-flow and
//      aggregate capacity fold in flow order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ccap/info/capacity_cache.hpp"
#include "ccap/sched/event_queue.hpp"
#include "ccap/util/shard_cache.hpp"

namespace ccap::sched {

struct ContentionConfig {
    std::size_t flows = 1024;    ///< concurrent covert flows
    double offered_load = 0.8;   ///< aggregate arrival rate / aggregate service rate
    SimTime ticks = 1024;        ///< simulated pacing ticks
    /// Aggregate symbols the host serves per tick across all slices.
    /// 0 = flows / 16.0 (so a flow is served about once per 16 ticks at
    /// full load), clamped to at least 1.
    double service_per_tick = 0.0;
    std::size_t slices = 64;        ///< independent resource slices (flows split contiguously)
    std::size_t domain_flows = 16;  ///< flows per collision domain (insertion coupling)
    std::size_t queue_cap = 16;     ///< per-flow backlog cap (overflow => deletion)
    SimTime deadline = 0;           ///< symbol staleness bound in ticks (0 = none)
    /// Probability that one foreign serve in the collision domain lands as
    /// a spurious symbol at this flow's receiver (per tick of exposure).
    double collision_rate = 0.10;
    /// Snap each flow to the nearest grid node (bit-identity mode). false =
    /// bilinear interpolation with a certified per-flow error bound.
    bool quantize_exact = true;
    /// true = evaluate one capacity point per *distinct grid node* (the
    /// whole point of the cache). false = naive per-flow evaluation, one
    /// point per flow — the bench baseline. Values are identical.
    bool dedup_nodes = true;
    unsigned threads = 0;     ///< worker cap; 0 = hardware. Results invariant.
    std::uint64_t seed = 1;   ///< root seed for the per-flow substreams
};

/// Raw per-flow traffic counters out of the simulation stage.
struct FlowLoad {
    std::uint64_t offered = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped_overflow = 0;
    std::uint64_t dropped_expired = 0;
};

/// Per-flow outcome after the map + evaluate stages.
struct FlowOutcome {
    FlowLoad load;
    double p_d_eff = 0.0;
    double p_i_eff = 0.0;
    double p_s_eff = 0.0;
    double capacity = 0.0;   ///< bits per channel use at the effective params
    double err_bound = 0.0;  ///< certified interpolation bound (0 when exact)
};

struct ContentionReport {
    std::vector<FlowOutcome> flows;
    std::uint64_t total_offered = 0;
    std::uint64_t total_served = 0;
    std::uint64_t total_dropped = 0;
    double mean_pd_eff = 0.0;           ///< served-flow mean
    double mean_pi_eff = 0.0;
    double mean_capacity = 0.0;         ///< served-flow mean, bits per use
    /// Sum over flows of capacity * served / ticks: covert bits the whole
    /// tenant population pushes through the shared resource per tick.
    double aggregate_capacity_per_tick = 0.0;
    /// Sum of per-flow err_bound * served / ticks (0 in exact mode).
    double aggregate_err_bound_per_tick = 0.0;
    std::size_t distinct_nodes = 0;     ///< grid nodes actually evaluated
    /// Monte-Carlo blocks backing this run's capacity values: the sum over
    /// distinct evaluated nodes in the dedup-exact path, over per-flow
    /// evaluations in the naive path, and over each flow's backing corner
    /// nodes in interpolated mode. With an adaptive cache config
    /// (target_interp_err / mc.target_sem) this is where the saved blocks
    /// show up; in fixed mode it is just num_blocks times the node count.
    std::uint64_t mc_blocks_spent = 0;
    /// Every backing node met its SEM target (vacuously true in fixed mode).
    bool mc_converged = true;
    util::ShardCacheStats cache;        ///< cache stats delta for this run
};

class ContentionEngine {
public:
    ContentionEngine(const ContentionConfig& cfg, info::CapacityCache& cache);

    /// Stage 1 alone (exposed for tests): per-flow counters, bit-identical
    /// at any thread count.
    [[nodiscard]] std::vector<FlowLoad> simulate() const;

    /// Stage 2 alone: the offered-load -> effective-parameter map for one
    /// flow (THEORY §13). `foreign` is the number of symbols served to
    /// other flows of the same collision domain.
    [[nodiscard]] FlowOutcome map_effective(const FlowLoad& load,
                                            std::uint64_t foreign) const;

    /// The full pipeline: simulate -> map -> evaluate.
    [[nodiscard]] ContentionReport run() const;

    [[nodiscard]] const ContentionConfig& config() const noexcept { return cfg_; }
    /// Resolved aggregate service rate (config default applied).
    [[nodiscard]] double service_per_tick() const noexcept { return service_; }

private:
    void simulate_slice(std::size_t slice, std::vector<FlowLoad>& out) const;

    ContentionConfig cfg_;
    info::CapacityCache* cache_;
    double service_ = 0.0;
    std::size_t slices_ = 0;
};

}  // namespace ccap::sched
