// The covert medium: a shared storage cell with an audit trail.
//
// In the paper's motivating example the sender "makes a change in the
// system" and the receiver "receives it by detecting the change". This
// class is that change-able thing — a single shared variable (think: file
// lock status, disk-arm position, quota counter) — plus an access log so
// experiments and the MLS auditor can reconstruct exactly what happened.
#pragma once

#include <cstdint>
#include <vector>

#include "ccap/sched/event_queue.hpp"
#include "ccap/sched/process.hpp"

namespace ccap::sched {

enum class AccessKind : std::uint8_t { read, write };

struct AccessRecord {
    SimTime time = 0;
    ProcessId who = 0;
    AccessKind kind = AccessKind::read;
    std::uint64_t value = 0;  ///< value written / value observed
};

class SharedResource {
public:
    explicit SharedResource(std::uint64_t initial = 0) : value_(initial) {}

    [[nodiscard]] std::uint64_t read(ProcessId who, SimTime now) {
        log_.push_back({now, who, AccessKind::read, value_});
        return value_;
    }

    void write(ProcessId who, SimTime now, std::uint64_t value) {
        value_ = value;
        log_.push_back({now, who, AccessKind::write, value});
    }

    /// Peek without generating an audit record (for assertions in tests).
    [[nodiscard]] std::uint64_t peek() const noexcept { return value_; }

    [[nodiscard]] const std::vector<AccessRecord>& log() const noexcept { return log_; }
    void clear_log() { log_.clear(); }

private:
    std::uint64_t value_;
    std::vector<AccessRecord> log_;
};

}  // namespace ccap::sched
