// Per-flow FIFO queues drained round-robin — the queueing half of the
// pacer pair (see pacing.hpp). Each flow owns a bounded ring of pending
// symbol arrival timestamps; the drain rotates over flows with backlog,
// serving one symbol per visit, so a heavy flow cannot starve its
// neighbours. Two loss mechanisms model contention-induced deletions:
//
//   * overflow  — an arrival to a full per-flow ring is dropped on push;
//   * expiry    — a symbol older than `deadline` ticks when it reaches the
//                 head is dropped lazily at serve time (0 disables).
//
// Everything is O(1) per push/pop (amortized) and allocation-free after
// construction: flow rings live in one flat array, and the active-flow
// rotation is an intrusive circular list over flow ids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "ccap/sched/event_queue.hpp"

namespace ccap::sched {

struct FlowCounters {
    std::uint64_t enqueued = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped_overflow = 0;
    std::uint64_t dropped_expired = 0;
};

class RoundRobinFlowQueue {
public:
    /// `per_flow_cap` bounds each flow's backlog (>= 1); `deadline` is the
    /// maximum age in ticks a symbol may reach before being dropped at the
    /// head (0 = symbols never expire).
    RoundRobinFlowQueue(std::size_t num_flows, std::size_t per_flow_cap,
                        SimTime deadline = 0);

    /// Enqueue one symbol of `flow` arriving at `now`. Returns false (and
    /// counts an overflow drop) when the flow's ring is full.
    bool push(std::size_t flow, SimTime now);

    struct Served {
        std::size_t flow = 0;
        SimTime enqueued_at = 0;
    };

    /// Serve one symbol round-robin: the next backlogged flow gives up its
    /// oldest non-expired symbol and rotates to the back. Expired heads are
    /// dropped (counted per flow) until a serveable symbol or an empty ring
    /// is found. Returns nullopt when no flow has backlog.
    std::optional<Served> pop(SimTime now);

    [[nodiscard]] std::size_t backlog() const noexcept { return backlog_; }
    [[nodiscard]] std::size_t num_flows() const noexcept { return counters_.size(); }
    [[nodiscard]] const FlowCounters& flow(std::size_t f) const { return counters_[f]; }

    /// Aggregate counters over all flows.
    [[nodiscard]] FlowCounters totals() const noexcept;

private:
    struct FlowRing {
        std::uint32_t head = 0;  // index into slots_ ring, relative to base
        std::uint32_t size = 0;
        std::uint32_t next = kNil;  // next flow in the active rotation
        bool active = false;
    };
    static constexpr std::uint32_t kNil = 0xffffffffu;

    void activate(std::uint32_t f);
    std::uint32_t rotate_front();

    std::size_t cap_;
    SimTime deadline_;
    std::vector<SimTime> slots_;  // num_flows * cap_ flat ring storage
    std::vector<FlowRing> rings_;
    std::vector<FlowCounters> counters_;
    std::uint32_t active_head_ = kNil;  // circular list cursor (next to serve)
    std::uint32_t active_tail_ = kNil;
    std::size_t backlog_ = 0;
};

}  // namespace ccap::sched
