// Discrete-event simulation core: a time-ordered queue of callbacks.
//
// Ties are broken by insertion order (FIFO): every item carries a stable
// sequence number and the heap orders by the *total* key (when, seq).
// Because the comparator never reports two items equivalent, the dequeue
// order is fully determined by the keys and therefore identical under any
// conforming heap implementation (libstdc++, libc++, ...) — a partial
// time-only order would leave tie order up to heap internals and make
// large contention simulations irreproducible across standard libraries.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ccap::sched {

using SimTime = std::uint64_t;

class EventQueue {
public:
    using Callback = std::function<void(SimTime)>;

    /// Schedule `cb` at absolute time `when` (must be >= now()).
    void schedule_at(SimTime when, Callback cb);
    /// Schedule `cb` `delay` ticks from now.
    void schedule_in(SimTime delay, Callback cb) { schedule_at(now_ + delay, std::move(cb)); }

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

    /// Pop and run the earliest event; advances now(). Returns false if empty.
    bool step();

    /// Run until the queue drains or now() exceeds `until`.
    void run_until(SimTime until);

private:
    struct Item {
        SimTime when = 0;
        std::uint64_t seq = 0;
        Callback cb;
    };
    struct Later {
        bool operator()(const Item& a, const Item& b) const noexcept {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };
    // Explicit push_heap/pop_heap over a vector (rather than
    // std::priority_queue) so step() can *move* the popped item out — the
    // adaptor only exposes a const top(), which forces a std::function copy
    // (an allocation per event, measurable at millions of events).
    std::vector<Item> heap_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace ccap::sched
