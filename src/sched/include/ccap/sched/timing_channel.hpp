// A timing covert channel on the uniprocessor — the executable form of the
// paper's Section-3.1 remark:
//
//   "coherent time references are often unavailable in covert channels.
//    Time references are known as key components in exploiting many covert
//    timing channels. ... high assurance systems have made efforts to
//    remove event sources that can serve as such time references."
//
// The sender leaks one bit per burst by how long it sleeps between CPU
// beacons (short gap = 0, long gap = 1). The receiver has no shared clock:
// it counts its *own* scheduling quanta between beacon changes, through a
// local clock that the defender may coarsen (granularity) and jitter —
// the classic fuzzy-time countermeasure. Bench X5 sweeps those knobs and
// reports the measured bit rate against the Shannon timing capacity of the
// corresponding noiseless channel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccap/sched/scheduler.hpp"

namespace ccap::sched {

struct TimingChannelConfig {
    SimTime short_gap = 2;     ///< sleep quanta encoding bit 0
    SimTime long_gap = 6;      ///< sleep quanta encoding bit 1
    std::size_t message_len = 1000;  ///< bits to leak
    std::uint64_t message_seed = 3;

    /// Receiver clock model: readings are floor((t + jitter)/granularity) *
    /// granularity with jitter uniform in [0, clock_jitter].
    SimTime clock_granularity = 1;
    SimTime clock_jitter = 0;

    void validate() const;
};

struct TimingChannelResult {
    std::vector<std::uint8_t> sent;     ///< bits the sender encoded
    std::vector<std::uint8_t> decoded;  ///< bits the receiver recovered
    std::uint64_t total_quanta = 0;
    double bit_error_rate = 0.0;

    /// Correct information moved per quantum: (1 - H(BER)) * bits / quanta.
    [[nodiscard]] double info_rate_per_quantum() const;
};

/// Run the timing channel under the given scheduler.
[[nodiscard]] TimingChannelResult run_timing_channel(std::unique_ptr<Scheduler> scheduler,
                                                     const TimingChannelConfig& config,
                                                     std::uint64_t sim_seed);

/// Shannon timing capacity of the *ideal* version of this channel (perfect
/// clock, no scheduler noise): log2(x0) with x0 the root of
/// x^-short + x^-long = 1 (one symbol occupies exactly its gap in quanta;
/// the beacon quantum coincides with the previous symbol's wake quantum).
[[nodiscard]] double ideal_timing_capacity(const TimingChannelConfig& config);

}  // namespace ccap::sched
