// Sender/receiver process pairs driving symbols through a shared resource
// under a pluggable scheduler — the executable form of the paper's
// Section 3.1 motivating example.
//
// Two operating modes:
//
//  * naive      — the sender writes the next message symbol every time it is
//                 scheduled; the receiver records the resource value every
//                 time it is scheduled ("each time the receiver gets the
//                 chance ... it reads the channel and believes that a symbol
//                 is received", Appendix A). Sender-sender runs produce
//                 deletions; receiver-receiver runs produce insertions —
//                 i.e. this mode *realizes* the deletion-insertion channel,
//                 and its traces feed the parameter estimators.
//
//  * handshake  — the Figure-1 protocol: two extra synchronization
//                 variables (data sequence flag, ack flag) serialize the
//                 transfer. No symbols are lost or duplicated, but quanta
//                 are wasted waiting, which is exactly the capacity
//                 degradation the paper quantifies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccap/sched/scheduler.hpp"
#include "ccap/sched/shared_resource.hpp"

namespace ccap::sched {

enum class PairMode : std::uint8_t { naive, handshake };

struct CovertPairConfig {
    PairMode mode = PairMode::naive;
    unsigned bits_per_symbol = 1;      ///< symbols are drawn from [0, 2^N)
    std::size_t message_len = 1000;    ///< symbols the sender tries to move
    std::uint64_t message_seed = 42;   ///< random message content
    /// Probability the scheduled party actually manages to perform its
    /// operation in a quantum (models "limited or even no control in
    /// choosing the proper time to perform an operation").
    double op_success_prob = 1.0;
    /// Extra unrelated processes competing for the CPU.
    std::size_t background_processes = 0;
};

struct CovertPairResult {
    std::vector<std::uint32_t> sent;      ///< symbols the sender wrote (fresh ones)
    std::vector<std::uint32_t> received;  ///< symbols the receiver recorded
    std::uint64_t total_quanta = 0;       ///< scheduler quanta consumed
    std::uint64_t sender_quanta = 0;
    std::uint64_t receiver_quanta = 0;
    std::uint64_t sender_waits = 0;       ///< handshake: quanta spent waiting
    std::uint64_t receiver_waits = 0;
    /// Ground-truth Definition-1 event counts (naive mode): a write over an
    /// unread write is a deletion; a read of an unread write is a
    /// transmission; a read with nothing new is an insertion (a *duplicate*
    /// — note the scheduler channel's inserted symbols repeat the last
    /// value rather than being uniform, unlike the idealized Definition-1
    /// channel; see naive_scheduler_channel_params).
    std::uint64_t deletions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t transmissions = 0;
    /// handshake only: true iff received == message exactly.
    bool reliable = false;

    /// Delivered information symbols per quantum (received symbols that
    /// exist; reliability is a separate concern in naive mode).
    [[nodiscard]] double symbols_per_quantum() const noexcept {
        return total_quanta == 0
                   ? 0.0
                   : static_cast<double>(received.size()) / static_cast<double>(total_quanta);
    }
};

/// Build the simulation, run it until the sender exhausts its message (with
/// a safety cap), and report the traces.
[[nodiscard]] CovertPairResult run_covert_pair(std::unique_ptr<Scheduler> scheduler,
                                               const CovertPairConfig& config,
                                               std::uint64_t sim_seed);

}  // namespace ccap::sched
