// Simulated processes on the uniprocessor model of the paper's Section 3.1.
//
// Time advances in scheduler quanta. Exactly one runnable process receives
// each quantum; its on_quantum() hook runs (this is where covert senders
// write and receivers sample the shared resource). A process may block
// itself for a number of ticks (modeling I/O or voluntary yield-and-sleep);
// the simulation's event queue wakes it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ccap/sched/event_queue.hpp"

namespace ccap::sched {

using ProcessId = std::uint32_t;

enum class ProcessState : std::uint8_t { runnable, blocked, finished };

/// Human-readable state label (for reports and logs).
[[nodiscard]] const char* state_name(ProcessState s) noexcept;

class Process {
public:
    Process(ProcessId id, std::string name, int priority = 0, std::uint64_t tickets = 1)
        : id_(id), name_(std::move(name)), priority_(priority), tickets_(tickets) {}
    virtual ~Process() = default;

    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    [[nodiscard]] ProcessId id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] int priority() const noexcept { return priority_; }
    [[nodiscard]] std::uint64_t tickets() const noexcept { return tickets_; }
    [[nodiscard]] ProcessState state() const noexcept { return state_; }
    [[nodiscard]] std::uint64_t quanta_used() const noexcept { return quanta_used_; }

    /// One scheduler quantum granted at time `now`. Implementations do their
    /// work and may call block_for()/finish().
    virtual void on_quantum(SimTime now) = 0;

    /// Request to sleep for `ticks` quanta (>=1); the simulator re-wakes it.
    void block_for(SimTime ticks) noexcept {
        state_ = ProcessState::blocked;
        block_ticks_ = ticks == 0 ? 1 : ticks;
    }
    /// Mark the process as done; it is never scheduled again.
    void finish() noexcept { state_ = ProcessState::finished; }

private:
    friend class UniprocessorSim;
    friend class MultiprocessorSim;
    void grant_quantum(SimTime now) {
        ++quanta_used_;
        on_quantum(now);
    }
    void wake() noexcept {
        if (state_ == ProcessState::blocked) state_ = ProcessState::runnable;
    }

    ProcessId id_;
    std::string name_;
    int priority_;
    std::uint64_t tickets_;
    ProcessState state_ = ProcessState::runnable;
    SimTime block_ticks_ = 0;
    std::uint64_t quanta_used_ = 0;
};

}  // namespace ccap::sched
