// Token-budget pacing controller for the contention engine.
//
// Models the serving side of one shared resource slice: every simulated
// tick deposits `budget_per_tick` service tokens, idle budget accumulates
// up to `burst_budget`, and each served symbol consumes one token (or any
// fractional cost). This is the pacing half of the classic WebRTC-style
// pacer (pacing_controller + round_robin_packet_queue, ROADMAP item 3);
// the queueing half lives in flow_queue.hpp.
//
// Deterministic by construction: the controller draws no randomness and is
// only ever driven from one slice's event loop, so replaying the same event
// sequence replays the same budget trajectory bit for bit.
#pragma once

#include <cstdint>

namespace ccap::sched {

struct PacingConfig {
    /// Service tokens deposited per tick (symbols the slice can serve).
    double budget_per_tick = 1.0;
    /// Cap on accumulated idle budget. 0 picks budget_per_tick, i.e. an
    /// idle tick may be banked for at most one tick of burst.
    double burst_budget = 0.0;
};

struct PacingStats {
    std::uint64_t ticks = 0;      ///< on_tick() calls
    std::uint64_t consumed = 0;   ///< successful try_consume() calls
    std::uint64_t throttled = 0;  ///< try_consume() calls refused for lack of budget
};

class PacingController {
public:
    explicit PacingController(PacingConfig cfg);

    /// Deposit one tick's budget (clamped to the burst cap).
    void on_tick();

    /// Spend `cost` tokens if available. Refusals are counted as throttling.
    bool try_consume(double cost = 1.0);

    [[nodiscard]] double budget() const noexcept { return budget_; }
    [[nodiscard]] const PacingConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const PacingStats& stats() const noexcept { return stats_; }

private:
    PacingConfig cfg_;
    double budget_ = 0.0;
    PacingStats stats_;
};

}  // namespace ccap::sched
