#include "ccap/sched/timing_channel.hpp"

#include <cmath>
#include <stdexcept>

#include "ccap/sched/shared_resource.hpp"
#include "ccap/util/solvers.hpp"

namespace ccap::sched {

void TimingChannelConfig::validate() const {
    if (short_gap == 0 || long_gap <= short_gap)
        throw std::invalid_argument("TimingChannelConfig: need 0 < short_gap < long_gap");
    if (clock_granularity == 0)
        throw std::invalid_argument("TimingChannelConfig: clock_granularity must be >= 1");
    if (message_len == 0) throw std::invalid_argument("TimingChannelConfig: empty message");
}

double TimingChannelResult::info_rate_per_quantum() const {
    if (total_quanta == 0 || decoded.empty()) return 0.0;
    const double p = std::min(std::max(bit_error_rate, 0.0), 0.5);
    const double h = p <= 0.0 || p >= 1.0
                         ? 0.0
                         : -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
    const double per_bit = std::max(0.0, 1.0 - h);
    return per_bit * static_cast<double>(decoded.size()) / static_cast<double>(total_quanta);
}

namespace {

struct TimingState {
    SharedResource beacon{0};
    TimingChannelConfig config;
    std::vector<std::uint8_t> message;
    std::vector<SimTime> readings;  // receiver's clocked gap measurements
    util::Rng clock_rng{0};
};

class TimingSender final : public Process {
public:
    TimingSender(ProcessId id, TimingState& st) : Process(id, "timing_sender"), st_(st) {}

    void on_quantum(SimTime now) override {
        if (next_ >= st_.message.size()) {
            // One final beacon so the receiver can close the last gap.
            if (!final_beacon_sent_) {
                st_.beacon.write(id(), now, ++seq_);
                final_beacon_sent_ = true;
                return;
            }
            finish();
            return;
        }
        st_.beacon.write(id(), now, ++seq_);
        const std::uint8_t bit = st_.message[next_++];
        block_for(bit ? st_.config.long_gap : st_.config.short_gap);
    }

private:
    TimingState& st_;
    std::size_t next_ = 0;
    std::uint64_t seq_ = 0;
    bool final_beacon_sent_ = false;
};

class TimingReceiver final : public Process {
public:
    TimingReceiver(ProcessId id, TimingState& st) : Process(id, "timing_receiver"), st_(st) {}

    void on_quantum(SimTime now) override {
        ++gap_;  // my own quantum counter is my only clock
        const std::uint64_t seq = st_.beacon.read(id(), now);
        if (seq == last_seq_) return;
        if (last_seq_ != 0) {
            // Close the gap through the (possibly degraded) local clock.
            SimTime reading = gap_;
            if (st_.config.clock_jitter > 0)
                reading += st_.clock_rng.uniform_below(st_.config.clock_jitter + 1);
            const SimTime g = st_.config.clock_granularity;
            reading = (reading / g) * g;
            st_.readings.push_back(reading);
        }
        last_seq_ = seq;
        gap_ = 0;
    }

private:
    TimingState& st_;
    std::uint64_t last_seq_ = 0;
    SimTime gap_ = 0;
};

}  // namespace

TimingChannelResult run_timing_channel(std::unique_ptr<Scheduler> scheduler,
                                       const TimingChannelConfig& config,
                                       std::uint64_t sim_seed) {
    config.validate();
    TimingState st;
    st.config = config;
    st.clock_rng.reseed(sim_seed ^ 0x71C7);
    util::Rng msg_rng(config.message_seed);
    st.message.resize(config.message_len);
    for (auto& b : st.message) b = static_cast<std::uint8_t>(msg_rng.next() & 1U);

    UniprocessorSim sim(std::move(scheduler), sim_seed);
    sim.add_process(std::make_unique<TimingSender>(0, st));
    sim.add_process(std::make_unique<TimingReceiver>(1, st));

    const std::uint64_t cap = (config.message_len + 8) * (config.long_gap + 8) * 4;
    std::uint64_t executed = 0;
    while (sim.process(0).state() != ProcessState::finished && executed < cap) {
        sim.run(256);
        executed += 256;
    }
    sim.run(8);

    TimingChannelResult res;
    res.sent = std::move(st.message);
    // Decode by calibrating two gap clusters (1-D two-means) and splitting
    // at the midpoint — the receiver knows the alphabet has two durations
    // but not what its noisy local clock maps them to.
    if (!st.readings.empty()) {
        double lo = static_cast<double>(st.readings.front());
        double hi = lo;
        for (SimTime r : st.readings) {
            lo = std::min(lo, static_cast<double>(r));
            hi = std::max(hi, static_cast<double>(r));
        }
        for (int iter = 0; iter < 25; ++iter) {
            double sum_lo = 0.0, sum_hi = 0.0;
            std::size_t n_lo = 0, n_hi = 0;
            const double mid = 0.5 * (lo + hi);
            for (SimTime r : st.readings) {
                const auto v = static_cast<double>(r);
                if (v <= mid) {
                    sum_lo += v;
                    ++n_lo;
                } else {
                    sum_hi += v;
                    ++n_hi;
                }
            }
            if (n_lo) lo = sum_lo / static_cast<double>(n_lo);
            if (n_hi) hi = sum_hi / static_cast<double>(n_hi);
        }
        const double threshold = 0.5 * (lo + hi);
        res.decoded.reserve(st.readings.size());
        for (SimTime r : st.readings)
            res.decoded.push_back(
                static_cast<std::uint8_t>(static_cast<double>(r) > threshold ? 1 : 0));
    }
    res.total_quanta = sim.stats().total_quanta;
    const std::size_t n = std::min(res.sent.size(), res.decoded.size());
    std::size_t errors = res.sent.size() - n;  // missing bits count as errors
    for (std::size_t i = 0; i < n; ++i) errors += res.sent[i] != res.decoded[i];
    res.bit_error_rate =
        res.sent.empty() ? 0.0
                         : static_cast<double>(errors) / static_cast<double>(res.sent.size());
    return res;
}

double ideal_timing_capacity(const TimingChannelConfig& config) {
    config.validate();
    // The beacon quantum overlaps the wake quantum of the previous symbol,
    // so one symbol occupies exactly `gap` scheduling quanta end to end.
    const double t0 = static_cast<double>(config.short_gap);
    const double t1 = static_cast<double>(config.long_gap);
    const auto g = [&](double x) { return std::pow(x, -t0) + std::pow(x, -t1) - 1.0; };
    const double x0 = ccap::util::bisect(g, 1.0, 3.0, 1e-13).x;
    return std::log2(x0);
}

}  // namespace ccap::sched
