#include "ccap/sched/mls_system.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace ccap::sched {

double MlsResult::goodput() const noexcept {
    if (total_quanta == 0) return 0.0;
    std::size_t correct = 0;
    const std::size_t n = std::min(secret.size(), exfiltrated.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (secret[i] != exfiltrated[i]) break;
        ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(total_quanta);
}

namespace {

/// The legal Low->High object, optionally routed through a Pump: writes
/// become visible to the (High) reader only after a per-write random delay.
class PumpedUpwardChannel {
public:
    void configure(SimTime min_delay, SimTime max_delay, std::uint64_t seed) {
        min_delay_ = min_delay;
        max_delay_ = max_delay;
        rng_.reseed(seed);
    }

    void write(std::uint64_t value, SimTime now) {
        SimTime delay = 0;
        if (max_delay_ > 0)
            delay = min_delay_ + static_cast<SimTime>(rng_.uniform_below(
                                     max_delay_ - min_delay_ + 1));
        pending_.emplace_back(now + delay, value);
    }

    [[nodiscard]] std::uint64_t read(SimTime now) {
        while (!pending_.empty() && pending_.front().first <= now) {
            visible_ = pending_.front().second;
            pending_.pop_front();
        }
        return visible_;
    }

private:
    SimTime min_delay_ = 0;
    SimTime max_delay_ = 0;
    util::Rng rng_{0xB00C};
    std::deque<std::pair<SimTime, std::uint64_t>> pending_;
    std::uint64_t visible_ = 0;
};

struct MlsState {
    // High-level object: the covert medium (High writes, Low "observes" —
    // that observation is the illegal flow being studied). The data value
    // carries symbol | parity-bit when feedback mode is on.
    SharedResource covert{0};
    // Low-level object: legal flow. Low writes its received count; High
    // reads down. (Bell-LaPadula: write-up and read-down are both allowed.)
    // Optionally pumped (see MlsConfig).
    PumpedUpwardChannel legal_up;

    MlsConfig config;
    std::vector<std::uint32_t> secret;
    std::vector<std::uint32_t> exfiltrated;
};

class HighSender final : public Process {
public:
    HighSender(ProcessId id, MlsState& st) : Process(id, "high"), st_(st) {}

    void on_quantum(SimTime now) override {
        if (done_) {
            finish();
            return;
        }
        const unsigned shift = st_.config.bits_per_symbol;
        if (!st_.config.use_legal_feedback) {
            // Naive: overwrite the covert cell each quantum.
            st_.covert.write(id(), now, st_.secret[next_]);
            if (++next_ >= st_.secret.size()) done_ = true;
            return;
        }
        // Alternating-bit stop-and-wait using the legal Low->High object as
        // a perfect feedback path (Theorem 3's protocol).
        const std::uint64_t acked = st_.legal_up.read(now);
        if (acked == sent_count_ && sent_count_ > 0 && next_ >= st_.secret.size()) {
            done_ = true;
            finish();
            return;
        }
        if (acked == sent_count_) {
            // Last symbol acknowledged: send the next one.
            parity_ ^= 1U;
            st_.covert.write(id(), now,
                             (static_cast<std::uint64_t>(parity_) << shift) |
                                 st_.secret[next_]);
            ++next_;
            ++sent_count_;
        }
        // else: not yet acknowledged -> resend is implicit (storage channel
        // keeps the value); the quantum is simply wasted waiting.
    }

private:
    MlsState& st_;
    std::size_t next_ = 0;
    std::uint64_t sent_count_ = 0;
    std::uint32_t parity_ = 0;
    bool done_ = false;
};

class LowReceiver final : public Process {
public:
    LowReceiver(ProcessId id, MlsState& st) : Process(id, "low"), st_(st) {}

    void on_quantum(SimTime now) override {
        const unsigned shift = st_.config.bits_per_symbol;
        const std::uint64_t raw = st_.covert.read(id(), now);
        if (!st_.config.use_legal_feedback) {
            st_.exfiltrated.push_back(static_cast<std::uint32_t>(raw));
            return;
        }
        // The covert cell starts at parity 0 and the sender's first write
        // toggles to parity 1, so the initial value is never misread.
        const auto parity = static_cast<std::uint32_t>(raw >> shift);
        if (parity == last_parity_) return;  // no news
        last_parity_ = parity;
        st_.exfiltrated.push_back(
            static_cast<std::uint32_t>(raw & ((1ULL << shift) - 1U)));
        st_.legal_up.write(st_.exfiltrated.size(), now);
    }

private:
    MlsState& st_;
    std::uint32_t last_parity_ = 0;
};

}  // namespace

MlsResult run_mls_exfiltration(std::unique_ptr<Scheduler> scheduler, const MlsConfig& config,
                               std::uint64_t sim_seed) {
    if (config.bits_per_symbol == 0 || config.bits_per_symbol > 16)
        throw std::invalid_argument("run_mls_exfiltration: bits_per_symbol in [1,16]");

    if (config.pump_min_delay > config.pump_max_delay)
        throw std::invalid_argument("run_mls_exfiltration: pump_min_delay > pump_max_delay");
    MlsState st;
    st.config = config;
    st.legal_up.configure(config.pump_min_delay, config.pump_max_delay, sim_seed ^ 0xB00C);
    util::Rng msg_rng(config.message_seed);
    st.secret.resize(config.message_len);
    for (auto& s : st.secret)
        s = static_cast<std::uint32_t>(msg_rng.uniform_below(1ULL << config.bits_per_symbol));

    UniprocessorSim sim(std::move(scheduler), sim_seed);
    sim.add_process(std::make_unique<HighSender>(0, st));
    sim.add_process(std::make_unique<LowReceiver>(1, st));

    const std::uint64_t cap = (config.message_len + 16) * (64 + config.pump_max_delay);
    std::uint64_t executed = 0;
    while (sim.process(0).state() != ProcessState::finished && executed < cap) {
        sim.run(256);
        executed += 256;
    }
    sim.run(8);  // let Low observe the final symbol

    MlsResult res;
    res.secret = std::move(st.secret);
    res.exfiltrated = std::move(st.exfiltrated);
    res.total_quanta = sim.stats().total_quanta;
    res.exact = res.exfiltrated == res.secret;
    return res;
}

}  // namespace ccap::sched
