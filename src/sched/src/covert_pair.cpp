#include "ccap/sched/covert_pair.hpp"

#include <stdexcept>

namespace ccap::sched {
namespace {

struct PairState {
    SharedResource data{0};
    SharedResource data_seq{0};  // handshake: sender's sequence flag
    SharedResource ack_seq{0};   // handshake: receiver's ack flag
    std::vector<std::uint32_t> message;
    CovertPairConfig config;
    util::Rng op_rng{0};

    std::vector<std::uint32_t> sent;
    std::vector<std::uint32_t> received;
    std::uint64_t sender_waits = 0;
    std::uint64_t receiver_waits = 0;
    std::uint64_t deletions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t transmissions = 0;
    bool unread_write = false;
    bool sender_done = false;
};

class SenderProcess final : public Process {
public:
    SenderProcess(ProcessId id, PairState& st) : Process(id, "sender"), st_(st) {}

    void on_quantum(SimTime now) override {
        if (next_ >= st_.message.size()) {
            st_.sender_done = true;
            finish();
            return;
        }
        if (!st_.op_rng.bernoulli(st_.config.op_success_prob)) return;  // op failed
        if (st_.config.mode == PairMode::naive) {
            if (st_.unread_write) ++st_.deletions;  // overwrote an unread symbol
            st_.unread_write = true;
            st_.data.write(id(), now, st_.message[next_]);
            st_.sent.push_back(st_.message[next_]);
            ++next_;
        } else {
            // Fig. 1: only send when the last symbol has been acknowledged.
            if (st_.ack_seq.read(id(), now) != seq_) {
                ++st_.sender_waits;
                return;
            }
            st_.data.write(id(), now, st_.message[next_]);
            st_.sent.push_back(st_.message[next_]);
            ++next_;
            ++seq_;
            st_.data_seq.write(id(), now, seq_);
        }
        if (next_ >= st_.message.size()) {
            st_.sender_done = true;
            if (st_.config.mode == PairMode::naive) finish();
            // handshake: keep running until the last symbol is acked.
        }
        if (st_.config.mode == PairMode::handshake && st_.sender_done &&
            st_.ack_seq.peek() == seq_)
            finish();
    }

private:
    PairState& st_;
    std::size_t next_ = 0;
    std::uint64_t seq_ = 0;
};

class ReceiverProcess final : public Process {
public:
    ReceiverProcess(ProcessId id, PairState& st) : Process(id, "receiver"), st_(st) {}

    void on_quantum(SimTime now) override {
        if (!st_.op_rng.bernoulli(st_.config.op_success_prob)) return;
        if (st_.config.mode == PairMode::naive) {
            // "believes that a symbol is received" on every opportunity.
            if (st_.unread_write)
                ++st_.transmissions;
            else
                ++st_.insertions;
            st_.unread_write = false;
            st_.received.push_back(static_cast<std::uint32_t>(st_.data.read(id(), now)));
            // The experiment ends with the message; one final read (above)
            // captures the last symbol, then the receiver leaves so the
            // traces are not padded with end-of-run duplicates.
            if (st_.sender_done) finish();
        } else {
            const std::uint64_t seq = st_.data_seq.read(id(), now);
            if (seq == last_seq_) {
                ++st_.receiver_waits;
                return;
            }
            st_.received.push_back(static_cast<std::uint32_t>(st_.data.read(id(), now)));
            last_seq_ = seq;
            st_.ack_seq.write(id(), now, seq);
        }
    }

private:
    PairState& st_;
    std::uint64_t last_seq_ = 0;
};

class BackgroundProcess final : public Process {
public:
    BackgroundProcess(ProcessId id, std::string name) : Process(id, std::move(name)) {}
    void on_quantum(SimTime) override {}  // burns CPU, touches nothing
};

}  // namespace

CovertPairResult run_covert_pair(std::unique_ptr<Scheduler> scheduler,
                                 const CovertPairConfig& config, std::uint64_t sim_seed) {
    if (config.bits_per_symbol == 0 || config.bits_per_symbol > 16)
        throw std::invalid_argument("run_covert_pair: bits_per_symbol must be in [1,16]");
    if (config.op_success_prob <= 0.0 || config.op_success_prob > 1.0)
        throw std::invalid_argument("run_covert_pair: op_success_prob must be in (0,1]");

    PairState st;
    st.config = config;
    st.op_rng.reseed(sim_seed ^ 0xC0FFEE);
    util::Rng msg_rng(config.message_seed);
    st.message.resize(config.message_len);
    for (auto& s : st.message)
        s = static_cast<std::uint32_t>(msg_rng.uniform_below(1ULL << config.bits_per_symbol));

    UniprocessorSim sim(std::move(scheduler), sim_seed);
    auto* sender = new SenderProcess(0, st);
    auto* receiver = new ReceiverProcess(1, st);
    sim.add_process(std::unique_ptr<Process>(sender));
    sim.add_process(std::unique_ptr<Process>(receiver));
    for (std::size_t i = 0; i < config.background_processes; ++i)
        sim.add_process(std::make_unique<BackgroundProcess>(
            static_cast<ProcessId>(2 + i), "background" + std::to_string(i)));

    // Safety cap: generous multiple of the message length so a starved
    // handshake still terminates.
    const std::uint64_t cap =
        (config.message_len + 16) * 64 * (2 + config.background_processes);
    std::uint64_t executed = 0;
    while (!st.sender_done && executed < cap) {
        sim.run(256);
        executed += 256;
        if (sim.process(0).state() == ProcessState::finished) break;
    }
    // Give the receiver a few more chances to drain in handshake mode.
    if (config.mode == PairMode::handshake) sim.run(64);

    CovertPairResult res;
    res.sent = std::move(st.sent);
    res.received = std::move(st.received);
    res.total_quanta = sim.stats().total_quanta;
    res.sender_quanta = sim.process(0).quanta_used();
    res.receiver_quanta = sim.process(1).quanta_used();
    res.sender_waits = st.sender_waits;
    res.receiver_waits = st.receiver_waits;
    res.deletions = st.deletions;
    res.insertions = st.insertions;
    res.transmissions = st.transmissions;
    if (config.mode == PairMode::handshake)
        res.reliable = res.received == st.message;
    return res;
}

}  // namespace ccap::sched
