#include "ccap/sched/smp.hpp"

#include <algorithm>
#include <stdexcept>

#include "ccap/sched/shared_resource.hpp"

namespace ccap::sched {

MultiprocessorSim::MultiprocessorSim(std::unique_ptr<Scheduler> scheduler, unsigned cores,
                                     std::uint64_t seed)
    : scheduler_(std::move(scheduler)), cores_(cores), rng_(seed) {
    if (!scheduler_) throw std::invalid_argument("MultiprocessorSim: null scheduler");
    if (cores == 0) throw std::invalid_argument("MultiprocessorSim: zero cores");
}

ProcessId MultiprocessorSim::add_process(std::unique_ptr<Process> process) {
    if (!process) throw std::invalid_argument("MultiprocessorSim: null process");
    const auto expected = static_cast<ProcessId>(processes_.size());
    if (process->id() != expected)
        throw std::invalid_argument("MultiprocessorSim: process id must equal its index");
    processes_.push_back(std::move(process));
    return expected;
}

Process& MultiprocessorSim::process(ProcessId id) { return *processes_.at(id); }

void MultiprocessorSim::run(std::uint64_t quanta) {
    if (processes_.empty()) throw std::logic_error("MultiprocessorSim: no processes");
    std::vector<std::size_t> runnable;
    std::vector<std::size_t> chosen;
    for (std::uint64_t q = 0; q < quanta; ++q) {
        queue_.run_until(queue_.now() + 1);
        runnable.clear();
        bool all_finished = true;
        for (std::size_t i = 0; i < processes_.size(); ++i) {
            const ProcessState st = processes_[i]->state();
            if (st != ProcessState::finished) all_finished = false;
            if (st == ProcessState::runnable) runnable.push_back(i);
        }
        if (all_finished) break;
        ++total_quanta_;
        if (runnable.empty()) continue;

        // The policy fills the cores one pick at a time, each pick excluding
        // the processes already placed this quantum.
        chosen.clear();
        std::vector<std::size_t> remaining = runnable;
        for (unsigned c = 0; c < cores_ && !remaining.empty(); ++c) {
            const std::size_t idx = scheduler_->pick(remaining, processes_, rng_);
            chosen.push_back(idx);
            remaining.erase(std::find(remaining.begin(), remaining.end(), idx));
        }
        // Same-quantum peers race: execute in uniformly random order.
        rng_.shuffle(chosen);
        for (std::size_t idx : chosen) {
            Process& proc = *processes_[idx];
            proc.grant_quantum(queue_.now());
            if (proc.state() == ProcessState::blocked) {
                Process* raw = &proc;
                queue_.schedule_in(raw->block_ticks_, [raw](SimTime) { raw->wake(); });
            }
        }
    }
}

double SmpCovertResult::deletion_rate() const noexcept {
    const double uses = static_cast<double>(deletions + insertions + transmissions);
    return uses > 0.0 ? static_cast<double>(deletions) / uses : 0.0;
}

double SmpCovertResult::insertion_rate() const noexcept {
    const double uses = static_cast<double>(deletions + insertions + transmissions);
    return uses > 0.0 ? static_cast<double>(insertions) / uses : 0.0;
}

namespace {

struct SmpState {
    SharedResource data{0};
    std::vector<std::uint32_t> message;
    std::vector<std::uint32_t> sent;
    std::vector<std::uint32_t> received;
    std::uint64_t deletions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t transmissions = 0;
    bool unread_write = false;
    bool sender_done = false;
};

class SmpSender final : public Process {
public:
    SmpSender(ProcessId id, SmpState& st) : Process(id, "smp_sender"), st_(st) {}
    void on_quantum(SimTime now) override {
        if (next_ >= st_.message.size()) {
            st_.sender_done = true;
            finish();
            return;
        }
        if (st_.unread_write) ++st_.deletions;
        st_.unread_write = true;
        st_.data.write(id(), now, st_.message[next_]);
        st_.sent.push_back(st_.message[next_]);
        ++next_;
        if (next_ >= st_.message.size()) st_.sender_done = true;
    }

private:
    SmpState& st_;
    std::size_t next_ = 0;
};

class SmpReceiver final : public Process {
public:
    SmpReceiver(ProcessId id, SmpState& st) : Process(id, "smp_receiver"), st_(st) {}
    void on_quantum(SimTime now) override {
        if (st_.unread_write)
            ++st_.transmissions;
        else
            ++st_.insertions;
        st_.unread_write = false;
        st_.received.push_back(static_cast<std::uint32_t>(st_.data.read(id(), now)));
        if (st_.sender_done) finish();
    }

private:
    SmpState& st_;
};

class SmpHog final : public Process {
public:
    SmpHog(ProcessId id) : Process(id, "smp_hog") {}
    void on_quantum(SimTime) override {}
};

}  // namespace

SmpCovertResult run_smp_covert_pair(std::unique_ptr<Scheduler> scheduler,
                                    const SmpCovertConfig& config, std::uint64_t sim_seed) {
    if (config.bits_per_symbol == 0 || config.bits_per_symbol > 16)
        throw std::invalid_argument("run_smp_covert_pair: bits_per_symbol in [1,16]");
    if (config.cores == 0) throw std::invalid_argument("run_smp_covert_pair: zero cores");

    SmpState st;
    util::Rng msg_rng(config.message_seed);
    st.message.resize(config.message_len);
    for (auto& s : st.message)
        s = static_cast<std::uint32_t>(msg_rng.uniform_below(1ULL << config.bits_per_symbol));

    MultiprocessorSim sim(std::move(scheduler), config.cores, sim_seed);
    sim.add_process(std::make_unique<SmpSender>(0, st));
    sim.add_process(std::make_unique<SmpReceiver>(1, st));
    for (std::size_t i = 0; i < config.background_processes; ++i)
        sim.add_process(std::make_unique<SmpHog>(static_cast<ProcessId>(2 + i)));

    const std::uint64_t cap =
        (config.message_len + 16) * 32 * (2 + config.background_processes);
    std::uint64_t executed = 0;
    while (!st.sender_done && executed < cap) {
        sim.run(256);
        executed += 256;
        if (sim.process(0).state() == ProcessState::finished) break;
    }
    sim.run(4);  // let the receiver close out

    SmpCovertResult res;
    res.sent = std::move(st.sent);
    res.received = std::move(st.received);
    res.total_quanta = sim.total_quanta();
    res.deletions = st.deletions;
    res.insertions = st.insertions;
    res.transmissions = st.transmissions;
    return res;
}

}  // namespace ccap::sched
