#include "ccap/sched/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace ccap::sched {

void EventQueue::schedule_at(SimTime when, Callback cb) {
    if (when < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
    if (!cb) throw std::invalid_argument("EventQueue: empty callback");
    heap_.push(Item{when, next_seq_++, std::move(cb)});
}

bool EventQueue::step() {
    if (heap_.empty()) return false;
    // priority_queue::top is const; move out via const_cast is UB-adjacent,
    // so copy the callback handle (shared ownership in std::function).
    Item item = heap_.top();
    heap_.pop();
    now_ = item.when;
    item.cb(now_);
    return true;
}

void EventQueue::run_until(SimTime until) {
    while (!heap_.empty() && heap_.top().when <= until) step();
    if (now_ < until) now_ = until;
}

}  // namespace ccap::sched
