#include "ccap/sched/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ccap::sched {

void EventQueue::schedule_at(SimTime when, Callback cb) {
    if (when < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
    if (!cb) throw std::invalid_argument("EventQueue: empty callback");
    heap_.push_back(Item{when, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    // The item is off the heap before the callback runs, so the callback is
    // free to schedule_at() (which pushes and re-heapifies) without touching
    // the popped slot.
    Item item = std::move(heap_.back());
    heap_.pop_back();
    now_ = item.when;
    item.cb(now_);
    return true;
}

void EventQueue::run_until(SimTime until) {
    // heap_.front() is the minimum under Later (max-heap on the inverted
    // comparator), same element priority_queue::top() would expose.
    while (!heap_.empty() && heap_.front().when <= until) step();
    if (now_ < until) now_ = until;
}

}  // namespace ccap::sched
