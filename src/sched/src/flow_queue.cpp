#include "ccap/sched/flow_queue.hpp"

#include <stdexcept>

namespace ccap::sched {

RoundRobinFlowQueue::RoundRobinFlowQueue(std::size_t num_flows, std::size_t per_flow_cap,
                                         SimTime deadline)
    : cap_(per_flow_cap), deadline_(deadline) {
    if (num_flows == 0)
        throw std::invalid_argument("RoundRobinFlowQueue: num_flows must be > 0");
    if (per_flow_cap == 0)
        throw std::invalid_argument("RoundRobinFlowQueue: per_flow_cap must be > 0");
    if (num_flows >= kNil)
        throw std::invalid_argument("RoundRobinFlowQueue: too many flows");
    slots_.resize(num_flows * cap_);
    rings_.resize(num_flows);
    counters_.resize(num_flows);
}

void RoundRobinFlowQueue::activate(std::uint32_t f) {
    FlowRing& r = rings_[f];
    if (r.active) return;
    r.active = true;
    r.next = kNil;
    if (active_tail_ == kNil) {
        active_head_ = active_tail_ = f;
    } else {
        rings_[active_tail_].next = f;
        active_tail_ = f;
    }
}

std::uint32_t RoundRobinFlowQueue::rotate_front() {
    const std::uint32_t f = active_head_;
    active_head_ = rings_[f].next;
    if (active_head_ == kNil) active_tail_ = kNil;
    rings_[f].active = false;
    rings_[f].next = kNil;
    return f;
}

bool RoundRobinFlowQueue::push(std::size_t flow, SimTime now) {
    FlowRing& r = rings_[flow];
    FlowCounters& c = counters_[flow];
    if (r.size == cap_) {
        ++c.dropped_overflow;
        return false;
    }
    const std::size_t slot = flow * cap_ + (r.head + r.size) % cap_;
    slots_[slot] = now;
    ++r.size;
    ++c.enqueued;
    ++backlog_;
    activate(static_cast<std::uint32_t>(flow));
    return true;
}

std::optional<RoundRobinFlowQueue::Served> RoundRobinFlowQueue::pop(SimTime now) {
    while (active_head_ != kNil) {
        const std::uint32_t f = rotate_front();
        FlowRing& r = rings_[f];
        FlowCounters& c = counters_[f];
        // Lazy expiry: age is measured when the symbol reaches the head.
        while (r.size > 0 && deadline_ != 0 &&
               now - slots_[f * cap_ + r.head] > deadline_) {
            r.head = (r.head + 1) % static_cast<std::uint32_t>(cap_);
            --r.size;
            --backlog_;
            ++c.dropped_expired;
        }
        if (r.size == 0) continue;  // drained by expiry; drop out of rotation
        Served out;
        out.flow = f;
        out.enqueued_at = slots_[f * cap_ + r.head];
        r.head = (r.head + 1) % static_cast<std::uint32_t>(cap_);
        --r.size;
        --backlog_;
        ++c.served;
        if (r.size > 0) activate(f);  // rotate to the back of the ring
        return out;
    }
    return std::nullopt;
}

FlowCounters RoundRobinFlowQueue::totals() const noexcept {
    FlowCounters t;
    for (const FlowCounters& c : counters_) {
        t.enqueued += c.enqueued;
        t.served += c.served;
        t.dropped_overflow += c.dropped_overflow;
        t.dropped_expired += c.dropped_expired;
    }
    return t;
}

}  // namespace ccap::sched
