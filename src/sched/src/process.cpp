#include "ccap/sched/process.hpp"

namespace ccap::sched {

const char* state_name(ProcessState s) noexcept {
    switch (s) {
        case ProcessState::runnable: return "runnable";
        case ProcessState::blocked: return "blocked";
        case ProcessState::finished: return "finished";
    }
    return "unknown";
}

}  // namespace ccap::sched
