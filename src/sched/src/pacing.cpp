#include "ccap/sched/pacing.hpp"

#include <stdexcept>

namespace ccap::sched {

PacingController::PacingController(PacingConfig cfg) : cfg_(cfg) {
    if (!(cfg_.budget_per_tick > 0.0))
        throw std::invalid_argument("PacingController: budget_per_tick must be > 0");
    if (cfg_.burst_budget < 0.0)
        throw std::invalid_argument("PacingController: burst_budget must be >= 0");
    if (cfg_.burst_budget == 0.0) cfg_.burst_budget = cfg_.budget_per_tick;
}

void PacingController::on_tick() {
    ++stats_.ticks;
    budget_ += cfg_.budget_per_tick;
    // The burst cap bounds *banked* budget: a tick's fresh deposit is always
    // spendable in full, so a budget_per_tick above the cap still serves.
    const double cap = cfg_.burst_budget > cfg_.budget_per_tick ? cfg_.burst_budget
                                                                : cfg_.budget_per_tick;
    if (budget_ > cap) budget_ = cap;
}

bool PacingController::try_consume(double cost) {
    if (budget_ < cost) {
        ++stats_.throttled;
        return false;
    }
    budget_ -= cost;
    ++stats_.consumed;
    return true;
}

}  // namespace ccap::sched
