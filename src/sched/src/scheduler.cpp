#include "ccap/sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace ccap::sched {
namespace {

class RoundRobin final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "round_robin"; }
    std::size_t pick(std::span<const std::size_t> runnable,
                     std::span<const std::unique_ptr<Process>>, util::Rng&) override {
        // First runnable index strictly greater than the last pick, cycling.
        for (std::size_t idx : runnable)
            if (idx > last_) return last_ = idx;
        return last_ = runnable.front();
    }

private:
    std::size_t last_ = static_cast<std::size_t>(-1);
};

class RandomPick final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "random"; }
    std::size_t pick(std::span<const std::size_t> runnable,
                     std::span<const std::unique_ptr<Process>>, util::Rng& rng) override {
        return runnable[rng.uniform_below(runnable.size())];
    }
};

class Priority final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "priority"; }
    std::size_t pick(std::span<const std::size_t> runnable,
                     std::span<const std::unique_ptr<Process>> processes,
                     util::Rng&) override {
        int best = processes[runnable.front()]->priority();
        for (std::size_t idx : runnable) best = std::max(best, processes[idx]->priority());
        // Ties: round-robin among the best-priority processes.
        std::size_t chosen = static_cast<std::size_t>(-1);
        for (std::size_t idx : runnable)
            if (processes[idx]->priority() == best && idx > last_) {
                chosen = idx;
                break;
            }
        if (chosen == static_cast<std::size_t>(-1))
            for (std::size_t idx : runnable)
                if (processes[idx]->priority() == best) {
                    chosen = idx;
                    break;
                }
        return last_ = chosen;
    }

private:
    std::size_t last_ = static_cast<std::size_t>(-1);
};

class Lottery final : public Scheduler {
public:
    [[nodiscard]] std::string name() const override { return "lottery"; }
    std::size_t pick(std::span<const std::size_t> runnable,
                     std::span<const std::unique_ptr<Process>> processes,
                     util::Rng& rng) override {
        weights_.clear();
        for (std::size_t idx : runnable)
            weights_.push_back(static_cast<double>(processes[idx]->tickets()));
        return runnable[rng.categorical(weights_)];  // in-range even for zero tickets
    }

private:
    std::vector<double> weights_;
};

class FuzzyRoundRobin final : public Scheduler {
public:
    explicit FuzzyRoundRobin(double epsilon) : epsilon_(epsilon) {
        if (epsilon < 0.0 || epsilon > 1.0)
            throw std::domain_error("fuzzy_round_robin: epsilon outside [0,1]");
    }
    [[nodiscard]] std::string name() const override { return "fuzzy_round_robin"; }
    std::size_t pick(std::span<const std::size_t> runnable,
                     std::span<const std::unique_ptr<Process>> processes,
                     util::Rng& rng) override {
        if (rng.bernoulli(epsilon_)) return runnable[rng.uniform_below(runnable.size())];
        return rr_.pick(runnable, processes, rng);
    }

private:
    double epsilon_;
    RoundRobin rr_;
};

class Mlfq final : public Scheduler {
public:
    Mlfq(unsigned levels, std::uint64_t boost_period)
        : levels_(levels), boost_period_(boost_period) {
        if (levels == 0) throw std::invalid_argument("mlfq: need at least one level");
        if (boost_period == 0) throw std::invalid_argument("mlfq: boost_period must be >= 1");
    }

    [[nodiscard]] std::string name() const override { return "mlfq"; }

    std::size_t pick(std::span<const std::size_t> runnable,
                     std::span<const std::unique_ptr<Process>> processes,
                     util::Rng&) override {
        if (level_.size() < processes.size()) level_.resize(processes.size(), 0);
        // Feedback on the previous pick: still runnable means it used its
        // whole quantum (demote); anything else means it yielded (promote).
        if (last_ != kNone) {
            if (processes[last_]->state() == ProcessState::runnable)
                level_[last_] = std::min(level_[last_] + 1, levels_ - 1);
            else
                level_[last_] = 0;
        }
        if (++ticks_ % boost_period_ == 0)
            std::fill(level_.begin(), level_.end(), 0U);

        unsigned best = levels_;
        for (std::size_t idx : runnable) best = std::min(best, level_[idx]);
        // Round-robin within the best level.
        std::size_t chosen = kNone;
        for (std::size_t idx : runnable)
            if (level_[idx] == best && idx > last_rr_) {
                chosen = idx;
                break;
            }
        if (chosen == kNone)
            for (std::size_t idx : runnable)
                if (level_[idx] == best) {
                    chosen = idx;
                    break;
                }
        last_rr_ = chosen;
        last_ = chosen;
        return chosen;
    }

private:
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    unsigned levels_;
    std::uint64_t boost_period_;
    std::uint64_t ticks_ = 0;
    std::vector<unsigned> level_;
    std::size_t last_ = kNone;
    std::size_t last_rr_ = kNone;
};

}  // namespace

std::unique_ptr<Scheduler> make_round_robin() { return std::make_unique<RoundRobin>(); }
std::unique_ptr<Scheduler> make_random() { return std::make_unique<RandomPick>(); }
std::unique_ptr<Scheduler> make_priority() { return std::make_unique<Priority>(); }
std::unique_ptr<Scheduler> make_lottery() { return std::make_unique<Lottery>(); }
std::unique_ptr<Scheduler> make_fuzzy_round_robin(double epsilon) {
    return std::make_unique<FuzzyRoundRobin>(epsilon);
}
std::unique_ptr<Scheduler> make_mlfq(unsigned levels, std::uint64_t boost_period) {
    return std::make_unique<Mlfq>(levels, boost_period);
}

UniprocessorSim::UniprocessorSim(std::unique_ptr<Scheduler> scheduler, std::uint64_t seed)
    : scheduler_(std::move(scheduler)), rng_(seed) {
    if (!scheduler_) throw std::invalid_argument("UniprocessorSim: null scheduler");
}

ProcessId UniprocessorSim::add_process(std::unique_ptr<Process> process) {
    if (!process) throw std::invalid_argument("UniprocessorSim: null process");
    const auto expected = static_cast<ProcessId>(processes_.size());
    if (process->id() != expected)
        throw std::invalid_argument("UniprocessorSim: process id must equal its index");
    processes_.push_back(std::move(process));
    return expected;
}

Process& UniprocessorSim::process(ProcessId id) { return *processes_.at(id); }
const Process& UniprocessorSim::process(ProcessId id) const { return *processes_.at(id); }

void UniprocessorSim::run(std::uint64_t quanta) {
    if (processes_.empty()) throw std::logic_error("UniprocessorSim: no processes");
    std::vector<std::size_t> runnable;
    for (std::uint64_t q = 0; q < quanta; ++q) {
        // Advance simulated time by one quantum; fire due wakeups.
        queue_.run_until(queue_.now() + 1);
        runnable.clear();
        bool all_finished = true;
        for (std::size_t i = 0; i < processes_.size(); ++i) {
            const ProcessState st = processes_[i]->state();
            if (st != ProcessState::finished) all_finished = false;
            if (st == ProcessState::runnable) runnable.push_back(i);
        }
        if (all_finished) break;
        ++stats_.total_quanta;
        if (runnable.empty()) {
            ++stats_.idle_quanta;
            continue;
        }
        const std::size_t idx = scheduler_->pick(runnable, processes_, rng_);
        Process& proc = *processes_[idx];
        trace_.push_back(proc.id());
        proc.grant_quantum(queue_.now());
        if (proc.state() == ProcessState::blocked) {
            Process* raw = &proc;
            queue_.schedule_in(raw->block_ticks_, [raw](SimTime) { raw->wake(); });
        }
    }
}

}  // namespace ccap::sched
