#include "ccap/sched/contention.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "ccap/sched/flow_queue.hpp"
#include "ccap/sched/pacing.hpp"
#include "ccap/util/rng.hpp"
#include "ccap/util/thread_pool.hpp"

namespace ccap::sched {

ContentionEngine::ContentionEngine(const ContentionConfig& cfg, info::CapacityCache& cache)
    : cfg_(cfg), cache_(&cache) {
    if (cfg_.flows == 0) throw std::invalid_argument("ContentionEngine: flows must be >= 1");
    if (cfg_.ticks == 0) throw std::invalid_argument("ContentionEngine: ticks must be >= 1");
    if (!(cfg_.offered_load >= 0.0))
        throw std::invalid_argument("ContentionEngine: offered_load must be >= 0");
    if (!(cfg_.collision_rate >= 0.0))
        throw std::invalid_argument("ContentionEngine: collision_rate must be >= 0");
    if (cfg_.queue_cap == 0)
        throw std::invalid_argument("ContentionEngine: queue_cap must be >= 1");
    if (cfg_.domain_flows == 0)
        throw std::invalid_argument("ContentionEngine: domain_flows must be >= 1");
    slices_ = std::clamp<std::size_t>(cfg_.slices, 1, cfg_.flows);
    service_ = cfg_.service_per_tick > 0.0
                   ? cfg_.service_per_tick
                   : std::max(1.0, static_cast<double>(cfg_.flows) / 16.0);
}

void ContentionEngine::simulate_slice(std::size_t slice, std::vector<FlowLoad>& out) const {
    // Contiguous flow range of this slice; disjoint across slices, so the
    // parallel_for over slices writes to disjoint ranges of `out`.
    const std::size_t lo = slice * cfg_.flows / slices_;
    const std::size_t hi = (slice + 1) * cfg_.flows / slices_;
    const std::size_t n = hi - lo;
    if (n == 0) return;

    // Per-flow Bernoulli arrival probability per tick, sized so the whole
    // population offers `offered_load` times the aggregate service rate.
    const double lambda = cfg_.offered_load * service_ / static_cast<double>(cfg_.flows);
    const double p = std::clamp(lambda, 1e-12, 1.0);

    EventQueue events;
    RoundRobinFlowQueue queue(n, cfg_.queue_cap, cfg_.deadline);
    // The slice serves its population share of the aggregate budget. The
    // burst cap must reach one symbol's cost: a slice whose share is
    // fractional (many slices, few flows) banks budget across ticks and
    // serves a symbol every ~1/budget ticks instead of starving forever
    // behind a cap smaller than the cost of serving anything.
    const double slice_budget =
        service_ * static_cast<double>(n) / static_cast<double>(cfg_.flows);
    PacingController pacer({slice_budget, std::max(slice_budget, 1.0)});

    std::vector<util::Rng> rngs;
    rngs.reserve(n);
    for (std::size_t f = 0; f < n; ++f)
        rngs.emplace_back(util::substream_seed(cfg_.seed, static_cast<std::uint64_t>(lo + f)));

    // Self-rescheduling per-flow arrival: enqueue one symbol, then sample the
    // next inter-arrival gap from the flow's own substream. Gaps are sampled
    // only by the flow that owns the Rng, so the draw order — and hence the
    // whole trajectory — is independent of event interleaving. The callbacks
    // reference locals by address; the event loop drains before scope exit.
    std::function<void(std::size_t, SimTime)> arrive;
    arrive = [&](std::size_t f, SimTime t) {
        (void)queue.push(f, t);
        const std::uint64_t gap = rngs[f].geometric(p);
        if (gap >= cfg_.ticks) return;  // next arrival past the horizon
        const SimTime next = t + 1 + gap;
        if (next <= cfg_.ticks)
            events.schedule_at(next, [&arrive, f](SimTime when) { arrive(f, when); });
    };
    for (std::size_t f = 0; f < n; ++f) {
        const std::uint64_t gap = rngs[f].geometric(p);
        if (gap >= cfg_.ticks) continue;
        events.schedule_at(1 + gap, [&arrive, f](SimTime when) { arrive(f, when); });
    }

    // Self-rescheduling service tick: deposit the slice budget, then drain
    // round-robin until the budget or the backlog runs out.
    std::function<void(SimTime)> tick;
    tick = [&](SimTime t) {
        pacer.on_tick();
        while (queue.backlog() > 0 && pacer.try_consume()) (void)queue.pop(t);
        if (t < cfg_.ticks) events.schedule_at(t + 1, [&tick](SimTime when) { tick(when); });
    };
    events.schedule_at(1, [&tick](SimTime when) { tick(when); });

    events.run_until(cfg_.ticks);

    for (std::size_t f = 0; f < n; ++f) {
        const FlowCounters& c = queue.flow(f);
        FlowLoad& load = out[lo + f];
        load.offered = c.enqueued + c.dropped_overflow;
        load.served = c.served;
        load.dropped_overflow = c.dropped_overflow;
        load.dropped_expired = c.dropped_expired;
    }
}

std::vector<FlowLoad> ContentionEngine::simulate() const {
    std::vector<FlowLoad> out(cfg_.flows);
    util::parallel_for(
        util::ThreadPool::shared(), slices_,
        [&](std::size_t slice) { simulate_slice(slice, out); }, cfg_.threads);
    return out;
}

FlowOutcome ContentionEngine::map_effective(const FlowLoad& load, std::uint64_t foreign) const {
    FlowOutcome o;
    o.load = load;
    const info::CapacityCache::Config& cc = cache_->config();
    const std::uint64_t dropped = load.dropped_overflow + load.dropped_expired;
    double pd = cc.base.p_d;
    if (load.offered > 0)
        pd += (1.0 - cc.base.p_d) * static_cast<double>(dropped) /
              static_cast<double>(load.offered);
    const double pi = cc.base.p_i + cfg_.collision_rate * static_cast<double>(foreign) /
                                        static_cast<double>(cfg_.ticks);
    o.p_d_eff = std::min(pd, cc.grid.pd_max);
    o.p_i_eff = std::min(pi, cc.grid.pi_max);
    o.p_s_eff = cc.base.p_s;
    return o;
}

ContentionReport ContentionEngine::run() const {
    ContentionReport report;
    const util::ShardCacheStats before = cache_->stats();

    // Stage 1: traffic.
    const std::vector<FlowLoad> loads = simulate();

    // Collision-domain serve totals; a flow's foreign exposure is the
    // domain's served volume minus its own.
    const std::size_t domains = (cfg_.flows + cfg_.domain_flows - 1) / cfg_.domain_flows;
    std::vector<std::uint64_t> domain_served(domains, 0);
    for (std::size_t f = 0; f < cfg_.flows; ++f)
        domain_served[f / cfg_.domain_flows] += loads[f].served;

    // Stage 2: the load -> effective-parameter map.
    report.flows.resize(cfg_.flows);
    for (std::size_t f = 0; f < cfg_.flows; ++f) {
        const std::uint64_t foreign = domain_served[f / cfg_.domain_flows] - loads[f].served;
        report.flows[f] = map_effective(loads[f], foreign);
    }

    // Stage 3: capacity. Quantize each flow onto the grid; distinct nodes in
    // first-appearance order (flow order — deterministic) form the work set.
    std::vector<info::CapacityKey> keys(cfg_.flows);
    std::vector<info::CapacityKey> unique;
    {
        std::unordered_map<info::CapacityKey, std::size_t, info::CapacityKeyHash> seen;
        for (std::size_t f = 0; f < cfg_.flows; ++f) {
            keys[f] = cache_->quantize(report.flows[f].p_d_eff, report.flows[f].p_i_eff);
            if (seen.emplace(keys[f], unique.size()).second) unique.push_back(keys[f]);
        }
    }
    report.distinct_nodes = unique.size();

    if (cfg_.quantize_exact && cfg_.dedup_nodes) {
        // Fast path: one MC evaluation per distinct node, batched over the
        // pool, then O(1) lookups per flow.
        cache_->ensure(unique, cfg_.threads);
        for (const info::CapacityKey& k : unique) {
            const info::MiEstimate est = cache_->at(k);
            report.mc_blocks_spent += est.blocks;
            report.mc_converged = report.mc_converged && est.converged;
        }
        for (std::size_t f = 0; f < cfg_.flows; ++f)
            report.flows[f].capacity = cache_->at(keys[f]).rate;
    } else if (cfg_.quantize_exact) {
        // Naive baseline: one MC evaluation per *flow*, no dedup, no memo
        // reuse intended (pair with a disabled cache). Node seeds derive
        // from the key, so the values — and the aggregate — are
        // bit-identical to the fast path.
        std::vector<info::CapacityPoint> points;
        points.reserve(cfg_.flows);
        for (std::size_t f = 0; f < cfg_.flows; ++f)
            points.push_back({cache_->node_params(keys[f]), cache_->node_seed(keys[f])});
        info::McOptions opts = cache_->node_mc_options();
        opts.threads = cfg_.threads;
        const std::vector<info::MiEstimate> values =
            info::iid_mutual_information_rate_points(points, opts);
        for (std::size_t f = 0; f < cfg_.flows; ++f) {
            report.flows[f].capacity = values[f].rate;
            report.mc_blocks_spent += values[f].blocks;
            report.mc_converged = report.mc_converged && values[f].converged;
        }
    } else {
        // Interpolated mode: warm the nearest nodes in one batched pass,
        // then bilinear per flow with a certified error bound.
        if (cfg_.dedup_nodes) cache_->ensure(unique, cfg_.threads);
        for (std::size_t f = 0; f < cfg_.flows; ++f) {
            const info::CapacityCache::Interpolated v =
                cache_->interpolate(report.flows[f].p_d_eff, report.flows[f].p_i_eff);
            report.flows[f].capacity = v.rate;
            report.flows[f].err_bound = v.err_bound;
            report.mc_blocks_spent += v.blocks;
            report.mc_converged = report.mc_converged && v.converged;
        }
    }

    // Aggregate in flow order (deterministic fold).
    const double ticks = static_cast<double>(cfg_.ticks);
    std::uint64_t served_flows = 0;
    for (std::size_t f = 0; f < cfg_.flows; ++f) {
        const FlowOutcome& o = report.flows[f];
        report.total_offered += o.load.offered;
        report.total_served += o.load.served;
        report.total_dropped += o.load.dropped_overflow + o.load.dropped_expired;
        const double share = static_cast<double>(o.load.served) / ticks;
        report.aggregate_capacity_per_tick += o.capacity * share;
        report.aggregate_err_bound_per_tick += o.err_bound * share;
        if (o.load.served > 0) {
            ++served_flows;
            report.mean_pd_eff += o.p_d_eff;
            report.mean_pi_eff += o.p_i_eff;
            report.mean_capacity += o.capacity;
        }
    }
    if (served_flows > 0) {
        report.mean_pd_eff /= static_cast<double>(served_flows);
        report.mean_pi_eff /= static_cast<double>(served_flows);
        report.mean_capacity /= static_cast<double>(served_flows);
    }

    const util::ShardCacheStats after = cache_->stats();
    report.cache.hits = after.hits - before.hits;
    report.cache.misses = after.misses - before.misses;
    report.cache.evictions = after.evictions - before.evictions;
    report.cache.entries = after.entries;
    return report;
}

}  // namespace ccap::sched
