// SharedResource is header-only; this translation unit exists so the audit
// structures get a home if they grow non-inline behaviour.
#include "ccap/sched/shared_resource.hpp"

namespace ccap::sched {

static_assert(sizeof(AccessRecord) <= 32, "AccessRecord should stay compact");

}  // namespace ccap::sched
