#include "ccap/core/stream_source.hpp"

#include <stdexcept>

#include "ccap/util/rng.hpp"

namespace ccap::core {

void FaultStreamSource::Config::validate() const {
    params.validate();
    profile.validate();
    if (window_len == 0)
        throw std::invalid_argument("FaultStreamSource: window_len must be > 0");
    if (!(params.p_d + params.p_i < 1.0))
        throw std::domain_error(
            "FaultStreamSource: p_d + p_i must be < 1 (a queued symbol must "
            "eventually be consumed)");
}

FaultStreamSource::FaultStreamSource(Config cfg)
    : cfg_((cfg.validate(), std::move(cfg))),
      inner_(cfg_.params, util::substream_seed(cfg_.seed, 0xC11)),
      faulty_(inner_, cfg_.profile, util::substream_seed(cfg_.seed, 0xFA17)) {}

std::optional<StreamChunk> FaultStreamSource::next() {
    if (cfg_.windows != 0 && emitted_ >= cfg_.windows) return std::nullopt;

    StreamChunk chunk;
    chunk.index = emitted_;
    chunk.sent.reserve(cfg_.window_len);
    // Per-window message substream: order-free, so a resumed source only
    // needs the channel replayed (skip), not a serialized generator.
    util::Rng msg_rng(util::substream_seed(cfg_.seed, emitted_));
    const std::uint32_t alphabet = cfg_.params.alphabet();
    for (std::size_t i = 0; i < cfg_.window_len; ++i)
        chunk.sent.push_back(static_cast<std::uint32_t>(msg_rng.uniform_below(alphabet)));

    // Drive the faulty channel one use at a time until each queued symbol
    // is consumed; insertions deliver without consuming (they extend the
    // received stream), deletions consume without delivering. Config
    // validation guarantees P_d + P_t > 0 so each symbol terminates.
    for (const std::uint32_t queued : chunk.sent) {
        for (;;) {
            const ChannelUseOutcome out = faulty_.use(queued);
            ++chunk.channel_uses;
            if (out.delivered) chunk.received.push_back(*out.delivered);
            if (out.consumed) break;
        }
    }
    uses_ += chunk.channel_uses;
    ++emitted_;
    return chunk;
}

void FaultStreamSource::skip(std::uint64_t windows) {
    // Replay-and-discard: the channel, fault RNG and use clock advance
    // exactly as a real run would, so the next emitted chunk is
    // bit-identical to the uninterrupted stream's.
    for (std::uint64_t i = 0; i < windows; ++i)
        if (!next()) break;
}

}  // namespace ccap::core
