#include "ccap/core/erasure_channel.hpp"

#include <stdexcept>

namespace ccap::core {

ErasureView erasure_view(const DeletionInsertionChannel::Transduction& t) {
    ErasureView view;
    view.channel_uses = t.channel_uses;
    view.symbols.reserve(t.events.size());
    for (const EventRecord& e : t.events) {
        switch (e.kind) {
            case ChannelEvent::deletion:
                view.symbols.emplace_back(std::nullopt);
                break;
            case ChannelEvent::transmission:
                view.symbols.emplace_back(e.delivered);
                break;
            case ChannelEvent::insertion:
                ++view.insertions_discarded;
                break;
        }
    }
    return view;
}

double erasure_view_information_bits(const ErasureView& view, unsigned bits_per_symbol) {
    if (bits_per_symbol == 0)
        throw std::invalid_argument("erasure_view_information_bits: zero-bit symbols");
    const std::size_t delivered = view.symbols.size() - view.erasures();
    return static_cast<double>(delivered) * static_cast<double>(bits_per_symbol);
}

}  // namespace ccap::core
