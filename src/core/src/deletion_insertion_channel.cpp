#include "ccap/core/deletion_insertion_channel.hpp"

#include <stdexcept>

namespace ccap::core {

DeletionInsertionChannel::DeletionInsertionChannel(DiChannelParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
    params_.validate();
}

std::uint32_t DeletionInsertionChannel::random_symbol() noexcept {
    return static_cast<std::uint32_t>(rng_.uniform_below(params_.alphabet()));
}

std::uint32_t DeletionInsertionChannel::substitute(std::uint32_t s) noexcept {
    if (params_.p_s <= 0.0 || !rng_.bernoulli(params_.p_s)) return s;
    auto r = static_cast<std::uint32_t>(rng_.uniform_below(params_.alphabet() - 1));
    return r >= s ? r + 1 : r;
}

DeletionInsertionChannel::UseOutcome DeletionInsertionChannel::use(std::uint32_t queued) {
    if (queued >= params_.alphabet())
        throw std::out_of_range("DeletionInsertionChannel::use: symbol out of alphabet");
    ++uses_;
    const double u = rng_.uniform();
    UseOutcome out;
    if (u < params_.p_i) {
        out.kind = ChannelEvent::insertion;
        out.delivered = random_symbol();
        out.consumed = false;
    } else if (u < params_.p_i + params_.p_d) {
        out.kind = ChannelEvent::deletion;
        out.consumed = true;
    } else {
        out.kind = ChannelEvent::transmission;
        out.delivered = substitute(queued);
        out.consumed = true;
    }
    return out;
}

DeletionInsertionChannel::Transduction DeletionInsertionChannel::transduce(
    std::span<const std::uint32_t> message, bool trailing_insertions) {
    Transduction t;
    t.output.reserve(message.size());
    for (std::uint32_t symbol : message) {
        for (;;) {
            const UseOutcome out = use(symbol);
            ++t.channel_uses;
            EventRecord rec;
            rec.kind = out.kind;
            rec.offered = symbol;
            if (out.delivered) {
                rec.delivered = *out.delivered;
                rec.substituted =
                    out.kind == ChannelEvent::transmission && *out.delivered != symbol;
                t.output.push_back(*out.delivered);
            }
            t.events.push_back(rec);
            if (out.consumed) break;
        }
    }
    if (trailing_insertions) {
        while (rng_.bernoulli(params_.p_i)) {
            ++uses_;
            ++t.channel_uses;
            EventRecord rec;
            rec.kind = ChannelEvent::insertion;
            rec.delivered = random_symbol();
            t.output.push_back(rec.delivered);
            t.events.push_back(rec);
        }
    }
    return t;
}

}  // namespace ccap::core
