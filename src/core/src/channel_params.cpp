#include "ccap/core/channel_params.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ccap::core {

void DiChannelParams::validate() const {
    // isfinite first: NaN sails through every < comparison below.
    if (!std::isfinite(p_d) || !std::isfinite(p_i) || !std::isfinite(p_s))
        throw std::domain_error("DiChannelParams: non-finite probability");
    if (p_d < 0.0 || p_i < 0.0 || p_s < 0.0)
        throw std::domain_error("DiChannelParams: negative probability");
    if (p_s > 1.0) throw std::domain_error("DiChannelParams: p_s > 1");
    if (p_d + p_i > 1.0 + 1e-12)
        throw std::domain_error("DiChannelParams: p_d + p_i exceeds 1");
    if (bits_per_symbol == 0 || bits_per_symbol > 16)
        throw std::domain_error("DiChannelParams: bits_per_symbol must be in [1,16]");
}

std::string DiChannelParams::to_string() const {
    char buf[96];
    std::snprintf(buf, sizeof buf, "p_d=%.4f p_i=%.4f p_s=%.4f N=%u", p_d, p_i, p_s,
                  bits_per_symbol);
    return buf;
}

bool is_synchronous(const DiChannelParams& p) noexcept { return p.p_d == 0.0 && p.p_i == 0.0; }

}  // namespace ccap::core
