#include "ccap/core/capacity_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ccap/info/entropy.hpp"

namespace ccap::core {
namespace {

double n_bits(const DiChannelParams& p) { return static_cast<double>(p.bits_per_symbol); }

/// Capacity of the M-ary symmetric channel with total symbol-error
/// probability e, clamped into its meaningful range (0 beyond the
/// zero-capacity error rate and for e outside [0,1]).
double msc_capacity_clamped(double e, std::uint32_t m) {
    if (e <= 0.0) return std::log2(static_cast<double>(m));
    if (e >= 1.0) return 0.0;
    return std::max(0.0, info::mary_symmetric_capacity(e, m));
}

}  // namespace

double theorem1_upper_bound(const DiChannelParams& p) {
    p.validate();
    return n_bits(p) * (1.0 - p.p_d);
}

double theorem3_feedback_capacity(const DiChannelParams& p) {
    p.validate();
    if (p.p_i != 0.0)
        throw std::domain_error("theorem3_feedback_capacity: Theorem 3 is for pure deletion "
                                "channels (P_i = 0); use theorem5_lower_bound instead");
    return n_bits(p) * (1.0 - p.p_d);
}

double theorem4_upper_bound(const DiChannelParams& p) {
    p.validate();
    return n_bits(p) * (1.0 - p.p_d);
}

double theorem5_alpha(const DiChannelParams& p) {
    p.validate();
    if (p.p_i >= 1.0) throw std::domain_error("theorem5_alpha: P_i must be < 1");
    return (1.0 - p.p_d) / (1.0 - p.p_i);
}

double converted_channel_capacity(const DiChannelParams& p) {
    const double e = theorem5_alpha(p) * p.p_i;  // effective M-ary error probability
    return msc_capacity_clamped(e, p.alphabet());
}

double theorem5_lower_bound(const DiChannelParams& p) {
    const double coeff = (1.0 - p.p_d) / (1.0 - p.p_i);
    const double raw = coeff * converted_channel_capacity(p);
    // The published expression can exceed the Theorem-1/4 erasure bound for
    // large P_d (an artifact of its approximations; see EXPERIMENTS.md E3).
    // A capacity lower bound can never sit above a capacity upper bound, so
    // clamp into [0, Thm1].
    return std::clamp(raw, 0.0, theorem1_upper_bound(p));
}

double counter_protocol_exact_rate(const DiChannelParams& p) {
    p.validate();
    if (p.p_d >= 1.0) return 0.0;
    const double m = static_cast<double>(p.alphabet());
    // Fraction of received positions that are insertion garbage.
    const double q = p.p_i / (1.0 - p.p_d);
    // Garbage is uniform over M (matches by luck 1/M); genuine symbols are
    // substituted with probability P_s.
    const double e = std::min(1.0, q * (m - 1.0) / m + (1.0 - q) * p.p_s);
    return std::max(0.0, (1.0 - p.p_d) * msc_capacity_clamped(e, p.alphabet()));
}

double theorem5_convergence_ratio(double p_d, unsigned bits_per_symbol) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("theorem5_convergence_ratio: p_d outside [0,1]");
    // eq (6)-(7) set P_i = P_d; past p_d = 1/2 that is no longer a channel
    // (P_t would be negative) and the transmission probability hits zero at
    // exactly 1/2, so the ratio is 0 throughout [1/2, 1].
    if (p_d >= 0.5) return 0.0;
    DiChannelParams p{p_d, p_d, 0.0, bits_per_symbol};
    const double upper = theorem1_upper_bound(p);
    if (upper <= 0.0) return 0.0;
    return theorem5_lower_bound(p) / upper;
}

double degraded_capacity(double traditional_capacity, const DiChannelParams& p) {
    p.validate();
    if (traditional_capacity < 0.0)
        throw std::domain_error("degraded_capacity: negative capacity estimate");
    return traditional_capacity * (1.0 - p.p_d);
}

CapacityBand capacity_band(const DiChannelParams& p) {
    CapacityBand band;
    band.lower = theorem5_lower_bound(p);
    band.exact_protocol = counter_protocol_exact_rate(p);
    band.upper = theorem1_upper_bound(p);
    return band;
}

}  // namespace ccap::core
