#include "ccap/core/feedback_protocols.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "ccap/info/entropy.hpp"
#include "ccap/util/rng.hpp"

namespace ccap::core {

double ProtocolRun::measured_info_rate(unsigned bits_per_symbol) const {
    if (message_len == 0 || channel_uses == 0) return 0.0;
    const auto m = static_cast<unsigned>(1U << bits_per_symbol);
    const double ser =
        static_cast<double>(symbol_errors) / static_cast<double>(message_len);
    const double per_symbol =
        ser >= 1.0 ? 0.0 : std::max(0.0, info::mary_symmetric_capacity(ser, m));
    return symbols_per_use() * per_symbol;
}

ProtocolRun run_stop_and_wait(SymbolChannel& channel,
                              std::span<const std::uint32_t> message) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_stop_and_wait: Theorem 3 protocol requires P_i == 0");
    ProtocolRun run;
    run.message_len = message.size();
    std::vector<std::uint32_t> received;
    received.reserve(message.size());
    for (std::uint32_t symbol : message) {
        // Perfect feedback: the sender learns after each use whether the
        // receiver got the symbol, and resends until it did.
        for (;;) {
            const auto out = channel.use(symbol);
            ++run.channel_uses;
            if (out.delivered) {
                received.push_back(*out.delivered);
                break;
            }
        }
    }
    for (std::size_t i = 0; i < message.size(); ++i)
        if (received[i] != message[i]) ++run.symbol_errors;
    run.reliable = run.symbol_errors == 0;
    run.received = std::move(received);
    return run;
}

ProtocolRun run_counter_protocol(SymbolChannel& channel,
                                 std::span<const std::uint32_t> message) {
    ProtocolRun run;
    run.message_len = message.size();
    std::vector<std::uint32_t> received;     // the receiver's belief stream
    std::vector<bool> was_insertion;         // ground truth per received position
    received.reserve(message.size());
    was_insertion.reserve(message.size());

    // Appendix A: the receiver counts every symbol it believes it received
    // and reports the count over the perfect feedback path. Before each
    // use, the sender aligns its own counter (symbols sent *or skipped*)
    // with the receiver's count — a jump means insertions happened and the
    // corresponding message symbols are skipped; equality means the next
    // symbol can go out.
    while (received.size() < message.size()) {
        const std::size_t receiver_count = received.size();
        // Sender aligns: everything up to receiver_count is settled; the
        // next message symbol to offer is message[receiver_count].
        const std::uint32_t queued = message[receiver_count];
        const auto out = channel.use(queued);
        ++run.channel_uses;
        if (out.delivered) {
            received.push_back(*out.delivered);
            was_insertion.push_back(out.kind == ChannelEvent::insertion);
        }
        // Deletions leave the counters unequal (receiver_count stays below
        // the sender's offer), so the same symbol is re-offered next use —
        // "the sender then does nothing and waits for the next opportunity"
        // collapses to a retry here because feedback is instantaneous.
    }

    for (std::size_t i = 0; i < message.size(); ++i) {
        if (was_insertion[i]) ++run.garbage_positions;
        if (received[i] != message[i]) ++run.symbol_errors;
    }
    run.reliable = run.symbol_errors == 0;
    run.received = std::move(received);
    return run;
}

ProtocolRun run_delayed_stop_and_wait(SymbolChannel& channel,
                                      std::span<const std::uint32_t> message,
                                      std::uint64_t delay) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_delayed_stop_and_wait: requires P_i == 0");
    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());
    for (std::uint32_t symbol : message) {
        for (;;) {
            const auto out = channel.use(symbol);
            // The attempt plus the idle slots spent waiting for its outcome.
            run.channel_uses += 1 + delay;
            if (out.delivered) {
                run.received.push_back(*out.delivered);
                break;
            }
        }
    }
    for (std::size_t i = 0; i < message.size(); ++i)
        if (run.received[i] != message[i]) ++run.symbol_errors;
    run.reliable = run.symbol_errors == 0;
    return run;
}

ProtocolRun run_go_back_n(SymbolChannel& channel,
                          std::span<const std::uint32_t> message, std::uint64_t delay) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_go_back_n: requires P_i == 0");
    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());

    struct SlotOutcome {
        std::size_t idx = 0;
        bool sent = false;
        bool accepted = false;
    };
    std::deque<SlotOutcome> in_flight;  // outcomes become known `delay` slots later
    std::size_t send_ptr = 0;
    std::size_t recv_next = 0;
    while (recv_next < message.size()) {
        ++run.channel_uses;
        SlotOutcome slot;
        if (send_ptr < message.size()) {
            slot.idx = send_ptr;
            slot.sent = true;
            const auto out = channel.use(message[send_ptr]);
            ++send_ptr;
            if (out.delivered) {
                // The receiver accepts only the next in-order symbol and
                // silently discards everything after a gap.
                if (slot.idx == recv_next) {
                    run.received.push_back(*out.delivered);
                    ++recv_next;
                    slot.accepted = true;
                }
            }
        }
        in_flight.push_back(slot);
        if (in_flight.size() > delay) {
            const SlotOutcome past = in_flight.front();
            in_flight.pop_front();
            // Cumulative-NACK rewind: learning that `past.idx` was not
            // accepted sends the window back there. Stale negatives from
            // the same loss burst have idx >= the rewound position and are
            // ignored by the guard.
            if (past.sent && !past.accepted && send_ptr > past.idx) send_ptr = past.idx;
        }
    }
    for (std::size_t i = 0; i < message.size(); ++i)
        if (run.received[i] != message[i]) ++run.symbol_errors;
    run.reliable = run.symbol_errors == 0;
    return run;
}

SyncSimResult simulate_two_variable_handshake(const SyncSimConfig& config) {
    if (config.sender_share <= 0.0 || config.sender_share >= 1.0)
        throw std::domain_error("simulate_two_variable_handshake: sender_share in (0,1)");
    util::Rng rng(config.seed);
    util::Rng msg_rng(config.seed ^ 0x5151);
    const std::uint64_t alphabet = 1ULL << config.bits_per_symbol;

    std::vector<std::uint32_t> message(config.message_len);
    for (auto& s : message) s = static_cast<std::uint32_t>(msg_rng.uniform_below(alphabet));

    SyncSimResult res;
    std::vector<std::uint32_t> received;
    received.reserve(message.size());
    std::uint32_t cell = 0;
    bool data_ready = false;  // SYNC-1: sender sets, receiver clears (via ack)
    std::size_t next = 0;
    while (received.size() < message.size()) {
        ++res.quanta;
        if (rng.bernoulli(config.sender_share)) {
            // Sender quantum: "sends the next symbol once the last symbol
            // has been received".
            if (!data_ready && next < message.size()) {
                cell = message[next++];
                data_ready = true;
            }
        } else {
            // Receiver quantum: "checks the SYNC-1 variable and reads the
            // symbol when ready ... then makes a change on SYNC-2".
            if (data_ready) {
                received.push_back(cell);
                data_ready = false;  // ack
            }
        }
    }
    res.delivered = received.size();
    res.reliable = received == message;
    return res;
}

SyncSimResult simulate_common_event_sync(const SyncSimConfig& config, unsigned slot_len) {
    if (slot_len == 0) throw std::invalid_argument("simulate_common_event_sync: slot_len == 0");
    if (config.sender_share <= 0.0 || config.sender_share >= 1.0)
        throw std::domain_error("simulate_common_event_sync: sender_share in (0,1)");
    util::Rng rng(config.seed);
    util::Rng msg_rng(config.seed ^ 0x5151);
    const std::uint64_t alphabet = 1ULL << config.bits_per_symbol;

    std::vector<std::uint32_t> message(config.message_len);
    for (auto& s : message) s = static_cast<std::uint32_t>(msg_rng.uniform_below(alphabet));

    SyncSimResult res;
    std::vector<std::uint32_t> received;
    std::uint32_t cell = 0;
    std::size_t next = 0;
    bool cell_fresh = false;
    // Slot pairs: sender writes during the first slot_len quanta, receiver
    // reads during the next slot_len. The common event source E is the slot
    // boundary both sides can observe; there is no feedback.
    while (next < message.size()) {
        bool sender_acted = false;
        for (unsigned q = 0; q < slot_len; ++q) {
            ++res.quanta;
            if (!sender_acted && rng.bernoulli(config.sender_share)) {
                cell = message[next++];
                cell_fresh = true;
                sender_acted = true;
            }
        }
        bool receiver_acted = false;
        for (unsigned q = 0; q < slot_len; ++q) {
            ++res.quanta;
            if (!receiver_acted && !rng.bernoulli(config.sender_share)) {
                received.push_back(cell);  // may be stale: an insertion
                receiver_acted = true;
            }
        }
        if (sender_acted && receiver_acted && cell_fresh && received.back() == cell)
            ++res.delivered;
        if (receiver_acted) cell_fresh = false;
    }
    // Reliability requires the receiver's stream to be exactly the message —
    // stale reads (insertions) and missed reads (deletions) both break it.
    res.reliable = received == message;
    return res;
}

}  // namespace ccap::core
