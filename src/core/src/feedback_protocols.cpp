#include "ccap/core/feedback_protocols.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

#include "ccap/coding/crc.hpp"
#include "ccap/info/entropy.hpp"
#include "ccap/util/rng.hpp"

namespace ccap::core {
namespace {

/// Shared tail accounting: mismatches plus any undelivered suffix (capped
/// hardened runs can stop short) count as symbol errors; reliable means the
/// full message arrived error-free.
void finalize_errors(ProtocolRun& run, std::span<const std::uint32_t> message) {
    const std::size_t n = std::min(run.received.size(), message.size());
    for (std::size_t i = 0; i < n; ++i)
        if (run.received[i] != message[i]) ++run.symbol_errors;
    run.symbol_errors += message.size() - n;
    run.reliable = run.received.size() == message.size() && run.symbol_errors == 0;
}

/// Report frames are the receiver's cumulative count (32 bits, MSB-first),
/// optionally followed by protocol-specific flag bits, CRC-16 protected.
coding::Bits make_report(std::uint64_t count) {
    return coding::append_crc16(coding::bits_from_uint(count, 32));
}

}  // namespace

double ProtocolRun::measured_info_rate(unsigned bits_per_symbol) const {
    if (message_len == 0 || channel_uses == 0) return 0.0;
    const auto m = static_cast<unsigned>(1U << bits_per_symbol);
    const double ser =
        static_cast<double>(symbol_errors) / static_cast<double>(message_len);
    const double per_symbol =
        ser >= 1.0 ? 0.0 : std::max(0.0, info::mary_symmetric_capacity(ser, m));
    return symbols_per_use() * per_symbol;
}

ProtocolRun run_stop_and_wait(SymbolChannel& channel,
                              std::span<const std::uint32_t> message) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_stop_and_wait: Theorem 3 protocol requires P_i == 0");
    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());
    for (std::uint32_t symbol : message) {
        // Perfect feedback: the sender learns after each use whether the
        // receiver got the symbol, and resends until it did.
        for (;;) {
            const auto out = channel.use(symbol);
            ++run.channel_uses;
            if (out.delivered) {
                run.received.push_back(*out.delivered);
                break;
            }
            ++run.retransmissions;
        }
    }
    finalize_errors(run, message);
    return run;
}

ProtocolRun run_counter_protocol(SymbolChannel& channel,
                                 std::span<const std::uint32_t> message) {
    ProtocolRun run;
    run.message_len = message.size();
    std::vector<std::uint32_t> received;     // the receiver's belief stream
    std::vector<bool> was_insertion;         // ground truth per received position
    received.reserve(message.size());
    was_insertion.reserve(message.size());

    // Appendix A: the receiver counts every symbol it believes it received
    // and reports the count over the perfect feedback path. Before each
    // use, the sender aligns its own counter (symbols sent *or skipped*)
    // with the receiver's count — a jump means insertions happened and the
    // corresponding message symbols are skipped; equality means the next
    // symbol can go out.
    while (received.size() < message.size()) {
        const std::size_t receiver_count = received.size();
        // Sender aligns: everything up to receiver_count is settled; the
        // next message symbol to offer is message[receiver_count].
        const std::uint32_t queued = message[receiver_count];
        const auto out = channel.use(queued);
        ++run.channel_uses;
        if (out.delivered) {
            received.push_back(*out.delivered);
            was_insertion.push_back(out.kind == ChannelEvent::insertion);
        } else {
            // Deletions leave the counters unequal (receiver_count stays
            // below the sender's offer), so the same symbol is re-offered
            // next use — "the sender then does nothing and waits for the
            // next opportunity" collapses to a retry here because feedback
            // is instantaneous.
            ++run.retransmissions;
        }
    }

    for (std::size_t i = 0; i < received.size(); ++i)
        if (was_insertion[i]) ++run.garbage_positions;
    run.received = std::move(received);
    finalize_errors(run, message);
    return run;
}

ProtocolRun run_delayed_stop_and_wait(SymbolChannel& channel,
                                      std::span<const std::uint32_t> message,
                                      std::uint64_t delay) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_delayed_stop_and_wait: requires P_i == 0");
    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());
    for (std::uint32_t symbol : message) {
        for (;;) {
            const auto out = channel.use(symbol);
            // The attempt plus the idle slots spent waiting for its outcome.
            run.channel_uses += 1 + delay;
            if (out.delivered) {
                run.received.push_back(*out.delivered);
                break;
            }
            ++run.retransmissions;
        }
    }
    finalize_errors(run, message);
    return run;
}

ProtocolRun run_go_back_n(SymbolChannel& channel,
                          std::span<const std::uint32_t> message, std::uint64_t delay) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_go_back_n: requires P_i == 0");
    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());

    struct SlotOutcome {
        std::size_t idx = 0;
        bool sent = false;
        bool accepted = false;
    };
    std::deque<SlotOutcome> in_flight;  // outcomes become known `delay` slots later
    std::size_t send_ptr = 0;
    std::size_t recv_next = 0;
    std::size_t send_high = 0;  // one past the highest index ever sent
    while (recv_next < message.size()) {
        ++run.channel_uses;
        SlotOutcome slot;
        if (send_ptr < message.size()) {
            slot.idx = send_ptr;
            slot.sent = true;
            if (slot.idx < send_high)
                ++run.retransmissions;
            else
                send_high = slot.idx + 1;
            const auto out = channel.use(message[send_ptr]);
            ++send_ptr;
            if (out.delivered) {
                // The receiver accepts only the next in-order symbol and
                // silently discards everything after a gap.
                if (slot.idx == recv_next) {
                    run.received.push_back(*out.delivered);
                    ++recv_next;
                    slot.accepted = true;
                }
            }
        }
        in_flight.push_back(slot);
        if (in_flight.size() > delay) {
            const SlotOutcome past = in_flight.front();
            in_flight.pop_front();
            // Cumulative-NACK rewind: learning that `past.idx` was not
            // accepted sends the window back there. Stale negatives from
            // the same loss burst have idx >= the rewound position and are
            // ignored by the guard.
            if (past.sent && !past.accepted && send_ptr > past.idx) send_ptr = past.idx;
        }
    }
    finalize_errors(run, message);
    return run;
}

// ---------------------------------------------------------------------------
// Hardened protocols
// ---------------------------------------------------------------------------

void HardenedOptions::validate() const {
    if (timeout == 0) throw std::invalid_argument("HardenedOptions: timeout must be >= 1");
    if (backoff_mult == 0)
        throw std::invalid_argument("HardenedOptions: backoff_mult must be >= 1");
    if (backoff_cap < timeout)
        throw std::invalid_argument("HardenedOptions: backoff_cap below timeout");
}

namespace {

/// Escalate the wait without overflowing: min(wait * mult, cap).
std::uint64_t escalate(std::uint64_t wait, std::uint64_t mult, std::uint64_t cap) {
    return wait > cap / mult ? cap : std::min(wait * mult, cap);
}

std::uint64_t report_count(const coding::Bits& frame) {
    return coding::uint_from_bits(std::span(frame).first(32));
}

}  // namespace

ProtocolRun run_hardened_stop_and_wait(SymbolChannel& channel,
                                       std::span<const std::uint32_t> message,
                                       FeedbackLink& link, const HardenedOptions& options) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_hardened_stop_and_wait: requires P_i == 0");
    options.validate();
    if (options.timeout < link.params().delay + link.params().jitter)
        throw std::invalid_argument(
            "run_hardened_stop_and_wait: timeout below the link's worst-case latency");
    const FeedbackStats link_before = link.stats();

    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());
    bool capped = false;
    for (std::size_t i = 0; i < message.size() && !capped; ++i) {
        std::uint64_t wait = options.timeout;
        bool stale = false;  // a report for this symbol was lost or corrupted
        for (;;) {
            if (options.channel_use_cap != 0 &&
                run.channel_uses >= options.channel_use_cap) {
                capped = true;
                break;
            }
            const auto out = channel.use(message[i]);
            // Alternating-sequence discipline: the receiver accepts only
            // the next in-order symbol, so a duplicate caused by a lost
            // ACK is discarded rather than appended twice.
            if (out.delivered && run.received.size() == i)
                run.received.push_back(*out.delivered);
            const auto report = link.transmit(make_report(run.received.size()));
            if (report.lost) {
                // Nothing arrives: wait out the (backoff-escalated)
                // timeout, then retransmit.
                run.channel_uses += 1 + wait;
                ++run.timeouts;
                ++run.retransmissions;
                stale = true;
                wait = escalate(wait, options.backoff_mult, options.backoff_cap);
                continue;
            }
            run.channel_uses += 1 + report.delay;
            wait = options.timeout;  // any arrival resets the backoff level
            if (!coding::verify_crc16(report.bits)) {
                ++run.retransmissions;
                stale = true;
                continue;
            }
            if (report_count(report.bits) > i) {
                if (stale) ++run.resync_events;
                break;  // acked — next symbol
            }
            ++run.retransmissions;  // valid NACK: the attempt was deleted
        }
    }
    finalize_errors(run, message);
    run.acks_lost = link.stats().lost - link_before.lost;
    run.acks_corrupted = link.stats().corrupted - link_before.corrupted;
    return run;
}

ProtocolRun run_hardened_counter_protocol(SymbolChannel& channel,
                                          std::span<const std::uint32_t> message,
                                          FeedbackLink& link,
                                          const HardenedOptions& options) {
    options.validate();
    const FeedbackStats link_before = link.stats();

    ProtocolRun run;
    run.message_len = message.size();
    std::vector<std::uint32_t> received;
    std::vector<bool> was_insertion;
    received.reserve(message.size());
    was_insertion.reserve(message.size());

    struct PendingReport {
        std::uint64_t arrival = 0;
        bool valid = false;
        std::uint64_t count = 0;
    };
    std::deque<PendingReport> pending;
    std::uint64_t clock = 0;        // channel uses completed
    std::uint64_t sender_view = 0;  // latest CRC-valid receiver count
    std::uint64_t next_fresh = 0;   // one past the highest index ever offered
    bool stale = false;             // a count report was lost or corrupted

    while (received.size() < message.size()) {
        if (options.channel_use_cap != 0 && run.channel_uses >= options.channel_use_cap)
            break;
        // Reports arrive in slot order (fixed delay; jitter only stretches).
        while (!pending.empty() && pending.front().arrival <= clock) {
            const PendingReport r = pending.front();
            pending.pop_front();
            if (!r.valid) {
                stale = true;
                continue;
            }
            if (r.count > sender_view) {
                // A CRC-valid count always resynchronizes the sender — this
                // is the difference from trusting a raw (corruptible) count.
                if (stale) ++run.resync_events;
                sender_view = r.count;
            }
            stale = false;
        }
        const auto idx = static_cast<std::size_t>(sender_view);
        if (idx < next_fresh)
            ++run.retransmissions;
        else
            next_fresh = idx + 1;
        const auto out = channel.use(message[idx]);
        ++run.channel_uses;
        ++clock;
        if (out.delivered) {
            received.push_back(*out.delivered);
            was_insertion.push_back(out.kind == ChannelEvent::insertion);
        }
        const auto d = link.transmit(make_report(received.size()));
        if (d.lost)
            stale = true;
        else
            pending.push_back({clock + d.delay, coding::verify_crc16(d.bits),
                               coding::verify_crc16(d.bits) ? report_count(d.bits) : 0});
    }

    for (std::size_t i = 0; i < received.size(); ++i)
        if (was_insertion[i]) ++run.garbage_positions;
    run.received = std::move(received);
    finalize_errors(run, message);
    run.acks_lost = link.stats().lost - link_before.lost;
    run.acks_corrupted = link.stats().corrupted - link_before.corrupted;
    return run;
}

ProtocolRun run_hardened_go_back_n(SymbolChannel& channel,
                                   std::span<const std::uint32_t> message,
                                   FeedbackLink& link, const HardenedOptions& options) {
    if (channel.params().p_i != 0.0)
        throw std::domain_error("run_hardened_go_back_n: requires P_i == 0");
    options.validate();
    const FeedbackStats link_before = link.stats();

    ProtocolRun run;
    run.message_len = message.size();
    run.received.reserve(message.size());

    struct PendingReport {
        std::uint64_t arrival = 0;
        bool valid = false;
        std::uint64_t count = 0;  ///< receiver's in-order count after the slot
        std::size_t idx = 0;      ///< sender-side log: what this slot sent
        bool sent = false;
        bool accepted = false;
    };
    std::vector<PendingReport> pending;  // jitter can reorder arrivals: scan, don't pop
    std::uint64_t clock = 0;
    std::size_t send_ptr = 0;
    std::size_t recv_next = 0;
    std::size_t send_high = 0;
    std::uint64_t known_next = 0;  // max CRC-valid receiver count seen
    bool stale = false;

    while (recv_next < message.size()) {
        if (options.channel_use_cap != 0 && run.channel_uses >= options.channel_use_cap)
            break;
        ++run.channel_uses;
        PendingReport slot;
        if (send_ptr < message.size()) {
            slot.idx = send_ptr;
            slot.sent = true;
            if (slot.idx < send_high)
                ++run.retransmissions;
            else
                send_high = slot.idx + 1;
            const auto out = channel.use(message[send_ptr]);
            ++send_ptr;
            if (out.delivered && slot.idx == recv_next) {
                run.received.push_back(*out.delivered);
                ++recv_next;
                slot.accepted = true;
            }
        }
        // Per-slot report: cumulative in-order count + accepted flag.
        coding::Bits frame = coding::bits_from_uint(recv_next, 32);
        frame.push_back(slot.accepted ? 1 : 0);
        const auto d = link.transmit(coding::append_crc16(frame));
        ++clock;
        if (d.lost) {
            stale = true;
        } else {
            slot.arrival = clock + d.delay;
            slot.valid = coding::verify_crc16(d.bits);
            if (slot.valid) {
                slot.count = report_count(d.bits);
                slot.accepted = d.bits[32] != 0;
            }
            pending.push_back(slot);
        }
        // End-of-slot processing, matching the plain protocol's timing. The
        // report's *count* (not its slot index) steers the rewind, so a
        // lost not-accepted report cannot strand the window past the symbol
        // the receiver still needs: any later report's count points there.
        for (std::size_t k = 0; k < pending.size();) {
            if (pending[k].arrival > clock) {
                ++k;
                continue;
            }
            const PendingReport r = pending[k];
            pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
            if (!r.valid) {
                stale = true;
                continue;
            }
            if (r.count > known_next) {
                if (stale) ++run.resync_events;
                known_next = r.count;
            }
            stale = false;
            if (r.sent && !r.accepted && send_ptr > r.idx) {
                const auto target =
                    static_cast<std::size_t>(std::max(r.count, known_next));
                if (target < send_ptr) send_ptr = target;
            }
        }
        // Deadlock breaker: the sender ran off the end, every report that
        // would have rewound it was lost, and nothing sent is still in
        // flight. Unreachable over a lossless link (the not-accepted report
        // always arrives first), so zero-fault runs are untouched.
        if (send_ptr >= message.size() && recv_next < message.size() &&
            std::none_of(pending.begin(), pending.end(),
                         [](const PendingReport& r) { return r.sent; }) &&
            known_next < send_ptr) {
            send_ptr = static_cast<std::size_t>(known_next);
            ++run.resync_events;
        }
    }
    finalize_errors(run, message);
    run.acks_lost = link.stats().lost - link_before.lost;
    run.acks_corrupted = link.stats().corrupted - link_before.corrupted;
    return run;
}

SyncSimResult simulate_two_variable_handshake(const SyncSimConfig& config) {
    if (config.sender_share <= 0.0 || config.sender_share >= 1.0)
        throw std::domain_error("simulate_two_variable_handshake: sender_share in (0,1)");
    util::Rng rng(config.seed);
    util::Rng msg_rng(config.seed ^ 0x5151);
    const std::uint64_t alphabet = 1ULL << config.bits_per_symbol;

    std::vector<std::uint32_t> message(config.message_len);
    for (auto& s : message) s = static_cast<std::uint32_t>(msg_rng.uniform_below(alphabet));

    SyncSimResult res;
    std::vector<std::uint32_t> received;
    received.reserve(message.size());
    std::uint32_t cell = 0;
    bool data_ready = false;  // SYNC-1: sender sets, receiver clears (via ack)
    std::size_t next = 0;
    while (received.size() < message.size()) {
        ++res.quanta;
        if (rng.bernoulli(config.sender_share)) {
            // Sender quantum: "sends the next symbol once the last symbol
            // has been received".
            if (!data_ready && next < message.size()) {
                cell = message[next++];
                data_ready = true;
            }
        } else {
            // Receiver quantum: "checks the SYNC-1 variable and reads the
            // symbol when ready ... then makes a change on SYNC-2".
            if (data_ready) {
                received.push_back(cell);
                data_ready = false;  // ack
            }
        }
    }
    res.delivered = received.size();
    res.reliable = received == message;
    return res;
}

SyncSimResult simulate_common_event_sync(const SyncSimConfig& config, unsigned slot_len) {
    if (slot_len == 0) throw std::invalid_argument("simulate_common_event_sync: slot_len == 0");
    if (config.sender_share <= 0.0 || config.sender_share >= 1.0)
        throw std::domain_error("simulate_common_event_sync: sender_share in (0,1)");
    util::Rng rng(config.seed);
    util::Rng msg_rng(config.seed ^ 0x5151);
    const std::uint64_t alphabet = 1ULL << config.bits_per_symbol;

    std::vector<std::uint32_t> message(config.message_len);
    for (auto& s : message) s = static_cast<std::uint32_t>(msg_rng.uniform_below(alphabet));

    SyncSimResult res;
    std::vector<std::uint32_t> received;
    std::uint32_t cell = 0;
    std::size_t next = 0;
    bool cell_fresh = false;
    // Slot pairs: sender writes during the first slot_len quanta, receiver
    // reads during the next slot_len. The common event source E is the slot
    // boundary both sides can observe; there is no feedback.
    while (next < message.size()) {
        bool sender_acted = false;
        for (unsigned q = 0; q < slot_len; ++q) {
            ++res.quanta;
            if (!sender_acted && rng.bernoulli(config.sender_share)) {
                cell = message[next++];
                cell_fresh = true;
                sender_acted = true;
            }
        }
        bool receiver_acted = false;
        for (unsigned q = 0; q < slot_len; ++q) {
            ++res.quanta;
            if (!receiver_acted && !rng.bernoulli(config.sender_share)) {
                received.push_back(cell);  // may be stale: an insertion
                receiver_acted = true;
            }
        }
        if (sender_acted && receiver_acted && cell_fresh && received.back() == cell)
            ++res.delivered;
        if (receiver_acted) cell_fresh = false;
    }
    // Reliability requires the receiver's stream to be exactly the message —
    // stale reads (insertions) and missed reads (deletions) both break it.
    res.reliable = received == message;
    return res;
}

}  // namespace ccap::core
