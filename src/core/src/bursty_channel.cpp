#include "ccap/core/bursty_channel.hpp"

#include <stdexcept>

namespace ccap::core {

void BurstyChannelParams::validate() const {
    good.validate();
    bad.validate();
    if (good.bits_per_symbol != bad.bits_per_symbol)
        throw std::invalid_argument("BurstyChannelParams: states must share bits_per_symbol");
    if (p_good_to_bad <= 0.0 || p_good_to_bad >= 1.0 || p_bad_to_good <= 0.0 ||
        p_bad_to_good >= 1.0)
        throw std::domain_error("BurstyChannelParams: switch probabilities must be in (0,1)");
}

DiChannelParams BurstyChannelParams::average() const {
    const double pb = stationary_bad();
    DiChannelParams avg;
    avg.p_d = (1.0 - pb) * good.p_d + pb * bad.p_d;
    avg.p_i = (1.0 - pb) * good.p_i + pb * bad.p_i;
    avg.p_s = (1.0 - pb) * good.p_s + pb * bad.p_s;
    avg.bits_per_symbol = good.bits_per_symbol;
    return avg;
}

MarkovModulatedChannel::MarkovModulatedChannel(BurstyChannelParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
    params_.validate();
    average_ = params_.average();
    // Start in the stationary distribution so short runs are unbiased.
    bad_state_ = rng_.bernoulli(params_.stationary_bad());
}

double MarkovModulatedChannel::measured_bad_fraction() const noexcept {
    return uses_ == 0 ? 0.0
                      : static_cast<double>(bad_uses_) / static_cast<double>(uses_);
}

ChannelUseOutcome MarkovModulatedChannel::use(std::uint32_t queued) {
    const DiChannelParams& active = bad_state_ ? params_.bad : params_.good;
    if (queued >= active.alphabet())
        throw std::out_of_range("MarkovModulatedChannel::use: symbol out of alphabet");
    ++uses_;
    if (bad_state_) ++bad_uses_;

    ChannelUseOutcome out;
    const double u = rng_.uniform();
    if (u < active.p_i) {
        out.kind = ChannelEvent::insertion;
        out.delivered = static_cast<std::uint32_t>(rng_.uniform_below(active.alphabet()));
        out.consumed = false;
    } else if (u < active.p_i + active.p_d) {
        out.kind = ChannelEvent::deletion;
        out.consumed = true;
    } else {
        out.kind = ChannelEvent::transmission;
        std::uint32_t s = queued;
        if (active.p_s > 0.0 && rng_.bernoulli(active.p_s)) {
            auto r = static_cast<std::uint32_t>(rng_.uniform_below(active.alphabet() - 1));
            s = r >= s ? r + 1 : r;
        }
        out.delivered = s;
        out.consumed = true;
    }
    // State transition after the use.
    if (bad_state_) {
        if (rng_.bernoulli(params_.p_bad_to_good)) bad_state_ = false;
    } else {
        if (rng_.bernoulli(params_.p_good_to_bad)) bad_state_ = true;
    }
    return out;
}

}  // namespace ccap::core
