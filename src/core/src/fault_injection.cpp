#include "ccap/core/fault_injection.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ccap::core {

bool FaultProfile::is_null() const noexcept {
    const bool storms_off = storm_period == 0 || storm_len == 0;
    const bool drift_off = drift_amplitude == 0.0 || drift_period == 0;
    const bool stuck_off = stuck_period == 0 || stuck_len == 0;
    return storms_off && drift_off && stuck_off;
}

void FaultProfile::validate() const {
    if (!std::isfinite(drift_amplitude) || drift_amplitude < 0.0 || drift_amplitude > 1.0)
        throw std::domain_error("FaultProfile: drift_amplitude must be finite in [0,1]");
    if (storm_len > 0 && storm_period == 0)
        throw std::invalid_argument("FaultProfile: storm_len without storm_period");
    if (storm_period > 0 && storm_len > storm_period)
        throw std::invalid_argument("FaultProfile: storm_len exceeds storm_period");
    if (drift_amplitude > 0.0 && drift_period == 0)
        throw std::invalid_argument("FaultProfile: drift_amplitude without drift_period");
    if (stuck_len > 0 && stuck_period == 0)
        throw std::invalid_argument("FaultProfile: stuck_len without stuck_period");
    if (stuck_period > 0 && stuck_len > stuck_period)
        throw std::invalid_argument("FaultProfile: stuck_len exceeds stuck_period");
}

FaultProfile FaultProfile::storms(std::uint64_t period, std::uint64_t len) {
    FaultProfile p;
    p.name = "storms";
    p.storm_period = period;
    p.storm_len = len;
    p.validate();
    return p;
}

FaultProfile FaultProfile::drifting(double amplitude, std::uint64_t period) {
    FaultProfile p;
    p.name = "drift";
    p.drift_amplitude = amplitude;
    p.drift_period = period;
    p.validate();
    return p;
}

FaultProfile FaultProfile::stuck_at(std::uint64_t period, std::uint64_t len,
                                    std::uint32_t symbol) {
    FaultProfile p;
    p.name = "stuck";
    p.stuck_period = period;
    p.stuck_len = len;
    p.stuck_symbol = symbol;
    p.validate();
    return p;
}

bool named_fault_profile(const std::string& name, FaultProfile& out) {
    if (name == "none") {
        out = FaultProfile{};
        return true;
    }
    if (name == "storms") {
        out = FaultProfile::storms(4096, 256);
        return true;
    }
    if (name == "drift") {
        out = FaultProfile::drifting(0.25, 8192);
        return true;
    }
    if (name == "stuck") {
        out = FaultProfile::stuck_at(8192, 512, 0);
        return true;
    }
    return false;
}

const char* fault_profile_presets_help() noexcept {
    return "none | storms (blackout 256/4096 uses) | drift (cos P_d swing amp 0.25,"
           " period 8192) | stuck (stuck-at-0, 512/8192 uses)";
}

FaultyChannel::FaultyChannel(SymbolChannel& inner, FaultProfile profile, std::uint64_t seed)
    : inner_(&inner),
      profile_(std::move(profile)),
      null_profile_(profile_.is_null()),
      rng_(seed) {
    profile_.validate();
}

void FaultyChannel::log_fault(std::uint64_t t, InjectedFault::Kind kind) {
    if (fault_log_.size() < kMaxLoggedFaults) fault_log_.push_back({t, kind});
}

ChannelUseOutcome FaultyChannel::use(std::uint32_t queued) {
    ChannelUseOutcome out = inner_->use(queued);
    const std::uint64_t t = stats_.uses++;
    if (null_profile_) return out;  // bit-identical passthrough, no RNG draws

    if (out.delivered) {
        // Blackout faults drop the delivery but preserve `consumed`: the
        // sender's queue semantics (and the inner channel's own state) are
        // exactly what they were — only the receiver's view changes, which
        // is what a scheduler stall or a jammed return path does.
        if (in_window(t, profile_.storm_period, profile_.storm_len)) {
            out.delivered.reset();
            out.kind = ChannelEvent::deletion;
            ++stats_.storm_drops;
            log_fault(t, InjectedFault::Kind::storm_drop);
        } else if (profile_.drift_amplitude > 0.0 && profile_.drift_period > 0) {
            const double phase = static_cast<double>(t % profile_.drift_period) /
                                 static_cast<double>(profile_.drift_period);
            const double delta = profile_.drift_amplitude *
                                 (1.0 - std::cos(2.0 * std::numbers::pi * phase)) / 2.0;
            if (delta > 0.0 && rng_.bernoulli(delta)) {
                out.delivered.reset();
                out.kind = ChannelEvent::deletion;
                ++stats_.drift_drops;
                log_fault(t, InjectedFault::Kind::drift_drop);
            }
        }
    }
    if (out.delivered && in_window(t, profile_.stuck_period, profile_.stuck_len)) {
        const std::uint32_t stuck =
            profile_.stuck_symbol & (inner_->params().alphabet() - 1U);
        if (*out.delivered != stuck) {
            out.delivered = stuck;
            ++stats_.stuck_overrides;
            log_fault(t, InjectedFault::Kind::stuck_override);
        }
    }
    return out;
}

void FeedbackLinkParams::validate() const {
    if (!std::isfinite(p_loss) || p_loss < 0.0 || p_loss > 1.0)
        throw std::domain_error("FeedbackLinkParams: p_loss must be finite in [0,1]");
    if (!std::isfinite(p_corrupt) || p_corrupt < 0.0 || p_corrupt > 1.0)
        throw std::domain_error("FeedbackLinkParams: p_corrupt must be finite in [0,1]");
}

FeedbackLink::FeedbackLink(FeedbackLinkParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
    params_.validate();
}

FeedbackLink::Delivery FeedbackLink::transmit(std::span<const std::uint8_t> frame_bits) {
    ++stats_.sent;
    Delivery d;
    d.bits.assign(frame_bits.begin(), frame_bits.end());
    if (params_.perfect()) return d;  // no RNG draws on the perfect link

    // Fixed draw order (loss, corruption, jitter) keeps replays aligned
    // regardless of which branches fire.
    const bool lost = params_.p_loss > 0.0 && rng_.bernoulli(params_.p_loss);
    const bool corrupt = params_.p_corrupt > 0.0 && rng_.bernoulli(params_.p_corrupt);
    d.delay = params_.delay;
    if (params_.jitter > 0) d.delay += rng_.uniform_below(params_.jitter + 1);
    if (lost) {
        d.lost = true;
        d.delay = 0;
        ++stats_.lost;
        return d;
    }
    if (corrupt && !d.bits.empty()) {
        // Flip 1..3 distinct positions. CRC-16-CCITT has Hamming distance
        // >= 4 on the short frames the protocols send, so every corruption
        // injected here is detected by the receiver-side CRC check.
        const std::uint64_t flips =
            1 + rng_.uniform_below(std::min<std::uint64_t>(3, d.bits.size()));
        for (std::uint64_t f = 0; f < flips; ++f) {
            const std::size_t pos =
                static_cast<std::size_t>(rng_.uniform_below(d.bits.size()));
            d.bits[pos] ^= 1U;
        }
        ++stats_.corrupted;
    }
    return d;
}

}  // namespace ccap::core
