#include "ccap/core/protocol_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccap::core {
namespace {

void check_share(double q, const char* who) {
    if (q <= 0.0 || q >= 1.0) throw std::domain_error(std::string(who) + ": share must be in (0,1)");
}

}  // namespace

double handshake_expected_throughput(double sender_share) {
    check_share(sender_share, "handshake_expected_throughput");
    return sender_share * (1.0 - sender_share);
}

double common_event_expected_throughput(double sender_share, unsigned slot_len) {
    check_share(sender_share, "common_event_expected_throughput");
    if (slot_len == 0)
        throw std::invalid_argument("common_event_expected_throughput: slot_len == 0");
    const double q = sender_share;
    const double l = static_cast<double>(slot_len);
    const double p_send = 1.0 - std::pow(1.0 - q, l);
    const double p_recv = 1.0 - std::pow(q, l);
    return p_send * p_recv / (2.0 * l);
}

CommonEventOptimum common_event_best_throughput(double sender_share, unsigned max_slot_len) {
    if (max_slot_len == 0)
        throw std::invalid_argument("common_event_best_throughput: max_slot_len == 0");
    CommonEventOptimum best;
    for (unsigned l = 1; l <= max_slot_len; ++l) {
        const double t = common_event_expected_throughput(sender_share, l);
        if (t > best.throughput) {
            best.throughput = t;
            best.slot_len = l;
        }
    }
    return best;
}

double feedback_advantage(double sender_share, unsigned max_slot_len) {
    const double fb = handshake_expected_throughput(sender_share);
    const double ce = common_event_best_throughput(sender_share, max_slot_len).throughput;
    return fb - ce;
}

double stop_and_wait_expected_uses(const DiChannelParams& p, std::size_t message_len) {
    p.validate();
    if (p.p_d >= 1.0)
        throw std::domain_error("stop_and_wait_expected_uses: P_d must be < 1");
    return static_cast<double>(message_len) / (1.0 - p.p_d);
}

double counter_protocol_garbage_fraction(const DiChannelParams& p) {
    p.validate();
    if (p.p_d >= 1.0)
        throw std::domain_error("counter_protocol_garbage_fraction: P_d must be < 1");
    return p.p_i / (1.0 - p.p_d);
}

double delayed_stop_and_wait_rate(const DiChannelParams& p, std::uint64_t delay) {
    p.validate();
    return static_cast<double>(p.bits_per_symbol) * (1.0 - p.p_d) /
           (1.0 + static_cast<double>(delay));
}

double go_back_n_rate(const DiChannelParams& p, std::uint64_t delay) {
    p.validate();
    return static_cast<double>(p.bits_per_symbol) * (1.0 - p.p_d) /
           (1.0 + p.p_d * static_cast<double>(delay));
}

double hardened_stop_and_wait_rate(const DiChannelParams& p, const FeedbackLinkParams& link,
                                   const HardenedOptions& options) {
    p.validate();
    link.validate();
    options.validate();
    if (p.p_i != 0.0)
        throw std::domain_error("hardened_stop_and_wait_rate: requires P_i == 0");
    if (p.p_d >= 1.0 || link.p_loss >= 1.0 || link.p_corrupt >= 1.0)
        throw std::domain_error(
            "hardened_stop_and_wait_rate: expected delivery time diverges");

    const double pd = p.p_d;
    const double pl = link.p_loss;
    const double pc = link.p_corrupt;
    const double a = (1.0 - pl) * (1.0 - pc);  // valid (CRC-clean) arrival
    const double dbar =
        1.0 + static_cast<double>(link.delay) + static_cast<double>(link.jitter) / 2.0;

    // Backoff levels: T_l = min(timeout * mult^l, cap); the ladder is
    // constant from the first level L where the cap binds (L = 0 when the
    // multiplier is 1).
    std::vector<double> t_lvl;
    std::uint64_t w = options.timeout;
    for (;;) {
        t_lvl.push_back(1.0 + static_cast<double>(w));
        if (options.backoff_mult == 1 || w >= options.backoff_cap) break;
        w = w > options.backoff_cap / options.backoff_mult
                ? options.backoff_cap
                : std::min(w * options.backoff_mult, options.backoff_cap);
    }
    const std::size_t levels = t_lvl.size();  // levels-1 is the capped level

    // Per-symbol expected channel uses, from the chain
    //   E_B[l] = pl (T_l + E_B[min(l+1,L)]) + (1-pl) pc (dbar + E_B[0])
    //            + a dbar
    //   E_A[l] = pd  { pl (T_l + E_A[min(l+1,L)]) + (1-pl)(dbar + E_A[0]) }
    //          + (1-pd) { same-as-E_B[l] row }
    // solved by writing E_X[l] = u[l] + v[l] * E_X[0] and propagating the
    // linear coefficients up from the capped level.
    //
    // B first (no dependence on A). At the cap E_B[L] is self-recursive.
    std::vector<double> ub(levels), vb(levels);
    {
        const std::size_t top = levels - 1;
        // E_B[L] = (c_L + (1-pl) pc y) / (1 - pl), y = E_B[0]
        const double c_top = pl * t_lvl[top] + (1.0 - pl) * pc * dbar + a * dbar;
        ub[top] = c_top / (1.0 - pl);
        vb[top] = (1.0 - pl) * pc / (1.0 - pl);
        for (std::size_t l = top; l-- > 0;) {
            const double c_l = pl * t_lvl[l] + (1.0 - pl) * pc * dbar + a * dbar;
            ub[l] = c_l + pl * ub[l + 1];
            vb[l] = (1.0 - pl) * pc + pl * vb[l + 1];
        }
    }
    const double e_b0 = ub[0] / (1.0 - vb[0]);
    std::vector<double> e_b(levels);
    for (std::size_t l = 0; l < levels; ++l) e_b[l] = ub[l] + vb[l] * e_b0;

    // A, with E_B known: E_A[l] = k_l + pd pl E_A[min(l+1,L)] + pd (1-pl) x.
    std::vector<double> ua(levels), va(levels);
    {
        const std::size_t top = levels - 1;
        auto k_of = [&](std::size_t l) {
            const double next_b = e_b[std::min(l + 1, levels - 1)];
            return pd * (pl * t_lvl[l] + (1.0 - pl) * dbar) +
                   (1.0 - pd) * (pl * (t_lvl[l] + next_b) +
                                 (1.0 - pl) * pc * (dbar + e_b0) + a * dbar);
        };
        ua[top] = k_of(top) / (1.0 - pd * pl);
        va[top] = pd * (1.0 - pl) / (1.0 - pd * pl);
        for (std::size_t l = top; l-- > 0;) {
            ua[l] = k_of(l) + pd * pl * ua[l + 1];
            va[l] = pd * (1.0 - pl) + pd * pl * va[l + 1];
        }
    }
    const double e_a0 = ua[0] / (1.0 - va[0]);
    return static_cast<double>(p.bits_per_symbol) / e_a0;
}

DiChannelParams naive_scheduler_channel_params(double sender_share, unsigned bits_per_symbol) {
    check_share(sender_share, "naive_scheduler_channel_params");
    const double q = sender_share;
    const double events = 1.0 - q * (1.0 - q);  // q^2 + q(1-q) + (1-q)^2
    DiChannelParams p;
    p.p_d = q * q / events;
    p.p_i = (1.0 - q) * (1.0 - q) / events;
    p.p_s = 0.0;
    p.bits_per_symbol = bits_per_symbol;
    p.validate();
    return p;
}

}  // namespace ccap::core
