#include "ccap/core/protocol_analysis.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace ccap::core {
namespace {

void check_share(double q, const char* who) {
    if (q <= 0.0 || q >= 1.0) throw std::domain_error(std::string(who) + ": share must be in (0,1)");
}

}  // namespace

double handshake_expected_throughput(double sender_share) {
    check_share(sender_share, "handshake_expected_throughput");
    return sender_share * (1.0 - sender_share);
}

double common_event_expected_throughput(double sender_share, unsigned slot_len) {
    check_share(sender_share, "common_event_expected_throughput");
    if (slot_len == 0)
        throw std::invalid_argument("common_event_expected_throughput: slot_len == 0");
    const double q = sender_share;
    const double l = static_cast<double>(slot_len);
    const double p_send = 1.0 - std::pow(1.0 - q, l);
    const double p_recv = 1.0 - std::pow(q, l);
    return p_send * p_recv / (2.0 * l);
}

CommonEventOptimum common_event_best_throughput(double sender_share, unsigned max_slot_len) {
    if (max_slot_len == 0)
        throw std::invalid_argument("common_event_best_throughput: max_slot_len == 0");
    CommonEventOptimum best;
    for (unsigned l = 1; l <= max_slot_len; ++l) {
        const double t = common_event_expected_throughput(sender_share, l);
        if (t > best.throughput) {
            best.throughput = t;
            best.slot_len = l;
        }
    }
    return best;
}

double feedback_advantage(double sender_share, unsigned max_slot_len) {
    const double fb = handshake_expected_throughput(sender_share);
    const double ce = common_event_best_throughput(sender_share, max_slot_len).throughput;
    return fb - ce;
}

double stop_and_wait_expected_uses(const DiChannelParams& p, std::size_t message_len) {
    p.validate();
    if (p.p_d >= 1.0)
        throw std::domain_error("stop_and_wait_expected_uses: P_d must be < 1");
    return static_cast<double>(message_len) / (1.0 - p.p_d);
}

double counter_protocol_garbage_fraction(const DiChannelParams& p) {
    p.validate();
    if (p.p_d >= 1.0)
        throw std::domain_error("counter_protocol_garbage_fraction: P_d must be < 1");
    return p.p_i / (1.0 - p.p_d);
}

double delayed_stop_and_wait_rate(const DiChannelParams& p, std::uint64_t delay) {
    p.validate();
    return static_cast<double>(p.bits_per_symbol) * (1.0 - p.p_d) /
           (1.0 + static_cast<double>(delay));
}

double go_back_n_rate(const DiChannelParams& p, std::uint64_t delay) {
    p.validate();
    return static_cast<double>(p.bits_per_symbol) * (1.0 - p.p_d) /
           (1.0 + p.p_d * static_cast<double>(delay));
}

DiChannelParams naive_scheduler_channel_params(double sender_share, unsigned bits_per_symbol) {
    check_share(sender_share, "naive_scheduler_channel_params");
    const double q = sender_share;
    const double events = 1.0 - q * (1.0 - q);  // q^2 + q(1-q) + (1-q)^2
    DiChannelParams p;
    p.p_d = q * q / events;
    p.p_i = (1.0 - q) * (1.0 - q) / events;
    p.p_s = 0.0;
    p.bits_per_symbol = bits_per_symbol;
    p.validate();
    return p;
}

}  // namespace ccap::core
