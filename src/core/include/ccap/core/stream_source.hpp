// Stream framing for the online capacity tracker: fixed-size windows of
// matched sent/received observations.
//
// The offline estimators consume complete traces; the tracker
// (estimate/capacity_tracker.hpp) instead ingests a *stream* one window at
// a time. This module defines the chunk framing and the live source: a
// FaultStreamSource drives a Definition-1 channel under a FaultProfile —
// burst storms, P_d(t) drift, stuck-at windows — and emits exactly what a
// measurement tap would see per window. The trace-file source lives in the
// estimate layer (it needs alignment to carve a received stream).
//
// Determinism discipline: window w's transmitted symbols come from the
// substream substream_seed(seed, w) while the channel and fault clocks run
// continuously across windows (so a drift period can span many windows).
// The whole stream is a pure function of (config, seed), and skip(k)
// deterministically replays k windows — which is how a checkpoint resume
// reproduces the uninterrupted run bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/core/fault_injection.hpp"

namespace ccap::core {

/// One window of stream observation: the symbols the sender pushed and the
/// symbols the receiver saw while they were consumed, in order.
struct StreamChunk {
    std::uint64_t index = 0;  ///< 0-based window index in the stream
    std::vector<std::uint32_t> sent;
    std::vector<std::uint32_t> received;
    /// Channel uses this window consumed; 0 when unknown (trace sources
    /// cannot see the use clock).
    std::uint64_t channel_uses = 0;
};

/// A window-at-a-time observation stream. next() returns chunks until the
/// stream ends (nullopt); sources backed by a live channel never end unless
/// configured with a window budget.
class ChunkSource {
public:
    virtual ~ChunkSource() = default;
    [[nodiscard]] virtual std::optional<StreamChunk> next() = 0;
};

/// Live simulation source: a DeletionInsertionChannel wrapped in a
/// FaultyChannel, driven window_len sent symbols per window.
class FaultStreamSource final : public ChunkSource {
public:
    struct Config {
        DiChannelParams params;
        FaultProfile profile;        ///< null profile = the plain channel
        std::size_t window_len = 2000;
        std::uint64_t windows = 0;   ///< chunks to emit; 0 = unbounded
        std::uint64_t seed = 1;

        /// Throws std::domain_error / std::invalid_argument when malformed.
        /// Beyond the member validations, requires p_d + p_i < 1: with
        /// P_t = 0 and P_d = 0 a queued symbol would never be consumed and
        /// next() could not terminate.
        void validate() const;
    };

    explicit FaultStreamSource(Config cfg);

    [[nodiscard]] const Config& config() const noexcept { return cfg_; }
    [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
    /// Fault totals injected so far (storms/drift/stuck overrides).
    [[nodiscard]] const FaultStats& fault_stats() const noexcept { return faulty_.stats(); }
    /// Channel uses consumed so far (the fault-schedule clock).
    [[nodiscard]] std::uint64_t uses() const noexcept { return uses_; }

    [[nodiscard]] std::optional<StreamChunk> next() override;

    /// Deterministic fast-forward: generate and discard `windows` chunks.
    /// After skip(k), next() returns exactly the chunk an uninterrupted
    /// source would return as its (k+1)-th — the checkpoint-resume path.
    void skip(std::uint64_t windows);

private:
    Config cfg_;
    DeletionInsertionChannel inner_;
    FaultyChannel faulty_;
    std::uint64_t emitted_ = 0;
    std::uint64_t uses_ = 0;
};

}  // namespace ccap::core
