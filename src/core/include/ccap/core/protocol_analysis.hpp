// Closed-form expected performance of the synchronization mechanisms,
// cross-checked against the executable simulations in feedback_protocols
// (integration tests) and used by benches E3/E8 to draw the paper-shaped
// comparison curves without Monte-Carlo noise.
//
// Scheduling abstraction: each CPU quantum is granted to the sender with
// probability q (the "sender share"), independently — the memoryless
// scheduler of Section 3.1.
#pragma once

#include <cstdint>

#include "ccap/core/channel_params.hpp"
#include "ccap/core/fault_injection.hpp"
#include "ccap/core/feedback_protocols.hpp"

namespace ccap::core {

/// Fig. 1 two-variable handshake: a symbol needs one sender quantum (send)
/// followed by one receiver quantum (read+ack); expected quanta per symbol
/// is 1/q + 1/(1-q), so throughput = q(1-q) symbols/quantum.
[[nodiscard]] double handshake_expected_throughput(double sender_share);

/// Fig. 3(a) common-event sync with slot length L quanta: a slot pair costs
/// 2L quanta and delivers a fresh symbol with probability
/// (1-(1-q)^L)(1-q^L); throughput = that / (2L) symbols/quantum.
[[nodiscard]] double common_event_expected_throughput(double sender_share, unsigned slot_len);

/// Best slot length for the common-event mechanism (searches L in [1, max]).
struct CommonEventOptimum {
    unsigned slot_len = 1;
    double throughput = 0.0;
};
[[nodiscard]] CommonEventOptimum common_event_best_throughput(double sender_share,
                                                              unsigned max_slot_len = 64);

/// Section 4.2.2 reduction, as a checkable statement: for every sender
/// share, the best common-event throughput does not beat the feedback
/// handshake throughput. Returns the (nonnegative) margin
/// handshake - best_common_event.
[[nodiscard]] double feedback_advantage(double sender_share, unsigned max_slot_len = 64);

/// Expected channel uses for the Theorem-3 stop-and-wait protocol to move
/// `message_len` symbols across a deletion channel: message_len / (1 - P_d).
[[nodiscard]] double stop_and_wait_expected_uses(const DiChannelParams& p,
                                                 std::size_t message_len);

/// Expected fraction of receiver positions filled by insertion garbage
/// under the Appendix-A counter protocol: P_i / (1 - P_d).
[[nodiscard]] double counter_protocol_garbage_fraction(const DiChannelParams& p);

/// Expected rate of stop-and-wait when the feedback outcome arrives D
/// channel uses late (sender idles meanwhile): N(1 - P_d)/(1 + D).
[[nodiscard]] double delayed_stop_and_wait_rate(const DiChannelParams& p, std::uint64_t delay);

/// Expected rate of go-back-N pipelining under the same delayed feedback:
/// N(1 - P_d)/(1 + P_d * D) — each loss costs the D-slot pipeline flush.
[[nodiscard]] double go_back_n_rate(const DiChannelParams& p, std::uint64_t delay);

/// Exact expected rate (bits/use) of run_hardened_stop_and_wait over a
/// deletion channel with an imperfect feedback link (THEORY.md §12). The
/// per-symbol Markov chain has states (A: not yet delivered, B: delivered
/// but unacknowledged) x (backoff level); a lost report at level l costs
/// 1 + min(timeout * mult^l, cap) uses, any arrival costs
/// 1 + delay + jitter/2 on average and resets the level. As the ack-loss
/// and corruption probabilities go to 0 this collapses to the delayed
/// stop-and-wait closed form N(1 - P_d)/(1 + delay).
/// Throws std::domain_error when P_d, p_loss, or p_corrupt is 1 (the
/// expected time diverges).
[[nodiscard]] double hardened_stop_and_wait_rate(const DiChannelParams& p,
                                                 const FeedbackLinkParams& link,
                                                 const HardenedOptions& options);

/// Definition-1 parameters induced by the *naive* covert pair (sender
/// writes every quantum it gets, receiver believes every sample) under a
/// memoryless scheduler granting the sender each quantum with probability
/// q. Classifying consecutive quantum pairs:
///   S,S -> deletion        (probability q^2)
///   S,R -> transmission    (q(1-q))
///   R,R -> insertion       ((1-q)^2)
///   R,S -> no channel event,
/// so per channel use P_d = q^2/(1-q+q^2), P_i = (1-q)^2/(1-q+q^2).
/// Validated against the scheduler simulation + MLE estimator in the
/// integration tests.
[[nodiscard]] DiChannelParams naive_scheduler_channel_params(double sender_share,
                                                             unsigned bits_per_symbol);

}  // namespace ccap::core
