// The paper's capacity results (Section 4 and Appendix A), plus an
// independent exact analysis of the Appendix-A protocol used to
// cross-check the OCR-reconstructed alpha (see DESIGN.md §1).
//
// All rates are in bits per channel use. N = bits_per_symbol, M = 2^N.
#pragma once

#include "ccap/core/channel_params.hpp"

namespace ccap::core {

/// Theorem 1 / eq (1): upper bound of the deletion-insertion channel
/// capacity — the capacity of the matched erasure channel, N(1 - P_d).
[[nodiscard]] double theorem1_upper_bound(const DiChannelParams& p);

/// Theorem 2/3: the capacity of a deletion channel (P_i = 0) with perfect
/// feedback equals the erasure capacity N(1 - P_d); achieved by
/// resend-until-acknowledged (see StopAndWaitProtocol).
[[nodiscard]] double theorem3_feedback_capacity(const DiChannelParams& p);

/// Theorem 4: upper bound of the deletion-insertion channel with perfect
/// feedback — the extended-erasure capacity, again N(1 - P_d).
[[nodiscard]] double theorem4_upper_bound(const DiChannelParams& p);

/// eq (4) as reconstructed in DESIGN.md: the effective-error tilt
/// alpha = (1 - P_d) / (1 - P_i).
[[nodiscard]] double theorem5_alpha(const DiChannelParams& p);

/// eq (3): capacity of the converted channel (Fig. 5) — an M-ary symmetric
/// DMC with error probability alpha * P_i:
///   C_conv = N - alpha*P_i*log2(2^N - 1) - H(alpha*P_i).
[[nodiscard]] double converted_channel_capacity(const DiChannelParams& p);

/// Theorem 5 / eq (2): achievable rate (capacity lower bound) of the
/// deletion-insertion channel with perfect feedback under the Appendix-A
/// counter protocol:
///   C_lower = (1 - P_d)/(1 - P_i) * C_conv.
[[nodiscard]] double theorem5_lower_bound(const DiChannelParams& p);

/// Our independent exact analysis of the same protocol (DESIGN.md §1):
/// symbols arrive at rate (1 - P_d) per use; a received position carries an
/// inserted (uniform-random) symbol with probability q = P_i/(1 - P_d),
/// i.e. an M-ary substitution with probability q*(M-1)/M:
///   C_exact = (1 - P_d) * [ N - H_M(q*(M-1)/M) ].
/// Noise substitutions (P_s) compose with the insertion garbage.
[[nodiscard]] double counter_protocol_exact_rate(const DiChannelParams& p);

/// eqs (6)-(7): the ratio C_lower / C_upper at P_i = P_d, which tends to 1
/// as N grows — non-synchronous feedback communication is asymptotically
/// as good as the erasure bound.
[[nodiscard]] double theorem5_convergence_ratio(double p_d, unsigned bits_per_symbol);

/// Section 4.3 recipe: degrade a traditional (synchronous-model) capacity
/// estimate C by the non-synchronous effect:  C_real ~= C * (1 - P_d).
[[nodiscard]] double degraded_capacity(double traditional_capacity, const DiChannelParams& p);

struct CapacityBand {
    double lower = 0.0;  ///< Theorem 5
    double exact_protocol = 0.0;  ///< our exact protocol analysis
    double upper = 0.0;  ///< Theorem 1/4
};

/// All three bounds at once (validated, ordered lower <= upper).
[[nodiscard]] CapacityBand capacity_band(const DiChannelParams& p);

}  // namespace ccap::core
