// Executable model of the paper's Definition-1 channel.
//
// Two interfaces:
//  * use(queued)  — one channel use at a time, telling the caller exactly
//    what happened. This is what the feedback protocols (Theorem 3,
//    Appendix A) build on: with a perfect feedback path the sender learns
//    the outcome of every use.
//  * transduce(message) — fire-and-forget block transmission (no feedback),
//    with a ground-truth event log for oracle experiments and for deriving
//    the matched erasure-channel view of Definition 2.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ccap/core/channel_params.hpp"
#include "ccap/util/rng.hpp"

namespace ccap::core {

enum class ChannelEvent : std::uint8_t { deletion, insertion, transmission };

/// Per-use outcome shared by every symbol-channel implementation.
struct ChannelUseOutcome {
    ChannelEvent kind = ChannelEvent::transmission;
    /// Present when the receiver saw a symbol (transmission/insertion).
    std::optional<std::uint32_t> delivered;
    /// True when the queued symbol was consumed (deletion/transmission).
    bool consumed = false;
};

/// Interface for channels the feedback protocols can drive: the
/// Definition-1 channel, and variants such as the Markov-modulated bursty
/// channel (bursty_channel.hpp).
class SymbolChannel {
public:
    virtual ~SymbolChannel() = default;
    /// One channel use with `queued` at the head of the sender's queue.
    [[nodiscard]] virtual ChannelUseOutcome use(std::uint32_t queued) = 0;
    /// Nominal (long-run average) parameters; protocols use these for
    /// validity checks such as "stop-and-wait needs P_i == 0".
    [[nodiscard]] virtual const DiChannelParams& params() const noexcept = 0;
};

struct EventRecord {
    ChannelEvent kind = ChannelEvent::transmission;
    std::uint32_t offered = 0;    ///< queued symbol (meaningless for insertions)
    std::uint32_t delivered = 0;  ///< symbol the receiver saw (meaningless for deletions)
    bool substituted = false;     ///< transmission corrupted by noise
};

class DeletionInsertionChannel final : public SymbolChannel {
public:
    DeletionInsertionChannel(DiChannelParams params, std::uint64_t seed);

    [[nodiscard]] const DiChannelParams& params() const noexcept override { return params_; }
    [[nodiscard]] std::uint64_t uses() const noexcept { return uses_; }

    using UseOutcome = ChannelUseOutcome;

    /// One channel use with `queued` at the head of the sender's queue.
    [[nodiscard]] UseOutcome use(std::uint32_t queued) override;

    struct Transduction {
        std::vector<std::uint32_t> output;  ///< what the receiver saw, in order
        std::vector<EventRecord> events;    ///< ground truth, one per channel use
        std::uint64_t channel_uses = 0;
    };

    /// Send a whole message with no feedback. When `trailing_insertions` is
    /// true the channel keeps inserting after the queue drains (matching the
    /// drift-HMM generative model).
    [[nodiscard]] Transduction transduce(std::span<const std::uint32_t> message,
                                         bool trailing_insertions = true);

private:
    [[nodiscard]] std::uint32_t random_symbol() noexcept;
    [[nodiscard]] std::uint32_t substitute(std::uint32_t s) noexcept;

    DiChannelParams params_;
    util::Rng rng_;
    std::uint64_t uses_ = 0;
};

}  // namespace ccap::core
