// Markov-modulated (bursty) deletion-insertion channel.
//
// The paper's Definition-1 channel draws each use's event independently —
// but the scheduler channel it models is *bursty*: once the sender starts a
// run of consecutive quanta, more deletions follow. This channel switches
// between a "good" and a "bad" parameter set via a two-state Markov chain
// (Gilbert-Elliott style), giving the same long-run event rates with
// tunable burstiness.
//
// What it is for (bench X7): the feedback protocols' rates are renewal
// averages, so they should depend only on the long-run average parameters,
// not on burstiness — an invariance the paper's bounds silently rely on
// when applied to real scheduler channels. The bench verifies it.
#pragma once

#include "ccap/core/deletion_insertion_channel.hpp"

namespace ccap::core {

struct BurstyChannelParams {
    DiChannelParams good;  ///< parameters while in the good state
    DiChannelParams bad;   ///< parameters while in the bad state
    double p_good_to_bad = 0.05;  ///< per-use switch probability
    double p_bad_to_good = 0.25;

    /// Throws std::domain_error / std::invalid_argument when malformed
    /// (both states must share bits_per_symbol; switch probs in (0,1)).
    void validate() const;

    /// Stationary probability of being in the bad state.
    [[nodiscard]] double stationary_bad() const noexcept {
        return p_good_to_bad / (p_good_to_bad + p_bad_to_good);
    }

    /// Long-run average Definition-1 parameters (stationary mixture).
    [[nodiscard]] DiChannelParams average() const;
};

class MarkovModulatedChannel final : public SymbolChannel {
public:
    MarkovModulatedChannel(BurstyChannelParams params, std::uint64_t seed);

    /// Long-run average parameters (what the paper's formulas apply to).
    [[nodiscard]] const DiChannelParams& params() const noexcept override { return average_; }
    [[nodiscard]] const BurstyChannelParams& bursty_params() const noexcept { return params_; }
    [[nodiscard]] bool in_bad_state() const noexcept { return bad_state_; }
    [[nodiscard]] std::uint64_t uses() const noexcept { return uses_; }
    /// Fraction of uses spent in the bad state so far (0 before first use).
    [[nodiscard]] double measured_bad_fraction() const noexcept;

    [[nodiscard]] ChannelUseOutcome use(std::uint32_t queued) override;

private:
    BurstyChannelParams params_;
    DiChannelParams average_;
    util::Rng rng_;
    bool bad_state_ = false;
    std::uint64_t uses_ = 0;
    std::uint64_t bad_uses_ = 0;
};

}  // namespace ccap::core
