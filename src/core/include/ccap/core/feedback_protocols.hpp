// Executable synchronization protocols over the Definition-1 channel.
//
//  * StopAndWaitProtocol — Theorem 3's constructive proof: with perfect
//    feedback the sender resends each symbol until it is received, so no
//    drop-outs occur and the rate approaches N(1 - P_d) bits/use.
//  * CounterProtocol — Appendix A: the receiver counts every symbol it
//    believes it received (insertions included) and feeds the count back;
//    the sender skips message symbols to stay aligned. The result is a
//    synchronous M-ary symmetric "converted channel" (Fig. 5) whose
//    measured garbage fraction and goodput validate eq (2)-(5).
//  * Quantum-level simulations of Fig. 1 (two synchronization variables)
//    and Fig. 3 (common event source) under Bernoulli CPU scheduling, used
//    by benches E3/E8 to compare synchronization mechanisms.
#pragma once

#include <cstdint>
#include <vector>

#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/core/fault_injection.hpp"

namespace ccap::core {

struct ProtocolRun {
    std::size_t message_len = 0;        ///< symbols delivered (all of them)
    std::vector<std::uint32_t> received;  ///< the receiver's final stream
    std::uint64_t channel_uses = 0;
    std::size_t garbage_positions = 0;  ///< receiver positions filled by insertions
    std::size_t symbol_errors = 0;      ///< received[i] != message[i]
    bool reliable = false;              ///< every position matches

    // Robustness counters. The unhardened protocols fill retransmissions
    // and leave the rest zero, so a hardened run over a faultless channel
    // and a perfect link compares EXPECT_EQ-equal to the plain run.
    std::uint64_t retransmissions = 0;  ///< uses that re-offered an already-offered symbol
    std::uint64_t timeouts = 0;         ///< report waits abandoned after the timeout
    std::uint64_t resync_events = 0;    ///< valid feedback that repaired stale sender state
    std::uint64_t acks_lost = 0;        ///< feedback frames the link dropped
    std::uint64_t acks_corrupted = 0;   ///< feedback frames damaged in flight (CRC-caught)

    bool operator==(const ProtocolRun&) const = default;

    /// Raw symbols moved per channel use.
    [[nodiscard]] double symbols_per_use() const noexcept {
        return channel_uses == 0
                   ? 0.0
                   : static_cast<double>(message_len) / static_cast<double>(channel_uses);
    }
    /// Measured information rate in bits/use: symbols_per_use times the
    /// M-ary symmetric capacity at the *measured* symbol error rate.
    [[nodiscard]] double measured_info_rate(unsigned bits_per_symbol) const;
    /// Achieved-rate-vs-bound gap: predicted minus measured, in bits/use.
    /// Positive = the run fell short of the closed-form prediction.
    [[nodiscard]] double rate_gap(double predicted_rate, unsigned bits_per_symbol) const {
        return predicted_rate - measured_info_rate(bits_per_symbol);
    }
};

/// Theorem 3: resend-until-received. Requires P_i == 0 (pure deletion
/// channel); throws otherwise.
[[nodiscard]] ProtocolRun run_stop_and_wait(SymbolChannel& channel,
                                            std::span<const std::uint32_t> message);

/// Appendix A counter protocol over a full deletion-insertion channel.
[[nodiscard]] ProtocolRun run_counter_protocol(SymbolChannel& channel,
                                               std::span<const std::uint32_t> message);

// ---------------------------------------------------------------------------
// Imperfect feedback (extension; the paper assumes the feedback path is
// perfect and instantaneous — "this simplifies the analysis"). These
// protocols quantify the cost of a feedback delay of D channel uses on a
// pure deletion channel (P_i must be 0; throws otherwise).
// ---------------------------------------------------------------------------

/// Stop-and-wait that idles `delay` uses after every attempt before the
/// outcome arrives: expected rate N(1 - P_d)/(1 + delay).
[[nodiscard]] ProtocolRun run_delayed_stop_and_wait(SymbolChannel& channel,
                                                    std::span<const std::uint32_t> message,
                                                    std::uint64_t delay);

/// Go-back-N pipelining: the sender streams continuously and learns each
/// use's outcome `delay` uses later; a discovered deletion rewinds to the
/// lost symbol (the receiver discards out-of-order arrivals). Expected rate
/// N(1 - P_d)/(1 + P_d * delay) — pipelining recovers most of the delay
/// penalty that stop-and-wait pays.
[[nodiscard]] ProtocolRun run_go_back_n(SymbolChannel& channel,
                                        std::span<const std::uint32_t> message,
                                        std::uint64_t delay);

// ---------------------------------------------------------------------------
// Hardened protocols: the feedback path is a FeedbackLink (loss, corruption,
// delay, jitter) instead of the paper's perfect wire, and the forward
// channel may be a FaultyChannel. Every report frame is CRC-16 protected,
// so a corrupted report is *detected* and treated as missing — it can never
// silently flip an ACK into a NACK or vice versa. Over a perfect link each
// hardened run is bit-identical (EXPECT_EQ on ProtocolRun) to its
// unhardened counterpart: the link consumes no randomness and every report
// arrives intact after exactly `delay` uses.
// ---------------------------------------------------------------------------

struct HardenedOptions {
    /// Uses the sender waits for a report before declaring it lost and
    /// retransmitting. Must be >= the link's worst-case latency
    /// (delay + jitter) so a report in flight is never abandoned.
    std::uint64_t timeout = 8;
    /// Capped exponential backoff: after k *consecutive* lost reports the
    /// sender waits min(timeout * backoff_mult^k, backoff_cap) uses. Any
    /// report arrival (even a corrupted one) resets the level.
    std::uint64_t backoff_mult = 2;
    std::uint64_t backoff_cap = 64;
    /// Safety valve for pathological fault profiles: when nonzero, a run
    /// that exceeds this many channel uses stops early with
    /// reliable == false instead of spinning forever.
    std::uint64_t channel_use_cap = 0;

    /// Throws std::invalid_argument on a zero timeout/multiplier or a cap
    /// below the base timeout.
    void validate() const;
};

/// Stop-and-wait with per-attempt reports, timeout + retransmit, and capped
/// exponential backoff. Duplicate deliveries caused by lost ACKs are
/// discarded by the receiver (alternating-sequence discipline), so the run
/// stays reliable for any ack-loss probability < 1. Requires P_i == 0.
/// Closed-form expected rate: protocol_analysis.hpp
/// hardened_stop_and_wait_rate.
[[nodiscard]] ProtocolRun run_hardened_stop_and_wait(SymbolChannel& channel,
                                                     std::span<const std::uint32_t> message,
                                                     FeedbackLink& link,
                                                     const HardenedOptions& options);

/// Counter protocol whose count reports ride the lossy link. Reports carry
/// the receiver's cumulative count (CRC-protected); the sender offers
/// message[view] under its latest valid view, so a lost or corrupted count
/// leaves the sender briefly stale and the next valid count *resyncs* it
/// (resync_events) instead of desynchronizing the rest of the run.
[[nodiscard]] ProtocolRun run_hardened_counter_protocol(SymbolChannel& channel,
                                                        std::span<const std::uint32_t> message,
                                                        FeedbackLink& link,
                                                        const HardenedOptions& options);

/// Go-back-N tolerant of lost outcome reports: each report carries the
/// receiver's in-order count, so when the report that would have triggered
/// a rewind is lost, a later report's count still steers the window back to
/// the symbol the receiver actually needs. The link's fixed delay plays the
/// role of the plain protocol's pipeline depth. Requires P_i == 0.
[[nodiscard]] ProtocolRun run_hardened_go_back_n(SymbolChannel& channel,
                                                 std::span<const std::uint32_t> message,
                                                 FeedbackLink& link,
                                                 const HardenedOptions& options);

// ---------------------------------------------------------------------------
// Quantum-level synchronization-mechanism simulations (Figs. 1, 3).
// Each CPU quantum goes to the sender with probability sender_share, else to
// the receiver — the memoryless scheduler abstraction of Section 3.1.
// ---------------------------------------------------------------------------

struct SyncSimConfig {
    std::size_t message_len = 2000;
    double sender_share = 0.5;     ///< P(quantum goes to the sender)
    unsigned bits_per_symbol = 1;
    std::uint64_t seed = 1;
};

struct SyncSimResult {
    std::size_t delivered = 0;
    std::uint64_t quanta = 0;
    bool reliable = false;
    [[nodiscard]] double symbols_per_quantum() const noexcept {
        return quanta == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(quanta);
    }
};

/// Fig. 1: two synchronization variables (data-ready / ack) — feedback.
[[nodiscard]] SyncSimResult simulate_two_variable_handshake(const SyncSimConfig& config);

/// Fig. 3(a): a common event source E emits a tick every `slot_len` quanta;
/// odd slots belong to the sender, even slots to the receiver. A symbol is
/// delivered each (send,receive) slot pair in which both parties got at
/// least one quantum in their slot; otherwise it is lost (no feedback to
/// recover it), so delivery here counts only *successful* pairs.
[[nodiscard]] SyncSimResult simulate_common_event_sync(const SyncSimConfig& config,
                                                       unsigned slot_len);

}  // namespace ccap::core
