// Executable synchronization protocols over the Definition-1 channel.
//
//  * StopAndWaitProtocol — Theorem 3's constructive proof: with perfect
//    feedback the sender resends each symbol until it is received, so no
//    drop-outs occur and the rate approaches N(1 - P_d) bits/use.
//  * CounterProtocol — Appendix A: the receiver counts every symbol it
//    believes it received (insertions included) and feeds the count back;
//    the sender skips message symbols to stay aligned. The result is a
//    synchronous M-ary symmetric "converted channel" (Fig. 5) whose
//    measured garbage fraction and goodput validate eq (2)-(5).
//  * Quantum-level simulations of Fig. 1 (two synchronization variables)
//    and Fig. 3 (common event source) under Bernoulli CPU scheduling, used
//    by benches E3/E8 to compare synchronization mechanisms.
#pragma once

#include <cstdint>
#include <vector>

#include "ccap/core/deletion_insertion_channel.hpp"

namespace ccap::core {

struct ProtocolRun {
    std::size_t message_len = 0;        ///< symbols delivered (all of them)
    std::vector<std::uint32_t> received;  ///< the receiver's final stream
    std::uint64_t channel_uses = 0;
    std::size_t garbage_positions = 0;  ///< receiver positions filled by insertions
    std::size_t symbol_errors = 0;      ///< received[i] != message[i]
    bool reliable = false;              ///< every position matches

    /// Raw symbols moved per channel use.
    [[nodiscard]] double symbols_per_use() const noexcept {
        return channel_uses == 0
                   ? 0.0
                   : static_cast<double>(message_len) / static_cast<double>(channel_uses);
    }
    /// Measured information rate in bits/use: symbols_per_use times the
    /// M-ary symmetric capacity at the *measured* symbol error rate.
    [[nodiscard]] double measured_info_rate(unsigned bits_per_symbol) const;
};

/// Theorem 3: resend-until-received. Requires P_i == 0 (pure deletion
/// channel); throws otherwise.
[[nodiscard]] ProtocolRun run_stop_and_wait(SymbolChannel& channel,
                                            std::span<const std::uint32_t> message);

/// Appendix A counter protocol over a full deletion-insertion channel.
[[nodiscard]] ProtocolRun run_counter_protocol(SymbolChannel& channel,
                                               std::span<const std::uint32_t> message);

// ---------------------------------------------------------------------------
// Imperfect feedback (extension; the paper assumes the feedback path is
// perfect and instantaneous — "this simplifies the analysis"). These
// protocols quantify the cost of a feedback delay of D channel uses on a
// pure deletion channel (P_i must be 0; throws otherwise).
// ---------------------------------------------------------------------------

/// Stop-and-wait that idles `delay` uses after every attempt before the
/// outcome arrives: expected rate N(1 - P_d)/(1 + delay).
[[nodiscard]] ProtocolRun run_delayed_stop_and_wait(SymbolChannel& channel,
                                                    std::span<const std::uint32_t> message,
                                                    std::uint64_t delay);

/// Go-back-N pipelining: the sender streams continuously and learns each
/// use's outcome `delay` uses later; a discovered deletion rewinds to the
/// lost symbol (the receiver discards out-of-order arrivals). Expected rate
/// N(1 - P_d)/(1 + P_d * delay) — pipelining recovers most of the delay
/// penalty that stop-and-wait pays.
[[nodiscard]] ProtocolRun run_go_back_n(SymbolChannel& channel,
                                        std::span<const std::uint32_t> message,
                                        std::uint64_t delay);

// ---------------------------------------------------------------------------
// Quantum-level synchronization-mechanism simulations (Figs. 1, 3).
// Each CPU quantum goes to the sender with probability sender_share, else to
// the receiver — the memoryless scheduler abstraction of Section 3.1.
// ---------------------------------------------------------------------------

struct SyncSimConfig {
    std::size_t message_len = 2000;
    double sender_share = 0.5;     ///< P(quantum goes to the sender)
    unsigned bits_per_symbol = 1;
    std::uint64_t seed = 1;
};

struct SyncSimResult {
    std::size_t delivered = 0;
    std::uint64_t quanta = 0;
    bool reliable = false;
    [[nodiscard]] double symbols_per_quantum() const noexcept {
        return quanta == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(quanta);
    }
};

/// Fig. 1: two synchronization variables (data-ready / ack) — feedback.
[[nodiscard]] SyncSimResult simulate_two_variable_handshake(const SyncSimConfig& config);

/// Fig. 3(a): a common event source E emits a tick every `slot_len` quanta;
/// odd slots belong to the sender, even slots to the receiver. A symbol is
/// delivered each (send,receive) slot pair in which both parties got at
/// least one quantum in their slot; otherwise it is lost (no feedback to
/// recover it), so delivery here counts only *successful* pairs.
[[nodiscard]] SyncSimResult simulate_common_event_sync(const SyncSimConfig& config,
                                                       unsigned slot_len);

}  // namespace ccap::core
