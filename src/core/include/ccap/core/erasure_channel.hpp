// Definition 2: the (extended) erasure channel matched to a
// deletion-insertion channel.
//
//   "An extended erasure channel is a channel where symbols may be inserted
//    and/or dropped but the locations of all insertions and drop-outs are
//    known."
//
// Section 3.3 stresses that this side information is what separates the two
// models — the matched erasure channel experiences the *same* realization
// of drop-outs and insertions, it merely knows where they are. We therefore
// derive the erasure view directly from a DeletionInsertionChannel
// transduction's ground-truth event log, so experiments compare the exact
// same noise realization with and without the side information (bench E9).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ccap/core/deletion_insertion_channel.hpp"

namespace ccap::core {

struct ErasureView {
    /// One entry per *message* symbol: the delivered value, or nullopt where
    /// the symbol was deleted (an erasure flag).
    std::vector<std::optional<std::uint32_t>> symbols;
    /// Count of inserted symbols that were discarded thanks to the known
    /// locations (the extended erasure channel throws them away).
    std::size_t insertions_discarded = 0;
    std::uint64_t channel_uses = 0;

    [[nodiscard]] std::size_t erasures() const noexcept {
        std::size_t e = 0;
        for (const auto& s : symbols)
            if (!s) ++e;
        return e;
    }
};

/// Build the matched extended-erasure view from a DI transduction.
[[nodiscard]] ErasureView erasure_view(const DeletionInsertionChannel::Transduction& t);

/// Empirical information delivered by an erasure view, in bits: every
/// non-erased symbol carries N intact bits (noiseless case) — the quantity
/// whose per-use rate Theorem 1 bounds.
[[nodiscard]] double erasure_view_information_bits(const ErasureView& view,
                                                   unsigned bits_per_symbol);

}  // namespace ccap::core
