// Definition 1 of the paper: the four-parameter deletion-insertion channel.
//
//   "A binary deletion-insertion channel is a channel with four parameters:
//    P_d, P_i, P_t and P_s, which denote the rates of deletions,
//    insertions, transmissions and substitutions, respectively."
//
// We generalize to M-ary symbols (M = 2^N, N = bits_per_symbol) exactly as
// the paper's capacity expressions do. P_t is derived (P_d + P_i + P_t = 1);
// P_s is the substitution probability *given* a transmission.
#pragma once

#include <cstdint>
#include <string>

namespace ccap::core {

struct DiChannelParams {
    double p_d = 0.0;            ///< deletion probability per channel use
    double p_i = 0.0;            ///< insertion probability per channel use
    double p_s = 0.0;            ///< substitution probability given transmission
    unsigned bits_per_symbol = 1;  ///< N; the symbol alphabet is [0, 2^N)

    /// Transmission probability per channel use.
    [[nodiscard]] double p_t() const noexcept { return 1.0 - p_d - p_i; }
    /// Alphabet size M = 2^N.
    [[nodiscard]] std::uint32_t alphabet() const noexcept { return 1U << bits_per_symbol; }

    /// Throws std::domain_error when the parameter set is not a channel.
    void validate() const;

    /// "p_d=0.10 p_i=0.05 p_s=0.00 N=1" — used by reports and benches.
    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] bool operator==(const DiChannelParams&) const noexcept = default;
};

/// A synchronous channel (per-use deletion and insertion both zero).
[[nodiscard]] bool is_synchronous(const DiChannelParams& p) noexcept;

}  // namespace ccap::core
