// Fault injection for the Definition-1 channel and its feedback path.
//
// The paper's achievability results (Theorems 3/4, Appendix A) assume the
// feedback path is "perfect and instantaneous" and that the channel's
// parameters hold for the whole run. Real covert channels violate both:
// schedulers stall in bursts, loads drift, and the return path is itself a
// lossy covert channel. This module makes those imperfections first-class
// and *deterministic*, so every degraded run is replayable bit for bit:
//
//   * FaultProfile — a seeded, clock-indexed fault schedule: periodic burst
//     deletion storms, smooth non-stationary extra deletion probability
//     delta(t), and stuck-at substitution windows.
//   * FaultyChannel — a decorator over any SymbolChannel (Definition-1,
//     bursty, ...) applying the profile per use. With a null profile it is
//     a bit-identical passthrough: no RNG draws, no outcome rewrites.
//   * FeedbackLink — the return path, with report loss probability,
//     payload corruption, and fixed-plus-jittered delay. A link whose
//     parameters are all zero is the paper's perfect feedback path.
//
// The hardened protocols in feedback_protocols.hpp drive both; benches
// plot their graceful-degradation curves against the closed forms in
// protocol_analysis.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ccap/coding/bitvec.hpp"
#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/util/rng.hpp"

namespace ccap::core {

/// Deterministic fault schedule, indexed by the channel-use clock t = 0, 1,
/// 2, ... Every component is optional; a default-constructed profile is the
/// null profile (no faults).
struct FaultProfile {
    /// Stamped into bench records so baselines from different profiles are
    /// never compared against each other (scripts/bench_compare.py).
    std::string name = "none";

    // --- Burst deletion storms -------------------------------------------
    // During uses [k * storm_period, k * storm_period + storm_len) every
    // delivery (transmission or insertion) is blacked out: the receiver
    // sees nothing, the sender's queue semantics are untouched.
    std::uint64_t storm_period = 0;  ///< 0 disables storms
    std::uint64_t storm_len = 0;

    // --- Non-stationary deletion drift -----------------------------------
    // Extra per-use delivery-drop probability
    //   delta(t) = drift_amplitude * (1 - cos(2 pi t / drift_period)) / 2,
    // a smooth P_d(t) swing peaking at drift_amplitude mid-period and
    // returning to the nominal parameters at the period boundaries.
    double drift_amplitude = 0.0;    ///< 0 disables drift
    std::uint64_t drift_period = 0;

    // --- Stuck-at substitutions ------------------------------------------
    // During uses [k * stuck_period, k * stuck_period + stuck_len) every
    // delivered symbol is replaced by stuck_symbol (a jammed shared
    // resource reads as a constant).
    std::uint64_t stuck_period = 0;  ///< 0 disables stuck-at windows
    std::uint64_t stuck_len = 0;
    std::uint32_t stuck_symbol = 0;

    /// True when no fault component is active — FaultyChannel passes
    /// through bit-identically.
    [[nodiscard]] bool is_null() const noexcept;

    /// Throws std::domain_error / std::invalid_argument when malformed
    /// (non-finite or out-of-range amplitude, window longer than period,
    /// active component with a zero period).
    void validate() const;

    // Named presets used by benches and the CLI.
    [[nodiscard]] static FaultProfile storms(std::uint64_t period, std::uint64_t len);
    [[nodiscard]] static FaultProfile drifting(double amplitude, std::uint64_t period);
    [[nodiscard]] static FaultProfile stuck_at(std::uint64_t period, std::uint64_t len,
                                               std::uint32_t symbol);
};

/// Canonical parameterizations of the named presets, reachable from the CLI
/// (`--profile NAME` on `protocol` and `track`) without reading the source:
///   none    null profile (no faults)
///   storms  burst deletion blackouts: period 4096 uses, len 256
///   drift   cosine non-stationary deletion swing: amplitude 0.25, period 8192
///   stuck   stuck-at-0 substitution windows: period 8192, len 512
/// Unknown names return false and leave `out` untouched.
[[nodiscard]] bool named_fault_profile(const std::string& name, FaultProfile& out);

/// One line for usage/help text: every preset name with its parameters.
[[nodiscard]] const char* fault_profile_presets_help() noexcept;

/// What FaultyChannel did to the underlying outcome stream.
struct FaultStats {
    std::uint64_t uses = 0;
    std::uint64_t storm_drops = 0;   ///< deliveries blacked out by storms
    std::uint64_t drift_drops = 0;   ///< deliveries dropped by delta(t)
    std::uint64_t stuck_overrides = 0;  ///< delivered symbols forced to stuck_symbol

    [[nodiscard]] std::uint64_t injected_faults() const noexcept {
        return storm_drops + drift_drops + stuck_overrides;
    }
};

/// One injected fault, for replay/debug logs (bounded; see FaultyChannel).
struct InjectedFault {
    enum class Kind : std::uint8_t { storm_drop, drift_drop, stuck_override };
    std::uint64_t use = 0;
    Kind kind = Kind::storm_drop;
};

/// Decorator over any SymbolChannel applying a FaultProfile per use. The
/// schedule clock is the decorator's own use counter, so the same profile
/// and seed replay the same fault sequence over any inner channel. The
/// inner channel's RNG stream is never touched: drift draws come from the
/// decorator's own generator, and the null profile draws nothing at all.
class FaultyChannel final : public SymbolChannel {
public:
    /// Does not take ownership of `inner`; it must outlive the decorator.
    FaultyChannel(SymbolChannel& inner, FaultProfile profile, std::uint64_t seed);

    /// Nominal long-run parameters of the *inner* channel. Faults push the
    /// realized event rates away from these — quantifying that gap is what
    /// the estimators are for.
    [[nodiscard]] const DiChannelParams& params() const noexcept override {
        return inner_->params();
    }
    [[nodiscard]] const FaultProfile& profile() const noexcept { return profile_; }
    [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
    /// Injected-fault log, capped at kMaxLoggedFaults entries (the stats
    /// counters keep exact totals past the cap).
    [[nodiscard]] const std::vector<InjectedFault>& fault_log() const noexcept {
        return fault_log_;
    }

    [[nodiscard]] ChannelUseOutcome use(std::uint32_t queued) override;

    static constexpr std::size_t kMaxLoggedFaults = 4096;

private:
    [[nodiscard]] bool in_window(std::uint64_t t, std::uint64_t period,
                                 std::uint64_t len) const noexcept {
        return period != 0 && len != 0 && (t % period) < len;
    }
    void log_fault(std::uint64_t t, InjectedFault::Kind kind);

    SymbolChannel* inner_;
    FaultProfile profile_;
    bool null_profile_;
    util::Rng rng_;
    FaultStats stats_;
    std::vector<InjectedFault> fault_log_;
};

// ---------------------------------------------------------------------------
// Feedback link
// ---------------------------------------------------------------------------

struct FeedbackLinkParams {
    double p_loss = 0.0;     ///< per-report loss probability
    double p_corrupt = 0.0;  ///< per-report payload-corruption probability
    std::uint64_t delay = 0;   ///< fixed report latency, in channel uses
    std::uint64_t jitter = 0;  ///< extra uniform latency in [0, jitter]

    /// The paper's perfect feedback path: lossless, clean, instantaneous.
    [[nodiscard]] bool perfect() const noexcept {
        return p_loss == 0.0 && p_corrupt == 0.0 && delay == 0 && jitter == 0;
    }
    /// Throws std::domain_error on non-finite or out-of-range probabilities.
    void validate() const;
};

/// Running totals of what the link did to the report stream.
struct FeedbackStats {
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
    std::uint64_t corrupted = 0;  ///< frames damaged in flight (bits flipped)
};

/// Seeded model of the feedback path. Reports are framed as bit vectors so
/// protocols can CRC-protect them (coding/crc.hpp); corruption flips one to
/// three random frame bits — always within CRC-16's guaranteed detection
/// distance for the short frames the protocols use, so a corrupted frame is
/// *detectably* corrupted, never silently wrong.
class FeedbackLink {
public:
    struct Delivery {
        bool lost = false;
        std::uint64_t delay = 0;   ///< uses until arrival (0 when lost)
        coding::Bits bits;         ///< frame as (possibly corrupted) bits
    };

    FeedbackLink(FeedbackLinkParams params, std::uint64_t seed);

    [[nodiscard]] const FeedbackLinkParams& params() const noexcept { return params_; }
    [[nodiscard]] const FeedbackStats& stats() const noexcept { return stats_; }

    /// One report over the return path. A perfect link forwards the frame
    /// untouched without consuming any randomness, so zero-fault protocol
    /// runs replay the unhardened protocols bit for bit.
    [[nodiscard]] Delivery transmit(std::span<const std::uint8_t> frame_bits);

private:
    FeedbackLinkParams params_;
    util::Rng rng_;
    FeedbackStats stats_;
};

}  // namespace ccap::core
