// Hidden-Markov "drift" lattice for insertion/deletion channels
// (Davey & MacKay, IEEE Trans. IT 2001 — the paper's reference [13]).
//
// Generative model, matching the paper's Definition 1: while a symbol is
// queued, each channel use is an insertion with probability P_i (emitting a
// uniformly random symbol), a deletion with probability P_d (the queued
// symbol is consumed, nothing emitted), or a transmission with probability
// P_t = 1 - P_i - P_d (the queued symbol is consumed and emitted, flipped to
// a uniformly chosen other symbol with probability P_s). After the queue
// empties, trailing insertions continue with probability P_i per use.
//
// The hidden state after consuming j queued symbols is the *drift*
// d_j = (received symbols so far) - j. Forward/backward over the drift
// lattice give:
//   * exact log-likelihood  log2 P(received | transmitted)   — used by the
//     Monte-Carlo mutual-information bounds in deletion_bounds.hpp, and
//   * per-position posteriors P(t_j = s | received)           — the inner
//     decoder of the watermark code in coding/watermark.hpp.
//
// Per-symbol insertion runs are truncated at max_insert_run (probability
// mass P_i^{run} is geometrically negligible past ~10); drift is clamped to
// [-max_drift, +max_drift]. Both truncations only *lower* reported
// likelihoods, preserving the lower-bound semantics of the MI estimators.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "ccap/util/matrix.hpp"

namespace ccap::info {

class LatticeWorkspace;  // lattice_engine.hpp
struct DriftTables;      // lattice_engine.hpp

/// First-order Markov symbol source: initial distribution + row-stochastic
/// transition matrix over the channel alphabet. Davey & MacKay observed
/// that correlated (run-length-biased) inputs raise the achievable rate of
/// deletion channels above the iid-input rate; markov_mutual_information_
/// rate in deletion_bounds.hpp quantifies that with this source.
struct MarkovSource {
    std::vector<double> initial;   ///< length M
    util::Matrix transition;       ///< M x M, rows P(next | current)

    /// Throws std::domain_error / std::invalid_argument when malformed or
    /// when the dimensions disagree with `alphabet`.
    void validate(unsigned alphabet) const;

    /// Binary source that repeats the previous symbol with probability
    /// `stay` (stay = 0.5 gives iid uniform).
    [[nodiscard]] static MarkovSource binary_repeat(double stay);

    /// Uniform iid source over an M-ary alphabet.
    [[nodiscard]] static MarkovSource uniform(unsigned alphabet);
};

struct DriftParams {
    double p_d = 0.0;          ///< deletion probability per channel use
    double p_i = 0.0;          ///< insertion probability per channel use
    double p_s = 0.0;          ///< substitution probability given transmission
    unsigned alphabet = 2;     ///< symbol alphabet size M >= 2
    int max_drift = 48;        ///< |received - consumed| clamp
    int max_insert_run = 10;   ///< per-symbol insertion run truncation
    /// Adaptive-band pruning threshold, relative to the per-row forward
    /// maximum: states below band_eps * row_max are trimmed off the band
    /// edges and their mass is folded into a certified slack bound
    /// (lattice_engine.hpp). 0 keeps the exact full-band sweep,
    /// bit-identical to the pre-banding implementation.
    double band_eps = 0.0;

    /// Transmission probability per channel use.
    [[nodiscard]] double p_t() const noexcept { return 1.0 - p_d - p_i; }
    /// Throws std::domain_error on invalid combinations.
    void validate() const;
};

/// Banded evidence with its certified truncation slack:
///   log2_evidence <= exact log2 evidence <= log2_evidence + log2_slack.
/// With band_eps = 0 the slack is exactly 0; it is +infinity only when the
/// banded lattice died while pruned mass might still survive exactly.
struct BandedEvidence {
    double log2_evidence = -std::numeric_limits<double>::infinity();
    double log2_slack = 0.0;
};

class DriftHmm {
public:
    explicit DriftHmm(DriftParams params);

    [[nodiscard]] const DriftParams& params() const noexcept { return params_; }

    /// Immutable transition/emission lookup tables, shareable across
    /// threads (built once at construction).
    [[nodiscard]] const DriftTables& tables() const noexcept { return *tables_; }

    /// log2 P(received | transmitted) under the truncated generative model.
    /// Returns -infinity when the pair is unreachable within the truncations.
    /// The overload without a workspace leases a thread-local one; passing
    /// your own LatticeWorkspace makes repeated calls allocation-free.
    [[nodiscard]] double log2_likelihood(std::span<const std::uint8_t> transmitted,
                                         std::span<const std::uint8_t> received) const;
    [[nodiscard]] double log2_likelihood(std::span<const std::uint8_t> transmitted,
                                         std::span<const std::uint8_t> received,
                                         LatticeWorkspace& ws) const;

    /// log2_likelihood plus the certified adaptive-band slack (0 when
    /// params().band_eps == 0).
    [[nodiscard]] BandedEvidence log2_likelihood_banded(
        std::span<const std::uint8_t> transmitted, std::span<const std::uint8_t> received,
        LatticeWorkspace& ws) const;

    /// log2 P(received) when transmitted symbols are drawn independently
    /// from the per-position priors (n = priors.rows()): the forward pass
    /// of posteriors() without the backward sweep, bit-identical to the
    /// evidence posteriors() reports but at half the cost. The Monte-Carlo
    /// iid marginal is computed this way.
    [[nodiscard]] BandedEvidence log2_prior_marginal_banded(
        const util::Matrix& priors, std::span<const std::uint8_t> received,
        LatticeWorkspace& ws) const;

    /// Forward-backward posteriors. `priors` is an n x M row-stochastic
    /// matrix of per-position transmitted-symbol priors. Returns an n x M
    /// matrix of posteriors P(t_j = s | received). If `log2_evidence` is
    /// non-null it receives log2 P(received) under the priors.
    /// Positions whose symbol was deleted (no emission observed) fall back
    /// towards their prior, as they must.
    [[nodiscard]] util::Matrix posteriors(const util::Matrix& priors,
                                          std::span<const std::uint8_t> received,
                                          double* log2_evidence = nullptr) const;
    [[nodiscard]] util::Matrix posteriors(const util::Matrix& priors,
                                          std::span<const std::uint8_t> received,
                                          LatticeWorkspace& ws,
                                          double* log2_evidence = nullptr) const;

    /// Candidate provider for segment_likelihoods: returns the candidate
    /// blocks (each seg_len symbols) for one segment. The count must be the
    /// same for every segment.
    using CandidateFn =
        std::function<std::span<const std::vector<std::uint8_t>>(std::size_t segment)>;

    /// Davey-MacKay inner-decoder operation: split the n transmitted
    /// positions into consecutive segments of length seg_len (n must be a
    /// multiple) and, for each segment t, compute the relative likelihood of
    /// every candidate block:
    ///   L(t, c) proportional to P(received | segment t equals candidate c,
    ///                             other positions ~ priors).
    /// The surrounding context is weighted by the forward/backward lattices
    /// run under `priors` — exactly the approximation of Davey & MacKay.
    /// Returns a (n/seg_len) x num_candidates row-normalized matrix.
    [[nodiscard]] util::Matrix segment_likelihoods(const util::Matrix& priors,
                                                   std::span<const std::uint8_t> received,
                                                   std::size_t seg_len,
                                                   std::size_t num_candidates,
                                                   const CandidateFn& candidates_for) const;
    [[nodiscard]] util::Matrix segment_likelihoods(const util::Matrix& priors,
                                                   std::span<const std::uint8_t> received,
                                                   std::size_t seg_len,
                                                   std::size_t num_candidates,
                                                   const CandidateFn& candidates_for,
                                                   LatticeWorkspace& ws) const;

    /// Convenience overload with one shared candidate set for all segments.
    [[nodiscard]] util::Matrix segment_likelihoods(
        const util::Matrix& priors, std::span<const std::uint8_t> received,
        std::size_t seg_len, const std::vector<std::vector<std::uint8_t>>& candidates) const;

    /// Posterior expected channel-event counts given a (transmitted,
    /// received) pair — the E-step of Baum-Welch parameter estimation
    /// (estimate_params_em). Counts marginalize over all event sequences
    /// consistent with the pair under the current parameters.
    struct EventExpectations {
        double deletions = 0.0;
        double insertions = 0.0;      ///< including trailing insertions
        double transmissions = 0.0;
        double substitutions = 0.0;   ///< transmissions that flipped the symbol
        double log2_likelihood = 0.0; ///< log2 P(received | transmitted)
    };
    [[nodiscard]] EventExpectations expected_events(std::span<const std::uint8_t> transmitted,
                                                    std::span<const std::uint8_t> received) const;
    [[nodiscard]] EventExpectations expected_events(std::span<const std::uint8_t> transmitted,
                                                    std::span<const std::uint8_t> received,
                                                    LatticeWorkspace& ws) const;

    /// log2 P(received) when the transmitted sequence of length `tx_len` is
    /// drawn from a first-order Markov source: the forward pass runs over
    /// the joint (drift, previous-symbol) state. Needed because the
    /// per-position independent `priors` of posteriors() cannot express
    /// symbol correlation. Returns -infinity when unreachable.
    [[nodiscard]] double log2_markov_marginal(const MarkovSource& source, std::size_t tx_len,
                                              std::span<const std::uint8_t> received) const;
    [[nodiscard]] double log2_markov_marginal(const MarkovSource& source, std::size_t tx_len,
                                              std::span<const std::uint8_t> received,
                                              LatticeWorkspace& ws) const;
    /// Markov marginal plus the certified adaptive-band slack.
    [[nodiscard]] BandedEvidence log2_markov_marginal_banded(
        const MarkovSource& source, std::size_t tx_len,
        std::span<const std::uint8_t> received, LatticeWorkspace& ws) const;

    // Batched lockstep counterparts (BatchLatticeEngine, batch_lattice.hpp;
    // implemented in batch_lattice.cpp). Each takes one lane per sequence;
    // transmitted lengths must agree across lanes (that is the lockstep
    // shape), received lengths may be ragged. At params().band_eps == 0
    // every lane's result is bit-identical to the scalar call on that lane
    // alone; in banded mode each lane keeps its own certified slack.
    using SymbolSpan = std::span<const std::uint8_t>;

    /// Batched log2_likelihood_banded: lane i pairs transmitted[i] with
    /// received[i].
    [[nodiscard]] std::vector<BandedEvidence> log2_likelihood_batch(
        std::span<const SymbolSpan> transmitted, std::span<const SymbolSpan> received,
        LatticeWorkspace& ws) const;

    /// Batched log2_prior_marginal_banded: one shared priors matrix, one
    /// received sequence per lane.
    [[nodiscard]] std::vector<BandedEvidence> log2_prior_marginal_batch(
        const util::Matrix& priors, std::span<const SymbolSpan> received,
        LatticeWorkspace& ws) const;

    /// Batched posteriors: one shared priors matrix, one received sequence
    /// per lane; returns one posterior matrix per lane. If `log2_evidence`
    /// is non-null it receives one evidence per lane.
    [[nodiscard]] std::vector<util::Matrix> posteriors_batch(
        const util::Matrix& priors, std::span<const SymbolSpan> received,
        LatticeWorkspace& ws, std::vector<double>* log2_evidence = nullptr) const;

    /// Batched expected_events: lane i pairs transmitted[i] with
    /// received[i].
    [[nodiscard]] std::vector<EventExpectations> expected_events_batch(
        std::span<const SymbolSpan> transmitted, std::span<const SymbolSpan> received,
        LatticeWorkspace& ws) const;

private:
    DriftParams params_;
    /// Shared so DriftHmm stays cheaply copyable; the tables are immutable.
    std::shared_ptr<const DriftTables> tables_;
};

}  // namespace ccap::info
