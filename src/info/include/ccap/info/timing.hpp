// Capacity of timing channels (traditional, synchronous estimators).
//
// These implement the "traditional methods" the paper's Section 4.3 tells a
// practitioner to run first — the physical capacity C of the covert channel
// under a synchronous model — before degrading by (1 - P_d):
//
//  * Shannon's noiseless timing capacity: symbols with unequal durations
//    t_i; C = log2(X0) where X0 is the positive root of sum_i X^{-t_i} = 1.
//  * Moskowitz & Miller's Simple Timing Channel (STC, 1994): a noiseless,
//    memoryless discrete timing channel — the same characteristic-equation
//    capacity, exposed in STC vocabulary.
//  * Moskowitz, Greenwald & Kang's timed Z-channel (1996): a Z-channel whose
//    symbols take unequal times; capacity = max_p I(p) / E_p[T], computed by
//    the per-unit-cost Blahut-Arimoto solver, with the closed-form
//    characteristic equation available as a cross-check.
#pragma once

#include <span>
#include <vector>

#include "ccap/info/blahut_arimoto.hpp"

namespace ccap::info {

/// Shannon capacity (bits per unit time) of a noiseless channel whose i-th
/// symbol takes durations[i] > 0 time units: log2 of the unique root X0 >= 1
/// of sum_i X^{-t_i} = 1. Empty durations or a single symbol give 0.
[[nodiscard]] double timing_capacity(std::span<const double> durations);

/// Simple Timing Channel: noiseless, memoryless, symbol i takes t_i ticks.
/// Identical math to timing_capacity; named per Moskowitz & Miller.
[[nodiscard]] double stc_capacity(std::span<const double> tick_durations);

struct TimedZResult {
    double capacity_per_time = 0.0;    ///< bits per unit time
    double optimal_p1 = 0.0;           ///< optimal probability of sending '1'
    bool converged = false;
};

/// Timed Z-channel: input 0 always delivered (duration t0); input 1 delivered
/// with prob 1-p as '1' (duration t1) or flips to '0' with prob p. Capacity
/// in bits per unit time via Dinkelbach / tilted Blahut-Arimoto.
[[nodiscard]] TimedZResult timed_z_capacity(double p, double t0, double t1);

/// Capacity (bits/use) of an arbitrary DMC whose symbols cost unequal time,
/// reported per unit time. Thin wrapper over capacity_per_unit_cost.
[[nodiscard]] double dmc_capacity_per_time(const Dmc& channel, std::span<const double> durations);

}  // namespace ccap::info
