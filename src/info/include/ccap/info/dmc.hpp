// Discrete memoryless channel (DMC) abstraction and canonical builders.
//
// A DMC is the synchronous channel model the paper contrasts against: every
// input symbol yields exactly one output symbol according to a fixed
// row-stochastic matrix W(y|x). Traditional covert-channel capacity
// estimation (Millen [5], Moskowitz [10][11]) happens in this model; the
// paper's contribution is the correction applied on top of it.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ccap/util/matrix.hpp"
#include "ccap/util/rng.hpp"

namespace ccap::info {

class Dmc {
public:
    /// Construct from a row-stochastic matrix W(y|x); throws if not
    /// stochastic within 1e-9 (rows are renormalized if within tolerance).
    explicit Dmc(util::Matrix transition, std::string name = "dmc");

    [[nodiscard]] std::size_t num_inputs() const noexcept { return w_.rows(); }
    [[nodiscard]] std::size_t num_outputs() const noexcept { return w_.cols(); }
    [[nodiscard]] const util::Matrix& matrix() const noexcept { return w_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// W(y|x).
    [[nodiscard]] double transition(std::size_t x, std::size_t y) const { return w_.at(x, y); }

    /// Output distribution induced by an input distribution.
    [[nodiscard]] std::vector<double> output_distribution(std::span<const double> input) const;

    /// Sample one output symbol for input x.
    [[nodiscard]] std::size_t sample(std::size_t x, util::Rng& rng) const;

    /// Transduce a whole input sequence (synchronously, one out per in).
    [[nodiscard]] std::vector<std::size_t> transduce(std::span<const std::size_t> inputs,
                                                     util::Rng& rng) const;

private:
    util::Matrix w_;
    std::string name_;
};

/// Binary symmetric channel with crossover probability p.
[[nodiscard]] Dmc make_bsc(double p);

/// Binary erasure channel with erasure probability e. Outputs: {0, 1, erasure=2}.
[[nodiscard]] Dmc make_bec(double e);

/// M-ary symmetric channel: correct with prob 1-p, each wrong symbol with
/// prob p/(M-1). This is the paper's Fig. 5 "converted channel".
[[nodiscard]] Dmc make_mary_symmetric(unsigned m, double p);

/// Z-channel: 0 -> 0 always; 1 -> 0 with probability p (1 -> 1 otherwise).
/// The classic model of covert channels whose "no-signal" symbol is reliable
/// (Moskowitz & Miller).
[[nodiscard]] Dmc make_z_channel(double p);

/// M-ary erasure channel: symbol delivered intact with prob 1-e, replaced by
/// a distinguished erasure flag (output index m) with prob e. Capacity is
/// log2(m)*(1-e) — the right-hand side of the paper's Theorem 1 with
/// m = 2^N and e = P_d.
[[nodiscard]] Dmc make_mary_erasure(unsigned m, double e);

/// Noiseless m-ary identity channel.
[[nodiscard]] Dmc make_noiseless(unsigned m);

/// Closed-form capacities for the canonical channels (bits/use); used to
/// cross-check the Blahut-Arimoto solver in tests.
[[nodiscard]] double bsc_capacity(double p);
[[nodiscard]] double bec_capacity(double e);
[[nodiscard]] double z_channel_capacity(double p);
[[nodiscard]] double mary_erasure_capacity(unsigned m, double e);

}  // namespace ccap::info
