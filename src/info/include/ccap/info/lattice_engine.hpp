// Zero-allocation banded lattice engine for the Davey-MacKay drift HMM.
//
// Every capacity estimate in this repo bottoms out in forward/backward
// sweeps over the drift lattice (drift_hmm.hpp). The seed implementation
// heap-allocated a fresh vector<vector<double>> per call and always swept
// the full [-max_drift, +max_drift] band. This header provides the three
// pieces that remove both costs:
//
//   * LatticeWorkspace — a caller-owned arena of flat, row-major buffers.
//     Buffers grow to the high-water mark and are then reused, so a
//     workspace that is kept across calls reaches a steady state with zero
//     per-call allocation. One workspace per thread; not thread-safe.
//
//   * DriftTables — the per-parameter lookup tables (emission matrix,
//     insertion-run powers, pre-folded transition weights). Immutable after
//     construction and therefore shareable across threads; DriftHmm builds
//     one at construction time.
//
//   * LatticeEngine — a per-call view that runs the forward/backward
//     passes over flat rows. In exact mode (band_eps = 0) it sweeps the
//     full valid drift window of every row with the same floating-point
//     operation order as the seed implementation, so results are
//     bit-identical. In adaptive-band mode (band_eps > 0) it tracks the
//     live drift window [lo_t, hi_t] per row, pruning edge states whose
//     forward mass falls below band_eps * row_max. The pruned mass is
//     accumulated into a certified slack bound: because any pruned state's
//     future contribution to the evidence is at most its current mass
//     (probabilities of a specific received suffix are <= 1),
//
//       log2_evidence_exact - log2_evidence_banded <= log2_slack()
//
//     always holds (docs/THEORY.md section 11 has the derivation). Banding
//     only ever *lowers* the reported evidence, preserving the lower-bound
//     semantics of the Monte-Carlo MI estimators.
//
// bcjr.cpp, watermark.cpp and alignment.cpp reuse LatticeWorkspace for
// their own trellises so the repo has one flat-row DP idiom.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "ccap/info/drift_hmm.hpp"

namespace ccap::info {

/// Minimal std::allocator replacement with a fixed alignment. The batched
/// SoA engine pads its lane stride to the SIMD vector width; aligning the
/// arena base to a cache line (64 bytes covers every path up to AVX-512)
/// makes every padded column start vector-aligned.
template <typename T, std::size_t Align>
struct AlignedAllocator {
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT(google-explicit-constructor)

    [[nodiscard]] T* allocate(std::size_t n) {
        return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Align});
    }
    bool operator==(const AlignedAllocator&) const noexcept { return true; }
    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Align>;
    };
};

template <typename T>
using ArenaVector = std::vector<T, AlignedAllocator<T, 64>>;

/// Grow-only flat arenas backing trellis passes. request() methods never
/// shrink and never zero — each pass initializes exactly the cells it
/// reads. Reuse across calls is the whole point; share across threads and
/// you have a race.
class LatticeWorkspace {
public:
    LatticeWorkspace() = default;
    LatticeWorkspace(const LatticeWorkspace&) = delete;
    LatticeWorkspace& operator=(const LatticeWorkspace&) = delete;

    [[nodiscard]] std::span<double> alpha(std::size_t cells) { return grab(alpha_, cells); }
    [[nodiscard]] std::span<double> beta(std::size_t cells) { return grab(beta_, cells); }
    [[nodiscard]] std::span<double> scales_a(std::size_t rows) { return grab(scale_a_, rows); }
    [[nodiscard]] std::span<double> scales_b(std::size_t rows) { return grab(scale_b_, rows); }
    /// Interleaved per-row band bounds: [2j] = lo, [2j+1] = hi (lo > hi
    /// means the row is empty/dead).
    [[nodiscard]] std::span<int> bands(std::size_t ints) { return grab(band_, ints); }
    [[nodiscard]] std::span<double> trail(std::size_t cells) { return grab(trail_, cells); }
    [[nodiscard]] std::span<double> scratch(std::size_t cells) { return grab(scr1_, cells); }
    [[nodiscard]] std::span<double> scratch2(std::size_t cells) { return grab(scr2_, cells); }
    [[nodiscard]] std::span<double> scratch3(std::size_t cells) { return grab(scr3_, cells); }
    /// Integer DP cells (edit-distance trellises).
    [[nodiscard]] std::span<std::uint32_t> cells_u32(std::size_t cells) {
        return grab(u32_, cells);
    }

    // Arenas for the batched structure-of-arrays engine (batch_lattice.hpp).
    /// Small per-lane double buffers (norms, pruned mass, slack, ...).
    [[nodiscard]] std::span<double> lane_doubles(std::size_t cells) {
        return grab(lane_d_, cells);
    }
    /// Small per-lane integer buffers (received lengths, alive flags).
    [[nodiscard]] std::span<long long> lane_longs(std::size_t cells) {
        return grab(lane_ll_, cells);
    }
    /// SoA-packed received symbols, [position][lane], padded per lane.
    [[nodiscard]] std::span<std::uint8_t> rx_bytes(std::size_t cells) {
        return grab(rx_u8_, cells);
    }
    /// SoA-packed transmitted symbols, [position][lane].
    [[nodiscard]] std::span<std::uint8_t> tx_bytes(std::size_t cells) {
        return grab(tx_u8_, cells);
    }
    /// Per-lane weight/emission planes for the per-lane-parameter engine
    /// mode: [run | trail-step | table-entry][lane] SoA rows, one value per
    /// lane instead of one shared scalar.
    [[nodiscard]] std::span<double> weight_planes(std::size_t cells) {
        return grab(wplanes_, cells);
    }

private:
    template <typename Vec>
    static std::span<typename Vec::value_type> grab(Vec& v, std::size_t n) {
        if (v.size() < n) v.resize(n);
        return {v.data(), n};
    }

    ArenaVector<double> alpha_, beta_, scale_a_, scale_b_, trail_, scr1_, scr2_, scr3_, lane_d_,
        wplanes_;
    ArenaVector<int> band_;
    ArenaVector<long long> lane_ll_;
    ArenaVector<std::uint32_t> u32_;
    ArenaVector<std::uint8_t> rx_u8_, tx_u8_;
};

/// RAII lease on a thread-local LatticeWorkspace. Acquisition pops from a
/// per-thread free list (or allocates the first time a thread needs one),
/// so nested leases on the same thread get distinct workspaces and pool
/// workers each converge on their own steady-state arena.
class ScopedWorkspace {
public:
    ScopedWorkspace();
    ~ScopedWorkspace();
    ScopedWorkspace(const ScopedWorkspace&) = delete;
    ScopedWorkspace& operator=(const ScopedWorkspace&) = delete;

    [[nodiscard]] LatticeWorkspace& get() noexcept { return *ws_; }
    operator LatticeWorkspace&() noexcept { return *ws_; }  // NOLINT(google-explicit-constructor)

private:
    std::unique_ptr<LatticeWorkspace> ws_;
};

/// Immutable per-parameter lookup tables shared by every lattice pass.
/// del_w[g] / tx_w[g] pre-fold the insertion-run power into the deletion /
/// transmission branch weights; the products equal the seed code's inline
/// expressions bit for bit.
struct DriftTables {
    double p_t = 0.0;              ///< 1 - p_d - p_i
    double inv_m = 0.0;            ///< 1 / alphabet
    std::vector<double> emit_tab;  ///< M x M substitution table, row-major [r][s]
    std::vector<double> ins_pow;   ///< (p_i / M)^g for g = 0..max_insert_run
    std::vector<double> del_w;     ///< ins_pow[g] * p_d
    std::vector<double> tx_w;      ///< ins_pow[g] * p_t

    explicit DriftTables(const DriftParams& p);
};

class LatticeEngine {
public:
    /// Binds parameters, tables and a workspace to one (received, tx_len)
    /// call. Allocation-free once the workspace has warmed up.
    LatticeEngine(const DriftParams& params, const DriftTables& tables,
                  std::span<const std::uint8_t> received, std::size_t tx_len,
                  LatticeWorkspace& ws)
        : p_(&params),
          t_(&tables),
          rx_(received),
          n_(tx_len),
          m_(received.size()),
          d_max_(params.max_drift),
          width_(static_cast<std::size_t>(2 * params.max_drift + 1)) {
        trail_ = ws.trail(m_ + 1);
        trail_[0] = 1.0;
        for (std::size_t k = 1; k <= m_; ++k) trail_[k] = trail_[k - 1] * params.p_i * t_->inv_m;
        alpha_ = ws.alpha((n_ + 1) * width_);
        beta_ = ws.beta((n_ + 1) * width_);
        scale_a_ = ws.scales_a(n_ + 1);
        scale_b_ = ws.scales_b(n_ + 1);
        band_ = ws.bands(2 * (n_ + 1));
    }

    [[nodiscard]] std::size_t n() const noexcept { return n_; }
    [[nodiscard]] std::size_t m() const noexcept { return m_; }
    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    [[nodiscard]] int d_max() const noexcept { return d_max_; }
    [[nodiscard]] std::size_t idx(int d) const noexcept {
        return static_cast<std::size_t>(d + d_max_);
    }

    /// P(received symbol r | transmitted symbol s): emission-table lookup.
    [[nodiscard]] double emit(std::uint8_t r, std::uint8_t s) const noexcept {
        return t_->emit_tab[static_cast<std::size_t>(r) * p_->alphabet + s];
    }

    /// Emission averaged over a prior q(s) for received symbol r.
    [[nodiscard]] double emit_prior(std::uint8_t r, std::span<const double> q) const noexcept {
        const double* row = t_->emit_tab.data() + static_cast<std::size_t>(r) * p_->alphabet;
        double e = 0.0;
        for (std::size_t s = 0; s < q.size(); ++s) e += q[s] * row[s];
        return e;
    }

    /// Trailing-insertion factor at final drift d (exact, no truncation).
    [[nodiscard]] double trailing(int d) const noexcept {
        const long long k = static_cast<long long>(m_) - (static_cast<long long>(n_) + d);
        if (k < 0) return 0.0;
        return trail_[static_cast<std::size_t>(k)] * (1.0 - p_->p_i);
    }

    /// Drift window of row j permitted by the clamp and the received
    /// length: d in [max(-d_max, -j), min(d_max, m - j)]. Returns false
    /// when the window is empty.
    bool valid_window(std::size_t j, int& lo, int& hi) const noexcept {
        const long long vlo =
            std::max<long long>(-d_max_, -static_cast<long long>(j));
        const long long vhi = std::min<long long>(
            d_max_, static_cast<long long>(m_) - static_cast<long long>(j));
        if (vlo > vhi) return false;
        lo = static_cast<int>(vlo);
        hi = static_cast<int>(vhi);
        return true;
    }

    // Flat row accessors (valid after the corresponding pass).
    [[nodiscard]] const double* alpha_row(std::size_t j) const noexcept {
        return alpha_.data() + j * width_;
    }
    [[nodiscard]] const double* beta_row(std::size_t j) const noexcept {
        return beta_.data() + j * width_;
    }
    [[nodiscard]] double alpha_scale(std::size_t j) const noexcept { return scale_a_[j]; }
    [[nodiscard]] double beta_scale(std::size_t j) const noexcept { return scale_b_[j]; }
    [[nodiscard]] int band_lo(std::size_t j) const noexcept { return band_[2 * j]; }
    [[nodiscard]] int band_hi(std::size_t j) const noexcept { return band_[2 * j + 1]; }
    [[nodiscard]] bool dead() const noexcept { return dead_; }

    /// Window the backward pass (and beta reads) sweep for row j. In
    /// adaptive-band mode (while the forward lattice is alive) this is the
    /// forward band. In exact mode — and after the forward pass died — it
    /// is the full valid window: the seed's backward sweep is independent
    /// of the forward pass, and near the lattice edges the forward band is
    /// narrower than the valid window (row j reaches at most
    /// j * (max_insert_run - 1) above drift 0), so normalizing beta rows
    /// over the forward band would perturb posteriors by a few ulps.
    bool beta_window(std::size_t j, int& lo, int& hi) const noexcept {
        if (banded_ && !dead_) {
            lo = band_lo(j);
            hi = band_hi(j);
            return lo <= hi;
        }
        return valid_window(j, lo, hi);
    }

    /// Forward pass. emit_at(j, r) must return the emission factor for
    /// received symbol r at transmitted position j (0-based): a table
    /// lookup for point priors, a prior-weighted dot product otherwise.
    /// band_eps = 0 sweeps the full valid window of every row and is
    /// bit-identical to the seed implementation.
    template <typename EmitFn>
    void forward(EmitFn&& emit_at, double band_eps) {
        slack_rel_ = 0.0;
        dead_ = false;
        banded_ = band_eps > 0.0;
        double* row0 = alpha_.data();
        row0[idx(0)] = 1.0;
        scale_a_[0] = 0.0;
        band_[0] = 0;
        band_[1] = 0;

        const int run = p_->max_insert_run;
        for (std::size_t j = 1; j <= n_; ++j) {
            const int plo = band_lo(j - 1), phi = band_hi(j - 1);
            int clo = 0, chi = -1;
            if (!valid_window(j, clo, chi) || plo > phi) return kill_from(j);
            clo = std::max(clo, plo - 1);
            chi = std::min(chi, phi + run - 1);
            if (clo > chi) return kill_from(j);

            double* cur = alpha_.data() + j * width_;
            const double* prev = alpha_.data() + (j - 1) * width_;
            for (int d = clo; d <= chi; ++d) cur[idx(d)] = 0.0;
            for (int dp = plo; dp <= phi; ++dp) {
                const double ap = prev[idx(dp)];
                if (ap == 0.0) continue;
                // Received symbols consumed before this step: r0 = j-1+dp.
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                const int glo = std::max(0, clo - dp + 1);
                const int ghi = std::min(run, chi - dp + 1);
                double* base = cur + idx(dp - 1);  // cell for g = 0 (d = dp - 1)
                int g = glo;
                if (g == 0 && g <= ghi) {
                    base[0] += ap * t_->del_w[0];
                    g = 1;
                }
                for (; g <= ghi; ++g) {
                    const double w =
                        t_->del_w[g] + t_->tx_w[g - 1] * emit_at(j - 1, rx_[r0 + g - 1]);
                    base[g] += ap * w;
                }
            }

            double pruned = 0.0;
            if (band_eps > 0.0) {
                double row_max = 0.0;
                for (int d = clo; d <= chi; ++d) row_max = std::max(row_max, cur[idx(d)]);
                const double thresh = band_eps * row_max;
                while (clo <= chi && cur[idx(clo)] < thresh) {
                    pruned += cur[idx(clo)];
                    cur[idx(clo)] = 0.0;
                    ++clo;
                }
                while (chi >= clo && cur[idx(chi)] < thresh) {
                    pruned += cur[idx(chi)];
                    cur[idx(chi)] = 0.0;
                    --chi;
                }
            }
            double norm = 0.0;
            for (int d = clo; d <= chi; ++d) norm += cur[idx(d)];
            if (!(norm > 0.0)) {
                slack_rel_ += pruned;
                return kill_from(j);
            }
            for (int d = clo; d <= chi; ++d) cur[idx(d)] /= norm;
            slack_rel_ = (slack_rel_ + pruned) / norm;
            scale_a_[j] = scale_a_[j - 1] + std::log2(norm);
            band_[2 * j] = clo;
            band_[2 * j + 1] = chi;
        }
    }

    /// Backward pass, symmetric to forward, swept over beta_window().
    template <typename EmitFn>
    void backward(EmitFn&& emit_at) {
        constexpr double kNegInf = -std::numeric_limits<double>::infinity();
        const int run = p_->max_insert_run;
        {
            double* last = beta_.data() + n_ * width_;
            int lo = 0, hi = -1;
            double norm = 0.0;
            if (beta_window(n_, lo, hi)) {
                for (int d = lo; d <= hi; ++d) {
                    last[idx(d)] = trailing(d);
                    norm += last[idx(d)];
                }
            }
            if (norm > 0.0) {
                for (int d = lo; d <= hi; ++d) last[idx(d)] /= norm;
                scale_b_[n_] = std::log2(norm);
            } else {
                scale_b_[n_] = kNegInf;
            }
        }
        for (std::size_t j = n_; j-- > 0;) {
            double* cur = beta_.data() + j * width_;
            const double* next = beta_.data() + (j + 1) * width_;
            int lo = 0, hi = -1;
            if (!beta_window(j, lo, hi)) {
                scale_b_[j] = kNegInf;
                continue;
            }
            int nlo = 0, nhi = -1;
            const bool next_live = beta_window(j + 1, nlo, nhi);
            double norm = 0.0;
            for (int dp = lo; dp <= hi; ++dp) {
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j) + dp);
                double acc = 0.0;
                if (next_live) {
                    const int glo = std::max(0, nlo - dp + 1);
                    const int ghi = std::min(run, nhi - dp + 1);
                    const double* nbase = next + idx(dp - 1);
                    int g = glo;
                    if (g == 0 && g <= ghi) {
                        acc += t_->del_w[0] * nbase[0];
                        g = 1;
                    }
                    for (; g <= ghi; ++g) {
                        const double w =
                            t_->del_w[g] + t_->tx_w[g - 1] * emit_at(j, rx_[r0 + g - 1]);
                        acc += w * nbase[g];
                    }
                }
                cur[idx(dp)] = acc;
                norm += acc;
            }
            if (!(norm > 0.0)) {
                scale_b_[j] = kNegInf;
                continue;
            }
            for (int dp = lo; dp <= hi; ++dp) cur[idx(dp)] /= norm;
            scale_b_[j] = scale_b_[j + 1] + std::log2(norm);
        }
    }

    /// Unnormalized closing mass: sum over the final band of alpha times
    /// the trailing-insertion factor. Zero when the lattice died.
    [[nodiscard]] double tail() const noexcept {
        double t = 0.0;
        const double* last = alpha_.data() + n_ * width_;
        for (int d = band_lo(n_); d <= band_hi(n_); ++d) t += last[idx(d)] * trailing(d);
        return t;
    }

    /// log2 evidence and the certified band slack after forward(). With
    /// band_eps = 0 the slack is exactly 0; when the banded lattice died
    /// while exact mass may survive, the slack is +infinity.
    [[nodiscard]] BandedEvidence evidence() const noexcept {
        constexpr double kInf = std::numeric_limits<double>::infinity();
        BandedEvidence out;
        const double t = tail();
        if (dead_ || !(t > 0.0) || scale_a_[n_] == -kInf) {
            out.log2_evidence = -kInf;
            out.log2_slack = slack_rel_ > 0.0 ? kInf : 0.0;
            return out;
        }
        out.log2_evidence = scale_a_[n_] + std::log2(t);
        out.log2_slack = slack_rel_ > 0.0 ? std::log2(1.0 + slack_rel_ / t) : 0.0;
        return out;
    }

    /// Pruned mass accumulated so far, in units of the current forward
    /// scale (see THEORY.md section 11). Exposed for the joint Markov pass.
    [[nodiscard]] double slack_rel() const noexcept { return slack_rel_; }

private:
    void kill_from(std::size_t j) noexcept {
        constexpr double kNegInf = -std::numeric_limits<double>::infinity();
        dead_ = true;
        for (std::size_t k = j; k <= n_; ++k) {
            scale_a_[k] = kNegInf;
            band_[2 * k] = 1;
            band_[2 * k + 1] = 0;
        }
    }

    const DriftParams* p_;
    const DriftTables* t_;
    std::span<const std::uint8_t> rx_;
    std::size_t n_;
    std::size_t m_;
    int d_max_;
    std::size_t width_;
    std::span<double> trail_;
    std::span<double> alpha_, beta_, scale_a_, scale_b_;
    std::span<int> band_;
    double slack_rel_ = 0.0;
    bool dead_ = false;
    bool banded_ = false;
};

}  // namespace ccap::info
