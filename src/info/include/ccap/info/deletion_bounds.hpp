// Capacity bounds for channels with synchronization errors (no feedback).
//
// The paper's Section 4.1 observes that the exact capacity of a
// deletion-insertion channel is unknown (Dobrushin 1967 proved the coding
// theorem; Vvedenskaya & Dobrushin 1968 and Dolgopolov 1990 computed
// numerical bounds). This module provides:
//
//   * the trivial erasure upper bound         C <= N (1 - P_d)  (Theorem 1),
//   * Gallager's iid lower bound for the binary deletion channel
//                                             C >= 1 - H(p_d),
//   * the Kanoria-Montanari small-p asymptotic expansion (informative only),
//   * a Monte-Carlo *achievable-rate* estimator for the general
//     deletion-insertion-substitution channel: for blocks of iid uniform
//     inputs, I(X;Y)/n is computed exactly per sampled block via the drift
//     lattice (log2 P(Y|X) by a point-prior forward pass, log2 P(Y) by a
//     uniform-prior forward pass), then averaged. This is the modern
//     equivalent of the Vvedenskaya-Dobrushin computation the paper cites.
#pragma once

#include <cstddef>

#include "ccap/info/drift_hmm.hpp"
#include "ccap/util/rng.hpp"
#include "ccap/util/stats.hpp"

namespace ccap::info {

/// Erasure-channel upper bound on any deletion(-insertion) channel with
/// symbol alphabet 2^bits_per_symbol: bits_per_symbol * (1 - p_d).
[[nodiscard]] double erasure_upper_bound(double p_d, unsigned bits_per_symbol = 1);

/// Gallager's lower bound for the binary deletion channel:
/// max(0, 1 - H(p)) for p <= 1/2 (0 beyond, where the argument breaks).
[[nodiscard]] double gallager_deletion_lower_bound(double p_d);

/// Mitzenmacher & Drinea's universal lower bound C >= (1 - p)/9, valid for
/// every deletion rate (the best simple bound in the p > 1/2 regime).
[[nodiscard]] double mitzenmacher_drinea_lower_bound(double p_d);

/// Kanoria-Montanari small-deletion-rate expansion for the binary deletion
/// channel: C ~ 1 + p*log2(p) - A*p, A ~= 1.15416377. Only meaningful for
/// small p (<~ 0.1); clamped at 0.
[[nodiscard]] double small_p_deletion_expansion(double p_d);

/// Sample a transmission through the Definition-1 generative channel
/// (geometric insertion runs, deletions, substitutions, trailing inserts).
/// Matches DriftHmm's model exactly (without truncation).
[[nodiscard]] std::vector<std::uint8_t> simulate_drift_channel(
    std::span<const std::uint8_t> transmitted, const DriftParams& params, util::Rng& rng);

struct MiEstimate {
    double rate = 0.0;        ///< mean achievable rate, bits per input symbol
    double sem = 0.0;         ///< standard error of the mean
    std::size_t blocks = 0;   ///< blocks actually spent (averaged)
    std::size_t block_len = 0;
    /// Adaptive mode (McOptions::target_sem > 0): the SEM target was met
    /// before the block cap. Always true in fixed mode, where no target
    /// exists.
    bool converged = true;
};

/// How the Monte-Carlo estimators shape their work across the batched
/// lattice and the thread pool.
enum class McTiling {
    /// Tile blocks as lanes x threads: each worker advances a tile of
    /// resolved_mc_batch() blocks through the lockstep SIMD engine
    /// (batch_lattice.hpp), and tiles are distributed over the pool.
    lanes_by_threads,
    /// One block per lattice sweep (scalar LatticeEngine); threads still
    /// split blocks. Equivalent to batch = 1. Reference/debugging path.
    scalar,
};

/// Knobs shared by the Monte-Carlo mutual-information estimators.
///
/// Parallelism contract: the estimators consume exactly one draw from the
/// caller's Rng to form a root seed, then give every block its own
/// substream (util::substream_seed) and fold the per-block samples in
/// block order. The returned MiEstimate is therefore bit-identical for
/// every `threads` value — threads only changes wall-clock time.
struct McOptions {
    std::size_t block_len = 64;   ///< symbols per sampled block
    std::size_t num_blocks = 16;  ///< independent blocks to average
    unsigned threads = 0;         ///< worker cap; 0 = hardware concurrency, 1 = serial
    /// When > 0, overrides DriftParams::band_eps for the lattice passes:
    /// adaptive-band pruning with a certified slack (lattice_engine.hpp).
    /// Banding only lowers per-block evidences, so the estimate keeps its
    /// lower-bound semantics. 0 keeps the params' own setting.
    double band_eps = 0.0;
    /// Lattice lanes advanced in lockstep per Monte-Carlo tile
    /// (batch_lattice.hpp): each thread's blocks are fed through the
    /// batched structure-of-arrays engine in tiles of this many blocks.
    /// 0 picks a cache-friendly tile automatically; 1 forces the scalar
    /// one-block-at-a-time path. Block seeding is per block, not per
    /// tile, and batched lanes are bit-identical to scalar sweeps at
    /// band_eps = 0, so the estimate does not depend on this knob (with
    /// band_eps > 0 the shared union band may prune slightly less than
    /// scalar banding — never more, so the lower bound stands).
    std::size_t batch = 0;
    /// Work-shaping policy; McTiling::scalar forces batch = 1 regardless
    /// of `batch` (handy for A/B timing without touching the lane knob).
    McTiling tiling = McTiling::lanes_by_threads;
    /// Adaptive precision. 0 (default) = fixed mode: exactly num_blocks
    /// blocks run, bit-identical to the historical behavior. > 0: blocks
    /// run in rounds of num_blocks (mc_round_blocks), and after each round
    /// the estimator stops once the fold-order SEM of every sample so far
    /// is <= target_sem, or once mc_block_cap() blocks were spent. The SEM
    /// is only inspected at round boundaries of the deterministic
    /// compensated fold (util::CompensatedStats), so the stopping time —
    /// and hence the whole MiEstimate — is a pure function of (root seed,
    /// options, params): bit-identical at every thread count and batch
    /// size, exactly like the fixed mode. (Caveat shared with `batch`:
    /// with band_eps > 0, round and grant boundaries can split a lockstep
    /// union-band tile, which may prune slightly less than one fused tile
    /// — never more, so the lower bound stands.)
    double target_sem = 0.0;
    /// Adaptive-mode total block cap; 0 picks 64 rounds' worth
    /// (64 * mc_round_blocks). Ignored in fixed mode.
    std::size_t max_blocks = 0;
    /// Shared block budget for iid_mutual_information_rate_points in
    /// adaptive mode: 0 (default) = mc_block_cap() per point — never
    /// binding, so every point's spend is decided by its own variance
    /// alone. A smaller budget makes the cross-point scheduler allocate
    /// top-up rounds Neyman-style: proportionally to each point's
    /// predicted block deficit (sd / target_sem)^2, i.e. where the
    /// variance actually is. In CRN mode (point_tile > 0) the budget is
    /// spent in tile order, whole rounds at a time, so a binding budget
    /// couples spends to the tile partition — leave it 0 for the
    /// tile-invariance guarantee. Ignored by the single-point estimators.
    std::size_t point_budget = 0;
    /// Common-random-numbers (CRN) point tiling for
    /// iid_mutual_information_rate_points. 0 (default) = independent
    /// streams: every point draws its own blocks from its own seed — the
    /// historical behavior, bit for bit. kMcPointTileAuto picks a
    /// SIMD-width-multiple tile automatically; N > 0 groups the point span
    /// into tiles of N points that share one variate tape per block: each
    /// block's transmitted symbols and channel-event uniforms are drawn
    /// once from the per-block substream and realized under every point's
    /// parameters, and the whole tile rides one per-lane-parameter lattice
    /// sweep (batch_lattice.hpp). Sampling cost is paid once per block
    /// instead of once per (point, block), SIMD lanes stay full even at
    /// small per-point batches, and adjacent points' estimates become
    /// positively correlated — shrinking the variance of their differences
    /// (PointSweepReport; docs/THEORY.md section 15). The shared tape is
    /// rooted at the FIRST point's seed (see crn_root); every point keeps
    /// its exact marginal block law, and estimates are bit-identical at
    /// every thread count, batch and point_tile width (band_eps = 0 and
    /// non-binding point_budget; with banding the shared union band
    /// carries the same tile caveat as `batch`). Requires all points to
    /// share alphabet, max_drift and max_insert_run. Ignored by the
    /// single-point estimators.
    std::size_t point_tile = 0;
    /// Explicit root for the CRN variate tapes. 0 (default) derives the
    /// root from the first point's seed, which ties every sample to the
    /// evaluated span: fine for one-shot sweeps, wrong for memoization,
    /// where the same grid node may be warmed in different batches.
    /// A nonzero root makes each (block, point) sample a pure function of
    /// (crn_root, block index, point params) — independent of which other
    /// points share the call — so CapacityCache derives one from its
    /// config seed and gets batch-composition-independent node values
    /// (bulk ensure(), single-node at() and the naive per-flow path all
    /// agree bit for bit). Ignored when point_tile = 0.
    std::uint64_t crn_root = 0;
};

/// McOptions::point_tile sentinel: choose the CRN tile width automatically
/// (a small multiple of the active SIMD vector width).
inline constexpr std::size_t kMcPointTileAuto = static_cast<std::size_t>(-1);

/// The CRN tile width iid_mutual_information_rate_points actually uses for
/// a span of `num_points` points: 0 when opts.point_tile is 0 (independent
/// streams); otherwise opts.point_tile — auto resolves to a vector-width
/// multiple — clamped to num_points. Tiny workloads stay sub-vector-width
/// rather than padding up: the masked-tail kernels (lattice_simd.hpp) make
/// small sweeps pay only for live lanes.
[[nodiscard]] std::size_t resolved_point_tile(const McOptions& opts, std::size_t num_points);

/// Blocks per adaptive round: num_blocks, but at least 2 so a SEM exists
/// after the pilot round.
[[nodiscard]] std::size_t mc_round_blocks(const McOptions& opts);

/// Total blocks the estimator may spend: num_blocks in fixed mode
/// (target_sem == 0); max_blocks (0 -> 64 rounds) in adaptive mode, never
/// below 2.
[[nodiscard]] std::size_t mc_block_cap(const McOptions& opts);

/// The lane count the estimators actually use for `opts`: opts.batch, or
/// auto-resolved (0) ISA-aware — a multiple of the active SIMD vector
/// width (util::active_simd_path()) sized so the hot rows of a lockstep
/// step stay L1-resident — then clamped to opts.num_blocks. Never a
/// function of opts.threads (the thread-invariance contract above). 1
/// whenever opts.tiling is McTiling::scalar.
[[nodiscard]] std::size_t resolved_mc_batch(const McOptions& opts, const DriftParams& params);

/// Monte-Carlo achievable rate of the deletion-insertion(-substitution)
/// channel with iid uniform inputs: E[log2 P(Y|X) - log2 P(Y)] / block_len.
/// This lower-bounds the true (no-feedback) capacity up to O(1/block_len)
/// edge effects and the lattice truncations (both only push the estimate
/// down). Deterministic given `rng` state and invariant in opts.threads.
[[nodiscard]] MiEstimate iid_mutual_information_rate(const DriftParams& params,
                                                     const McOptions& opts, util::Rng& rng);

/// Back-compatible convenience overload; equivalent to McOptions{block_len,
/// num_blocks, 0} (parallel over all hardware threads).
[[nodiscard]] MiEstimate iid_mutual_information_rate(const DriftParams& params,
                                                     std::size_t block_len,
                                                     std::size_t num_blocks, util::Rng& rng);

/// One (parameters, seed) point of a batched capacity evaluation. The seed
/// is part of the point — not drawn from a shared generator — so a point's
/// estimate is a pure function of the point alone: independent of its
/// position in the span, of which other points ride along, and of the
/// thread count. The contention engine exploits this to make cached and
/// uncached evaluation bit-identical (capacity_cache.hpp).
struct CapacityPoint {
    DriftParams params;
    std::uint64_t seed = 0;
};

/// Evaluate iid_mutual_information_rate at many parameter points: the point
/// axis is parallelized over opts.threads, each point runs serially inside
/// (its blocks still advance through the SIMD lockstep engine in tiles of
/// resolved_mc_batch lanes). In fixed mode (target_sem == 0) out[i] is
/// bit-identical to
///   Rng r(points[i].seed);
///   iid_mutual_information_rate(points[i].params, {opts, threads = 1}, r);
///
/// Adaptive mode (target_sem > 0) runs a two-stage variance-aware
/// scheduler: a pilot round (mc_round_blocks blocks) at every point, then
/// repeated Neyman-style allocation passes that grant top-up rounds where
/// the per-point variance says they are needed — each needy point's
/// predicted deficit is ceil((sd_i / target_sem)^2) - spent_i blocks,
/// granted outright while the shared budget (McOptions::point_budget)
/// lasts and scaled proportionally when it does not. All decisions are
/// functions of the deterministic per-point folds, so the spent counts and
/// estimates are bit-identical at every thread count; and because block
/// samples depend only on (point, global block index), out[i] is
/// bit-identical to a standalone fixed-mode evaluation of the same point
/// over the same number of blocks:
///   Rng r(points[i].seed);
///   iid_mutual_information_rate(points[i].params,
///                               {opts, num_blocks = out[i].blocks,
///                                target_sem = 0, threads = 1}, r);
/// (at band_eps = 0; see the McOptions::target_sem caveat).
[[nodiscard]] std::vector<MiEstimate> iid_mutual_information_rate_points(
    std::span<const CapacityPoint> points, const McOptions& opts);

/// Optional diagnostics of a point sweep (the 3-argument overload below).
struct PointSweepReport {
    /// Resolved CRN tile width (resolved_point_tile; 0 = independent).
    std::size_t point_tile = 0;
    /// adjacent_diff_sem[i] = standard error of (estimate_i - estimate_{i+1})
    /// for adjacent points of the span (empty when fewer than 2 points).
    /// Under CRN coupling, points of one tile share their blocks, so the
    /// difference SEM is measured over the paired per-block samples —
    /// positively correlated samples push it far below the independent
    /// combination sqrt(sem_i^2 + sem_j^2), which is what cross-tile pairs
    /// (and every pair in independent mode) report.
    std::vector<double> adjacent_diff_sem;
};

/// iid_mutual_information_rate_points with sweep diagnostics. `report` may
/// be null (then identical to the 2-argument overload, which forwards
/// here). McOptions::point_tile selects independent streams (0) or
/// common-random-numbers point tiles (see McOptions).
[[nodiscard]] std::vector<MiEstimate> iid_mutual_information_rate_points(
    std::span<const CapacityPoint> points, const McOptions& opts, PointSweepReport* report);

/// Sample a sequence from a first-order Markov source.
[[nodiscard]] std::vector<std::uint8_t> simulate_markov_source(const MarkovSource& source,
                                                               unsigned alphabet,
                                                               std::size_t length,
                                                               util::Rng& rng);

/// Monte-Carlo achievable rate with a first-order Markov input process —
/// the Davey-MacKay observation that run-length-biased inputs beat iid on
/// deletion channels, quantified. The marginal log2 P(Y) runs over the
/// joint (drift, previous-symbol) lattice. With MarkovSource::uniform this
/// reduces (statistically) to iid_mutual_information_rate. Same seeding
/// and threads contract as the iid estimator (see McOptions).
[[nodiscard]] MiEstimate markov_mutual_information_rate(const DriftParams& params,
                                                        const MarkovSource& source,
                                                        const McOptions& opts, util::Rng& rng);

/// Back-compatible convenience overload; equivalent to McOptions{block_len,
/// num_blocks, 0} (parallel over all hardware threads).
[[nodiscard]] MiEstimate markov_mutual_information_rate(const DriftParams& params,
                                                        const MarkovSource& source,
                                                        std::size_t block_len,
                                                        std::size_t num_blocks,
                                                        util::Rng& rng);

}  // namespace ccap::info
