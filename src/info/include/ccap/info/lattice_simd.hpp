// Runtime-dispatched SIMD lane kernels for the batched lattice engine.
//
// BatchLatticeEngine (batch_lattice.hpp) and the candidate-batched segment
// propagation (drift_hmm.cpp) spend essentially all of their time in seven
// elementwise loops over the lane dimension of their structure-of-arrays
// rows (plus two fused insert-run sweeps over several such rows at once).
// Autovectorization of those loops tops out at the baseline ISA
// (SSE2 on x86-64: two doubles per op); this header names them as a
// function-pointer table with one hand-written implementation per
// instruction set — scalar, NEON, AVX2, AVX-512 — each compiled in its own
// translation unit with exactly its own -m flags (src/info/CMakeLists.txt)
// and selected once at startup by ccap::util::active_simd_path().
//
// Bit-identity contract: every kernel is elementwise — lane l of the
// output depends only on lane l of the inputs, through the *same* IEEE-754
// operation sequence as the scalar reference loop. The vector TUs are
// compiled with -ffp-contract=off and use separate multiply/add intrinsics
// (never FMA), and the two select kernels pick an exact table entry (their
// selector bytes are validated symbols in {0, 1}, for which the scalar
// arithmetic select e0*(1-s) + e1*s IS the selected entry bit for bit).
// Vectorizing across lanes therefore changes no result: the dispatch
// matrix test (tests/info_simd_dispatch_test.cpp) asserts bit-identity of
// every path against the scalar LatticeEngine at band_eps = 0.
//
// Callers with lane counts >= vector_doubles pad to a multiple of it and
// align the backing arenas (lattice_engine.hpp), so the hot calls run full
// vectors only. Ragged tails — sub-width batches and unpadded result rows
// — are handled inside every kernel: the AVX2/AVX-512 TUs finish them with
// one masked vector op (no reads or writes past L, so a row may end flush
// against the end of an allocation), the scalar/NEON TUs with a scalar
// loop; both orders are elementwise and bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ccap/util/cpu_features.hpp"

namespace ccap::info {

/// Elementwise lane kernels. All pointers are non-null; `L` is the lane
/// count (any value — implementations handle non-multiple tails).
struct LaneKernels {
    /// dst[l] += src[l] * w
    void (*axpy)(double* dst, const double* src, double w, std::size_t L);
    /// dst[l] += src[l] * (dw + tw * e[l])
    void (*fma_weighted)(double* dst, const double* src, double dw, double tw,
                         const double* e, std::size_t L);
    /// acc[l] += src[l]
    void (*accumulate)(double* acc, const double* src, std::size_t L);
    /// acc[l] = max(acc[l], src[l])   (non-negative finite inputs)
    void (*maximum)(double* acc, const double* src, std::size_t L);
    /// dst[l] /= norm[l]
    void (*divide)(double* dst, const double* norm, std::size_t L);
    /// ed[l] = sel[l] ? v1 : v0        (selector bytes in {0, 1})
    void (*select_const)(double* ed, const std::uint8_t* sel, double v0, double v1,
                         std::size_t L);
    /// ed[l] = sel[l] ? e1[l] : e0[l]  (selector bytes in {0, 1})
    void (*select_lanes)(double* ed, const std::uint8_t* sel, const double* e0,
                         const double* e1, std::size_t L);
    /// For g in [0, runs): dst[g*L + l] += src[l] * (dw[g] + tw[g] * e[g*L + l]).
    /// The forward insert-run sweep fused into one call: one source row
    /// scattered into `runs` consecutive destination planes, so src stays in
    /// registers across the run instead of being reloaded per fma_weighted
    /// call. Each destination cell is touched exactly once — per-lane results
    /// are bitwise those of `runs` separate fma_weighted calls.
    void (*fma_run)(double* dst, const double* src, const double* dw, const double* tw,
                    const double* e, std::size_t runs, std::size_t L);
    /// For g ascending in [0, runs): acc[l] += src[g*L + l] * (dw[g] + tw[g] * e[g*L + l]).
    /// The backward insert-run sweep fused: `runs` source planes gathered
    /// into one accumulator row (acc stays in registers). The per-lane add
    /// order is g-ascending, exactly the unfused call sequence.
    void (*fma_acc_run)(double* acc, const double* src, const double* dw,
                        const double* tw, const double* e, std::size_t runs,
                        std::size_t L);
    /// Destination-major forward propagation of ONE destination column:
    ///   a[l] = 0; for i in [0, cnt): a[l] += src[i*L + l] * (dw[-i] + tw[-i] * e[l]);
    ///   if (src_del) a[l] += src_del[l] * w_del;  dst[l] = a[l];
    /// Source planes ascend while the weight arrays are walked BACKWARD from
    /// their given origin (an ascending source drift reaches a fixed
    /// destination with a descending insert-run length); the optional
    /// src_del term is the run-0 pure-deletion contribution from the
    /// next-higher drift, which carries no emission factor and lands last —
    /// the exact source order (and hence bitwise result) of the scatter
    /// formulation, with the accumulator held in registers and a single
    /// store per cell. `e` must be readable for L doubles even when cnt is 0
    /// (the values are only consumed when cnt > 0).
    void (*fma_dest_run)(double* dst, const double* src, const double* dw,
                         const double* tw, const double* e, const double* src_del,
                         double w_del, std::size_t cnt, std::size_t L);
    /// dst[l] += src[l] * w[l] — axpy with a per-lane weight row. The
    /// per-lane-parameter engine's run-0 pure-deletion term, where each
    /// lane carries its own channel's del_w[0].
    void (*axpy_lanes)(double* dst, const double* src, const double* w, std::size_t L);
    /// Per-lane-weight fma_acc_run: the weight arrays are [run][lane]
    /// planes with the same stride L as the data rows. For g ascending in
    /// [0, runs): acc[l] += src[g*L + l] * (dw[g*L + l] + tw[g*L + l] * e[g*L + l]).
    /// Identical operation sequence to fma_acc_run when every lane of a
    /// weight plane holds the same value.
    void (*fma_acc_run_pl)(double* acc, const double* src, const double* dw,
                           const double* tw, const double* e, std::size_t runs,
                           std::size_t L);
    /// Per-lane-weight fma_dest_run: dw/tw are [run][lane] planes walked
    /// BACKWARD by whole planes from their given origin, and the run-0
    /// deletion weight is a per-lane row:
    ///   a[l] = 0; for i in [0, cnt): a[l] += src[i*L + l] * (dw[-i*L + l]
    ///                                        + tw[-i*L + l] * e[l]);
    ///   if (src_del) a[l] += src_del[l] * w_del[l];  dst[l] = a[l];
    /// Same contracts as fma_dest_run otherwise (`e` readable for L doubles
    /// even at cnt == 0; each destination cell stored exactly once).
    void (*fma_dest_run_pl)(double* dst, const double* src, const double* dw,
                            const double* tw, const double* e, const double* src_del,
                            const double* w_del, std::size_t cnt, std::size_t L);

    const char* name;            ///< "scalar" | "neon" | "avx2" | "avx512"
    std::size_t vector_doubles;  ///< lanes per vector op (1/2/4/8)
    util::SimdPath path;
};

/// The per-ISA tables. A table whose translation unit was not compiled for
/// this target returns nullptr (the build defines CCAP_HAVE_KERNELS_* so
/// util::simd_path_available() and these stay consistent).
[[nodiscard]] const LaneKernels* lane_kernels_scalar() noexcept;
[[nodiscard]] const LaneKernels* lane_kernels_neon() noexcept;
[[nodiscard]] const LaneKernels* lane_kernels_avx2() noexcept;
[[nodiscard]] const LaneKernels* lane_kernels_avx512() noexcept;

/// Table for `path`, falling back to the best compiled path at or below it
/// (never nullptr — scalar always exists).
[[nodiscard]] const LaneKernels& lane_kernels_for(util::SimdPath path) noexcept;

/// Table for util::active_simd_path() — what the engines actually run.
[[nodiscard]] const LaneKernels& active_lane_kernels() noexcept;

}  // namespace ccap::info
