// Blahut-Arimoto capacity computation for discrete memoryless channels.
//
// This is the numerical engine behind the "traditional" covert-channel
// capacity estimates that the paper's Section 4.3 recipe corrects: compute
// the synchronous-model capacity C here, then report C * (1 - P_d).
//
// The solver implements the classic alternating maximization together with
// the per-iteration capacity sandwich (max_x D_x >= C >= sum_x p_x D_x),
// which gives a rigorous stopping criterion, plus an optional per-input-
// symbol cost vector. With costs, `capacity_per_unit_cost` maximizes
// I(X;Y)/E[cost(X)] — exactly the quantity needed for timing channels where
// symbols have unequal durations.
#pragma once

#include <optional>
#include <vector>

#include "ccap/info/dmc.hpp"

namespace ccap::info {

struct BlahutArimotoOptions {
    double tolerance = 1e-10;  ///< stop when upper-lower capacity gap < tolerance (bits)
    int max_iterations = 20000;
};

struct BlahutArimotoResult {
    double capacity = 0.0;              ///< bits per channel use
    double lower_bound = 0.0;           ///< rigorous lower bound at termination
    double upper_bound = 0.0;           ///< rigorous upper bound at termination
    std::vector<double> optimal_input;  ///< capacity-achieving input distribution
    int iterations = 0;
    bool converged = false;
};

/// Capacity of a DMC in bits/use.
[[nodiscard]] BlahutArimotoResult blahut_arimoto(const Dmc& channel,
                                                 const BlahutArimotoOptions& opts = {});

struct PerCostResult {
    double capacity_per_cost = 0.0;     ///< bits per unit cost (e.g. bits/second)
    double lambda = 0.0;                ///< optimal cost multiplier
    std::vector<double> optimal_input;  ///< maximizing distribution
    int outer_iterations = 0;
    bool converged = false;
};

/// Maximize I(X;Y) / E[cost(X)] over input distributions. `costs` must be
/// strictly positive and sized to the channel inputs. Implements the
/// standard outer bisection on lambda over the Lagrangian
/// max_p I(p) - lambda * E_p[cost], solved per-lambda by cost-tilted
/// Blahut-Arimoto. For a noiseless channel with symbol durations t_x this
/// reproduces Shannon's log(x0) timing capacity (see timing.hpp).
[[nodiscard]] PerCostResult capacity_per_unit_cost(const Dmc& channel,
                                                   std::span<const double> costs,
                                                   const BlahutArimotoOptions& opts = {});

}  // namespace ccap::info
