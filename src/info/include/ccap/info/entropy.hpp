// Elementary information measures (bits, base-2 throughout the library).
//
// These are the primitives every capacity expression in the paper is built
// from: the binary entropy H(p) of eq (5), the M-ary symmetric penalty of
// eq (3), and the mutual-information machinery behind Blahut-Arimoto and the
// empirical estimators.
#pragma once

#include <span>

#include "ccap/util/matrix.hpp"

namespace ccap::info {

/// 0*log2(0) := 0 convention, used everywhere below.
[[nodiscard]] double xlog2x(double x) noexcept;

/// Binary entropy H(p) = -p log2 p - (1-p) log2(1-p). Paper eq (5).
/// p outside [0,1] throws std::domain_error.
[[nodiscard]] double binary_entropy(double p);

/// Inverse of binary_entropy on [0, 1/2]: smallest p with H(p) = h.
/// h outside [0,1] throws.
[[nodiscard]] double binary_entropy_inverse(double h);

/// Shannon entropy of a probability vector (must be >= 0; renormalization is
/// NOT applied — a vector not summing to 1 within 1e-6 throws).
[[nodiscard]] double entropy(std::span<const double> p);

/// KL divergence D(p || q) in bits. Infinite if p puts mass where q doesn't
/// (returns +inf). Sizes must match.
[[nodiscard]] double kl_divergence(std::span<const double> p, std::span<const double> q);

/// Mutual information I(X;Y) in bits from a joint distribution
/// (rows = x, cols = y). The joint must sum to 1 within 1e-6.
[[nodiscard]] double mutual_information(const util::Matrix& joint);

/// Mutual information from an input distribution p(x) and a row-stochastic
/// channel matrix W(y|x).
[[nodiscard]] double mutual_information(std::span<const double> input, const util::Matrix& channel);

/// Entropy penalty of an M-ary symmetric channel with total error
/// probability p (error spread uniformly over the other M-1 symbols):
///   H_M(p) = H(p) + p * log2(M-1).
/// This is exactly the "alpha*Pi*log2(2^N - 1) + H(alpha*Pi)" term in the
/// paper's eq (3), with M = 2^N.
[[nodiscard]] double mary_symmetric_entropy_penalty(double p, unsigned m);

/// Capacity of the M-ary symmetric channel: log2(M) - H_M(p).
[[nodiscard]] double mary_symmetric_capacity(double p, unsigned m);

}  // namespace ccap::info
