// Millen's finite-state noiseless covert channel capacity (CSFW 1989).
//
// A covert channel is modeled as a finite-state machine: states are system
// configurations, edges are operations the sender can perform, and each edge
// takes a (possibly non-uniform) amount of time. The receiver observes the
// operation sequence perfectly (noiseless). The capacity in bits per unit
// time is log2(X0), where X0 is the unique value for which the spectral
// radius of the edge-weight matrix B(X), B_ij(X) = sum over edges i->j of
// X^{-t_edge}, equals 1. With unit edge times this reduces to the classic
// log2 of the largest eigenvalue of the adjacency matrix.
//
// This is one of the "traditional methods" whose output the paper's
// Section 4.3 recipe multiplies by (1 - P_d).
#pragma once

#include <cstddef>
#include <vector>

namespace ccap::info {

struct FsmEdge {
    std::size_t from = 0;
    std::size_t to = 0;
    double duration = 1.0;  ///< time units the operation takes; must be > 0
};

class FsmChannel {
public:
    explicit FsmChannel(std::size_t num_states);

    /// Add a usable operation (edge). Self-loops and parallel edges allowed.
    void add_edge(std::size_t from, std::size_t to, double duration = 1.0);

    [[nodiscard]] std::size_t num_states() const noexcept { return num_states_; }
    [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
    [[nodiscard]] const std::vector<FsmEdge>& edges() const noexcept { return edges_; }

    /// Capacity in bits per unit time. Returns 0 for machines that admit no
    /// infinite transmission (e.g. no cycles reachable).
    [[nodiscard]] double capacity() const;

    /// Count of distinct operation sequences of total length exactly `steps`
    /// starting from `start`, assuming unit durations — used by tests to
    /// verify capacity = lim log2(count)/steps.
    [[nodiscard]] double count_sequences(std::size_t start, std::size_t steps) const;

private:
    std::size_t num_states_;
    std::vector<FsmEdge> edges_;
};

}  // namespace ccap::info
