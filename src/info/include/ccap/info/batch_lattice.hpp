// Batched structure-of-arrays lattice kernel for the drift HMM.
//
// Every Monte-Carlo capacity bound reduces to thousands of *independent*
// forward/backward sweeps over the drift lattice. The scalar LatticeEngine
// (lattice_engine.hpp) walks one sequence at a time, so each inner-loop
// trip pays row bookkeeping, band-edge branches and an emission-table
// gather per cell. BatchLatticeEngine advances B sequences of the same
// transmitted length in lockstep instead:
//
//   * Rows are laid out structure-of-arrays, [drift_state][lane]: the cell
//     for (row j, drift d, lane l) lives at (j * width + idx(d)) * Bp + l,
//     where Bp is the lane count padded up to the SIMD vector width. The
//     hot lane loops are the runtime-dispatched kernels of
//     lattice_simd.hpp — explicit AVX-512 / AVX2 / NEON translation units
//     selected once at startup (util::active_simd_path(), overridable with
//     CCAP_SIMD) — so the engine runs full vectors regardless of how the
//     surrounding code was compiled. Padding lanes carry exactly 0.0
//     through every linear operation and their norms are pinned to 1.0
//     before the shared divides, so they never produce NaN/Inf and never
//     perturb a real lane. All arenas come from the same grow-only
//     LatticeWorkspace the scalar engine uses (64-byte aligned; steady
//     state is allocation-free).
//
//   * Per-row band windows and transition weights are computed once and
//     shared across lanes. The emission factor of a transmission landing
//     at drift d depends only on (row, d) — received index (j-1) + d — so
//     one emission plane per row replaces the scalar engine's per-(source,
//     run-length) emission gathers, a max_insert_run-fold reduction.
//
//   * Received sequences may have ragged lengths. They are packed into a
//     zero-padded SoA arena; the union drift window is swept and, after
//     accumulation, each lane's cells beyond its own valid window
//     (d > m_l - j) are masked back to exactly 0.0. Because the low edge
//     of the valid window is lane-independent and interleaved +0.0
//     contributions are exact no-ops on non-negative cells, every lane's
//     normalized rows, scales and evidences are BIT-IDENTICAL to the
//     scalar engine at band_eps = 0 (EXPECT_EQ-asserted in
//     tests/info_batch_lattice_test.cpp, and per SIMD path in
//     tests/info_simd_dispatch_test.cpp — the vector kernels use no FMA
//     contraction and no cross-lane reductions, so lane l sees the same
//     IEEE-754 operation sequence on every path).
//
//   * Adaptive-band mode (band_eps > 0) keeps one shared band: a drift
//     column is trimmed only when every lane with mass in the current row
//     is below its own band_eps * row_max threshold, and the pruned mass
//     is accumulated per lane. Each lane therefore keeps its own certified
//     slack bound (banded <= exact <= banded + slack, THEORY.md section
//     11); the shared band is the union of what per-lane banding would
//     keep, so batched banded evidence is never below the scalar banded
//     evidence, and the bound is never looser per lane.
//
// DriftHmm's *_batch entry points (drift_hmm.hpp, implemented in
// batch_lattice.cpp) wrap this engine; deletion_bounds.cpp feeds each
// Monte-Carlo thread's blocks through them in McOptions::batch-sized
// tiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>

#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/info/lattice_simd.hpp"

namespace ccap::info {

class BatchLatticeEngine {
public:
    /// Binds parameters, tables and a workspace to one lockstep call over
    /// `received.size()` lanes sharing transmitted length `tx_len`.
    /// Allocation-free once the workspace has warmed up.
    BatchLatticeEngine(const DriftParams& params, const DriftTables& tables,
                       std::span<const std::span<const std::uint8_t>> received,
                       std::size_t tx_len, LatticeWorkspace& ws)
        : p_(&params),
          t_(&tables),
          k_(received.size() > 1 ? &active_lane_kernels() : lane_kernels_scalar()),
          n_(tx_len),
          lanes_(received.size()),
          d_max_(params.max_drift),
          width_(static_cast<std::size_t>(2 * params.max_drift + 1)) {
        bind(received, ws);
        trail_ = ws.trail(m_max_ + 1);
        trail_[0] = 1.0;
        for (std::size_t k = 1; k <= m_max_; ++k)
            trail_[k] = trail_[k - 1] * params.p_i * t_->inv_m;
    }

    /// Per-lane-parameter mode: lane l runs under lane_params[l]. The
    /// structural fields (alphabet, max_drift, max_insert_run) must agree
    /// across lanes — they fix the lattice shape — while p_d / p_i / p_s
    /// may differ per lane. Weight tables, trailing factors and emission
    /// tables become [.. ][lane] SoA planes replicating the DriftTables
    /// formulas per lane, and the hot sweeps run the *_pl per-lane-weight
    /// kernels: lane l's result is bit-identical (at band_eps = 0) to a
    /// scalar engine run under lane_params[l] alone. This is the
    /// common-random-numbers sweep mode of deletion_bounds.cpp: one lattice
    /// pass evaluates a whole parameter-grid tile.
    BatchLatticeEngine(std::span<const DriftParams> lane_params,
                      std::span<const std::span<const std::uint8_t>> received,
                      std::size_t tx_len, LatticeWorkspace& ws)
        : p_(&checked_front(lane_params)),
          t_(nullptr),
          k_(received.size() > 1 ? &active_lane_kernels() : lane_kernels_scalar()),
          n_(tx_len),
          lanes_(received.size()),
          d_max_(p_->max_drift),
          width_(static_cast<std::size_t>(2 * p_->max_drift + 1)),
          per_lane_(true),
          lane_p_(lane_params) {
        if (lane_params.size() != received.size())
            throw std::invalid_argument(
                "BatchLatticeEngine: lane parameter count != lane count");
        for (const DriftParams& q : lane_params) {
            q.validate();
            if (q.alphabet != p_->alphabet || q.max_drift != p_->max_drift ||
                q.max_insert_run != p_->max_insert_run)
                throw std::invalid_argument(
                    "BatchLatticeEngine: per-lane params must share "
                    "alphabet/max_drift/max_insert_run");
        }
        bind(received, ws);
        build_lane_planes(ws);
    }

    [[nodiscard]] std::size_t n() const noexcept { return n_; }
    [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
    /// Lane count padded to the active SIMD vector width: the stride
    /// between drift columns of one SoA row.
    [[nodiscard]] std::size_t lane_stride() const noexcept { return lanes_pad_; }
    /// The dispatched lane kernels this engine runs (emission-plane callers
    /// use the same table so the whole pass stays on one path).
    [[nodiscard]] const LaneKernels& kernels() const noexcept { return *k_; }
    [[nodiscard]] std::size_t m(std::size_t lane) const noexcept {
        return static_cast<std::size_t>(m_[lane]);
    }
    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    [[nodiscard]] int d_max() const noexcept { return d_max_; }
    [[nodiscard]] std::size_t idx(int d) const noexcept {
        return static_cast<std::size_t>(d + d_max_);
    }

    /// P(received symbol r | transmitted symbol s): emission-table lookup.
    /// Shared-parameter mode only (per-lane engines use emit_lane()).
    [[nodiscard]] double emit(std::uint8_t r, std::uint8_t s) const noexcept {
        return t_->emit_tab[static_cast<std::size_t>(r) * p_->alphabet + s];
    }

    /// Whether this engine runs the per-lane-parameter mode.
    [[nodiscard]] bool per_lane() const noexcept { return per_lane_; }

    /// Per-lane emission lookup (per-lane mode; valid for lane < lane_stride(),
    /// padding columns replicate lane 0).
    [[nodiscard]] double emit_lane(std::size_t lane, std::uint8_t r,
                                   std::uint8_t s) const noexcept {
        return etab_pl_[(static_cast<std::size_t>(r) * p_->alphabet + s) * lanes_pad_ + lane];
    }

    /// SoA emission-table plane for table entry (r, s): lane_stride()
    /// doubles, one per lane. The per-lane emission-plane fillers in
    /// batch_lattice.cpp select between these with the lane kernels.
    [[nodiscard]] const double* etab_plane(std::uint8_t r, std::uint8_t s) const noexcept {
        return etab_pl_.data() +
               (static_cast<std::size_t>(r) * p_->alphabet + s) * lanes_pad_;
    }

    /// SoA-packed received symbol of `lane` at position k (k < m(lane)).
    [[nodiscard]] std::uint8_t rx(std::size_t lane, std::size_t k) const noexcept {
        return rx_[k * lanes_pad_ + lane];
    }

    /// Trailing-insertion factor of `lane` at final drift d.
    [[nodiscard]] double trailing(std::size_t lane, int d) const noexcept {
        const long long k = m_[lane] - (static_cast<long long>(n_) + d);
        if (k < 0) return 0.0;
        if (per_lane_)
            return trail_pl_[static_cast<std::size_t>(k) * lanes_pad_ + lane] *
                   one_minus_pi_pl_[lane];
        return trail_[static_cast<std::size_t>(k)] * (1.0 - p_->p_i);
    }

    /// Union drift window of row j over all lanes: the low edge is
    /// lane-independent, the high edge uses the longest received sequence.
    bool union_window(std::size_t j, int& lo, int& hi) const noexcept {
        const long long vlo = std::max<long long>(-d_max_, -static_cast<long long>(j));
        const long long vhi = std::min<long long>(
            d_max_, static_cast<long long>(m_max_) - static_cast<long long>(j));
        if (vlo > vhi) return false;
        lo = static_cast<int>(vlo);
        hi = static_cast<int>(vhi);
        return true;
    }

    // Flat SoA row accessors (valid after the corresponding pass); the cell
    // for (drift d, lane l) is row[idx(d) * lane_stride() + l].
    [[nodiscard]] const double* alpha_row(std::size_t j) const noexcept {
        return alpha_.data() + j * row_stride_;
    }
    [[nodiscard]] const double* beta_row(std::size_t j) const noexcept {
        return beta_.data() + j * row_stride_;
    }
    [[nodiscard]] double alpha_scale(std::size_t j, std::size_t lane) const noexcept {
        return scale_a_[j * lanes_ + lane];
    }
    [[nodiscard]] double beta_scale(std::size_t j, std::size_t lane) const noexcept {
        return scale_b_[j * lanes_ + lane];
    }
    [[nodiscard]] int band_lo(std::size_t j) const noexcept { return band_[2 * j]; }
    [[nodiscard]] int band_hi(std::size_t j) const noexcept { return band_[2 * j + 1]; }
    [[nodiscard]] bool all_dead() const noexcept { return all_dead_; }
    [[nodiscard]] bool lane_alive(std::size_t lane) const noexcept {
        return alive_[lane] != 0;
    }

    /// Shared window the backward pass sweeps for row j (see
    /// LatticeEngine::beta_window): forward band while banded and alive,
    /// union valid window otherwise.
    bool beta_window(std::size_t j, int& lo, int& hi) const noexcept {
        if (banded_ && !all_dead_) {
            lo = band_lo(j);
            hi = band_hi(j);
            return lo <= hi;
        }
        return union_window(j, lo, hi);
    }

    /// Lockstep forward pass. emit_plane(ed, j, rxr) must fill
    /// ed[0..lane_stride()) with each lane's emission factor for its
    /// received symbol rxr[l] at transmitted position j — a whole-lane-row
    /// contract so callers can vectorize the fill (batch_lattice.cpp maps
    /// the binary alphabet onto the dispatched select kernels). Padding
    /// entries must be finite (any valid-symbol value works; they multiply
    /// zero cells). With band_eps = 0, every lane's rows/scales/evidence
    /// are bit-identical to a scalar LatticeEngine run on that lane alone.
    template <typename PlaneFn>
    void forward(PlaneFn&& emit_plane, double band_eps) {
        constexpr double kNegInf = -std::numeric_limits<double>::infinity();
        const std::size_t L = lanes_;
        const std::size_t Lp = lanes_pad_;
        const LaneKernels& k = *k_;
        banded_ = band_eps > 0.0;
        all_dead_ = false;
        for (std::size_t l = 0; l < L; ++l) {
            slack_[l] = 0.0;
            alive_[l] = 1;
            scale_a_[l] = 0.0;
        }
        double* c0 = alpha_.data() + idx(0) * Lp;
        for (std::size_t l = 0; l < L; ++l) c0[l] = 1.0;
        for (std::size_t l = L; l < Lp; ++l) c0[l] = 0.0;  // pads stay zero
        band_[0] = 0;
        band_[1] = 0;

        const int run = p_->max_insert_run;
        for (std::size_t j = 1; j <= n_; ++j) {
            const int plo = band_lo(j - 1), phi = band_hi(j - 1);
            int clo = 0, chi = -1;
            if (!union_window(j, clo, chi) || plo > phi) return kill_all_from(j);
            clo = std::max(clo, plo - 1);
            chi = std::min(chi, phi + run - 1);
            if (clo > chi) return kill_all_from(j);

            double* __restrict cur = alpha_.data() + j * row_stride_;
            const double* __restrict prev = alpha_.data() + (j - 1) * row_stride_;

            // One emission plane per row: a transmission landing at drift d
            // consumed received index (j-1) + d regardless of where it came
            // from. Lowest emission-reachable drift is the previous band lo.
            for (int d = std::max(clo, plo); d <= chi; ++d) {
                const std::uint8_t* rxr =
                    rx_.data() +
                    static_cast<std::size_t>(static_cast<long long>(j - 1) + d) * Lp;
                emit_plane(emit_.data() + idx(d) * Lp, j - 1, rxr);
            }

            // Destination-major propagation: each destination column pulls
            // its whole insert run through one fused kernel call, so the
            // accumulator lives in registers, every cell is stored exactly
            // once, and no zero-fill pass is needed. A source at drift dp
            // reaches destination d with run length g = d + 1 - dp: the
            // ascending source planes [dp_min, dp_max] pair with weights
            // walked down from g0, and the run-0 pure-deletion term (source
            // d + 1, no emission factor) lands last — the same per-cell
            // contribution order (source-drift ascending) as a source-major
            // scatter, hence bitwise the same sums.
            for (int d = clo; d <= chi; ++d) {
                const int dp_min = std::max(plo, d + 1 - run);
                const int dp_max = std::min(phi, d);
                const std::size_t cnt =
                    dp_max >= dp_min ? static_cast<std::size_t>(dp_max - dp_min + 1) : 0;
                const int g0 = cnt ? d + 1 - dp_min : 1;  // in [1, run] when cnt > 0
                const double* src_del = d + 1 <= phi ? prev + (idx(d) + 1) * Lp : nullptr;
                if (per_lane_) {
                    k.fma_dest_run_pl(cur + idx(d) * Lp, prev + idx(dp_min) * Lp,
                                      del_w_pl_.data() + static_cast<std::size_t>(g0) * Lp,
                                      tx_w_pl_.data() + static_cast<std::size_t>(g0 - 1) * Lp,
                                      emit_.data() + idx(d) * Lp, src_del,
                                      del_w_pl_.data(), cnt, Lp);
                } else {
                    k.fma_dest_run(cur + idx(d) * Lp, prev + idx(dp_min) * Lp,
                                   t_->del_w.data() + g0, t_->tx_w.data() + (g0 - 1),
                                   emit_.data() + idx(d) * Lp, src_del, t_->del_w[0], cnt,
                                   Lp);
                }
            }

            // Mask each lane's cells beyond its own valid window: their
            // accumulation consumed pad symbols and must read exactly 0.
            for (std::size_t l = 0; l < L; ++l) {
                const long long hi_l = m_[l] - static_cast<long long>(j);
                if (hi_l >= chi) continue;
                const int from = static_cast<int>(std::max<long long>(clo, hi_l + 1));
                for (int d = from; d <= chi; ++d) cur[idx(d) * Lp + l] = 0.0;
            }

            for (std::size_t l = 0; l < Lp; ++l) pruned_[l] = 0.0;
            if (band_eps > 0.0) {
                for (std::size_t l = 0; l < Lp; ++l) rmax_[l] = 0.0;
                for (int d = clo; d <= chi; ++d) k.maximum(rmax_.data(), cur + idx(d) * Lp, Lp);
                // Shared band: trim a drift column only when every lane
                // with mass this row is below its own threshold, so no
                // lane is ever pruned harder than its scalar banded run.
                const auto trimmable = [&](int d) {
                    const double* c = cur + idx(d) * Lp;
                    for (std::size_t l = 0; l < L; ++l)
                        if (rmax_[l] > 0.0 && !(c[l] < band_eps * rmax_[l])) return false;
                    return true;
                };
                while (clo <= chi && trimmable(clo)) {
                    double* c = cur + idx(clo) * Lp;
                    for (std::size_t l = 0; l < L; ++l) {
                        pruned_[l] += c[l];
                        c[l] = 0.0;
                    }
                    ++clo;
                }
                while (chi >= clo && trimmable(chi)) {
                    double* c = cur + idx(chi) * Lp;
                    for (std::size_t l = 0; l < L; ++l) {
                        pruned_[l] += c[l];
                        c[l] = 0.0;
                    }
                    --chi;
                }
            }

            for (std::size_t l = 0; l < Lp; ++l) norm_[l] = 0.0;
            for (int d = clo; d <= chi; ++d) k.accumulate(norm_.data(), cur + idx(d) * Lp, Lp);
            bool any_alive = false;
            for (std::size_t l = 0; l < L; ++l) {
                if (alive_[l] == 0) {
                    scale_a_[j * L + l] = kNegInf;
                    norm_[l] = 1.0;  // keeps the shared division a no-op on zeros
                    continue;
                }
                if (!(norm_[l] > 0.0)) {
                    slack_[l] += pruned_[l];
                    alive_[l] = 0;
                    scale_a_[j * L + l] = kNegInf;
                    norm_[l] = 1.0;
                    continue;
                }
                slack_[l] = (slack_[l] + pruned_[l]) / norm_[l];
                scale_a_[j * L + l] = scale_a_[(j - 1) * L + l] + std::log2(norm_[l]);
                any_alive = true;
            }
            if (!any_alive) return kill_all_from(j);
            for (std::size_t l = L; l < Lp; ++l) norm_[l] = 1.0;  // 0.0 / 1.0 keeps pads clean
            for (int d = clo; d <= chi; ++d) k.divide(cur + idx(d) * Lp, norm_.data(), Lp);
            band_[2 * j] = clo;
            band_[2 * j + 1] = chi;
        }
    }

    /// Lockstep backward pass, symmetric to forward (same emit_plane
    /// contract), swept over beta_window(). Lanes whose cells are zero
    /// propagate zeros, so ragged lanes need no masking here.
    template <typename PlaneFn>
    void backward(PlaneFn&& emit_plane) {
        constexpr double kNegInf = -std::numeric_limits<double>::infinity();
        const std::size_t L = lanes_;
        const std::size_t Lp = lanes_pad_;
        const LaneKernels& k = *k_;
        const int run = p_->max_insert_run;
        {
            double* last = beta_.data() + n_ * row_stride_;
            int lo = 0, hi = -1;
            const bool live = beta_window(n_, lo, hi);
            for (std::size_t l = 0; l < Lp; ++l) norm_[l] = 0.0;
            if (live) {
                // Zero the window first so padding lanes read exactly 0.0.
                std::fill(last + idx(lo) * Lp, last + (idx(hi) + 1) * Lp, 0.0);
                for (int d = lo; d <= hi; ++d) {
                    double* c = last + idx(d) * Lp;
                    for (std::size_t l = 0; l < L; ++l) c[l] = trailing(l, d);
                    k.accumulate(norm_.data(), c, Lp);
                }
            }
            for (std::size_t l = 0; l < L; ++l) {
                if (norm_[l] > 0.0) {
                    scale_b_[n_ * L + l] = std::log2(norm_[l]);
                } else {
                    scale_b_[n_ * L + l] = kNegInf;
                    norm_[l] = 1.0;
                }
            }
            for (std::size_t l = L; l < Lp; ++l) norm_[l] = 1.0;
            if (live) {
                for (int d = lo; d <= hi; ++d) k.divide(last + idx(d) * Lp, norm_.data(), Lp);
            }
        }
        for (std::size_t j = n_; j-- > 0;) {
            double* cur = beta_.data() + j * row_stride_;
            const double* next = beta_.data() + (j + 1) * row_stride_;
            int lo = 0, hi = -1;
            if (!beta_window(j, lo, hi)) {
                for (std::size_t l = 0; l < L; ++l) scale_b_[j * L + l] = kNegInf;
                continue;
            }
            int nlo = 0, nhi = -1;
            const bool next_live = beta_window(j + 1, nlo, nhi);
            if (next_live) {
                // Emission plane: a transmission into next-row drift d
                // consumed received index j + d.
                for (int d = std::max(nlo, lo); d <= nhi; ++d) {
                    const std::uint8_t* rxr =
                        rx_.data() +
                        static_cast<std::size_t>(static_cast<long long>(j) + d) * Lp;
                    emit_plane(emit_.data() + idx(d) * Lp, j, rxr);
                }
            }
            for (std::size_t l = 0; l < Lp; ++l) norm_[l] = 0.0;
            for (int dp = lo; dp <= hi; ++dp) {
                for (std::size_t l = 0; l < Lp; ++l) acc_[l] = 0.0;
                if (next_live) {
                    const int glo = std::max(0, nlo - dp + 1);
                    const int ghi = std::min(run, nhi - dp + 1);
                    int g = glo;
                    if (g == 0 && g <= ghi) {
                        if (per_lane_)
                            k.axpy_lanes(acc_.data(), next + (idx(dp) - 1) * Lp,
                                         del_w_pl_.data(), Lp);
                        else
                            k.axpy(acc_.data(), next + (idx(dp) - 1) * Lp, t_->del_w[0], Lp);
                        g = 1;
                    }
                    if (g <= ghi) {
                        // Fused gather over the insert run (g-ascending adds,
                        // the same per-lane order as the unfused loop).
                        const std::size_t cell =
                            (idx(dp) + static_cast<std::size_t>(g) - 1) * Lp;
                        if (per_lane_)
                            k.fma_acc_run_pl(acc_.data(), next + cell,
                                             del_w_pl_.data() +
                                                 static_cast<std::size_t>(g) * Lp,
                                             tx_w_pl_.data() +
                                                 static_cast<std::size_t>(g - 1) * Lp,
                                             emit_.data() + cell,
                                             static_cast<std::size_t>(ghi - g + 1), Lp);
                        else
                            k.fma_acc_run(acc_.data(), next + cell, t_->del_w.data() + g,
                                          t_->tx_w.data() + (g - 1), emit_.data() + cell,
                                          static_cast<std::size_t>(ghi - g + 1), Lp);
                    }
                }
                double* c = cur + idx(dp) * Lp;
                std::copy(acc_.begin(), acc_.end(), c);
                k.accumulate(norm_.data(), c, Lp);
            }
            for (std::size_t l = 0; l < L; ++l) {
                if (norm_[l] > 0.0) {
                    scale_b_[j * L + l] = scale_b_[(j + 1) * L + l] + std::log2(norm_[l]);
                } else {
                    scale_b_[j * L + l] = kNegInf;
                    norm_[l] = 1.0;
                }
            }
            for (std::size_t l = L; l < Lp; ++l) norm_[l] = 1.0;
            for (int dp = lo; dp <= hi; ++dp) k.divide(cur + idx(dp) * Lp, norm_.data(), Lp);
        }
    }

    /// Unnormalized closing mass of `lane` (see LatticeEngine::tail).
    [[nodiscard]] double tail(std::size_t lane) const noexcept {
        double t = 0.0;
        const double* last = alpha_.data() + n_ * row_stride_;
        for (int d = band_lo(n_); d <= band_hi(n_); ++d)
            t += last[idx(d) * lanes_pad_ + lane] * trailing(lane, d);
        return t;
    }

    /// log2 evidence and certified band slack of `lane` after forward().
    [[nodiscard]] BandedEvidence evidence(std::size_t lane) const noexcept {
        constexpr double kInf = std::numeric_limits<double>::infinity();
        BandedEvidence out;
        const double t = tail(lane);
        const double scale = scale_a_[n_ * lanes_ + lane];
        if (!(t > 0.0) || scale == -kInf) {
            out.log2_evidence = -kInf;
            out.log2_slack = slack_[lane] > 0.0 ? kInf : 0.0;
            return out;
        }
        out.log2_evidence = scale + std::log2(t);
        out.log2_slack = slack_[lane] > 0.0 ? std::log2(1.0 + slack_[lane] / t) : 0.0;
        return out;
    }

private:
    static const DriftParams& checked_front(std::span<const DriftParams> lane_params) {
        if (lane_params.empty())
            throw std::invalid_argument("BatchLatticeEngine: empty lane parameter span");
        return lane_params.front();
    }

    /// Shared setup: lane stride, received pack and arena grabs. Both
    /// constructors delegate here after fixing the lattice shape.
    void bind(std::span<const std::span<const std::uint8_t>> received,
              LatticeWorkspace& ws) {
        const std::size_t L = lanes_;
        // Lane stride padded to the vector width: full batches round up so
        // the kernel main loops run full vectors (padding lanes hold exactly
        // 0.0 throughout). Tiny batches (L < W) stay unpadded — the x86
        // kernels finish ragged rows with one masked vector op that neither
        // reads nor writes lanes past L, so sub-width batches no longer pay
        // for W-L dead lanes per kernel call.
        const std::size_t W = k_->vector_doubles;
        lanes_pad_ = L < W ? std::max<std::size_t>(1, L) : (L + W - 1) / W * W;
        const std::size_t Lp = lanes_pad_;
        const auto ll = ws.lane_longs(2 * L);
        m_ = ll.subspan(0, L);
        alive_ = ll.subspan(L, L);
        std::size_t m_max = 0;
        for (std::size_t l = 0; l < L; ++l) {
            m_[l] = static_cast<long long>(received[l].size());
            m_max = std::max(m_max, received[l].size());
        }
        m_max_ = m_max;
        // Zero-padded SoA pack of the received sequences; the pad symbol is
        // arbitrary — cells that would consume it are masked back to zero —
        // but padding lanes must hold a valid symbol (0) so emission planes
        // stay finite there.
        rx_ = ws.rx_bytes(std::max<std::size_t>(1, m_max * Lp));
        std::fill(rx_.begin(), rx_.end(), 0);
        for (std::size_t l = 0; l < L; ++l) {
            const auto& r = received[l];
            for (std::size_t k = 0; k < r.size(); ++k) rx_[k * Lp + l] = r[k];
        }
        row_stride_ = width_ * Lp;
        alpha_ = ws.alpha((n_ + 1) * row_stride_);
        beta_ = ws.beta((n_ + 1) * row_stride_);
        scale_a_ = ws.scales_a((n_ + 1) * L);
        scale_b_ = ws.scales_b((n_ + 1) * L);
        band_ = ws.bands(2 * (n_ + 1));
        emit_ = ws.scratch(row_stride_);
        const auto ld = ws.lane_doubles(5 * Lp);
        norm_ = ld.subspan(0, Lp);
        pruned_ = ld.subspan(Lp, Lp);
        slack_ = ld.subspan(2 * Lp, Lp);
        rmax_ = ld.subspan(3 * Lp, Lp);
        acc_ = ld.subspan(4 * Lp, Lp);
    }

    /// Per-lane SoA weight/trail/emission planes, replicating the
    /// DriftTables formulas lane by lane so each lane's sweep performs the
    /// exact operation sequence of a scalar engine under its own params
    /// (padding columns replicate lane 0 to stay finite).
    void build_lane_planes(LatticeWorkspace& ws) {
        const std::size_t Lp = lanes_pad_;
        const std::size_t runs1 = static_cast<std::size_t>(p_->max_insert_run) + 1;
        const std::size_t A = p_->alphabet;
        const std::size_t cells = (2 * runs1 + (m_max_ + 1) + 1 + A * A) * Lp;
        const auto wp = ws.weight_planes(cells);
        std::size_t off = 0;
        del_w_pl_ = wp.subspan(off, runs1 * Lp);
        off += runs1 * Lp;
        tx_w_pl_ = wp.subspan(off, runs1 * Lp);
        off += runs1 * Lp;
        trail_pl_ = wp.subspan(off, (m_max_ + 1) * Lp);
        off += (m_max_ + 1) * Lp;
        one_minus_pi_pl_ = wp.subspan(off, Lp);
        off += Lp;
        etab_pl_ = wp.subspan(off, A * A * Lp);
        for (std::size_t l = 0; l < Lp; ++l) {
            const DriftParams& q = lane_p_[l < lanes_ ? l : 0];
            const double inv_m = 1.0 / static_cast<double>(q.alphabet);
            double ip = 1.0;  // ins_pow[g], advanced exactly as DriftTables does
            del_w_pl_[l] = ip * q.p_d;
            tx_w_pl_[l] = ip * q.p_t();
            for (std::size_t g = 1; g < runs1; ++g) {
                ip = ip * q.p_i * inv_m;
                del_w_pl_[g * Lp + l] = ip * q.p_d;
                tx_w_pl_[g * Lp + l] = ip * q.p_t();
            }
            trail_pl_[l] = 1.0;
            for (std::size_t k = 1; k <= m_max_; ++k)
                trail_pl_[k * Lp + l] = trail_pl_[(k - 1) * Lp + l] * q.p_i * inv_m;
            one_minus_pi_pl_[l] = 1.0 - q.p_i;
            const double p_sub = q.p_s / (static_cast<double>(q.alphabet) - 1.0);
            for (std::size_t r = 0; r < A; ++r)
                for (std::size_t s = 0; s < A; ++s)
                    etab_pl_[(r * A + s) * Lp + l] = r == s ? 1.0 - q.p_s : p_sub;
        }
    }

    void kill_all_from(std::size_t j) noexcept {
        constexpr double kNegInf = -std::numeric_limits<double>::infinity();
        all_dead_ = true;
        for (std::size_t l = 0; l < lanes_; ++l) alive_[l] = 0;
        for (std::size_t k = j; k <= n_; ++k) {
            for (std::size_t l = 0; l < lanes_; ++l) scale_a_[k * lanes_ + l] = kNegInf;
            band_[2 * k] = 1;
            band_[2 * k + 1] = 0;
        }
    }

    const DriftParams* p_;
    const DriftTables* t_;
    const LaneKernels* k_;
    std::size_t n_;
    std::size_t lanes_;
    std::size_t lanes_pad_ = 0;
    std::size_t m_max_ = 0;
    int d_max_;
    std::size_t width_;
    std::size_t row_stride_ = 0;
    std::span<long long> m_, alive_;
    std::span<std::uint8_t> rx_;
    std::span<double> trail_;
    std::span<double> alpha_, beta_, scale_a_, scale_b_;
    std::span<double> emit_;
    std::span<double> norm_, pruned_, slack_, rmax_, acc_;
    std::span<int> band_;
    bool all_dead_ = false;
    bool banded_ = false;
    bool per_lane_ = false;
    std::span<const DriftParams> lane_p_;
    std::span<double> del_w_pl_, tx_w_pl_, trail_pl_, one_minus_pi_pl_, etab_pl_;
};

// Per-lane-parameter batched entry points (batch_lattice.cpp): lane i runs
// under lane_params[i], whose structural fields (alphabet, max_drift,
// max_insert_run) must agree across lanes. At band_eps = 0 every lane's
// result is bit-identical to the scalar call under lane_params[i] alone; in
// banded mode each lane keeps its own certified slack. These power the
// common-random-numbers point-tile sweeps of deletion_bounds.cpp, which
// evaluate one realized received sequence under a whole grid tile of
// channel parameters in a single lattice pass.

/// Batched log2_likelihood_banded with per-lane parameters: lane i pairs
/// transmitted[i] with received[i] under lane_params[i].
[[nodiscard]] std::vector<BandedEvidence> log2_likelihood_batch_per_lane(
    std::span<const DriftParams> lane_params,
    std::span<const std::span<const std::uint8_t>> transmitted,
    std::span<const std::span<const std::uint8_t>> received, LatticeWorkspace& ws,
    double band_eps = 0.0);

/// Batched log2_prior_marginal_banded with per-lane parameters: one shared
/// priors matrix (n x alphabet), one received sequence per lane.
[[nodiscard]] std::vector<BandedEvidence> log2_prior_marginal_batch_per_lane(
    std::span<const DriftParams> lane_params, const util::Matrix& priors,
    std::span<const std::span<const std::uint8_t>> received, LatticeWorkspace& ws,
    double band_eps = 0.0);

}  // namespace ccap::info
