// Sharded, bounded memo-cache of Monte-Carlo capacity estimates over a
// quantized (P_d, P_i) grid.
//
// Millions of contending flows collapse onto a small neighbourhood of
// effective channel parameters, so the per-flow capacity hot path is the
// same expensive lattice MC estimate evaluated over and over at nearly
// identical points. The cache quantizes (P_d, P_i) onto a uniform grid and
// memoizes one MiEstimate per grid node in a util::ShardedMemoCache.
//
// Determinism contract (the load-bearing design point): a node's Monte-
// Carlo seed is derived from the *node key* (substream_seed over the grid
// indices mixed with the cache seed), never from evaluation order, caller
// identity, or thread schedule. A node's value is therefore a pure
// function of (config, key): cache-on and cache-off evaluation are
// bit-identical, concurrent duplicate computes are harmless, and the
// contention engine's aggregate is invariant in thread count.
//
// Two lookup modes:
//   * exact/quantized — snap to the nearest node and use its estimate
//     directly (bit-identity mode; quantization is part of the model);
//   * interpolated — bilinear over the 4 surrounding nodes, carrying a
//     certified error bound in the spirit of the banded-lattice slack
//     (THEORY §13): capacity is monotone non-increasing in P_d and P_i, so
//     the true value at an interior point is bracketed by the extreme
//     corner values; the bound adds the corners' MC confidence radius.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"
#include "ccap/util/shard_cache.hpp"

namespace ccap::info {

/// Uniform quantization grid over the (P_d, P_i) plane. Steps must divide
/// the maxima sensibly; indices are clamped into [0, *_max / *_step].
struct CapacityGridSpec {
    double pd_step = 0.01;
    double pi_step = 0.01;
    double pd_max = 0.60;
    double pi_max = 0.30;
};

struct CapacityKey {
    std::int32_t ipd = 0;  ///< P_d grid index (pd = ipd * pd_step)
    std::int32_t ipi = 0;  ///< P_i grid index (pi = ipi * pi_step)
    bool operator==(const CapacityKey&) const = default;
};

struct CapacityKeyHash {
    std::size_t operator()(const CapacityKey& k) const noexcept {
        // SplitMix64 over the packed indices: shard-spread and cheap.
        std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.ipd))
                           << 32) |
                          static_cast<std::uint32_t>(k.ipi);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

class CapacityCache {
public:
    struct Config {
        CapacityGridSpec grid;
        /// Channel parameters shared by every node: p_s, alphabet,
        /// max_drift, max_insert_run, band_eps. p_d / p_i are overwritten
        /// from the node key.
        DriftParams base{0.0, 0.0, 0.0, 2, 16, 8};
        /// Per-node Monte-Carlo options. `threads` is ignored here — the
        /// bulk-ensure path parallelizes over nodes, one thread per node.
        McOptions mc{48, 8, 1};
        /// Warm nodes to a target interpolation error instead of a fixed
        /// block count: when > 0, the constructor translates this into an
        /// adaptive per-node SEM target (mc.target_sem = target_interp_err
        /// / 1.96, the z = 1.96 confidence radius interpolate() charges per
        /// node) so every node — whether computed by at(), ensure(), or a
        /// cache-off recompute — runs the same adaptive McOptions. Folding
        /// the target into the Config, rather than passing it to ensure(),
        /// is what keeps a node's value a pure function of (config, key).
        /// Leave 0 to keep the fixed mc.num_blocks behavior. When mc.
        /// target_sem is also set explicitly, the tighter target wins.
        double target_interp_err = 0.0;
        /// Mixed into every node seed; distinct caches sample independently.
        std::uint64_t seed = 0x5eedca9e00c0ffeeULL;
        std::size_t shards = 16;
        std::size_t per_shard_capacity = 4096;
        /// false = memoization off: at()/ensure() recompute every time (the
        /// naive baseline). Values are unchanged either way.
        bool enabled = true;
    };

    explicit CapacityCache(Config cfg);

    [[nodiscard]] const Config& config() const noexcept { return cfg_; }

    /// Snap (pd, pi) to the nearest grid node (indices clamped to the grid).
    [[nodiscard]] CapacityKey quantize(double pd, double pi) const noexcept;

    /// The channel parameters of a node.
    [[nodiscard]] DriftParams node_params(CapacityKey key) const noexcept;

    /// The node's Monte-Carlo seed — a pure function of (config seed, key).
    [[nodiscard]] std::uint64_t node_seed(CapacityKey key) const noexcept {
        return util::substream_seed(
            util::substream_seed(cfg_.seed, static_cast<std::uint64_t>(
                                                static_cast<std::uint32_t>(key.ipd))),
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.ipi)));
    }

    /// The McOptions every node evaluation must use. In CRN mode
    /// (mc.point_tile > 0) this pins the shared-tape root to a pure
    /// function of the config seed: without it the engine would derive the
    /// root from the first point of whatever span it is handed, and a
    /// node's value would depend on which batch warmed it — at(), bulk
    /// ensure() and the naive per-flow path must all agree bit for bit.
    [[nodiscard]] McOptions node_mc_options() const noexcept {
        McOptions opts = cfg_.mc;
        if (opts.point_tile != 0 && opts.crn_root == 0)
            opts.crn_root = util::substream_seed(cfg_.seed, 0xc2a7ULL);
        return opts;
    }

    /// The capacity estimate at a node: cached when enabled, recomputed
    /// otherwise — bit-identical either way.
    [[nodiscard]] MiEstimate at(CapacityKey key);

    /// Bulk warm-up: evaluate every missing node of `keys` in one parallel
    /// batched pass (iid_mutual_information_rate_points over `threads`
    /// workers) and insert the results. No-op when memoization is disabled.
    void ensure(std::span<const CapacityKey> keys, unsigned threads);

    struct Interpolated {
        double rate = 0.0;       ///< bilinear estimate, bits per channel use
        double err_bound = 0.0;  ///< certified |truth - rate| bound (see above)
        bool exact = false;      ///< (pd, pi) landed exactly on a node
        /// MC blocks actually spent by the nodes backing this value: the
        /// one node on an exact hit, the sum over the 4 corners otherwise.
        /// With adaptive precision the spend varies per node, so err_bound
        /// reflects the blocks actually run, not a nominal num_blocks.
        std::size_t blocks = 0;
        /// Every backing node met its SEM target (always true in fixed
        /// mode); false means some node hit the block cap first and
        /// err_bound is wider than the configured target.
        bool converged = true;
    };

    /// Monotone bilinear interpolation over the 4 surrounding grid nodes.
    /// err_bound = (max corner - min corner) + z * max corner sem, valid
    /// under monotonicity of capacity in (P_d, P_i) with the usual MC
    /// confidence at z = 1.96.
    [[nodiscard]] Interpolated interpolate(double pd, double pi);

    [[nodiscard]] util::ShardCacheStats stats() const { return cache_.stats(); }

private:
    [[nodiscard]] MiEstimate compute(CapacityKey key) const;

    Config cfg_;
    std::int32_t ipd_max_;
    std::int32_t ipi_max_;
    util::ShardedMemoCache<CapacityKey, MiEstimate, CapacityKeyHash> cache_;
};

}  // namespace ccap::info
