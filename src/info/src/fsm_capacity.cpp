#include "ccap/info/fsm_capacity.hpp"

#include <cmath>
#include <stdexcept>

#include "ccap/util/matrix.hpp"
#include "ccap/util/solvers.hpp"

namespace ccap::info {

FsmChannel::FsmChannel(std::size_t num_states) : num_states_(num_states) {
    if (num_states == 0) throw std::invalid_argument("FsmChannel: need at least one state");
}

void FsmChannel::add_edge(std::size_t from, std::size_t to, double duration) {
    if (from >= num_states_ || to >= num_states_)
        throw std::out_of_range("FsmChannel::add_edge: state out of range");
    if (!(duration > 0.0))
        throw std::domain_error("FsmChannel::add_edge: duration must be > 0");
    edges_.push_back({from, to, duration});
}

namespace {
/// B(x)_ij = sum over edges i->j of x^{-t}.
util::Matrix weight_matrix(const std::vector<FsmEdge>& edges, std::size_t n, double x) {
    util::Matrix b(n, n);
    for (const FsmEdge& e : edges) b(e.from, e.to) += std::pow(x, -e.duration);
    return b;
}
}  // namespace

double FsmChannel::capacity() const {
    if (edges_.empty()) return 0.0;
    // rho(B(x)) is continuous and strictly decreasing in x >= 1 wherever
    // positive. Capacity is log2 of the root of rho(B(x)) = 1; if even at
    // x = 1 the radius is < 1 the machine cannot sustain transmission.
    const auto rho = [&](double x) {
        return weight_matrix(edges_, num_states_, x).spectral_radius();
    };
    const double rho1 = rho(1.0);
    if (rho1 <= 1.0 + 1e-12) return 0.0;
    // Bracket: rho(B(x)) <= num_edges * x^{-tmin}, so the root is at most
    // num_edges^{1/tmin}.
    double tmin = edges_.front().duration;
    for (const FsmEdge& e : edges_) tmin = std::min(tmin, e.duration);
    const double hi = std::pow(static_cast<double>(edges_.size()), 1.0 / tmin) + 1.0;
    const double x0 = util::bisect([&](double x) { return rho(x) - 1.0; }, 1.0, hi, 1e-12).x;
    return std::log2(x0);
}

double FsmChannel::count_sequences(std::size_t start, std::size_t steps) const {
    if (start >= num_states_) throw std::out_of_range("count_sequences: bad start state");
    // counts[s] = number of sequences of the elapsed length ending in state s.
    std::vector<double> counts(num_states_, 0.0);
    counts[start] = 1.0;
    const util::Matrix a = weight_matrix(edges_, num_states_, 1.0);  // adjacency with multiplicity
    for (std::size_t i = 0; i < steps; ++i) counts = a.transpose_vec(counts);
    double total = 0.0;
    for (double c : counts) total += c;
    return total;
}

}  // namespace ccap::info
