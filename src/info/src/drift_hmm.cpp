#include "ccap/info/drift_hmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ccap::info {

void MarkovSource::validate(unsigned alphabet) const {
    if (initial.size() != alphabet || transition.rows() != alphabet ||
        transition.cols() != alphabet)
        throw std::invalid_argument("MarkovSource: dimensions do not match alphabet");
    double sum = 0.0;
    for (double p : initial) {
        if (p < 0.0) throw std::domain_error("MarkovSource: negative initial probability");
        sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-9)
        throw std::domain_error("MarkovSource: initial distribution does not sum to 1");
    if (!transition.is_row_stochastic(1e-9))
        throw std::domain_error("MarkovSource: transition matrix not row-stochastic");
}

MarkovSource MarkovSource::binary_repeat(double stay) {
    if (stay < 0.0 || stay > 1.0)
        throw std::domain_error("MarkovSource::binary_repeat: stay outside [0,1]");
    MarkovSource s;
    s.initial = {0.5, 0.5};
    s.transition = util::Matrix{{stay, 1.0 - stay}, {1.0 - stay, stay}};
    return s;
}

MarkovSource MarkovSource::uniform(unsigned alphabet) {
    if (alphabet < 2) throw std::invalid_argument("MarkovSource::uniform: alphabet < 2");
    MarkovSource s;
    s.initial.assign(alphabet, 1.0 / alphabet);
    s.transition = util::Matrix(alphabet, alphabet, 1.0 / alphabet);
    return s;
}

void DriftParams::validate() const {
    if (p_d < 0.0 || p_i < 0.0 || p_s < 0.0 || p_s > 1.0)
        throw std::domain_error("DriftParams: negative probability");
    if (p_d + p_i >= 1.0 + 1e-12)
        throw std::domain_error("DriftParams: p_d + p_i must be < 1");
    if (alphabet < 2) throw std::domain_error("DriftParams: alphabet < 2");
    if (max_drift < 1 || max_insert_run < 1)
        throw std::domain_error("DriftParams: truncation bounds must be >= 1");
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct Slices {
    // Row j holds the (normalized) probability over drift in [-D, D];
    // log2_scale[j] accumulates the normalization taken out of rows 0..j.
    std::vector<std::vector<double>> rows;
    std::vector<double> log2_scale;
};

}  // namespace

struct DriftHmm::Lattice {
    const DriftParams& p;
    std::span<const std::uint8_t> rx;
    std::size_t n;                 // transmitted length
    std::size_t m;                 // received length
    int d_max;                     // drift clamp
    std::size_t width;             // 2*d_max + 1
    double inv_m_alpha;            // 1/M emission prob of an insertion
    std::vector<double> ins_pow;   // (p_i / M)^g for g = 0..max_insert_run
    std::vector<double> emit_tab;  // M x M substitution table, row-major [r][s]
    std::vector<double> trail_pow; // (p_i / M)^k for k = 0..m (trailing runs)

    Lattice(const DriftParams& params, std::span<const std::uint8_t> received, std::size_t tx_len)
        : p(params),
          rx(received),
          n(tx_len),
          m(received.size()),
          d_max(params.max_drift),
          width(static_cast<std::size_t>(2 * params.max_drift + 1)),
          inv_m_alpha(1.0 / static_cast<double>(params.alphabet)) {
        ins_pow.resize(static_cast<std::size_t>(p.max_insert_run) + 1);
        ins_pow[0] = 1.0;
        for (std::size_t g = 1; g < ins_pow.size(); ++g)
            ins_pow[g] = ins_pow[g - 1] * p.p_i * inv_m_alpha;
        // Hoist the per-cell emission branch into one M x M table; emit()
        // runs in the innermost (j, d, g) loops of every pass.
        const auto m_alpha = static_cast<std::size_t>(p.alphabet);
        const double p_sub = p.p_s / (static_cast<double>(p.alphabet) - 1.0);
        emit_tab.assign(m_alpha * m_alpha, p_sub);
        for (std::size_t s = 0; s < m_alpha; ++s) emit_tab[s * m_alpha + s] = 1.0 - p.p_s;
        // Trailing-run lengths are bounded by the received length; a table
        // replaces the std::pow call in trailing().
        trail_pow.resize(m + 1);
        trail_pow[0] = 1.0;
        for (std::size_t k = 1; k <= m; ++k) trail_pow[k] = trail_pow[k - 1] * p.p_i * inv_m_alpha;
    }

    [[nodiscard]] std::size_t idx(int d) const noexcept {
        return static_cast<std::size_t>(d + d_max);
    }
    [[nodiscard]] bool drift_ok(std::size_t j, int d) const noexcept {
        if (d < -d_max || d > d_max) return false;
        const long long r = static_cast<long long>(j) + d;
        return r >= 0 && r <= static_cast<long long>(m);
    }

    /// P(received symbol r | transmitted symbol s): emission-table lookup.
    [[nodiscard]] double emit(std::uint8_t r, std::uint8_t s) const noexcept {
        return emit_tab[static_cast<std::size_t>(r) * p.alphabet + s];
    }

    /// Emission averaged over a prior q(s) for received symbol r.
    [[nodiscard]] double emit_prior(std::uint8_t r, std::span<const double> q) const noexcept {
        const double* row = emit_tab.data() + static_cast<std::size_t>(r) * p.alphabet;
        double e = 0.0;
        for (std::size_t s = 0; s < q.size(); ++s) e += q[s] * row[s];
        return e;
    }

    /// Trailing-insertion factor at final drift d (exact, no truncation).
    [[nodiscard]] double trailing(int d) const noexcept {
        const long long k = static_cast<long long>(m) - (static_cast<long long>(n) + d);
        if (k < 0) return 0.0;
        return trail_pow[static_cast<std::size_t>(k)] * (1.0 - p.p_i);
    }

    /// Forward pass. `prior_row(j)` must return a span of M prior
    /// probabilities for transmitted position j (0-based).
    template <typename PriorFn>
    Slices forward(PriorFn&& prior_row) const {
        Slices a;
        a.rows.assign(n + 1, std::vector<double>(width, 0.0));
        a.log2_scale.assign(n + 1, 0.0);
        a.rows[0][idx(0)] = 1.0;

        for (std::size_t j = 1; j <= n; ++j) {
            const auto q = prior_row(j - 1);
            auto& cur = a.rows[j];
            const auto& prev = a.rows[j - 1];
            for (int dp = -d_max; dp <= d_max; ++dp) {
                if (!drift_ok(j - 1, dp)) continue;
                const double ap = prev[idx(dp)];
                if (ap == 0.0) continue;
                const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                for (int g = 0; g <= p.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!drift_ok(j, d)) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);  // received consumed
                    if (r1 > m) break;
                    double w = 0.0;
                    // deletion after g insertions
                    w += ins_pow[static_cast<std::size_t>(g)] * p.p_d;
                    // transmission after g-1 insertions
                    if (g >= 1)
                        w += ins_pow[static_cast<std::size_t>(g - 1)] * p.p_t() *
                             emit_prior(rx[r1 - 1], q);
                    cur[idx(d)] += ap * w;
                }
            }
            double norm = 0.0;
            for (double v : cur) norm += v;
            if (norm <= 0.0) {
                a.log2_scale[j] = kNegInf;
                continue;  // dead lattice; downstream sees zero evidence
            }
            for (double& v : cur) v /= norm;
            a.log2_scale[j] = a.log2_scale[j - 1] + std::log2(norm);
        }
        return a;
    }

    /// Backward pass, symmetric to forward.
    template <typename PriorFn>
    Slices backward(PriorFn&& prior_row) const {
        Slices b;
        b.rows.assign(n + 1, std::vector<double>(width, 0.0));
        b.log2_scale.assign(n + 1, 0.0);
        {
            auto& last = b.rows[n];
            double norm = 0.0;
            for (int d = -d_max; d <= d_max; ++d) {
                if (!drift_ok(n, d)) continue;
                last[idx(d)] = trailing(d);
                norm += last[idx(d)];
            }
            if (norm > 0.0) {
                for (double& v : last) v /= norm;
                b.log2_scale[n] = std::log2(norm);
            } else {
                b.log2_scale[n] = kNegInf;
            }
        }
        for (std::size_t j = n; j-- > 0;) {
            const auto q = prior_row(j);
            auto& cur = b.rows[j];
            const auto& next = b.rows[j + 1];
            for (int dp = -d_max; dp <= d_max; ++dp) {
                if (!drift_ok(j, dp)) continue;
                const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j) + dp);
                double acc = 0.0;
                for (int g = 0; g <= p.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!drift_ok(j + 1, d)) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                    if (r1 > m) break;
                    double w = ins_pow[static_cast<std::size_t>(g)] * p.p_d;
                    if (g >= 1)
                        w += ins_pow[static_cast<std::size_t>(g - 1)] * p.p_t() *
                             emit_prior(rx[r1 - 1], q);
                    acc += w * next[idx(d)];
                }
                cur[idx(dp)] = acc;
            }
            double norm = 0.0;
            for (double v : cur) norm += v;
            if (norm <= 0.0) {
                b.log2_scale[j] = kNegInf;
                continue;
            }
            for (double& v : cur) v /= norm;
            b.log2_scale[j] = b.log2_scale[j + 1] + std::log2(norm);
        }
        return b;
    }
};

DriftHmm::DriftHmm(DriftParams params) : params_(params) { params_.validate(); }

double DriftHmm::log2_likelihood(std::span<const std::uint8_t> transmitted,
                                 std::span<const std::uint8_t> received) const {
    const unsigned m_alpha = params_.alphabet;
    for (std::uint8_t s : transmitted)
        if (s >= m_alpha) throw std::out_of_range("DriftHmm: transmitted symbol out of alphabet");
    for (std::uint8_t s : received)
        if (s >= m_alpha) throw std::out_of_range("DriftHmm: received symbol out of alphabet");

    Lattice lat(params_, received, transmitted.size());
    // Point-mass priors at the actual transmitted symbols.
    std::vector<double> point(m_alpha, 0.0);
    const auto prior = [&](std::size_t j) -> std::span<const double> {
        std::fill(point.begin(), point.end(), 0.0);
        point[transmitted[j]] = 1.0;
        return point;
    };
    const Slices a = lat.forward(prior);
    if (a.log2_scale.back() == kNegInf) return kNegInf;

    double tail = 0.0;
    for (int d = -params_.max_drift; d <= params_.max_drift; ++d)
        if (lat.drift_ok(transmitted.size(), d))
            tail += a.rows.back()[lat.idx(d)] * lat.trailing(d);
    if (tail <= 0.0) return kNegInf;
    return a.log2_scale.back() + std::log2(tail);
}

util::Matrix DriftHmm::posteriors(const util::Matrix& priors,
                                  std::span<const std::uint8_t> received,
                                  double* log2_evidence) const {
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params_.alphabet;
    if (priors.cols() != m_alpha)
        throw std::invalid_argument("DriftHmm::posteriors: priors cols != alphabet");
    if (!priors.is_row_stochastic(1e-6) && n > 0)
        throw std::invalid_argument("DriftHmm::posteriors: priors not row-stochastic");
    for (std::uint8_t s : received)
        if (s >= m_alpha) throw std::out_of_range("DriftHmm: received symbol out of alphabet");

    Lattice lat(params_, received, n);
    const auto prior = [&](std::size_t j) { return priors.row(j); };
    const Slices a = lat.forward(prior);
    const Slices b = lat.backward(prior);

    if (log2_evidence != nullptr) {
        double tail = 0.0;
        for (int d = -params_.max_drift; d <= params_.max_drift; ++d)
            if (lat.drift_ok(n, d)) tail += a.rows.back()[lat.idx(d)] * lat.trailing(d);
        *log2_evidence =
            (tail > 0.0 && a.log2_scale.back() != kNegInf)
                ? a.log2_scale.back() + std::log2(tail)
                : kNegInf;
    }

    util::Matrix post(n, m_alpha);
    std::vector<double> w(m_alpha, 0.0);
    for (std::size_t j = 1; j <= n; ++j) {
        std::fill(w.begin(), w.end(), 0.0);
        double w_del = 0.0;
        for (int dp = -params_.max_drift; dp <= params_.max_drift; ++dp) {
            if (!lat.drift_ok(j - 1, dp)) continue;
            const double ap = a.rows[j - 1][lat.idx(dp)];
            if (ap == 0.0) continue;
            const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            for (int g = 0; g <= params_.max_insert_run; ++g) {
                const int d = dp + g - 1;
                if (!lat.drift_ok(j, d)) continue;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                if (r1 > lat.m) break;
                const double beta = b.rows[j][lat.idx(d)];
                if (beta == 0.0) continue;
                w_del += ap * lat.ins_pow[static_cast<std::size_t>(g)] * params_.p_d * beta;
                if (g >= 1) {
                    const double base = ap * lat.ins_pow[static_cast<std::size_t>(g - 1)] *
                                        params_.p_t() * beta;
                    const std::uint8_t r = received[r1 - 1];
                    for (unsigned s = 0; s < m_alpha; ++s)
                        w[s] += base * lat.emit(r, static_cast<std::uint8_t>(s));
                }
            }
        }
        double norm = 0.0;
        for (unsigned s = 0; s < m_alpha; ++s) {
            const double v = priors(j - 1, s) * (w[s] + w_del);
            post(j - 1, s) = v;
            norm += v;
        }
        if (norm > 0.0) {
            for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) /= norm;
        } else {
            // Unreachable position under the truncations: fall back to prior.
            for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) = priors(j - 1, s);
        }
    }
    return post;
}

DriftHmm::EventExpectations DriftHmm::expected_events(
    std::span<const std::uint8_t> transmitted, std::span<const std::uint8_t> received) const {
    const unsigned m_alpha = params_.alphabet;
    for (std::uint8_t s : transmitted)
        if (s >= m_alpha) throw std::out_of_range("expected_events: transmitted symbol");
    for (std::uint8_t s : received)
        if (s >= m_alpha) throw std::out_of_range("expected_events: received symbol");

    const std::size_t n = transmitted.size();
    Lattice lat(params_, received, n);
    std::vector<double> point(m_alpha, 0.0);
    const auto prior = [&](std::size_t j) -> std::span<const double> {
        std::fill(point.begin(), point.end(), 0.0);
        point[transmitted[j]] = 1.0;
        return point;
    };
    const Slices a = lat.forward(prior);
    const Slices b = lat.backward(prior);

    EventExpectations out;
    // Total evidence (forward route).
    double tail = 0.0;
    for (int d = -lat.d_max; d <= lat.d_max; ++d)
        if (lat.drift_ok(n, d)) tail += a.rows[n][lat.idx(d)] * lat.trailing(d);
    if (tail <= 0.0 || a.log2_scale[n] == kNegInf) {
        out.log2_likelihood = kNegInf;
        return out;
    }
    const double log2_evidence = a.log2_scale[n] + std::log2(tail);
    out.log2_likelihood = log2_evidence;

    for (std::size_t j = 1; j <= n; ++j) {
        // Per-position scale correction: the normalized slices hide
        // 2^{a_scale[j-1] + b_scale[j]}, which must be re-expressed
        // relative to the total evidence.
        const double log2_factor = a.log2_scale[j - 1] + b.log2_scale[j] - log2_evidence;
        if (log2_factor < -300.0) continue;  // numerically dead position
        const double factor = std::exp2(log2_factor);
        const std::uint8_t sym = transmitted[j - 1];
        for (int dp = -lat.d_max; dp <= lat.d_max; ++dp) {
            if (!lat.drift_ok(j - 1, dp)) continue;
            const double alpha = a.rows[j - 1][lat.idx(dp)];
            if (alpha == 0.0) continue;
            const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            for (int g = 0; g <= params_.max_insert_run; ++g) {
                const int d = dp + g - 1;
                if (!lat.drift_ok(j, d)) continue;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                if (r1 > lat.m) break;
                const double beta = b.rows[j][lat.idx(d)];
                if (beta == 0.0) continue;
                const double w_del =
                    alpha * lat.ins_pow[static_cast<std::size_t>(g)] * params_.p_d * beta *
                    factor;
                if (w_del > 0.0) {
                    out.deletions += w_del;
                    out.insertions += w_del * static_cast<double>(g);
                }
                if (g >= 1) {
                    const std::uint8_t r = received[r1 - 1];
                    const double w_tx = alpha *
                                        lat.ins_pow[static_cast<std::size_t>(g - 1)] *
                                        params_.p_t() * lat.emit(r, sym) * beta * factor;
                    if (w_tx > 0.0) {
                        out.transmissions += w_tx;
                        out.insertions += w_tx * static_cast<double>(g - 1);
                        if (r != sym) out.substitutions += w_tx;
                    }
                }
            }
        }
    }
    // Trailing insertions: posterior over the final drift.
    for (int d = -lat.d_max; d <= lat.d_max; ++d) {
        if (!lat.drift_ok(n, d)) continue;
        const double w = a.rows[n][lat.idx(d)] * lat.trailing(d) / tail;
        const long long rest = static_cast<long long>(lat.m) - (static_cast<long long>(n) + d);
        if (w > 0.0 && rest > 0) out.insertions += w * static_cast<double>(rest);
    }
    return out;
}

double DriftHmm::log2_markov_marginal(const MarkovSource& source, std::size_t tx_len,
                                      std::span<const std::uint8_t> received) const {
    const unsigned m_alpha = params_.alphabet;
    source.validate(m_alpha);
    for (std::uint8_t s : received)
        if (s >= m_alpha) throw std::out_of_range("log2_markov_marginal: received symbol");

    Lattice lat(params_, received, tx_len);
    const std::size_t width = lat.width;

    // Joint forward state: (drift, value of the just-consumed symbol).
    // Row-major [drift][symbol]; per-slice normalization with a log2 scale.
    std::vector<double> cur(width * m_alpha, 0.0), next(width * m_alpha, 0.0);
    double log2_scale = 0.0;

    std::vector<double> pre(width * m_alpha, 0.0);
    const auto step_into = [&](std::size_t j, auto&& weight_of_prev) {
        // Pre-aggregate the Markov-weighted mass arriving at each
        // (previous-drift, new-symbol) pair, once per step.
        for (int dp = -lat.d_max; dp <= lat.d_max; ++dp)
            for (unsigned s = 0; s < m_alpha; ++s)
                pre[lat.idx(dp) * m_alpha + s] =
                    lat.drift_ok(j - 1, dp) ? weight_of_prev(dp, s) : 0.0;
        std::fill(next.begin(), next.end(), 0.0);
        for (int dp = -lat.d_max; dp <= lat.d_max; ++dp) {
            if (!lat.drift_ok(j - 1, dp)) continue;
            const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            for (int g = 0; g <= params_.max_insert_run; ++g) {
                const int d = dp + g - 1;
                if (!lat.drift_ok(j, d)) continue;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                if (r1 > lat.m) break;
                const double w_del = lat.ins_pow[static_cast<std::size_t>(g)] * params_.p_d;
                for (unsigned s = 0; s < m_alpha; ++s) {
                    double w = w_del;
                    if (g >= 1)
                        w += lat.ins_pow[static_cast<std::size_t>(g - 1)] * params_.p_t() *
                             lat.emit(received[r1 - 1], static_cast<std::uint8_t>(s));
                    if (w == 0.0) continue;
                    const double mass = pre[lat.idx(dp) * m_alpha + s];
                    if (mass > 0.0) next[lat.idx(d) * m_alpha + s] += mass * w;
                }
            }
        }
        double norm = 0.0;
        for (double v : next) norm += v;
        if (norm <= 0.0) return false;
        for (double& v : next) v /= norm;
        log2_scale += std::log2(norm);
        cur.swap(next);
        return true;
    };

    if (tx_len >= 1) {
        // First symbol: drawn from the initial distribution, drift starts 0.
        const bool ok = step_into(1, [&](int dp, unsigned s) {
            return dp == 0 ? source.initial[s] : 0.0;
        });
        if (!ok) return kNegInf;
    }
    for (std::size_t j = 2; j <= tx_len; ++j) {
        const bool ok = step_into(j, [&](int dp, unsigned s) {
            double mass = 0.0;
            for (unsigned sp = 0; sp < m_alpha; ++sp)
                mass += cur[lat.idx(dp) * m_alpha + sp] * source.transition(sp, s);
            return mass;
        });
        if (!ok) return kNegInf;
    }

    double tail = 0.0;
    if (tx_len == 0) {
        tail = lat.trailing(0);
    } else {
        for (int d = -lat.d_max; d <= lat.d_max; ++d) {
            if (!lat.drift_ok(tx_len, d)) continue;
            for (unsigned s = 0; s < m_alpha; ++s)
                tail += cur[lat.idx(d) * m_alpha + s] * lat.trailing(d);
        }
    }
    if (tail <= 0.0) return kNegInf;
    return log2_scale + std::log2(tail);
}

util::Matrix DriftHmm::segment_likelihoods(
    const util::Matrix& priors, std::span<const std::uint8_t> received, std::size_t seg_len,
    const std::vector<std::vector<std::uint8_t>>& candidates) const {
    return segment_likelihoods(priors, received, seg_len, candidates.size(),
                               [&](std::size_t) -> std::span<const std::vector<std::uint8_t>> {
                                   return candidates;
                               });
}

util::Matrix DriftHmm::segment_likelihoods(const util::Matrix& priors,
                                           std::span<const std::uint8_t> received,
                                           std::size_t seg_len, std::size_t num_candidates,
                                           const CandidateFn& candidates_for) const {
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params_.alphabet;
    if (seg_len == 0 || n % seg_len != 0)
        throw std::invalid_argument("segment_likelihoods: n must be a positive multiple of seg_len");
    if (num_candidates == 0)
        throw std::invalid_argument("segment_likelihoods: no candidates");
    if (priors.cols() != m_alpha)
        throw std::invalid_argument("segment_likelihoods: priors cols != alphabet");

    Lattice lat(params_, received, n);
    const auto prior = [&](std::size_t j) { return priors.row(j); };
    const Slices a = lat.forward(prior);
    const Slices b = lat.backward(prior);

    const std::size_t num_segments = n / seg_len;
    util::Matrix out(num_segments, num_candidates);
    const std::size_t width = lat.width;

    std::vector<double> cur(width), next(width);
    std::vector<double> point(m_alpha, 0.0);
    for (std::size_t t = 0; t < num_segments; ++t) {
        const std::span<const std::vector<std::uint8_t>> candidates = candidates_for(t);
        if (candidates.size() != num_candidates)
            throw std::invalid_argument("segment_likelihoods: candidate count changed");
        for (const auto& c : candidates) {
            if (c.size() != seg_len)
                throw std::invalid_argument("segment_likelihoods: candidate length != seg_len");
            for (std::uint8_t s : c)
                if (s >= m_alpha) throw std::out_of_range("segment_likelihoods: candidate symbol");
        }
        const std::size_t j0 = t * seg_len;
        double row_norm = 0.0;
        for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
            // Propagate the forward slice at j0 through the segment with the
            // candidate's exact bits, then close with the backward slice.
            cur.assign(a.rows[j0].begin(), a.rows[j0].end());
            for (std::size_t l = 0; l < seg_len; ++l) {
                const std::size_t j = j0 + l + 1;
                std::fill(point.begin(), point.end(), 0.0);
                point[candidates[ci][l]] = 1.0;
                std::fill(next.begin(), next.end(), 0.0);
                for (int dp = -lat.d_max; dp <= lat.d_max; ++dp) {
                    if (!lat.drift_ok(j - 1, dp)) continue;
                    const double ap = cur[lat.idx(dp)];
                    if (ap == 0.0) continue;
                    const std::size_t r0 =
                        static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                    for (int g = 0; g <= params_.max_insert_run; ++g) {
                        const int d = dp + g - 1;
                        if (!lat.drift_ok(j, d)) continue;
                        const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                        if (r1 > lat.m) break;
                        double w = lat.ins_pow[static_cast<std::size_t>(g)] * params_.p_d;
                        if (g >= 1)
                            w += lat.ins_pow[static_cast<std::size_t>(g - 1)] * params_.p_t() *
                                 lat.emit_prior(received[r1 - 1], point);
                        next[lat.idx(d)] += ap * w;
                    }
                }
                cur.swap(next);
            }
            double like = 0.0;
            const auto& beta = b.rows[j0 + seg_len];
            for (std::size_t i = 0; i < width; ++i) like += cur[i] * beta[i];
            out(t, ci) = like;
            row_norm += like;
        }
        if (row_norm > 0.0) {
            for (std::size_t ci = 0; ci < candidates.size(); ++ci) out(t, ci) /= row_norm;
        } else {
            for (std::size_t ci = 0; ci < candidates.size(); ++ci)
                out(t, ci) = 1.0 / static_cast<double>(candidates.size());
        }
    }
    return out;
}

}  // namespace ccap::info
