#include "ccap/info/drift_hmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "ccap/info/lattice_engine.hpp"
#include "ccap/info/lattice_simd.hpp"

namespace ccap::info {

void MarkovSource::validate(unsigned alphabet) const {
    if (initial.size() != alphabet || transition.rows() != alphabet ||
        transition.cols() != alphabet)
        throw std::invalid_argument("MarkovSource: dimensions do not match alphabet");
    double sum = 0.0;
    for (double p : initial) {
        // !(p >= 0) also rejects NaN, which no ordinary comparison catches.
        if (!(p >= 0.0) || !std::isfinite(p))
            throw std::domain_error("MarkovSource: initial probability not finite in [0,1]");
        sum += p;
    }
    if (!(std::abs(sum - 1.0) <= 1e-9))
        throw std::domain_error("MarkovSource: initial distribution does not sum to 1");
    for (std::size_t r = 0; r < transition.rows(); ++r)
        for (std::size_t c = 0; c < transition.cols(); ++c)
            if (!(transition(r, c) >= 0.0) || !std::isfinite(transition(r, c)))
                throw std::domain_error(
                    "MarkovSource: transition probability not finite in [0,1]");
    if (!transition.is_row_stochastic(1e-9))
        throw std::domain_error("MarkovSource: transition matrix not row-stochastic");
}

MarkovSource MarkovSource::binary_repeat(double stay) {
    if (stay < 0.0 || stay > 1.0)
        throw std::domain_error("MarkovSource::binary_repeat: stay outside [0,1]");
    MarkovSource s;
    s.initial = {0.5, 0.5};
    s.transition = util::Matrix{{stay, 1.0 - stay}, {1.0 - stay, stay}};
    return s;
}

MarkovSource MarkovSource::uniform(unsigned alphabet) {
    if (alphabet < 2) throw std::invalid_argument("MarkovSource::uniform: alphabet < 2");
    MarkovSource s;
    s.initial.assign(alphabet, 1.0 / alphabet);
    s.transition = util::Matrix(alphabet, alphabet, 1.0 / alphabet);
    return s;
}

void DriftParams::validate() const {
    // isfinite first: NaN sails through every < comparison below.
    if (!std::isfinite(p_d) || !std::isfinite(p_i) || !std::isfinite(p_s))
        throw std::domain_error("DriftParams: non-finite probability");
    if (p_d < 0.0 || p_i < 0.0 || p_s < 0.0 || p_s > 1.0)
        throw std::domain_error("DriftParams: negative probability");
    if (p_d + p_i >= 1.0 + 1e-12)
        throw std::domain_error("DriftParams: p_d + p_i must be < 1");
    if (alphabet < 2) throw std::domain_error("DriftParams: alphabet < 2");
    if (max_drift < 1 || max_insert_run < 1)
        throw std::domain_error("DriftParams: truncation bounds must be >= 1");
    if (!(band_eps >= 0.0) || band_eps >= 1.0)
        throw std::domain_error("DriftParams: band_eps must be in [0, 1)");
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void check_symbols(std::span<const std::uint8_t> seq, unsigned alphabet, const char* what) {
    for (std::uint8_t s : seq)
        if (s >= alphabet) throw std::out_of_range(std::string("DriftHmm: ") + what +
                                                   " symbol out of alphabet");
}

}  // namespace

DriftHmm::DriftHmm(DriftParams params) : params_(params) {
    params_.validate();
    tables_ = std::make_shared<const DriftTables>(params_);
}

double DriftHmm::log2_likelihood(std::span<const std::uint8_t> transmitted,
                                 std::span<const std::uint8_t> received) const {
    ScopedWorkspace lease;
    return log2_likelihood(transmitted, received, lease.get());
}

double DriftHmm::log2_likelihood(std::span<const std::uint8_t> transmitted,
                                 std::span<const std::uint8_t> received,
                                 LatticeWorkspace& ws) const {
    return log2_likelihood_banded(transmitted, received, ws).log2_evidence;
}

BandedEvidence DriftHmm::log2_likelihood_banded(std::span<const std::uint8_t> transmitted,
                                                std::span<const std::uint8_t> received,
                                                LatticeWorkspace& ws) const {
    check_symbols(transmitted, params_.alphabet, "transmitted");
    check_symbols(received, params_.alphabet, "received");
    LatticeEngine eng(params_, *tables_, received, transmitted.size(), ws);
    eng.forward([&](std::size_t j, std::uint8_t r) { return eng.emit(r, transmitted[j]); },
                params_.band_eps);
    return eng.evidence();
}

BandedEvidence DriftHmm::log2_prior_marginal_banded(const util::Matrix& priors,
                                                    std::span<const std::uint8_t> received,
                                                    LatticeWorkspace& ws) const {
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params_.alphabet;
    if (priors.cols() != m_alpha)
        throw std::invalid_argument(
            "DriftHmm::log2_prior_marginal_banded: priors cols != alphabet");
    if (!priors.is_row_stochastic(1e-6) && n > 0)
        throw std::invalid_argument(
            "DriftHmm::log2_prior_marginal_banded: priors not row-stochastic");
    check_symbols(received, m_alpha, "received");

    // The backward pass never touches the forward rows, scales or slack,
    // so this forward-only evidence is bit-identical to the one
    // posteriors() reports — at half the lattice cost.
    LatticeEngine eng(params_, *tables_, received, n, ws);
    eng.forward(
        [&](std::size_t j, std::uint8_t r) { return eng.emit_prior(r, priors.row(j)); },
        params_.band_eps);
    return eng.evidence();
}

util::Matrix DriftHmm::posteriors(const util::Matrix& priors,
                                  std::span<const std::uint8_t> received,
                                  double* log2_evidence) const {
    ScopedWorkspace lease;
    return posteriors(priors, received, lease.get(), log2_evidence);
}

util::Matrix DriftHmm::posteriors(const util::Matrix& priors,
                                  std::span<const std::uint8_t> received,
                                  LatticeWorkspace& ws, double* log2_evidence) const {
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params_.alphabet;
    if (priors.cols() != m_alpha)
        throw std::invalid_argument("DriftHmm::posteriors: priors cols != alphabet");
    if (!priors.is_row_stochastic(1e-6) && n > 0)
        throw std::invalid_argument("DriftHmm::posteriors: priors not row-stochastic");
    check_symbols(received, m_alpha, "received");

    LatticeEngine eng(params_, *tables_, received, n, ws);
    const auto emit_p = [&](std::size_t j, std::uint8_t r) {
        return eng.emit_prior(r, priors.row(j));
    };
    eng.forward(emit_p, params_.band_eps);
    eng.backward(emit_p);

    if (log2_evidence != nullptr) *log2_evidence = eng.evidence().log2_evidence;

    util::Matrix post(n, m_alpha);
    const std::span<double> w = ws.scratch(m_alpha);
    const auto& ins_pow = tables_->ins_pow;
    for (std::size_t j = 1; j <= n; ++j) {
        std::fill(w.begin(), w.end(), 0.0);
        double w_del = 0.0;
        int blo = 0, bhi = -1;
        const bool beta_live = eng.beta_window(j, blo, bhi);
        const double* arow = eng.alpha_row(j - 1);
        const double* brow = eng.beta_row(j);
        for (int dp = eng.band_lo(j - 1); dp <= eng.band_hi(j - 1); ++dp) {
            const double ap = arow[eng.idx(dp)];
            if (ap == 0.0) continue;
            const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            for (int g = 0; g <= params_.max_insert_run; ++g) {
                const int d = dp + g - 1;
                if (!beta_live || d < blo || d > bhi) continue;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                const double beta = brow[eng.idx(d)];
                if (beta == 0.0) continue;
                w_del += ap * ins_pow[static_cast<std::size_t>(g)] * params_.p_d * beta;
                if (g >= 1) {
                    const double base = ap * ins_pow[static_cast<std::size_t>(g - 1)] *
                                        params_.p_t() * beta;
                    const std::uint8_t r = received[r1 - 1];
                    for (unsigned s = 0; s < m_alpha; ++s)
                        w[s] += base * eng.emit(r, static_cast<std::uint8_t>(s));
                }
            }
        }
        double norm = 0.0;
        for (unsigned s = 0; s < m_alpha; ++s) {
            const double v = priors(j - 1, s) * (w[s] + w_del);
            post(j - 1, s) = v;
            norm += v;
        }
        if (norm > 0.0) {
            for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) /= norm;
        } else {
            // Unreachable position under the truncations: fall back to prior.
            for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) = priors(j - 1, s);
        }
    }
    return post;
}

DriftHmm::EventExpectations DriftHmm::expected_events(
    std::span<const std::uint8_t> transmitted, std::span<const std::uint8_t> received) const {
    ScopedWorkspace lease;
    return expected_events(transmitted, received, lease.get());
}

DriftHmm::EventExpectations DriftHmm::expected_events(std::span<const std::uint8_t> transmitted,
                                                      std::span<const std::uint8_t> received,
                                                      LatticeWorkspace& ws) const {
    check_symbols(transmitted, params_.alphabet, "transmitted");
    check_symbols(received, params_.alphabet, "received");

    const std::size_t n = transmitted.size();
    LatticeEngine eng(params_, *tables_, received, n, ws);
    const auto emit_pt = [&](std::size_t j, std::uint8_t r) {
        return eng.emit(r, transmitted[j]);
    };
    eng.forward(emit_pt, params_.band_eps);
    eng.backward(emit_pt);

    EventExpectations out;
    // Total evidence (forward route).
    const double tail = eng.tail();
    if (tail <= 0.0 || eng.alpha_scale(n) == kNegInf) {
        out.log2_likelihood = kNegInf;
        return out;
    }
    const double log2_evidence = eng.alpha_scale(n) + std::log2(tail);
    out.log2_likelihood = log2_evidence;

    const auto& ins_pow = tables_->ins_pow;
    for (std::size_t j = 1; j <= n; ++j) {
        // Per-position scale correction: the normalized slices hide
        // 2^{a_scale[j-1] + b_scale[j]}, which must be re-expressed
        // relative to the total evidence.
        const double log2_factor =
            eng.alpha_scale(j - 1) + eng.beta_scale(j) - log2_evidence;
        if (log2_factor < -300.0) continue;  // numerically dead position
        const double factor = std::exp2(log2_factor);
        const std::uint8_t sym = transmitted[j - 1];
        int blo = 0, bhi = -1;
        const bool beta_live = eng.beta_window(j, blo, bhi);
        const double* arow = eng.alpha_row(j - 1);
        const double* brow = eng.beta_row(j);
        for (int dp = eng.band_lo(j - 1); dp <= eng.band_hi(j - 1); ++dp) {
            const double alpha = arow[eng.idx(dp)];
            if (alpha == 0.0) continue;
            const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            for (int g = 0; g <= params_.max_insert_run; ++g) {
                const int d = dp + g - 1;
                if (!beta_live || d < blo || d > bhi) continue;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                const double beta = brow[eng.idx(d)];
                if (beta == 0.0) continue;
                const double w_del =
                    alpha * ins_pow[static_cast<std::size_t>(g)] * params_.p_d * beta *
                    factor;
                if (w_del > 0.0) {
                    out.deletions += w_del;
                    out.insertions += w_del * static_cast<double>(g);
                }
                if (g >= 1) {
                    const std::uint8_t r = received[r1 - 1];
                    const double w_tx = alpha *
                                        ins_pow[static_cast<std::size_t>(g - 1)] *
                                        params_.p_t() * eng.emit(r, sym) * beta * factor;
                    if (w_tx > 0.0) {
                        out.transmissions += w_tx;
                        out.insertions += w_tx * static_cast<double>(g - 1);
                        if (r != sym) out.substitutions += w_tx;
                    }
                }
            }
        }
    }
    // Trailing insertions: posterior over the final drift.
    const double* last = eng.alpha_row(n);
    for (int d = eng.band_lo(n); d <= eng.band_hi(n); ++d) {
        const double w = last[eng.idx(d)] * eng.trailing(d) / tail;
        const long long rest =
            static_cast<long long>(eng.m()) - (static_cast<long long>(n) + d);
        if (w > 0.0 && rest > 0) out.insertions += w * static_cast<double>(rest);
    }
    return out;
}

double DriftHmm::log2_markov_marginal(const MarkovSource& source, std::size_t tx_len,
                                      std::span<const std::uint8_t> received) const {
    ScopedWorkspace lease;
    return log2_markov_marginal(source, tx_len, received, lease.get());
}

double DriftHmm::log2_markov_marginal(const MarkovSource& source, std::size_t tx_len,
                                      std::span<const std::uint8_t> received,
                                      LatticeWorkspace& ws) const {
    return log2_markov_marginal_banded(source, tx_len, received, ws).log2_evidence;
}

BandedEvidence DriftHmm::log2_markov_marginal_banded(const MarkovSource& source,
                                                     std::size_t tx_len,
                                                     std::span<const std::uint8_t> received,
                                                     LatticeWorkspace& ws) const {
    const unsigned m_alpha = params_.alphabet;
    source.validate(m_alpha);
    check_symbols(received, m_alpha, "received");

    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double band_eps = params_.band_eps;
    LatticeEngine eng(params_, *tables_, received, tx_len, ws);
    const std::size_t width = eng.width();
    const auto& ins_pow = tables_->ins_pow;
    const int run = params_.max_insert_run;

    // Joint forward state: (drift, value of the just-consumed symbol).
    // Row-major [drift][symbol]; per-slice normalization with a log2 scale.
    std::span<double> cur = ws.scratch(width * m_alpha);
    std::span<double> next = ws.scratch2(width * m_alpha);
    std::span<double> pre = ws.scratch3(width * m_alpha);
    double log2_scale = 0.0;
    double slack_rel = 0.0;
    // Live drift window of `cur`; starts as the point mass at drift 0.
    int wlo = 0, whi = 0;

    // One joint step into row j. weight_of_prev(dp, s) is the Markov-
    // weighted mass arriving at (previous-drift dp, new-symbol s).
    const auto step_into = [&](std::size_t j, auto&& weight_of_prev) {
        int clo = 0, chi = -1;
        if (!eng.valid_window(j, clo, chi) || wlo > whi) return false;
        clo = std::max(clo, wlo - 1);
        chi = std::min(chi, whi + run - 1);
        if (clo > chi) return false;
        // Pre-aggregate the Markov-weighted mass arriving at each
        // (previous-drift, new-symbol) pair, once per step.
        for (int dp = wlo; dp <= whi; ++dp)
            for (unsigned s = 0; s < m_alpha; ++s)
                pre[eng.idx(dp) * m_alpha + s] = weight_of_prev(dp, s);
        for (int d = clo; d <= chi; ++d)
            for (unsigned s = 0; s < m_alpha; ++s) next[eng.idx(d) * m_alpha + s] = 0.0;
        for (int dp = wlo; dp <= whi; ++dp) {
            const std::size_t r0 = static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
            const int glo = std::max(0, clo - dp + 1);
            const int ghi = std::min(run, chi - dp + 1);
            for (int g = glo; g <= ghi; ++g) {
                const int d = dp + g - 1;
                const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                const double w_del = ins_pow[static_cast<std::size_t>(g)] * params_.p_d;
                for (unsigned s = 0; s < m_alpha; ++s) {
                    double w = w_del;
                    if (g >= 1)
                        w += ins_pow[static_cast<std::size_t>(g - 1)] * params_.p_t() *
                             eng.emit(received[r1 - 1], static_cast<std::uint8_t>(s));
                    if (w == 0.0) continue;
                    const double mass = pre[eng.idx(dp) * m_alpha + s];
                    if (mass > 0.0) next[eng.idx(d) * m_alpha + s] += mass * w;
                }
            }
        }
        double pruned = 0.0;
        if (band_eps > 0.0) {
            // Trim drift rows whose aggregate (over symbols) mass falls
            // below band_eps times the best row; certified like the
            // marginal lattice (THEORY.md section 11).
            double row_max = 0.0;
            for (int d = clo; d <= chi; ++d) {
                double agg = 0.0;
                for (unsigned s = 0; s < m_alpha; ++s) agg += next[eng.idx(d) * m_alpha + s];
                row_max = std::max(row_max, agg);
            }
            const double thresh = band_eps * row_max;
            const auto aggregate_of = [&](int d) {
                double agg = 0.0;
                for (unsigned s = 0; s < m_alpha; ++s) agg += next[eng.idx(d) * m_alpha + s];
                return agg;
            };
            while (clo <= chi && aggregate_of(clo) < thresh) {
                pruned += aggregate_of(clo);
                for (unsigned s = 0; s < m_alpha; ++s) next[eng.idx(clo) * m_alpha + s] = 0.0;
                ++clo;
            }
            while (chi >= clo && aggregate_of(chi) < thresh) {
                pruned += aggregate_of(chi);
                for (unsigned s = 0; s < m_alpha; ++s) next[eng.idx(chi) * m_alpha + s] = 0.0;
                --chi;
            }
        }
        double norm = 0.0;
        for (int d = clo; d <= chi; ++d)
            for (unsigned s = 0; s < m_alpha; ++s) norm += next[eng.idx(d) * m_alpha + s];
        if (!(norm > 0.0)) {
            slack_rel += pruned;
            return false;
        }
        for (int d = clo; d <= chi; ++d)
            for (unsigned s = 0; s < m_alpha; ++s) next[eng.idx(d) * m_alpha + s] /= norm;
        slack_rel = (slack_rel + pruned) / norm;
        log2_scale += std::log2(norm);
        std::swap(cur, next);
        wlo = clo;
        whi = chi;
        return true;
    };

    const auto dead_result = [&] {
        return BandedEvidence{kNegInf, slack_rel > 0.0 ? kInf : 0.0};
    };

    if (tx_len >= 1) {
        // First symbol: drawn from the initial distribution, drift starts 0.
        const bool ok = step_into(1, [&](int dp, unsigned s) {
            return dp == 0 ? source.initial[s] : 0.0;
        });
        if (!ok) return dead_result();
    }
    for (std::size_t j = 2; j <= tx_len; ++j) {
        const bool ok = step_into(j, [&](int dp, unsigned s) {
            double mass = 0.0;
            for (unsigned sp = 0; sp < m_alpha; ++sp)
                mass += cur[eng.idx(dp) * m_alpha + sp] * source.transition(sp, s);
            return mass;
        });
        if (!ok) return dead_result();
    }

    double tail = 0.0;
    if (tx_len == 0) {
        tail = eng.trailing(0);
    } else {
        for (int d = wlo; d <= whi; ++d) {
            for (unsigned s = 0; s < m_alpha; ++s)
                tail += cur[eng.idx(d) * m_alpha + s] * eng.trailing(d);
        }
    }
    if (tail <= 0.0) return dead_result();
    BandedEvidence out;
    out.log2_evidence = log2_scale + std::log2(tail);
    out.log2_slack = slack_rel > 0.0 ? std::log2(1.0 + slack_rel / tail) : 0.0;
    return out;
}

util::Matrix DriftHmm::segment_likelihoods(
    const util::Matrix& priors, std::span<const std::uint8_t> received, std::size_t seg_len,
    const std::vector<std::vector<std::uint8_t>>& candidates) const {
    return segment_likelihoods(priors, received, seg_len, candidates.size(),
                               [&](std::size_t) -> std::span<const std::vector<std::uint8_t>> {
                                   return candidates;
                               });
}

util::Matrix DriftHmm::segment_likelihoods(const util::Matrix& priors,
                                           std::span<const std::uint8_t> received,
                                           std::size_t seg_len, std::size_t num_candidates,
                                           const CandidateFn& candidates_for) const {
    ScopedWorkspace lease;
    return segment_likelihoods(priors, received, seg_len, num_candidates, candidates_for,
                               lease.get());
}

util::Matrix DriftHmm::segment_likelihoods(const util::Matrix& priors,
                                           std::span<const std::uint8_t> received,
                                           std::size_t seg_len, std::size_t num_candidates,
                                           const CandidateFn& candidates_for,
                                           LatticeWorkspace& ws) const {
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params_.alphabet;
    if (seg_len == 0 || n % seg_len != 0)
        throw std::invalid_argument("segment_likelihoods: n must be a positive multiple of seg_len");
    if (num_candidates == 0)
        throw std::invalid_argument("segment_likelihoods: no candidates");
    if (priors.cols() != m_alpha)
        throw std::invalid_argument("segment_likelihoods: priors cols != alphabet");

    LatticeEngine eng(params_, *tables_, received, n, ws);
    const auto emit_p = [&](std::size_t j, std::uint8_t r) {
        return eng.emit_prior(r, priors.row(j));
    };
    eng.forward(emit_p, params_.band_eps);
    eng.backward(emit_p);

    const std::size_t num_segments = n / seg_len;
    util::Matrix out(num_segments, num_candidates);
    const std::size_t width = eng.width();
    const auto& ins_pow = tables_->ins_pow;
    const int run = params_.max_insert_run;

    // All candidates of a segment share the same drift-window trajectory
    // (the recurrence is value-independent), so the per-candidate
    // propagation runs as one structure-of-arrays batch with the
    // candidates as lanes: cell (drift d, candidate c) at idx(d) * Cp + c,
    // where Cp pads the candidate count to the SIMD vector width and the
    // lane loops run the dispatched kernels (lattice_simd.hpp) — padding
    // lanes carry exactly 0.0 and are dropped at the closing stage. Per
    // (drift, candidate) the emission is computed once — received index
    // (j-1) + d is source-independent — instead of once per (source,
    // run-length); per-candidate results match the old one-candidate-at-a-
    // time loop bit for bit (the term order per cell is unchanged). This
    // is the watermark inner decoder's hot loop (coding/watermark.cpp).
    const std::size_t C = num_candidates;
    const LaneKernels& kern = C > 1 ? active_lane_kernels() : *lane_kernels_scalar();
    const std::size_t W = kern.vector_doubles;
    const std::size_t Cp = (C + W - 1) / W * W;
    std::span<double> cur = ws.scratch(width * Cp);
    std::span<double> next = ws.scratch2(width * Cp);
    std::span<double> esc = ws.scratch3(width * Cp);
    // Selector pack and pad-finite emissions: pads select symbol 0.
    std::span<std::uint8_t> selc = ws.tx_bytes(Cp);
    std::fill(selc.begin(), selc.end(), 0);
    std::fill(esc.begin(), esc.end(), 0.0);
    for (std::size_t t = 0; t < num_segments; ++t) {
        const std::span<const std::vector<std::uint8_t>> candidates = candidates_for(t);
        if (candidates.size() != num_candidates)
            throw std::invalid_argument("segment_likelihoods: candidate count changed");
        for (const auto& c : candidates) {
            if (c.size() != seg_len)
                throw std::invalid_argument("segment_likelihoods: candidate length != seg_len");
            for (std::uint8_t s : c)
                if (s >= m_alpha) throw std::out_of_range("segment_likelihoods: candidate symbol");
        }
        const std::size_t j0 = t * seg_len;
        // Broadcast the forward slice at j0 to every candidate lane.
        std::fill(cur.begin(), cur.end(), 0.0);
        int wlo = eng.band_lo(j0), whi = eng.band_hi(j0);
        const double* arow = eng.alpha_row(j0);
        for (int d = wlo; d <= whi; ++d) {
            const double a = arow[eng.idx(d)];
            double* base = cur.data() + eng.idx(d) * Cp;
            for (std::size_t ci = 0; ci < C; ++ci) base[ci] = a;
        }
        for (std::size_t l = 0; l < seg_len && wlo <= whi; ++l) {
            const std::size_t j = j0 + l + 1;
            int clo = 0, chi = -1;
            if (!eng.valid_window(j, clo, chi)) {
                wlo = 1;
                whi = 0;
                break;
            }
            clo = std::max(clo, wlo - 1);
            chi = std::min(chi, whi + run - 1);
            if (clo > chi) {
                wlo = 1;
                whi = 0;
                break;
            }
            std::fill(next.begin() + static_cast<std::ptrdiff_t>(eng.idx(clo) * Cp),
                      next.begin() + static_cast<std::ptrdiff_t>((eng.idx(chi) + 1) * Cp),
                      0.0);
            // Emission plane over (destination drift, candidate). The
            // candidate symbol at offset l is drift-independent, so it is
            // packed once and the binary fill is a dispatched select of the
            // exact table entry (bit-identical to the gather).
            for (std::size_t ci = 0; ci < C; ++ci) selc[ci] = candidates[ci][l];
            for (int d = std::max(clo, wlo); d <= chi; ++d) {
                const std::uint8_t r =
                    received[static_cast<std::size_t>(static_cast<long long>(j - 1) + d)];
                const double* erow =
                    tables_->emit_tab.data() + static_cast<std::size_t>(r) * m_alpha;
                double* ebase = esc.data() + eng.idx(d) * Cp;
                if (m_alpha == 2) {
                    kern.select_const(ebase, selc.data(), erow[0], erow[1], Cp);
                } else {
                    for (std::size_t ci = 0; ci < C; ++ci) ebase[ci] = erow[selc[ci]];
                }
            }
            for (int dp = wlo; dp <= whi; ++dp) {
                const double* ap = cur.data() + eng.idx(dp) * Cp;
                const int glo = std::max(0, clo - dp + 1);
                const int ghi = std::min(run, chi - dp + 1);
                int g = glo;
                if (g == 0 && g <= ghi) {
                    kern.axpy(next.data() + (eng.idx(dp) - 1) * Cp, ap,
                              ins_pow[0] * params_.p_d, Cp);
                    g = 1;
                }
                if (g > ghi) continue;
                // Fused insert-run sweep (same op per cell as the unfused
                // loop; tables_->del_w/tx_w hold exactly ins_pow[g] * p_d and
                // ins_pow[g-1] * p_t(), the weights used here before fusing).
                const std::size_t cell_off =
                    (eng.idx(dp) + static_cast<std::size_t>(g) - 1) * Cp;
                kern.fma_run(next.data() + cell_off, ap, tables_->del_w.data() + g,
                             tables_->tx_w.data() + (g - 1), esc.data() + cell_off,
                             static_cast<std::size_t>(ghi - g + 1), Cp);
            }
            std::swap(cur, next);
            wlo = clo;
            whi = chi;
        }
        // Close every candidate lane with the backward slice (unpadded: the
        // result row is Matrix storage, so the kernels' scalar tails apply).
        for (std::size_t ci = 0; ci < C; ++ci) out(t, ci) = 0.0;
        int blo = 0, bhi = -1;
        if (eng.beta_window(j0 + seg_len, blo, bhi)) {
            const double* brow = eng.beta_row(j0 + seg_len);
            const int lo2 = std::max(wlo, blo), hi2 = std::min(whi, bhi);
            for (int d = lo2; d <= hi2; ++d) {
                kern.axpy(&out(t, 0), cur.data() + eng.idx(d) * Cp, brow[eng.idx(d)], C);
            }
        }
        double row_norm = 0.0;
        for (std::size_t ci = 0; ci < C; ++ci) row_norm += out(t, ci);
        if (row_norm > 0.0) {
            for (std::size_t ci = 0; ci < C; ++ci) out(t, ci) /= row_norm;
        } else {
            for (std::size_t ci = 0; ci < C; ++ci)
                out(t, ci) = 1.0 / static_cast<double>(num_candidates);
        }
    }
    return out;
}

}  // namespace ccap::info
