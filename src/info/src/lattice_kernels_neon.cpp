// NEON lane kernels (2 doubles per op), AArch64 only.
//
// Advanced SIMD is baseline on AArch64 so this TU needs no extra -m flags,
// but it is still compiled with -ffp-contract=off and uses separate
// vmulq/vaddq (never vfmaq) so each lane performs the scalar reference's
// exact IEEE-754 operation sequence.
#include "ccap/info/lattice_simd.hpp"

#if defined(__aarch64__) || defined(_M_ARM64)

#include <arm_neon.h>

namespace ccap::info {

namespace {

constexpr std::size_t kW = 2;

/// Per-lane all-ones/all-zeros mask from two selector bytes.
inline uint64x2_t load_sel2(const std::uint8_t* sel) {
    const uint64x2_t v = {static_cast<std::uint64_t>(sel[0]),
                          static_cast<std::uint64_t>(sel[1])};
    return vtstq_u64(v, v);  // non-zero byte -> all-ones lane
}

void k_axpy(double* dst, const double* src, double w, std::size_t L) {
    const float64x2_t wv = vdupq_n_f64(w);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const float64x2_t d = vld1q_f64(dst + l);
        const float64x2_t s = vld1q_f64(src + l);
        vst1q_f64(dst + l, vaddq_f64(d, vmulq_f64(s, wv)));
    }
    for (; l < L; ++l) dst[l] += src[l] * w;
}

void k_fma_weighted(double* dst, const double* src, double dw, double tw, const double* e,
                    std::size_t L) {
    const float64x2_t dwv = vdupq_n_f64(dw);
    const float64x2_t twv = vdupq_n_f64(tw);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const float64x2_t ev = vld1q_f64(e + l);
        const float64x2_t wv = vaddq_f64(dwv, vmulq_f64(twv, ev));
        const float64x2_t d = vld1q_f64(dst + l);
        const float64x2_t s = vld1q_f64(src + l);
        vst1q_f64(dst + l, vaddq_f64(d, vmulq_f64(s, wv)));
    }
    for (; l < L; ++l) dst[l] += src[l] * (dw + tw * e[l]);
}

void k_accumulate(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        vst1q_f64(acc + l, vaddq_f64(vld1q_f64(acc + l), vld1q_f64(src + l)));
    }
    for (; l < L; ++l) acc[l] += src[l];
}

void k_maximum(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        vst1q_f64(acc + l, vmaxq_f64(vld1q_f64(acc + l), vld1q_f64(src + l)));
    }
    for (; l < L; ++l) acc[l] = acc[l] < src[l] ? src[l] : acc[l];
}

void k_divide(double* dst, const double* norm, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        vst1q_f64(dst + l, vdivq_f64(vld1q_f64(dst + l), vld1q_f64(norm + l)));
    }
    for (; l < L; ++l) dst[l] /= norm[l];
}

void k_select_const(double* ed, const std::uint8_t* sel, double v0, double v1,
                    std::size_t L) {
    const float64x2_t v0v = vdupq_n_f64(v0);
    const float64x2_t v1v = vdupq_n_f64(v1);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        vst1q_f64(ed + l, vbslq_f64(load_sel2(sel + l), v1v, v0v));
    }
    for (; l < L; ++l) ed[l] = sel[l] ? v1 : v0;
}

void k_select_lanes(double* ed, const std::uint8_t* sel, const double* e0, const double* e1,
                    std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        vst1q_f64(ed + l,
                  vbslq_f64(load_sel2(sel + l), vld1q_f64(e1 + l), vld1q_f64(e0 + l)));
    }
    for (; l < L; ++l) ed[l] = sel[l] ? e1[l] : e0[l];
}

void k_fma_run(double* dst, const double* src, const double* dw, const double* tw,
               const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const float64x2_t s = vld1q_f64(src + l);  // reused across the run
        for (std::size_t g = 0; g < runs; ++g) {
            double* d = dst + g * L + l;
            const float64x2_t ev = vld1q_f64(e + g * L + l);
            const float64x2_t wv =
                vaddq_f64(vdupq_n_f64(dw[g]), vmulq_f64(vdupq_n_f64(tw[g]), ev));
            vst1q_f64(d, vaddq_f64(vld1q_f64(d), vmulq_f64(s, wv)));
        }
    }
    for (; l < L; ++l)
        for (std::size_t g = 0; g < runs; ++g)
            dst[g * L + l] += src[l] * (dw[g] + tw[g] * e[g * L + l]);
}

void k_fma_acc_run(double* acc, const double* src, const double* dw, const double* tw,
                   const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        float64x2_t a = vld1q_f64(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const float64x2_t sv = vld1q_f64(src + g * L + l);
            const float64x2_t ev = vld1q_f64(e + g * L + l);
            const float64x2_t wv =
                vaddq_f64(vdupq_n_f64(dw[g]), vmulq_f64(vdupq_n_f64(tw[g]), ev));
            a = vaddq_f64(a, vmulq_f64(sv, wv));
        }
        vst1q_f64(acc + l, a);
    }
    for (; l < L; ++l)
        for (std::size_t g = 0; g < runs; ++g)
            acc[l] += src[g * L + l] * (dw[g] + tw[g] * e[g * L + l]);
}

void k_fma_dest_run(double* dst, const double* src, const double* dw, const double* tw,
                    const double* e, const double* src_del, double w_del,
                    std::size_t cnt, std::size_t L) {
    const float64x2_t wdel = vdupq_n_f64(w_del);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const float64x2_t ev = vld1q_f64(e + l);  // unused garbage when cnt == 0
        float64x2_t a = vdupq_n_f64(0.0);
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            const float64x2_t sv = vld1q_f64(src + i * L + l);
            const float64x2_t wv =
                vaddq_f64(vdupq_n_f64(dw[gi]), vmulq_f64(vdupq_n_f64(tw[gi]), ev));
            a = vaddq_f64(a, vmulq_f64(sv, wv));
        }
        if (src_del) a = vaddq_f64(a, vmulq_f64(vld1q_f64(src_del + l), wdel));
        vst1q_f64(dst + l, a);
    }
    for (; l < L; ++l) {
        double a = 0.0;
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            a += src[i * L + l] * (dw[gi] + tw[gi] * e[l]);
        }
        if (src_del) a += src_del[l] * w_del;
        dst[l] = a;
    }
}

void k_axpy_lanes(double* dst, const double* src, const double* w, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const float64x2_t d = vld1q_f64(dst + l);
        const float64x2_t s = vld1q_f64(src + l);
        vst1q_f64(dst + l, vaddq_f64(d, vmulq_f64(s, vld1q_f64(w + l))));
    }
    for (; l < L; ++l) dst[l] += src[l] * w[l];
}

void k_fma_acc_run_pl(double* acc, const double* src, const double* dw, const double* tw,
                      const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        float64x2_t a = vld1q_f64(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const float64x2_t sv = vld1q_f64(src + g * L + l);
            const float64x2_t ev = vld1q_f64(e + g * L + l);
            const float64x2_t wv = vaddq_f64(
                vld1q_f64(dw + g * L + l), vmulq_f64(vld1q_f64(tw + g * L + l), ev));
            a = vaddq_f64(a, vmulq_f64(sv, wv));
        }
        vst1q_f64(acc + l, a);
    }
    for (; l < L; ++l)
        for (std::size_t g = 0; g < runs; ++g)
            acc[l] += src[g * L + l] * (dw[g * L + l] + tw[g * L + l] * e[g * L + l]);
}

void k_fma_dest_run_pl(double* dst, const double* src, const double* dw, const double* tw,
                       const double* e, const double* src_del, const double* w_del,
                       std::size_t cnt, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const float64x2_t ev = vld1q_f64(e + l);  // unused garbage when cnt == 0
        float64x2_t a = vdupq_n_f64(0.0);
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi =
                -static_cast<std::ptrdiff_t>(i * L) + static_cast<std::ptrdiff_t>(l);
            const float64x2_t sv = vld1q_f64(src + i * L + l);
            const float64x2_t wv =
                vaddq_f64(vld1q_f64(dw + gi), vmulq_f64(vld1q_f64(tw + gi), ev));
            a = vaddq_f64(a, vmulq_f64(sv, wv));
        }
        if (src_del)
            a = vaddq_f64(a, vmulq_f64(vld1q_f64(src_del + l), vld1q_f64(w_del + l)));
        vst1q_f64(dst + l, a);
    }
    for (; l < L; ++l) {
        double a = 0.0;
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi =
                -static_cast<std::ptrdiff_t>(i * L) + static_cast<std::ptrdiff_t>(l);
            a += src[i * L + l] * (dw[gi] + tw[gi] * e[l]);
        }
        if (src_del) a += src_del[l] * w_del[l];
        dst[l] = a;
    }
}

constexpr LaneKernels kNeonKernels = {
    k_axpy,         k_fma_weighted, k_accumulate,     k_maximum,     k_divide,
    k_select_const, k_select_lanes, k_fma_run,        k_fma_acc_run,
    k_fma_dest_run, k_axpy_lanes,   k_fma_acc_run_pl, k_fma_dest_run_pl,
    "neon",         kW,             util::SimdPath::neon,
};

}  // namespace

const LaneKernels* lane_kernels_neon() noexcept { return &kNeonKernels; }

}  // namespace ccap::info

#endif  // aarch64
