#include "ccap/info/blahut_arimoto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ccap/info/entropy.hpp"

namespace ccap::info {
namespace {

/// Relative-entropy "distance" D_x = sum_y W(y|x) log2(W(y|x)/q(y)).
/// If W(y|x) > 0 while q(y) == 0 the value is +inf; with a strictly positive
/// starting distribution q(y)=0 implies column y is all-zero, so this cannot
/// trigger for reachable outputs.
std::vector<double> divergence_to_output(const util::Matrix& w, std::span<const double> q) {
    std::vector<double> d(w.rows(), 0.0);
    for (std::size_t x = 0; x < w.rows(); ++x) {
        double acc = 0.0;
        for (std::size_t y = 0; y < w.cols(); ++y) {
            const double wxy = w(x, y);
            if (wxy > 0.0) acc += wxy * std::log2(wxy / q[y]);
        }
        d[x] = acc;
    }
    return d;
}

std::vector<double> output_dist(const util::Matrix& w, std::span<const double> p) {
    std::vector<double> q(w.cols(), 0.0);
    for (std::size_t x = 0; x < w.rows(); ++x) {
        if (p[x] == 0.0) continue;
        for (std::size_t y = 0; y < w.cols(); ++y) q[y] += p[x] * w(x, y);
    }
    return q;
}

}  // namespace

BlahutArimotoResult blahut_arimoto(const Dmc& channel, const BlahutArimotoOptions& opts) {
    const util::Matrix& w = channel.matrix();
    const std::size_t nx = w.rows();
    BlahutArimotoResult res;
    res.optimal_input.assign(nx, 1.0 / static_cast<double>(nx));

    for (int it = 0; it < opts.max_iterations; ++it) {
        const std::vector<double> q = output_dist(w, res.optimal_input);
        const std::vector<double> d = divergence_to_output(w, q);

        double lower = 0.0;                                        // I(p) at current p
        double upper = -std::numeric_limits<double>::infinity();   // max_x D_x
        for (std::size_t x = 0; x < nx; ++x) {
            lower += res.optimal_input[x] * d[x];
            upper = std::max(upper, d[x]);
        }
        res.lower_bound = std::max(0.0, lower);
        res.upper_bound = upper;
        res.iterations = it + 1;
        if (upper - lower < opts.tolerance) {
            res.converged = true;
            break;
        }
        // p'(x) proportional to p(x) * 2^{D_x}; subtract max for stability.
        double z = 0.0;
        for (std::size_t x = 0; x < nx; ++x) {
            res.optimal_input[x] *= std::exp2(d[x] - upper);
            z += res.optimal_input[x];
        }
        for (double& v : res.optimal_input) v /= z;
    }
    // With convergence the sandwich midpoint is within tolerance/2 of C;
    // without convergence report the rigorous lower bound.
    res.capacity = res.converged ? 0.5 * (res.lower_bound + res.upper_bound) : res.lower_bound;
    return res;
}

PerCostResult capacity_per_unit_cost(const Dmc& channel, std::span<const double> costs,
                                     const BlahutArimotoOptions& opts) {
    const util::Matrix& w = channel.matrix();
    const std::size_t nx = w.rows();
    if (costs.size() != nx)
        throw std::invalid_argument("capacity_per_unit_cost: costs size mismatch");
    for (double c : costs)
        if (!(c > 0.0)) throw std::domain_error("capacity_per_unit_cost: costs must be > 0");

    // Dinkelbach iteration: given lambda, maximize I(p) - lambda * E_p[cost]
    // by cost-tilted Blahut-Arimoto; update lambda = I(p*) / E_{p*}[cost].
    PerCostResult out;
    std::vector<double> p(nx, 1.0 / static_cast<double>(nx));
    double lambda = 0.0;

    const auto rate_and_cost = [&](std::span<const double> dist) {
        const double mi = mutual_information(dist, w);
        double cost = 0.0;
        for (std::size_t x = 0; x < nx; ++x) cost += dist[x] * costs[x];
        return std::pair{mi, cost};
    };

    for (int outer = 0; outer < 200; ++outer) {
        // Inner tilted Blahut-Arimoto for max_p I(p) - lambda * E[cost].
        for (int it = 0; it < opts.max_iterations; ++it) {
            const std::vector<double> q = output_dist(w, p);
            const std::vector<double> d = divergence_to_output(w, q);
            double best = -std::numeric_limits<double>::infinity();
            for (std::size_t x = 0; x < nx; ++x)
                best = std::max(best, d[x] - lambda * costs[x]);
            double z = 0.0;
            double gap = 0.0;
            for (std::size_t x = 0; x < nx; ++x) {
                const double score = d[x] - lambda * costs[x];
                gap += p[x] * (best - score);
                p[x] *= std::exp2(score - best);
                z += p[x];
            }
            for (double& v : p) v /= z;
            if (gap < opts.tolerance) break;
        }
        const auto [mi, cost] = rate_and_cost(p);
        const double new_lambda = mi / cost;
        out.outer_iterations = outer + 1;
        if (std::abs(new_lambda - lambda) < opts.tolerance * std::max(1.0, new_lambda)) {
            lambda = new_lambda;
            out.converged = true;
            break;
        }
        lambda = new_lambda;
    }
    out.lambda = lambda;
    out.capacity_per_cost = lambda;
    out.optimal_input = std::move(p);
    return out;
}

}  // namespace ccap::info
