#include "ccap/info/deletion_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ccap/info/entropy.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/thread_pool.hpp"

namespace ccap::info {

double erasure_upper_bound(double p_d, unsigned bits_per_symbol) {
    if (p_d < 0.0 || p_d > 1.0) throw std::domain_error("erasure_upper_bound: p_d outside [0,1]");
    if (bits_per_symbol == 0) throw std::invalid_argument("erasure_upper_bound: zero-bit symbols");
    return static_cast<double>(bits_per_symbol) * (1.0 - p_d);
}

double gallager_deletion_lower_bound(double p_d) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("gallager_deletion_lower_bound: p_d outside [0,1]");
    // The random-coding argument behind 1 - H(p) only applies for p <= 1/2;
    // past that point the expression rises again and would cross the
    // erasure upper bound, so we report 0 there.
    if (p_d > 0.5) return 0.0;
    return std::max(0.0, 1.0 - binary_entropy(p_d));
}

double mitzenmacher_drinea_lower_bound(double p_d) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("mitzenmacher_drinea_lower_bound: p_d outside [0,1]");
    return (1.0 - p_d) / 9.0;
}

double small_p_deletion_expansion(double p_d) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("small_p_deletion_expansion: p_d outside [0,1]");
    if (p_d == 0.0) return 1.0;
    constexpr double kA = 1.15416377;  // Kanoria & Montanari (2013)
    return std::max(0.0, 1.0 + p_d * std::log2(p_d) - kA * p_d);
}

std::vector<std::uint8_t> simulate_drift_channel(std::span<const std::uint8_t> transmitted,
                                                 const DriftParams& params, util::Rng& rng) {
    params.validate();
    const unsigned m = params.alphabet;
    for (std::uint8_t s : transmitted)
        if (s >= m) throw std::out_of_range("simulate_drift_channel: symbol out of alphabet");

    std::vector<std::uint8_t> received;
    received.reserve(transmitted.size() + 8);
    const auto random_symbol = [&] {
        return static_cast<std::uint8_t>(rng.uniform_below(m));
    };
    const auto substitute = [&](std::uint8_t s) {
        if (params.p_s <= 0.0 || !rng.bernoulli(params.p_s)) return s;
        // Uniform over the other m-1 symbols.
        auto r = static_cast<std::uint8_t>(rng.uniform_below(m - 1));
        return static_cast<std::uint8_t>(r >= s ? r + 1 : r);
    };

    for (std::uint8_t s : transmitted) {
        for (;;) {
            const double u = rng.uniform();
            if (u < params.p_i) {
                received.push_back(random_symbol());  // insertion, symbol stays queued
            } else if (u < params.p_i + params.p_d) {
                break;  // deletion consumes the queued symbol silently
            } else {
                received.push_back(substitute(s));  // transmission
                break;
            }
        }
    }
    // Trailing insertions after the queue empties.
    while (rng.bernoulli(params.p_i)) received.push_back(random_symbol());
    return received;
}

std::vector<std::uint8_t> simulate_markov_source(const MarkovSource& source, unsigned alphabet,
                                                 std::size_t length, util::Rng& rng) {
    source.validate(alphabet);
    std::vector<std::uint8_t> out(length);
    if (length == 0) return out;
    // categorical guarantees an in-range draw for the validated (hence
    // non-empty, stochastic) rows, so no clamping is needed.
    out[0] = static_cast<std::uint8_t>(rng.categorical(source.initial));
    for (std::size_t i = 1; i < length; ++i)
        out[i] = static_cast<std::uint8_t>(rng.categorical(source.transition.row(out[i - 1])));
    return out;
}

namespace {

/// Shared scaffolding of the two Monte-Carlo estimators: one root seed is
/// split off the caller's Rng, every block runs on its own substream, and
/// the per-block samples are folded in block order — the result cannot
/// depend on the thread count or on scheduling.
template <typename BlockFn>
MiEstimate parallel_mc_estimate(const McOptions& opts, util::Rng& rng, BlockFn&& sample_block) {
    const std::uint64_t root = rng.next();
    std::vector<double> samples(opts.num_blocks, 0.0);
    util::parallel_for(
        util::ThreadPool::shared(), opts.num_blocks,
        [&](std::size_t b) {
            util::Rng block_rng(util::substream_seed(root, b));
            samples[b] = sample_block(block_rng);
        },
        opts.threads);
    util::RunningStats stats;
    for (double v : samples) stats.add(v);
    return {std::max(0.0, stats.mean()), stats.sem(), opts.num_blocks, opts.block_len};
}

/// Batched variant: blocks are grouped into tiles of `batch` consecutive
/// blocks and each tile runs its lattice sweeps through the lockstep
/// engine. Seeding stays per block (substream by block index, folded in
/// block order), so the samples — and hence the estimate — are the same
/// as the scalar path for any batch/threads combination at band_eps = 0.
/// sample_tile(b0, out) must fill out[i] with the sample of block b0 + i.
template <typename TileFn>
MiEstimate parallel_mc_estimate_tiles(const McOptions& opts, std::size_t batch,
                                      util::Rng& rng, TileFn&& sample_tile) {
    const std::uint64_t root = rng.next();
    std::vector<double> samples(opts.num_blocks, 0.0);
    const std::size_t tiles = (opts.num_blocks + batch - 1) / batch;
    util::parallel_for(
        util::ThreadPool::shared(), tiles,
        [&](std::size_t t) {
            const std::size_t b0 = t * batch;
            const std::size_t b1 = std::min(b0 + batch, opts.num_blocks);
            sample_tile(root, b0, std::span<double>(samples).subspan(b0, b1 - b0));
        },
        opts.threads);
    util::RunningStats stats;
    for (double v : samples) stats.add(v);
    return {std::max(0.0, stats.mean()), stats.sem(), opts.num_blocks, opts.block_len};
}

/// McOptions::band_eps > 0 overrides the params' own band setting for the
/// Monte-Carlo lattice passes.
DriftParams effective_params(const DriftParams& params, const McOptions& opts) {
    DriftParams p = params;
    if (opts.band_eps > 0.0) p.band_eps = opts.band_eps;
    return p;
}

}  // namespace

std::size_t resolved_mc_batch(const McOptions& opts, const DriftParams& params) {
    if (opts.tiling == McTiling::scalar) return 1;
    std::size_t b = opts.batch;
    if (b == 0) {
        // Auto: size the tile so the hot set of a lockstep row step —
        // previous and current alpha rows plus the emission plane, each
        // width * batch doubles — stays around 32 KiB (L1-resident on
        // common cores), clamped to a sensible lane range.
        const std::size_t width = static_cast<std::size_t>(2 * params.max_drift + 1);
        constexpr std::size_t kTileBytes = 32 * 1024;
        b = kTileBytes / (3 * width * sizeof(double));
        b = std::clamp<std::size_t>(b, 4, 32);
        // Shape the tile for the active SIMD path: a multiple of the
        // vector width (the batched engine pads lanes to it, so anything
        // else wastes kernel lanes). Deliberately NOT a function of
        // opts.threads — with band_eps > 0 the tile size shifts the shared
        // union band, and the McOptions contract promises estimates
        // invariant in the thread count.
        const std::size_t W = util::simd_vector_doubles(util::active_simd_path());
        b = std::max(W, b / W * W);
    }
    if (opts.num_blocks > 0) b = std::min(b, opts.num_blocks);
    return std::max<std::size_t>(1, b);
}

MiEstimate markov_mutual_information_rate(const DriftParams& params, const MarkovSource& source,
                                          const McOptions& opts, util::Rng& rng) {
    params.validate();
    source.validate(params.alphabet);
    if (opts.block_len == 0 || opts.num_blocks == 0)
        throw std::invalid_argument("markov_mutual_information_rate: empty experiment");

    const DriftHmm hmm(effective_params(params, opts));
    const std::size_t batch = resolved_mc_batch(opts, params);
    if (batch <= 1) {
        return parallel_mc_estimate(opts, rng, [&](util::Rng& block_rng) {
            const std::vector<std::uint8_t> tx =
                simulate_markov_source(source, params.alphabet, opts.block_len, block_rng);
            const std::vector<std::uint8_t> rx = simulate_drift_channel(tx, params, block_rng);
            // One leased workspace per pool worker: the lattice passes of a
            // block reuse the same arenas, allocation-free at steady state.
            ScopedWorkspace ws;
            const double log_cond = hmm.log2_likelihood(tx, rx, ws);
            const double log_marg = hmm.log2_markov_marginal(source, opts.block_len, rx, ws);
            if (!std::isfinite(log_cond) || !std::isfinite(log_marg))
                return 0.0;  // outside the truncation: score zero information
            return (log_cond - log_marg) / static_cast<double>(opts.block_len);
        });
    }
    // Batched tile: the conditional likelihoods of a tile run in lockstep;
    // the joint (drift, symbol) Markov marginal has no batched counterpart
    // yet and stays scalar per lane.
    return parallel_mc_estimate_tiles(
        opts, batch, rng,
        [&](std::uint64_t root, std::size_t b0, std::span<double> out) {
            const std::size_t lanes = out.size();
            std::vector<std::vector<std::uint8_t>> tx(lanes), rx(lanes);
            std::vector<DriftHmm::SymbolSpan> txv(lanes), rxv(lanes);
            for (std::size_t i = 0; i < lanes; ++i) {
                util::Rng block_rng(util::substream_seed(root, b0 + i));
                tx[i] = simulate_markov_source(source, params.alphabet, opts.block_len,
                                               block_rng);
                rx[i] = simulate_drift_channel(tx[i], params, block_rng);
                txv[i] = tx[i];
                rxv[i] = rx[i];
            }
            ScopedWorkspace ws;
            const std::vector<BandedEvidence> cond =
                hmm.log2_likelihood_batch(txv, rxv, ws);
            for (std::size_t i = 0; i < lanes; ++i) {
                const double log_cond = cond[i].log2_evidence;
                const double log_marg =
                    hmm.log2_markov_marginal(source, opts.block_len, rx[i], ws);
                out[i] = (std::isfinite(log_cond) && std::isfinite(log_marg))
                             ? (log_cond - log_marg) / static_cast<double>(opts.block_len)
                             : 0.0;
            }
        });
}

MiEstimate markov_mutual_information_rate(const DriftParams& params, const MarkovSource& source,
                                          std::size_t block_len, std::size_t num_blocks,
                                          util::Rng& rng) {
    return markov_mutual_information_rate(params, source, McOptions{block_len, num_blocks, 0},
                                          rng);
}

MiEstimate iid_mutual_information_rate(const DriftParams& params, const McOptions& opts,
                                       util::Rng& rng) {
    params.validate();
    if (opts.block_len == 0 || opts.num_blocks == 0)
        throw std::invalid_argument("iid_mutual_information_rate: empty experiment");

    const DriftHmm hmm(effective_params(params, opts));
    const unsigned m = params.alphabet;
    const util::Matrix uniform_priors(opts.block_len, m, 1.0 / static_cast<double>(m));
    const std::size_t batch = resolved_mc_batch(opts, params);

    if (batch <= 1) {
        return parallel_mc_estimate(opts, rng, [&](util::Rng& block_rng) {
            std::vector<std::uint8_t> tx(opts.block_len);
            for (auto& s : tx) s = static_cast<std::uint8_t>(block_rng.uniform_below(m));
            const std::vector<std::uint8_t> rx = simulate_drift_channel(tx, params, block_rng);

            // One leased workspace per pool worker (see the Markov
            // estimator). The marginal needs only the forward evidence.
            ScopedWorkspace ws;
            const double log_cond = hmm.log2_likelihood(tx, rx, ws);
            const double log_marg =
                hmm.log2_prior_marginal_banded(uniform_priors, rx, ws).log2_evidence;
            if (!std::isfinite(log_cond) || !std::isfinite(log_marg)) {
                // Block fell outside the lattice truncation; score it zero
                // information, preserving the lower-bound semantics.
                return 0.0;
            }
            return (log_cond - log_marg) / static_cast<double>(opts.block_len);
        });
    }
    // Batched tile: both the point-prior conditional and the uniform-prior
    // marginal of a tile's blocks run in lockstep through the SoA engine.
    return parallel_mc_estimate_tiles(
        opts, batch, rng,
        [&](std::uint64_t root, std::size_t b0, std::span<double> out) {
            const std::size_t lanes = out.size();
            std::vector<std::vector<std::uint8_t>> tx(lanes), rx(lanes);
            std::vector<DriftHmm::SymbolSpan> txv(lanes), rxv(lanes);
            for (std::size_t i = 0; i < lanes; ++i) {
                util::Rng block_rng(util::substream_seed(root, b0 + i));
                tx[i].resize(opts.block_len);
                for (auto& s : tx[i])
                    s = static_cast<std::uint8_t>(block_rng.uniform_below(m));
                rx[i] = simulate_drift_channel(tx[i], params, block_rng);
                txv[i] = tx[i];
                rxv[i] = rx[i];
            }
            ScopedWorkspace ws;
            const std::vector<BandedEvidence> cond =
                hmm.log2_likelihood_batch(txv, rxv, ws);
            const std::vector<BandedEvidence> marg =
                hmm.log2_prior_marginal_batch(uniform_priors, rxv, ws);
            for (std::size_t i = 0; i < lanes; ++i) {
                const double log_cond = cond[i].log2_evidence;
                const double log_marg = marg[i].log2_evidence;
                out[i] = (std::isfinite(log_cond) && std::isfinite(log_marg))
                             ? (log_cond - log_marg) / static_cast<double>(opts.block_len)
                             : 0.0;
            }
        });
}

MiEstimate iid_mutual_information_rate(const DriftParams& params, std::size_t block_len,
                                       std::size_t num_blocks, util::Rng& rng) {
    return iid_mutual_information_rate(params, McOptions{block_len, num_blocks, 0}, rng);
}

std::vector<MiEstimate> iid_mutual_information_rate_points(
    std::span<const CapacityPoint> points, const McOptions& opts) {
    std::vector<MiEstimate> out(points.size());
    McOptions inner = opts;
    inner.threads = 1;  // the point axis owns the parallelism
    util::parallel_for(
        util::ThreadPool::shared(), points.size(),
        [&](std::size_t i) {
            util::Rng rng(points[i].seed);
            out[i] = iid_mutual_information_rate(points[i].params, inner, rng);
        },
        opts.threads);
    return out;
}

}  // namespace ccap::info
