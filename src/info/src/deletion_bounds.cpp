#include "ccap/info/deletion_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ccap/info/batch_lattice.hpp"
#include "ccap/info/entropy.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/thread_pool.hpp"

namespace ccap::info {

double erasure_upper_bound(double p_d, unsigned bits_per_symbol) {
    if (p_d < 0.0 || p_d > 1.0) throw std::domain_error("erasure_upper_bound: p_d outside [0,1]");
    if (bits_per_symbol == 0) throw std::invalid_argument("erasure_upper_bound: zero-bit symbols");
    return static_cast<double>(bits_per_symbol) * (1.0 - p_d);
}

double gallager_deletion_lower_bound(double p_d) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("gallager_deletion_lower_bound: p_d outside [0,1]");
    // The random-coding argument behind 1 - H(p) only applies for p <= 1/2;
    // past that point the expression rises again and would cross the
    // erasure upper bound, so we report 0 there.
    if (p_d > 0.5) return 0.0;
    return std::max(0.0, 1.0 - binary_entropy(p_d));
}

double mitzenmacher_drinea_lower_bound(double p_d) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("mitzenmacher_drinea_lower_bound: p_d outside [0,1]");
    return (1.0 - p_d) / 9.0;
}

double small_p_deletion_expansion(double p_d) {
    if (p_d < 0.0 || p_d > 1.0)
        throw std::domain_error("small_p_deletion_expansion: p_d outside [0,1]");
    if (p_d == 0.0) return 1.0;
    constexpr double kA = 1.15416377;  // Kanoria & Montanari (2013)
    return std::max(0.0, 1.0 + p_d * std::log2(p_d) - kA * p_d);
}

std::vector<std::uint8_t> simulate_drift_channel(std::span<const std::uint8_t> transmitted,
                                                 const DriftParams& params, util::Rng& rng) {
    params.validate();
    const unsigned m = params.alphabet;
    for (std::uint8_t s : transmitted)
        if (s >= m) throw std::out_of_range("simulate_drift_channel: symbol out of alphabet");

    std::vector<std::uint8_t> received;
    received.reserve(transmitted.size() + 8);
    const auto random_symbol = [&] {
        return static_cast<std::uint8_t>(rng.uniform_below(m));
    };
    const auto substitute = [&](std::uint8_t s) {
        if (params.p_s <= 0.0 || !rng.bernoulli(params.p_s)) return s;
        // Uniform over the other m-1 symbols.
        auto r = static_cast<std::uint8_t>(rng.uniform_below(m - 1));
        return static_cast<std::uint8_t>(r >= s ? r + 1 : r);
    };

    for (std::uint8_t s : transmitted) {
        for (;;) {
            const double u = rng.uniform();
            if (u < params.p_i) {
                received.push_back(random_symbol());  // insertion, symbol stays queued
            } else if (u < params.p_i + params.p_d) {
                break;  // deletion consumes the queued symbol silently
            } else {
                received.push_back(substitute(s));  // transmission
                break;
            }
        }
    }
    // Trailing insertions after the queue empties.
    while (rng.bernoulli(params.p_i)) received.push_back(random_symbol());
    return received;
}

std::vector<std::uint8_t> simulate_markov_source(const MarkovSource& source, unsigned alphabet,
                                                 std::size_t length, util::Rng& rng) {
    source.validate(alphabet);
    std::vector<std::uint8_t> out(length);
    if (length == 0) return out;
    // categorical guarantees an in-range draw for the validated (hence
    // non-empty, stochastic) rows, so no clamping is needed.
    out[0] = static_cast<std::uint8_t>(rng.categorical(source.initial));
    for (std::size_t i = 1; i < length; ++i)
        out[i] = static_cast<std::uint8_t>(rng.categorical(source.transition.row(out[i - 1])));
    return out;
}

namespace {

/// Adaptive-precision Monte-Carlo driver shared by every estimator.
///
/// One root seed is split off the caller's Rng; block b always runs on
/// substream b of that root and the per-block samples fold in block order
/// through the compensated accumulator — so the samples, the fold, and
/// therefore the SEM trajectory are pure functions of (root, options,
/// params), independent of threads, batch and scheduling.
///
/// Fixed mode (target_sem == 0) runs one round of exactly num_blocks
/// blocks: the historical behavior, bit for bit. Adaptive mode runs rounds
/// of mc_round_blocks blocks and re-checks the fold-order SEM after each
/// round, stopping at the first round boundary where SEM <= target_sem or
/// at mc_block_cap blocks. Because the check only reads the deterministic
/// fold, the data-dependent stopping time is itself seed-deterministic.
///
/// Within a round, work is parallelized at lockstep-tile granularity with
/// tile boundaries aligned to global multiples of `batch` counted from
/// block 0 (never from the round start), so the tile partition of blocks
/// [0, spent) is independent of where the rounds fell.
/// sample_range(root, b0, out) must fill out[i] with the sample of block
/// b0 + i, serially (the driver owns the parallelism); every range it
/// receives lies within one aligned tile.
template <typename RangeFn>
MiEstimate adaptive_mc_estimate(const McOptions& opts, std::size_t batch, util::Rng& rng,
                                RangeFn&& sample_range) {
    const std::uint64_t root = rng.next();
    const std::size_t cap = mc_block_cap(opts);
    const bool adaptive = opts.target_sem > 0.0;
    const std::size_t round = adaptive ? mc_round_blocks(opts) : cap;

    util::CompensatedStats stats;
    std::vector<double> samples;
    std::size_t spent = 0;
    bool converged = !adaptive;
    while (spent < cap) {
        const std::size_t b0 = spent;
        const std::size_t b1 = std::min(cap, b0 + round);
        samples.assign(b1 - b0, 0.0);
        const std::size_t t0 = b0 / batch;
        const std::size_t t1 = (b1 + batch - 1) / batch;
        util::parallel_for(
            util::ThreadPool::shared(), t1 - t0,
            [&](std::size_t ti) {
                const std::size_t t = t0 + ti;
                const std::size_t lo = std::max(b0, t * batch);
                const std::size_t hi = std::min(b1, (t + 1) * batch);
                sample_range(root, lo, std::span<double>(samples).subspan(lo - b0, hi - lo));
            },
            opts.threads);
        for (double v : samples) stats.add(v);
        spent = b1;
        if (adaptive && spent >= 2 && stats.sem() <= opts.target_sem) {
            converged = true;
            break;
        }
    }
    return {std::max(0.0, stats.mean()), stats.sem(), spent, opts.block_len, converged};
}

/// McOptions::band_eps > 0 overrides the params' own band setting for the
/// Monte-Carlo lattice passes.
DriftParams effective_params(const DriftParams& params, const McOptions& opts) {
    DriftParams p = params;
    if (opts.band_eps > 0.0) p.band_eps = opts.band_eps;
    return p;
}

}  // namespace

std::size_t mc_round_blocks(const McOptions& opts) {
    return std::max<std::size_t>(2, opts.num_blocks);
}

std::size_t mc_block_cap(const McOptions& opts) {
    if (!(opts.target_sem > 0.0)) return opts.num_blocks;
    constexpr std::size_t kDefaultCapRounds = 64;
    const std::size_t cap =
        opts.max_blocks ? opts.max_blocks : kDefaultCapRounds * mc_round_blocks(opts);
    return std::max<std::size_t>(2, cap);
}

std::size_t resolved_point_tile(const McOptions& opts, std::size_t num_points) {
    if (opts.point_tile == 0 || num_points == 0) return 0;
    std::size_t g = opts.point_tile;
    if (g == kMcPointTileAuto) {
        // Auto: a small multiple of the active vector width — enough points
        // per tile to amortize the shared tape and fill vectors, few enough
        // that the heterogeneous union band stays tight.
        const std::size_t W = util::simd_vector_doubles(util::active_simd_path());
        g = std::max<std::size_t>(W, 8);
        g = g / W * W;
    }
    // Clamp, never pad: a tile smaller than the vector width runs unpadded
    // through the masked-tail kernels instead of paying for dead lanes.
    return std::min(g, num_points);
}

std::size_t resolved_mc_batch(const McOptions& opts, const DriftParams& params) {
    if (opts.tiling == McTiling::scalar) return 1;
    std::size_t b = opts.batch;
    if (b == 0) {
        // Auto: size the tile so the hot set of a lockstep row step —
        // previous and current alpha rows plus the emission plane, each
        // width * batch doubles — stays around 32 KiB (L1-resident on
        // common cores), clamped to a sensible lane range.
        const std::size_t width = static_cast<std::size_t>(2 * params.max_drift + 1);
        constexpr std::size_t kTileBytes = 32 * 1024;
        b = kTileBytes / (3 * width * sizeof(double));
        b = std::clamp<std::size_t>(b, 4, 32);
        // Shape the tile for the active SIMD path: a multiple of the
        // vector width (the batched engine pads lanes to it, so anything
        // else wastes kernel lanes). Deliberately NOT a function of
        // opts.threads — with band_eps > 0 the tile size shifts the shared
        // union band, and the McOptions contract promises estimates
        // invariant in the thread count.
        const std::size_t W = util::simd_vector_doubles(util::active_simd_path());
        b = std::max(W, b / W * W);
    }
    if (opts.num_blocks > 0) b = std::min(b, opts.num_blocks);
    return std::max<std::size_t>(1, b);
}

namespace {

/// Serial sampler of iid-input MI blocks [b0, b0 + out.size()): each block
/// generates tx/rx on its own substream of `root`, then both the
/// point-prior conditional and the uniform-prior marginal sweep the
/// lattice — in lockstep tiles aligned to global multiples of `batch`
/// counted from block 0 (batch <= 1 routes to the scalar engine). The
/// alignment makes the tile partition a function of the block indices
/// alone, so any carve-up of [0, N) into ranges produces the same sweeps.
/// One leased workspace per call: the lattice passes reuse the same
/// arenas, allocation-free at steady state.
struct IidBlockSampler {
    const DriftHmm& hmm;
    const DriftParams& params;
    const util::Matrix& priors;
    std::size_t block_len;
    std::size_t batch;

    void operator()(std::uint64_t root, std::size_t b0, std::span<double> out) const {
        const unsigned m = params.alphabet;
        ScopedWorkspace ws;
        if (batch <= 1) {
            std::vector<std::uint8_t> tx(block_len);
            for (std::size_t i = 0; i < out.size(); ++i) {
                util::Rng block_rng(util::substream_seed(root, b0 + i));
                for (auto& s : tx) s = static_cast<std::uint8_t>(block_rng.uniform_below(m));
                const std::vector<std::uint8_t> rx =
                    simulate_drift_channel(tx, params, block_rng);
                const double log_cond = hmm.log2_likelihood(tx, rx, ws);
                const double log_marg =
                    hmm.log2_prior_marginal_banded(priors, rx, ws).log2_evidence;
                // Non-finite = the block fell outside the lattice
                // truncation; score it zero information, preserving the
                // lower-bound semantics.
                out[i] = (std::isfinite(log_cond) && std::isfinite(log_marg))
                             ? (log_cond - log_marg) / static_cast<double>(block_len)
                             : 0.0;
            }
            return;
        }
        std::size_t pos = 0;
        while (pos < out.size()) {
            const std::size_t b = b0 + pos;
            const std::size_t tile_end = (b / batch + 1) * batch;  // global alignment
            const std::size_t lanes = std::min(out.size() - pos, tile_end - b);
            std::vector<std::vector<std::uint8_t>> tx(lanes), rx(lanes);
            std::vector<DriftHmm::SymbolSpan> txv(lanes), rxv(lanes);
            for (std::size_t i = 0; i < lanes; ++i) {
                util::Rng block_rng(util::substream_seed(root, b + i));
                tx[i].resize(block_len);
                for (auto& s : tx[i])
                    s = static_cast<std::uint8_t>(block_rng.uniform_below(m));
                rx[i] = simulate_drift_channel(tx[i], params, block_rng);
                txv[i] = tx[i];
                rxv[i] = rx[i];
            }
            const std::vector<BandedEvidence> cond = hmm.log2_likelihood_batch(txv, rxv, ws);
            const std::vector<BandedEvidence> marg =
                hmm.log2_prior_marginal_batch(priors, rxv, ws);
            for (std::size_t i = 0; i < lanes; ++i) {
                const double log_cond = cond[i].log2_evidence;
                const double log_marg = marg[i].log2_evidence;
                out[pos + i] = (std::isfinite(log_cond) && std::isfinite(log_marg))
                                   ? (log_cond - log_marg) / static_cast<double>(block_len)
                                   : 0.0;
            }
            pos += lanes;
        }
    }
};

/// Markov-source counterpart. The conditional likelihoods of a tile run in
/// lockstep; the joint (drift, symbol) Markov marginal has no batched
/// counterpart yet and stays scalar per lane.
struct MarkovBlockSampler {
    const DriftHmm& hmm;
    const DriftParams& params;
    const MarkovSource& source;
    std::size_t block_len;
    std::size_t batch;

    void operator()(std::uint64_t root, std::size_t b0, std::span<double> out) const {
        ScopedWorkspace ws;
        if (batch <= 1) {
            for (std::size_t i = 0; i < out.size(); ++i) {
                util::Rng block_rng(util::substream_seed(root, b0 + i));
                const std::vector<std::uint8_t> tx =
                    simulate_markov_source(source, params.alphabet, block_len, block_rng);
                const std::vector<std::uint8_t> rx =
                    simulate_drift_channel(tx, params, block_rng);
                const double log_cond = hmm.log2_likelihood(tx, rx, ws);
                const double log_marg = hmm.log2_markov_marginal(source, block_len, rx, ws);
                out[i] = (std::isfinite(log_cond) && std::isfinite(log_marg))
                             ? (log_cond - log_marg) / static_cast<double>(block_len)
                             : 0.0;
            }
            return;
        }
        std::size_t pos = 0;
        while (pos < out.size()) {
            const std::size_t b = b0 + pos;
            const std::size_t tile_end = (b / batch + 1) * batch;
            const std::size_t lanes = std::min(out.size() - pos, tile_end - b);
            std::vector<std::vector<std::uint8_t>> tx(lanes), rx(lanes);
            std::vector<DriftHmm::SymbolSpan> txv(lanes), rxv(lanes);
            for (std::size_t i = 0; i < lanes; ++i) {
                util::Rng block_rng(util::substream_seed(root, b + i));
                tx[i] = simulate_markov_source(source, params.alphabet, block_len, block_rng);
                rx[i] = simulate_drift_channel(tx[i], params, block_rng);
                txv[i] = tx[i];
                rxv[i] = rx[i];
            }
            const std::vector<BandedEvidence> cond = hmm.log2_likelihood_batch(txv, rxv, ws);
            for (std::size_t i = 0; i < lanes; ++i) {
                const double log_cond = cond[i].log2_evidence;
                const double log_marg = hmm.log2_markov_marginal(source, block_len, rx[i], ws);
                out[pos + i] = (std::isfinite(log_cond) && std::isfinite(log_marg))
                                   ? (log_cond - log_marg) / static_cast<double>(block_len)
                                   : 0.0;
            }
            pos += lanes;
        }
    }
};

}  // namespace

MiEstimate markov_mutual_information_rate(const DriftParams& params, const MarkovSource& source,
                                          const McOptions& opts, util::Rng& rng) {
    params.validate();
    source.validate(params.alphabet);
    if (opts.block_len == 0 || opts.num_blocks == 0)
        throw std::invalid_argument("markov_mutual_information_rate: empty experiment");

    const DriftHmm hmm(effective_params(params, opts));
    const std::size_t batch = resolved_mc_batch(opts, params);
    const MarkovBlockSampler sampler{hmm, params, source, opts.block_len, batch};
    return adaptive_mc_estimate(opts, batch, rng, sampler);
}

MiEstimate markov_mutual_information_rate(const DriftParams& params, const MarkovSource& source,
                                          std::size_t block_len, std::size_t num_blocks,
                                          util::Rng& rng) {
    return markov_mutual_information_rate(params, source, McOptions{block_len, num_blocks, 0},
                                          rng);
}

MiEstimate iid_mutual_information_rate(const DriftParams& params, const McOptions& opts,
                                       util::Rng& rng) {
    params.validate();
    if (opts.block_len == 0 || opts.num_blocks == 0)
        throw std::invalid_argument("iid_mutual_information_rate: empty experiment");

    const DriftHmm hmm(effective_params(params, opts));
    const util::Matrix uniform_priors(opts.block_len, params.alphabet,
                                      1.0 / static_cast<double>(params.alphabet));
    const std::size_t batch = resolved_mc_batch(opts, params);
    const IidBlockSampler sampler{hmm, params, uniform_priors, opts.block_len, batch};
    return adaptive_mc_estimate(opts, batch, rng, sampler);
}

MiEstimate iid_mutual_information_rate(const DriftParams& params, std::size_t block_len,
                                       std::size_t num_blocks, util::Rng& rng) {
    return iid_mutual_information_rate(params, McOptions{block_len, num_blocks, 0}, rng);
}

namespace {

/// Shared common-random-numbers variate tape of one Monte-Carlo block:
/// the transmitted symbols are drawn first (a FIXED number of draws —
/// inversion floor(u*m), never uniform_below's rejection loop, so the
/// tape's layout is a pure function of (root, block)), then channel-use
/// uniform triples (u_event, u_sym, u_sub) are drawn sequentially on
/// demand. Every point of a tile walks the same triple sequence,
/// interpreting each against its own thresholds — the CRN coupling of
/// docs/THEORY.md section 15.
struct CrnTape {
    util::Rng rng;
    std::vector<std::uint8_t> tx;               ///< block_len input symbols
    std::vector<double> u_event, u_sym, u_sub;  ///< per-channel-use triples

    CrnTape(std::uint64_t root, std::size_t block, std::size_t block_len, unsigned m)
        : rng(util::substream_seed(root, block)), tx(block_len) {
        for (auto& s : tx) s = symbol_from(rng.uniform(), m);
    }

    static std::uint8_t symbol_from(double u, unsigned m) {
        const auto v = static_cast<unsigned>(u * static_cast<double>(m));
        return static_cast<std::uint8_t>(v < m ? v : m - 1);
    }

    void ensure(std::size_t n) {
        while (u_event.size() < n) {
            u_event.push_back(rng.uniform());
            u_sym.push_back(rng.uniform());
            u_sub.push_back(rng.uniform());
        }
    }
};

/// Realize the tape's block under `params`: the generative walk of
/// simulate_drift_channel, driven by the shared triples. For any single
/// point the triples are fresh iid uniforms read at a stopping time, so
/// the realized received sequence has EXACTLY the Definition-1 channel law
/// — sharing the tape across points changes joint, not marginal,
/// distributions. Nearby points interpret most triples identically, so
/// their realizations (and MI samples) are positively correlated.
std::vector<std::uint8_t> crn_realize(CrnTape& tape, const DriftParams& params) {
    const unsigned m = params.alphabet;
    std::vector<std::uint8_t> rx;
    rx.reserve(tape.tx.size() + 8);
    std::size_t k = 0;
    const auto take = [&](double& ue, double& us, double& ub) {
        tape.ensure(k + 1);
        ue = tape.u_event[k];
        us = tape.u_sym[k];
        ub = tape.u_sub[k];
        ++k;
    };
    double ue = 0.0, us = 0.0, ub = 0.0;
    for (std::uint8_t s : tape.tx) {
        for (;;) {
            take(ue, us, ub);
            if (ue < params.p_i) {
                rx.push_back(CrnTape::symbol_from(us, m));  // insertion
            } else if (ue < params.p_i + params.p_d) {
                break;  // deletion
            } else {
                std::uint8_t sym = s;  // transmission (maybe substituted)
                if (params.p_s > 0.0 && ub < params.p_s) {
                    const std::uint8_t r = CrnTape::symbol_from(us, m - 1);
                    sym = static_cast<std::uint8_t>(r >= s ? r + 1 : r);
                }
                rx.push_back(sym);
                break;
            }
        }
    }
    for (;;) {  // trailing insertions
        take(ue, us, ub);
        if (!(ue < params.p_i)) break;
        rx.push_back(CrnTape::symbol_from(us, m));
    }
    return rx;
}

/// One CRN point tile: per-point folds plus the per-block sample history
/// the paired-difference SEMs are computed from.
struct CrnTileState {
    std::vector<DriftParams> eff;                ///< effective per-point params
    std::vector<util::CompensatedStats> stats;   ///< per-point fold
    std::vector<std::vector<double>> history;    ///< per-point samples, block order
    std::vector<std::size_t> spent;              ///< per-point blocks folded
    std::vector<char> converged;
};

/// Advance blocks [b0, b1) of the tile for the active point subset: each
/// sweep chunk covers kb consecutive blocks x active.size() points as
/// lanes of one per-lane-parameter lattice pass (lane = block-major, point
/// minor). Chunk boundaries align to global multiples of kb counted from
/// block 0, so the chunk partition — and with band_eps = 0 every lane's
/// sample — is a pure function of the block indices: thread- and
/// round-invariant. The fold runs serially in (block, point) order.
void crn_run_round(CrnTileState& st, std::span<const std::size_t> active,
                   const util::Matrix& priors, std::uint64_t root, std::size_t block_len,
                   double band_eps, std::size_t kb, std::size_t b0, std::size_t b1,
                   unsigned threads) {
    const std::size_t ga = active.size();
    const unsigned m = st.eff[active[0]].alphabet;
    std::vector<double> samples((b1 - b0) * ga, 0.0);
    const std::size_t t0 = b0 / kb;
    const std::size_t t1 = (b1 + kb - 1) / kb;
    util::parallel_for(
        util::ThreadPool::shared(), t1 - t0,
        [&](std::size_t ti) {
            const std::size_t t = t0 + ti;
            const std::size_t lo = std::max(b0, t * kb);
            const std::size_t hi = std::min(b1, (t + 1) * kb);
            const std::size_t nb = hi - lo;
            const std::size_t lanes = nb * ga;
            ScopedWorkspace ws;
            std::vector<std::vector<std::uint8_t>> txs(nb), rxs(lanes);
            std::vector<DriftParams> lane_params(lanes);
            for (std::size_t i = 0; i < nb; ++i) {
                CrnTape tape(root, lo + i, block_len, m);
                for (std::size_t gi = 0; gi < ga; ++gi) {
                    const std::size_t lane = i * ga + gi;
                    lane_params[lane] = st.eff[active[gi]];
                    rxs[lane] = crn_realize(tape, lane_params[lane]);
                }
                txs[i] = std::move(tape.tx);
            }
            std::vector<DriftHmm::SymbolSpan> txv(lanes), rxv(lanes);
            for (std::size_t i = 0; i < nb; ++i)
                for (std::size_t gi = 0; gi < ga; ++gi) {
                    txv[i * ga + gi] = txs[i];
                    rxv[i * ga + gi] = rxs[i * ga + gi];
                }
            const std::vector<BandedEvidence> cond =
                log2_likelihood_batch_per_lane(lane_params, txv, rxv, ws, band_eps);
            const std::vector<BandedEvidence> marg =
                log2_prior_marginal_batch_per_lane(lane_params, priors, rxv, ws, band_eps);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                const double lc = cond[lane].log2_evidence;
                const double lm = marg[lane].log2_evidence;
                samples[(lo - b0) * ga + lane] =
                    (std::isfinite(lc) && std::isfinite(lm))
                        ? (lc - lm) / static_cast<double>(block_len)
                        : 0.0;
            }
        },
        threads);
    for (std::size_t b = b0; b < b1; ++b)
        for (std::size_t gi = 0; gi < ga; ++gi) {
            const double v = samples[(b - b0) * ga + gi];
            const std::size_t g = active[gi];
            st.stats[g].add(v);
            st.history[g].push_back(v);
            st.spent[g] = b + 1;
        }
}

/// Per-point state of the adaptive cross-point scheduler. The root seed,
/// the model and the fold are all derived from the point alone, so every
/// decision the scheduler takes about this point — and the estimate it
/// emits — is independent of the other points' values (only the *budget*
/// couples points, and only when McOptions::point_budget binds).
struct PointCtx {
    DriftParams params;        ///< the channel the blocks sample
    DriftHmm hmm;              ///< built from effective_params (band override)
    util::Matrix priors;       ///< uniform input priors for the marginal pass
    std::size_t batch;         ///< resolved lockstep tile width for this point
    std::uint64_t root;        ///< Rng(point.seed).next(), as standalone would draw
    util::CompensatedStats stats;
    std::size_t spent = 0;
    bool converged = false;
};

}  // namespace

std::vector<MiEstimate> iid_mutual_information_rate_points(
    std::span<const CapacityPoint> points, const McOptions& opts) {
    return iid_mutual_information_rate_points(points, opts, nullptr);
}

std::vector<MiEstimate> iid_mutual_information_rate_points(
    std::span<const CapacityPoint> points, const McOptions& opts, PointSweepReport* report) {
    std::vector<MiEstimate> out(points.size());
    const std::size_t tile = resolved_point_tile(opts, points.size());
    if (report) {
        report->point_tile = tile;
        report->adjacent_diff_sem.assign(points.size() >= 2 ? points.size() - 1 : 0, 0.0);
    }
    if (points.empty()) return out;

    if (tile > 0) {
        // Common-random-numbers mode: tiles of `tile` points share every
        // block's variate tape and ride one per-lane-parameter sweep.
        if (opts.block_len == 0 || opts.num_blocks == 0)
            throw std::invalid_argument(
                "iid_mutual_information_rate_points: empty experiment");
        const DriftParams& s0 = points[0].params;
        for (const CapacityPoint& pt : points) {
            pt.params.validate();
            if (pt.params.alphabet != s0.alphabet || pt.params.max_drift != s0.max_drift ||
                pt.params.max_insert_run != s0.max_insert_run)
                throw std::invalid_argument(
                    "iid_mutual_information_rate_points: CRN point tiling needs one "
                    "alphabet/max_drift/max_insert_run across points (set point_tile = 0 "
                    "for structurally heterogeneous spans)");
        }
        const bool adaptive = opts.target_sem > 0.0;
        const std::size_t cap = mc_block_cap(opts);
        const std::size_t round = adaptive ? mc_round_blocks(opts) : cap;
        // The shared tape is rooted at the first point's seed, split off
        // exactly as a standalone estimator would draw it — unless the
        // caller pins an explicit root (memoizing callers must: a
        // span-derived root makes node values depend on batch grouping).
        std::uint64_t root = opts.crn_root;
        if (root == 0) {
            util::Rng seed_rng(points[0].seed);
            root = seed_rng.next();
        }
        // The chunk width is a LANE-count target: a tile of G points packs
        // G lanes per block, so the blocks-per-chunk divisor below already
        // scales it down. Resolve it without the num_blocks clamp — in
        // adaptive mode num_blocks is the (small) round size, and clamping
        // would shrink chunks to one block each, rebuilding the engine and
        // the per-lane tables per block instead of per ~batch lanes.
        McOptions lane_target = opts;
        lane_target.num_blocks = 0;
        const std::size_t batch = resolved_mc_batch(lane_target, s0);

        CrnTileState st;
        st.eff.reserve(points.size());
        for (const CapacityPoint& pt : points)
            st.eff.push_back(effective_params(pt.params, opts));
        st.stats.assign(points.size(), {});
        st.history.assign(points.size(), {});
        st.spent.assign(points.size(), 0);
        st.converged.assign(points.size(), 0);
        const double band_eps = st.eff[0].band_eps;
        const util::Matrix priors(opts.block_len, s0.alphabet,
                                  1.0 / static_cast<double>(s0.alphabet));
        std::size_t budget = opts.point_budget ? opts.point_budget : cap * points.size();

        for (std::size_t g0 = 0; g0 < points.size(); g0 += tile) {
            const std::size_t gn = std::min(tile, points.size() - g0);
            // Blocks per sweep chunk: the resolved lane budget divided
            // among the tile's points, at least one block per sweep.
            const std::size_t kb = std::max<std::size_t>(1, batch / gn);
            std::vector<std::size_t> active(gn);
            for (std::size_t i = 0; i < gn; ++i) active[i] = g0 + i;
            std::size_t b = 0;
            while (!active.empty() && b < cap) {
                const std::size_t b1 = std::min(cap, b + round);
                const std::size_t per_point = b1 - b;
                std::size_t n_adv = active.size();
                // The pilot round (b = 0) always runs in full, as in the
                // independent scheduler; past it the budget binds.
                if (adaptive && b > 0 && budget < n_adv * per_point)
                    n_adv = budget / per_point;
                if (n_adv == 0) break;
                crn_run_round(st, std::span<const std::size_t>(active).first(n_adv),
                              priors, root, opts.block_len, band_eps, kb, b, b1,
                              opts.threads);
                if (adaptive) {
                    const std::size_t cost = n_adv * per_point;
                    budget = budget > cost ? budget - cost : 0;
                }
                if (n_adv < active.size()) break;  // budget exhausted mid-tile
                b = b1;
                if (!adaptive) break;
                // Round-synchronous stopping: converged points drop out of
                // later sweeps; the check reads only the point's own
                // deterministic fold, so stopping is thread-, batch- and
                // tile-invariant (band_eps = 0, non-binding budget).
                std::vector<std::size_t> still;
                for (std::size_t g : active) {
                    if (st.stats[g].sem() <= opts.target_sem)
                        st.converged[g] = 1;
                    else
                        still.push_back(g);
                }
                active = std::move(still);
            }
        }

        for (std::size_t i = 0; i < points.size(); ++i) {
            const bool conv = !adaptive || st.converged[i] != 0 ||
                              st.stats[i].sem() <= opts.target_sem;
            out[i] = {std::max(0.0, st.stats[i].mean()), st.stats[i].sem(), st.spent[i],
                      opts.block_len, conv};
        }
        if (report) {
            for (std::size_t i = 0; i + 1 < points.size(); ++i) {
                const bool same_tile = i / tile == (i + 1) / tile;
                const std::size_t n =
                    std::min(st.history[i].size(), st.history[i + 1].size());
                if (same_tile && n >= 2) {
                    // Paired over the shared block prefix: the CRN
                    // correlation cancels in the difference.
                    util::CompensatedStats d;
                    for (std::size_t bb = 0; bb < n; ++bb)
                        d.add(st.history[i][bb] - st.history[i + 1][bb]);
                    report->adjacent_diff_sem[i] = d.sem();
                } else {
                    report->adjacent_diff_sem[i] = std::sqrt(
                        out[i].sem * out[i].sem + out[i + 1].sem * out[i + 1].sem);
                }
            }
        }
        return out;
    }

    if (!(opts.target_sem > 0.0)) {
        // Fixed mode: per-point standalone evaluation, parallel over the
        // point axis (the historical behavior, bit for bit).
        McOptions inner = opts;
        inner.threads = 1;  // the point axis owns the parallelism
        util::parallel_for(
            util::ThreadPool::shared(), points.size(),
            [&](std::size_t i) {
                util::Rng rng(points[i].seed);
                out[i] = iid_mutual_information_rate(points[i].params, inner, rng);
            },
            opts.threads);
        if (report)
            for (std::size_t i = 0; i + 1 < out.size(); ++i)
                report->adjacent_diff_sem[i] = std::sqrt(
                    out[i].sem * out[i].sem + out[i + 1].sem * out[i + 1].sem);
        return out;
    }

    // Adaptive mode: pilot round everywhere, then Neyman-style top-up
    // passes. All scheduling decisions read only the deterministic
    // per-point folds, serially, so spent counts and estimates do not
    // depend on the thread count.
    if (opts.block_len == 0 || opts.num_blocks == 0)
        throw std::invalid_argument("iid_mutual_information_rate_points: empty experiment");
    const std::size_t cap = mc_block_cap(opts);
    const std::size_t round = mc_round_blocks(opts);

    std::vector<PointCtx> ctx;
    ctx.reserve(points.size());
    for (const CapacityPoint& pt : points) {
        pt.params.validate();
        const unsigned m = pt.params.alphabet;
        util::Rng rng(pt.seed);
        ctx.push_back(PointCtx{pt.params, DriftHmm(effective_params(pt.params, opts)),
                               util::Matrix(opts.block_len, m, 1.0 / static_cast<double>(m)),
                               resolved_mc_batch(opts, pt.params), rng.next(),
                               util::CompensatedStats{}, 0, false});
    }

    // Run `n` more blocks of point `c`, serially: block b always samples
    // substream b of the point's root and folds in block order, exactly as
    // a standalone run would, so (point, spent) determines the estimate.
    const auto run_blocks = [&](PointCtx& c, std::size_t n) {
        std::vector<double> samples(n);
        const IidBlockSampler sampler{c.hmm, c.params, c.priors, opts.block_len, c.batch};
        sampler(c.root, c.spent, samples);
        for (double v : samples) c.stats.add(v);
        c.spent += n;
    };

    // Stage 1: pilot round at every point (always runs; the budget governs
    // the top-ups).
    util::parallel_for(
        util::ThreadPool::shared(), ctx.size(),
        [&](std::size_t i) { run_blocks(ctx[i], std::min(round, cap)); }, opts.threads);
    const std::size_t pilot_cost = std::min(round, cap) * ctx.size();
    std::size_t budget = opts.point_budget ? opts.point_budget : cap * ctx.size();
    budget = budget > pilot_cost ? budget - pilot_cost : 0;

    // Stage 2: repeated allocation passes. Each pass computes every needy
    // point's predicted block need n* = (sd / target_sem)^2, grants the
    // deficit (rounded up to whole rounds, clamped to the cap) outright
    // when the budget covers the pass, and scales grants proportionally
    // when it does not.
    while (budget > 0) {
        std::vector<std::size_t> needy;
        std::vector<std::size_t> want;
        std::size_t total_want = 0;
        for (std::size_t i = 0; i < ctx.size(); ++i) {
            PointCtx& c = ctx[i];
            if (c.converged || c.spent >= cap) continue;
            if (c.stats.sem() <= opts.target_sem) {
                c.converged = true;
                continue;
            }
            const double sd = c.stats.stddev();
            const double predicted = (sd / opts.target_sem) * (sd / opts.target_sem);
            std::size_t deficit =
                predicted > static_cast<double>(c.spent)
                    ? static_cast<std::size_t>(std::ceil(predicted)) - c.spent
                    : 1;  // SEM still above target: must make progress
            deficit = (deficit + round - 1) / round * round;  // whole rounds
            deficit = std::min(deficit, cap - c.spent);
            needy.push_back(i);
            want.push_back(deficit);
            total_want += deficit;
        }
        if (needy.empty()) break;
        if (total_want > budget) {
            // Scarcity: scale every grant by budget / total_want, keeping
            // whole rounds where possible; guarantee progress by giving the
            // first needy point whatever is left when rounding zeroes all.
            std::size_t granted_total = 0;
            for (std::size_t k = 0; k < needy.size(); ++k) {
                const auto scaled = static_cast<std::size_t>(
                    static_cast<double>(want[k]) * static_cast<double>(budget) /
                    static_cast<double>(total_want));
                want[k] = std::min(scaled / round * round, cap - ctx[needy[k]].spent);
                granted_total += want[k];
            }
            if (granted_total == 0)
                want[0] = std::min({budget, round, cap - ctx[needy[0]].spent});
        }
        std::size_t granted = 0;
        for (std::size_t w : want) granted += w;
        if (granted == 0) break;  // every needy point is at the cap
        util::parallel_for(
            util::ThreadPool::shared(), needy.size(),
            [&](std::size_t k) {
                if (want[k] > 0) run_blocks(ctx[needy[k]], want[k]);
            },
            opts.threads);
        budget = budget > granted ? budget - granted : 0;
    }

    for (std::size_t i = 0; i < ctx.size(); ++i) {
        PointCtx& c = ctx[i];
        if (c.stats.sem() <= opts.target_sem) c.converged = true;
        out[i] = {std::max(0.0, c.stats.mean()), c.stats.sem(), c.spent, opts.block_len,
                  c.converged};
    }
    if (report)
        for (std::size_t i = 0; i + 1 < out.size(); ++i)
            report->adjacent_diff_sem[i] =
                std::sqrt(out[i].sem * out[i].sem + out[i + 1].sem * out[i + 1].sem);
    return out;
}

}  // namespace ccap::info
