// Kernel-table dispatch, plus nullptr stubs for ISAs whose translation
// units are not part of this build (the build only adds a kernel TU when
// the target architecture and compiler support it; CCAP_HAVE_KERNELS_*
// mirrors that decision so util::simd_path_available() agrees with what
// lane_kernels_for() can actually return).
#include "ccap/info/lattice_simd.hpp"

namespace ccap::info {

#if !defined(CCAP_HAVE_KERNELS_NEON)
const LaneKernels* lane_kernels_neon() noexcept { return nullptr; }
#endif
#if !defined(CCAP_HAVE_KERNELS_AVX2)
const LaneKernels* lane_kernels_avx2() noexcept { return nullptr; }
#endif
#if !defined(CCAP_HAVE_KERNELS_AVX512)
const LaneKernels* lane_kernels_avx512() noexcept { return nullptr; }
#endif

const LaneKernels& lane_kernels_for(util::SimdPath path) noexcept {
    for (int p = static_cast<int>(path); p > 0; --p) {
        const util::SimdPath candidate = static_cast<util::SimdPath>(p);
        if (!util::simd_path_available(candidate)) continue;
        const LaneKernels* table = nullptr;
        switch (candidate) {
            case util::SimdPath::scalar: break;
            case util::SimdPath::neon: table = lane_kernels_neon(); break;
            case util::SimdPath::avx2: table = lane_kernels_avx2(); break;
            case util::SimdPath::avx512: table = lane_kernels_avx512(); break;
        }
        if (table != nullptr) return *table;
    }
    return *lane_kernels_scalar();
}

const LaneKernels& active_lane_kernels() noexcept {
    return lane_kernels_for(util::active_simd_path());
}

}  // namespace ccap::info
